#ifndef SPITFIRE_DB_DATABASE_H_
#define SPITFIRE_DB_DATABASE_H_

#include <map>
#include <memory>
#include <string>

#include "buffer/buffer_manager.h"
#include "db/table.h"
#include "index/btree.h"
#include "storage/dram_device.h"
#include "storage/ssd_device.h"
#include "txn/mvto_manager.h"
#include "wal/checkpointer.h"
#include "wal/log_manager.h"

namespace spitfire {

// Configuration of an embedded Spitfire database instance.
struct DatabaseOptions {
  // Buffer hierarchy (0 frames removes the tier).
  size_t dram_frames = 256;
  size_t nvm_frames = 0;
  // Buffer-manager shards (BufferManagerOptions::num_shards); 0 = auto.
  size_t num_shards = 0;
  MigrationPolicy policy = MigrationPolicy::Eager();
  NvmAdmissionMode nvm_admission = NvmAdmissionMode::kProbabilistic;
  size_t admission_queue_capacity = 0;
  bool enable_fine_grained_loading = false;
  uint32_t load_granularity = 256;
  bool enable_mini_pages = false;

  // Devices.
  uint64_t ssd_capacity = 256ull * 1024 * 1024;
  std::string ssd_path;  // empty → memory-backed simulated SSD
  Device* dram_backing = nullptr;  // e.g. a MemoryModeDevice (Figure 5)

  // Async SSD I/O scheduler (single-flight misses, write coalescing,
  // read-ahead) for the buffer manager.
  bool enable_io_scheduler = true;
  IoSchedulerOptions io_scheduler;

  // Write-ahead logging (Section 5.2).
  bool enable_wal = true;
  uint64_t log_staging_size = 4ull * 1024 * 1024;
  uint64_t log_ssd_capacity = 256ull * 1024 * 1024;
  // Batch concurrent commit-path appends into one NVM persist.
  bool wal_group_commit = true;
  // When there is no NVM in the hierarchy, the log stages in DRAM and
  // every commit forces a drain to SSD (group commit without NVM) — the
  // recovery-overhead contrast the paper draws in Sections 6.2/6.6.
  uint64_t checkpoint_interval_ms = 0;  // 0 = no background checkpointer
};

// The simulated persistent devices backing a database. They outlive the
// Database object so tests and examples can crash an instance (destroy the
// Database) and recover a new one from the same devices.
struct DatabaseEnv {
  std::unique_ptr<SsdDevice> db_ssd;
  std::unique_ptr<SsdDevice> log_ssd;
  std::unique_ptr<NvmDevice> nvm;
};

// Embedded multi-threaded database engine assembled from the paper's
// components: the Spitfire three-tier buffer manager, MVTO concurrency
// control, a concurrent B+Tree per table, and NVM-aware write-ahead
// logging with ARIES-style (analysis/redo/scrub) recovery.
//
// Shutdown semantics: destroying a Database does NOT flush buffers — with
// WAL enabled every committed transaction is already durable, and plain
// destruction is equivalent to a crash (recoverable via Recover()). Call
// Checkpoint() before shutdown to bound the next recovery's redo work.
class Database {
 public:
  ~Database();
  SPITFIRE_DISALLOW_COPY_AND_MOVE(Database);

  // Creates a fresh database (formats devices).
  static Result<std::unique_ptr<Database>> Create(const DatabaseOptions& opts);
  // Recovers a database from devices that survived a crash. On failure the
  // devices are normally destroyed with the half-built instance; pass
  // `env_on_error` to get them back instead, so a caller can retry — the
  // crash-during-recovery fuzz cases re-crash and re-recover in a loop.
  static Result<std::unique_ptr<Database>> Recover(
      const DatabaseOptions& opts, DatabaseEnv env,
      DatabaseEnv* env_on_error = nullptr);
  // Tears the instance down WITHOUT flushing (simulating a crash) and
  // returns the devices for a subsequent Recover().
  static DatabaseEnv Crash(std::unique_ptr<Database> db);

  // Schema. Table ids must be < 2^24 and unique.
  Result<Table*> CreateTable(uint32_t table_id, size_t tuple_size);
  Table* GetTable(uint32_t table_id);

  // Transactions.
  std::unique_ptr<Transaction> Begin();
  Status Commit(Transaction* txn);
  Status Abort(Transaction* txn);

  // Flushes dirty DRAM pages, drains the log, and — when the flush left
  // nothing behind — advances the durable redo horizon so the next
  // recovery can skip redo of everything checkpointed here.
  Status Checkpoint();

  // Walks every table's heap and index and verifies the invariants
  // recovery promises: allocated versions are committed (no uncommitted
  // leftovers), version chains are well-formed, and the index agrees with
  // the heap. Used by the crash fuzzer's post-recovery oracle.
  Status CheckIntegrity(std::string* why = nullptr);

  // What the last RunRecovery did (zeroed outside of Recover()).
  struct RecoveryStats {
    size_t quarantined_pages = 0;  // torn SSD pages refused and healed
    size_t redo_applied = 0;
    size_t redo_skipped = 0;  // below the durable horizon
    size_t log_records = 0;
  };
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  BufferManager* buffer_manager() { return bm_.get(); }
  TransactionManager* txn_manager() { return &tm_; }
  LogManager* log_manager() { return lm_.get(); }
  Checkpointer* checkpointer() { return ckpt_.get(); }
  const DatabaseOptions& options() const { return opts_; }
  // The live devices (e.g. for FaultInjector::AttachNvm).
  const DatabaseEnv& env() const { return env_; }

 private:
  Database(const DatabaseOptions& opts, DatabaseEnv env);

  Status InitCommon(bool fresh);
  Status WriteCatalog();
  Status RunRecovery();

  static constexpr uint32_t kCatalogPageType = 0xCA7A0001;
  static constexpr page_id_t kCatalogPid = 0;

  DatabaseOptions opts_;
  DatabaseEnv env_;
  std::unique_ptr<DramDevice> log_staging_dram_;  // when no NVM tier
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<LogManager> lm_;
  std::unique_ptr<Checkpointer> ckpt_;
  TransactionManager tm_;
  bool commit_forces_drain_ = false;
  RecoveryStats recovery_stats_;
  // Monotone catalog write counter; parity selects the on-page slot
  // (see WriteCatalog). Guarded by schema_mu_.
  uint64_t catalog_version_ = 0;

  std::mutex schema_mu_;
  struct TableEntry {
    std::unique_ptr<BTree> index;
    std::unique_ptr<Table> table;
    size_t tuple_size;
  };
  std::map<uint32_t, TableEntry> tables_;
};

}  // namespace spitfire

#endif  // SPITFIRE_DB_DATABASE_H_
