#ifndef SPITFIRE_DB_TABLE_H_
#define SPITFIRE_DB_TABLE_H_

#include <functional>
#include <mutex>
#include <vector>

#include "buffer/buffer_manager.h"
#include "index/btree.h"
#include "txn/mvto_manager.h"
#include "txn/transaction.h"
#include "wal/log_manager.h"

namespace spitfire {

// Page type tag for heap pages: 0x48 ("H") in the top byte, table id below.
inline uint32_t HeapPageType(uint32_t table_id) {
  return 0x48000000u | table_id;
}
inline bool IsHeapPageType(uint32_t t) { return (t & 0xFF000000u) == 0x48000000u; }
inline uint32_t HeapPageTableId(uint32_t t) { return t & 0x00FFFFFFu; }

// A versioned table heap with multi-version timestamp ordering (MVTO,
// Wu et al. [39]) layered on the Spitfire buffer manager.
//
// Records are fixed-size tuples keyed by a 64-bit key. Each update
// installs a new version and links it to its predecessor; a B+Tree maps
// each key to the newest version (the chain head). Version slots live in
// heap pages, so version traffic exercises exactly the DRAM/NVM/SSD data
// paths the paper studies — including the MVTO metadata writes the paper
// notes dirty pages even under read-only workloads (Section 6.4).
//
// MVTO rules (single timestamp per transaction):
//   read(T, k): newest version V with begin_ts <= ts(T); bump
//               V.read_ts = max(V.read_ts, ts(T)).
//   write(T, k): abort if head is write-locked, newer than T, or was read
//               by a transaction younger than T; otherwise lock the head
//               and install an uncommitted successor.
// Commit stamps installed versions with ts(T); abort unlinks them.
class Table {
 public:
  struct Options {
    uint32_t table_id = 0;
    size_t tuple_size = 0;  // payload bytes per record
  };

  // In-page header preceding every version's payload.
  struct VersionHeader {
    uint64_t writer;    // txn id write-locking this version (0 = free)
    uint64_t begin_ts;  // kMaxTimestamp while uncommitted
    uint64_t read_ts;   // largest timestamp that read this version
    rid_t prev;         // next-older version
    uint64_t key;
    uint32_t flags;  // kFlagAllocated | kFlagTombstone
    uint32_t pad;
  };
  static constexpr uint32_t kFlagAllocated = 1;
  // Deletes install a tombstone version: readers whose timestamp sees the
  // tombstone get NotFound; older snapshots still see the predecessor.
  static constexpr uint32_t kFlagTombstone = 2;

  Table(const Options& opts, BufferManager* bm, TransactionManager* tm,
        BTree* index, LogManager* lm);
  SPITFIRE_DISALLOW_COPY_AND_MOVE(Table);

  uint32_t table_id() const { return opts_.table_id; }
  size_t tuple_size() const { return opts_.tuple_size; }
  BTree* index() { return index_; }

  // --- transactional operations ---
  //
  // When txn->fetch_ctx is set, buffer misses on the read-side stretches of
  // these operations (index traversal, version-chain pins, and the write
  // path up to taking the head's write lock) park on the context and the
  // operation returns WouldBlock with no effects a re-run would duplicate:
  // the caller re-invokes the same operation once the context fires.
  // Side-effecting stretches (post-lock write install, commit/abort
  // processing) always block.
  Status Insert(Transaction* txn, uint64_t key, const void* tuple);
  Status Read(Transaction* txn, uint64_t key, void* out);
  Status Update(Transaction* txn, uint64_t key, const void* tuple);
  // Deletes the key by installing a tombstone version (MVTO rules apply
  // exactly as for Update). Later snapshots see NotFound; concurrent older
  // snapshots still read the previous version.
  Status Delete(Transaction* txn, uint64_t key);
  // Visits committed versions visible to `txn` with keys in [lo, hi].
  Status Scan(Transaction* txn, uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t, const void*)>& fn);

  // --- commit/abort processing (driven by Database) ---
  void FinalizeCommit(Transaction* txn, const Transaction::WriteOp& op);
  void RollbackAbort(Transaction* txn, const Transaction::WriteOp& op);

  // --- recovery ---
  // Registers a heap page discovered during the recovery scan.
  void AdoptPage(page_id_t pid);
  // Scrubs uncommitted versions, resets stale write locks, rebuilds the
  // index to point at each key's newest committed version, and rebuilds
  // the slot free list. Reports the largest committed begin_ts seen so the
  // timestamp dispenser can be advanced past it.
  Status RebuildFromHeap(timestamp_t* max_ts = nullptr);
  // Applies a logged write during redo if the heap does not already have a
  // version at least as new as `ts` (idempotent logical redo). A null
  // tuple re-applies a delete (tombstone).
  Status RecoveryApply(uint64_t key, const void* tuple, timestamp_t ts);
  // Verifies heap/index invariants on a QUIESCENT table (no active
  // transactions): every allocated version is committed and unlocked,
  // version chains are well-formed (same key, newest-first, acyclic, no
  // dangling links), and the index maps each key to its newest committed
  // version. Returns Corruption (and fills *why) on the first violation.
  Status ValidateHeap(std::string* why = nullptr);

  size_t slots_per_page() const { return slots_per_page_; }
  uint64_t allocated_pages() const {
    std::lock_guard<std::mutex> g(alloc_mu_);
    return pages_.size();
  }

 private:
  struct SlotRef {
    PageGuard guard;
    VersionHeader* hdr;
    std::byte* payload;
  };

  size_t slot_size() const {
    return (sizeof(VersionHeader) + opts_.tuple_size + 7) / 8 * 8;
  }
  uint64_t SlotOffset(uint32_t slot) const {
    return kPageHeaderSize + static_cast<uint64_t>(slot) * slot_size();
  }

  // Pins the page holding `rid` and returns typed pointers into it. With a
  // context, a miss parks on it and returns WouldBlock instead of blocking.
  Result<SlotRef> PinSlot(rid_t rid, AccessIntent intent,
                          FetchContext* ctx = nullptr);

  Result<rid_t> AllocateSlot();
  void DeferFree(rid_t rid);

  // Shared write path for Update / Delete / insert-over-tombstone.
  Status WriteInternal(Transaction* txn, uint64_t key, const void* tuple,
                       bool allow_tombstone_head);

  // Unlinks versions older than the newest one visible at the GC
  // watermark, deferring slot reuse until in-flight readers finish.
  void TruncateChain(rid_t head);

  Status LogWrite(Transaction* txn, LogRecordType type, uint64_t key,
                  const void* before, const void* after);

  Options opts_;
  BufferManager* bm_;
  TransactionManager* tm_;
  BTree* index_;
  LogManager* lm_;  // may be null (logging disabled)

  size_t slots_per_page_;

  mutable std::mutex alloc_mu_;
  std::vector<page_id_t> pages_;
  uint32_t bump_slot_ = 0;  // next unused slot in pages_.back()
  struct DeferredFree {
    rid_t rid;
    timestamp_t freed_at;
  };
  std::vector<DeferredFree> free_list_;
};

}  // namespace spitfire

#endif  // SPITFIRE_DB_TABLE_H_
