#include "db/database.h"

#include <algorithm>
#include <cstring>
#include <set>
#include <vector>

#include "common/checksum.h"
#include "storage/dram_device.h"
#include "storage/fault_injector.h"

namespace spitfire {

namespace {
constexpr uint32_t kCatalogMagic = 0xCA7A106F;
constexpr size_t kMaxTables = 64;

struct CatalogEntry {
  uint32_t table_id;
  uint32_t tuple_size;
  page_id_t index_meta_pid;
};
struct CatalogPayload {
  uint32_t magic;
  uint32_t num_tables;
  CatalogEntry entries[kMaxTables];
};

// The catalog is written as two versioned, checksummed slots within page
// 0's payload, alternating by version parity. The catalog page is flushed
// with a whole-page write, which a crash can tear — but the slot NOT being
// updated is rewritten with bytes identical to what is already on the
// device, so a torn write can corrupt at most the slot being written;
// the previous version in the other slot still validates. Readers pick
// the valid slot with the highest version.
struct CatalogSlot {
  uint64_t version = 0;
  uint64_t checksum = 0;
  CatalogPayload payload{};

  void Stamp() {
    checksum = 0;
    checksum = Checksum64(this, sizeof(*this));
  }
  bool Valid() const {
    if (payload.magic != kCatalogMagic) return false;
    if (payload.num_tables > kMaxTables) return false;
    CatalogSlot tmp = *this;
    tmp.checksum = 0;
    return Checksum64(&tmp, sizeof(tmp)) == checksum;
  }
};
constexpr size_t kCatalogSlotStride = 2048;
static_assert(sizeof(CatalogSlot) <= kCatalogSlotStride);
static_assert(2 * kCatalogSlotStride <= kPagePayloadSize);
}  // namespace

Database::Database(const DatabaseOptions& opts, DatabaseEnv env)
    : opts_(opts), env_(std::move(env)) {}

Database::~Database() {
  if (ckpt_ != nullptr) ckpt_->Stop();
}

Status Database::InitCommon(bool fresh) {
  const bool have_nvm_tier = opts_.nvm_frames > 0;
  const uint64_t pool_bytes = have_nvm_tier
                                  ? BufferPool::RequiredCapacity(
                                        opts_.nvm_frames, true)
                                  : 0;

  if (env_.db_ssd == nullptr) {
    env_.db_ssd = opts_.ssd_path.empty()
                      ? std::make_unique<SsdDevice>(opts_.ssd_capacity)
                      : std::make_unique<SsdDevice>(opts_.ssd_path,
                                                    opts_.ssd_capacity);
  }
  if (opts_.enable_wal && env_.log_ssd == nullptr) {
    env_.log_ssd = std::make_unique<SsdDevice>(opts_.log_ssd_capacity);
  }
  if (have_nvm_tier && env_.nvm == nullptr) {
    env_.nvm = std::make_unique<NvmDevice>(
        pool_bytes + (opts_.enable_wal ? opts_.log_staging_size : 0));
  }

  BufferManagerOptions bopts;
  bopts.dram_frames = opts_.dram_frames;
  bopts.nvm_frames = opts_.nvm_frames;
  bopts.num_shards = opts_.num_shards;
  bopts.policy = opts_.policy;
  bopts.nvm_admission = opts_.nvm_admission;
  bopts.admission_queue_capacity = opts_.admission_queue_capacity;
  bopts.enable_fine_grained_loading = opts_.enable_fine_grained_loading;
  bopts.load_granularity = opts_.load_granularity;
  bopts.enable_mini_pages = opts_.enable_mini_pages;
  bopts.ssd = env_.db_ssd.get();
  bopts.nvm = env_.nvm.get();
  bopts.dram_backing = opts_.dram_backing;
  bopts.enable_io_scheduler = opts_.enable_io_scheduler;
  bopts.io_scheduler = opts_.io_scheduler;
  bm_ = std::make_unique<BufferManager>(bopts);

  if (opts_.enable_wal) {
    LogManager::Options lopts;
    if (have_nvm_tier) {
      // Stage on NVM: commits are durable at NVM write latency and the
      // SSD append happens asynchronously.
      lopts.nvm = env_.nvm.get();
      lopts.nvm_offset = pool_bytes;
      lopts.nvm_size = opts_.log_staging_size;
      commit_forces_drain_ = false;
    } else {
      // No NVM: stage in DRAM, force an SSD drain at every commit (group
      // commit against the SSD).
      log_staging_dram_ =
          std::make_unique<DramDevice>(opts_.log_staging_size);
      lopts.nvm = log_staging_dram_.get();
      lopts.nvm_offset = 0;
      lopts.nvm_size = opts_.log_staging_size;
      commit_forces_drain_ = true;
    }
    lopts.log_ssd = env_.log_ssd.get();
    lopts.enable_group_commit = opts_.wal_group_commit;
    auto lm_r = fresh ? LogManager::Create(lopts) : LogManager::Attach(lopts);
    SPITFIRE_RETURN_NOT_OK(lm_r.status());
    lm_ = lm_r.MoveValue();
  }

  if (opts_.checkpoint_interval_ms > 0) {
    ckpt_ = std::make_unique<Checkpointer>(bm_.get(), lm_.get(),
                                           opts_.checkpoint_interval_ms);
    ckpt_->Start();
  }
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::Create(
    const DatabaseOptions& opts) {
  auto db = std::unique_ptr<Database>(new Database(opts, DatabaseEnv{}));
  SPITFIRE_RETURN_NOT_OK(db->InitCommon(/*fresh=*/true));
  // Page 0: the catalog.
  auto cat = db->bm_->NewPage(kCatalogPageType);
  SPITFIRE_RETURN_NOT_OK(cat.status());
  SPITFIRE_CHECK(cat.value().pid() == kCatalogPid);
  SPITFIRE_RETURN_NOT_OK(db->WriteCatalog());
  return db;
}

Result<std::unique_ptr<Database>> Database::Recover(
    const DatabaseOptions& opts, DatabaseEnv env, DatabaseEnv* env_on_error) {
  auto db = std::unique_ptr<Database>(new Database(opts, std::move(env)));
  Status st = db->InitCommon(/*fresh=*/false);
  if (st.ok()) st = db->RunRecovery();
  if (!st.ok()) {
    if (db->ckpt_ != nullptr) db->ckpt_->Stop();
    // Hand the devices back before the engine is torn down (the device
    // objects do not move — only ownership does — so the buffer manager's
    // raw pointers stay valid through its destructor).
    if (env_on_error != nullptr) *env_on_error = std::move(db->env_);
    return st;
  }
  return db;
}

DatabaseEnv Database::Crash(std::unique_ptr<Database> db) {
  if (db->ckpt_ != nullptr) db->ckpt_->Stop();
  // Destroy the engine without flushing anything: DRAM contents are lost;
  // NVM and SSD device contents survive in the returned env.
  DatabaseEnv env = std::move(db->env_);
  db.reset();
  return env;
}

Status Database::WriteCatalog() {
  auto g_r = bm_->FetchPage(kCatalogPid, AccessIntent::kWrite);
  SPITFIRE_RETURN_NOT_OK(g_r.status());
  CatalogSlot slot{};
  slot.payload.magic = kCatalogMagic;
  {
    std::lock_guard<std::mutex> g(schema_mu_);
    slot.version = ++catalog_version_;
    slot.payload.num_tables = static_cast<uint32_t>(tables_.size());
    size_t i = 0;
    for (const auto& [id, entry] : tables_) {
      slot.payload.entries[i++] = CatalogEntry{
          id, static_cast<uint32_t>(entry.tuple_size),
          entry.index->meta_pid()};
    }
  }
  slot.Stamp();
  const size_t off =
      kPageHeaderSize + (slot.version % 2) * kCatalogSlotStride;
  SPITFIRE_RETURN_NOT_OK(g_r.value().WriteAt(off, sizeof(slot), &slot));
  g_r.value().Release();
  return bm_->FlushPage(kCatalogPid);
}

Result<Table*> Database::CreateTable(uint32_t table_id, size_t tuple_size) {
  {
    std::lock_guard<std::mutex> g(schema_mu_);
    if (tables_.count(table_id) != 0) {
      return Status::InvalidArgument("table exists");
    }
    if (tables_.size() >= kMaxTables) {
      return Status::InvalidArgument("too many tables");
    }
  }
  auto idx_r = BTree::Create(bm_.get());
  SPITFIRE_RETURN_NOT_OK(idx_r.status());
  std::unique_ptr<BTree> index(idx_r.value());
  Table::Options topts;
  topts.table_id = table_id;
  topts.tuple_size = tuple_size;
  auto table = std::make_unique<Table>(topts, bm_.get(), &tm_, index.get(),
                                       lm_.get());
  Table* raw = table.get();
  {
    std::lock_guard<std::mutex> g(schema_mu_);
    tables_[table_id] =
        TableEntry{std::move(index), std::move(table), tuple_size};
  }
  SPITFIRE_RETURN_NOT_OK(WriteCatalog());
  return raw;
}

Table* Database::GetTable(uint32_t table_id) {
  std::lock_guard<std::mutex> g(schema_mu_);
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.table.get();
}

std::unique_ptr<Transaction> Database::Begin() { return tm_.Begin(); }

Status Database::Commit(Transaction* txn) {
  SPITFIRE_DCHECK(txn->state() == TxnState::kActive);
  if (!txn->write_set.empty() && lm_ != nullptr) {
    LogRecord commit;
    commit.type = LogRecordType::kCommit;
    commit.txn_id = txn->id();
    commit.prev_lsn = txn->last_lsn;
    Result<lsn_t> lsn = lm_->Append(commit);
    SPITFIRE_RETURN_NOT_OK(lsn.status());
    // Without persistent staging, the commit is only durable on SSD.
    if (commit_forces_drain_) {
      SPITFIRE_RETURN_NOT_OK(lm_->Drain());
    }
  }
  for (const auto& op : txn->write_set) {
    Table* t = GetTable(op.table_id);
    SPITFIRE_CHECK(t != nullptr);
    t->FinalizeCommit(txn, op);
  }
  txn->set_state(TxnState::kCommitted);
  tm_.Finish(txn);
  return Status::OK();
}

Status Database::Abort(Transaction* txn) {
  SPITFIRE_DCHECK(txn->state() == TxnState::kActive);
  for (auto it = txn->write_set.rbegin(); it != txn->write_set.rend(); ++it) {
    Table* t = GetTable(it->table_id);
    SPITFIRE_CHECK(t != nullptr);
    t->RollbackAbort(txn, *it);
  }
  if (!txn->write_set.empty() && lm_ != nullptr) {
    LogRecord abort;
    abort.type = LogRecordType::kAbort;
    abort.txn_id = txn->id();
    abort.prev_lsn = txn->last_lsn;
    // Best-effort: recovery never needs the abort record (it redoes only
    // transactions with a commit record, and the versions above were
    // already rolled back in place). A full staging buffer or a dying
    // device must not leave the transaction slot occupied forever.
    (void)lm_->Append(abort);
  }
  txn->set_state(TxnState::kAborted);
  tm_.Finish(txn);
  return Status::OK();
}

Status Database::Checkpoint() {
  // Sample the watermark BEFORE the flush: every transaction with
  // ts <= watermark has finished, so its versions are in the buffer before
  // the sweep starts and a clean sweep makes them durable. Writes racing
  // the sweep belong to transactions above the watermark and stay covered
  // by redo.
  const timestamp_t watermark = tm_.MinActiveTs() - 1;
  size_t skipped = 0;
  SPITFIRE_RETURN_NOT_OK(bm_->FlushAll(/*include_nvm=*/false, &skipped));
  if (lm_ != nullptr) {
    SPITFIRE_RETURN_NOT_OK(lm_->Drain());
    // Only a complete sweep may advance the durable redo horizon: a page
    // skipped because it was actively referenced may hold the only copy
    // of a version at or below the watermark.
    if (skipped == 0) {
      SPITFIRE_RETURN_NOT_OK(lm_->SetDurableHorizon(watermark));
    }
  }
  return Status::OK();
}

Status Database::CheckIntegrity(std::string* why) {
  std::lock_guard<std::mutex> g(schema_mu_);
  for (auto& [id, entry] : tables_) {
    SPITFIRE_RETURN_NOT_OK(entry.table->ValidateHeap(why));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery (Section 5.2): (1) rebuild the mapping table from the NVM
// buffer, (2) append the persistent NVM log-buffer tail to the log file,
// (3) analysis + logical redo of committed transactions, plus a scrub of
// uncommitted versions (undo).
// ---------------------------------------------------------------------------

Status Database::RunRecovery() {
  recovery_stats_ = RecoveryStats{};
  bm_->SetNextPageId(1);  // catalog must be addressable
  if (bm_->nvm_pool() != nullptr) {
    SPITFIRE_RETURN_NOT_OK(bm_->RecoverNvmResidentPages());
  }

  // Discover the page-id horizon from the SSD image (NVM-resident pages
  // already advanced next_page_id above).
  {
    const page_id_t ssd_pages =
        env_.db_ssd->capacity() / kPageSize;
    page_id_t max_pid = bm_->next_page_id();
    for (page_id_t pid = 0; pid < ssd_pages; ++pid) {
      PageHeader hdr;
      SPITFIRE_RETURN_NOT_OK(
          env_.db_ssd->Read(pid * kPageSize, &hdr, sizeof(hdr)));
      if (hdr.IsValid() && hdr.page_id == pid) max_pid = std::max(max_pid, pid + 1);
    }
    bm_->SetNextPageId(std::max(bm_->next_page_id(), max_pid));
  }

  // Read the catalog: both slots, newest valid version wins. The page is
  // read from NVM when resident (NVM writes are durable at completion);
  // otherwise raw from SSD — deliberately NOT through FetchPage, so a torn
  // image is judged by the slot checksums before anything trusts it.
  CatalogPayload payload{};
  {
    std::vector<std::byte> raw(kPageSize);
    if (bm_->nvm_pool() != nullptr && bm_->IsNvmResident(kCatalogPid)) {
      auto g_r = bm_->FetchPage(kCatalogPid, AccessIntent::kRead);
      SPITFIRE_RETURN_NOT_OK(g_r.status());
      SPITFIRE_RETURN_NOT_OK(g_r.value().ReadAt(0, kPageSize, raw.data()));
    } else {
      SPITFIRE_RETURN_NOT_OK(
          env_.db_ssd->Read(kCatalogPid * kPageSize, raw.data(), kPageSize));
    }
    bool found = false;
    CatalogSlot best{};
    for (size_t s = 0; s < 2; ++s) {
      CatalogSlot slot;
      std::memcpy(&slot, raw.data() + kPageHeaderSize + s * kCatalogSlotStride,
                  sizeof(slot));
      if (slot.Valid() && (!found || slot.version > best.version)) {
        best = slot;
        found = true;
      }
    }
    if (!found) return Status::Corruption("catalog page invalid");
    payload = best.payload;
    catalog_version_ = best.version;
  }

  // Re-create tables with fresh indexes (the pre-crash index pages may be
  // inconsistent; they are abandoned and rebuilt from the heap).
  for (uint32_t i = 0; i < payload.num_tables; ++i) {
    const CatalogEntry& e = payload.entries[i];
    auto idx_r = BTree::Create(bm_.get());
    SPITFIRE_RETURN_NOT_OK(idx_r.status());
    std::unique_ptr<BTree> index(idx_r.value());
    Table::Options topts;
    topts.table_id = e.table_id;
    topts.tuple_size = e.tuple_size;
    auto table = std::make_unique<Table>(topts, bm_.get(), &tm_, index.get(),
                                         lm_.get());
    std::lock_guard<std::mutex> g(schema_mu_);
    tables_[e.table_id] =
        TableEntry{std::move(index), std::move(table), e.tuple_size};
  }

  // Classify surviving pages; heap pages are adopted by their tables.
  // NVM-resident copies are trusted (NVM writes are durable at
  // completion). SSD-only pages are read raw and checksum-verified — a
  // mismatch is the signature of a torn or short page write, and such a
  // page is quarantined, never adopted.
  std::vector<page_id_t> quarantined;
  {
    const page_id_t horizon_pid = bm_->next_page_id();
    std::vector<std::byte> frame(kPageSize);
    for (page_id_t pid = 1; pid < horizon_pid; ++pid) {
      PageHeader hdr{};
      if (bm_->nvm_pool() != nullptr && bm_->IsNvmResident(pid)) {
        auto g_r = bm_->FetchPage(pid, AccessIntent::kRead);
        if (!g_r.ok()) continue;
        SPITFIRE_RETURN_NOT_OK(g_r.value().ReadAt(0, sizeof(hdr), &hdr));
      } else {
        if (!env_.db_ssd->Read(pid * kPageSize, frame.data(), kPageSize)
                 .ok()) {
          continue;
        }
        std::memcpy(&hdr, frame.data(), sizeof(hdr));
        if (hdr.IsValid() && hdr.page_id == pid &&
            !VerifyPageChecksum(frame.data())) {
          quarantined.push_back(pid);
          continue;
        }
      }
      if (!hdr.IsValid() || hdr.page_id != pid) continue;
      if (IsHeapPageType(hdr.page_type)) {
        Table* t = GetTable(HeapPageTableId(hdr.page_type));
        if (t != nullptr) t->AdoptPage(pid);
      }
    }
  }
  recovery_stats_.quarantined_pages = quarantined.size();

  if (!quarantined.empty()) {
    // A torn page may have destroyed heap state at or below the durable
    // redo horizon, so the horizon is void. Clear it BEFORE the healing
    // writes below: a crash after healing but before recovery finishes
    // must not let the NEXT recovery trust a horizon whose heap
    // prerequisites no longer exist. Full-log redo then rebuilds the lost
    // content — the log file is never truncated, so it always reaches
    // back far enough.
    if (lm_ != nullptr) SPITFIRE_RETURN_NOT_OK(lm_->SetDurableHorizon(0));
    const std::byte zeroed[sizeof(PageHeader)] = {};
    for (page_id_t pid : quarantined) {
      SPITFIRE_RETURN_NOT_OK(
          env_.db_ssd->Write(pid * kPageSize, zeroed, sizeof(zeroed)));
    }
    SPITFIRE_RETURN_NOT_OK(env_.db_ssd->Persist(0, 0));
  }

  // Rebuild indexes from the heap, scrubbing uncommitted versions.
  timestamp_t max_ts = 0;
  {
    std::lock_guard<std::mutex> g(schema_mu_);
    for (auto& [id, entry] : tables_) {
      SPITFIRE_RETURN_NOT_OK(entry.table->RebuildFromHeap(&max_ts));
    }
  }

  // Analysis + redo from the log. With a clean checkpoint horizon and no
  // quarantined pages, committed work at or below the horizon is already
  // durable in the heap and its redo is skipped — recovery time tracks
  // the log written since the last checkpoint, not the total log.
  if (lm_ != nullptr) {
    auto recs_r = lm_->ReadAll();
    SPITFIRE_RETURN_NOT_OK(recs_r.status());
    const std::vector<LogRecord>& recs = recs_r.value();
    recovery_stats_.log_records = recs.size();
    const timestamp_t redo_horizon =
        quarantined.empty() ? lm_->durable_horizon() : 0;
    std::set<txn_id_t> committed;
    for (const LogRecord& r : recs) {
      max_ts = std::max(max_ts, r.txn_id);
      if (r.type == LogRecordType::kCommit) committed.insert(r.txn_id);
    }
    for (const LogRecord& r : recs) {
      if (committed.count(r.txn_id) == 0) continue;
      if (r.type != LogRecordType::kInsert &&
          r.type != LogRecordType::kUpdate &&
          r.type != LogRecordType::kDelete) {
        continue;
      }
      if (r.txn_id <= redo_horizon) {
        ++recovery_stats_.redo_skipped;
        continue;
      }
      Table* t = GetTable(r.table_id);
      if (t == nullptr) continue;
      const void* after =
          r.type == LogRecordType::kDelete ? nullptr : r.after.data();
      SPITFIRE_RETURN_NOT_OK(t->RecoveryApply(r.key, after, /*ts=*/r.txn_id));
      ++recovery_stats_.redo_applied;
    }
  }
  tm_.AdvanceTo(max_ts + 1);

  // Persist the rebuilt catalog (fresh index roots) and checkpoint. A
  // crash anywhere in this tail must leave the database re-recoverable:
  // the catalog write is slot-versioned, the checkpoint's flush writes
  // checksummed pages (a tear quarantines on the next recovery), and the
  // horizon only advances after a clean sweep.
  SPITFIRE_RETURN_NOT_OK(WriteCatalog());
  FaultInjector::Point("recovery.before_checkpoint");
  return Checkpoint();
}

}  // namespace spitfire
