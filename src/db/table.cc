#include "db/table.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <map>
#include <set>

#include "common/timer.h"

namespace spitfire {

namespace {
// Atomic views over header fields stored in page memory. Pages are pinned
// for the duration of every access, so the bytes cannot move underneath.
inline std::atomic_ref<uint64_t> AtomicField(uint64_t& f) {
  return std::atomic_ref<uint64_t>(f);
}
}  // namespace

Table::Table(const Options& opts, BufferManager* bm, TransactionManager* tm,
             BTree* index, LogManager* lm)
    : opts_(opts), bm_(bm), tm_(tm), index_(index), lm_(lm) {
  SPITFIRE_CHECK(opts_.tuple_size > 0);
  SPITFIRE_CHECK(slot_size() <= kPagePayloadSize);
  slots_per_page_ = kPagePayloadSize / slot_size();
}

// ---------------------------------------------------------------------------
// Slot management
// ---------------------------------------------------------------------------

Result<Table::SlotRef> Table::PinSlot(rid_t rid, AccessIntent intent,
                                      FetchContext* ctx) {
  // Retry transient Busy (miss-storm submission races, frame churn) a few
  // times with backoff before surfacing it — callers propagate the status
  // up to the transaction layer, which aborts, so each retry here is one
  // fewer aborted transaction. Hard errors propagate immediately, and a
  // parked miss (WouldBlock, ctx path) must reach the scheduler untouched —
  // spinning on it here would defeat the interleaving.
  constexpr int kPinRetries = 8;
  Status last = Status::OK();
  for (int attempt = 0; attempt < kPinRetries; ++attempt) {
    if (attempt > 0) {
      SpinWaitNanos(std::min<uint64_t>(uint64_t{1'000} << attempt,
                                       uint64_t{32'000}));
    }
    auto g_r = FetchPageVia(bm_, ctx, RidPage(rid), intent);
    if (!g_r.ok()) {
      last = g_r.status();
      if (!last.IsBusy()) return last;
      continue;
    }
    PageGuard guard = g_r.MoveValue();
    std::byte* raw = guard.RawData();
    if (raw == nullptr) {
      last = Status::Busy("frame not materializable");
      continue;
    }
    std::byte* slot = raw + SlotOffset(RidSlot(rid));
    SlotRef ref{std::move(guard), reinterpret_cast<VersionHeader*>(slot),
                slot + sizeof(VersionHeader)};
    return ref;
  }
  return last;
}

Result<rid_t> Table::AllocateSlot() {
  std::lock_guard<std::mutex> g(alloc_mu_);
  // Recycle deferred frees whose grace period has passed: no transaction
  // that could still traverse to the old version remains active.
  if (!free_list_.empty() &&
      free_list_.front().freed_at < tm_->MinActiveTs()) {
    const rid_t rid = free_list_.front().rid;
    free_list_.erase(free_list_.begin());
    return rid;
  }
  if (pages_.empty() || bump_slot_ >= slots_per_page_) {
    auto r = bm_->NewPage(HeapPageType(opts_.table_id));
    if (!r.ok()) return r.status();
    pages_.push_back(r.value().pid());
    bump_slot_ = 0;
  }
  return MakeRid(pages_.back(), bump_slot_++);
}

void Table::DeferFree(rid_t rid) {
  std::lock_guard<std::mutex> g(alloc_mu_);
  free_list_.push_back({rid, tm_->LastAssignedTs() + 1});
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

Status Table::LogWrite(Transaction* txn, LogRecordType type, uint64_t key,
                       const void* before, const void* after) {
  if (lm_ == nullptr) return Status::OK();
  LogRecord rec;
  rec.type = type;
  rec.txn_id = txn->id();
  rec.prev_lsn = txn->last_lsn;
  rec.table_id = opts_.table_id;
  rec.key = key;
  if (before != nullptr) {
    const auto* b = static_cast<const std::byte*>(before);
    rec.before.assign(b, b + opts_.tuple_size);
  }
  if (after != nullptr) {
    const auto* a = static_cast<const std::byte*>(after);
    rec.after.assign(a, a + opts_.tuple_size);
  }
  Result<lsn_t> lsn = lm_->Append(rec);
  SPITFIRE_RETURN_NOT_OK(lsn.status());
  txn->last_lsn = lsn.value();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Transactional operations
// ---------------------------------------------------------------------------

Status Table::Insert(Transaction* txn, uint64_t key, const void* tuple) {
  FetchContext* ctx = txn->fetch_ctx;
  SPITFIRE_ASSIGN_OR_RETURN(const rid_t rid, AllocateSlot());
  {
    // On any pin failure — including a parked miss — return the slot to
    // the free list; the resumed Insert allocates afresh.
    auto ref_r = PinSlot(rid, AccessIntent::kWrite, ctx);
    if (!ref_r.ok()) {
      DeferFree(rid);
      return ref_r.status();
    }
    SlotRef ref = ref_r.MoveValue();
    VersionHeader h{};
    h.writer = txn->id();
    h.begin_ts = kMaxTimestamp;  // uncommitted
    h.read_ts = 0;
    h.prev = kInvalidRid;
    h.key = key;
    h.flags = kFlagAllocated;
    std::memcpy(ref.hdr, &h, sizeof(h));
    std::memcpy(ref.payload, tuple, opts_.tuple_size);
    ref.guard.MarkDirty();
  }
  const Status st = index_->Insert(key, rid, ctx);
  if (!st.ok()) {
    // The slot was written but never published: safe to re-run after a
    // parked index traversal resumes (the re-run gets a fresh slot).
    DeferFree(rid);
    if (st.IsBusy() || st.IsWouldBlock()) return st;
    // The key exists in the index — but it may be a committed tombstone,
    // in which case the insert proceeds as a successor version.
    return WriteInternal(txn, key, tuple, /*allow_tombstone_head=*/true);
  }
  SPITFIRE_RETURN_NOT_OK(
      LogWrite(txn, LogRecordType::kInsert, key, nullptr, tuple));
  txn->write_set.push_back(Transaction::WriteOp{
      Transaction::WriteOp::Kind::kInsert, opts_.table_id, key, rid,
      kInvalidRid});
  return Status::OK();
}

Status Table::Read(Transaction* txn, uint64_t key, void* out) {
  // Fully WouldBlock-safe: the only side effect is the read_ts bump, which
  // is an idempotent monotonic max — a resumed re-run repeats it harmlessly.
  FetchContext* ctx = txn->fetch_ctx;
  uint64_t head = 0;
  Status st = index_->Lookup(key, &head, ctx);
  if (!st.ok()) return st;

  rid_t rid = head;
  while (rid != kInvalidRid) {
    SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref,
                              PinSlot(rid, AccessIntent::kRead, ctx));
    const uint64_t writer = AtomicField(ref.hdr->writer).load(
        std::memory_order_acquire);
    const uint64_t begin = AtomicField(ref.hdr->begin_ts).load(
        std::memory_order_acquire);
    const bool own = writer == txn->id() && begin == kMaxTimestamp;
    if (!own && writer != 0 && writer != txn->id() && writer < txn->ts()) {
      // An older transaction has a write in flight on this version (either
      // an uncommitted successor, or a lock on the committed head). If it
      // commits, its timestamp precedes ours and we would have read a
      // stale value — the classic MVTO unsafe read. No-wait policy: abort
      // instead of blocking (Wu et al. [39]).
      return Status::Aborted("older write in flight");
    }
    const bool committed_visible =
        begin != kMaxTimestamp && begin <= txn->ts();
    if (own || committed_visible) {
      if (!own) {
        // MVTO bookkeeping: advance read_ts to our timestamp. This dirties
        // the page — the metadata writes Section 6.4 mentions.
        uint64_t cur =
            AtomicField(ref.hdr->read_ts).load(std::memory_order_relaxed);
        bool bumped = false;
        while (cur < txn->ts()) {
          if (AtomicField(ref.hdr->read_ts)
                  .compare_exchange_weak(cur, txn->ts(),
                                         std::memory_order_acq_rel)) {
            bumped = true;
            break;
          }
        }
        if (bumped) ref.guard.MarkDirty();
      }
      if (ref.hdr->flags & kFlagTombstone) {
        // The key was deleted as of this snapshot. (read_ts was still
        // advanced above so older writers correctly abort.)
        return Status::NotFound("deleted");
      }
      std::memcpy(out, ref.payload, opts_.tuple_size);
      return Status::OK();
    }
    rid = ref.hdr->prev;
  }
  return Status::NotFound("no visible version");
}

Status Table::Update(Transaction* txn, uint64_t key, const void* tuple) {
  SPITFIRE_DCHECK(tuple != nullptr);
  return WriteInternal(txn, key, tuple, /*allow_tombstone_head=*/false);
}

Status Table::Delete(Transaction* txn, uint64_t key) {
  return WriteInternal(txn, key, /*tuple=*/nullptr,
                       /*allow_tombstone_head=*/false);
}

// Shared write path for Update (tuple != nullptr), Delete (tuple ==
// nullptr: installs a tombstone), and insert-over-tombstone
// (allow_tombstone_head = true).
Status Table::WriteInternal(Transaction* txn, uint64_t key, const void* tuple,
                            bool allow_tombstone_head) {
  const bool tombstone = tuple == nullptr && !allow_tombstone_head;
  // The context covers only the stretch BEFORE the head's writer CAS: up to
  // there the operation has no effects, so a parked miss can unwind and the
  // re-run is a clean restart. Past the CAS everything blocks — unwinding
  // with the write lock held would leave it stuck until abort.
  FetchContext* ctx = txn->fetch_ctx;
  uint64_t head = 0;
  SPITFIRE_RETURN_NOT_OK(index_->Lookup(key, &head, ctx));

  SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref,
                            PinSlot(head, AccessIntent::kWrite, ctx));
  const uint64_t writer =
      AtomicField(ref.hdr->writer).load(std::memory_order_acquire);
  const uint64_t begin =
      AtomicField(ref.hdr->begin_ts).load(std::memory_order_acquire);

  if (writer == txn->id() && begin == kMaxTimestamp) {
    // Second write by the same transaction: mutate its own uncommitted
    // version in place.
    std::vector<std::byte> before(opts_.tuple_size);
    std::memcpy(before.data(), ref.payload, opts_.tuple_size);
    if (tuple != nullptr) {
      std::memcpy(ref.payload, tuple, opts_.tuple_size);
      ref.hdr->flags &= ~kFlagTombstone;
    } else {
      ref.hdr->flags |= kFlagTombstone;
    }
    ref.guard.MarkDirty();
    return LogWrite(txn,
                    tuple != nullptr ? LogRecordType::kUpdate
                                     : LogRecordType::kDelete,
                    key, before.data(), tuple);
  }
  if (writer != 0) {
    return Status::Aborted("write-write conflict");
  }
  if (begin == kMaxTimestamp || begin > txn->ts()) {
    return Status::Aborted("newer version exists");
  }
  const bool head_is_tombstone = (ref.hdr->flags & kFlagTombstone) != 0;
  if (head_is_tombstone && !allow_tombstone_head) {
    return Status::NotFound("key deleted");
  }
  if (!head_is_tombstone && allow_tombstone_head) {
    // Insert-over-tombstone raced with a normal re-insert: duplicate.
    return Status::InvalidArgument("duplicate key");
  }
  if (AtomicField(ref.hdr->read_ts).load(std::memory_order_acquire) >
      txn->ts()) {
    return Status::Aborted("version read by younger transaction");
  }
  uint64_t expected = 0;
  if (!AtomicField(ref.hdr->writer)
           .compare_exchange_strong(expected, txn->id(),
                                    std::memory_order_acq_rel)) {
    return Status::Aborted("lost write race");
  }
  // Re-validate the head: a concurrent committer may have replaced it
  // between our index lookup and the lock.
  {
    uint64_t cur_head = 0;
    const Status hst = index_->Lookup(key, &cur_head);
    if (!hst.ok() || cur_head != head) {
      AtomicField(ref.hdr->writer).store(0, std::memory_order_release);
      return Status::Aborted("head moved");
    }
  }
  ref.guard.MarkDirty();

  // Install the uncommitted successor version.
  auto rid_r = AllocateSlot();
  if (!rid_r.ok()) {
    AtomicField(ref.hdr->writer).store(0, std::memory_order_release);
    return rid_r.status();
  }
  const rid_t new_rid = rid_r.value();
  std::vector<std::byte> before(opts_.tuple_size);
  std::memcpy(before.data(), ref.payload, opts_.tuple_size);
  {
    auto nref_r = PinSlot(new_rid, AccessIntent::kWrite);
    if (!nref_r.ok()) {
      AtomicField(ref.hdr->writer).store(0, std::memory_order_release);
      DeferFree(new_rid);
      return nref_r.status();
    }
    SlotRef nref = nref_r.MoveValue();
    VersionHeader h{};
    h.writer = txn->id();
    h.begin_ts = kMaxTimestamp;
    h.read_ts = 0;
    h.prev = head;
    h.key = key;
    h.flags = kFlagAllocated | (tombstone ? kFlagTombstone : 0);
    std::memcpy(nref.hdr, &h, sizeof(h));
    if (tuple != nullptr) {
      std::memcpy(nref.payload, tuple, opts_.tuple_size);
    } else {
      std::memset(nref.payload, 0, opts_.tuple_size);
    }
    nref.guard.MarkDirty();
  }
  const Status ist = index_->Upsert(key, new_rid);
  if (!ist.ok()) {
    AtomicField(ref.hdr->writer).store(0, std::memory_order_release);
    DeferFree(new_rid);
    return ist;
  }
  SPITFIRE_RETURN_NOT_OK(LogWrite(
      txn,
      tuple != nullptr ? LogRecordType::kUpdate : LogRecordType::kDelete, key,
      before.data(), tuple));
  txn->write_set.push_back(Transaction::WriteOp{
      tuple != nullptr ? Transaction::WriteOp::Kind::kUpdate
                       : Transaction::WriteOp::Kind::kDelete,
      opts_.table_id, key, new_rid, head});
  return Status::OK();
}

Status Table::Scan(Transaction* txn, uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, const void*)>& fn) {
  // Collect matching keys first (the index scan must not re-enter the
  // buffer manager deeply while we hold its callback), then read each
  // version with full MVTO visibility.
  // With a fetch context, a parked miss (in the index scan or in any Read
  // below) surfaces WouldBlock and the resumed re-run starts over — fn may
  // re-observe entries it already consumed, so interleaved callers must
  // aggregate idempotently (recompute, don't accumulate across attempts).
  std::vector<uint64_t> keys;
  SPITFIRE_RETURN_NOT_OK(index_->Scan(
      lo, hi,
      [&](uint64_t k, uint64_t) {
        keys.push_back(k);
        return true;
      },
      txn->fetch_ctx));
  std::vector<std::byte> buf(opts_.tuple_size);
  for (uint64_t k : keys) {
    const Status st = Read(txn, k, buf.data());
    if (st.IsNotFound()) continue;  // not visible to this txn
    SPITFIRE_RETURN_NOT_OK(st);
    if (!fn(k, buf.data())) break;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Commit / abort
// ---------------------------------------------------------------------------

void Table::FinalizeCommit(Transaction* txn, const Transaction::WriteOp& op) {
  auto ref_r = PinSlot(op.new_rid, AccessIntent::kWrite);
  if (!ref_r.ok()) return;
  SlotRef ref = ref_r.MoveValue();
  AtomicField(ref.hdr->read_ts).store(txn->ts(), std::memory_order_relaxed);
  AtomicField(ref.hdr->begin_ts).store(txn->ts(), std::memory_order_release);
  ref.guard.MarkDirty();
  if (op.kind != Transaction::WriteOp::Kind::kInsert) {
    auto old_r = PinSlot(op.old_rid, AccessIntent::kWrite);
    if (old_r.ok()) {
      SlotRef old = old_r.MoveValue();
      AtomicField(old.hdr->writer).store(0, std::memory_order_release);
      old.guard.MarkDirty();
    }
    TruncateChain(op.new_rid);
  }
  // Release the head's write claim only AFTER truncating. While it is
  // held no successor version can be installed, so at most one
  // TruncateChain walks a given key's chain at a time. Two concurrent
  // walks double-DeferFree the same garbage versions; a slot recycled
  // while a chain still references it turns the prev links into a cycle.
  AtomicField(ref.hdr->writer).store(0, std::memory_order_release);
}

void Table::RollbackAbort(Transaction* txn, const Transaction::WriteOp& op) {
  if (op.kind == Transaction::WriteOp::Kind::kInsert) {
    (void)index_->Remove(op.key);
    auto ref_r = PinSlot(op.new_rid, AccessIntent::kWrite);
    if (ref_r.ok()) {
      SlotRef ref = ref_r.MoveValue();
      ref.hdr->flags = 0;
      AtomicField(ref.hdr->writer).store(0, std::memory_order_release);
      ref.guard.MarkDirty();
    }
    DeferFree(op.new_rid);
    return;
  }
  // Update: restore the old head and release its lock.
  (void)index_->Upsert(op.key, op.old_rid);
  auto ref_r = PinSlot(op.new_rid, AccessIntent::kWrite);
  if (ref_r.ok()) {
    SlotRef ref = ref_r.MoveValue();
    ref.hdr->flags = 0;
    ref.guard.MarkDirty();
  }
  auto old_r = PinSlot(op.old_rid, AccessIntent::kWrite);
  if (old_r.ok()) {
    SlotRef old = old_r.MoveValue();
    AtomicField(old.hdr->writer).store(0, std::memory_order_release);
    old.guard.MarkDirty();
  }
  DeferFree(op.new_rid);
}

void Table::TruncateChain(rid_t head) {
  const timestamp_t watermark = tm_->MinActiveTs();
  // Find the newest version whose begin_ts <= watermark: every active and
  // future transaction sees it or something newer, so older versions are
  // garbage.
  rid_t rid = head;
  rid_t survivor = kInvalidRid;
  int depth = 0;
  while (rid != kInvalidRid && depth++ < 64) {
    auto ref_r = PinSlot(rid, AccessIntent::kRead);
    if (!ref_r.ok()) return;
    SlotRef ref = ref_r.MoveValue();
    const uint64_t begin =
        AtomicField(ref.hdr->begin_ts).load(std::memory_order_acquire);
    if (begin != kMaxTimestamp && begin <= watermark) {
      survivor = rid;
      break;
    }
    rid = ref.hdr->prev;
  }
  if (survivor == kInvalidRid) return;
  auto sref_r = PinSlot(survivor, AccessIntent::kWrite);
  if (!sref_r.ok()) return;
  SlotRef sref = sref_r.MoveValue();
  rid_t garbage = sref.hdr->prev;
  if (garbage == kInvalidRid) return;
  sref.hdr->prev = kInvalidRid;
  sref.guard.MarkDirty();
  // A well-formed garbage list is at most as long as the version chain.
  // Bound the walk defensively: a cycle (chain corruption) must degrade
  // into a bounded slot leak, not an unbounded free-list explosion.
  int freed = 0;
  while (garbage != kInvalidRid) {
    if (++freed > 4096) {
      SPITFIRE_DCHECK(false && "version chain cycle detected");
      return;
    }
    auto gref_r = PinSlot(garbage, AccessIntent::kWrite);
    if (!gref_r.ok()) return;
    SlotRef gref = gref_r.MoveValue();
    const rid_t next = gref.hdr->prev;
    gref.hdr->flags = 0;
    gref.guard.MarkDirty();
    DeferFree(garbage);
    garbage = next;
  }
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

void Table::AdoptPage(page_id_t pid) {
  std::lock_guard<std::mutex> g(alloc_mu_);
  pages_.push_back(pid);
  bump_slot_ = static_cast<uint32_t>(slots_per_page_);  // force fresh page
}

Status Table::RebuildFromHeap(timestamp_t* max_ts) {
  std::vector<page_id_t> pages;
  {
    std::lock_guard<std::mutex> g(alloc_mu_);
    pages = pages_;
    free_list_.clear();
  }
  // newest committed version per key
  std::map<uint64_t, std::pair<timestamp_t, rid_t>> heads;
  // every surviving committed version: rid -> (key, begin_ts)
  std::map<rid_t, std::pair<uint64_t, timestamp_t>> live;
  std::vector<rid_t> holes;
  for (page_id_t pid : pages) {
    for (uint32_t slot = 0; slot < slots_per_page_; ++slot) {
      const rid_t rid = MakeRid(pid, slot);
      SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref,
                                PinSlot(rid, AccessIntent::kWrite));
      VersionHeader* h = ref.hdr;
      if ((h->flags & kFlagAllocated) == 0) {
        holes.push_back(rid);
        continue;
      }
      if (h->begin_ts == kMaxTimestamp) {
        // Uncommitted at crash time: scrub.
        h->flags = 0;
        h->writer = 0;
        ref.guard.MarkDirty();
        holes.push_back(rid);
        continue;
      }
      h->writer = 0;  // stale lock from a crashed transaction
      ref.guard.MarkDirty();
      if (max_ts != nullptr && h->begin_ts > *max_ts) *max_ts = h->begin_ts;
      live[rid] = {h->key, h->begin_ts};
      auto it = heads.find(h->key);
      if (it == heads.end() || it->second.first < h->begin_ts) {
        heads[h->key] = {h->begin_ts, rid};
      }
    }
  }

  // Sever chain links whose target no longer exists or cannot be this
  // version's predecessor: the scrub above (and page quarantine in the
  // recovery scan) removes slots that surviving versions may still point
  // at, and a dangling prev would send readers into a freed — soon
  // reused — slot.
  for (const auto& [rid, kv] : live) {
    SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref, PinSlot(rid, AccessIntent::kWrite));
    const rid_t prev = ref.hdr->prev;
    if (prev == kInvalidRid) continue;
    auto it = live.find(prev);
    if (it == live.end() || it->second.first != kv.first ||
        it->second.second > kv.second) {
      ref.hdr->prev = kInvalidRid;
      ref.guard.MarkDirty();
    }
  }

  // Scrub committed versions no head reaches (tails orphaned by the
  // severing above): nothing can ever read them, and leaving them
  // allocated leaks their slots.
  std::set<rid_t> reachable;
  for (const auto& [key, entry] : heads) {
    rid_t cur = entry.second;
    while (cur != kInvalidRid && reachable.insert(cur).second) {
      SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref, PinSlot(cur, AccessIntent::kRead));
      cur = ref.hdr->prev;
    }
  }
  for (const auto& [rid, kv] : live) {
    if (reachable.count(rid) != 0) continue;
    SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref, PinSlot(rid, AccessIntent::kWrite));
    ref.hdr->flags = 0;
    ref.hdr->writer = 0;
    ref.guard.MarkDirty();
    holes.push_back(rid);
  }

  for (const auto& [key, entry] : heads) {
    SPITFIRE_RETURN_NOT_OK(index_->Upsert(key, entry.second));
  }
  {
    std::lock_guard<std::mutex> g(alloc_mu_);
    for (rid_t rid : holes) free_list_.push_back({rid, 0});
  }
  return Status::OK();
}

Status Table::ValidateHeap(std::string* why) {
  auto fail = [why](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return Status::Corruption(msg);
  };
  std::vector<page_id_t> pages;
  {
    std::lock_guard<std::mutex> g(alloc_mu_);
    pages = pages_;
  }
  std::map<rid_t, std::pair<uint64_t, timestamp_t>> live;
  for (page_id_t pid : pages) {
    for (uint32_t slot = 0; slot < slots_per_page_; ++slot) {
      const rid_t rid = MakeRid(pid, slot);
      SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref, PinSlot(rid, AccessIntent::kRead));
      const VersionHeader* h = ref.hdr;
      if ((h->flags & kFlagAllocated) == 0) continue;
      if (h->begin_ts == kMaxTimestamp) {
        return fail("uncommitted version survived recovery");
      }
      if (h->writer != 0) {
        return fail("version still write-locked on a quiescent table");
      }
      live[rid] = {h->key, h->begin_ts};
    }
  }
  std::map<uint64_t, std::pair<timestamp_t, rid_t>> heads;
  for (const auto& [rid, kv] : live) {
    auto it = heads.find(kv.first);
    if (it == heads.end() || it->second.first < kv.second) {
      heads[kv.first] = {kv.second, rid};
    }
  }
  for (const auto& [key, entry] : heads) {
    // Chain walk: every hop must land on an allocated slot of the same
    // key with a begin_ts no newer than its successor's.
    rid_t cur = entry.second;
    timestamp_t succ_ts = kMaxTimestamp;
    size_t hops = 0;
    while (cur != kInvalidRid) {
      if (++hops > live.size() + 1) return fail("version chain cycle");
      auto it = live.find(cur);
      if (it == live.end()) return fail("chain links to a missing slot");
      if (it->second.first != key) return fail("chain crosses keys");
      if (it->second.second > succ_ts) {
        return fail("chain not ordered newest-first");
      }
      succ_ts = it->second.second;
      SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref, PinSlot(cur, AccessIntent::kRead));
      cur = ref.hdr->prev;
    }
    uint64_t idx_head = 0;
    const Status st = index_->Lookup(key, &idx_head);
    if (!st.ok()) return fail("key present in heap but missing from index");
    if (idx_head != entry.second) {
      return fail("index head is not the newest committed version");
    }
  }
  return Status::OK();
}

Status Table::RecoveryApply(uint64_t key, const void* tuple, timestamp_t ts) {
  uint64_t head = 0;
  const Status st = index_->Lookup(key, &head);
  if (st.ok()) {
    SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref, PinSlot(head, AccessIntent::kRead));
    if (ref.hdr->begin_ts >= ts) return Status::OK();  // already applied
  } else if (!st.IsNotFound()) {
    return st;
  }
  SPITFIRE_ASSIGN_OR_RETURN(const rid_t rid, AllocateSlot());
  {
    SPITFIRE_ASSIGN_OR_RETURN(SlotRef ref, PinSlot(rid, AccessIntent::kWrite));
    VersionHeader h{};
    h.writer = 0;
    h.begin_ts = ts;
    h.read_ts = ts;
    h.prev = st.ok() ? head : kInvalidRid;
    h.key = key;
    h.flags = kFlagAllocated | (tuple == nullptr ? kFlagTombstone : 0);
    std::memcpy(ref.hdr, &h, sizeof(h));
    if (tuple != nullptr) {
      std::memcpy(ref.payload, tuple, opts_.tuple_size);
    } else {
      std::memset(ref.payload, 0, opts_.tuple_size);
    }
    ref.guard.MarkDirty();
  }
  return index_->Upsert(key, rid);
}

}  // namespace spitfire
