#include "txn/mvto_manager.h"

#include <algorithm>

namespace spitfire {

TransactionManager::TransactionManager()
    : slots_(new std::atomic<timestamp_t>[kMaxActiveTxns]) {
  for (uint32_t i = 0; i < kMaxActiveTxns; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  // Claim a slot BEFORE drawing the real timestamp, seeding it with a
  // lower bound (every timestamp the dispenser can still hand out is
  // >= its current value). A concurrent MinActiveTs scan therefore sees
  // either this reservation (<= our eventual ts) or — if it misses the
  // slot — a dispenser value it read AFTER our fetch_add, which its
  // min() clamps against. Both keep the watermark <= our timestamp; the
  // reservation may make it temporarily too low, which only delays GC.
  // The CAS/fetch_add/scan all use seq_cst so "reservation before
  // fetch_add" and "dispenser read before slot scan" order globally.
  thread_local uint32_t hint = 0;
  uint32_t slot = kMaxActiveTxns;
  for (;;) {
    for (uint32_t probe = 0; probe < kMaxActiveTxns; ++probe) {
      const uint32_t i = (hint + probe) % kMaxActiveTxns;
      timestamp_t expected = 0;
      const timestamp_t reservation = next_ts_.load();
      if (slots_[i].compare_exchange_strong(expected, reservation)) {
        slot = i;
        break;
      }
    }
    if (slot != kMaxActiveTxns) break;
    // All kMaxActiveTxns slots busy: wait for a Finish. Unrealistic in
    // practice (it means 4096 concurrently open transactions).
    __builtin_ia32_pause();
  }
  hint = slot + 1;

  const timestamp_t ts = next_ts_.fetch_add(1);
  slots_[slot].store(ts);
  active_count_.fetch_add(1, std::memory_order_relaxed);

  // Transaction ids and timestamps share the dispenser (MVTO assigns a
  // single timestamp per transaction).
  auto txn = std::make_unique<Transaction>(/*id=*/ts, /*ts=*/ts);
  txn->active_slot = slot;
  return txn;
}

void TransactionManager::Finish(Transaction* txn) {
  const uint32_t slot = txn->active_slot;
  if (slot >= kMaxActiveTxns) return;  // never registered / already finished
  txn->active_slot = UINT32_MAX;
  slots_[slot].store(0);
  active_count_.fetch_sub(1, std::memory_order_relaxed);
}

timestamp_t TransactionManager::MinActiveTs() const {
  // Read the dispenser FIRST: any Begin whose timestamp is below this
  // bound performed its slot reservation before our slot reads (seq_cst
  // total order), so the scan observes it. Begins that race past the
  // bound can only raise the minimum, never lower it below `bound`.
  const timestamp_t bound = next_ts_.load();
  timestamp_t min = bound;
  for (uint32_t i = 0; i < kMaxActiveTxns; ++i) {
    const timestamp_t ts = slots_[i].load();
    if (ts != 0) min = std::min(min, ts);
  }
  return min;
}

void TransactionManager::AdvanceTo(timestamp_t ts) {
  timestamp_t cur = next_ts_.load(std::memory_order_relaxed);
  while (ts > cur && !next_ts_.compare_exchange_weak(cur, ts)) {
  }
}

}  // namespace spitfire
