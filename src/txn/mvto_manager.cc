#include "txn/mvto_manager.h"

namespace spitfire {

std::unique_ptr<Transaction> TransactionManager::Begin() {
  const timestamp_t ts = next_ts_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> g(mu_);
    active_.insert(ts);
  }
  // Transaction ids and timestamps share the dispenser (MVTO assigns a
  // single timestamp per transaction).
  return std::make_unique<Transaction>(/*id=*/ts, /*ts=*/ts);
}

void TransactionManager::Finish(Transaction* txn) {
  std::lock_guard<std::mutex> g(mu_);
  auto it = active_.find(txn->ts());
  if (it != active_.end()) active_.erase(it);
}

timestamp_t TransactionManager::MinActiveTs() const {
  std::lock_guard<std::mutex> g(mu_);
  if (active_.empty()) return next_ts_.load(std::memory_order_relaxed);
  return *active_.begin();
}

void TransactionManager::AdvanceTo(timestamp_t ts) {
  timestamp_t cur = next_ts_.load(std::memory_order_relaxed);
  while (ts > cur && !next_ts_.compare_exchange_weak(cur, ts)) {
  }
}

uint64_t TransactionManager::active_count() const {
  std::lock_guard<std::mutex> g(mu_);
  return active_.size();
}

}  // namespace spitfire
