#ifndef SPITFIRE_TXN_MVTO_MANAGER_H_
#define SPITFIRE_TXN_MVTO_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <set>

#include "common/status.h"
#include "txn/transaction.h"

namespace spitfire {

// Timestamp authority and active-transaction registry for the MVTO
// protocol (Wu et al. [39]). Visibility/conflict rules are applied by the
// versioned table heap (db/table.h); this class owns timestamps and the
// garbage-collection watermark.
class TransactionManager {
 public:
  TransactionManager() = default;
  SPITFIRE_DISALLOW_COPY_AND_MOVE(TransactionManager);

  // Starts a transaction with a fresh timestamp.
  std::unique_ptr<Transaction> Begin();

  // Removes the transaction from the active set (after commit or abort
  // processing completes).
  void Finish(Transaction* txn);

  // GC watermark: versions invisible to every timestamp >= MinActiveTs()
  // can be unlinked, and unlinked slots can be recycled once the txns that
  // might still traverse them have finished.
  timestamp_t MinActiveTs() const;

  timestamp_t LastAssignedTs() const {
    return next_ts_.load(std::memory_order_relaxed) - 1;
  }

  // Restores the dispenser after recovery so new timestamps exceed any
  // recovered ones.
  void AdvanceTo(timestamp_t ts);

  uint64_t active_count() const;

 private:
  std::atomic<timestamp_t> next_ts_{1};
  mutable std::mutex mu_;
  std::multiset<timestamp_t> active_;
};

}  // namespace spitfire

#endif  // SPITFIRE_TXN_MVTO_MANAGER_H_
