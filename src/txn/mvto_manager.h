#ifndef SPITFIRE_TXN_MVTO_MANAGER_H_
#define SPITFIRE_TXN_MVTO_MANAGER_H_

#include <atomic>
#include <memory>

#include "common/status.h"
#include "txn/transaction.h"

namespace spitfire {

// Timestamp authority and active-transaction registry for the MVTO
// protocol (Wu et al. [39]). Visibility/conflict rules are applied by the
// versioned table heap (db/table.h); this class owns timestamps and the
// garbage-collection watermark.
//
// The registry is a fixed-size slot array of atomic timestamps (0 =
// free): Begin claims a slot with one CAS and Finish releases it with one
// store, so transaction start/finish is lock-free and stops being a
// global serial point under the sharded buffer manager. MinActiveTs()
// scans the array without locking; see Begin() for why the scan can never
// overtake a transaction that is mid-Begin.
class TransactionManager {
 public:
  // Upper bound on concurrently active transactions. 4096 slots of 8
  // bytes is one page of memory; Begin spins (it cannot fail) in the
  // pathological case that all slots are claimed.
  static constexpr uint32_t kMaxActiveTxns = 4096;

  TransactionManager();
  SPITFIRE_DISALLOW_COPY_AND_MOVE(TransactionManager);

  // Starts a transaction with a fresh timestamp.
  std::unique_ptr<Transaction> Begin();

  // Removes the transaction from the active set (after commit or abort
  // processing completes).
  void Finish(Transaction* txn);

  // GC watermark: versions invisible to every timestamp >= MinActiveTs()
  // can be unlinked, and unlinked slots can be recycled once the txns that
  // might still traverse them have finished. Lock-free; the result is a
  // conservative lower bound (it may trail the true minimum when Finish
  // races the scan, which only delays GC, never breaks it).
  timestamp_t MinActiveTs() const;

  timestamp_t LastAssignedTs() const {
    return next_ts_.load(std::memory_order_relaxed) - 1;
  }

  // Restores the dispenser after recovery so new timestamps exceed any
  // recovered ones.
  void AdvanceTo(timestamp_t ts);

  uint64_t active_count() const {
    return active_count_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<timestamp_t> next_ts_{1};

  // One cacheline per slot would burn 256 KB; timestamps are claimed
  // rarely (once per txn) relative to MinActiveTs scans, and the scan
  // wants density, so plain packed atomics win here.
  std::unique_ptr<std::atomic<timestamp_t>[]> slots_;
  std::atomic<uint64_t> active_count_{0};
};

}  // namespace spitfire

#endif  // SPITFIRE_TXN_MVTO_MANAGER_H_
