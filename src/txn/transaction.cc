#include "txn/transaction.h"

// Transaction is header-only; this file anchors the translation unit.
