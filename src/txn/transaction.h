#ifndef SPITFIRE_TXN_TRANSACTION_H_
#define SPITFIRE_TXN_TRANSACTION_H_

#include <cstdint>
#include <vector>

#include "common/constants.h"
#include "common/macros.h"

namespace spitfire {

class FetchContext;

enum class TxnState : uint8_t { kActive, kCommitted, kAborted };

// Record id: (page_id << 16) | slot. Tables have < 2^48 pages and < 2^16
// slots per page.
using rid_t = uint64_t;
inline constexpr rid_t kInvalidRid = UINT64_MAX;
inline rid_t MakeRid(page_id_t pid, uint32_t slot) {
  return (pid << 16) | slot;
}
inline page_id_t RidPage(rid_t rid) { return rid >> 16; }
inline uint32_t RidSlot(rid_t rid) { return static_cast<uint32_t>(rid & 0xFFFF); }

// A transaction under multi-version timestamp ordering (MVTO, [39]).
// MVTO assigns one timestamp at begin; it doubles as the commit timestamp,
// and all conflict checks compare against it.
class Transaction {
 public:
  // One staged write, tracked for commit finalization / abort rollback.
  struct WriteOp {
    enum class Kind : uint8_t { kInsert, kUpdate, kDelete } kind;
    uint32_t table_id;
    uint64_t key;
    rid_t new_rid;  // version installed by this txn
    rid_t old_rid;  // previous head (kUpdate only)
  };

  Transaction(txn_id_t id, timestamp_t ts) : id_(id), ts_(ts) {}
  SPITFIRE_DISALLOW_COPY_AND_MOVE(Transaction);

  txn_id_t id() const { return id_; }
  timestamp_t ts() const { return ts_; }
  TxnState state() const { return state_; }
  void set_state(TxnState s) { state_ = s; }

  lsn_t last_lsn = kInvalidLsn;
  std::vector<WriteOp> write_set;
  // Optional asynchronous-fetch continuation (non-owning). When set by an
  // interleaved executor, table/index operations running under this
  // transaction park buffer misses on it and surface WouldBlock instead of
  // blocking the worker thread; null (the default) keeps every access
  // blocking. Only consulted at WouldBlock-safe points — side-effecting
  // stretches of the write path always block regardless.
  FetchContext* fetch_ctx = nullptr;
  // Index of this transaction's slot in the TransactionManager's active
  // registry (set by Begin, cleared by Finish). Not meaningful to anyone
  // else.
  uint32_t active_slot = UINT32_MAX;

 private:
  const txn_id_t id_;
  const timestamp_t ts_;
  TxnState state_ = TxnState::kActive;
};

}  // namespace spitfire

#endif  // SPITFIRE_TXN_TRANSACTION_H_
