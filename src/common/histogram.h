#ifndef SPITFIRE_COMMON_HISTOGRAM_H_
#define SPITFIRE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spitfire {

// Log-bucketed latency histogram (nanosecond samples). Not thread-safe;
// each worker keeps its own and merges at the end of a run.
class Histogram {
 public:
  Histogram();

  void Add(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double Mean() const;
  // Approximate percentile (p in [0, 100]) from bucket boundaries.
  uint64_t Percentile(double p) const;
  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64;
  static int BucketFor(uint64_t value);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace spitfire

#endif  // SPITFIRE_COMMON_HISTOGRAM_H_
