#ifndef SPITFIRE_COMMON_RANDOM_H_
#define SPITFIRE_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace spitfire {

// xoshiro256** 1.0 — a small, fast, high-quality PRNG. Each worker thread
// owns one instance so no synchronization is needed on the hot path.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  uint64_t Next();

  // Uniform in [0, n).
  uint64_t NextUint64(uint64_t n) {
    SPITFIRE_DCHECK(n > 0);
    return Next() % n;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability p.
  bool Bernoulli(double p) {
    if (p >= 1.0) return true;
    if (p <= 0.0) return false;
    return NextDouble() < p;
  }

 private:
  uint64_t s_[4];
};

// Returns a reference to this thread's PRNG, seeded from the thread id.
Xoshiro256& ThreadLocalRng();

// Zipfian key generator over [0, n), following the rejection-free method of
// Gray et al., "Quickly Generating Billion-Record Synthetic Databases"
// (SIGMOD '94) — the same construction YCSB uses. theta in [0, 1): 0 is
// uniform; the paper's experiments use 0.3 and 0.5.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta);

  uint64_t Next(Xoshiro256& rng);
  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

// Scrambles zipfian output across the key space with a multiplicative hash
// so hot keys are spread over pages (YCSB's "scrambled zipfian").
class ScrambledZipfianGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t n, double theta) : n_(n), zipf_(n, theta) {}

  uint64_t Next(Xoshiro256& rng) {
    uint64_t v = zipf_.Next(rng);
    return Hash(v) % n_;
  }

  static uint64_t Hash(uint64_t v) {
    v ^= v >> 33;
    v *= 0xFF51AFD7ED558CCDULL;
    v ^= v >> 33;
    v *= 0xC4CEB9FE1A85EC53ULL;
    v ^= v >> 33;
    return v;
  }

 private:
  uint64_t n_;
  ZipfianGenerator zipf_;
};

}  // namespace spitfire

#endif  // SPITFIRE_COMMON_RANDOM_H_
