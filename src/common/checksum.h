#ifndef SPITFIRE_COMMON_CHECKSUM_H_
#define SPITFIRE_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace spitfire {

// 64-bit FNV-1a over a byte range. Used to detect torn/short device writes
// on structures recovery trusts (page images, catalog slots, log file
// header). Not cryptographic; collision resistance against random
// corruption is all that's needed.
inline uint64_t Checksum64(const void* data, size_t len) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  // A zero checksum is reserved as "unstamped"; remap the (astronomically
  // rare) real zero so verifiers can distinguish the two.
  return h == 0 ? 1 : h;
}

}  // namespace spitfire

#endif  // SPITFIRE_COMMON_CHECKSUM_H_
