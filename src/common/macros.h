#ifndef SPITFIRE_COMMON_MACROS_H_
#define SPITFIRE_COMMON_MACROS_H_

#include <cassert>
#include <cstdio>
#include <cstdlib>

// Marks a class as neither copyable nor movable. Place in the public section.
#define SPITFIRE_DISALLOW_COPY_AND_MOVE(cname)      \
  cname(const cname&) = delete;                     \
  cname& operator=(const cname&) = delete;          \
  cname(cname&&) = delete;                          \
  cname& operator=(cname&&) = delete

// Internal invariant checks. DCHECK compiles out in release builds (NDEBUG);
// CHECK always aborts with a message when the condition is violated.
#define SPITFIRE_CHECK(expr)                                                \
  do {                                                                      \
    if (!(expr)) {                                                          \
      std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", #expr, __FILE__,  \
                   __LINE__);                                               \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define SPITFIRE_DCHECK(expr) ((void)0)
#else
#define SPITFIRE_DCHECK(expr) SPITFIRE_CHECK(expr)
#endif

#define SPITFIRE_LIKELY(x) __builtin_expect(!!(x), 1)
#define SPITFIRE_UNLIKELY(x) __builtin_expect(!!(x), 0)

namespace spitfire {

inline constexpr size_t kCacheLineSize = 64;

}  // namespace spitfire

#endif  // SPITFIRE_COMMON_MACROS_H_
