#include "common/status.h"

namespace spitfire {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kOutOfMemory: return "OutOfMemory";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kAborted: return "Aborted";
    case StatusCode::kBusy: return "Busy";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kNotSupported: return "NotSupported";
    case StatusCode::kWouldBlock: return "WouldBlock";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace spitfire
