#include "common/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace spitfire {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketFor(uint64_t value) {
  if (value == 0) return 0;
  return std::min(kNumBuckets - 1, 64 - std::countl_zero(value));
}

void Histogram::Add(uint64_t value) {
  buckets_[BucketFor(value)]++;
  count_++;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
}

uint64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  const uint64_t target =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= target) {
      // Upper bound of bucket i is 2^i (bucket 0 holds zeros).
      return i == 0 ? 0 : (1ULL << i);
    }
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.1f min=%llu p50=%llu p99=%llu max=%llu",
                static_cast<unsigned long long>(count_), Mean(),
                static_cast<unsigned long long>(min()),
                static_cast<unsigned long long>(Percentile(50)),
                static_cast<unsigned long long>(Percentile(99)),
                static_cast<unsigned long long>(max_));
  return buf;
}

}  // namespace spitfire
