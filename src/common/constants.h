#ifndef SPITFIRE_COMMON_CONSTANTS_H_
#define SPITFIRE_COMMON_CONSTANTS_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace spitfire {

// Logical page identifier. Page ids are allocated densely starting at 0.
using page_id_t = uint64_t;
inline constexpr page_id_t kInvalidPageId =
    std::numeric_limits<page_id_t>::max();

// Frame index within a buffer pool.
using frame_id_t = uint32_t;
inline constexpr frame_id_t kInvalidFrameId =
    std::numeric_limits<frame_id_t>::max();

// Transaction identifiers / timestamps (MVTO).
using txn_id_t = uint64_t;
using timestamp_t = uint64_t;
inline constexpr txn_id_t kInvalidTxnId = 0;
inline constexpr timestamp_t kMaxTimestamp =
    std::numeric_limits<timestamp_t>::max();

// Log sequence numbers.
using lsn_t = uint64_t;
inline constexpr lsn_t kInvalidLsn = std::numeric_limits<lsn_t>::max();

// Page geometry, matching the paper: 16 KB pages composed of 256 cache
// lines of 64 B each (Figure 2).
inline constexpr size_t kPageSize = 16 * 1024;
inline constexpr size_t kCacheLinesPerPage = kPageSize / 64;

// Mini pages hold up to sixteen cache lines (Figure 2b).
inline constexpr size_t kMiniPageSlots = 16;

// Storage tiers of the hierarchy (Figure 3).
enum class Tier : uint8_t { kDram = 0, kNvm = 1, kSsd = 2 };

inline const char* TierName(Tier t) {
  switch (t) {
    case Tier::kDram: return "DRAM";
    case Tier::kNvm: return "NVM";
    case Tier::kSsd: return "SSD";
  }
  return "?";
}

}  // namespace spitfire

#endif  // SPITFIRE_COMMON_CONSTANTS_H_
