#include "common/timer.h"

namespace spitfire {

void SpinWaitNanos(uint64_t nanos) {
  if (nanos == 0) return;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(nanos);
  while (std::chrono::steady_clock::now() < deadline) {
    __builtin_ia32_pause();
  }
}

}  // namespace spitfire
