#ifndef SPITFIRE_COMMON_TIMER_H_
#define SPITFIRE_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace spitfire {

// Monotonic wall-clock timer.
class Timer {
 public:
  Timer() { Reset(); }

  void Reset() { start_ = std::chrono::steady_clock::now(); }

  uint64_t ElapsedNanos() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }
  double ElapsedSeconds() const { return ElapsedNanos() * 1e-9; }
  double ElapsedMillis() const { return ElapsedNanos() * 1e-6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Busy-waits for approximately `nanos` nanoseconds. Used by the device
// latency model: sleeping is far too coarse at the sub-microsecond scale of
// DRAM/NVM accesses, so we spin on the TSC-backed steady clock instead.
void SpinWaitNanos(uint64_t nanos);

// Current steady-clock time in nanoseconds. Completion deadlines from the
// async device model are expressed on this clock.
inline uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace spitfire

#endif  // SPITFIRE_COMMON_TIMER_H_
