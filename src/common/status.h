#ifndef SPITFIRE_COMMON_STATUS_H_
#define SPITFIRE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace spitfire {

// Error codes surfaced by the public API. Kept deliberately small; the
// message carries the details.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kOutOfMemory,   // buffer pool or device exhausted
  kIoError,       // simulated or real device I/O failure
  kInvalidArgument,
  kAborted,       // transaction aborted (MVTO conflict)
  kBusy,          // resource latched / retry later
  kCorruption,    // recovery or checksum failure
  kNotSupported,
  kWouldBlock,    // async fetch queued; unwind and resume when it fires
};

// Arrow/RocksDB-style status object. Functions that can fail return Status
// (or Result<T> below) instead of throwing.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfMemory(std::string msg = "") {
    return Status(StatusCode::kOutOfMemory, std::move(msg));
  }
  static Status IoError(std::string msg = "") {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(StatusCode::kBusy, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status WouldBlock(std::string msg = "") {
    return Status(StatusCode::kWouldBlock, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsWouldBlock() const { return code_ == StatusCode::kWouldBlock; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

// Returns early with the error if `expr` evaluates to a non-OK Status.
#define SPITFIRE_RETURN_NOT_OK(expr)            \
  do {                                          \
    ::spitfire::Status _st = (expr);            \
    if (SPITFIRE_UNLIKELY(!_st.ok())) return _st; \
  } while (0)

// A value-or-error holder, in the spirit of arrow::Result.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors arrow::Result.
  Result(T value) : v_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : v_(std::move(status)) {
    SPITFIRE_DCHECK(!std::get<Status>(v_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(v_); }
  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }
  T& value() {
    SPITFIRE_DCHECK(ok());
    return std::get<T>(v_);
  }
  const T& value() const {
    SPITFIRE_DCHECK(ok());
    return std::get<T>(v_);
  }
  T&& MoveValue() {
    SPITFIRE_DCHECK(ok());
    return std::move(std::get<T>(v_));
  }

 private:
  std::variant<T, Status> v_;
};

#define SPITFIRE_ASSIGN_OR_RETURN(lhs, rexpr)               \
  auto _res_##__LINE__ = (rexpr);                           \
  if (SPITFIRE_UNLIKELY(!_res_##__LINE__.ok()))             \
    return _res_##__LINE__.status();                        \
  lhs = _res_##__LINE__.MoveValue()

}  // namespace spitfire

#endif  // SPITFIRE_COMMON_STATUS_H_
