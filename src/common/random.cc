#include "common/random.h"

#include <atomic>
#include <cmath>

namespace spitfire {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
uint64_t SplitMix64(uint64_t& x) {
  uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

Xoshiro256& ThreadLocalRng() {
  static std::atomic<uint64_t> counter{1};
  thread_local Xoshiro256 rng(counter.fetch_add(0x9E3779B97F4A7C15ULL) ^
                              0xD1B54A32D192ED03ULL);
  return rng;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  SPITFIRE_CHECK(n > 0);
  SPITFIRE_CHECK(theta >= 0.0 && theta < 1.0);
  if (theta == 0.0) {
    // Degenerates to uniform; handled in Next().
    alpha_ = zetan_ = eta_ = 0.0;
    return;
  }
  alpha_ = 1.0 / (1.0 - theta);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Xoshiro256& rng) {
  if (theta_ == 0.0) return rng.NextUint64(n_);
  const double u = rng.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace spitfire
