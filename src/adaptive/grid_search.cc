#include "adaptive/grid_search.h"

#include <cstdio>

namespace spitfire {

std::string StorageConfig::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "DRAM=%lluMB NVM=%lluMB SSD=%lluMB ($%.0f)",
                static_cast<unsigned long long>(dram_bytes >> 20),
                static_cast<unsigned long long>(nvm_bytes >> 20),
                static_cast<unsigned long long>(ssd_bytes >> 20),
                CostDollars());
  return buf;
}

const GridPoint* GridSearch::BestPerfPerPrice(
    const std::vector<GridPoint>& grid) {
  const GridPoint* best = nullptr;
  for (const GridPoint& p : grid) {
    if (best == nullptr || p.PerfPerPrice() > best->PerfPerPrice()) best = &p;
  }
  return best;
}

const GridPoint* GridSearch::BestThroughput(
    const std::vector<GridPoint>& grid) {
  const GridPoint* best = nullptr;
  for (const GridPoint& p : grid) {
    if (best == nullptr || p.throughput > best->throughput) best = &p;
  }
  return best;
}

const GridPoint* GridSearch::BestWithinBudget(
    const std::vector<GridPoint>& grid, double budget_dollars) {
  const GridPoint* best = nullptr;
  for (const GridPoint& p : grid) {
    if (p.config.CostDollars() > budget_dollars) continue;
    if (best == nullptr || p.PerfPerPrice() > best->PerfPerPrice()) best = &p;
  }
  return best;
}

}  // namespace spitfire
