#ifndef SPITFIRE_ADAPTIVE_ONLINE_TUNER_H_
#define SPITFIRE_ADAPTIVE_ONLINE_TUNER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>

#include "adaptive/annealing_tuner.h"
#include "buffer/migration_policy.h"
#include "buffer/stats.h"

namespace spitfire {

class BufferManager;

// Continuous online tuning of the migration probabilities ⟨Dr,Dw,Nr,Nw⟩
// (Section 4, promoted from the offline epoch loop in bench/fig10).
//
// A background thread samples BufferStats every `window_seconds` and runs
// a small state machine over the per-window deltas:
//
//   annealing ──temperature floor──> holding ──sustained drift──> annealing
//
//  - While ANNEALING, each window's throughput (fetch delta / window) is an
//    epoch for the simulated-annealing search: the tuner applies the next
//    candidate policy to the live BufferManager (SetPolicy is lock-free)
//    and cools. Online windows are short and noisy, so the default
//    schedule is much hotter-to-colder than the paper's offline one
//    (t0=2.0, alpha=0.8, floor 0.01 → ~24 windows per convergence).
//  - Once converged it HOLDS the best policy and watches the workload-mix
//    signature: per-window counter deltas normalized by total fetches
//    (DRAM/NVM hit shares, SSD fetch share, promotion/demotion rates,
//    write-intent share). The baseline tracks slow change via EMA;
//    re-convergence triggers only after `drift_windows` CONSECUTIVE
//    windows whose L1 distance from the baseline exceeds
//    `drift_threshold` (hysteresis — a single odd window never thrashes
//    the policy), and the annealing restart is seeded from the best
//    policy so far (warm restart).
//  - Windows with less than `min_window_fetches` replacer-visible
//    activity — fetches plus sampled hit accesses plus read-ahead
//    installs — are ignored entirely: an idle system neither anneals nor
//    drifts. (Gating on fetches alone made the tuner idle through pure
//    scan phases, whose windows are latency-bound: one fetch per
//    multi-hundred-µs op leaves the fetch delta under any useful
//    threshold even at full load.)
//
// The sampling and policy-application points are injected as callbacks so
// tests can drive Step() deterministically with synthetic snapshots; the
// BufferManager convenience constructor wires stats().Snapshot() and
// SetPolicy(). Start()/Stop() manage the thread (Stop is idempotent and
// runs in the destructor).
struct OnlineTunerOptions {
  double window_seconds = 0.05;
  // Annealing schedule for online windows (see above); `annealing.seed`
  // etc. can still be overridden by the caller.
  AnnealingOptions annealing = [] {
    AnnealingOptions a;
    a.initial_temperature = 2.0;
    a.min_temperature = 0.01;
    a.cooling_rate = 0.8;
    return a;
  }();
  // Workload-drift detection (holding state).
  double drift_threshold = 0.35;  // L1 distance over the signature vector
  int drift_windows = 3;          // consecutive drifted windows required
  double baseline_ema = 0.2;      // baseline <- (1-ema)*baseline + ema*sig
  // Minimum replacer-visible activity (fetches + sampled accesses +
  // read-ahead installs) for a window to count. Name kept for
  // compatibility with existing configs.
  uint64_t min_window_fetches = 256;
};

class OnlineTuner {
 public:
  using SampleFn = std::function<BufferStatsSnapshot()>;
  using ApplyFn = std::function<void(const MigrationPolicy&)>;

  // Wires sampling to bm->stats().Snapshot() and application to
  // bm->SetPolicy(); starts from bm->policy().
  OnlineTuner(BufferManager* bm, const OnlineTunerOptions& options);
  // Callback form for tests and custom embeddings. No thread is started
  // until Start().
  OnlineTuner(SampleFn sample, ApplyFn apply, MigrationPolicy initial,
              const OnlineTunerOptions& options);
  ~OnlineTuner();
  SPITFIRE_DISALLOW_COPY_AND_MOVE(OnlineTuner);

  void Start();
  void Stop();

  // One tuning window over the delta since the previous Step (or since
  // construction). `window_seconds` is the wall time the delta covers.
  // The background thread calls this on its tick; tests call it directly.
  void Step(const BufferStatsSnapshot& snapshot, double window_seconds);

  // Introspection (all safe to read concurrently with the thread).
  bool converged() const {
    return converged_.load(std::memory_order_relaxed);
  }
  MigrationPolicy policy() const {
    std::lock_guard<std::mutex> l(mu_);
    return applied_;
  }
  uint64_t windows() const { return windows_.load(std::memory_order_relaxed); }
  uint64_t reconvergences() const {
    return reconvergences_.load(std::memory_order_relaxed);
  }
  // Window index at which the current (or latest) annealing run converged.
  uint64_t last_converged_window() const {
    return last_converged_window_.load(std::memory_order_relaxed);
  }

 private:
  // Normalized workload-mix signature of one window's counter deltas.
  struct Signature {
    static constexpr int kDims = 7;
    double v[kDims] = {};
    static Signature FromDelta(const BufferStatsSnapshot& delta);
    double L1Distance(const Signature& other) const;
  };

  void ThreadLoop();
  void ApplyLocked(const MigrationPolicy& p);

  const OnlineTunerOptions options_;
  SampleFn sample_;
  ApplyFn apply_;

  mutable std::mutex mu_;  // guards tuner_, baseline_, applied_
  std::optional<AnnealingTuner> tuner_;
  MigrationPolicy applied_;
  BufferStatsSnapshot prev_;
  bool have_prev_ = false;
  std::optional<Signature> baseline_;
  int drift_run_ = 0;

  std::atomic<bool> converged_{false};
  std::atomic<uint64_t> windows_{0};
  std::atomic<uint64_t> reconvergences_{0};
  std::atomic<uint64_t> last_converged_window_{0};

  std::thread thread_;
  std::condition_variable cv_;
  std::mutex thread_mu_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace spitfire

#endif  // SPITFIRE_ADAPTIVE_ONLINE_TUNER_H_
