#ifndef SPITFIRE_ADAPTIVE_GRID_SEARCH_H_
#define SPITFIRE_ADAPTIVE_GRID_SEARCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/perf_model.h"

namespace spitfire {

// A candidate multi-tier storage hierarchy for the storage-system-design
// problem of Sections 5.3 / 6.6: DRAM and NVM buffer capacities on top of
// a fixed SSD.
struct StorageConfig {
  uint64_t dram_bytes = 0;
  uint64_t nvm_bytes = 0;
  uint64_t ssd_bytes = 0;

  // Total device cost in dollars using the Table 1 prices.
  double CostDollars() const {
    return static_cast<double>(dram_bytes) / 1e9 *
               DeviceProfile::Dram().price_per_gb +
           static_cast<double>(nvm_bytes) / 1e9 *
               DeviceProfile::OptaneNvm().price_per_gb +
           static_cast<double>(ssd_bytes) / 1e9 *
               DeviceProfile::OptaneSsd().price_per_gb;
  }

  std::string ToString() const;
};

// One measured grid point: a hierarchy and the throughput a workload
// achieved on it.
struct GridPoint {
  StorageConfig config;
  double throughput = 0;

  // Operations per second per dollar — the paper's performance/price
  // metric (Section 6.6).
  double PerfPerPrice() const {
    const double cost = config.CostDollars();
    return cost > 0 ? throughput / cost : 0.0;
  }
};

// Utilities over a measured grid (Figure 14's analysis).
class GridSearch {
 public:
  // The grid point with the highest performance/price.
  static const GridPoint* BestPerfPerPrice(const std::vector<GridPoint>& grid);
  // The grid point with the highest absolute throughput.
  static const GridPoint* BestThroughput(const std::vector<GridPoint>& grid);
  // The best performance/price among configurations costing at most
  // `budget_dollars`. Returns nullptr if none qualify.
  static const GridPoint* BestWithinBudget(const std::vector<GridPoint>& grid,
                                           double budget_dollars);
};

}  // namespace spitfire

#endif  // SPITFIRE_ADAPTIVE_GRID_SEARCH_H_
