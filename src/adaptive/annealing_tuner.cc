#include "adaptive/annealing_tuner.h"

#include <cmath>
#include <limits>

#include "common/macros.h"

namespace spitfire {

AnnealingTuner::AnnealingTuner(const AnnealingOptions& options,
                               MigrationPolicy initial)
    : options_(options),
      rng_(options.seed),
      accepted_(initial),
      accepted_cost_(std::numeric_limits<double>::infinity()),
      candidate_(initial),
      best_(initial),
      temperature_(options.initial_temperature) {
  SPITFIRE_CHECK(!options_.lattice.empty());
}

int AnnealingTuner::LatticeIndex(double v) const {
  int best = 0;
  double best_d = std::abs(options_.lattice[0] - v);
  for (size_t i = 1; i < options_.lattice.size(); ++i) {
    const double d = std::abs(options_.lattice[i] - v);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(i);
    }
  }
  return best;
}

MigrationPolicy AnnealingTuner::ProposeNeighbor(const MigrationPolicy& from) {
  MigrationPolicy next = from;
  // Pick one of the four dimensions and move it to an adjacent lattice
  // value.
  double* dims[4] = {&next.dr, &next.dw, &next.nr, &next.nw};
  double* dim = dims[rng_.NextUint64(4)];
  const int idx = LatticeIndex(*dim);
  const int last = static_cast<int>(options_.lattice.size()) - 1;
  int nidx;
  if (idx == 0) {
    nidx = 1;
  } else if (idx == last) {
    nidx = last - 1;
  } else {
    nidx = rng_.Bernoulli(0.5) ? idx - 1 : idx + 1;
  }
  *dim = options_.lattice[static_cast<size_t>(nidx)];
  return next;
}

MigrationPolicy AnnealingTuner::OnEpochComplete(double throughput) {
  ++epochs_;
  const double cost = throughput > 0
                          ? options_.cost_scale / throughput
                          : std::numeric_limits<double>::infinity();
  if (throughput > best_throughput_) {
    best_throughput_ = throughput;
    best_ = candidate_;
  }

  bool accept;
  if (cost <= accepted_cost_) {
    accept = true;
  } else {
    const double delta = cost - accepted_cost_;
    accept = rng_.NextDouble() < std::exp(-delta / temperature_);
  }
  if (accept) {
    accepted_ = candidate_;
    accepted_cost_ = cost;
  }

  temperature_ =
      std::max(options_.min_temperature, temperature_ * options_.cooling_rate);

  if (converged()) {
    // Exploit: stick to the best policy found.
    candidate_ = best_;
  } else {
    candidate_ = ProposeNeighbor(accepted_);
  }
  return candidate_;
}

}  // namespace spitfire
