#ifndef SPITFIRE_ADAPTIVE_ANNEALING_TUNER_H_
#define SPITFIRE_ADAPTIVE_ANNEALING_TUNER_H_

#include <vector>

#include "buffer/migration_policy.h"
#include "common/random.h"

namespace spitfire {

// Simulated-annealing search over the migration-policy lattice
// (Section 4). Spitfire measures throughput over an epoch, converts it to
// a cost (cost = scale / throughput), and anneals: worse policies are
// accepted with probability exp(-Δcost / t), with the temperature t
// cooling geometrically so the search narrows onto a near-optimal policy.
struct AnnealingOptions {
  double initial_temperature = 800.0;   // paper's t0
  double min_temperature = 0.00008;     // paper's final temperature
  double cooling_rate = 0.9;            // paper's alpha
  double cost_scale = 1e6;              // cost = cost_scale / throughput
  // Candidate values for each probability; the neighbor move changes one
  // dimension to an adjacent lattice point.
  std::vector<double> lattice = {0.0, 0.01, 0.1, 0.5, 1.0};
  uint64_t seed = 0x5A5A;
};

class AnnealingTuner {
 public:
  AnnealingTuner(const AnnealingOptions& options, MigrationPolicy initial);

  // The policy the caller should run for the next epoch.
  const MigrationPolicy& current() const { return candidate_; }

  // Reports the throughput observed while running current(); returns the
  // policy for the next epoch (accepting or rejecting the last move and
  // proposing a new neighbor).
  MigrationPolicy OnEpochComplete(double throughput);

  // Best policy (lowest cost) observed so far.
  const MigrationPolicy& best() const { return best_; }
  double best_throughput() const { return best_throughput_; }
  double temperature() const { return temperature_; }
  uint64_t epochs() const { return epochs_; }
  bool converged() const { return temperature_ <= options_.min_temperature; }

 private:
  MigrationPolicy ProposeNeighbor(const MigrationPolicy& from);
  int LatticeIndex(double v) const;

  AnnealingOptions options_;
  Xoshiro256 rng_;

  MigrationPolicy accepted_;   // last accepted policy
  double accepted_cost_;
  MigrationPolicy candidate_;  // policy being evaluated this epoch
  MigrationPolicy best_;
  double best_throughput_ = 0;
  double temperature_;
  uint64_t epochs_ = 0;
};

}  // namespace spitfire

#endif  // SPITFIRE_ADAPTIVE_ANNEALING_TUNER_H_
