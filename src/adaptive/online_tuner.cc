#include "adaptive/online_tuner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "buffer/buffer_manager.h"

namespace spitfire {

OnlineTuner::Signature OnlineTuner::Signature::FromDelta(
    const BufferStatsSnapshot& delta) {
  Signature s;
  const double total =
      std::max<double>(1.0, static_cast<double>(delta.TotalFetches()));
  s.v[0] = static_cast<double>(delta.dram_hits) / total;
  s.v[1] = static_cast<double>(delta.nvm_hits) / total;
  s.v[2] = static_cast<double>(delta.ssd_fetches) / total;
  s.v[3] = static_cast<double>(delta.promotions) / total;
  s.v[4] = static_cast<double>(delta.demotions_to_nvm + delta.demotions_to_ssd) /
           total;
  s.v[5] = static_cast<double>(delta.nvm_installs) / total;
  s.v[6] = static_cast<double>(delta.write_fetches) / total;
  return s;
}

double OnlineTuner::Signature::L1Distance(const Signature& other) const {
  double d = 0;
  for (int i = 0; i < kDims; ++i) d += std::fabs(v[i] - other.v[i]);
  return d;
}

OnlineTuner::OnlineTuner(BufferManager* bm, const OnlineTunerOptions& options)
    : OnlineTuner([bm] { return bm->stats().Snapshot(); },
                  [bm](const MigrationPolicy& p) { bm->SetPolicy(p); },
                  bm->policy(), options) {}

OnlineTuner::OnlineTuner(SampleFn sample, ApplyFn apply,
                         MigrationPolicy initial,
                         const OnlineTunerOptions& options)
    : options_(options),
      sample_(std::move(sample)),
      apply_(std::move(apply)),
      applied_(initial) {
  tuner_.emplace(options_.annealing, initial);
  // Run the first candidate from the start so window 1 measures it.
  ApplyLocked(tuner_->current());
}

OnlineTuner::~OnlineTuner() { Stop(); }

void OnlineTuner::ApplyLocked(const MigrationPolicy& p) {
  applied_ = p;
  apply_(p);
}

void OnlineTuner::Start() {
  std::lock_guard<std::mutex> l(thread_mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { ThreadLoop(); });
}

void OnlineTuner::Stop() {
  {
    std::lock_guard<std::mutex> l(thread_mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_one();
  thread_.join();
  {
    std::lock_guard<std::mutex> l(thread_mu_);
    running_ = false;
  }
}

void OnlineTuner::ThreadLoop() {
  std::unique_lock<std::mutex> l(thread_mu_);
  while (!stop_) {
    cv_.wait_for(
        l, std::chrono::duration<double>(options_.window_seconds),
        [this] { return stop_; });
    if (stop_) break;
    l.unlock();
    Step(sample_(), options_.window_seconds);
    l.lock();
  }
}

void OnlineTuner::Step(const BufferStatsSnapshot& snapshot,
                       double window_seconds) {
  std::lock_guard<std::mutex> l(mu_);
  BufferStatsSnapshot delta = snapshot;
  if (have_prev_) {
    // Counters are monotonic; field-wise subtraction yields the window.
    delta.dram_hits -= prev_.dram_hits;
    delta.nvm_hits -= prev_.nvm_hits;
    delta.ssd_fetches -= prev_.ssd_fetches;
    delta.promotions -= prev_.promotions;
    delta.demotions_to_nvm -= prev_.demotions_to_nvm;
    delta.demotions_to_ssd -= prev_.demotions_to_ssd;
    delta.nvm_installs -= prev_.nvm_installs;
    delta.nvm_evictions -= prev_.nvm_evictions;
    delta.dram_evictions -= prev_.dram_evictions;
    delta.write_fetches -= prev_.write_fetches;
    delta.replacer_sampled -= prev_.replacer_sampled;
    delta.read_ahead_installs -= prev_.read_ahead_installs;
  }
  prev_ = snapshot;
  have_prev_ = true;

  windows_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t fetches = delta.TotalFetches();
  // Activity gate: fetches alone undercount phases whose windows are
  // latency-bound rather than fetch-bound (e.g. a pure scan doing one
  // SSD-latency fetch plus large reads per op — few fetches per window,
  // yet the workload is anything but idle). Count everything the replacer
  // saw: fetches, sampled hit accesses, and read-ahead installs. Truly
  // idle windows still contribute nothing and are skipped.
  const uint64_t activity =
      fetches + delta.replacer_sampled + delta.read_ahead_installs;
  if (activity < options_.min_window_fetches) return;  // idle window

  // Rank candidates by the same replacer-visible activity rate the gate
  // uses: in latency-bound windows the raw fetch rate is near-zero noise,
  // while sampled hits still move with the policy under test.
  const double throughput =
      static_cast<double>(activity) / std::max(1e-9, window_seconds);
  const Signature sig = Signature::FromDelta(delta);

  if (!tuner_->converged()) {
    // ANNEALING: this window measured tuner_->current(); report it and
    // run the next candidate.
    const MigrationPolicy next = tuner_->OnEpochComplete(throughput);
    if (tuner_->converged()) {
      ApplyLocked(tuner_->best());
      converged_.store(true, std::memory_order_relaxed);
      last_converged_window_.store(windows_.load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
      baseline_ = sig;  // the mix the held policy was tuned for
      drift_run_ = 0;
    } else {
      ApplyLocked(next);
    }
    return;
  }

  // HOLDING: watch the mix signature for sustained drift.
  if (!baseline_.has_value()) {
    baseline_ = sig;
    return;
  }
  const double dist = sig.L1Distance(*baseline_);
  if (dist <= options_.drift_threshold) {
    drift_run_ = 0;
    // Track slow change so gradual shifts re-center instead of firing.
    const double a = options_.baseline_ema;
    for (int i = 0; i < Signature::kDims; ++i) {
      baseline_->v[i] = (1.0 - a) * baseline_->v[i] + a * sig.v[i];
    }
    return;
  }
  if (++drift_run_ < options_.drift_windows) return;

  // Sustained drift: re-anneal, warm-started from the best policy so far.
  drift_run_ = 0;
  baseline_.reset();
  converged_.store(false, std::memory_order_relaxed);
  reconvergences_.fetch_add(1, std::memory_order_relaxed);
  AnnealingOptions a = options_.annealing;
  // Vary the seed per restart so a repeat of the same drift does not
  // replay an identical (possibly unlucky) search path.
  a.seed = options_.annealing.seed +
           0x9E3779B97F4A7C15ULL * reconvergences_.load();
  const MigrationPolicy warm = tuner_->best();
  tuner_.emplace(a, warm);
  ApplyLocked(tuner_->current());
}

}  // namespace spitfire
