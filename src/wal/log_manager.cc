#include "wal/log_manager.h"

#include <cstring>

#include "common/checksum.h"
#include "storage/fault_injector.h"

namespace spitfire {

namespace {
struct FileHeader {
  uint32_t magic;
  uint32_t pad;
  uint64_t version;        // slot with the larger valid version wins
  uint64_t length;         // durable record bytes after kLogDataOffset
  uint64_t checkpoint_ts;  // durable redo horizon
  uint64_t checksum;       // Checksum64 over the fields above

  void Stamp() {
    checksum = 0;
    checksum = Checksum64(this, sizeof(*this));
  }
  bool Valid(uint32_t magic_want) const {
    if (magic != magic_want) return false;
    FileHeader copy = *this;
    copy.checksum = 0;
    return Checksum64(&copy, sizeof(copy)) == checksum;
  }
};
// Two header slots in the log device's first page, written alternately.
constexpr uint64_t kHeaderSlotStride = 128;
static_assert(sizeof(FileHeader) <= kHeaderSlotStride);
}  // namespace

LogManager::LogManager(const Options& opts) : opts_(opts) {
  SPITFIRE_CHECK(opts_.nvm != nullptr);
  SPITFIRE_CHECK(opts_.log_ssd != nullptr);
  staging_ = std::make_unique<NvmLogBuffer>(opts_.nvm, opts_.nvm_offset,
                                            opts_.nvm_size);
}

Result<std::unique_ptr<LogManager>> LogManager::Create(const Options& opts) {
  auto lm = std::unique_ptr<LogManager>(new LogManager(opts));
  SPITFIRE_RETURN_NOT_OK(lm->staging_->Format(/*base_lsn=*/0));
  lm->file_bytes_ = 0;
  // Invalidate both header slots (the device may hold a stale log) before
  // stamping version 1.
  FileHeader zero{};
  for (int slot = 0; slot < 2; ++slot) {
    SPITFIRE_RETURN_NOT_OK(
        opts.log_ssd->Write(slot * kHeaderSlotStride, &zero, sizeof(zero)));
  }
  SPITFIRE_RETURN_NOT_OK(lm->WriteFileHeader());
  return lm;
}

Result<std::unique_ptr<LogManager>> LogManager::Attach(const Options& opts) {
  auto lm = std::unique_ptr<LogManager>(new LogManager(opts));
  SPITFIRE_RETURN_NOT_OK(lm->ReadFileHeader());
  const Status staging_st = lm->staging_->Attach();
  if (!staging_st.ok()) {
    if (opts.nvm->profile().persistent) return staging_st;
    // Volatile staging (DRAM-SSD hierarchy): its content is legitimately
    // lost in a crash — commits forced a drain, so the SSD file is
    // complete. Re-format the staging area to continue after the file.
    SPITFIRE_RETURN_NOT_OK(lm->staging_->Format(lm->file_bytes_));
  }
  // The staged region may begin BEFORE the durable file end: a crash
  // between the drain's file append and the staging consume leaves the
  // drained records in both places. That overlap is legal — the next
  // drain rewrites the same bytes at the same offsets. A staged region
  // beginning past the file end would mean lost records, which the drain
  // protocol makes impossible.
  if (lm->staging_->base_lsn() > lm->file_bytes_) {
    return Status::Corruption("gap between durable log file and staging");
  }
  return lm;
}

Status LogManager::WriteFileHeader() {
  FileHeader h{};
  h.magic = kLogMagic;
  h.version = ++header_version_;
  h.length = file_bytes_;
  h.checkpoint_ts = horizon_ts_;
  h.Stamp();
  const uint64_t off = (h.version % 2) * kHeaderSlotStride;
  SPITFIRE_RETURN_NOT_OK(opts_.log_ssd->Write(off, &h, sizeof(h)));
  return opts_.log_ssd->Persist(off, sizeof(h));
}

Status LogManager::ReadFileHeader() {
  const FileHeader* best = nullptr;
  FileHeader slots[2];
  for (int i = 0; i < 2; ++i) {
    SPITFIRE_RETURN_NOT_OK(opts_.log_ssd->Read(i * kHeaderSlotStride,
                                               &slots[i], sizeof(slots[i])));
    if (slots[i].Valid(kLogMagic) &&
        (best == nullptr || slots[i].version > best->version)) {
      best = &slots[i];
    }
  }
  if (best == nullptr) return Status::Corruption("log file header");
  if (kLogDataOffset + best->length > opts_.log_ssd->capacity()) {
    return Status::Corruption("log file header length exceeds device");
  }
  file_bytes_ = best->length;
  horizon_ts_ = best->checkpoint_ts;
  header_version_ = best->version;
  return Status::OK();
}

Status LogManager::SetDurableHorizon(timestamp_t ts) {
  std::lock_guard<std::mutex> g(drain_mu_);
  horizon_ts_ = ts;
  return WriteFileHeader();
}

Result<lsn_t> LogManager::Append(const LogRecord& record) {
  std::vector<std::byte> buf;
  buf.reserve(record.SerializedSize());
  record.SerializeTo(&buf);
  if (opts_.enable_group_commit) return AppendGrouped(std::move(buf));
  for (int attempt = 0; attempt < 3; ++attempt) {
    Result<lsn_t> r = staging_->Append(buf.data(), buf.size());
    if (r.ok()) return r;
    if (!r.status().IsOutOfMemory()) return r;
    SPITFIRE_RETURN_NOT_OK(Drain());
  }
  return Status::OutOfMemory("log record larger than NVM buffer");
}

Result<lsn_t> LogManager::AppendGrouped(std::vector<std::byte> buf) {
  if (buf.size() > staging_->capacity()) {
    return Status::OutOfMemory("log record larger than NVM buffer");
  }
  std::unique_lock<std::mutex> l(group_mu_);
  // A group never outgrows the staging buffer, so its payload persists
  // with ONE atomic staging append (no torn groups on crash). A full
  // group closes to new joiners; its leader persists it as formed.
  if (open_group_ != nullptr &&
      open_group_->bytes.size() + buf.size() > staging_->capacity()) {
    open_group_.reset();
  }
  if (open_group_ == nullptr) {
    // Leader: open generation g and wait for g-1 to become durable.
    // The group keeps accumulating followers while we wait — that wait
    // IS the batching window, sized by upstream persist latency.
    auto g = std::make_shared<CommitGroup>();
    g->gen = next_gen_++;
    g->bytes = std::move(buf);
    g->records = 1;
    open_group_ = g;
    group_cv_.wait(l, [&] { return durable_gen_ == g->gen - 1; });
    if (open_group_ == g) open_group_.reset();  // close to joiners
    std::vector<std::byte> payload;
    payload.swap(g->bytes);
    l.unlock();
    lsn_t base = 0;
    const Status st = PersistGroup(payload, &base);
    l.lock();
    g->base_lsn = base;
    g->status = st;
    g->done = true;
    // The epoch advances even on failure so later groups are not stuck
    // behind a failed one; the error goes to every member of this group.
    durable_gen_ = g->gen;
    group_cv_.notify_all();
    l.unlock();
    if (!st.ok()) return st;
    (void)MaybeDrain();
    return base;
  }
  // Follower: stash the record in the open group and sleep until its
  // leader reports the group durable.
  std::shared_ptr<CommitGroup> g = open_group_;
  const size_t off = g->bytes.size();
  g->bytes.insert(g->bytes.end(), buf.begin(), buf.end());
  g->records++;
  group_cv_.wait(l, [&] { return g->done; });
  if (!g->status.ok()) return g->status;
  return g->base_lsn + off;
}

Status LogManager::PersistGroup(const std::vector<std::byte>& payload,
                                lsn_t* base) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    Result<lsn_t> r = staging_->Append(payload.data(), payload.size());
    if (r.ok()) {
      *base = r.value();
      return Status::OK();
    }
    if (!r.status().IsOutOfMemory()) return r.status();
    SPITFIRE_RETURN_NOT_OK(Drain());
  }
  return Status::OutOfMemory("log group larger than NVM buffer");
}

Status LogManager::Drain() {
  std::lock_guard<std::mutex> g(drain_mu_);
  std::vector<std::byte> bytes;
  Result<lsn_t> first = staging_->Peek(&bytes);
  SPITFIRE_RETURN_NOT_OK(first.status());
  if (bytes.empty()) return Status::OK();
  const lsn_t base = first.value();
  // base < file_bytes_ happens after a crash between the file append and
  // the staging consume: the front of the staged range is already in the
  // file and is simply rewritten with identical bytes (which also repairs
  // a torn first attempt). base > file_bytes_ would be a hole.
  if (base > file_bytes_) {
    return Status::Corruption("staged log bytes past durable file end");
  }
  SPITFIRE_RETURN_NOT_OK(
      opts_.log_ssd->Write(kLogDataOffset + base, bytes.data(), bytes.size()));
  SPITFIRE_RETURN_NOT_OK(
      opts_.log_ssd->Persist(kLogDataOffset + base, bytes.size()));
  FaultInjector::Point("wal.drain.file_written");
  const uint64_t end = base + bytes.size();
  if (end > file_bytes_) {
    file_bytes_ = end;
    SPITFIRE_RETURN_NOT_OK(WriteFileHeader());
  }
  FaultInjector::Point("wal.drain.header_written");
  // Consume the staging buffer LAST: every byte it held is now durable in
  // the file and recorded by the header.
  return staging_->MarkDrained(bytes.size());
}

Status LogManager::MaybeDrain() {
  if (staging_->StagedBytes() < opts_.drain_threshold) return Status::OK();
  return Drain();
}

Result<std::vector<LogRecord>> LogManager::ReadAll() {
  // Move the persistent staged tail into the file first (Section 5.2:
  // "the NVM log buffer needs to be appended to the log file since the
  // buffer is persistent") via the crash-safe drain protocol, then read
  // the complete file.
  SPITFIRE_RETURN_NOT_OK(Drain());
  std::vector<std::byte> bytes;
  {
    std::lock_guard<std::mutex> g(drain_mu_);
    bytes.resize(file_bytes_);
    if (file_bytes_ > 0) {
      SPITFIRE_RETURN_NOT_OK(
          opts_.log_ssd->Read(kLogDataOffset, bytes.data(), file_bytes_));
    }
  }
  std::vector<LogRecord> records;
  size_t pos = 0;
  while (pos < bytes.size()) {
    size_t consumed = 0;
    Result<LogRecord> r =
        LogRecord::Deserialize(bytes.data() + pos, bytes.size() - pos,
                               &consumed);
    if (!r.ok()) return r.status();
    records.push_back(r.MoveValue());
    pos += consumed;
  }
  return records;
}

}  // namespace spitfire
