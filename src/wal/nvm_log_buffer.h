#ifndef SPITFIRE_WAL_NVM_LOG_BUFFER_H_
#define SPITFIRE_WAL_NVM_LOG_BUFFER_H_

#include <atomic>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "storage/device.h"
#include "sync/spin_latch.h"

namespace spitfire {

// Persistent log staging area on NVM (Section 5.2, Recovery): log records
// are first persisted here — a transaction is durably committed once its
// commit record lands in this buffer — and are asynchronously appended to
// the on-SSD log file when the buffer fills past a threshold.
//
// Layout within the NVM region:
//   [Header (64 B): magic, persisted size, base LSN] [record bytes ...]
// Appends serialize on a latch (the paper shares one NVM log buffer among
// workers), copy the record bytes, and Persist() them (clwb + sfence).
class NvmLogBuffer {
 public:
  // `device` must outlive the buffer. `offset`/`size` delimit the region
  // of the device used for log staging.
  NvmLogBuffer(Device* device, uint64_t offset, uint64_t size);

  // Formats a fresh buffer (destroys existing content).
  Status Format(lsn_t base_lsn);
  // Re-attaches to an existing buffer (after restart). Returns Corruption
  // if the header is invalid.
  Status Attach();

  // Appends `len` bytes; the payload becomes durable before returning.
  // Returns the starting LSN of the appended bytes, or OutOfMemory when
  // the buffer cannot hold them (caller must drain first).
  Result<lsn_t> Append(const std::byte* data, size_t len);

  // Copies the staged bytes into *out WITHOUT modifying the buffer.
  // Returns the LSN of the first staged byte. Pair with MarkDrained()
  // once the bytes are durable elsewhere.
  Result<lsn_t> Peek(std::vector<std::byte>* out);

  // Durably consumes the first `n` staged bytes (the amount a prior Peek
  // returned; appends that landed since stay staged). Only call after the
  // peeked bytes are durable on SSD: a crash between the SSD append and
  // this call leaves the records in both places, which the drain protocol
  // resolves by idempotent rewrite (LSN == file offset); calling it
  // earlier loses committed records — the exact bug the crash fuzzer
  // caught in the original drain ordering.
  Status MarkDrained(uint64_t n);

  // Peek + MarkDrained in one step. Retained for callers that recycle the
  // buffer without a durability handoff (benchmarks); the crash-safe
  // drain path in LogManager uses the split protocol.
  Result<lsn_t> Drain(std::vector<std::byte>* out);

  // Bytes currently staged.
  uint64_t StagedBytes() const;
  lsn_t base_lsn() const;
  lsn_t next_lsn() const { return base_lsn() + StagedBytes(); }
  uint64_t capacity() const { return size_ - kHeaderSize; }

 private:
  static constexpr uint64_t kHeaderSize = 64;
  static constexpr uint32_t kMagic = 0x4E4C4F47;  // "NLOG"

  // The header occupies (and must keep fitting) a single cache line: the
  // simulated Persist() is line-granular, so one header persist is
  // failure-atomic in the fault model. `head` is the physical payload
  // offset of the oldest staged byte (LSN base_lsn); appends land at
  // head + used, and head returns to 0 whenever the buffer empties.
  struct Header {
    uint32_t magic;
    uint32_t pad;
    uint64_t used;  // staged byte count
    lsn_t base_lsn;
    uint64_t head;  // physical offset of the first staged byte
  };

  Header* header() {
    return reinterpret_cast<Header*>(device_->DirectPointer(offset_));
  }
  const Header* header() const {
    return reinterpret_cast<const Header*>(
        const_cast<Device*>(device_)->DirectPointer(offset_));
  }
  std::byte* payload(uint64_t at) {
    return device_->DirectPointer(offset_ + kHeaderSize + at);
  }

  Device* device_;
  uint64_t offset_;
  uint64_t size_;
  // Guards the header and payload; mutable so the read-only accessors
  // (StagedBytes, base_lsn) can take it against concurrent appends.
  mutable SpinLatch latch_;
};

}  // namespace spitfire

#endif  // SPITFIRE_WAL_NVM_LOG_BUFFER_H_
