#ifndef SPITFIRE_WAL_LOG_MANAGER_H_
#define SPITFIRE_WAL_LOG_MANAGER_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/ssd_device.h"
#include "wal/log_record.h"
#include "wal/nvm_log_buffer.h"

namespace spitfire {

// NVM-aware write-ahead logging (Section 5.2):
//  - records are first persisted to a shared NVM log buffer; once a
//    transaction's COMMIT record is in the buffer, it is durable;
//  - when the staged volume passes `drain_threshold`, the buffer contents
//    are appended to an on-SSD log file asynchronously (the checkpointer
//    thread calls MaybeDrain).
//
// The SSD log device layout: page 0 holds {magic, durable length}; record
// bytes start at kLogDataOffset.
class LogManager {
 public:
  struct Options {
    Device* nvm = nullptr;      // staging device (NVM, or DRAM when no NVM tier)
    uint64_t nvm_offset = 0;    // staging region start
    uint64_t nvm_size = 1 << 20;
    Device* log_ssd = nullptr;  // SSD device holding the log file
    uint64_t drain_threshold = 512 * 1024;  // bytes
    // Group commit: concurrent Appends batch into one NVM persist. Each
    // group has a generation; a group's leader waits until the previous
    // generation is durable, persists the whole batch with a single
    // NvmLogBuffer::Append, then advances the durability epoch and wakes
    // the group's followers. Disabling restores per-record appends.
    bool enable_group_commit = true;
  };

  static constexpr uint64_t kLogDataOffset = 4096;
  static constexpr uint32_t kLogMagic = 0x57414C46;  // "WALF"

  // Creates a fresh log (formats both the NVM buffer and the SSD file).
  static Result<std::unique_ptr<LogManager>> Create(const Options& opts);
  // Re-attaches after a restart; surviving staged records remain readable.
  static Result<std::unique_ptr<LogManager>> Attach(const Options& opts);

  // Appends a record to the NVM log buffer; returns its LSN. Drains to SSD
  // first if the buffer cannot hold the record.
  Result<lsn_t> Append(const LogRecord& record);

  // Appends the staged NVM bytes to the SSD log file. Crash-safe protocol:
  // file write + persist + header update all complete BEFORE the staging
  // buffer is consumed, so a crash anywhere in between leaves the records
  // in at least one durable place; the overlap (records in both) heals by
  // idempotent rewrite, since a record's LSN is its file offset.
  Status Drain();
  // Drains only if the staged volume passed the threshold.
  Status MaybeDrain();

  // Reads the entire log (SSD file followed by the staged NVM tail) into
  // records, in LSN order. Used by recovery.
  Result<std::vector<LogRecord>> ReadAll();

  // Durable redo horizon: every committed version with begin_ts <= the
  // horizon is durable in the heap (flushed by a complete checkpoint), so
  // recovery may skip re-applying records with txn_id <= horizon. Stored
  // in the log file header; advanced by Database::Checkpoint after a
  // clean full flush and reset to 0 when recovery quarantines a page.
  Status SetDurableHorizon(timestamp_t ts);
  timestamp_t durable_horizon() const { return horizon_ts_; }

  lsn_t next_lsn() const { return staging_->next_lsn(); }
  uint64_t durable_file_bytes() const { return file_bytes_; }
  uint64_t staged_bytes() const { return staging_->StagedBytes(); }

  // Monotonic durability epoch: generation of the newest group whose
  // bytes are persisted in the NVM staging buffer.
  uint64_t durable_generation() const {
    std::lock_guard<std::mutex> g(group_mu_);
    return durable_gen_;
  }

 private:
  explicit LogManager(const Options& opts);

  // The file header lives in two alternating versioned + checksummed slots
  // in the log device's first page: a torn or short header write leaves
  // the other slot intact, so recovery always finds a consistent header
  // (it loses at most the newest length update, which the drain protocol
  // makes idempotent to reapply).
  Status WriteFileHeader();
  Status ReadFileHeader();

  // One commit group: records serialized back to back, persisted with a
  // single staging append. The creator of the group is its leader.
  struct CommitGroup {
    uint64_t gen = 0;
    std::vector<std::byte> bytes;
    size_t records = 0;
    bool done = false;
    Status status;
    lsn_t base_lsn = 0;
  };

  // Group-commit append: join (or open) the current group, wait for its
  // durability. Returns the record's LSN.
  Result<lsn_t> AppendGrouped(std::vector<std::byte> buf);
  // One staging append for the whole group's payload (drains to SSD on
  // buffer pressure, like the per-record path).
  Status PersistGroup(const std::vector<std::byte>& payload, lsn_t* base);

  Options opts_;
  std::unique_ptr<NvmLogBuffer> staging_;
  std::mutex drain_mu_;
  uint64_t file_bytes_ = 0;  // durable bytes in the SSD log file
  timestamp_t horizon_ts_ = 0;
  uint64_t header_version_ = 0;

  mutable std::mutex group_mu_;
  std::condition_variable group_cv_;
  std::shared_ptr<CommitGroup> open_group_;
  uint64_t next_gen_ = 1;
  uint64_t durable_gen_ = 0;
};

}  // namespace spitfire

#endif  // SPITFIRE_WAL_LOG_MANAGER_H_
