#ifndef SPITFIRE_WAL_LOG_MANAGER_H_
#define SPITFIRE_WAL_LOG_MANAGER_H_

#include <memory>
#include <mutex>
#include <vector>

#include "storage/ssd_device.h"
#include "wal/log_record.h"
#include "wal/nvm_log_buffer.h"

namespace spitfire {

// NVM-aware write-ahead logging (Section 5.2):
//  - records are first persisted to a shared NVM log buffer; once a
//    transaction's COMMIT record is in the buffer, it is durable;
//  - when the staged volume passes `drain_threshold`, the buffer contents
//    are appended to an on-SSD log file asynchronously (the checkpointer
//    thread calls MaybeDrain).
//
// The SSD log device layout: page 0 holds {magic, durable length}; record
// bytes start at kLogDataOffset.
class LogManager {
 public:
  struct Options {
    Device* nvm = nullptr;      // staging device (NVM, or DRAM when no NVM tier)
    uint64_t nvm_offset = 0;    // staging region start
    uint64_t nvm_size = 1 << 20;
    Device* log_ssd = nullptr;  // SSD device holding the log file
    uint64_t drain_threshold = 512 * 1024;  // bytes
  };

  static constexpr uint64_t kLogDataOffset = 4096;
  static constexpr uint32_t kLogMagic = 0x57414C46;  // "WALF"

  // Creates a fresh log (formats both the NVM buffer and the SSD file).
  static Result<std::unique_ptr<LogManager>> Create(const Options& opts);
  // Re-attaches after a restart; surviving staged records remain readable.
  static Result<std::unique_ptr<LogManager>> Attach(const Options& opts);

  // Appends a record to the NVM log buffer; returns its LSN. Drains to SSD
  // first if the buffer cannot hold the record.
  Result<lsn_t> Append(const LogRecord& record);

  // Appends the staged NVM bytes to the SSD log file.
  Status Drain();
  // Drains only if the staged volume passed the threshold.
  Status MaybeDrain();

  // Reads the entire log (SSD file followed by the staged NVM tail) into
  // records, in LSN order. Used by recovery.
  Result<std::vector<LogRecord>> ReadAll();

  lsn_t next_lsn() const { return staging_->next_lsn(); }
  uint64_t durable_file_bytes() const { return file_bytes_; }
  uint64_t staged_bytes() const { return staging_->StagedBytes(); }

 private:
  explicit LogManager(const Options& opts);

  Status WriteFileHeader();
  Status ReadFileHeader(uint64_t* len);

  Options opts_;
  std::unique_ptr<NvmLogBuffer> staging_;
  std::mutex drain_mu_;
  uint64_t file_bytes_ = 0;  // durable bytes in the SSD log file
};

}  // namespace spitfire

#endif  // SPITFIRE_WAL_LOG_MANAGER_H_
