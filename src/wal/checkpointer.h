#ifndef SPITFIRE_WAL_CHECKPOINTER_H_
#define SPITFIRE_WAL_CHECKPOINTER_H_

#include <atomic>
#include <thread>

#include "buffer/buffer_manager.h"
#include "wal/log_manager.h"

namespace spitfire {

// Background maintenance thread (Section 5.2): periodically flushes dirty
// DRAM pages down the hierarchy (allowing log truncation and bounding
// recovery time) and drains the NVM log buffer to the SSD log file.
// Dirty NVM pages are left alone — NVM is persistent.
class Checkpointer {
 public:
  Checkpointer(BufferManager* bm, LogManager* lm, uint64_t interval_ms)
      : bm_(bm), lm_(lm), interval_ms_(interval_ms) {}
  ~Checkpointer() { Stop(); }
  SPITFIRE_DISALLOW_COPY_AND_MOVE(Checkpointer);

  void Start();
  void Stop();

  // One synchronous checkpoint round (also used by tests).
  Status RunOnce();

  uint64_t rounds() const { return rounds_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  BufferManager* bm_;
  LogManager* lm_;
  const uint64_t interval_ms_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> rounds_{0};
};

}  // namespace spitfire

#endif  // SPITFIRE_WAL_CHECKPOINTER_H_
