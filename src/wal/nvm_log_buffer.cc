#include "wal/nvm_log_buffer.h"

#include <cstring>

namespace spitfire {

NvmLogBuffer::NvmLogBuffer(Device* device, uint64_t offset, uint64_t size)
    : device_(device), offset_(offset), size_(size) {
  SPITFIRE_CHECK(device != nullptr);
  SPITFIRE_CHECK(size > kHeaderSize);
  SPITFIRE_CHECK(offset + size <= device->capacity());
}

Status NvmLogBuffer::Format(lsn_t base_lsn) {
  Header h{kMagic, 0, 0, base_lsn};
  std::memcpy(header(), &h, sizeof(h));
  return device_->Persist(offset_, sizeof(Header));
}

Status NvmLogBuffer::Attach() {
  Header h;
  std::memcpy(&h, header(), sizeof(h));
  if (h.magic != kMagic || h.used > capacity()) {
    return Status::Corruption("NVM log buffer header invalid");
  }
  return Status::OK();
}

Result<lsn_t> NvmLogBuffer::Append(const std::byte* data, size_t len) {
  SpinLatchGuard g(latch_);
  Header* h = header();
  if (h->used + len > capacity()) {
    return Status::OutOfMemory("NVM log buffer full");
  }
  const lsn_t at = h->base_lsn + h->used;
  std::memcpy(payload(h->used), data, len);
  // Persist payload first, then the header's used count: a torn update
  // can only lose the tail record, never expose garbage as valid.
  device_->OnDirectWrite(offset_ + kHeaderSize + h->used, len,
                         /*sequential=*/true);
  SPITFIRE_RETURN_NOT_OK(
      device_->Persist(offset_ + kHeaderSize + h->used, len));
  h->used += len;
  SPITFIRE_RETURN_NOT_OK(device_->Persist(offset_, sizeof(Header)));
  return at;
}

Result<lsn_t> NvmLogBuffer::Drain(std::vector<std::byte>* out) {
  SpinLatchGuard g(latch_);
  Header* h = header();
  const lsn_t first = h->base_lsn;
  out->resize(h->used);
  if (h->used > 0) {
    std::memcpy(out->data(), payload(0), h->used);
    device_->OnDirectRead(offset_ + kHeaderSize, h->used, /*sequential=*/true);
  }
  h->base_lsn += h->used;
  h->used = 0;
  SPITFIRE_RETURN_NOT_OK(device_->Persist(offset_, sizeof(Header)));
  return first;
}

uint64_t NvmLogBuffer::StagedBytes() const {
  SpinLatchGuard g(latch_);
  return header()->used;
}

lsn_t NvmLogBuffer::base_lsn() const {
  SpinLatchGuard g(latch_);
  return header()->base_lsn;
}

}  // namespace spitfire
