#include "wal/nvm_log_buffer.h"

#include <cstring>

namespace spitfire {

NvmLogBuffer::NvmLogBuffer(Device* device, uint64_t offset, uint64_t size)
    : device_(device), offset_(offset), size_(size) {
  SPITFIRE_CHECK(device != nullptr);
  SPITFIRE_CHECK(size > kHeaderSize);
  SPITFIRE_CHECK(offset + size <= device->capacity());
}

Status NvmLogBuffer::Format(lsn_t base_lsn) {
  Header h{kMagic, 0, 0, base_lsn, 0};
  std::memcpy(header(), &h, sizeof(h));
  return device_->Persist(offset_, sizeof(Header));
}

Status NvmLogBuffer::Attach() {
  Header h;
  std::memcpy(&h, header(), sizeof(h));
  if (h.magic != kMagic || h.used > capacity() ||
      h.head > capacity() - h.used) {
    return Status::Corruption("NVM log buffer header invalid");
  }
  return Status::OK();
}

Result<lsn_t> NvmLogBuffer::Append(const std::byte* data, size_t len) {
  SpinLatchGuard g(latch_);
  Header* h = header();
  if (h->head + h->used + len > capacity()) {
    return Status::OutOfMemory("NVM log buffer full");
  }
  const lsn_t at = h->base_lsn + h->used;
  const uint64_t pos = h->head + h->used;
  std::memcpy(payload(pos), data, len);
  // Persist payload first, then the header's used count: a torn update
  // can only lose the tail record, never expose garbage as valid.
  device_->OnDirectWrite(offset_ + kHeaderSize + pos, len,
                         /*sequential=*/true);
  SPITFIRE_RETURN_NOT_OK(device_->Persist(offset_ + kHeaderSize + pos, len));
  h->used += len;
  SPITFIRE_RETURN_NOT_OK(device_->Persist(offset_, sizeof(Header)));
  return at;
}

Result<lsn_t> NvmLogBuffer::Peek(std::vector<std::byte>* out) {
  SpinLatchGuard g(latch_);
  const Header* h = header();
  const lsn_t first = h->base_lsn;
  out->resize(h->used);
  if (h->used > 0) {
    std::memcpy(out->data(), payload(h->head), h->used);
    device_->OnDirectRead(offset_ + kHeaderSize + h->head, h->used,
                          /*sequential=*/true);
  }
  return first;
}

Status NvmLogBuffer::MarkDrained(uint64_t n) {
  SpinLatchGuard g(latch_);
  Header* h = header();
  SPITFIRE_CHECK(n <= h->used);
  h->base_lsn += n;
  h->used -= n;
  // One single-line header persist makes the consume atomic; the payload
  // bytes themselves are untouched, so a crash before this persist just
  // leaves them staged (re-drained idempotently at LSN == file offset).
  h->head = h->used == 0 ? 0 : h->head + n;
  return device_->Persist(offset_, sizeof(Header));
}

Result<lsn_t> NvmLogBuffer::Drain(std::vector<std::byte>* out) {
  std::vector<std::byte>& bytes = *out;
  SPITFIRE_ASSIGN_OR_RETURN(const lsn_t first, Peek(&bytes));
  SPITFIRE_RETURN_NOT_OK(MarkDrained(bytes.size()));
  return first;
}

uint64_t NvmLogBuffer::StagedBytes() const {
  SpinLatchGuard g(latch_);
  return header()->used;
}

lsn_t NvmLogBuffer::base_lsn() const {
  SpinLatchGuard g(latch_);
  return header()->base_lsn;
}

}  // namespace spitfire
