#ifndef SPITFIRE_WAL_LOG_RECORD_H_
#define SPITFIRE_WAL_LOG_RECORD_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/constants.h"
#include "common/status.h"

namespace spitfire {

// Log record types. UPDATE carries before and after images (Section 5.2:
// "(4) before and after images").
enum class LogRecordType : uint8_t {
  kInvalid = 0,
  kBegin = 1,
  kCommit = 2,
  kAbort = 3,
  kInsert = 4,
  kUpdate = 5,
  kCheckpoint = 6,
  kDelete = 7,
};

// A logical write-ahead log record:
//   (1) transaction id and page id, (2) record type, (3) LSN of the
//   previous record of the same transaction, (4) before/after images.
// The key identifies the tuple within its table, so recovery can replay
// operations logically after the index is rebuilt.
struct LogRecord {
  LogRecordType type = LogRecordType::kInvalid;
  txn_id_t txn_id = kInvalidTxnId;
  lsn_t prev_lsn = kInvalidLsn;
  uint32_t table_id = 0;
  page_id_t page_id = kInvalidPageId;
  uint64_t key = 0;
  std::vector<std::byte> before;
  std::vector<std::byte> after;

  // Serialized size in bytes.
  size_t SerializedSize() const;
  // Appends the serialized form to `out`.
  void SerializeTo(std::vector<std::byte>* out) const;
  // Serializes into `dst` (must have SerializedSize() bytes).
  void SerializeTo(std::byte* dst) const;
  // Parses one record from `src` (at most `len` bytes). On success sets
  // *consumed. Returns Corruption on malformed input.
  static Result<LogRecord> Deserialize(const std::byte* src, size_t len,
                                       size_t* consumed);

  std::string ToString() const;
};

}  // namespace spitfire

#endif  // SPITFIRE_WAL_LOG_RECORD_H_
