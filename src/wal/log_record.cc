#include "wal/log_record.h"

#include <cstdio>

namespace spitfire {

namespace {
// Fixed-size on-disk prefix of every record.
struct RecordPrefix {
  uint32_t magic;
  uint8_t type;
  uint8_t pad[3];
  txn_id_t txn_id;
  lsn_t prev_lsn;
  uint32_t table_id;
  uint32_t before_len;
  page_id_t page_id;
  uint64_t key;
  uint32_t after_len;
  uint32_t total_len;  // prefix + payloads; enables forward scans
};
constexpr uint32_t kRecordMagic = 0x57414C52;  // "WALR"
}  // namespace

size_t LogRecord::SerializedSize() const {
  return sizeof(RecordPrefix) + before.size() + after.size();
}

void LogRecord::SerializeTo(std::byte* dst) const {
  RecordPrefix p{};
  p.magic = kRecordMagic;
  p.type = static_cast<uint8_t>(type);
  p.txn_id = txn_id;
  p.prev_lsn = prev_lsn;
  p.table_id = table_id;
  p.page_id = page_id;
  p.key = key;
  p.before_len = static_cast<uint32_t>(before.size());
  p.after_len = static_cast<uint32_t>(after.size());
  p.total_len = static_cast<uint32_t>(SerializedSize());
  std::memcpy(dst, &p, sizeof(p));
  std::byte* cur = dst + sizeof(p);
  if (!before.empty()) {
    std::memcpy(cur, before.data(), before.size());
    cur += before.size();
  }
  if (!after.empty()) {
    std::memcpy(cur, after.data(), after.size());
  }
}

void LogRecord::SerializeTo(std::vector<std::byte>* out) const {
  const size_t old = out->size();
  out->resize(old + SerializedSize());
  SerializeTo(out->data() + old);
}

Result<LogRecord> LogRecord::Deserialize(const std::byte* src, size_t len,
                                         size_t* consumed) {
  if (len < sizeof(RecordPrefix)) {
    return Status::Corruption("truncated log record prefix");
  }
  RecordPrefix p;
  std::memcpy(&p, src, sizeof(p));
  if (p.magic != kRecordMagic) {
    return Status::Corruption("bad log record magic");
  }
  const size_t total =
      sizeof(RecordPrefix) + static_cast<size_t>(p.before_len) + p.after_len;
  if (p.total_len != total || len < total) {
    return Status::Corruption("truncated log record body");
  }
  LogRecord r;
  r.type = static_cast<LogRecordType>(p.type);
  r.txn_id = p.txn_id;
  r.prev_lsn = p.prev_lsn;
  r.table_id = p.table_id;
  r.page_id = p.page_id;
  r.key = p.key;
  const std::byte* cur = src + sizeof(p);
  r.before.assign(cur, cur + p.before_len);
  cur += p.before_len;
  r.after.assign(cur, cur + p.after_len);
  *consumed = total;
  return r;
}

std::string LogRecord::ToString() const {
  const char* names[] = {"INVALID", "BEGIN",  "COMMIT",     "ABORT",
                         "INSERT",  "UPDATE", "CHECKPOINT", "DELETE"};
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%s txn=%llu key=%llu table=%u before=%zuB after=%zuB",
                names[static_cast<int>(type)],
                static_cast<unsigned long long>(txn_id),
                static_cast<unsigned long long>(key), table_id, before.size(),
                after.size());
  return buf;
}

}  // namespace spitfire
