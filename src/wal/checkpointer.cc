#include "wal/checkpointer.h"

#include <chrono>

namespace spitfire {

void Checkpointer::Start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void Checkpointer::Stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

Status Checkpointer::RunOnce() {
  // Flush dirty DRAM pages (NVM pages stay put: persistent), then drain
  // staged log bytes if past the threshold.
  SPITFIRE_RETURN_NOT_OK(bm_->FlushAll(/*include_nvm=*/false));
  if (lm_ != nullptr) {
    SPITFIRE_RETURN_NOT_OK(lm_->MaybeDrain());
  }
  rounds_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void Checkpointer::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    (void)RunOnce();
    for (uint64_t waited = 0;
         waited < interval_ms_ && running_.load(std::memory_order_relaxed);
         waited += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
}

}  // namespace spitfire
