#ifndef SPITFIRE_STORAGE_IO_SCHEDULER_H_
#define SPITFIRE_STORAGE_IO_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/constants.h"
#include "common/status.h"
#include "storage/device.h"

namespace spitfire {

// Tuning knobs for the SSD I/O scheduler.
struct IoSchedulerOptions {
  // Background I/O workers draining the write queue (and running
  // prefetch tasks). Reads are executed inline by the requesting thread.
  size_t num_workers = 1;
  // Maximum pages merged into one device op. Adjacent staged writes (and
  // prefetch reads) within one batch become a single larger request,
  // which the device latency model rewards: the per-op fixed cost is paid
  // once instead of per page.
  size_t max_coalesce_pages = 8;
  // After picking up a pending write, a worker lingers this long for more
  // writes to arrive before issuing, so eviction bursts coalesce. Drain()
  // requests cut the window short.
  uint64_t coalesce_window_us = 50;
  // Backpressure bound on staged-but-unwritten pages (16 KB each).
  size_t max_pending_writes = 128;
  // Pages prefetched ahead of a detected sequential miss run; 0 disables
  // read-ahead. (The trigger lives in the buffer manager; this is the
  // window size it requests.) 32 pages = 512 KB: on the simulated device
  // a 32-page sequential read costs ~1/3 of 32 single-page reads, and a
  // wider window also means fewer chain handoffs per scanned megabyte.
  size_t read_ahead_pages = 32;
};

// Monotonic counters; all relaxed, reporting only.
struct IoSchedulerStats {
  std::atomic<uint64_t> read_ops{0};          // device read requests issued
  std::atomic<uint64_t> reads_deduped{0};     // joined an in-flight read
  std::atomic<uint64_t> reads_from_staged{0};  // served from a queued write
  std::atomic<uint64_t> stale_read_retries{0};
  std::atomic<uint64_t> writes_staged{0};
  std::atomic<uint64_t> write_ops{0};         // device write requests issued
  std::atomic<uint64_t> writes_coalesced{0};  // pages merged into a larger op
  std::atomic<uint64_t> async_submits{0};     // SubmitRead leader submissions
  std::atomic<uint64_t> completions_run{0};   // deferred completions executed
};

// Owner of all SSD-tier page traffic (an io_uring-style submission model
// over the simulated device):
//
//  - ReadPage is SINGLE-FLIGHT: concurrent readers of one page register on
//    a shared in-flight request; one leader executes the device read while
//    the rest sleep on a condition variable and copy the result, so a miss
//    storm on a hot page costs one device op instead of N.
//  - WritePage is ASYNCHRONOUS: the page image is staged in a heap buffer
//    and queued; worker threads drain the queue, merging adjacent-page
//    writes into one larger device op. Reads of a staged page are served
//    from the staged image (write-through), so callers may free the source
//    frame immediately.
//  - Every offset carries a WRITE SEQUENCE number, bumped when a write is
//    staged. ReadPage returns the sequence its bytes correspond to; a
//    caller installing the page into a buffer re-validates the sequence
//    under its own latches (WriteSeq) and retries on mismatch, which makes
//    reads safe to run without holding any page latch.
//
// Offsets must be kPageSize-aligned; every transfer is kPageSize bytes
// (prefetch claims: a multiple).
class IoScheduler {
 public:
  explicit IoScheduler(Device* ssd, const IoSchedulerOptions& opts = {});
  ~IoScheduler();
  SPITFIRE_DISALLOW_COPY_AND_MOVE(IoScheduler);

  // Reads one page into `dst`. If `out_seq` is non-null it receives the
  // write sequence the bytes correspond to (see WriteSeq).
  Status ReadPage(uint64_t offset, std::byte* dst, uint64_t* out_seq);

  // --- Asynchronous submission/completion interface -----------------------
  //
  // Fired exactly once per SubmitRead call, with the page bytes and the
  // write sequence they correspond to. `data` is only valid for the
  // duration of the call — copy out what you need. A Busy status means a
  // concurrent write superseded the bytes mid-flight (the old stale-retry
  // path); resubmit to read the fresh image. The callback may run inline
  // inside SubmitRead (staged-write hits, scale-0 completions), from a
  // thread pumping completions, or from the scheduler's completion worker.
  // It runs without any scheduler lock held, but must not block on this
  // scheduler's own completions.
  using ReadCallback =
      std::function<void(const Status&, const std::byte* data, uint64_t seq)>;

  // How a SubmitRead resolved: served inline (callback already fired),
  // admitted as the leader of a new device read, or joined an in-flight
  // read (dedup — callback fires when the leader's request completes).
  enum class SubmitKind { kInline, kLeader, kJoined };

  // Single-flight asynchronous read. Never blocks on device latency: a
  // leader submission returns as soon as the request is admitted to the
  // device's queue model, with the completion deferred to the deadline.
  SubmitKind SubmitRead(uint64_t offset, ReadCallback cb);

  // Runs pending work on the calling thread: queued prefetch tasks and any
  // completions whose deadline has passed. With `may_sleep`, blocks briefly
  // (bounded, ~200 us) until the next deadline or a notification when
  // nothing is runnable — the async workload driver's idle wait. Marks the
  // calling thread as async-aware: prefetch waits it executes sleep out
  // their deadlines instead of busy-spinning. Returns whether anything ran.
  bool PumpCompletions(bool may_sleep);

  // Whether the device supports deadline-based submission (SupportsAsyncIo).
  bool async_io() const { return async_; }

  // Completion broadcast, for continuation waiters (e.g. a fetch that
  // joined an in-flight read). Every batch of fired read completions bumps
  // the epoch and notifies; a waiter samples the epoch, re-checks its own
  // ready flag, then sleeps in WaitForCompletion — which returns
  // immediately if the epoch moved in between, so no wakeup is lost.
  // Continuation layers that complete waiters outside a scheduler
  // callback may call SignalCompletions themselves.
  uint64_t completion_epoch() const {
    return comp_epoch_.load(std::memory_order_acquire);
  }
  void WaitForCompletion(uint64_t observed_epoch, uint64_t max_wait_ns);
  void SignalCompletions();

  // Read-ahead, split in two so a trigger can claim its window inline
  // (cheap, no device work) before handing the reads to a worker:
  // concurrent ReadPage callers then join the claimed flights instead of
  // issuing duplicate single-page reads that would fragment the window.
  //
  // ClaimPrefetch registers read flights for up to `n` contiguous pages
  // (pages already staged or in flight are left to their owner) and
  // returns an opaque claim — nullptr when nothing was claimed.
  std::shared_ptr<void> ClaimPrefetch(uint64_t offset, size_t n);
  // Performs the device reads for a claim (one op per contiguous claimed
  // run) and completes its flights; MUST be called exactly once per
  // non-null claim or joiners sleep forever. dst must hold n pages;
  // covered[i] is set true iff dst + i*kPageSize now holds page i's bytes
  // (with seqs[i] its write sequence). For each covered page, `ready(i)`
  // runs after the device read but BEFORE the page's flight completes, so
  // the caller can install the page while its single-flight entry still
  // absorbs concurrent misses; waking joiners first would open a gap
  // where a fresh miss finds neither a flight nor a resident page and
  // duplicates the read.
  //
  // If `joined` is non-null it receives the number of ReadPage callers
  // that joined this claim's flights — the signal that a scan front is
  // consuming the window (used to decide whether to chain another one).
  //
  // `installed(j)` — j the joiner count observed so far — runs once,
  // after the first run's pages are installed but before any flight
  // completes. It exists so the caller can claim the NEXT window at the
  // earliest safe moment: threads that found their page installed are
  // already running ahead, and on one core their busy-wait reads can
  // starve this thread's completion pass for many milliseconds — any
  // follow-up claim deferred to after ExecutePrefetch would arrive far
  // too late to keep the stream fed.
  Status ExecutePrefetch(const std::shared_ptr<void>& claim, std::byte* dst,
                         uint64_t* seqs, bool* covered,
                         const std::function<void(size_t)>& ready = {},
                         size_t* joined = nullptr,
                         const std::function<void(size_t)>& installed = {});

  // Stages one page write and returns immediately; the device write
  // happens on a worker. A newer write of the same page before the queue
  // drains overwrites the staged image in place (last writer wins).
  // Errors surface at the next Drain().
  Status WritePage(uint64_t offset, const std::byte* src);

  // Current write sequence of `offset` (0 = never written through the
  // scheduler). Compare against ReadPage's out_seq before installing.
  uint64_t WriteSeq(uint64_t offset);

  // Blocks until every staged write has reached the device; returns (and
  // clears) the first asynchronous write error since the previous Drain.
  Status Drain();

  // Queues `task` for a worker thread (read-ahead prefetch). Returns
  // false — task NOT queued — when the scheduler is shutting down, in
  // which case the caller must run it itself if it has side effects that
  // cannot be dropped (e.g. completing a prefetch claim).
  bool Submit(std::function<void()> task);

  // Runs one queued task inline on the calling thread, if any is pending.
  // The simulated device is synchronous (a busy-wait), so a miss leader
  // that just submitted a prefetch window steals it rather than racing the
  // worker for the core; with a genuinely asynchronous device the worker
  // dequeues first and this is a no-op. Returns whether a task ran.
  bool TryRunPendingTask();

  // Drains outstanding writes and joins the workers. Idempotent; called by
  // the destructor.
  void Shutdown();

  IoSchedulerStats& stats() { return stats_; }

 private:
  static constexpr size_t kNumShards = 16;

  // One single-flight read. `buf` is filled by the leader (under the shard
  // mutex, before `done` is published) only when someone joined — a
  // cv-waiter (`joiners`) or an async callback; waiters copy from it after
  // observing done. All fields are guarded by the shard mutex until `done`
  // is published. Async leaders (SubmitRead) read into `buf` directly.
  struct ReadFlight {
    Status status;
    uint64_t seq = 0;    // write sequence sampled at registration
    int joiners = 0;     // cv-waiting readers (ReadPage / prefetch heuristics)
    bool done = false;
    bool stale = false;  // a write superseded the bytes mid-flight
    std::vector<ReadCallback> callbacks;  // async joiners; fired at completion
    std::byte buf[kPageSize];
  };

  // One staged write. The image may be overwritten (under the shard
  // mutex) only while `issuing` is false; a worker sets `issuing` under
  // the mutex before copying the image out, so the copy needs no lock.
  struct StagedWrite {
    std::unique_ptr<std::byte[]> buf;
    bool issuing = false;
  };

  struct Entry {
    std::shared_ptr<ReadFlight> read;
    std::shared_ptr<StagedWrite> write;
    uint64_t write_seq = 0;
  };

  struct Shard {
    std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<uint64_t, Entry> table;
  };

  struct QueueItem {
    uint64_t offset = 0;
    std::shared_ptr<StagedWrite> w;
  };

  // A claimed read-ahead window: flights[i] is non-null iff this claim
  // owns page i's flight (ClaimPrefetch skipped the others).
  struct PrefetchClaimRec {
    uint64_t offset = 0;
    size_t n = 0;
    std::vector<std::shared_ptr<ReadFlight>> flights;
  };

  Shard& ShardFor(uint64_t offset) {
    return shards_[(offset / kPageSize) % kNumShards];
  }
  // Entries that never saw a write (seq 0) are erased once idle; written
  // entries are kept so sequence numbers stay monotonic for the device's
  // lifetime (bounded by the page count).
  void MaybeEraseLocked(Shard& s, uint64_t offset);

  void WorkerLoop();
  Status ProcessBatch(std::vector<QueueItem>* batch, std::byte* scratch);
  // Clears the staged entries of a completed write run and releases its
  // backpressure slots. Inline after the device write on the sync path; a
  // deadline completion on the async path.
  void RetireWrites(const std::vector<QueueItem>& items, const Status& st);

  // --- Completion engine (async devices only) -----------------------------
  // Deferred completions ordered by their device-model deadline. Two heaps
  // under one lock: read-flight completions re-enter buffer-manager code
  // through their callbacks (install pages, evict victims, stage writes),
  // while write completions only clear scheduler state — so code that must
  // make progress *inside* a flight completion (WritePage backpressure,
  // Drain) pumps the write heap alone and cannot recurse.
  struct Completion {
    uint64_t deadline = 0;
    uint64_t seqno = 0;  // FIFO tie-break for equal deadlines
    std::function<void()> fn;
  };
  struct CompletionLater {
    bool operator()(const Completion& a, const Completion& b) const {
      return a.deadline != b.deadline ? a.deadline > b.deadline
                                      : a.seqno > b.seqno;
    }
  };
  using CompletionHeap =
      std::priority_queue<Completion, std::vector<Completion>, CompletionLater>;

  // Enqueues `fn` to run at `deadline_ns` (NowNanos clock); runs it inline
  // when the deadline has already passed (scale 0). Callers must not hold
  // shard or queue locks.
  void ScheduleAt(uint64_t deadline_ns, std::function<void()> fn,
                  bool is_write);
  // Run every completion whose deadline has passed. Exclusive-pop under
  // comp_mu_, so each completion runs exactly once. Return: anything ran.
  bool PumpDue();
  bool PumpDueWrites();  // write heap only; safe inside flight completions
  // Waits until `deadline_ns`, pumping due completions meanwhile. Async-
  // aware threads (see PumpCompletions) sleep; others spin, preserving the
  // blocking path's CPU accounting.
  void WaitUntilDeadline(uint64_t deadline_ns);
  // Finishes a SubmitRead leader flight: publishes done/stale under the
  // shard lock, unlinks the entry, then fires callbacks and waiters.
  void CompleteFlight(uint64_t offset, std::shared_ptr<ReadFlight> f,
                      Status st);
  // Dedicated thread that sleeps to the earliest deadline and runs whatever
  // nobody pumped — the backstop that makes completions a guarantee rather
  // than a cooperative convention.
  void CompletionWorkerLoop();

  Device* ssd_;
  IoSchedulerOptions opts_;
  bool async_ = false;
  IoSchedulerStats stats_;

  std::mutex comp_mu_;
  std::condition_variable comp_cv_;
  CompletionHeap comps_;   // read-flight completions
  CompletionHeap wcomps_;  // write completions
  uint64_t comp_seq_ = 0;
  std::atomic<uint64_t> comp_epoch_{0};   // completion-broadcast stamp
  std::atomic<int> comp_sleepers_{0};     // threads parked on comp_cv_ for
                                          // completion signals; lets
                                          // SignalCompletions skip the
                                          // mutex when nobody sleeps
  bool comp_stop_ = false;
  std::thread completion_worker_;

  Shard shards_[kNumShards];

  std::mutex q_mu_;
  std::condition_variable q_cv_;
  std::deque<QueueItem> write_queue_;
  std::deque<std::function<void()>> tasks_;
  size_t pending_writes_ = 0;  // staged, not yet on the device
  size_t drain_waiters_ = 0;
  Status first_write_error_;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_IO_SCHEDULER_H_
