#ifndef SPITFIRE_STORAGE_DRAM_DEVICE_H_
#define SPITFIRE_STORAGE_DRAM_DEVICE_H_

#include <memory>

#include "storage/device.h"

namespace spitfire {

// Volatile byte-addressable device backed by heap memory. Models the DRAM
// tier; latency is effectively the cost of the memcpy itself plus the
// (tiny) profile delay.
class DramDevice : public Device {
 public:
  explicit DramDevice(uint64_t capacity,
                      DeviceProfile profile = DeviceProfile::Dram());
  ~DramDevice() override;

  Status Read(uint64_t offset, void* dst, size_t size) override;
  Status Write(uint64_t offset, const void* src, size_t size) override;
  std::byte* DirectPointer(uint64_t offset) override;

 private:
  std::byte* base_ = nullptr;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_DRAM_DEVICE_H_
