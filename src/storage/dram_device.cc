#include "storage/dram_device.h"

#include <cstdlib>
#include <cstring>

namespace spitfire {

DramDevice::DramDevice(uint64_t capacity, DeviceProfile profile)
    : Device(std::move(profile), capacity) {
  // aligned_alloc requires size to be a multiple of the alignment; callers
  // may ask for capacities (e.g. decimal gigabytes) that are not.
  const uint64_t alloc_size = (capacity + 4095) / 4096 * 4096;
  base_ = static_cast<std::byte*>(std::aligned_alloc(4096, alloc_size));
  SPITFIRE_CHECK(base_ != nullptr);
  std::memset(base_, 0, capacity);
}

DramDevice::~DramDevice() { std::free(base_); }

Status DramDevice::Read(uint64_t offset, void* dst, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  std::memcpy(dst, base_ + offset, size);
  AccountRead(size, /*sequential=*/false);
  return Status::OK();
}

Status DramDevice::Write(uint64_t offset, const void* src, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  std::memcpy(base_ + offset, src, size);
  AccountWrite(size, /*sequential=*/false);
  return Status::OK();
}

std::byte* DramDevice::DirectPointer(uint64_t offset) {
  SPITFIRE_DCHECK(offset < capacity_);
  return base_ + offset;
}

}  // namespace spitfire
