#include "storage/ssd_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

namespace spitfire {

SsdDevice::SsdDevice(uint64_t capacity, DeviceProfile profile)
    : Device(std::move(profile), capacity) {
  mem_ = std::make_unique<std::byte[]>(capacity);
  std::memset(mem_.get(), 0, capacity);
}

SsdDevice::SsdDevice(const std::string& path, uint64_t capacity,
                     DeviceProfile profile)
    : Device(std::move(profile), capacity) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  SPITFIRE_CHECK(fd_ >= 0);
  SPITFIRE_CHECK(::ftruncate(fd_, static_cast<off_t>(capacity)) == 0);
}

SsdDevice::~SsdDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status SsdDevice::Read(uint64_t offset, void* dst, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  if (fd_ >= 0) {
    ssize_t n = ::pread(fd_, dst, size, static_cast<off_t>(offset));
    if (n != static_cast<ssize_t>(size)) return Status::IoError("pread");
  } else {
    std::memcpy(dst, mem_.get() + offset, size);
  }
  AccountRead(size, /*sequential=*/false);
  return Status::OK();
}

Status SsdDevice::Write(uint64_t offset, const void* src, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  if (fd_ >= 0) {
    ssize_t n = ::pwrite(fd_, src, size, static_cast<off_t>(offset));
    if (n != static_cast<ssize_t>(size)) return Status::IoError("pwrite");
  } else {
    std::memcpy(mem_.get() + offset, src, size);
  }
  AccountWrite(size, /*sequential=*/false);
  return Status::OK();
}

Status SsdDevice::Persist(uint64_t offset, size_t size) {
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync");
  }
  return Status::OK();
}

}  // namespace spitfire
