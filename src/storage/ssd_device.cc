#include "storage/ssd_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/constants.h"
#include "storage/fault_injector.h"

namespace spitfire {

SsdDevice::SsdDevice(uint64_t capacity, DeviceProfile profile)
    : Device(std::move(profile), capacity), queue_sim_(profile_) {
  mem_ = std::make_unique<std::byte[]>(capacity);
  std::memset(mem_.get(), 0, capacity);
}

SsdDevice::SsdDevice(const std::string& path, uint64_t capacity,
                     DeviceProfile profile)
    : Device(std::move(profile), capacity), queue_sim_(profile_) {
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  SPITFIRE_CHECK(fd_ >= 0);
  SPITFIRE_CHECK(::ftruncate(fd_, static_cast<off_t>(capacity)) == 0);
}

SsdDevice::~SsdDevice() {
  if (fd_ >= 0) ::close(fd_);
}

void SsdDevice::LockRange(uint64_t offset, size_t size, bool exclusive) {
  const uint64_t first = offset / kPageSize;
  const uint64_t count = (size + kPageSize - 1) / kPageSize;
  bool used[kCopyLockStripes] = {};
  for (uint64_t p = 0; p < count && p < kCopyLockStripes; ++p) {
    used[(first + p) % kCopyLockStripes] = true;
  }
  for (size_t i = 0; i < kCopyLockStripes; ++i) {
    if (!used[i]) continue;
    if (exclusive) {
      copy_locks_[i].lock();
    } else {
      copy_locks_[i].lock_shared();
    }
  }
}

void SsdDevice::UnlockRange(uint64_t offset, size_t size, bool exclusive) {
  const uint64_t first = offset / kPageSize;
  const uint64_t count = (size + kPageSize - 1) / kPageSize;
  bool used[kCopyLockStripes] = {};
  for (uint64_t p = 0; p < count && p < kCopyLockStripes; ++p) {
    used[(first + p) % kCopyLockStripes] = true;
  }
  for (size_t i = 0; i < kCopyLockStripes; ++i) {
    if (!used[i]) continue;
    if (exclusive) {
      copy_locks_[i].unlock();
    } else {
      copy_locks_[i].unlock_shared();
    }
  }
}

Status SsdDevice::TransferIn(uint64_t offset, void* dst, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  if (fd_ >= 0) {
    // pread may legitimately transfer fewer bytes than requested (or be
    // interrupted by a signal); loop until the full range arrives.
    auto* p = static_cast<std::byte*>(dst);
    size_t done = 0;
    while (done < size) {
      const ssize_t n = ::pread(fd_, p + done, size - done,
                                static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pread");
      }
      if (n == 0) return Status::IoError("pread: unexpected EOF");
      done += static_cast<size_t>(n);
    }
  } else {
    LockRange(offset, size, /*exclusive=*/false);
    std::memcpy(dst, mem_.get() + offset, size);
    UnlockRange(offset, size, /*exclusive=*/false);
  }
  return Status::OK();
}

Status SsdDevice::TransferOut(uint64_t offset, const void* src, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  Status inj_status = Status::OK();
  if (FaultInjector* fi = FaultInjector::Get()) {
    size_t allowed = size;
    inj_status = fi->OnSsdWrite(offset, size, &allowed);
    // The surviving prefix still reaches the medium (a torn/short write);
    // the caller sees the failure status below.
    size = allowed;
    if (size == 0) return inj_status;
  }
  if (fd_ >= 0) {
    const auto* p = static_cast<const std::byte*>(src);
    size_t done = 0;
    while (done < size) {
      const ssize_t n = ::pwrite(fd_, p + done, size - done,
                                 static_cast<off_t>(offset + done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::IoError("pwrite");
      }
      if (n == 0) return Status::IoError("pwrite: no progress");
      done += static_cast<size_t>(n);
    }
  } else {
    LockRange(offset, size, /*exclusive=*/true);
    std::memcpy(mem_.get() + offset, src, size);
    UnlockRange(offset, size, /*exclusive=*/true);
  }
  return inj_status;
}

Status SsdDevice::Read(uint64_t offset, void* dst, size_t size) {
  SPITFIRE_RETURN_NOT_OK(TransferIn(offset, dst, size));
  // Multi-page requests (coalesced by the I/O scheduler) stream from
  // consecutive blocks, so they earn the sequential rate.
  AccountRead(size, /*sequential=*/size > kPageSize);
  return Status::OK();
}

Status SsdDevice::Write(uint64_t offset, const void* src, size_t size) {
  SPITFIRE_RETURN_NOT_OK(TransferOut(offset, src, size));
  AccountWrite(size, /*sequential=*/size > kPageSize);
  return Status::OK();
}

Status SsdDevice::BeginRead(uint64_t offset, void* dst, size_t size,
                            uint64_t* complete_at_ns) {
  SPITFIRE_RETURN_NOT_OK(TransferIn(offset, dst, size));
  AccountReadStats(size);
  *complete_at_ns =
      queue_sim_.Submit(size, /*sequential=*/size > kPageSize,
                        /*is_write=*/false);
  return Status::OK();
}

Status SsdDevice::BeginWrite(uint64_t offset, const void* src, size_t size,
                             uint64_t* complete_at_ns) {
  SPITFIRE_RETURN_NOT_OK(TransferOut(offset, src, size));
  AccountWriteStats(size);
  *complete_at_ns =
      queue_sim_.Submit(size, /*sequential=*/size > kPageSize,
                        /*is_write=*/true);
  return Status::OK();
}

Status SsdDevice::Persist(uint64_t offset, size_t size) {
  if (FaultInjector* fi = FaultInjector::Get()) {
    SPITFIRE_RETURN_NOT_OK(fi->OnSsdPersist());
  }
  if (fd_ >= 0 && ::fdatasync(fd_) != 0) {
    return Status::IoError("fdatasync");
  }
  return Status::OK();
}

}  // namespace spitfire
