#ifndef SPITFIRE_STORAGE_PERF_MODEL_H_
#define SPITFIRE_STORAGE_PERF_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace spitfire {

// Performance/cost profile of a storage device, encoding Table 1 of the
// paper (DRAM DIMMs, Optane DC PMMs, Optane DC P4800X SSD). Latencies are
// idle access latencies per request; bandwidths cap sustained transfer.
struct DeviceProfile {
  std::string name;

  // Idle per-request latency (nanoseconds).
  uint64_t seq_read_latency_ns = 0;
  uint64_t rand_read_latency_ns = 0;
  uint64_t seq_write_latency_ns = 0;
  uint64_t rand_write_latency_ns = 0;

  // Sustained bandwidth (bytes per second).
  double seq_read_bw = 0;
  double rand_read_bw = 0;
  double seq_write_bw = 0;
  double rand_write_bw = 0;

  // Media access granularity in bytes: 64 B (DRAM), 256 B (Optane PMM),
  // 16 KB (SSD). Requests smaller than this still transfer a full block —
  // the I/O amplification that drives Figure 11.
  size_t media_granularity = 64;

  // The sustained bandwidths above are machine aggregates (6 DIMMs, many
  // threads). A single in-flight request achieves only a fraction of
  // them; this divisor models the low-queue-depth bandwidth the 1-2
  // worker simulation actually sees (Optane PMMs: ~3x below aggregate).
  double queue_depth_divisor = 1.0;

  bool byte_addressable = true;
  bool persistent = false;

  // Price in $/GB (Table 1; used by the Figure 14 grid search).
  double price_per_gb = 0;

  // Total latency in ns of transferring `bytes` in one request, before the
  // global simulation scale is applied.
  uint64_t ReadLatencyNanos(size_t bytes, bool sequential) const;
  uint64_t WriteLatencyNanos(size_t bytes, bool sequential) const;

  // Bytes actually touched on the medium for a request of `bytes`
  // (rounded up to the media granularity).
  size_t MediaBytes(size_t bytes) const;

  // Table 1 presets.
  static DeviceProfile Dram();
  static DeviceProfile OptaneNvm();
  static DeviceProfile OptaneSsd();
};

// Global control over simulated device latencies. The scale multiplies
// every simulated delay: 1.0 reproduces Table 1, 0.0 disables delays
// entirely (unit tests), and benchmarks use a reduced scale so runs finish
// quickly while preserving the DRAM:NVM:SSD ratios.
class LatencySimulator {
 public:
  static void SetScale(double scale);
  static double scale();

  // Busy-waits for `nanos * scale` nanoseconds.
  static void Delay(uint64_t nanos);

  // Delays below this threshold (post-scaling) are skipped: the spin-wait
  // call itself costs ~50 ns, so modeling sub-50 ns DRAM accesses with a
  // spin would distort rather than improve fidelity.
  static constexpr uint64_t kMinModeledNanos = 60;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_PERF_MODEL_H_
