#ifndef SPITFIRE_STORAGE_PERF_MODEL_H_
#define SPITFIRE_STORAGE_PERF_MODEL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace spitfire {

// Multi-queue submission model for a device. A device exposes `num_queues`
// independent submission queues, each admitting up to `queue_depth`
// concurrent requests; transfers within one queue serialize on its channel.
// `saturating_queues` captures how many concurrently driven queues it takes
// to reach the profile's aggregate bandwidth: a single queue sustains
// aggregate / saturating_queues, so the synchronous (one-request-at-a-time)
// path sees exactly the low-queue-depth bandwidth the old
// `queue_depth_divisor` scalar modeled.
struct QueueModel {
  uint32_t num_queues = 1;
  uint32_t queue_depth = 1;
  double saturating_queues = 1.0;

  // Total requests the device can hold in flight.
  uint32_t TotalDepth() const { return num_queues * queue_depth; }
};

// Performance/cost profile of a storage device, encoding Table 1 of the
// paper (DRAM DIMMs, Optane DC PMMs, Optane DC P4800X SSD). Latencies are
// idle access latencies per request; bandwidths cap sustained transfer.
struct DeviceProfile {
  std::string name;

  // Idle per-request latency (nanoseconds).
  uint64_t seq_read_latency_ns = 0;
  uint64_t rand_read_latency_ns = 0;
  uint64_t seq_write_latency_ns = 0;
  uint64_t rand_write_latency_ns = 0;

  // Sustained bandwidth (bytes per second).
  double seq_read_bw = 0;
  double rand_read_bw = 0;
  double seq_write_bw = 0;
  double rand_write_bw = 0;

  // Media access granularity in bytes: 64 B (DRAM), 256 B (Optane PMM),
  // 16 KB (SSD). Requests smaller than this still transfer a full block —
  // the I/O amplification that drives Figure 11.
  size_t media_granularity = 64;

  // The sustained bandwidths above are machine aggregates (6 DIMMs, many
  // threads / 16-deep NVMe queues). A single in-flight request achieves
  // only a fraction of them; `queues.saturating_queues` models the
  // low-queue-depth bandwidth the synchronous path sees (Optane PMMs:
  // ~3x below aggregate), while `num_queues`/`queue_depth` bound how much
  // concurrency the async submission path can extract.
  QueueModel queues;

  bool byte_addressable = true;
  bool persistent = false;

  // Price in $/GB (Table 1; used by the Figure 14 grid search).
  double price_per_gb = 0;

  // Total latency in ns of transferring `bytes` in one request, before the
  // global simulation scale is applied.
  uint64_t ReadLatencyNanos(size_t bytes, bool sequential) const;
  uint64_t WriteLatencyNanos(size_t bytes, bool sequential) const;

  // Bytes actually touched on the medium for a request of `bytes`
  // (rounded up to the media granularity).
  size_t MediaBytes(size_t bytes) const;

  // Table 1 presets.
  static DeviceProfile Dram();
  static DeviceProfile OptaneNvm();
  static DeviceProfile OptaneSsd();
};

// Global control over simulated device latencies. The scale multiplies
// every simulated delay: 1.0 reproduces Table 1, 0.0 disables delays
// entirely (unit tests), and benchmarks use a reduced scale so runs finish
// quickly while preserving the DRAM:NVM:SSD ratios.
class LatencySimulator {
 public:
  static void SetScale(double scale);
  static double scale();

  // Busy-waits for `nanos * scale` nanoseconds.
  static void Delay(uint64_t nanos);

  // Delays below this threshold (post-scaling) are skipped: the spin-wait
  // call itself costs ~50 ns, so modeling sub-50 ns DRAM accesses with a
  // spin would distort rather than improve fidelity.
  static constexpr uint64_t kMinModeledNanos = 60;
};

// Simulates the timing of a device's multi-queue submission interface.
// Submit() admits a request and returns the absolute steady-clock nanosecond
// at which it completes, without delaying the caller — asynchronous callers
// overlap work until the deadline, synchronous callers wait it out.
//
// Per queue, two resources gate a request:
//  - a slot: at most `queue_depth` requests are in flight; when full, the
//    request is admitted only when the oldest in-flight one completes;
//  - the transfer channel: data transfers serialize, each queue sustaining
//    aggregate-bandwidth / saturating_queues on its own.
// The per-request idle latency overlaps across requests (that is what queue
// depth buys on a real NVMe device), so at depth d a queue completes up to d
// transfers per latency window. Requests round-robin across queues.
class DeviceQueueSim {
 public:
  explicit DeviceQueueSim(const DeviceProfile& profile);

  // Admits a request of `bytes` and returns its completion deadline in
  // NowNanos() terms. At simulation scale 0 the deadline is "now".
  uint64_t Submit(size_t bytes, bool sequential, bool is_write);

 private:
  struct Queue {
    std::deque<uint64_t> inflight;  // completion deadlines, oldest first
    uint64_t transfer_tail = 0;     // when the queue's channel frees up
  };

  const DeviceProfile profile_;  // snapshot; devices never mutate profiles
  std::mutex mu_;
  std::vector<Queue> queues_;
  uint32_t next_queue_ = 0;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_PERF_MODEL_H_
