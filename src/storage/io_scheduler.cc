#include "storage/io_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace spitfire {

IoScheduler::IoScheduler(Device* ssd, const IoSchedulerOptions& opts)
    : ssd_(ssd), opts_(opts) {
  SPITFIRE_CHECK(ssd_ != nullptr);
  if (opts_.num_workers == 0) opts_.num_workers = 1;
  if (opts_.max_coalesce_pages == 0) opts_.max_coalesce_pages = 1;
  if (opts_.max_pending_writes == 0) opts_.max_pending_writes = 1;
  workers_.reserve(opts_.num_workers);
  for (size_t i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

IoScheduler::~IoScheduler() { Shutdown(); }

void IoScheduler::MaybeEraseLocked(Shard& s, uint64_t offset) {
  auto it = s.table.find(offset);
  if (it == s.table.end()) return;
  const Entry& e = it->second;
  if (e.read == nullptr && e.write == nullptr && e.write_seq == 0) {
    s.table.erase(it);
  }
}

Status IoScheduler::ReadPage(uint64_t offset, std::byte* dst,
                             uint64_t* out_seq) {
  Shard& s = ShardFor(offset);
  bool tried_steal = false;
  std::unique_lock<std::mutex> l(s.mu);
  for (;;) {
    Entry& e = s.table[offset];
    if (e.write != nullptr) {
      // A staged (not yet device-durable) write holds the freshest bytes.
      std::memcpy(dst, e.write->buf.get(), kPageSize);
      if (out_seq != nullptr) *out_seq = e.write_seq;
      stats_.reads_from_staged.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (e.read != nullptr) {
      // Single-flight: join the in-flight read instead of duplicating it.
      std::shared_ptr<ReadFlight> f = e.read;
      ++f->joiners;
      stats_.reads_deduped.fetch_add(1, std::memory_order_relaxed);
      // The flight may belong to a claimed prefetch window whose
      // execution is queued but not yet running (the claimer can be
      // descheduled between registering the claim and submitting the
      // task, and the worker never races the submitter for the core); run
      // it inline instead of sleeping on work nobody is executing. The
      // timed re-check matters: if the task was submitted AFTER our first
      // steal attempt found the queue empty, a plain wait would sleep
      // until some other thread ran it — with every peer parked on the
      // same window, that is a multi-millisecond stall.
      while (!f->done) {
        l.unlock();
        TryRunPendingTask();
        l.lock();
        if (f->done) break;
        s.cv.wait_for(l, std::chrono::microseconds(100),
                      [&] { return f->done; });
      }
      if (f->stale) {
        // A write landed mid-flight; re-resolve (it is staged or queued).
        stats_.stale_read_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!f->status.ok()) return f->status;
      std::memcpy(dst, f->buf, kPageSize);
      if (out_seq != nullptr) *out_seq = f->seq;
      return Status::OK();
    }
    if (!tried_steal) {
      // Before leading a single-page read, drain one queued prefetch task
      // (if any): a pending window may cover this offset, and on the
      // synchronous simulated device running it here both avoids a
      // duplicate read and keeps the window one coalesced op. The entry
      // reference is stale after the relock either way, so loop.
      tried_steal = true;
      l.unlock();
      TryRunPendingTask();
      l.lock();
      continue;
    }
    // Leader: register the flight, then run the device read without the
    // shard lock so joiners can attach (and writers can supersede).
    auto f = std::make_shared<ReadFlight>();
    f->seq = e.write_seq;
    e.read = f;
    l.unlock();
    const Status st = ssd_->Read(offset, dst, kPageSize);
    stats_.read_ops.fetch_add(1, std::memory_order_relaxed);
    l.lock();
    {
      // The map may have rehashed while unlocked; re-resolve the entry.
      Entry& e2 = s.table[offset];
      f->status = st;
      f->stale = (e2.write_seq != f->seq);
      // Joiners registered before this relock; none can attach after the
      // flight is unlinked below, so the copy is skipped when uncontended.
      if (f->joiners > 0 && st.ok() && !f->stale) {
        std::memcpy(f->buf, dst, kPageSize);
      }
      f->done = true;
      if (e2.read == f) e2.read.reset();
    }
    MaybeEraseLocked(s, offset);
    s.cv.notify_all();
    if (f->stale) {
      stats_.stale_read_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!st.ok()) return st;
    if (out_seq != nullptr) *out_seq = f->seq;
    return Status::OK();
  }
}

std::shared_ptr<void> IoScheduler::ClaimPrefetch(uint64_t offset, size_t n) {
  auto rec = std::make_shared<PrefetchClaimRec>();
  rec->offset = offset;
  rec->n = n;
  rec->flights.resize(n);
  size_t owned = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t off = offset + i * kPageSize;
    Shard& s = ShardFor(off);
    std::lock_guard<std::mutex> l(s.mu);
    Entry& e = s.table[off];
    // Pages with a staged write or an in-flight read stay with their
    // current owner.
    if (e.write != nullptr || e.read != nullptr) continue;
    auto f = std::make_shared<ReadFlight>();
    f->seq = e.write_seq;
    e.read = f;
    rec->flights[i] = std::move(f);
    ++owned;
  }
  if (owned == 0) return nullptr;
  return rec;
}

Status IoScheduler::ExecutePrefetch(const std::shared_ptr<void>& claim,
                                    std::byte* dst, uint64_t* seqs,
                                    bool* covered,
                                    const std::function<void(size_t)>& ready,
                                    size_t* joined,
                                    const std::function<void(size_t)>& installed) {
  auto* rec = static_cast<PrefetchClaimRec*>(claim.get());
  const uint64_t offset = rec->offset;
  const size_t n = rec->n;
  for (size_t i = 0; i < n; ++i) covered[i] = false;
  size_t total_joiners = 0;
  size_t early_joiners = 0;
  bool installed_fired = false;

  // One device op per maximal contiguous run of owned pages.
  Status result = Status::OK();
  size_t i = 0;
  while (i < n) {
    if (rec->flights[i] == nullptr) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && rec->flights[j] != nullptr) ++j;
    const Status st =
        ssd_->Read(offset + i * kPageSize, dst + i * kPageSize,
                   (j - i) * kPageSize);
    stats_.read_ops.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) result = st;
    // Three passes over the run, in a strict order: validate every page,
    // install every page, and only then complete the flights.
    //
    //  - Installing before completing means a window page is at every
    //    instant either resident or joinable: completing first would
    //    erase the page's single-flight entry while its bytes are still
    //    unpublished, and a miss in that gap would duplicate the read.
    //  - Completing the whole run as one batch (rather than per page)
    //    means each joiner wakes exactly once, to a fully-published run.
    //    Waking per page lets early joiners outrun the install loop and
    //    re-sleep on the next page, turning one window into dozens of
    //    context-switch round trips.
    for (size_t k = i; k < j; ++k) {
      const uint64_t off = offset + k * kPageSize;
      Shard& s = ShardFor(off);
      std::shared_ptr<ReadFlight>& f = rec->flights[k];
      std::lock_guard<std::mutex> l(s.mu);
      Entry& e = s.table[off];
      f->status = st;
      f->stale = (e.write_seq != f->seq);
      if (st.ok() && !f->stale) {
        seqs[k] = f->seq;
        covered[k] = true;
      }
      early_joiners += static_cast<size_t>(f->joiners);
    }
    if (ready) {
      for (size_t k = i; k < j; ++k) {
        // Outside the shard lock; the install re-validates WriteSeq.
        if (covered[k]) ready(k);
      }
    }
    if (installed && !installed_fired) {
      installed_fired = true;
      installed(early_joiners);
    }
    for (size_t k = i; k < j; ++k) {
      const uint64_t off = offset + k * kPageSize;
      Shard& s = ShardFor(off);
      std::shared_ptr<ReadFlight>& f = rec->flights[k];
      {
        std::lock_guard<std::mutex> l(s.mu);
        Entry& e = s.table[off];
        // A write may have staged while the installs ran: re-check, so a
        // joiner retries rather than consuming superseded bytes. (The
        // install path re-validates against WriteSeq on its own.)
        f->stale = (e.write_seq != f->seq);
        total_joiners += static_cast<size_t>(f->joiners);
        if (f->joiners > 0 && covered[k] && !f->stale) {
          // Waiters that joined this flight copy from its buffer.
          std::memcpy(f->buf, dst + k * kPageSize, kPageSize);
        }
        f->done = true;
        if (e.read == f) e.read.reset();
        MaybeEraseLocked(s, off);
      }
      s.cv.notify_all();
    }
    i = j;
  }
  if (joined != nullptr) *joined = total_joiners;
  return result;
}

Status IoScheduler::WritePage(uint64_t offset, const std::byte* src) {
  {
    // Backpressure before touching the shard, so a blocked writer never
    // holds a lock a worker needs to make progress.
    std::unique_lock<std::mutex> ql(q_mu_);
    q_cv_.wait(ql, [&] {
      return pending_writes_ < opts_.max_pending_writes || stop_;
    });
    if (stop_) return Status::IoError("io scheduler stopped");
  }

  Shard& s = ShardFor(offset);
  std::shared_ptr<StagedWrite> w;
  {
    std::unique_lock<std::mutex> l(s.mu);
    Entry* e = &s.table[offset];
    while (e->write != nullptr && e->write->issuing) {
      // The previous image is being copied to the device; wait for it so
      // this (newer) image cannot be overtaken.
      s.cv.wait(l);
      e = &s.table[offset];  // the map may have rehashed while unlocked
    }
    // The sequence bump is what invalidates concurrent reads: any read
    // that sampled an older sequence fails its install-time validation.
    e->write_seq++;
    if (e->write != nullptr) {
      // Still queued: last writer wins in place, no second device op.
      std::memcpy(e->write->buf.get(), src, kPageSize);
      return Status::OK();
    }
    w = std::make_shared<StagedWrite>();
    w->buf = std::make_unique<std::byte[]>(kPageSize);
    std::memcpy(w->buf.get(), src, kPageSize);
    e->write = w;
  }
  stats_.writes_staged.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    ++pending_writes_;
    write_queue_.push_back(QueueItem{offset, std::move(w)});
  }
  q_cv_.notify_all();
  return Status::OK();
}

uint64_t IoScheduler::WriteSeq(uint64_t offset) {
  Shard& s = ShardFor(offset);
  std::lock_guard<std::mutex> l(s.mu);
  auto it = s.table.find(offset);
  return it == s.table.end() ? 0 : it->second.write_seq;
}

Status IoScheduler::Drain() {
  std::unique_lock<std::mutex> ql(q_mu_);
  ++drain_waiters_;
  q_cv_.notify_all();  // cut any coalescing window short
  q_cv_.wait(ql, [&] { return pending_writes_ == 0; });
  --drain_waiters_;
  Status st = first_write_error_;
  first_write_error_ = Status::OK();
  return st;
}

bool IoScheduler::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    if (stop_) return false;
    tasks_.push_back(std::move(task));
  }
  q_cv_.notify_all();
  return true;
}

bool IoScheduler::TryRunPendingTask() {
  std::function<void()> t;
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    if (tasks_.empty()) return false;
    t = std::move(tasks_.front());
    tasks_.pop_front();
  }
  t();
  return true;
}

void IoScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    if (stop_ && workers_.empty()) return;
    stop_ = true;
  }
  q_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
}

void IoScheduler::WorkerLoop() {
  std::vector<std::byte> scratch(opts_.max_coalesce_pages * kPageSize);
  std::unique_lock<std::mutex> ql(q_mu_);
  for (;;) {
    q_cv_.wait(ql, [&] { return stop_ || !write_queue_.empty(); });
    if (write_queue_.empty()) {
      if (stop_) {
        // Queued prefetch tasks normally run on the thread that first
        // waits for one of their pages (TryRunPendingTask): waking a
        // worker for them would make its simulated device spin compete
        // with the submitter for the core. Any still pending at shutdown
        // must run here, though — their claims have flights to complete.
        while (!tasks_.empty()) {
          std::function<void()> t = std::move(tasks_.front());
          tasks_.pop_front();
          ql.unlock();
          t();
          ql.lock();
        }
        return;
      }
      continue;
    }
    if (write_queue_.size() < opts_.max_coalesce_pages && !stop_ &&
        drain_waiters_ == 0 && opts_.coalesce_window_us > 0) {
      // Linger briefly so an eviction burst coalesces into fewer ops.
      q_cv_.wait_for(ql, std::chrono::microseconds(opts_.coalesce_window_us),
                     [&] {
                       return stop_ || drain_waiters_ > 0 ||
                              write_queue_.size() >= opts_.max_coalesce_pages;
                     });
    }
    std::vector<QueueItem> batch;
    while (!write_queue_.empty() && batch.size() < opts_.max_coalesce_pages) {
      batch.push_back(std::move(write_queue_.front()));
      write_queue_.pop_front();
    }
    ql.unlock();
    const Status st = ProcessBatch(&batch, scratch.data());
    ql.lock();
    pending_writes_ -= batch.size();
    if (!st.ok() && first_write_error_.ok()) first_write_error_ = st;
    q_cv_.notify_all();
  }
}

Status IoScheduler::ProcessBatch(std::vector<QueueItem>* batch,
                                 std::byte* scratch) {
  std::sort(batch->begin(), batch->end(),
            [](const QueueItem& a, const QueueItem& b) {
              return a.offset < b.offset;
            });
  // Freeze every image first: after `issuing` is set (under the shard
  // mutex) writers wait for completion instead of mutating the buffer, so
  // the copies below are safe without a lock.
  for (QueueItem& item : *batch) {
    Shard& s = ShardFor(item.offset);
    std::lock_guard<std::mutex> l(s.mu);
    item.w->issuing = true;
  }
  Status result = Status::OK();
  size_t i = 0;
  while (i < batch->size()) {
    size_t j = i + 1;
    while (j < batch->size() &&
           (*batch)[j].offset == (*batch)[j - 1].offset + kPageSize) {
      ++j;
    }
    const size_t run = j - i;
    Status st;
    if (run == 1) {
      st = ssd_->Write((*batch)[i].offset, (*batch)[i].w->buf.get(),
                       kPageSize);
    } else {
      for (size_t k = i; k < j; ++k) {
        std::memcpy(scratch + (k - i) * kPageSize, (*batch)[k].w->buf.get(),
                    kPageSize);
      }
      st = ssd_->Write((*batch)[i].offset, scratch, run * kPageSize);
      stats_.writes_coalesced.fetch_add(run - 1, std::memory_order_relaxed);
    }
    stats_.write_ops.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) result = st;
    for (size_t k = i; k < j; ++k) {
      const uint64_t off = (*batch)[k].offset;
      Shard& s = ShardFor(off);
      std::lock_guard<std::mutex> l(s.mu);
      auto it = s.table.find(off);
      if (it != s.table.end() && it->second.write == (*batch)[k].w) {
        it->second.write.reset();
      }
      s.cv.notify_all();
    }
    i = j;
  }
  return result;
}

}  // namespace spitfire
