#include "storage/io_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "common/timer.h"

namespace spitfire {

namespace {
// Threads that pump completions with may_sleep=true (the async workload
// ring, the completion worker) are async-aware: device waits they execute
// sleep out their deadlines, yielding the core to useful work. Blocking
// threads keep the spin-wait so the synchronous path's CPU accounting is
// unchanged.
thread_local bool t_async_aware = false;
}  // namespace

IoScheduler::IoScheduler(Device* ssd, const IoSchedulerOptions& opts)
    : ssd_(ssd), opts_(opts), async_(ssd != nullptr && ssd->SupportsAsyncIo()) {
  SPITFIRE_CHECK(ssd_ != nullptr);
  if (opts_.num_workers == 0) opts_.num_workers = 1;
  if (opts_.max_coalesce_pages == 0) opts_.max_coalesce_pages = 1;
  if (opts_.max_pending_writes == 0) opts_.max_pending_writes = 1;
  workers_.reserve(opts_.num_workers);
  for (size_t i = 0; i < opts_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (async_) {
    completion_worker_ = std::thread([this] { CompletionWorkerLoop(); });
  }
}

IoScheduler::~IoScheduler() { Shutdown(); }

void IoScheduler::MaybeEraseLocked(Shard& s, uint64_t offset) {
  auto it = s.table.find(offset);
  if (it == s.table.end()) return;
  const Entry& e = it->second;
  if (e.read == nullptr && e.write == nullptr && e.write_seq == 0) {
    s.table.erase(it);
  }
}

void IoScheduler::ScheduleAt(uint64_t deadline_ns, std::function<void()> fn,
                             bool is_write) {
  if (deadline_ns <= NowNanos()) {
    // Already due (scale 0, or the queue model admitted instantly): run
    // inline. Callers hold no scheduler locks here.
    stats_.completions_run.fetch_add(1, std::memory_order_relaxed);
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> cl(comp_mu_);
    CompletionHeap& heap = is_write ? wcomps_ : comps_;
    heap.push(Completion{deadline_ns, comp_seq_++, std::move(fn)});
  }
  comp_cv_.notify_all();
}

bool IoScheduler::PumpDue() {
  // Entry-time semantics: run the completions due NOW, not until the heap
  // drains. A completion can submit follow-up I/O (a failed install
  // re-dispatches its waiters, which lead a fresh read) whose deadline
  // matures while earlier completions are still running; chasing a fresh
  // clock each iteration then never exits — the caller's ring (holding
  // pinned guards the very installs are waiting on) starves, and the
  // system livelocks. Batching by the entry clock keeps each pump finite.
  const uint64_t now = NowNanos();
  bool any = false;
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> cl(comp_mu_);
      CompletionHeap* heap = nullptr;
      if (!wcomps_.empty() && wcomps_.top().deadline <= now) {
        heap = &wcomps_;
      } else if (!comps_.empty() && comps_.top().deadline <= now) {
        heap = &comps_;
      }
      if (heap == nullptr) break;
      fn = std::move(const_cast<Completion&>(heap->top()).fn);
      heap->pop();
    }
    stats_.completions_run.fetch_add(1, std::memory_order_relaxed);
    fn();
    any = true;
  }
  return any;
}

bool IoScheduler::PumpDueWrites() {
  const uint64_t now = NowNanos();  // entry-time batch, see PumpDue
  bool any = false;
  for (;;) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> cl(comp_mu_);
      if (wcomps_.empty() || wcomps_.top().deadline > now) break;
      fn = std::move(const_cast<Completion&>(wcomps_.top()).fn);
      wcomps_.pop();
    }
    stats_.completions_run.fetch_add(1, std::memory_order_relaxed);
    fn();
    any = true;
  }
  return any;
}

void IoScheduler::WaitUntilDeadline(uint64_t deadline_ns) {
  for (;;) {
    const uint64_t now = NowNanos();
    if (now >= deadline_ns) return;
    // Keep other requests' completions flowing while this one is in
    // flight — that is what keeps N queues busy from one thread.
    if (PumpDue()) continue;
    const uint64_t remaining = deadline_ns - now;
    if (t_async_aware && remaining > 5'000) {
      std::unique_lock<std::mutex> cl(comp_mu_);
      comp_sleepers_.fetch_add(1, std::memory_order_seq_cst);
      comp_cv_.wait_for(cl, std::chrono::nanoseconds(std::min<uint64_t>(
                                remaining, 200'000)));
      comp_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      SpinWaitNanos(std::min<uint64_t>(remaining, 2'000));
    }
  }
}

void IoScheduler::CompleteFlight(uint64_t offset,
                                 std::shared_ptr<ReadFlight> f, Status st) {
  Shard& s = ShardFor(offset);
  std::vector<ReadCallback> cbs;
  {
    std::lock_guard<std::mutex> l(s.mu);
    Entry& e = s.table[offset];
    f->status = st;
    f->stale = (e.write_seq != f->seq);
    f->done = true;
    cbs.swap(f->callbacks);
    if (e.read == f) e.read.reset();
    MaybeEraseLocked(s, offset);
  }
  s.cv.notify_all();
  if (f->stale) {
    stats_.stale_read_retries.fetch_add(cbs.size(), std::memory_order_relaxed);
  }
  const Status cb_st =
      f->stale ? Status::Busy("read superseded by concurrent write") : st;
  for (ReadCallback& cb : cbs) {
    cb(cb_st, f->buf, f->seq);
  }
  SignalCompletions();
}

void IoScheduler::SignalCompletions() {
  // Dekker-style handshake with the sleepers: bump the epoch, THEN check
  // for sleepers (both seq_cst). A sleeper registers in comp_sleepers_
  // while holding comp_mu_, THEN rechecks the epoch. Either our bump is
  // visible to its recheck (it never sleeps), or its registration is
  // visible to our load (we take the mutex — serializing with its park —
  // and notify). The common case, a completion with nobody parked, stays
  // entirely lock-free.
  comp_epoch_.fetch_add(1, std::memory_order_seq_cst);
  if (comp_sleepers_.load(std::memory_order_seq_cst) > 0) {
    { std::lock_guard<std::mutex> cl(comp_mu_); }
    comp_cv_.notify_all();
  }
}

void IoScheduler::WaitForCompletion(uint64_t observed_epoch,
                                    uint64_t max_wait_ns) {
  std::unique_lock<std::mutex> cl(comp_mu_);
  comp_sleepers_.fetch_add(1, std::memory_order_seq_cst);
  if (comp_epoch_.load(std::memory_order_seq_cst) == observed_epoch) {
    comp_cv_.wait_for(cl, std::chrono::nanoseconds(max_wait_ns));
  }
  comp_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
}

void IoScheduler::CompletionWorkerLoop() {
  t_async_aware = true;
  std::unique_lock<std::mutex> cl(comp_mu_);
  for (;;) {
    if (comps_.empty() && wcomps_.empty()) {
      if (comp_stop_) return;
      comp_cv_.wait(cl);
      continue;
    }
    uint64_t next = UINT64_MAX;
    if (!comps_.empty()) next = comps_.top().deadline;
    if (!wcomps_.empty()) next = std::min(next, wcomps_.top().deadline);
    const uint64_t now = NowNanos();
    if (next > now && !comp_stop_) {
      // A pumping thread may beat us to this entry — that is fine, the
      // exclusive pop below keeps completions exactly-once.
      comp_cv_.wait_for(cl, std::chrono::nanoseconds(
                                std::min<uint64_t>(next - now, 1'000'000)));
      continue;
    }
    // Due — or shutdown, which fires everything immediately so in-flight
    // continuations resolve before the scheduler dies.
    CompletionHeap& heap =
        (!wcomps_.empty() && (comps_.empty() || wcomps_.top().deadline <= next))
            ? wcomps_
            : comps_;
    std::function<void()> fn = std::move(const_cast<Completion&>(heap.top()).fn);
    heap.pop();
    cl.unlock();
    stats_.completions_run.fetch_add(1, std::memory_order_relaxed);
    fn();
    cl.lock();
  }
}

IoScheduler::SubmitKind IoScheduler::SubmitRead(uint64_t offset,
                                                ReadCallback cb) {
  Shard& s = ShardFor(offset);
  std::unique_lock<std::mutex> l(s.mu);
  Entry& e = s.table[offset];
  if (e.write != nullptr) {
    // A staged (not yet device-durable) write holds the freshest bytes.
    // Copy to a thread-local scratch so the callback runs without the
    // shard lock (it may take buffer-manager latches).
    thread_local std::unique_ptr<std::byte[]> scratch;
    if (!scratch) scratch = std::make_unique<std::byte[]>(kPageSize);
    std::memcpy(scratch.get(), e.write->buf.get(), kPageSize);
    const uint64_t seq = e.write_seq;
    l.unlock();
    stats_.reads_from_staged.fetch_add(1, std::memory_order_relaxed);
    cb(Status::OK(), scratch.get(), seq);
    return SubmitKind::kInline;
  }
  if (e.read != nullptr) {
    // Single-flight: ride the in-flight read (a SubmitRead leader's or a
    // prefetch claim's) instead of duplicating it.
    e.read->callbacks.push_back(std::move(cb));
    stats_.reads_deduped.fetch_add(1, std::memory_order_relaxed);
    return SubmitKind::kJoined;
  }
  // Leader: register the flight, then submit without the shard lock so
  // joiners can attach (and writers can supersede) during the I/O.
  auto f = std::make_shared<ReadFlight>();
  f->seq = e.write_seq;
  f->callbacks.push_back(std::move(cb));
  e.read = f;
  l.unlock();
  stats_.async_submits.fetch_add(1, std::memory_order_relaxed);
  stats_.read_ops.fetch_add(1, std::memory_order_relaxed);
  if (async_) {
    uint64_t deadline = 0;
    const Status st = ssd_->BeginRead(offset, f->buf, kPageSize, &deadline);
    if (!st.ok()) {
      CompleteFlight(offset, std::move(f), st);
    } else {
      ScheduleAt(deadline,
                 [this, offset, f] { CompleteFlight(offset, f, Status::OK()); },
                 /*is_write=*/false);
    }
  } else {
    // Blocking device: the read happens here (charging the latency to this
    // thread, like the synchronous path) and completes inline.
    const Status st = ssd_->Read(offset, f->buf, kPageSize);
    CompleteFlight(offset, std::move(f), st);
  }
  return SubmitKind::kLeader;
}

bool IoScheduler::PumpCompletions(bool may_sleep) {
  if (may_sleep) t_async_aware = true;
  bool ran = TryRunPendingTask();
  if (PumpDue()) ran = true;
  if (ran || !may_sleep) return ran;
  std::unique_lock<std::mutex> cl(comp_mu_);
  uint64_t next = UINT64_MAX;
  if (!comps_.empty()) next = comps_.top().deadline;
  if (!wcomps_.empty()) next = std::min(next, wcomps_.top().deadline);
  const uint64_t now = NowNanos();
  if (next <= now) {
    cl.unlock();
    return PumpDue();
  }
  const uint64_t cap = 200'000;  // notifications cut this short
  comp_sleepers_.fetch_add(1, std::memory_order_seq_cst);
  comp_cv_.wait_for(cl, std::chrono::nanoseconds(
                            next == UINT64_MAX ? cap
                                               : std::min(next - now, cap)));
  comp_sleepers_.fetch_sub(1, std::memory_order_seq_cst);
  cl.unlock();
  return PumpDue();
}

Status IoScheduler::ReadPage(uint64_t offset, std::byte* dst,
                             uint64_t* out_seq) {
  Shard& s = ShardFor(offset);
  bool tried_steal = false;
  std::unique_lock<std::mutex> l(s.mu);
  for (;;) {
    Entry& e = s.table[offset];
    if (e.write != nullptr) {
      // A staged (not yet device-durable) write holds the freshest bytes.
      std::memcpy(dst, e.write->buf.get(), kPageSize);
      if (out_seq != nullptr) *out_seq = e.write_seq;
      stats_.reads_from_staged.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
    if (e.read != nullptr) {
      // Single-flight: join the in-flight read instead of duplicating it.
      std::shared_ptr<ReadFlight> f = e.read;
      ++f->joiners;
      stats_.reads_deduped.fetch_add(1, std::memory_order_relaxed);
      // The flight may belong to a claimed prefetch window whose
      // execution is queued but not yet running (the claimer can be
      // descheduled between registering the claim and submitting the
      // task, and the worker never races the submitter for the core); run
      // it inline instead of sleeping on work nobody is executing. The
      // timed re-check matters: if the task was submitted AFTER our first
      // steal attempt found the queue empty, a plain wait would sleep
      // until some other thread ran it — with every peer parked on the
      // same window, that is a multi-millisecond stall.
      while (!f->done) {
        l.unlock();
        TryRunPendingTask();
        l.lock();
        if (f->done) break;
        s.cv.wait_for(l, std::chrono::microseconds(100),
                      [&] { return f->done; });
      }
      if (f->stale) {
        // A write landed mid-flight; re-resolve (it is staged or queued).
        stats_.stale_read_retries.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (!f->status.ok()) return f->status;
      std::memcpy(dst, f->buf, kPageSize);
      if (out_seq != nullptr) *out_seq = f->seq;
      return Status::OK();
    }
    if (!tried_steal) {
      // Before leading a single-page read, drain one queued prefetch task
      // (if any): a pending window may cover this offset, and on the
      // synchronous simulated device running it here both avoids a
      // duplicate read and keeps the window one coalesced op. The entry
      // reference is stale after the relock either way, so loop.
      tried_steal = true;
      l.unlock();
      TryRunPendingTask();
      l.lock();
      continue;
    }
    // Leader: register the flight, then run the device read without the
    // shard lock so joiners can attach (and writers can supersede).
    auto f = std::make_shared<ReadFlight>();
    f->seq = e.write_seq;
    e.read = f;
    l.unlock();
    const Status st = ssd_->Read(offset, dst, kPageSize);
    stats_.read_ops.fetch_add(1, std::memory_order_relaxed);
    l.lock();
    std::vector<ReadCallback> cbs;
    {
      // The map may have rehashed while unlocked; re-resolve the entry.
      Entry& e2 = s.table[offset];
      f->status = st;
      f->stale = (e2.write_seq != f->seq);
      // Joiners registered before this relock; none can attach after the
      // flight is unlinked below, so the copy is skipped when uncontended.
      if ((f->joiners > 0 || !f->callbacks.empty()) && st.ok() && !f->stale) {
        std::memcpy(f->buf, dst, kPageSize);
      }
      f->done = true;
      cbs.swap(f->callbacks);
      if (e2.read == f) e2.read.reset();
    }
    MaybeEraseLocked(s, offset);
    s.cv.notify_all();
    if (!cbs.empty()) {
      // Async joiners that attached to this blocking-led flight.
      l.unlock();
      if (f->stale) {
        stats_.stale_read_retries.fetch_add(cbs.size(),
                                            std::memory_order_relaxed);
      }
      const Status cb_st =
          f->stale ? Status::Busy("read superseded by concurrent write") : st;
      for (ReadCallback& cb : cbs) cb(cb_st, f->buf, f->seq);
      SignalCompletions();
      l.lock();
    }
    if (f->stale) {
      stats_.stale_read_retries.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!st.ok()) return st;
    if (out_seq != nullptr) *out_seq = f->seq;
    return Status::OK();
  }
}

std::shared_ptr<void> IoScheduler::ClaimPrefetch(uint64_t offset, size_t n) {
  auto rec = std::make_shared<PrefetchClaimRec>();
  rec->offset = offset;
  rec->n = n;
  rec->flights.resize(n);
  size_t owned = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t off = offset + i * kPageSize;
    Shard& s = ShardFor(off);
    std::lock_guard<std::mutex> l(s.mu);
    Entry& e = s.table[off];
    // Pages with a staged write or an in-flight read stay with their
    // current owner.
    if (e.write != nullptr || e.read != nullptr) continue;
    auto f = std::make_shared<ReadFlight>();
    f->seq = e.write_seq;
    e.read = f;
    rec->flights[i] = std::move(f);
    ++owned;
  }
  if (owned == 0) return nullptr;
  return rec;
}

Status IoScheduler::ExecutePrefetch(const std::shared_ptr<void>& claim,
                                    std::byte* dst, uint64_t* seqs,
                                    bool* covered,
                                    const std::function<void(size_t)>& ready,
                                    size_t* joined,
                                    const std::function<void(size_t)>& installed) {
  auto* rec = static_cast<PrefetchClaimRec*>(claim.get());
  const uint64_t offset = rec->offset;
  const size_t n = rec->n;
  for (size_t i = 0; i < n; ++i) covered[i] = false;
  size_t total_joiners = 0;
  size_t early_joiners = 0;
  bool installed_fired = false;

  // One device op per maximal contiguous run of owned pages.
  Status result = Status::OK();
  size_t i = 0;
  while (i < n) {
    if (rec->flights[i] == nullptr) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < n && rec->flights[j] != nullptr) ++j;
    Status st;
    if (async_) {
      // Admit the run into the device's queue model and wait out its
      // deadline here, pumping other completions meanwhile: a second
      // window can be in flight on another queue while this one drains.
      // Async-aware threads sleep the wait; blocking threads spin (the
      // synchronous CPU accounting).
      uint64_t deadline = 0;
      st = ssd_->BeginRead(offset + i * kPageSize, dst + i * kPageSize,
                           (j - i) * kPageSize, &deadline);
      if (st.ok()) WaitUntilDeadline(deadline);
    } else {
      st = ssd_->Read(offset + i * kPageSize, dst + i * kPageSize,
                      (j - i) * kPageSize);
    }
    stats_.read_ops.fetch_add(1, std::memory_order_relaxed);
    if (!st.ok()) result = st;
    // Three passes over the run, in a strict order: validate every page,
    // install every page, and only then complete the flights.
    //
    //  - Installing before completing means a window page is at every
    //    instant either resident or joinable: completing first would
    //    erase the page's single-flight entry while its bytes are still
    //    unpublished, and a miss in that gap would duplicate the read.
    //  - Completing the whole run as one batch (rather than per page)
    //    means each joiner wakes exactly once, to a fully-published run.
    //    Waking per page lets early joiners outrun the install loop and
    //    re-sleep on the next page, turning one window into dozens of
    //    context-switch round trips.
    for (size_t k = i; k < j; ++k) {
      const uint64_t off = offset + k * kPageSize;
      Shard& s = ShardFor(off);
      std::shared_ptr<ReadFlight>& f = rec->flights[k];
      std::lock_guard<std::mutex> l(s.mu);
      Entry& e = s.table[off];
      f->status = st;
      f->stale = (e.write_seq != f->seq);
      if (st.ok() && !f->stale) {
        seqs[k] = f->seq;
        covered[k] = true;
      }
      early_joiners += static_cast<size_t>(f->joiners);
    }
    if (ready) {
      for (size_t k = i; k < j; ++k) {
        // Outside the shard lock; the install re-validates WriteSeq.
        if (covered[k]) ready(k);
      }
    }
    if (installed && !installed_fired) {
      installed_fired = true;
      installed(early_joiners);
    }
    for (size_t k = i; k < j; ++k) {
      const uint64_t off = offset + k * kPageSize;
      Shard& s = ShardFor(off);
      std::shared_ptr<ReadFlight>& f = rec->flights[k];
      std::vector<ReadCallback> cbs;
      {
        std::lock_guard<std::mutex> l(s.mu);
        Entry& e = s.table[off];
        // A write may have staged while the installs ran: re-check, so a
        // joiner retries rather than consuming superseded bytes. (The
        // install path re-validates against WriteSeq on its own.)
        f->stale = (e.write_seq != f->seq);
        total_joiners += static_cast<size_t>(f->joiners) + f->callbacks.size();
        if ((f->joiners > 0 || !f->callbacks.empty()) && covered[k] &&
            !f->stale) {
          // Waiters that joined this flight copy from its buffer.
          std::memcpy(f->buf, dst + k * kPageSize, kPageSize);
        }
        f->done = true;
        cbs.swap(f->callbacks);
        if (e.read == f) e.read.reset();
        MaybeEraseLocked(s, off);
      }
      s.cv.notify_all();
      if (!cbs.empty()) {
        // Async misses that joined this window's flights.
        const bool bad = !covered[k] || f->stale;
        if (f->stale) {
          stats_.stale_read_retries.fetch_add(cbs.size(),
                                              std::memory_order_relaxed);
        }
        const Status cb_st =
            bad ? (f->status.ok()
                       ? Status::Busy("read superseded by concurrent write")
                       : f->status)
                : Status::OK();
        for (ReadCallback& cb : cbs) cb(cb_st, f->buf, f->seq);
      }
    }
    i = j;
  }
  if (joined != nullptr) *joined = total_joiners;
  // Wake sleeping pumpers and waiters: installed window pages may unblock
  // their rings or complete a joined fetch.
  SignalCompletions();
  return result;
}

Status IoScheduler::WritePage(uint64_t offset, const std::byte* src) {
  {
    // Backpressure before touching the shard, so a blocked writer never
    // holds a lock a worker needs to make progress. The wait pumps due
    // write completions: this thread may itself be inside a read-flight
    // completion (install -> evict -> write), in which case nobody else is
    // guaranteed to retire the writes it is waiting on.
    std::unique_lock<std::mutex> ql(q_mu_);
    while (!(pending_writes_ < opts_.max_pending_writes || stop_)) {
      ql.unlock();
      PumpDueWrites();
      ql.lock();
      if (pending_writes_ < opts_.max_pending_writes || stop_) break;
      q_cv_.wait_for(ql, std::chrono::microseconds(200));
    }
    if (stop_) return Status::IoError("io scheduler stopped");
  }

  Shard& s = ShardFor(offset);
  std::shared_ptr<StagedWrite> w;
  {
    std::unique_lock<std::mutex> l(s.mu);
    Entry* e = &s.table[offset];
    while (e->write != nullptr && e->write->issuing) {
      // The previous image is being copied to the device; wait for it so
      // this (newer) image cannot be overtaken. Same pumping rationale as
      // the backpressure wait above: the clearing completion may be ours
      // to run.
      l.unlock();
      PumpDueWrites();
      l.lock();
      e = &s.table[offset];
      if (!(e->write != nullptr && e->write->issuing)) break;
      s.cv.wait_for(l, std::chrono::microseconds(200));
      e = &s.table[offset];  // the map may have rehashed while unlocked
    }
    // The sequence bump is what invalidates concurrent reads: any read
    // that sampled an older sequence fails its install-time validation.
    e->write_seq++;
    if (e->write != nullptr) {
      // Still queued: last writer wins in place, no second device op.
      std::memcpy(e->write->buf.get(), src, kPageSize);
      return Status::OK();
    }
    w = std::make_shared<StagedWrite>();
    w->buf = std::make_unique<std::byte[]>(kPageSize);
    std::memcpy(w->buf.get(), src, kPageSize);
    e->write = w;
  }
  stats_.writes_staged.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    ++pending_writes_;
    write_queue_.push_back(QueueItem{offset, std::move(w)});
  }
  q_cv_.notify_all();
  return Status::OK();
}

uint64_t IoScheduler::WriteSeq(uint64_t offset) {
  Shard& s = ShardFor(offset);
  std::lock_guard<std::mutex> l(s.mu);
  auto it = s.table.find(offset);
  return it == s.table.end() ? 0 : it->second.write_seq;
}

Status IoScheduler::Drain() {
  std::unique_lock<std::mutex> ql(q_mu_);
  ++drain_waiters_;
  q_cv_.notify_all();  // cut any coalescing window short
  while (pending_writes_ != 0) {
    // Pump write completions while waiting: submitted writes only count
    // as drained once their deadline passes, and this thread may be the
    // one that has to run those completions.
    ql.unlock();
    PumpDueWrites();
    ql.lock();
    if (pending_writes_ == 0) break;
    q_cv_.wait_for(ql, std::chrono::microseconds(200));
  }
  --drain_waiters_;
  Status st = first_write_error_;
  first_write_error_ = Status::OK();
  return st;
}

bool IoScheduler::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    if (stop_) return false;
    tasks_.push_back(std::move(task));
  }
  q_cv_.notify_all();
  return true;
}

bool IoScheduler::TryRunPendingTask() {
  std::function<void()> t;
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    if (tasks_.empty()) return false;
    t = std::move(tasks_.front());
    tasks_.pop_front();
  }
  t();
  return true;
}

void IoScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    if (stop_ && workers_.empty() && !completion_worker_.joinable()) return;
    stop_ = true;
  }
  q_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Write workers are gone (their shutdown drain may have scheduled more
  // completions); now let the completion worker fire everything still in
  // the heaps — early, but exactly once — so no flight or staged write is
  // left unresolved, then join it.
  {
    std::lock_guard<std::mutex> cl(comp_mu_);
    comp_stop_ = true;
  }
  comp_cv_.notify_all();
  if (completion_worker_.joinable()) completion_worker_.join();
}

void IoScheduler::WorkerLoop() {
  std::vector<std::byte> scratch(opts_.max_coalesce_pages * kPageSize);
  std::unique_lock<std::mutex> ql(q_mu_);
  for (;;) {
    q_cv_.wait(ql, [&] { return stop_ || !write_queue_.empty(); });
    if (write_queue_.empty()) {
      if (stop_) {
        // Queued prefetch tasks normally run on the thread that first
        // waits for one of their pages (TryRunPendingTask): waking a
        // worker for them would make its simulated device spin compete
        // with the submitter for the core. Any still pending at shutdown
        // must run here, though — their claims have flights to complete.
        while (!tasks_.empty()) {
          std::function<void()> t = std::move(tasks_.front());
          tasks_.pop_front();
          ql.unlock();
          t();
          ql.lock();
        }
        return;
      }
      continue;
    }
    if (write_queue_.size() < opts_.max_coalesce_pages && !stop_ &&
        drain_waiters_ == 0 && opts_.coalesce_window_us > 0) {
      // Linger briefly so an eviction burst coalesces into fewer ops.
      q_cv_.wait_for(ql, std::chrono::microseconds(opts_.coalesce_window_us),
                     [&] {
                       return stop_ || drain_waiters_ > 0 ||
                              write_queue_.size() >= opts_.max_coalesce_pages;
                     });
    }
    std::vector<QueueItem> batch;
    while (!write_queue_.empty() && batch.size() < opts_.max_coalesce_pages) {
      batch.push_back(std::move(write_queue_.front()));
      write_queue_.pop_front();
    }
    ql.unlock();
    // ProcessBatch owns retirement: synchronously after the device write,
    // or at the completion deadline on the async path — where this loop
    // immediately picks up the next batch, keeping further queues full
    // instead of spinning out one write at a time.
    (void)ProcessBatch(&batch, scratch.data());
    ql.lock();
  }
}

Status IoScheduler::ProcessBatch(std::vector<QueueItem>* batch,
                                 std::byte* scratch) {
  std::sort(batch->begin(), batch->end(),
            [](const QueueItem& a, const QueueItem& b) {
              return a.offset < b.offset;
            });
  // Freeze every image first: after `issuing` is set (under the shard
  // mutex) writers wait for completion instead of mutating the buffer, so
  // the copies below are safe without a lock.
  for (QueueItem& item : *batch) {
    Shard& s = ShardFor(item.offset);
    std::lock_guard<std::mutex> l(s.mu);
    item.w->issuing = true;
  }
  Status result = Status::OK();
  size_t i = 0;
  while (i < batch->size()) {
    size_t j = i + 1;
    while (j < batch->size() &&
           (*batch)[j].offset == (*batch)[j - 1].offset + kPageSize) {
      ++j;
    }
    const size_t run = j - i;
    const std::byte* data;
    if (run == 1) {
      data = (*batch)[i].w->buf.get();
    } else {
      for (size_t k = i; k < j; ++k) {
        std::memcpy(scratch + (k - i) * kPageSize, (*batch)[k].w->buf.get(),
                    kPageSize);
      }
      data = scratch;
      stats_.writes_coalesced.fetch_add(run - 1, std::memory_order_relaxed);
    }
    stats_.write_ops.fetch_add(1, std::memory_order_relaxed);
    if (async_) {
      // Submit and defer retirement to the completion deadline. BeginWrite
      // copies the bytes out eagerly, so `scratch` is reusable immediately
      // and the staged images stay frozen (issuing) until retirement.
      uint64_t deadline = 0;
      const Status st = ssd_->BeginWrite((*batch)[i].offset, data,
                                         run * kPageSize, &deadline);
      if (!st.ok()) result = st;
      auto items = std::make_shared<std::vector<QueueItem>>(
          batch->begin() + static_cast<ptrdiff_t>(i),
          batch->begin() + static_cast<ptrdiff_t>(j));
      ScheduleAt(st.ok() ? deadline : 0,
                 [this, items, st] { RetireWrites(*items, st); },
                 /*is_write=*/true);
    } else {
      const Status st =
          ssd_->Write((*batch)[i].offset, data, run * kPageSize);
      if (!st.ok()) result = st;
      std::vector<QueueItem> items(batch->begin() + static_cast<ptrdiff_t>(i),
                                   batch->begin() + static_cast<ptrdiff_t>(j));
      RetireWrites(items, st);
    }
    i = j;
  }
  return result;
}

void IoScheduler::RetireWrites(const std::vector<QueueItem>& items,
                               const Status& st) {
  for (const QueueItem& item : items) {
    Shard& s = ShardFor(item.offset);
    {
      std::lock_guard<std::mutex> l(s.mu);
      auto it = s.table.find(item.offset);
      if (it != s.table.end() && it->second.write == item.w) {
        it->second.write.reset();
      }
    }
    s.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> ql(q_mu_);
    pending_writes_ -= items.size();
    if (!st.ok() && first_write_error_.ok()) first_write_error_ = st;
  }
  q_cv_.notify_all();
}

}  // namespace spitfire
