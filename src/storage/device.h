#ifndef SPITFIRE_STORAGE_DEVICE_H_
#define SPITFIRE_STORAGE_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/macros.h"
#include "common/status.h"
#include "storage/perf_model.h"

namespace spitfire {

// Cumulative traffic counters for a device. `media_bytes_written` rounds
// each write up to the device's media granularity — this is the
// write-amplified figure behind the NVM-lifetime results (Figures 8, 13).
struct DeviceStats {
  std::atomic<uint64_t> num_reads{0};
  std::atomic<uint64_t> num_writes{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
  std::atomic<uint64_t> media_bytes_written{0};

  void Reset() {
    num_reads = 0;
    num_writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    media_bytes_written = 0;
  }
};

// Abstract storage device of the simulated hierarchy. Offsets address a
// flat byte space of `capacity` bytes. Implementations apply the profile's
// latency model on every access so higher layers observe realistic relative
// DRAM/NVM/SSD costs.
class Device {
 public:
  explicit Device(DeviceProfile profile, uint64_t capacity)
      : profile_(std::move(profile)), capacity_(capacity) {}
  virtual ~Device() = default;
  SPITFIRE_DISALLOW_COPY_AND_MOVE(Device);

  // Copies `size` bytes at `offset` into `dst`.
  virtual Status Read(uint64_t offset, void* dst, size_t size) = 0;

  // Copies `size` bytes from `src` to `offset`.
  virtual Status Write(uint64_t offset, const void* src, size_t size) = 0;

  // Asynchronous submission interface. BeginRead/BeginWrite perform the
  // data transfer eagerly (the simulation has no DMA engine) but do NOT
  // delay the caller: they admit the request into the device's multi-queue
  // model and report, via `*complete_at_ns`, the NowNanos() deadline at
  // which the request completes. Callers must not observe the data as
  // arrived (install pages, acknowledge writes) before the deadline.
  // Devices without a queue model return NotSupported; callers fall back
  // to the blocking Read/Write.
  virtual bool SupportsAsyncIo() const { return false; }
  virtual Status BeginRead(uint64_t offset, void* dst, size_t size,
                           uint64_t* complete_at_ns) {
    return Status::NotSupported("device has no async queue model");
  }
  virtual Status BeginWrite(uint64_t offset, const void* src, size_t size,
                            uint64_t* complete_at_ns) {
    return Status::NotSupported("device has no async queue model");
  }

  // For byte-addressable devices, a pointer through which the CPU can
  // operate on device-resident data in place (the paper's data flow paths
  // 3/8 that bypass DRAM). Returns nullptr for block devices.
  virtual std::byte* DirectPointer(uint64_t offset) { return nullptr; }

  // Ensures durability of the byte range (models clwb + sfence on NVM,
  // fsync on SSD). No-op on volatile devices.
  virtual Status Persist(uint64_t offset, size_t size) { return Status::OK(); }

  // Accounts for and delays an in-place access made through DirectPointer().
  // The buffer manager calls these when the CPU reads or writes
  // device-resident data without a device-mediated copy. `offset` lets
  // implementations with location-dependent cost (the memory-mode DRAM
  // cache) model hits and misses.
  virtual void OnDirectRead(uint64_t offset, size_t bytes,
                            bool sequential = false) {
    AccountRead(bytes, sequential);
  }
  virtual void OnDirectWrite(uint64_t offset, size_t bytes,
                             bool sequential = false) {
    AccountWrite(bytes, sequential);
  }

  const DeviceProfile& profile() const { return profile_; }
  uint64_t capacity() const { return capacity_; }
  DeviceStats& stats() { return stats_; }
  const DeviceStats& stats() const { return stats_; }

  double PriceDollars() const {
    return static_cast<double>(capacity_) / 1e9 * profile_.price_per_gb;
  }

 protected:
  Status CheckRange(uint64_t offset, size_t size) const {
    if (offset + size > capacity_) {
      return Status::InvalidArgument("device access out of range");
    }
    return Status::OK();
  }

  void AccountRead(size_t bytes, bool sequential) {
    AccountReadStats(bytes);
    LatencySimulator::Delay(profile_.ReadLatencyNanos(bytes, sequential));
  }
  void AccountWrite(size_t bytes, bool sequential) {
    AccountWriteStats(bytes);
    LatencySimulator::Delay(profile_.WriteLatencyNanos(bytes, sequential));
  }

  // Stats-only halves, for the async path where the latency is charged as
  // a completion deadline instead of an inline delay.
  void AccountReadStats(size_t bytes) {
    stats_.num_reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
  void AccountWriteStats(size_t bytes) {
    stats_.num_writes.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
    stats_.media_bytes_written.fetch_add(profile_.MediaBytes(bytes),
                                         std::memory_order_relaxed);
  }

  DeviceProfile profile_;
  uint64_t capacity_;
  DeviceStats stats_;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_DEVICE_H_
