#ifndef SPITFIRE_STORAGE_MEMORY_MODE_DEVICE_H_
#define SPITFIRE_STORAGE_MEMORY_MODE_DEVICE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "storage/nvm_device.h"

namespace spitfire {

// Simulates Optane "memory mode" (Section 2.2): the PMMs provide the
// capacity, and DRAM acts as a hardware-managed direct-mapped write-back
// cache in front of them. Software sees one big volatile device; whether an
// access runs at DRAM or NVM speed depends on whether it hits the L4 cache.
//
// We model the cache at the NVM media granularity (256 B blocks): a tag
// array of dram_capacity/256 sets, each holding the block currently cached
// plus a dirty bit. Hits cost DRAM latency; misses cost NVM latency, plus a
// write-back of the evicted block when it is dirty.
//
// Data itself lives in the underlying NvmDevice; the cache is a latency and
// traffic model only, which is sufficient because correctness never depends
// on which medium held the bytes.
class MemoryModeDevice : public Device {
 public:
  MemoryModeDevice(uint64_t nvm_capacity, uint64_t dram_cache_capacity);

  Status Read(uint64_t offset, void* dst, size_t size) override;
  Status Write(uint64_t offset, const void* src, size_t size) override;
  std::byte* DirectPointer(uint64_t offset) override;

  // Memory-mode DRAM is a volatile cache: contents are NOT persistent, so
  // Persist is unsupported (the paper's motivation for app-direct mode).
  Status Persist(uint64_t offset, size_t size) override {
    return Status::NotSupported("memory mode does not expose persistence");
  }

  // Accounts a direct CPU access of `bytes` at `offset` through the cache
  // model. Used by the buffer manager for in-place operations.
  void OnCachedAccess(uint64_t offset, size_t bytes, bool is_write);

  void OnDirectRead(uint64_t offset, size_t bytes,
                    bool sequential = false) override {
    OnCachedAccess(offset, bytes, /*is_write=*/false);
  }
  void OnDirectWrite(uint64_t offset, size_t bytes,
                     bool sequential = false) override {
    OnCachedAccess(offset, bytes, /*is_write=*/true);
  }

  uint64_t cache_hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  double HitRate() const {
    const double h = static_cast<double>(cache_hits());
    const double m = static_cast<double>(cache_misses());
    return (h + m) == 0 ? 0.0 : h / (h + m);
  }

  NvmDevice& nvm() { return *nvm_; }

 private:
  // Returns true on hit; on miss installs the block and models the miss
  // penalty (NVM read + optional dirty write-back).
  void Access(uint64_t block, bool is_write);

  static constexpr uint64_t kBlockSize = 256;
  static constexpr uint64_t kEmptyTag = UINT64_MAX;

  std::unique_ptr<NvmDevice> nvm_;
  DeviceProfile dram_profile_;
  uint64_t num_sets_;
  // tag_[set] holds (block_number << 1 | dirty). Plain atomics; races only
  // perturb the latency model, never data.
  std::vector<std::atomic<uint64_t>> tags_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  // Dirty-eviction bytes accumulated by Access() and charged (as one NVM
  // write) by the enclosing OnCachedAccess().
  std::atomic<uint64_t> pending_writeback_bytes_{0};
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_MEMORY_MODE_DEVICE_H_
