#include "storage/perf_model.h"

#include <algorithm>
#include <atomic>

#include "common/timer.h"

namespace spitfire {

namespace {
constexpr double kGB = 1e9;  // bandwidth figures are decimal GB/s

uint64_t TransferNanos(size_t bytes, double bytes_per_sec) {
  if (bytes_per_sec <= 0) return 0;
  return static_cast<uint64_t>(static_cast<double>(bytes) / bytes_per_sec *
                               1e9);
}

std::atomic<double> g_scale{1.0};
}  // namespace

size_t DeviceProfile::MediaBytes(size_t bytes) const {
  if (media_granularity == 0) return bytes;
  return (bytes + media_granularity - 1) / media_granularity *
         media_granularity;
}

uint64_t DeviceProfile::ReadLatencyNanos(size_t bytes, bool sequential) const {
  const size_t media = MediaBytes(bytes);
  return (sequential ? seq_read_latency_ns : rand_read_latency_ns) +
         TransferNanos(media, (sequential ? seq_read_bw : rand_read_bw) /
                                  queues.saturating_queues);
}

uint64_t DeviceProfile::WriteLatencyNanos(size_t bytes, bool sequential) const {
  const size_t media = MediaBytes(bytes);
  return (sequential ? seq_write_latency_ns : rand_write_latency_ns) +
         TransferNanos(media, (sequential ? seq_write_bw : rand_write_bw) /
                                  queues.saturating_queues);
}

DeviceProfile DeviceProfile::Dram() {
  DeviceProfile p;
  p.name = "DRAM";
  p.seq_read_latency_ns = 75;
  p.rand_read_latency_ns = 80;
  p.seq_write_latency_ns = 80;
  p.rand_write_latency_ns = 80;
  p.seq_read_bw = 180 * kGB;
  p.rand_read_bw = 180 * kGB;
  p.seq_write_bw = 180 * kGB;
  p.rand_write_bw = 180 * kGB;
  p.media_granularity = 64;
  p.byte_addressable = true;
  p.persistent = false;
  p.price_per_gb = 10.0;
  return p;
}

DeviceProfile DeviceProfile::OptaneNvm() {
  DeviceProfile p;
  p.name = "NVM (Optane DC PMM)";
  p.seq_read_latency_ns = 170;
  p.rand_read_latency_ns = 320;
  // Stores to Optane land in the on-DIMM write buffer; the clwb+sfence pair
  // observed by van Renen et al. costs on the order of 100 ns.
  p.seq_write_latency_ns = 90;
  p.rand_write_latency_ns = 100;
  p.seq_read_bw = 91.2 * kGB;
  p.rand_read_bw = 28.8 * kGB;
  p.seq_write_bw = 27.6 * kGB;
  p.rand_write_bw = 6 * kGB;
  p.media_granularity = 256;
  // 1-2 threads reach ~1/3 of aggregate BW; the iMC exposes one logical
  // queue per channel pair but the sync path never drives more than one.
  p.queues = QueueModel{/*num_queues=*/1, /*queue_depth=*/1,
                        /*saturating_queues=*/3.0};
  p.byte_addressable = true;
  p.persistent = true;
  p.price_per_gb = 4.5;
  return p;
}

DeviceProfile DeviceProfile::OptaneSsd() {
  DeviceProfile p;
  p.name = "SSD (Optane DC P4800X)";
  p.seq_read_latency_ns = 10'000;
  p.rand_read_latency_ns = 12'000;
  p.seq_write_latency_ns = 10'000;
  p.rand_write_latency_ns = 12'000;
  p.seq_read_bw = 2.6 * kGB;
  p.rand_read_bw = 2.4 * kGB;
  p.seq_write_bw = 2.4 * kGB;
  p.rand_write_bw = 2.3 * kGB;
  p.media_granularity = 16 * 1024;
  // P4800X-like multi-queue interface: 8 submission queues of depth 16.
  // One saturating queue keeps the synchronous model unchanged; the async
  // path earns extra bandwidth only by keeping multiple queues full.
  p.queues = QueueModel{/*num_queues=*/8, /*queue_depth=*/16,
                        /*saturating_queues=*/1.0};
  p.byte_addressable = false;
  p.persistent = true;
  p.price_per_gb = 2.8;
  return p;
}

void LatencySimulator::SetScale(double scale) {
  g_scale.store(scale < 0 ? 0.0 : scale, std::memory_order_relaxed);
}

double LatencySimulator::scale() {
  return g_scale.load(std::memory_order_relaxed);
}

DeviceQueueSim::DeviceQueueSim(const DeviceProfile& profile)
    : profile_(profile),
      queues_(std::max<uint32_t>(1, profile.queues.num_queues)) {}

uint64_t DeviceQueueSim::Submit(size_t bytes, bool sequential, bool is_write) {
  const double s = LatencySimulator::scale();
  const uint64_t now = NowNanos();
  if (s <= 0.0) return now;

  const uint64_t idle_ns =
      is_write ? (sequential ? profile_.seq_write_latency_ns
                             : profile_.rand_write_latency_ns)
               : (sequential ? profile_.seq_read_latency_ns
                             : profile_.rand_read_latency_ns);
  const double bw =
      (is_write ? (sequential ? profile_.seq_write_bw : profile_.rand_write_bw)
                : (sequential ? profile_.seq_read_bw : profile_.rand_read_bw)) /
      profile_.queues.saturating_queues;
  const uint64_t transfer_ns = TransferNanos(profile_.MediaBytes(bytes), bw);
  const auto scaled = [s](uint64_t ns) {
    return static_cast<uint64_t>(static_cast<double>(ns) * s);
  };

  const uint32_t depth = std::max<uint32_t>(1, profile_.queues.queue_depth);
  std::lock_guard<std::mutex> lock(mu_);
  Queue& q = queues_[next_queue_++ % queues_.size()];

  // Retire requests that have already completed.
  while (!q.inflight.empty() && q.inflight.front() <= now) {
    q.inflight.pop_front();
  }
  // Admission: a free slot, or wait for the oldest in-flight to finish.
  uint64_t admit = now;
  if (q.inflight.size() >= depth) {
    admit = q.inflight.front();
    q.inflight.pop_front();
  }
  // The queue's transfer channel serializes data movement; the per-request
  // idle latency overlaps across the in-flight window.
  const uint64_t transfer_start = std::max(admit, q.transfer_tail);
  q.transfer_tail = transfer_start + scaled(transfer_ns);
  const uint64_t done = q.transfer_tail + scaled(idle_ns);
  q.inflight.push_back(done);
  return done;
}

void LatencySimulator::Delay(uint64_t nanos) {
  const double s = scale();
  if (s <= 0.0) return;
  const uint64_t scaled = static_cast<uint64_t>(static_cast<double>(nanos) * s);
  if (scaled < kMinModeledNanos) return;
  SpinWaitNanos(scaled);
}

}  // namespace spitfire
