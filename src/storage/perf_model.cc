#include "storage/perf_model.h"

#include <atomic>

#include "common/timer.h"

namespace spitfire {

namespace {
constexpr double kGB = 1e9;  // bandwidth figures are decimal GB/s

uint64_t TransferNanos(size_t bytes, double bytes_per_sec) {
  if (bytes_per_sec <= 0) return 0;
  return static_cast<uint64_t>(static_cast<double>(bytes) / bytes_per_sec *
                               1e9);
}

std::atomic<double> g_scale{1.0};
}  // namespace

size_t DeviceProfile::MediaBytes(size_t bytes) const {
  if (media_granularity == 0) return bytes;
  return (bytes + media_granularity - 1) / media_granularity *
         media_granularity;
}

uint64_t DeviceProfile::ReadLatencyNanos(size_t bytes, bool sequential) const {
  const size_t media = MediaBytes(bytes);
  return (sequential ? seq_read_latency_ns : rand_read_latency_ns) +
         TransferNanos(media, (sequential ? seq_read_bw : rand_read_bw) /
                                  queue_depth_divisor);
}

uint64_t DeviceProfile::WriteLatencyNanos(size_t bytes, bool sequential) const {
  const size_t media = MediaBytes(bytes);
  return (sequential ? seq_write_latency_ns : rand_write_latency_ns) +
         TransferNanos(media, (sequential ? seq_write_bw : rand_write_bw) /
                                  queue_depth_divisor);
}

DeviceProfile DeviceProfile::Dram() {
  DeviceProfile p;
  p.name = "DRAM";
  p.seq_read_latency_ns = 75;
  p.rand_read_latency_ns = 80;
  p.seq_write_latency_ns = 80;
  p.rand_write_latency_ns = 80;
  p.seq_read_bw = 180 * kGB;
  p.rand_read_bw = 180 * kGB;
  p.seq_write_bw = 180 * kGB;
  p.rand_write_bw = 180 * kGB;
  p.media_granularity = 64;
  p.byte_addressable = true;
  p.persistent = false;
  p.price_per_gb = 10.0;
  return p;
}

DeviceProfile DeviceProfile::OptaneNvm() {
  DeviceProfile p;
  p.name = "NVM (Optane DC PMM)";
  p.seq_read_latency_ns = 170;
  p.rand_read_latency_ns = 320;
  // Stores to Optane land in the on-DIMM write buffer; the clwb+sfence pair
  // observed by van Renen et al. costs on the order of 100 ns.
  p.seq_write_latency_ns = 90;
  p.rand_write_latency_ns = 100;
  p.seq_read_bw = 91.2 * kGB;
  p.rand_read_bw = 28.8 * kGB;
  p.seq_write_bw = 27.6 * kGB;
  p.rand_write_bw = 6 * kGB;
  p.media_granularity = 256;
  p.queue_depth_divisor = 3.0;  // 1-2 threads reach ~1/3 of aggregate BW
  p.byte_addressable = true;
  p.persistent = true;
  p.price_per_gb = 4.5;
  return p;
}

DeviceProfile DeviceProfile::OptaneSsd() {
  DeviceProfile p;
  p.name = "SSD (Optane DC P4800X)";
  p.seq_read_latency_ns = 10'000;
  p.rand_read_latency_ns = 12'000;
  p.seq_write_latency_ns = 10'000;
  p.rand_write_latency_ns = 12'000;
  p.seq_read_bw = 2.6 * kGB;
  p.rand_read_bw = 2.4 * kGB;
  p.seq_write_bw = 2.4 * kGB;
  p.rand_write_bw = 2.3 * kGB;
  p.media_granularity = 16 * 1024;
  p.byte_addressable = false;
  p.persistent = true;
  p.price_per_gb = 2.8;
  return p;
}

void LatencySimulator::SetScale(double scale) {
  g_scale.store(scale < 0 ? 0.0 : scale, std::memory_order_relaxed);
}

double LatencySimulator::scale() {
  return g_scale.load(std::memory_order_relaxed);
}

void LatencySimulator::Delay(uint64_t nanos) {
  const double s = scale();
  if (s <= 0.0) return;
  const uint64_t scaled = static_cast<uint64_t>(static_cast<double>(nanos) * s);
  if (scaled < kMinModeledNanos) return;
  SpinWaitNanos(scaled);
}

}  // namespace spitfire
