#ifndef SPITFIRE_STORAGE_NVM_DEVICE_H_
#define SPITFIRE_STORAGE_NVM_DEVICE_H_

#include <string>

#include "storage/device.h"

namespace spitfire {

// Simulated Optane DC PMM in app-direct mode. Byte-addressable, persistent
// within a process run (the memory region outlives any buffer manager built
// on top of it, which is what the recovery path exploits).
//
// Backing: either an anonymous mapping (default) or a file mapped with
// mmap(MAP_SHARED) — the latter mirrors the fsdax configuration shown in
// Section 2.2 of the paper and persists across processes.
//
// Latency/bandwidth/granularity follow DeviceProfile::OptaneNvm(): 256 B
// media blocks, asymmetric read/write bandwidth, and Persist() modeling the
// clwb + sfence sequence.
class NvmDevice : public Device {
 public:
  // Anonymous (heap-like) backing.
  explicit NvmDevice(uint64_t capacity,
                     DeviceProfile profile = DeviceProfile::OptaneNvm());

  // File backing via mmap, emulating a namespace in fsdax mode.
  NvmDevice(const std::string& path, uint64_t capacity,
            DeviceProfile profile = DeviceProfile::OptaneNvm());

  ~NvmDevice() override;

  Status Read(uint64_t offset, void* dst, size_t size) override;
  Status Write(uint64_t offset, const void* src, size_t size) override;
  std::byte* DirectPointer(uint64_t offset) override;

  // Cache-line-grained load (HyMem's loader): one serialized random
  // request per 256 B media block, with no cross-block pipelining — the
  // access pattern whose cost Figure 11 studies. Requests below the media
  // granularity still pay for a whole block (I/O amplification), so
  // loading at 64 B costs ~4x more requests than 256 B for the same data.
  Status ReadFineGrained(uint64_t offset, void* dst, size_t size);

  // Models clwb (write back cache lines without evicting) followed by
  // sfence. On file backing it additionally msyncs the range.
  Status Persist(uint64_t offset, size_t size) override;

  // In-place stores through DirectPointer() that upper layers report here
  // are modeled as durable at return (ntstore + sfence), matching how the
  // buffer manager treats NVM-resident page content; raw stores that are
  // NOT reported become durable only via Persist(). The fault injector
  // keys its NVM durable image off this distinction.
  void OnDirectWrite(uint64_t offset, size_t bytes,
                     bool sequential = false) override;

  bool file_backed() const { return fd_ >= 0; }

 private:
  void MapAnonymous();
  void MapFile(const std::string& path);

  std::byte* base_ = nullptr;
  int fd_ = -1;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_NVM_DEVICE_H_
