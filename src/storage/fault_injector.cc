#include "storage/fault_injector.h"

#include <cstring>
#include <sstream>

#include "common/constants.h"
#include "common/macros.h"
#include "storage/nvm_device.h"

namespace spitfire {

std::atomic<FaultInjector*> FaultInjector::instance_{nullptr};

FaultInjector::FaultInjector(const Options& opts)
    : opts_(opts), rng_(opts.seed) {}

void FaultInjector::Install(const Options& opts) {
  FaultInjector* prev =
      instance_.exchange(new FaultInjector(opts), std::memory_order_acq_rel);
  delete prev;
}

void FaultInjector::Uninstall() {
  FaultInjector* prev = instance_.exchange(nullptr, std::memory_order_acq_rel);
  delete prev;
}

void FaultInjector::AttachNvm(NvmDevice* nvm) {
  SPITFIRE_CHECK(nvm != nullptr);
  nvm_ = nvm;
  nvm_live_ = nvm->DirectPointer(0);
  nvm_capacity_ = nvm->capacity();
  nvm_shadow_ = std::make_unique<std::byte[]>(nvm_capacity_);
  std::memcpy(nvm_shadow_.get(), nvm_live_, nvm_capacity_);
}

void FaultInjector::RestoreNvm() {
  SPITFIRE_CHECK(nvm_shadow_ != nullptr);
  std::memcpy(nvm_live_, nvm_shadow_.get(), nvm_capacity_);
}

bool FaultInjector::CountOp(Mode* mode) {
  if (tripped_.load(std::memory_order_acquire)) return false;
  if (opts_.kill_after_ops == 0) {
    ops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const uint64_t n = ops_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n != opts_.kill_after_ops) return false;
  // Exactly one thread sees the tripping count; draw its mode.
  std::lock_guard<std::mutex> g(mu_);
  int candidates[3];
  int nc = 0;
  if (opts_.enable_torn) candidates[nc++] = 0;
  if (opts_.enable_short) candidates[nc++] = 1;
  if (opts_.enable_drop) candidates[nc++] = 2;
  const int pick = nc == 0 ? 2 : candidates[rng_() % nc];
  *mode = pick == 0 ? Mode::kTorn : pick == 1 ? Mode::kShort : Mode::kDrop;
  return true;
}

size_t FaultInjector::SurvivingPrefix(Mode mode, size_t size) {
  std::lock_guard<std::mutex> g(mu_);
  switch (mode) {
    case Mode::kTorn: {
      // First K whole cache lines land, the rest do not.
      const size_t lines = size / kCacheLineSize;
      if (lines == 0) return 0;
      return (rng_() % lines) * kCacheLineSize;
    }
    case Mode::kShort:
      return size == 0 ? 0 : rng_() % size;
    case Mode::kDrop:
    case Mode::kPoint:
      return 0;
  }
  return 0;
}

void FaultInjector::NoteTrip(const char* what, uint64_t detail) {
  {
    std::lock_guard<std::mutex> g(mu_);
    std::ostringstream os;
    os << what << " detail=" << detail
       << " at_op=" << ops_.load(std::memory_order_relaxed);
    trip_desc_ = os.str();
  }
  tripped_.store(true, std::memory_order_release);
}

Status FaultInjector::OnSsdWrite(uint64_t offset, size_t size,
                                 size_t* allowed) {
  *allowed = size;
  Mode mode;
  if (CountOp(&mode)) {
    *allowed = SurvivingPrefix(mode, size);
    NoteTrip(mode == Mode::kTorn   ? "ssd_write torn"
             : mode == Mode::kShort ? "ssd_write short"
                                    : "ssd_write drop",
             *allowed);
    return Status::IoError("fault injection: ssd write killed");
  }
  if (tripped_.load(std::memory_order_acquire)) {
    *allowed = 0;
    return Status::IoError("fault injection: device down");
  }
  (void)offset;
  return Status::OK();
}

Status FaultInjector::OnSsdPersist() {
  Mode mode;
  if (CountOp(&mode)) {
    NoteTrip("ssd_persist drop", 0);
    return Status::IoError("fault injection: ssd persist killed");
  }
  if (tripped_.load(std::memory_order_acquire)) {
    return Status::IoError("fault injection: device down");
  }
  return Status::OK();
}

Status FaultInjector::OnNvmWrite(uint64_t offset, size_t size) {
  Mode mode;
  if (CountOp(&mode)) {
    // Aligned 8-byte stores are failure-atomic on persistent memory, so
    // even a "short" NVM fault cannot tear inside a word — a partially
    // durable timestamp would model a failure real hardware excludes.
    const size_t keep = SurvivingPrefix(mode, size) & ~size_t{7};
    if (nvm_shadow_ != nullptr && keep > 0) {
      std::memcpy(nvm_shadow_.get() + offset, nvm_live_ + offset, keep);
    }
    NoteTrip(mode == Mode::kTorn   ? "nvm_write torn"
             : mode == Mode::kShort ? "nvm_write short"
                                    : "nvm_write drop",
             keep);
    return Status::IoError("fault injection: nvm write killed");
  }
  if (tripped_.load(std::memory_order_acquire)) {
    return Status::IoError("fault injection: device down");
  }
  if (nvm_shadow_ != nullptr) {
    std::memcpy(nvm_shadow_.get() + offset, nvm_live_ + offset, size);
  }
  return Status::OK();
}

void FaultInjector::OnNvmDirectWrite(uint64_t offset, size_t size) {
  // Same durability semantics as OnNvmWrite, but the caller cannot
  // observe a failure — a lost range surfaces at recovery.
  (void)OnNvmWrite(offset, size);
}

Status FaultInjector::OnNvmPersist(uint64_t offset, size_t size) {
  // clwb operates on whole cache lines: expand the range to line
  // boundaries, as the hardware would.
  uint64_t begin = offset / kCacheLineSize * kCacheLineSize;
  uint64_t end =
      (offset + size + kCacheLineSize - 1) / kCacheLineSize * kCacheLineSize;
  if (nvm_shadow_ != nullptr && end > nvm_capacity_) end = nvm_capacity_;
  Mode mode;
  if (CountOp(&mode)) {
    // Persist faults act at cache-line granularity even in kShort mode:
    // a line either writes back or does not.
    size_t keep = SurvivingPrefix(mode, end - begin);
    keep = keep / kCacheLineSize * kCacheLineSize;
    if (nvm_shadow_ != nullptr && keep > 0) {
      std::memcpy(nvm_shadow_.get() + begin, nvm_live_ + begin, keep);
    }
    NoteTrip("nvm_persist torn", keep);
    return Status::IoError("fault injection: nvm persist killed");
  }
  if (tripped_.load(std::memory_order_acquire)) {
    return Status::IoError("fault injection: device down");
  }
  if (nvm_shadow_ != nullptr) {
    std::memcpy(nvm_shadow_.get() + begin, nvm_live_ + begin, end - begin);
  }
  return Status::OK();
}

void FaultInjector::HitPoint(const char* site) {
  if (tripped_.load(std::memory_order_acquire)) return;
  if (opts_.kill_point.empty() || opts_.kill_point != site) return;
  const uint64_t n = point_hits_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n != opts_.kill_point_hits) return;
  NoteTrip(site, n);
}

void FaultInjector::Point(const char* site) {
  FaultInjector* fi = Get();
  if (fi != nullptr) fi->HitPoint(site);
}

std::string FaultInjector::ToString() const {
  std::ostringstream os;
  os << "FaultInjector{seed=" << opts_.seed
     << " kill_after_ops=" << opts_.kill_after_ops;
  if (!opts_.kill_point.empty()) {
    os << " kill_point=" << opts_.kill_point << ":" << opts_.kill_point_hits;
  }
  os << " ops_seen=" << ops_.load(std::memory_order_relaxed);
  if (tripped()) {
    std::lock_guard<std::mutex> g(const_cast<std::mutex&>(mu_));
    os << " TRIPPED[" << trip_desc_ << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace spitfire
