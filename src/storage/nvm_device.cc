#include "storage/nvm_device.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cstring>

#include "storage/fault_injector.h"

namespace spitfire {

NvmDevice::NvmDevice(uint64_t capacity, DeviceProfile profile)
    : Device(std::move(profile), capacity) {
  MapAnonymous();
}

NvmDevice::NvmDevice(const std::string& path, uint64_t capacity,
                     DeviceProfile profile)
    : Device(std::move(profile), capacity) {
  MapFile(path);
}

NvmDevice::~NvmDevice() {
  if (base_ != nullptr) {
    ::munmap(base_, capacity_);
  }
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void NvmDevice::MapAnonymous() {
  void* p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  SPITFIRE_CHECK(p != MAP_FAILED);
  base_ = static_cast<std::byte*>(p);
}

void NvmDevice::MapFile(const std::string& path) {
  // Mirrors the paper's fsdax mapping: open + ftruncate + mmap(MAP_SHARED).
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  SPITFIRE_CHECK(fd_ >= 0);
  SPITFIRE_CHECK(::ftruncate(fd_, static_cast<off_t>(capacity_)) == 0);
  void* p = ::mmap(nullptr, capacity_, PROT_READ | PROT_WRITE, MAP_SHARED,
                   fd_, 0);
  SPITFIRE_CHECK(p != MAP_FAILED);
  base_ = static_cast<std::byte*>(p);
}

Status NvmDevice::Read(uint64_t offset, void* dst, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  std::memcpy(dst, base_ + offset, size);
  AccountRead(size, /*sequential=*/false);
  return Status::OK();
}

Status NvmDevice::Write(uint64_t offset, const void* src, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  std::memcpy(base_ + offset, src, size);
  if (FaultInjector* fi = FaultInjector::Get()) {
    // Device-mediated writes are durable at return; the injector mirrors
    // the range into its durable image (or loses it, on/after the trip).
    SPITFIRE_RETURN_NOT_OK(fi->OnNvmWrite(offset, size));
  }
  AccountWrite(size, /*sequential=*/false);
  return Status::OK();
}

void NvmDevice::OnDirectWrite(uint64_t offset, size_t bytes, bool sequential) {
  if (FaultInjector* fi = FaultInjector::Get()) {
    fi->OnNvmDirectWrite(offset, bytes);
  }
  Device::OnDirectWrite(offset, bytes, sequential);
}

Status NvmDevice::ReadFineGrained(uint64_t offset, void* dst, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  std::memcpy(dst, base_ + offset, size);
  const size_t gran = profile_.media_granularity;
  const size_t blocks = (size + gran - 1) / gran;
  for (size_t b = 0; b < blocks; ++b) {
    AccountRead(std::min(gran, size - b * gran), /*sequential=*/false);
  }
  return Status::OK();
}

std::byte* NvmDevice::DirectPointer(uint64_t offset) {
  SPITFIRE_DCHECK(offset < capacity_);
  return base_ + offset;
}

Status NvmDevice::Persist(uint64_t offset, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  if (FaultInjector* fi = FaultInjector::Get()) {
    SPITFIRE_RETURN_NOT_OK(fi->OnNvmPersist(offset, size));
  }
  // clwb writes the cache lines back without evicting them; sfence orders
  // the write-backs. In simulation this is a per-cache-line delay.
  const size_t lines = (size + kCacheLineSize - 1) / kCacheLineSize;
  LatencySimulator::Delay(lines * 100);  // ~clwb+sfence cost per line
  if (fd_ >= 0) {
    // Align to page boundaries as msync requires.
    const uint64_t page = 4096;
    const uint64_t begin = offset / page * page;
    const uint64_t end = (offset + size + page - 1) / page * page;
    if (::msync(base_ + begin, end - begin, MS_SYNC) != 0) {
      return Status::IoError("msync failed");
    }
  }
  return Status::OK();
}

}  // namespace spitfire
