#include "storage/memory_mode_device.h"

#include <cstring>

namespace spitfire {

namespace {
DeviceProfile MemoryModeProfile(uint64_t capacity) {
  DeviceProfile p = DeviceProfile::OptaneNvm();
  p.name = "Memory mode (DRAM L4 cache over NVM)";
  p.persistent = false;  // the L4 cache hides persistence from software
  return p;
}
}  // namespace

MemoryModeDevice::MemoryModeDevice(uint64_t nvm_capacity,
                                   uint64_t dram_cache_capacity)
    : Device(MemoryModeProfile(nvm_capacity), nvm_capacity),
      nvm_(std::make_unique<NvmDevice>(nvm_capacity)),
      dram_profile_(DeviceProfile::Dram()),
      num_sets_(dram_cache_capacity / kBlockSize),
      tags_(num_sets_ ? num_sets_ : 1) {
  SPITFIRE_CHECK(num_sets_ > 0);
  for (auto& t : tags_) t.store(kEmptyTag, std::memory_order_relaxed);
}

void MemoryModeDevice::Access(uint64_t block, bool is_write) {
  // Cache-state update only; latency is charged by OnCachedAccess for the
  // whole access (base latency once + bandwidth), since sequential blocks
  // pipeline on real hardware.
  const uint64_t set = block % num_sets_;
  const uint64_t cur = tags_[set].load(std::memory_order_relaxed);
  const uint64_t cur_block = cur == kEmptyTag ? kEmptyTag : (cur >> 1);
  if (cur_block == block) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (is_write && (cur & 1ULL) == 0) {
      tags_[set].store((block << 1) | 1ULL, std::memory_order_relaxed);
    }
    return;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  if (cur != kEmptyTag && (cur & 1ULL)) {
    // Write back the evicted dirty block to NVM.
    nvm_->stats().media_bytes_written.fetch_add(kBlockSize,
                                                std::memory_order_relaxed);
    pending_writeback_bytes_.fetch_add(kBlockSize, std::memory_order_relaxed);
  }
  tags_[set].store((block << 1) | (is_write ? 1ULL : 0ULL),
                   std::memory_order_relaxed);
}

void MemoryModeDevice::OnCachedAccess(uint64_t offset, size_t bytes,
                                      bool is_write) {
  const uint64_t h0 = hits_.load(std::memory_order_relaxed);
  const uint64_t m0 = misses_.load(std::memory_order_relaxed);
  const uint64_t first = offset / kBlockSize;
  const uint64_t last = (offset + (bytes ? bytes : 1) - 1) / kBlockSize;
  for (uint64_t b = first; b <= last; ++b) Access(b, is_write);
  const uint64_t hit_blocks = hits_.load(std::memory_order_relaxed) - h0;
  const uint64_t miss_blocks = misses_.load(std::memory_order_relaxed) - m0;
  const uint64_t wb_bytes = pending_writeback_bytes_.exchange(0);

  // Hits run at DRAM speed; misses at NVM speed; dirty evictions add an
  // NVM write. One base latency per class, bandwidth for the rest.
  uint64_t nanos = 0;
  if (hit_blocks > 0) {
    nanos += dram_profile_.ReadLatencyNanos(hit_blocks * kBlockSize, false);
  }
  if (miss_blocks > 0) {
    nanos += nvm_->profile().ReadLatencyNanos(miss_blocks * kBlockSize, false);
  }
  if (wb_bytes > 0) {
    nanos += nvm_->profile().WriteLatencyNanos(wb_bytes, false);
  }
  LatencySimulator::Delay(nanos);

  if (is_write) {
    stats_.num_writes.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_written.fetch_add(bytes, std::memory_order_relaxed);
  } else {
    stats_.num_reads.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_read.fetch_add(bytes, std::memory_order_relaxed);
  }
}

Status MemoryModeDevice::Read(uint64_t offset, void* dst, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  std::memcpy(dst, nvm_->DirectPointer(offset), size);
  OnCachedAccess(offset, size, /*is_write=*/false);
  return Status::OK();
}

Status MemoryModeDevice::Write(uint64_t offset, const void* src, size_t size) {
  SPITFIRE_RETURN_NOT_OK(CheckRange(offset, size));
  std::memcpy(nvm_->DirectPointer(offset), src, size);
  OnCachedAccess(offset, size, /*is_write=*/true);
  return Status::OK();
}

std::byte* MemoryModeDevice::DirectPointer(uint64_t offset) {
  return nvm_->DirectPointer(offset);
}

}  // namespace spitfire
