#ifndef SPITFIRE_STORAGE_FAULT_INJECTOR_H_
#define SPITFIRE_STORAGE_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <random>
#include <string>

#include "common/status.h"

namespace spitfire {

class NvmDevice;

// Process-wide crash/fault injector for the simulated storage devices.
//
// Fault model (see DESIGN.md "Fault model and crash consistency"):
//  - Durability ops are counted: every SSD data transfer-out, SSD persist,
//    NVM device-mediated write, NVM direct-write notification, and NVM
//    persist. The injector "trips" on the Nth counted op (seeded), or when
//    a named kill point is hit, with a failure mode drawn from the seed:
//      torn  — only the first K cache lines of the op's range reach the
//              durable medium,
//      short — only a byte prefix of the range reaches the medium,
//      drop  — nothing reaches the medium (a dropped flush).
//  - After the trip, every durability op fails with IoError and reaches
//    the medium not at all; reads are unaffected, so running threads can
//    unwind and the harness can tear the engine down.
//  - SSD writes are durable at write-completion (the simulated device has
//    no volatile write cache), so faults act on the write itself and an
//    SSD Persist can only trip/fail, never lose earlier completed writes.
//  - NVM durability is modeled with a shadow image: device-mediated
//    Write()/OnDirectWrite() ranges are copied live -> shadow at return
//    (they model ntstore + sfence), raw DirectPointer stores reach the
//    shadow only when Persist() covers them (clwb + sfence). After the
//    engine is torn down, RestoreNvm() copies shadow -> live, which is
//    exactly the state an instant power cut would have left.
//
// Disabled cost: one relaxed atomic pointer load and a branch per device
// op (Get() returns nullptr when no injector is installed).
//
// All hooks are thread-safe. Install/Uninstall must not race device ops
// (install before load or between phases, uninstall after teardown).
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    // Trip on the Nth counted durability op (0 = never trip by count).
    uint64_t kill_after_ops = 0;
    // Trip when the named kill point is hit for the Nth time ("" = none).
    std::string kill_point;
    uint64_t kill_point_hits = 1;
    // Failure modes eligible for the tripping op.
    bool enable_torn = true;
    bool enable_short = true;
    bool enable_drop = true;
  };

  enum class Mode { kTorn, kShort, kDrop, kPoint };

  // Installs a process-wide injector. The previous one (if any) is
  // destroyed. The NVM shadow starts detached; call AttachNvm().
  static void Install(const Options& opts);
  static void Uninstall();
  // nullptr when no injector is installed (the fast path).
  static FaultInjector* Get() {
    return instance_.load(std::memory_order_acquire);
  }
  // Convenience: true iff an injector is installed and has tripped.
  static bool IsTripped() {
    FaultInjector* fi = Get();
    return fi != nullptr && fi->tripped();
  }

  // Snapshots the device's current content as the durable image. Must be
  // called before the ops whose durability is under test.
  void AttachNvm(NvmDevice* nvm);
  // Copies the durable image back over the live mapping — the post-crash
  // NVM state. Call after engine teardown, before recovery.
  void RestoreNvm();

  // --- device hooks ---

  // SSD transfer-out: *allowed is set to the byte count that reaches the
  // medium (= size normally). Returns IoError on and after the trip.
  Status OnSsdWrite(uint64_t offset, size_t size, size_t* allowed);
  // SSD flush: completed writes are already durable, so this can only
  // trip/fail (a dropped fdatasync), never truncate anything.
  Status OnSsdPersist();
  // NVM device-mediated write (durable at return). *allowed as above;
  // the caller must copy only the allowed prefix to the durable image —
  // this class does that itself given the attached device.
  Status OnNvmWrite(uint64_t offset, size_t size);
  // NVM direct-store notification (void-returning caller; losses surface
  // at recovery, which is the point).
  void OnNvmDirectWrite(uint64_t offset, size_t size);
  // NVM persist: copies the covered live range to the durable image.
  Status OnNvmPersist(uint64_t offset, size_t size);

  // Named kill point in engine code (e.g. "recovery.before_checkpoint").
  // Trips the injector (Mode::kPoint — everything after fails) when it
  // matches the configured kill point.
  static void Point(const char* site);

  bool tripped() const { return tripped_.load(std::memory_order_acquire); }
  uint64_t ops_seen() const { return ops_.load(std::memory_order_relaxed); }
  // One-line repro description: seed, kill spec, and what tripped where.
  std::string ToString() const;

 private:
  explicit FaultInjector(const Options& opts);

  // Returns true if this call is the tripping op and fills *mode.
  bool CountOp(Mode* mode);
  // Applies the tripping mode to an op of `size` bytes: byte prefix that
  // survives. Deterministic given the seed.
  size_t SurvivingPrefix(Mode mode, size_t size);
  void NoteTrip(const char* what, uint64_t detail);
  void HitPoint(const char* site);

  Options opts_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<uint64_t> point_hits_{0};
  std::atomic<bool> tripped_{false};
  std::mutex mu_;  // guards rng_ and trip_desc_
  std::mt19937_64 rng_;
  std::string trip_desc_;

  NvmDevice* nvm_ = nullptr;
  std::byte* nvm_live_ = nullptr;
  uint64_t nvm_capacity_ = 0;
  std::unique_ptr<std::byte[]> nvm_shadow_;

  static std::atomic<FaultInjector*> instance_;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_FAULT_INJECTOR_H_
