#ifndef SPITFIRE_STORAGE_SSD_DEVICE_H_
#define SPITFIRE_STORAGE_SSD_DEVICE_H_

#include <memory>
#include <string>

#include "storage/device.h"

namespace spitfire {

// Simulated block SSD. Two backings:
//  - file-backed (pread/pwrite on a real file; default for examples and
//    recovery tests), or
//  - memory-backed (fast, for unit tests and latency-model benchmarks).
// In both cases the Optane-SSD latency/bandwidth model is applied per
// request, and requests are accounted at 16 KB media granularity.
// Not byte-addressable: DirectPointer() returns nullptr, so the buffer
// manager must always copy pages up the hierarchy — the defining contrast
// with NVM in the paper.
class SsdDevice : public Device {
 public:
  // Memory-backed.
  explicit SsdDevice(uint64_t capacity,
                     DeviceProfile profile = DeviceProfile::OptaneSsd());
  // File-backed.
  SsdDevice(const std::string& path, uint64_t capacity,
            DeviceProfile profile = DeviceProfile::OptaneSsd());
  ~SsdDevice() override;

  Status Read(uint64_t offset, void* dst, size_t size) override;
  Status Write(uint64_t offset, const void* src, size_t size) override;
  Status Persist(uint64_t offset, size_t size) override;

  bool file_backed() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::unique_ptr<std::byte[]> mem_;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_SSD_DEVICE_H_
