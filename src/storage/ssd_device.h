#ifndef SPITFIRE_STORAGE_SSD_DEVICE_H_
#define SPITFIRE_STORAGE_SSD_DEVICE_H_

#include <memory>
#include <shared_mutex>
#include <string>

#include "storage/device.h"

namespace spitfire {

// Simulated block SSD. Two backings:
//  - file-backed (pread/pwrite on a real file; default for examples and
//    recovery tests), or
//  - memory-backed (fast, for unit tests and latency-model benchmarks).
// In both cases the Optane-SSD latency/bandwidth model is applied per
// request, and requests are accounted at 16 KB media granularity.
// Not byte-addressable: DirectPointer() returns nullptr, so the buffer
// manager must always copy pages up the hierarchy — the defining contrast
// with NVM in the paper.
class SsdDevice : public Device {
 public:
  // Memory-backed.
  explicit SsdDevice(uint64_t capacity,
                     DeviceProfile profile = DeviceProfile::OptaneSsd());
  // File-backed.
  SsdDevice(const std::string& path, uint64_t capacity,
            DeviceProfile profile = DeviceProfile::OptaneSsd());
  ~SsdDevice() override;

  Status Read(uint64_t offset, void* dst, size_t size) override;
  Status Write(uint64_t offset, const void* src, size_t size) override;
  Status Persist(uint64_t offset, size_t size) override;

  // Async submission: the copy happens eagerly (there is no DMA engine to
  // defer it to) but no latency is charged inline — the multi-queue model
  // hands back the completion deadline instead. The I/O scheduler must not
  // surface the data before that deadline.
  bool SupportsAsyncIo() const override { return true; }
  Status BeginRead(uint64_t offset, void* dst, size_t size,
                   uint64_t* complete_at_ns) override;
  Status BeginWrite(uint64_t offset, const void* src, size_t size,
                    uint64_t* complete_at_ns) override;

  bool file_backed() const { return fd_ >= 0; }

 private:
  // Shared data-movement halves of the sync and async paths.
  Status TransferIn(uint64_t offset, void* dst, size_t size);
  Status TransferOut(uint64_t offset, const void* src, size_t size);
  // The I/O scheduler may issue a read concurrent with a write of an
  // overlapping range (the reader re-validates its write sequence and
  // discards superseded bytes — a torn transfer is acceptable there, as
  // it would be on real hardware). The kernel makes the file-backed
  // pread/pwrite pair safe; the memory-backed memcpy pair needs its own
  // synchronization. Page-striped rwlocks, held only around the copy
  // (never across the latency simulation), keep reads concurrent with
  // reads while excluding overlapping writes. Multi-page requests lock
  // their stripes in ascending order, so crossing requests cannot
  // deadlock.
  static constexpr size_t kCopyLockStripes = 64;
  void LockRange(uint64_t offset, size_t size, bool exclusive);
  void UnlockRange(uint64_t offset, size_t size, bool exclusive);

  int fd_ = -1;
  std::unique_ptr<std::byte[]> mem_;
  std::shared_mutex copy_locks_[kCopyLockStripes];
  DeviceQueueSim queue_sim_;
};

}  // namespace spitfire

#endif  // SPITFIRE_STORAGE_SSD_DEVICE_H_
