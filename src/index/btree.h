#ifndef SPITFIRE_INDEX_BTREE_H_
#define SPITFIRE_INDEX_BTREE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/status.h"

namespace spitfire {

// Concurrent B+Tree with optimistic lock coupling (Leis et al. [24]),
// built on top of the buffer manager (Section 5.2, "Concurrent Index").
// Keys and values are 64-bit integers (values are typically record ids).
//
// Locking protocol:
//  - Lookups traverse optimistically: they sample each node's version
//    latch (stored in the page's shared descriptor, so it survives page
//    migrations between DRAM and NVM), read, then validate; any
//    interference restarts the traversal. No latches are held.
//  - Inserts/deletes traverse optimistically and take a write latch only
//    on the leaf. If a structural modification (split) is needed, the
//    operation restarts in pessimistic mode, write-latch-coupling from the
//    root.
//  - Deletes remove keys from leaves without rebalancing (standard
//    practice in many production trees; space is reclaimed by later
//    inserts).
//
// Node pages are pinned (via PageGuard) for the duration of each node
// visit, which keeps frames stable; versions detect logical interference.
//
// Note on ThreadSanitizer: optimistic readers race with writers on node
// bytes BY DESIGN — every optimistically-read value is discarded unless
// the subsequent version validation succeeds. TSAN flags these accesses;
// tsan.supp at the repository root suppresses them.
class BTree {
 public:
  static constexpr uint32_t kMetaPageType = 0xB7EE0001;
  static constexpr uint32_t kNodePageType = 0xB7EE0002;

  // Creates a new tree: allocates a meta page and an empty root leaf.
  static Result<BTree*> Create(BufferManager* bm);
  // Opens an existing tree rooted at `meta_pid`.
  static Result<BTree*> Open(BufferManager* bm, page_id_t meta_pid);

  page_id_t meta_pid() const { return meta_pid_; }

  // All public operations take an optional FetchContext. With one, a
  // buffer miss anywhere in the traversal parks on the context and the
  // operation returns WouldBlock BEFORE any tree mutation — the caller
  // re-runs the whole call once the context fires, and the restart
  // re-traverses from the root (OLC restarts are cheap; the parked page is
  // by then resident). Without a context every fetch blocks (legacy path).
  // Exceptions that always block: meta-page accesses (root pointer — hot,
  // pinned-through in steady state) and the pessimistic split path (it
  // holds write latches across fetches, so parking would deadlock).

  // Inserts (key, value). Returns InvalidArgument if the key exists.
  Status Insert(uint64_t key, uint64_t value, FetchContext* ctx = nullptr);
  // Inserts or overwrites.
  Status Upsert(uint64_t key, uint64_t value, FetchContext* ctx = nullptr);
  // Point lookup.
  Status Lookup(uint64_t key, uint64_t* value,
                FetchContext* ctx = nullptr) const;
  // Removes the key. Returns NotFound if absent.
  Status Remove(uint64_t key, FetchContext* ctx = nullptr);
  // Visits entries in [lo, hi] in key order until fn returns false.
  // WouldBlock may surface after fn was invoked for earlier entries; a
  // resumed caller re-observes them (callers that need exactly-once per
  // entry must collect idempotently, as Table::Scan does).
  Status Scan(uint64_t lo, uint64_t hi,
              const std::function<bool(uint64_t, uint64_t)>& fn,
              FetchContext* ctx = nullptr) const;

  // Number of entries (full scan; for tests).
  Result<uint64_t> Count() const;
  uint32_t height() const;

 private:
  struct NodeRef;

  explicit BTree(BufferManager* bm, page_id_t meta_pid)
      : bm_(bm), meta_pid_(meta_pid) {}

  Status InsertImpl(uint64_t key, uint64_t value, bool upsert,
                    FetchContext* ctx);
  Status OptimisticInsert(uint64_t key, uint64_t value, bool upsert,
                          bool* need_split, FetchContext* ctx);
  Status PessimisticInsert(uint64_t key, uint64_t value, bool upsert);

  page_id_t LoadRoot() const;
  void StoreRoot(page_id_t root, uint32_t height);

  BufferManager* bm_;
  page_id_t meta_pid_;
};

}  // namespace spitfire

#endif  // SPITFIRE_INDEX_BTREE_H_
