#include "index/btree.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "common/timer.h"

namespace spitfire {

namespace {

// Node layout inside the 16 KB page payload.
struct NodeHeader {
  uint16_t is_leaf;
  uint16_t level;  // 0 = leaf
  uint32_t count;
  page_id_t next_leaf;  // leaves only; kInvalidPageId terminates the chain
};
static_assert(sizeof(NodeHeader) == 16);

constexpr size_t kEntryArea = kPagePayloadSize - sizeof(NodeHeader);
// Leaf: key/value pairs. Inner: n keys + (n+1) children.
constexpr size_t kLeafCapacity = kEntryArea / (2 * sizeof(uint64_t));
constexpr size_t kInnerCapacity = (kEntryArea - sizeof(page_id_t)) /
                                  (sizeof(uint64_t) + sizeof(page_id_t));

struct MetaPayload {
  page_id_t root;
  uint32_t height;
  uint32_t magic;
};
constexpr uint32_t kMetaMagic = 0x42545245;  // "BTRE"

// The meta page is hot, but under an async miss storm FetchPage can return
// Busy transiently (submission starved by races, or a retry budget hit).
// Meta accessors retry with exponential backoff instead of treating Busy
// as fatal; hard errors (corruption, I/O) still crash.
constexpr int kMetaFetchRetries = 64;

void MetaFetchBackoff(const Status& st, int attempt) {
  SPITFIRE_CHECK(st.IsBusy());
  SpinWaitNanos(std::min<uint64_t>(uint64_t{1'000} << std::min(attempt, 6),
                                   uint64_t{64'000}));
}

class NodeView {
 public:
  explicit NodeView(std::byte* page) : p_(page + kPageHeaderSize) {}

  NodeHeader* hdr() { return reinterpret_cast<NodeHeader*>(p_); }
  const NodeHeader* hdr() const {
    return reinterpret_cast<const NodeHeader*>(p_);
  }

  uint64_t* keys() {
    return reinterpret_cast<uint64_t*>(p_ + sizeof(NodeHeader));
  }
  const uint64_t* keys() const {
    return reinterpret_cast<const uint64_t*>(p_ + sizeof(NodeHeader));
  }

  // Leaf values, after the key array.
  uint64_t* values() { return keys() + kLeafCapacity; }
  const uint64_t* values() const { return keys() + kLeafCapacity; }

  // Inner children, after the key array.
  page_id_t* children() {
    return reinterpret_cast<page_id_t*>(keys() + kInnerCapacity);
  }
  const page_id_t* children() const {
    return reinterpret_cast<const page_id_t*>(keys() + kInnerCapacity);
  }

  bool IsLeaf() const { return hdr()->is_leaf != 0; }
  // Count clamped to capacity: optimistic readers may observe torn state
  // and must never index out of bounds (validation rejects the result).
  uint32_t SafeCount() const {
    const uint32_t c = hdr()->count;
    const uint32_t cap =
        IsLeaf() ? static_cast<uint32_t>(kLeafCapacity)
                 : static_cast<uint32_t>(kInnerCapacity);
    return c > cap ? cap : c;
  }

  void InitLeaf() {
    NodeHeader h{};
    h.is_leaf = 1;
    h.level = 0;
    h.count = 0;
    h.next_leaf = kInvalidPageId;
    std::memcpy(p_, &h, sizeof(h));
  }
  void InitInner(uint16_t level) {
    NodeHeader h{};
    h.is_leaf = 0;
    h.level = level;
    h.count = 0;
    h.next_leaf = kInvalidPageId;
    std::memcpy(p_, &h, sizeof(h));
  }

  // Routing: first child whose key range can contain `key`. Children obey
  // keys[i-1] <= k < keys[i].
  uint32_t ChildIndex(uint64_t key) const {
    const uint32_t n = SafeCount();
    const uint64_t* k = keys();
    return static_cast<uint32_t>(std::upper_bound(k, k + n, key) - k);
  }

  // Position of `key` in a leaf, or position where it would be inserted.
  uint32_t LeafLowerBound(uint64_t key) const {
    const uint32_t n = SafeCount();
    const uint64_t* k = keys();
    return static_cast<uint32_t>(std::lower_bound(k, k + n, key) - k);
  }

 private:
  std::byte* p_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<BTree*> BTree::Create(BufferManager* bm) {
  auto meta_r = bm->NewPage(kMetaPageType);
  if (!meta_r.ok()) return meta_r.status();
  PageGuard meta = meta_r.MoveValue();

  auto root_r = bm->NewPage(kNodePageType);
  if (!root_r.ok()) return root_r.status();
  PageGuard root = root_r.MoveValue();
  std::byte* rp = root.RawData(/*for_write=*/true);
  if (rp == nullptr) return Status::OutOfMemory("root frame");
  NodeView(rp).InitLeaf();

  MetaPayload mp{root.pid(), 1, kMetaMagic};
  SPITFIRE_RETURN_NOT_OK(meta.WriteAt(kPageHeaderSize, sizeof(mp), &mp));
  return new BTree(bm, meta.pid());
}

Result<BTree*> BTree::Open(BufferManager* bm, page_id_t meta_pid) {
  auto meta_r = bm->FetchPage(meta_pid, AccessIntent::kRead);
  if (!meta_r.ok()) return meta_r.status();
  MetaPayload mp{};
  SPITFIRE_RETURN_NOT_OK(
      meta_r.value().ReadAt(kPageHeaderSize, sizeof(mp), &mp));
  if (mp.magic != kMetaMagic) return Status::Corruption("not a btree meta");
  return new BTree(bm, meta_pid);
}

page_id_t BTree::LoadRoot() const {
  for (int attempt = 0; attempt < kMetaFetchRetries; ++attempt) {
    auto meta_r = bm_->FetchPage(meta_pid_, AccessIntent::kRead);
    if (meta_r.ok()) {
      MetaPayload mp{};
      SPITFIRE_CHECK(
          meta_r.value().ReadAt(kPageHeaderSize, sizeof(mp), &mp).ok());
      return mp.root;
    }
    MetaFetchBackoff(meta_r.status(), attempt);
  }
  // Callers' restart loops treat an invalid root as a failed fetch and
  // retry, so exhaustion degrades to Busy instead of crashing.
  return kInvalidPageId;
}

void BTree::StoreRoot(page_id_t root, uint32_t height) {
  for (int attempt = 0;; ++attempt) {
    auto meta_r = bm_->FetchPage(meta_pid_, AccessIntent::kWrite);
    if (meta_r.ok()) {
      MetaPayload mp{root, height, kMetaMagic};
      SPITFIRE_CHECK(
          meta_r.value().WriteAt(kPageHeaderSize, sizeof(mp), &mp).ok());
      return;
    }
    // A root update cannot be dropped; keep retrying Busy forever (the
    // meta page cannot stay in-flight indefinitely), crash on hard errors.
    MetaFetchBackoff(meta_r.status(), attempt);
  }
}

uint32_t BTree::height() const {
  for (int attempt = 0; attempt < kMetaFetchRetries; ++attempt) {
    auto meta_r = bm_->FetchPage(meta_pid_, AccessIntent::kRead);
    if (meta_r.ok()) {
      MetaPayload mp{};
      SPITFIRE_CHECK(
          meta_r.value().ReadAt(kPageHeaderSize, sizeof(mp), &mp).ok());
      return mp.height;
    }
    MetaFetchBackoff(meta_r.status(), attempt);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Lookup (optimistic)
// ---------------------------------------------------------------------------

Status BTree::Lookup(uint64_t key, uint64_t* value,
                     FetchContext* ctx) const {
  for (int restart = 0; restart < 1000000; ++restart) {
    if ((restart & 63) == 63) std::this_thread::yield();
    page_id_t pid = LoadRoot();
    auto g_r = FetchPageVia(bm_, ctx, pid, AccessIntent::kRead);
    if (!g_r.ok()) {
      // A parked miss must escape the restart loop: the caller unwinds to
      // its scheduler and re-enters Lookup once the fetch fires.
      if (g_r.status().IsWouldBlock()) return g_r.status();
      continue;
    }
    PageGuard guard = g_r.MoveValue();
    uint64_t version = guard.descriptor()->version_latch.ReadLockOrRestart();
    if (version == OptimisticLatch::kRetry) continue;

    bool failed = false;
    for (;;) {
      std::byte* raw = guard.RawData();
      if (raw == nullptr) {
        failed = true;
        break;
      }
      NodeView node(raw);
      if (node.IsLeaf()) {
        const uint32_t pos = node.LeafLowerBound(key);
        const bool found =
            pos < node.SafeCount() && node.keys()[pos] == key;
        uint64_t v = found ? node.values()[pos] : 0;
        if (!guard.descriptor()->version_latch.Validate(version)) {
          failed = true;
          break;
        }
        if (!found) return Status::NotFound("key");
        *value = v;
        return Status::OK();
      }
      const uint32_t idx = node.ChildIndex(key);
      const page_id_t child = node.children()[idx];
      if (!guard.descriptor()->version_latch.Validate(version)) {
        failed = true;
        break;
      }
      auto c_r = FetchPageVia(bm_, ctx, child, AccessIntent::kRead);
      if (!c_r.ok()) {
        if (c_r.status().IsWouldBlock()) return c_r.status();
        failed = true;
        break;
      }
      PageGuard cguard = c_r.MoveValue();
      const uint64_t cversion =
          cguard.descriptor()->version_latch.ReadLockOrRestart();
      if (cversion == OptimisticLatch::kRetry ||
          !guard.descriptor()->version_latch.Validate(version)) {
        failed = true;
        break;
      }
      guard = std::move(cguard);
      version = cversion;
    }
    if (failed) continue;
  }
  return Status::Busy("btree lookup retry budget exhausted");
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status BTree::Insert(uint64_t key, uint64_t value, FetchContext* ctx) {
  return InsertImpl(key, value, /*upsert=*/false, ctx);
}

Status BTree::Upsert(uint64_t key, uint64_t value, FetchContext* ctx) {
  return InsertImpl(key, value, /*upsert=*/true, ctx);
}

Status BTree::InsertImpl(uint64_t key, uint64_t value, bool upsert,
                         FetchContext* ctx) {
  for (int restart = 0; restart < 1000000; ++restart) {
    if ((restart & 63) == 63) std::this_thread::yield();
    bool need_split = false;
    Status st = OptimisticInsert(key, value, upsert, &need_split, ctx);
    if (st.IsWouldBlock()) return st;
    if (st.ok() || !st.IsBusy()) {
      if (!need_split) return st;
    }
    if (need_split) {
      st = PessimisticInsert(key, value, upsert);
      if (st.ok() || !st.IsBusy()) return st;
    }
  }
  return Status::Busy("btree insert retry budget exhausted");
}

Status BTree::OptimisticInsert(uint64_t key, uint64_t value, bool upsert,
                               bool* need_split, FetchContext* ctx) {
  *need_split = false;
  page_id_t pid = LoadRoot();
  auto g_r = FetchPageVia(bm_, ctx, pid, AccessIntent::kWrite);
  if (!g_r.ok()) {
    if (g_r.status().IsWouldBlock()) return g_r.status();
    return Status::Busy("fetch");
  }
  PageGuard guard = g_r.MoveValue();
  uint64_t version = guard.descriptor()->version_latch.ReadLockOrRestart();
  if (version == OptimisticLatch::kRetry) return Status::Busy("locked");

  for (;;) {
    std::byte* raw = guard.RawData();
    if (raw == nullptr) return Status::Busy("frame");
    NodeView node(raw);
    if (node.IsLeaf()) {
      // Take the leaf latch for real.
      if (!guard.descriptor()->version_latch.UpgradeToWriteLock(version)) {
        return Status::Busy("upgrade failed");
      }
      NodeView leaf(guard.RawData(/*for_write=*/true));
      const uint32_t n = leaf.hdr()->count;
      const uint32_t pos = leaf.LeafLowerBound(key);
      if (pos < n && leaf.keys()[pos] == key) {
        if (!upsert) {
          guard.descriptor()->version_latch.WriteUnlockNoBump();
          return Status::InvalidArgument("duplicate key");
        }
        leaf.values()[pos] = value;
        guard.descriptor()->version_latch.WriteUnlock();
        return Status::OK();
      }
      if (n >= kLeafCapacity) {
        guard.descriptor()->version_latch.WriteUnlockNoBump();
        *need_split = true;
        return Status::Busy("leaf full");
      }
      std::memmove(leaf.keys() + pos + 1, leaf.keys() + pos,
                   (n - pos) * sizeof(uint64_t));
      std::memmove(leaf.values() + pos + 1, leaf.values() + pos,
                   (n - pos) * sizeof(uint64_t));
      leaf.keys()[pos] = key;
      leaf.values()[pos] = value;
      leaf.hdr()->count = n + 1;
      guard.descriptor()->version_latch.WriteUnlock();
      return Status::OK();
    }
    const uint32_t idx = node.ChildIndex(key);
    const page_id_t child = node.children()[idx];
    if (!guard.descriptor()->version_latch.Validate(version)) {
      return Status::Busy("parent changed");
    }
    auto c_r = FetchPageVia(bm_, ctx, child, AccessIntent::kWrite);
    if (!c_r.ok()) {
      if (c_r.status().IsWouldBlock()) return c_r.status();
      return Status::Busy("fetch child");
    }
    PageGuard cguard = c_r.MoveValue();
    const uint64_t cversion =
        cguard.descriptor()->version_latch.ReadLockOrRestart();
    if (cversion == OptimisticLatch::kRetry ||
        !guard.descriptor()->version_latch.Validate(version)) {
      return Status::Busy("child changed");
    }
    guard = std::move(cguard);
    version = cversion;
  }
}

// Write-latch coupling from the root; ancestors stay latched only while
// the child might split into them.
Status BTree::PessimisticInsert(uint64_t key, uint64_t value, bool upsert) {
  struct Locked {
    PageGuard guard;
    SharedPageDescriptor* desc;
  };
  std::vector<Locked> path;
  auto UnlockAll = [&path]() {
    // Release in reverse acquisition order without bumping versions of
    // nodes we did not modify — callers bump selectively.
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      it->desc->version_latch.WriteUnlockNoBump();
    }
    path.clear();
  };

  // Latch the meta page first so a root split can be installed.
  auto meta_r = bm_->FetchPage(meta_pid_, AccessIntent::kWrite);
  if (!meta_r.ok()) return Status::Busy("meta fetch");
  PageGuard meta_guard = meta_r.MoveValue();
  SharedPageDescriptor* meta_desc = meta_guard.descriptor();
  meta_desc->version_latch.WriteLock();
  bool meta_locked = true;
  auto UnlockMeta = [&](bool bump) {
    if (meta_locked) {
      if (bump) {
        meta_desc->version_latch.WriteUnlock();
      } else {
        meta_desc->version_latch.WriteUnlockNoBump();
      }
      meta_locked = false;
    }
  };

  MetaPayload mp{};
  {
    std::byte* raw = meta_guard.RawData();
    if (raw == nullptr) {
      UnlockMeta(false);
      return Status::Busy("meta frame");
    }
    std::memcpy(&mp, raw + kPageHeaderSize, sizeof(mp));
  }

  page_id_t pid = mp.root;
  for (;;) {
    auto g_r = bm_->FetchPage(pid, AccessIntent::kWrite);
    if (!g_r.ok()) {
      UnlockAll();
      UnlockMeta(false);
      return Status::Busy("fetch");
    }
    PageGuard guard = g_r.MoveValue();
    guard.descriptor()->version_latch.WriteLock();
    std::byte* raw = guard.RawData(/*for_write=*/true);
    if (raw == nullptr) {
      guard.descriptor()->version_latch.WriteUnlockNoBump();
      UnlockAll();
      UnlockMeta(false);
      return Status::Busy("frame");
    }
    NodeView node(raw);
    const bool full = node.IsLeaf() ? node.hdr()->count >= kLeafCapacity
                                    : node.hdr()->count >= kInnerCapacity;
    if (!full) {
      // This node absorbs any split from below: ancestors can go.
      for (auto it = path.rbegin(); it != path.rend(); ++it) {
        it->desc->version_latch.WriteUnlockNoBump();
      }
      path.clear();
      UnlockMeta(false);
    }
    path.push_back(Locked{std::move(guard), path.empty()
                                                ? nullptr
                                                : nullptr});  // fixed below
    path.back().desc = path.back().guard.descriptor();
    if (node.IsLeaf()) break;
    pid = node.children()[node.ChildIndex(key)];
  }

  // Insert into the leaf, splitting up the latched path as needed.
  Locked& leaf_l = path.back();
  NodeView leaf(leaf_l.guard.RawData(/*for_write=*/true));
  {
    const uint32_t n = leaf.hdr()->count;
    const uint32_t pos = leaf.LeafLowerBound(key);
    if (pos < n && leaf.keys()[pos] == key) {
      Status st = Status::OK();
      if (upsert) {
        leaf.values()[pos] = value;
      } else {
        st = Status::InvalidArgument("duplicate key");
      }
      leaf_l.desc->version_latch.WriteUnlock();
      path.pop_back();
      UnlockAll();
      UnlockMeta(false);
      return st;
    }
  }

  // Split loop: produce (separator, new right page) bubbling upward.
  uint64_t sep = 0;
  page_id_t right_pid = kInvalidPageId;
  bool have_split = false;

  {
    NodeView cur = leaf;
    if (cur.hdr()->count >= kLeafCapacity) {
      auto right_r = bm_->NewPage(kNodePageType);
      if (!right_r.ok()) {
        UnlockAll();
        UnlockMeta(false);
        return right_r.status();
      }
      PageGuard right_guard = right_r.MoveValue();
      NodeView right(right_guard.RawData(/*for_write=*/true));
      right.InitLeaf();
      const uint32_t n = cur.hdr()->count;
      const uint32_t mid = n / 2;
      const uint32_t move = n - mid;
      std::memcpy(right.keys(), cur.keys() + mid, move * sizeof(uint64_t));
      std::memcpy(right.values(), cur.values() + mid,
                  move * sizeof(uint64_t));
      right.hdr()->count = move;
      right.hdr()->next_leaf = cur.hdr()->next_leaf;
      cur.hdr()->count = mid;
      cur.hdr()->next_leaf = right_guard.pid();
      sep = right.keys()[0];
      right_pid = right_guard.pid();
      have_split = true;
      // Insert the key into the correct half.
      NodeView target = key >= sep ? right : cur;
      const uint32_t tn = target.hdr()->count;
      const uint32_t pos = target.LeafLowerBound(key);
      std::memmove(target.keys() + pos + 1, target.keys() + pos,
                   (tn - pos) * sizeof(uint64_t));
      std::memmove(target.values() + pos + 1, target.values() + pos,
                   (tn - pos) * sizeof(uint64_t));
      target.keys()[pos] = key;
      target.values()[pos] = value;
      target.hdr()->count = tn + 1;
    } else {
      const uint32_t n = cur.hdr()->count;
      const uint32_t pos = cur.LeafLowerBound(key);
      std::memmove(cur.keys() + pos + 1, cur.keys() + pos,
                   (n - pos) * sizeof(uint64_t));
      std::memmove(cur.values() + pos + 1, cur.values() + pos,
                   (n - pos) * sizeof(uint64_t));
      cur.keys()[pos] = key;
      cur.values()[pos] = value;
      cur.hdr()->count = n + 1;
    }
  }
  leaf_l.desc->version_latch.WriteUnlock();
  path.pop_back();

  // Propagate the separator into latched ancestors.
  while (have_split && !path.empty()) {
    Locked& parent_l = path.back();
    NodeView parent(parent_l.guard.RawData(/*for_write=*/true));
    const uint32_t n = parent.hdr()->count;
    if (n < kInnerCapacity) {
      const uint32_t idx = parent.ChildIndex(sep);
      std::memmove(parent.keys() + idx + 1, parent.keys() + idx,
                   (n - idx) * sizeof(uint64_t));
      std::memmove(parent.children() + idx + 2, parent.children() + idx + 1,
                   (n - idx) * sizeof(page_id_t));
      parent.keys()[idx] = sep;
      parent.children()[idx + 1] = right_pid;
      parent.hdr()->count = n + 1;
      have_split = false;
      parent_l.desc->version_latch.WriteUnlock();
      path.pop_back();
      break;
    }
    // Split the inner node.
    auto right_r = bm_->NewPage(kNodePageType);
    if (!right_r.ok()) {
      UnlockAll();
      UnlockMeta(false);
      return right_r.status();
    }
    PageGuard right_guard = right_r.MoveValue();
    NodeView right(right_guard.RawData(/*for_write=*/true));
    right.InitInner(parent.hdr()->level);
    const uint32_t mid = n / 2;
    const uint64_t up_key = parent.keys()[mid];
    const uint32_t move = n - mid - 1;
    std::memcpy(right.keys(), parent.keys() + mid + 1,
                move * sizeof(uint64_t));
    std::memcpy(right.children(), parent.children() + mid + 1,
                (move + 1) * sizeof(page_id_t));
    right.hdr()->count = move;
    parent.hdr()->count = mid;
    // Insert the pending separator into the proper half.
    NodeView target = sep >= up_key ? right : parent;
    const uint32_t tn = target.hdr()->count;
    const uint32_t idx = target.ChildIndex(sep);
    std::memmove(target.keys() + idx + 1, target.keys() + idx,
                 (tn - idx) * sizeof(uint64_t));
    std::memmove(target.children() + idx + 2, target.children() + idx + 1,
                 (tn - idx) * sizeof(page_id_t));
    target.keys()[idx] = sep;
    target.children()[idx + 1] = right_pid;
    target.hdr()->count = tn + 1;

    sep = up_key;
    right_pid = right_guard.pid();
    parent_l.desc->version_latch.WriteUnlock();
    path.pop_back();
  }

  if (have_split) {
    // The root itself split: build a new root and install it in the meta
    // page (which we still hold latched).
    SPITFIRE_CHECK(meta_locked);
    auto root_r = bm_->NewPage(kNodePageType);
    if (!root_r.ok()) {
      UnlockMeta(false);
      return root_r.status();
    }
    PageGuard new_root = root_r.MoveValue();
    NodeView root(new_root.RawData(/*for_write=*/true));
    root.InitInner(static_cast<uint16_t>(mp.height));
    root.hdr()->count = 1;
    root.keys()[0] = sep;
    root.children()[0] = mp.root;
    root.children()[1] = right_pid;
    MetaPayload nmp{new_root.pid(), mp.height + 1, kMetaMagic};
    std::byte* mraw = meta_guard.RawData(/*for_write=*/true);
    std::memcpy(mraw + kPageHeaderSize, &nmp, sizeof(nmp));
    UnlockMeta(true);
  } else {
    UnlockAll();
    UnlockMeta(false);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Remove
// ---------------------------------------------------------------------------

Status BTree::Remove(uint64_t key, FetchContext* ctx) {
  for (int restart = 0; restart < 1000000; ++restart) {
    if ((restart & 63) == 63) std::this_thread::yield();
    page_id_t pid = LoadRoot();
    auto g_r = FetchPageVia(bm_, ctx, pid, AccessIntent::kWrite);
    if (!g_r.ok()) {
      if (g_r.status().IsWouldBlock()) return g_r.status();
      continue;
    }
    PageGuard guard = g_r.MoveValue();
    uint64_t version = guard.descriptor()->version_latch.ReadLockOrRestart();
    if (version == OptimisticLatch::kRetry) continue;

    bool failed = false;
    for (;;) {
      std::byte* raw = guard.RawData();
      if (raw == nullptr) {
        failed = true;
        break;
      }
      NodeView node(raw);
      if (node.IsLeaf()) {
        if (!guard.descriptor()->version_latch.UpgradeToWriteLock(version)) {
          failed = true;
          break;
        }
        NodeView leaf(guard.RawData(/*for_write=*/true));
        const uint32_t n = leaf.hdr()->count;
        const uint32_t pos = leaf.LeafLowerBound(key);
        if (pos >= n || leaf.keys()[pos] != key) {
          guard.descriptor()->version_latch.WriteUnlockNoBump();
          return Status::NotFound("key");
        }
        std::memmove(leaf.keys() + pos, leaf.keys() + pos + 1,
                     (n - pos - 1) * sizeof(uint64_t));
        std::memmove(leaf.values() + pos, leaf.values() + pos + 1,
                     (n - pos - 1) * sizeof(uint64_t));
        leaf.hdr()->count = n - 1;
        guard.descriptor()->version_latch.WriteUnlock();
        return Status::OK();
      }
      const uint32_t idx = node.ChildIndex(key);
      const page_id_t child = node.children()[idx];
      if (!guard.descriptor()->version_latch.Validate(version)) {
        failed = true;
        break;
      }
      auto c_r = FetchPageVia(bm_, ctx, child, AccessIntent::kWrite);
      if (!c_r.ok()) {
        if (c_r.status().IsWouldBlock()) return c_r.status();
        failed = true;
        break;
      }
      PageGuard cguard = c_r.MoveValue();
      const uint64_t cversion =
          cguard.descriptor()->version_latch.ReadLockOrRestart();
      if (cversion == OptimisticLatch::kRetry ||
          !guard.descriptor()->version_latch.Validate(version)) {
        failed = true;
        break;
      }
      guard = std::move(cguard);
      version = cversion;
    }
    if (failed) continue;
  }
  return Status::Busy("btree remove retry budget exhausted");
}

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

Status BTree::Scan(uint64_t lo, uint64_t hi,
                   const std::function<bool(uint64_t, uint64_t)>& fn,
                   FetchContext* ctx) const {
  page_id_t leaf_pid = kInvalidPageId;
  // Descend to the leaf containing lo.
  for (int restart = 0; restart < 1000000 && leaf_pid == kInvalidPageId;
       ++restart) {
    if ((restart & 63) == 63) std::this_thread::yield();
    page_id_t pid = LoadRoot();
    auto g_r = FetchPageVia(bm_, ctx, pid, AccessIntent::kRead);
    if (!g_r.ok()) {
      if (g_r.status().IsWouldBlock()) return g_r.status();
      continue;
    }
    PageGuard guard = g_r.MoveValue();
    uint64_t version = guard.descriptor()->version_latch.ReadLockOrRestart();
    if (version == OptimisticLatch::kRetry) continue;
    bool failed = false;
    for (;;) {
      std::byte* raw = guard.RawData();
      if (raw == nullptr) {
        failed = true;
        break;
      }
      NodeView node(raw);
      if (node.IsLeaf()) {
        if (!guard.descriptor()->version_latch.Validate(version)) {
          failed = true;
        } else {
          leaf_pid = guard.pid();
        }
        break;
      }
      const uint32_t idx = node.ChildIndex(lo);
      const page_id_t child = node.children()[idx];
      if (!guard.descriptor()->version_latch.Validate(version)) {
        failed = true;
        break;
      }
      auto c_r = FetchPageVia(bm_, ctx, child, AccessIntent::kRead);
      if (!c_r.ok()) {
        if (c_r.status().IsWouldBlock()) return c_r.status();
        failed = true;
        break;
      }
      PageGuard cguard = c_r.MoveValue();
      const uint64_t cversion =
          cguard.descriptor()->version_latch.ReadLockOrRestart();
      if (cversion == OptimisticLatch::kRetry ||
          !guard.descriptor()->version_latch.Validate(version)) {
        failed = true;
        break;
      }
      guard = std::move(cguard);
      version = cversion;
    }
    if (failed) leaf_pid = kInvalidPageId;
  }
  if (leaf_pid == kInvalidPageId) return Status::Busy("scan descent failed");

  // Walk the leaf chain, copying each leaf's relevant entries under
  // optimistic validation before invoking the callback.
  std::vector<std::pair<uint64_t, uint64_t>> batch;
  while (leaf_pid != kInvalidPageId) {
    batch.clear();
    page_id_t next = kInvalidPageId;
    bool ok_leaf = false;
    for (int restart = 0; restart < 1000000; ++restart) {
      if ((restart & 63) == 63) std::this_thread::yield();
      auto g_r = FetchPageVia(bm_, ctx, leaf_pid, AccessIntent::kRead);
      if (!g_r.ok()) {
        // Parking mid-chain is fine: the resumed Scan re-descends and
        // re-visits earlier entries; callers collect idempotently.
        if (g_r.status().IsWouldBlock()) return g_r.status();
        continue;
      }
      PageGuard guard = g_r.MoveValue();
      const uint64_t version =
          guard.descriptor()->version_latch.ReadLockOrRestart();
      if (version == OptimisticLatch::kRetry) continue;
      std::byte* raw = guard.RawData();
      if (raw == nullptr) continue;
      NodeView leaf(raw);
      batch.clear();
      const uint32_t n = leaf.SafeCount();
      for (uint32_t i = leaf.LeafLowerBound(lo); i < n; ++i) {
        const uint64_t k = leaf.keys()[i];
        if (k > hi) break;
        batch.emplace_back(k, leaf.values()[i]);
      }
      next = leaf.hdr()->next_leaf;
      // Stop once this leaf's key range passes hi; empty leaves (possible
      // after deletes) just continue the chain.
      const bool exhausted = n > 0 && leaf.keys()[n - 1] > hi;
      if (!guard.descriptor()->version_latch.Validate(version)) continue;
      if (exhausted) next = kInvalidPageId;
      ok_leaf = true;
      break;
    }
    if (!ok_leaf) return Status::Busy("scan leaf retry budget exhausted");
    for (const auto& [k, v] : batch) {
      if (!fn(k, v)) return Status::OK();
    }
    leaf_pid = next;
  }
  return Status::OK();
}

Result<uint64_t> BTree::Count() const {
  uint64_t n = 0;
  SPITFIRE_RETURN_NOT_OK(Scan(0, UINT64_MAX, [&n](uint64_t, uint64_t) {
    ++n;
    return true;
  }));
  return n;
}

}  // namespace spitfire
