#include "container/admission_queue.h"

namespace spitfire {

AdmissionQueue::AdmissionQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool AdmissionQueue::ShouldAdmit(page_id_t pid) {
  SpinLatchGuard g(latch_);
  auto it = members_.find(pid);
  if (it != members_.end()) {
    members_.erase(it);
    // Lazy removal from the FIFO: stale ids are skipped during eviction.
    return true;
  }
  members_.insert(pid);
  fifo_.push_back(pid);
  while (members_.size() > capacity_) EvictOldestLocked();
  return false;
}

void AdmissionQueue::Remove(page_id_t pid) {
  SpinLatchGuard g(latch_);
  members_.erase(pid);
}

void AdmissionQueue::EvictOldestLocked() {
  while (!fifo_.empty()) {
    const page_id_t victim = fifo_.front();
    fifo_.pop_front();
    if (members_.erase(victim) != 0) return;  // skip stale entries
  }
}

size_t AdmissionQueue::size() const {
  SpinLatchGuard g(latch_);
  return members_.size();
}

}  // namespace spitfire
