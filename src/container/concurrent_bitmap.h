#ifndef SPITFIRE_CONTAINER_CONCURRENT_BITMAP_H_
#define SPITFIRE_CONTAINER_CONCURRENT_BITMAP_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace spitfire {

// Fixed-size concurrent bitmap over atomic 64-bit words. Backs the CLOCK
// reference bits, following the non-blocking design of NB-GCLOCK (Yui et
// al., ICDE 2010): setting/clearing a reference bit is a single atomic RMW,
// so page hits never serialize on a latch.
class ConcurrentBitmap {
 public:
  explicit ConcurrentBitmap(size_t num_bits);
  SPITFIRE_DISALLOW_COPY_AND_MOVE(ConcurrentBitmap);

  size_t size() const { return num_bits_; }

  void Set(size_t i);
  void Clear(size_t i);
  bool Test(size_t i) const;

  // Clears bit i and returns its previous value (the CLOCK sweep's
  // "give a second chance" step in one atomic op).
  bool TestAndClear(size_t i);

  // Sets bit i and returns its previous value (2Q promotion: the second
  // sampled access, not the first, moves a frame to the protected segment).
  bool TestAndSet(size_t i);

  // Number of set bits (linear scan; for stats/tests only).
  size_t CountSet() const;

  void Reset();

 private:
  size_t num_bits_;
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace spitfire

#endif  // SPITFIRE_CONTAINER_CONCURRENT_BITMAP_H_
