#ifndef SPITFIRE_CONTAINER_MPMC_QUEUE_H_
#define SPITFIRE_CONTAINER_MPMC_QUEUE_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/macros.h"

namespace spitfire {

// Bounded lock-free multi-producer/multi-consumer queue (Vyukov's design).
// Used for the buffer pools' free-frame lists: frame allocation and release
// happen on every miss/eviction, so they must not serialize.
template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity)
      : capacity_(RoundUpPow2(capacity)),
        mask_(capacity_ - 1),
        cells_(std::make_unique<Cell[]>(capacity_)) {
    for (size_t i = 0; i < capacity_; ++i) {
      cells_[i].sequence.store(i, std::memory_order_relaxed);
    }
  }
  SPITFIRE_DISALLOW_COPY_AND_MOVE(MpmcQueue);

  bool TryPush(const T& value) {
    Cell* cell;
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->sequence.store(pos + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    Cell* cell;
    size_t pos = head_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->sequence.load(std::memory_order_acquire);
      const intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (diff == 0) {
        if (head_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          break;
        }
      } else if (diff < 0) {
        return false;  // empty
      } else {
        pos = head_.load(std::memory_order_relaxed);
      }
    }
    *out = cell->value;
    cell->sequence.store(pos + capacity_, std::memory_order_release);
    return true;
  }

  size_t capacity() const { return capacity_; }

 private:
  struct alignas(kCacheLineSize) Cell {
    std::atomic<size_t> sequence;
    T value;
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  const size_t capacity_;
  const size_t mask_;
  std::unique_ptr<Cell[]> cells_;
  alignas(kCacheLineSize) std::atomic<size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<size_t> tail_{0};
};

}  // namespace spitfire

#endif  // SPITFIRE_CONTAINER_MPMC_QUEUE_H_
