#include "container/concurrent_bitmap.h"

#include <bit>

namespace spitfire {

ConcurrentBitmap::ConcurrentBitmap(size_t num_bits)
    : num_bits_(num_bits), words_((num_bits + 63) / 64) {
  Reset();
}

void ConcurrentBitmap::Set(size_t i) {
  SPITFIRE_DCHECK(i < num_bits_);
  words_[i / 64].fetch_or(1ULL << (i % 64), std::memory_order_relaxed);
}

void ConcurrentBitmap::Clear(size_t i) {
  SPITFIRE_DCHECK(i < num_bits_);
  words_[i / 64].fetch_and(~(1ULL << (i % 64)), std::memory_order_relaxed);
}

bool ConcurrentBitmap::Test(size_t i) const {
  SPITFIRE_DCHECK(i < num_bits_);
  return words_[i / 64].load(std::memory_order_relaxed) & (1ULL << (i % 64));
}

bool ConcurrentBitmap::TestAndClear(size_t i) {
  SPITFIRE_DCHECK(i < num_bits_);
  const uint64_t mask = 1ULL << (i % 64);
  const uint64_t prev =
      words_[i / 64].fetch_and(~mask, std::memory_order_relaxed);
  return prev & mask;
}

bool ConcurrentBitmap::TestAndSet(size_t i) {
  SPITFIRE_DCHECK(i < num_bits_);
  const uint64_t mask = 1ULL << (i % 64);
  const uint64_t prev =
      words_[i / 64].fetch_or(mask, std::memory_order_relaxed);
  return prev & mask;
}

size_t ConcurrentBitmap::CountSet() const {
  size_t n = 0;
  for (const auto& w : words_) {
    n += static_cast<size_t>(
        std::popcount(w.load(std::memory_order_relaxed)));
  }
  return n;
}

void ConcurrentBitmap::Reset() {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

}  // namespace spitfire
