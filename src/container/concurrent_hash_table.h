#ifndef SPITFIRE_CONTAINER_CONCURRENT_HASH_TABLE_H_
#define SPITFIRE_CONTAINER_CONCURRENT_HASH_TABLE_H_

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "sync/rw_latch.h"

namespace spitfire {

// Sharded concurrent hash table. Replaces the Intel TBB concurrent hash map
// the paper uses for the pid → shared-page-descriptor mapping table. Each
// shard is an unordered_map behind a reader-writer spin latch; with the
// default 64 shards, contention on the lookup path is negligible relative
// to device latencies.
template <typename K, typename V, typename Hash = std::hash<K>>
class ConcurrentHashTable {
 public:
  explicit ConcurrentHashTable(size_t num_shards = 64)
      : shards_(RoundUpPow2(num_shards)), mask_(shards_.size() - 1) {}
  SPITFIRE_DISALLOW_COPY_AND_MOVE(ConcurrentHashTable);

  // Inserts (k, v) if absent. Returns true on insert, false if k existed.
  bool Insert(const K& k, const V& v) {
    Shard& s = ShardFor(k);
    ExclusiveLatchGuard g(s.latch);
    return s.map.emplace(k, v).second;
  }

  // Looks up k; copies the value into *out. Returns true if found.
  bool Find(const K& k, V* out) const {
    const Shard& s = ShardFor(k);
    SharedLatchGuard g(const_cast<RwLatch&>(s.latch));
    auto it = s.map.find(k);
    if (it == s.map.end()) return false;
    *out = it->second;
    return true;
  }

  bool Contains(const K& k) const {
    const Shard& s = ShardFor(k);
    SharedLatchGuard g(const_cast<RwLatch&>(s.latch));
    return s.map.count(k) != 0;
  }

  // Removes k. Returns true if it was present.
  bool Erase(const K& k) {
    Shard& s = ShardFor(k);
    ExclusiveLatchGuard g(s.latch);
    return s.map.erase(k) != 0;
  }

  // Returns the value for k, inserting factory() under the shard lock if
  // absent. The factory runs at most once per inserted key.
  template <typename Factory>
  V GetOrCreate(const K& k, Factory&& factory) {
    Shard& s = ShardFor(k);
    ExclusiveLatchGuard g(s.latch);
    auto it = s.map.find(k);
    if (it != s.map.end()) return it->second;
    V v = factory();
    s.map.emplace(k, v);
    return v;
  }

  // Applies fn(k, v) to every entry. Takes shard locks one at a time, so fn
  // must not re-enter the table.
  void ForEach(const std::function<void(const K&, V&)>& fn) {
    for (auto& s : shards_) {
      ExclusiveLatchGuard g(s.latch);
      for (auto& [k, v] : s.map) fn(k, v);
    }
  }

  size_t Size() const {
    size_t n = 0;
    for (const auto& s : shards_) {
      SharedLatchGuard g(const_cast<RwLatch&>(s.latch));
      n += s.map.size();
    }
    return n;
  }

  void Clear() {
    for (auto& s : shards_) {
      ExclusiveLatchGuard g(s.latch);
      s.map.clear();
    }
  }

 private:
  struct Shard {
    RwLatch latch;
    std::unordered_map<K, V, Hash> map;
  };

  static size_t RoundUpPow2(size_t n) {
    size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  Shard& ShardFor(const K& k) { return shards_[Hash{}(k)&mask_]; }
  const Shard& ShardFor(const K& k) const { return shards_[Hash{}(k)&mask_]; }

  mutable std::vector<Shard> shards_;
  size_t mask_;
};

}  // namespace spitfire

#endif  // SPITFIRE_CONTAINER_CONCURRENT_HASH_TABLE_H_
