#ifndef SPITFIRE_CONTAINER_ADMISSION_QUEUE_H_
#define SPITFIRE_CONTAINER_ADMISSION_QUEUE_H_

#include <cstdint>
#include <deque>
#include <unordered_set>

#include "common/constants.h"
#include "common/macros.h"
#include "sync/spin_latch.h"

namespace spitfire {

// HyMem's NVM admission queue (Section 1 / 6.5). Each time a page evicted
// from DRAM is considered for NVM admission:
//  - if its id is in the queue, it is removed and ADMITTED (second touch);
//  - otherwise its id is enqueued and the page bypasses NVM (first touch).
// The queue is bounded; when full, the oldest entry is dropped. The paper
// found a capacity of half the NVM buffer's page count to work well.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity);
  SPITFIRE_DISALLOW_COPY_AND_MOVE(AdmissionQueue);

  // Returns true if `pid` should be admitted to NVM now (and removes it
  // from the queue); false if it was enqueued for next time.
  bool ShouldAdmit(page_id_t pid);

  // Removes `pid` if queued (e.g. page deleted).
  void Remove(page_id_t pid);

  size_t size() const;
  size_t capacity() const { return capacity_; }

 private:
  void EvictOldestLocked();

  const size_t capacity_;
  mutable SpinLatch latch_;
  std::deque<page_id_t> fifo_;
  std::unordered_set<page_id_t> members_;
};

}  // namespace spitfire

#endif  // SPITFIRE_CONTAINER_ADMISSION_QUEUE_H_
