#ifndef SPITFIRE_SYNC_SPIN_LATCH_H_
#define SPITFIRE_SYNC_SPIN_LATCH_H_

#include <atomic>
#include <thread>

#include "common/macros.h"

namespace spitfire {

// Test-and-test-and-set spin latch. Used for the per-tier latches in the
// shared page descriptor (Section 5.2): critical sections are short page
// migrations, so spinning beats blocking. After a bounded spin the waiter
// yields: if the holder was preempted (oversubscribed machine), burning
// the rest of this timeslice can only delay the release we are waiting
// for.
class SpinLatch {
 public:
  SpinLatch() = default;
  SPITFIRE_DISALLOW_COPY_AND_MOVE(SpinLatch);

  void Lock() {
    for (;;) {
      if (!locked_.exchange(true, std::memory_order_acquire)) return;
      int spins = 0;
      while (locked_.load(std::memory_order_relaxed)) {
        if (++spins < 256) {
          __builtin_ia32_pause();
        } else {
          spins = 0;
          std::this_thread::yield();
        }
      }
    }
  }

  bool TryLock() {
    return !locked_.load(std::memory_order_relaxed) &&
           !locked_.exchange(true, std::memory_order_acquire);
  }

  void Unlock() { locked_.store(false, std::memory_order_release); }

  bool IsLocked() const { return locked_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> locked_{false};
};

// RAII guard for SpinLatch.
class SpinLatchGuard {
 public:
  explicit SpinLatchGuard(SpinLatch& latch) : latch_(&latch) { latch_->Lock(); }
  ~SpinLatchGuard() { Release(); }
  SPITFIRE_DISALLOW_COPY_AND_MOVE(SpinLatchGuard);

  void Release() {
    if (latch_ != nullptr) {
      latch_->Unlock();
      latch_ = nullptr;
    }
  }

 private:
  SpinLatch* latch_;
};

}  // namespace spitfire

#endif  // SPITFIRE_SYNC_SPIN_LATCH_H_
