#ifndef SPITFIRE_SYNC_OPTIMISTIC_LATCH_H_
#define SPITFIRE_SYNC_OPTIMISTIC_LATCH_H_

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace spitfire {

// Optimistic version latch for lock coupling, after Leis et al.,
// "Optimistic Lock Coupling" (IEEE DEB 2019). The 64-bit word packs
// (version << 1 | locked). Readers sample the version, proceed without
// blocking, and validate; writers bump the version on unlock so readers can
// detect interference and restart.
class OptimisticLatch {
 public:
  static constexpr uint64_t kLockedBit = 1ULL;
  // Sentinel returned by ReadLockOrRestart when the latch is write-locked.
  static constexpr uint64_t kRetry = UINT64_MAX;

  OptimisticLatch() = default;
  SPITFIRE_DISALLOW_COPY_AND_MOVE(OptimisticLatch);

  // Returns the current version, or kRetry if a writer holds the latch.
  uint64_t ReadLockOrRestart() const {
    uint64_t v = word_.load(std::memory_order_acquire);
    if (v & kLockedBit) return kRetry;
    return v;
  }

  // Validates that no writer intervened since `version` was sampled.
  bool Validate(uint64_t version) const {
    std::atomic_thread_fence(std::memory_order_acquire);
    return word_.load(std::memory_order_acquire) == version;
  }

  // Upgrades an optimistic read to a write lock; fails (restart) if the
  // version moved.
  bool UpgradeToWriteLock(uint64_t version) {
    return word_.compare_exchange_strong(version, version | kLockedBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  void WriteLock() {
    for (;;) {
      uint64_t v = word_.load(std::memory_order_relaxed);
      if ((v & kLockedBit) == 0 &&
          word_.compare_exchange_weak(v, v | kLockedBit,
                                      std::memory_order_acquire,
                                      std::memory_order_relaxed)) {
        return;
      }
      __builtin_ia32_pause();
    }
  }

  bool TryWriteLock() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    return (v & kLockedBit) == 0 &&
           word_.compare_exchange_strong(v, v | kLockedBit,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed);
  }

  // Releases the write lock, bumping the version so optimistic readers fail
  // validation.
  void WriteUnlock() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    SPITFIRE_DCHECK(v & kLockedBit);
    word_.store((v & ~kLockedBit) + 2, std::memory_order_release);
  }

  // Releases the write lock without changing the version (no modification
  // was made).
  void WriteUnlockNoBump() {
    uint64_t v = word_.load(std::memory_order_relaxed);
    SPITFIRE_DCHECK(v & kLockedBit);
    word_.store(v & ~kLockedBit, std::memory_order_release);
  }

  bool IsWriteLocked() const {
    return word_.load(std::memory_order_relaxed) & kLockedBit;
  }

  uint64_t RawVersion() const { return word_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> word_{0};
};

}  // namespace spitfire

#endif  // SPITFIRE_SYNC_OPTIMISTIC_LATCH_H_
