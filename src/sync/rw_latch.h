#ifndef SPITFIRE_SYNC_RW_LATCH_H_
#define SPITFIRE_SYNC_RW_LATCH_H_

#include <atomic>

#include "common/macros.h"

namespace spitfire {

// Lightweight reader-writer spin latch. State encoding:
//   -1           : held exclusively by one writer
//    0           : free
//    n > 0       : held in shared mode by n readers
// Writers do not get priority; fairness is adequate for the short critical
// sections (hash-table shards, table heaps) this is used for.
class RwLatch {
 public:
  RwLatch() = default;
  SPITFIRE_DISALLOW_COPY_AND_MOVE(RwLatch);

  void LockShared() {
    for (;;) {
      int32_t cur = state_.load(std::memory_order_relaxed);
      if (cur >= 0 &&
          state_.compare_exchange_weak(cur, cur + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      __builtin_ia32_pause();
    }
  }

  bool TryLockShared() {
    int32_t cur = state_.load(std::memory_order_relaxed);
    return cur >= 0 && state_.compare_exchange_strong(
                           cur, cur + 1, std::memory_order_acquire,
                           std::memory_order_relaxed);
  }

  void UnlockShared() {
    int32_t prev = state_.fetch_sub(1, std::memory_order_release);
    SPITFIRE_DCHECK(prev > 0);
    (void)prev;
  }

  void LockExclusive() {
    for (;;) {
      int32_t expected = 0;
      if (state_.compare_exchange_weak(expected, -1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
        return;
      }
      __builtin_ia32_pause();
    }
  }

  bool TryLockExclusive() {
    int32_t expected = 0;
    return state_.compare_exchange_strong(expected, -1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed);
  }

  void UnlockExclusive() {
    SPITFIRE_DCHECK(state_.load(std::memory_order_relaxed) == -1);
    state_.store(0, std::memory_order_release);
  }

 private:
  std::atomic<int32_t> state_{0};
};

// RAII guards.
class SharedLatchGuard {
 public:
  explicit SharedLatchGuard(RwLatch& latch) : latch_(&latch) {
    latch_->LockShared();
  }
  ~SharedLatchGuard() {
    if (latch_ != nullptr) latch_->UnlockShared();
  }
  SPITFIRE_DISALLOW_COPY_AND_MOVE(SharedLatchGuard);

 private:
  RwLatch* latch_;
};

class ExclusiveLatchGuard {
 public:
  explicit ExclusiveLatchGuard(RwLatch& latch) : latch_(&latch) {
    latch_->LockExclusive();
  }
  ~ExclusiveLatchGuard() {
    if (latch_ != nullptr) latch_->UnlockExclusive();
  }
  SPITFIRE_DISALLOW_COPY_AND_MOVE(ExclusiveLatchGuard);

 private:
  RwLatch* latch_;
};

}  // namespace spitfire

#endif  // SPITFIRE_SYNC_RW_LATCH_H_
