#include "hymem/cacheline_page.h"

// UnitBitmap256 and CacheLineState are header-only; this file anchors the
// translation unit for the module.
