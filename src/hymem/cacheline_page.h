#ifndef SPITFIRE_HYMEM_CACHELINE_PAGE_H_
#define SPITFIRE_HYMEM_CACHELINE_PAGE_H_

#include <atomic>
#include <cstdint>

#include "common/constants.h"
#include "common/macros.h"

namespace spitfire {

// Bitmap over the loading units of one page, used as the `resident` and
// `dirty` masks of a cache-line-grained page (Figure 2a). A page has at
// most kPageSize / 64 = 256 units (when the loading granularity is 64 B),
// so four 64-bit words suffice for any granularity.
class UnitBitmap256 {
 public:
  static constexpr size_t kMaxUnits = 256;

  UnitBitmap256() { Reset(); }

  void Reset() {
    for (auto& w : words_) w = 0;
  }

  void Set(size_t i) {
    SPITFIRE_DCHECK(i < kMaxUnits);
    words_[i >> 6] |= 1ULL << (i & 63);
  }

  void Clear(size_t i) {
    SPITFIRE_DCHECK(i < kMaxUnits);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }

  bool Test(size_t i) const {
    SPITFIRE_DCHECK(i < kMaxUnits);
    return words_[i >> 6] & (1ULL << (i & 63));
  }

  // True if all of [first, last] are set.
  bool TestRange(size_t first, size_t last) const {
    for (size_t i = first; i <= last; ++i) {
      if (!Test(i)) return false;
    }
    return true;
  }

  size_t CountSet() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  bool Any() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) != 0;
  }

  uint64_t word(size_t i) const { return words_[i]; }

 private:
  uint64_t words_[4];
};

// Bookkeeping for a cache-line-grained DRAM page: which loading units have
// been pulled up from the NVM copy, and which were dirtied and must be
// written back on eviction. The paper stores these masks in the page
// header (Figure 2a); we keep them in the DRAM page descriptor, which is
// equivalent and avoids stealing page payload bytes.
//
// Guarded by the descriptor's DRAM tier latch.
struct CacheLineState {
  UnitBitmap256 resident;
  UnitBitmap256 dirty;
  // Loading granularity for this page instance, in bytes (64..512).
  uint32_t unit_size = 256;

  size_t UnitsPerPage() const { return kPageSize / unit_size; }
  size_t UnitFor(size_t offset) const { return offset / unit_size; }

  void Reset(uint32_t unit_bytes) {
    resident.Reset();
    dirty.Reset();
    unit_size = unit_bytes;
  }
};

}  // namespace spitfire

#endif  // SPITFIRE_HYMEM_CACHELINE_PAGE_H_
