#include "hymem/mini_page.h"

// MiniPageView is header-only; this file anchors the translation unit.
