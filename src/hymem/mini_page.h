#ifndef SPITFIRE_HYMEM_MINI_PAGE_H_
#define SPITFIRE_HYMEM_MINI_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/constants.h"
#include "common/macros.h"

namespace spitfire {

// HyMem's mini page (Figure 2b): a compact DRAM representation of a
// cache-line-grained page that stores at most sixteen loading units. The
// `slots` array maps slot position → logical unit index within the 16 KB
// page; `count` tracks occupancy; a 16-bit mask tracks dirty slots. When a
// seventeenth distinct unit is touched, the mini page overflows and the
// buffer manager transparently promotes it to a full page.
//
// The view operates over raw memory carved out of a host DRAM frame:
//   [MiniPageMeta (64 B, one cache line)] [unit 0] [unit 1] ... [unit 15]
class MiniPageView {
 public:
  struct Meta {
    uint16_t count;
    uint16_t dirty_mask;
    uint32_t unit_size;
    page_id_t page_id;
    // Logical unit index stored in each slot. 0xFFFF = empty.
    uint16_t slots[kMiniPageSlots];
    uint8_t padding[64 - 16 - 2 * kMiniPageSlots];
  };
  static_assert(sizeof(Meta) == 64, "meta must fit one cache line");

  static constexpr uint16_t kEmptySlot = 0xFFFF;

  // Bytes one mini page occupies for a given loading granularity.
  static size_t BytesRequired(size_t unit_size) {
    return sizeof(Meta) + kMiniPageSlots * unit_size;
  }

  // How many mini pages fit in one full frame.
  static size_t PerFrame(size_t unit_size) {
    return kPageSize / BytesRequired(unit_size);
  }

  explicit MiniPageView(std::byte* mem) : mem_(mem) {}

  Meta* meta() { return reinterpret_cast<Meta*>(mem_); }
  const Meta* meta() const { return reinterpret_cast<const Meta*>(mem_); }

  void Format(page_id_t pid, uint32_t unit_size) {
    Meta* m = meta();
    std::memset(static_cast<void*>(m), 0, sizeof(Meta));
    m->unit_size = unit_size;
    m->page_id = pid;
    for (auto& s : m->slots) s = kEmptySlot;
  }

  std::byte* UnitPtr(size_t slot) {
    SPITFIRE_DCHECK(slot < kMiniPageSlots);
    return mem_ + sizeof(Meta) + slot * meta()->unit_size;
  }
  const std::byte* UnitPtr(size_t slot) const {
    SPITFIRE_DCHECK(slot < kMiniPageSlots);
    return mem_ + sizeof(Meta) + slot * meta()->unit_size;
  }

  // Returns the slot holding logical unit `unit`, or -1. Linear scan over
  // at most sixteen entries — the "sorting the slots" overhead the paper
  // attributes to mini pages is this per-access search.
  int FindSlot(uint16_t unit) const {
    const Meta* m = meta();
    for (int i = 0; i < m->count; ++i) {
      if (m->slots[i] == unit) return i;
    }
    return -1;
  }

  bool IsFull() const { return meta()->count >= kMiniPageSlots; }
  size_t count() const { return meta()->count; }

  // Claims the next slot for logical unit `unit`. Returns the slot index,
  // or -1 on overflow (caller must promote to a full page).
  int Insert(uint16_t unit) {
    Meta* m = meta();
    if (m->count >= kMiniPageSlots) return -1;
    const int slot = m->count++;
    m->slots[slot] = unit;
    return slot;
  }

  void MarkDirty(size_t slot) {
    SPITFIRE_DCHECK(slot < kMiniPageSlots);
    meta()->dirty_mask |= static_cast<uint16_t>(1u << slot);
  }
  bool IsDirty(size_t slot) const {
    return meta()->dirty_mask & (1u << slot);
  }
  bool AnyDirty() const { return meta()->dirty_mask != 0; }

 private:
  std::byte* mem_;
};

}  // namespace spitfire

#endif  // SPITFIRE_HYMEM_MINI_PAGE_H_
