#ifndef SPITFIRE_WORKLOAD_DRIVER_H_
#define SPITFIRE_WORKLOAD_DRIVER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "workload/txn_machine.h"

namespace spitfire {

// Result of one timed workload run.
struct DriverResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t aborted = 0;
  Histogram latency_ns;
  // Committed txns per second per slice of the measurement window, when
  // the run was invoked with slice_seconds > 0 (throughput over time).
  std::vector<double> slice_ops_per_sec;

  // Committed transactions per second.
  double Throughput() const {
    return seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
  }
  double AbortRate() const {
    const double total = static_cast<double>(committed + aborted);
    return total > 0 ? static_cast<double>(aborted) / total : 0.0;
  }
  std::string ToString() const;
};

// One page access for the asynchronous driver path below.
struct PageOp {
  page_id_t pid = 0;
  AccessIntent intent = AccessIntent::kRead;
};

// Multi-threaded closed-loop workload driver: each worker repeatedly calls
// `txn_fn` (one transaction per call) until the wall-clock duration ends.
// `txn_fn` returns OK for commit and Aborted for a rolled-back conflict;
// any other error stops the run.
class WorkloadDriver {
 public:
  using TxnFn = std::function<Status(Xoshiro256&)>;
  using PageOpFn = std::function<PageOp(Xoshiro256&)>;

  // Runs `txn_fn` on `num_threads` workers for `seconds`, after running it
  // for `warmup_seconds` without recording. With slice_seconds > 0 the
  // measurement window is additionally binned into throughput-over-time
  // slices (DriverResult::slice_ops_per_sec).
  static DriverResult Run(int num_threads, double seconds, const TxnFn& txn_fn,
                          double warmup_seconds = 0.0,
                          double slice_seconds = 0.0);

  // One phase of a phase-change scenario: run `fn` on every worker for
  // `seconds`, then all workers move to the next phase together.
  struct PhaseSpec {
    std::string name;
    double seconds = 1.0;
    TxnFn fn;
  };

  // Per-phase outcome, with throughput-over-time resolution: committed ops
  // are binned into `slice_seconds` slices so transitions (e.g. the
  // post-scan recovery of a point-lookup phase) are visible inside a
  // phase, not just across phases.
  struct PhaseResult {
    std::string name;
    double seconds = 0;
    uint64_t committed = 0;
    uint64_t aborted = 0;
    std::vector<double> slice_ops_per_sec;

    double Throughput() const {
      return seconds > 0 ? static_cast<double>(committed) / seconds : 0.0;
    }
  };

  // Runs the phases back to back on `num_threads` workers (no warm-up;
  // make the first phase the warm-up if one is needed). Workers observe
  // the phase switch at their next transaction boundary.
  static std::vector<PhaseResult> RunPhased(
      int num_threads, const std::vector<PhaseSpec>& phases,
      double slice_seconds = 0.1);

  // Async-aware page-op driver: each worker keeps up to `ring_depth` fetch
  // tickets in flight through BufferManager::SubmitFetch instead of
  // blocking one miss at a time, harvesting completions from its ring and
  // sleeping in PumpIo only when the ring is full with nothing ready.
  // This is the path that converts device queue depth into throughput: a
  // worker's misses overlap in the SSD's queues while it keeps submitting.
  // Each harvested op counts as one committed "transaction"; latency is
  // submit → completion. Busy completions are resubmitted a few times,
  // then counted as aborted. `ring_depth` ≤ 1 degenerates to the blocking
  // behavior of FetchPage (submit, then drain that one ticket).
  static DriverResult RunAsyncPageOps(BufferManager* bm, int num_threads,
                                      double seconds, int ring_depth,
                                      const PageOpFn& op_fn,
                                      double warmup_seconds = 0.0);

  // Interleaved transaction executor (the tentpole of the interleaved-
  // execution issue): each worker drives a ring of `ring_depth` TxnMachine
  // continuations over the async miss path. A machine that parks on a
  // buffer miss (WouldBlock) yields its worker to a sibling; the worker
  // harvests fired FetchContexts each pass and resumes the parked
  // machines, converting per-transaction miss stalls into device queue
  // depth exactly as RunAsyncPageOps does for raw page ops. `factory` is
  // invoked ring_depth times per worker. ring_depth <= 1 still runs
  // through the machinery (one machine, parking and resuming serially) —
  // use Run() with the blocking procedure for the true K=1 baseline.
  // Latency is begin → commit/abort, parked time included. At the end of
  // the run, in-flight transactions are stepped to completion (drained),
  // not cancelled.
  static DriverResult RunInterleaved(BufferManager* bm, int num_threads,
                                     double seconds, int ring_depth,
                                     const TxnMachineFactory& factory,
                                     double warmup_seconds = 0.0,
                                     double slice_seconds = 0.0);
};

}  // namespace spitfire

#endif  // SPITFIRE_WORKLOAD_DRIVER_H_
