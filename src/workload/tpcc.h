#ifndef SPITFIRE_WORKLOAD_TPCC_H_
#define SPITFIRE_WORKLOAD_TPCC_H_

#include <atomic>
#include <memory>

#include "common/random.h"
#include "db/database.h"
#include "workload/txn_machine.h"

namespace spitfire {

// TPC-C [35], the order-entry benchmark the paper uses as its mixed
// workload (Section 6.1): five transaction types over a warehouse-centric
// schema; 88% of the mix modifies the database.
//
// The schema is scaled relative to the specification, in line with the
// paper's MB-for-GB scaling: fewer items/customers by default (all
// configurable).
struct TpccConfig {
  uint32_t num_warehouses = 2;
  uint32_t districts_per_warehouse = 10;
  uint32_t customers_per_district = 300;
  uint32_t num_items = 2'000;

  // Standard mix percentages.
  uint32_t pct_new_order = 45;
  uint32_t pct_payment = 43;
  uint32_t pct_order_status = 4;
  uint32_t pct_delivery = 4;
  uint32_t pct_stock_level = 4;
};

class TpccWorkload {
 public:
  // Table ids.
  enum TableId : uint32_t {
    kWarehouse = 10,
    kDistrict = 11,
    kCustomer = 12,
    kHistory = 13,
    kNewOrder = 14,
    kOrder = 15,
    kOrderLine = 16,
    kItem = 17,
    kStock = 18,
  };

  // Fixed-size tuple layouts (sizes chosen to match TPC-C field widths).
  struct WarehouseTuple {
    double ytd;
    double tax;
    char name[10];
    char street[40];
    char city[20];
    char state[2];
    char zip[9];
    char pad[7];
  };
  struct DistrictTuple {
    double ytd;
    double tax;
    uint32_t next_o_id;
    char name[10];
    char street[40];
    char city[20];
    char state[2];
    char zip[9];
    char pad[3];
  };
  struct CustomerTuple {
    double balance;
    double ytd_payment;
    double discount;
    double credit_lim;
    uint32_t payment_cnt;
    uint32_t delivery_cnt;
    char first[16];
    char middle[2];
    char last[16];
    char credit[2];
    char data[500];
  };
  struct HistoryTuple {
    uint32_t c_id;
    uint32_t c_d_id;
    uint32_t c_w_id;
    uint32_t d_id;
    uint32_t w_id;
    uint32_t pad;
    double amount;
    char data[24];
  };
  struct NewOrderTuple {
    uint32_t delivered;  // always 0 while the row exists (deleted on delivery)
    uint32_t pad;
  };
  struct OrderTuple {
    uint32_t c_id;
    uint32_t carrier_id;  // 0 = unassigned
    uint32_t ol_cnt;
    uint32_t all_local;
    uint64_t entry_d;
  };
  struct OrderLineTuple {
    uint32_t i_id;
    uint32_t supply_w_id;
    uint32_t quantity;
    uint32_t pad;
    double amount;
    uint64_t delivery_d;
    char dist_info[24];
  };
  struct ItemTuple {
    uint32_t im_id;
    uint32_t pad;
    double price;
    char name[24];
    char data[50];
    char pad2[6];
  };
  struct StockTuple {
    uint32_t quantity;
    uint32_t ytd;
    uint32_t order_cnt;
    uint32_t remote_cnt;
    char dist[10][24];
    char data[50];
    char pad[6];
  };

  // --- key encodings (packed into 64 bits) ---
  static uint64_t WarehouseKey(uint32_t w) { return w; }
  static uint64_t DistrictKey(uint32_t w, uint32_t d) {
    return (static_cast<uint64_t>(w) << 8) | d;
  }
  static uint64_t CustomerKey(uint32_t w, uint32_t d, uint32_t c) {
    return (static_cast<uint64_t>(w) << 28) |
           (static_cast<uint64_t>(d) << 20) | c;
  }
  static uint64_t OrderKey(uint32_t w, uint32_t d, uint32_t o) {
    return (static_cast<uint64_t>(w) << 36) |
           (static_cast<uint64_t>(d) << 28) | o;
  }
  static uint64_t OrderLineKey(uint32_t w, uint32_t d, uint32_t o,
                               uint32_t line) {
    return (OrderKey(w, d, o) << 4) | line;
  }
  static uint64_t ItemKey(uint32_t i) { return i; }
  static uint64_t StockKey(uint32_t w, uint32_t i) {
    return (static_cast<uint64_t>(w) << 24) | i;
  }

  TpccWorkload(Database* db, const TpccConfig& config);

  // Creates all nine tables and loads warehouses, districts, customers,
  // items, and stock.
  Status Load();

  // Executes one transaction drawn from the standard mix.
  Status RunTransaction(Xoshiro256& rng);

  // Individual transactions (public for targeted tests).
  Status NewOrder(Xoshiro256& rng);
  Status Payment(Xoshiro256& rng);
  Status OrderStatus(Xoshiro256& rng);
  Status Delivery(Xoshiro256& rng);
  Status StockLevel(Xoshiro256& rng);

  const TpccConfig& config() const { return config_; }

 private:
  friend class TpccNewOrderMachine;
  friend class TpccPaymentMachine;

  Table* table(TableId id) { return db_->GetTable(id); }
  uint32_t RandomWarehouse(Xoshiro256& rng) {
    return 1 + static_cast<uint32_t>(rng.NextUint64(config_.num_warehouses));
  }

  Database* db_;
  TpccConfig config_;
  std::atomic<uint64_t> history_seq_{0};
};

// NEW-ORDER as a parked continuation (see TxnMachine). Phase shape:
//   read W → read D + bump/update next_o_id → read C →
//   per line: (read item, read stock, update stock) → insert ORDER-LINE →
//   insert ORDER → insert NEW-ORDER → commit.
// Every random decision (warehouse, district, customer, line items,
// quantities) is drawn when the transaction begins; each phase ends in at
// most one write and advances only once that write succeeded, so a re-run
// after a parked miss never re-rolls next_o_id or double-decrements stock.
class TpccNewOrderMachine : public TxnMachine {
 public:
  explicit TpccNewOrderMachine(TpccWorkload* workload) : w_(workload) {}

  Status Step(Xoshiro256& rng, FetchContext* ctx) override;
  void Cancel() override;
  bool in_flight() const override { return txn_ != nullptr; }

 private:
  enum class Phase : uint8_t {
    kReadWarehouse,
    kReadDistrict,
    kReadCustomer,
    kLineStock,
    kLineInsert,
    kInsertOrder,
    kInsertNewOrder,
    kCommit,
  };
  static constexpr uint32_t kMaxLines = 15;

  Status Finish(const Status& st);

  TpccWorkload* w_;
  std::unique_ptr<Transaction> txn_;
  Phase phase_ = Phase::kReadWarehouse;
  // Decisions drawn at begin.
  uint32_t wid_ = 0, did_ = 0, cid_ = 0, ol_cnt_ = 0;
  uint32_t item_ids_[kMaxLines] = {};
  uint32_t qtys_[kMaxLines] = {};
  uint64_t entry_d_ = 0;
  // Progress state.
  uint32_t o_id_ = 0;
  uint32_t line_ = 1;
  TpccWorkload::OrderLineTuple ol_{};  // staged by kLineStock for kLineInsert
};

// PAYMENT as a parked continuation: read+update W → read+update D →
// read+update C → insert HISTORY → commit. Same phase discipline as
// NEW-ORDER (one write per phase, drawn-up-front decisions).
class TpccPaymentMachine : public TxnMachine {
 public:
  explicit TpccPaymentMachine(TpccWorkload* workload) : w_(workload) {}

  Status Step(Xoshiro256& rng, FetchContext* ctx) override;
  void Cancel() override;
  bool in_flight() const override { return txn_ != nullptr; }

 private:
  enum class Phase : uint8_t {
    kWarehouse,
    kDistrict,
    kCustomer,
    kHistory,
    kCommit,
  };

  Status Finish(const Status& st);

  TpccWorkload* w_;
  std::unique_ptr<Transaction> txn_;
  Phase phase_ = Phase::kWarehouse;
  uint32_t wid_ = 0, did_ = 0, cid_ = 0;
  double amount_ = 0;
  uint64_t hkey_ = 0;
  TpccWorkload::HistoryTuple ht_{};
};

// The interleavable slice of the TPC-C mix: picks NEW-ORDER vs PAYMENT
// per transaction (the two types renormalized — together 88% of the
// standard mix) and delegates to the corresponding machine.
class TpccTxnMachine : public TxnMachine {
 public:
  explicit TpccTxnMachine(TpccWorkload* workload)
      : new_order_(workload), payment_(workload), w_(workload) {}

  Status Step(Xoshiro256& rng, FetchContext* ctx) override;
  void Cancel() override;
  bool in_flight() const override {
    return new_order_.in_flight() || payment_.in_flight();
  }

 private:
  TpccNewOrderMachine new_order_;
  TpccPaymentMachine payment_;
  TpccWorkload* w_;
};

}  // namespace spitfire

#endif  // SPITFIRE_WORKLOAD_TPCC_H_
