#include "workload/tpcc.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace spitfire {

namespace {
void FillString(Xoshiro256& rng, char* dst, size_t n) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  for (size_t i = 0; i < n; ++i) {
    dst[i] = kAlpha[rng.NextUint64(sizeof(kAlpha) - 1)];
  }
}

// Aborts the transaction and maps every failure to Aborted so drivers can
// count conflicts uniformly.
Status FailTxn(Database* db, Transaction* txn, const Status& st) {
  (void)db->Abort(txn);
  return st.IsAborted() ? st : Status::Aborted(st.ToString());
}
}  // namespace

TpccWorkload::TpccWorkload(Database* db, const TpccConfig& config)
    : db_(db), config_(config) {}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

Status TpccWorkload::Load() {
  struct Spec {
    TableId id;
    size_t size;
  };
  const Spec specs[] = {
      {kWarehouse, sizeof(WarehouseTuple)},
      {kDistrict, sizeof(DistrictTuple)},
      {kCustomer, sizeof(CustomerTuple)},
      {kHistory, sizeof(HistoryTuple)},
      {kNewOrder, sizeof(NewOrderTuple)},
      {kOrder, sizeof(OrderTuple)},
      {kOrderLine, sizeof(OrderLineTuple)},
      {kItem, sizeof(ItemTuple)},
      {kStock, sizeof(StockTuple)},
  };
  for (const Spec& s : specs) {
    SPITFIRE_RETURN_NOT_OK(db_->CreateTable(s.id, s.size).status());
  }

  Xoshiro256 rng(0x79CC);

  // Items (shared across warehouses).
  {
    auto txn = db_->Begin();
    for (uint32_t i = 1; i <= config_.num_items; ++i) {
      ItemTuple item{};
      item.im_id = static_cast<uint32_t>(rng.NextUint64(10'000)) + 1;
      item.price = 1.0 + static_cast<double>(rng.NextUint64(9'900)) / 100.0;
      FillString(rng, item.name, sizeof(item.name));
      FillString(rng, item.data, sizeof(item.data));
      SPITFIRE_RETURN_NOT_OK(
          table(kItem)->Insert(txn.get(), ItemKey(i), &item));
      if (i % 1024 == 0) {
        SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
        txn = db_->Begin();
      }
    }
    SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
  }

  for (uint32_t w = 1; w <= config_.num_warehouses; ++w) {
    auto txn = db_->Begin();
    WarehouseTuple wt{};
    wt.ytd = 300'000.0;
    wt.tax = static_cast<double>(rng.NextUint64(2'000)) / 10'000.0;
    FillString(rng, wt.name, sizeof(wt.name));
    FillString(rng, wt.city, sizeof(wt.city));
    SPITFIRE_RETURN_NOT_OK(
        table(kWarehouse)->Insert(txn.get(), WarehouseKey(w), &wt));

    for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      DistrictTuple dt{};
      dt.ytd = 30'000.0;
      dt.tax = static_cast<double>(rng.NextUint64(2'000)) / 10'000.0;
      dt.next_o_id = 1;
      FillString(rng, dt.name, sizeof(dt.name));
      SPITFIRE_RETURN_NOT_OK(
          table(kDistrict)->Insert(txn.get(), DistrictKey(w, d), &dt));

      for (uint32_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerTuple ct{};
        ct.balance = -10.0;
        ct.ytd_payment = 10.0;
        ct.discount = static_cast<double>(rng.NextUint64(5'000)) / 10'000.0;
        ct.credit_lim = 50'000.0;
        FillString(rng, ct.first, sizeof(ct.first));
        FillString(rng, ct.last, sizeof(ct.last));
        ct.credit[0] = rng.Bernoulli(0.1) ? 'B' : 'G';
        ct.credit[1] = 'C';
        FillString(rng, ct.data, 64);  // partial, like a short history
        SPITFIRE_RETURN_NOT_OK(table(kCustomer)->Insert(
            txn.get(), CustomerKey(w, d, c), &ct));
      }
      // Commit per district to bound transaction size.
      SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
      txn = db_->Begin();
    }

    for (uint32_t i = 1; i <= config_.num_items; ++i) {
      StockTuple st{};
      st.quantity = 10 + static_cast<uint32_t>(rng.NextUint64(91));
      FillString(rng, st.data, sizeof(st.data));
      SPITFIRE_RETURN_NOT_OK(
          table(kStock)->Insert(txn.get(), StockKey(w, i), &st));
      if (i % 1024 == 0) {
        SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
        txn = db_->Begin();
      }
    }
    SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Mix
// ---------------------------------------------------------------------------

Status TpccWorkload::RunTransaction(Xoshiro256& rng) {
  const uint32_t pick = static_cast<uint32_t>(rng.NextUint64(100));
  uint32_t acc = config_.pct_new_order;
  if (pick < acc) return NewOrder(rng);
  acc += config_.pct_payment;
  if (pick < acc) return Payment(rng);
  acc += config_.pct_order_status;
  if (pick < acc) return OrderStatus(rng);
  acc += config_.pct_delivery;
  if (pick < acc) return Delivery(rng);
  return StockLevel(rng);
}

// ---------------------------------------------------------------------------
// NEW-ORDER: place an order of 5-15 lines; updates district.next_o_id and
// stock quantities, inserts ORDER / NEW-ORDER / ORDER-LINE rows.
// ---------------------------------------------------------------------------

Status TpccWorkload::NewOrder(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t c =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.customers_per_district));
  const uint32_t ol_cnt = 5 + static_cast<uint32_t>(rng.NextUint64(11));

  auto txn = db_->Begin();

  WarehouseTuple wt{};
  Status st = table(kWarehouse)->Read(txn.get(), WarehouseKey(w), &wt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  DistrictTuple dt{};
  st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  const uint32_t o_id = dt.next_o_id;
  dt.next_o_id++;
  st = table(kDistrict)->Update(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  CustomerTuple ct{};
  st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  double total = 0.0;
  for (uint32_t line = 1; line <= ol_cnt; ++line) {
    const uint32_t i_id =
        1 + static_cast<uint32_t>(rng.NextUint64(config_.num_items));
    ItemTuple item{};
    st = table(kItem)->Read(txn.get(), ItemKey(i_id), &item);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    StockTuple stock{};
    st = table(kStock)->Read(txn.get(), StockKey(w, i_id), &stock);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    const uint32_t qty = 1 + static_cast<uint32_t>(rng.NextUint64(10));
    stock.quantity = stock.quantity >= qty + 10 ? stock.quantity - qty
                                                : stock.quantity + 91 - qty;
    stock.ytd += qty;
    stock.order_cnt++;
    st = table(kStock)->Update(txn.get(), StockKey(w, i_id), &stock);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    OrderLineTuple ol{};
    ol.i_id = i_id;
    ol.supply_w_id = w;
    ol.quantity = qty;
    ol.amount = qty * item.price;
    std::memcpy(ol.dist_info, stock.dist[d - 1], sizeof(ol.dist_info));
    st = table(kOrderLine)
             ->Insert(txn.get(), OrderLineKey(w, d, o_id, line), &ol);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    total += ol.amount;
  }
  (void)total;

  OrderTuple ot{};
  ot.c_id = c;
  ot.carrier_id = 0;
  ot.ol_cnt = ol_cnt;
  ot.all_local = 1;
  ot.entry_d = rng.Next();
  st = table(kOrder)->Insert(txn.get(), OrderKey(w, d, o_id), &ot);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  NewOrderTuple no{};
  st = table(kNewOrder)->Insert(txn.get(), OrderKey(w, d, o_id), &no);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// PAYMENT: updates warehouse/district YTD and the customer balance,
// inserts a HISTORY row.
// ---------------------------------------------------------------------------

Status TpccWorkload::Payment(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t c =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.customers_per_district));
  const double amount =
      1.0 + static_cast<double>(rng.NextUint64(499'900)) / 100.0;

  auto txn = db_->Begin();

  WarehouseTuple wt{};
  Status st = table(kWarehouse)->Read(txn.get(), WarehouseKey(w), &wt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  wt.ytd += amount;
  st = table(kWarehouse)->Update(txn.get(), WarehouseKey(w), &wt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  DistrictTuple dt{};
  st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  dt.ytd += amount;
  st = table(kDistrict)->Update(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  CustomerTuple ct{};
  st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  ct.balance -= amount;
  ct.ytd_payment += amount;
  ct.payment_cnt++;
  st = table(kCustomer)->Update(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  HistoryTuple ht{};
  ht.c_id = c;
  ht.c_d_id = d;
  ht.c_w_id = w;
  ht.d_id = d;
  ht.w_id = w;
  ht.amount = amount;
  FillString(rng, ht.data, sizeof(ht.data));
  const uint64_t hkey = history_seq_.fetch_add(1, std::memory_order_relaxed) |
                        (static_cast<uint64_t>(w) << 40);
  st = table(kHistory)->Insert(txn.get(), hkey, &ht);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// ORDER-STATUS: reads a customer's most recent order and its lines.
// ---------------------------------------------------------------------------

Status TpccWorkload::OrderStatus(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t c =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.customers_per_district));

  auto txn = db_->Begin();

  CustomerTuple ct{};
  Status st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  // Find the customer's latest order by scanning the district's order
  // range backwards (keys are ordered by o_id).
  DistrictTuple dt{};
  st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  uint32_t found_o = 0;
  OrderTuple ot{};
  for (uint32_t o = dt.next_o_id; o > 0 && found_o == 0; --o) {
    OrderTuple cur{};
    st = table(kOrder)->Read(txn.get(), OrderKey(w, d, o), &cur);
    if (st.IsNotFound()) continue;
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    if (cur.c_id == c) {
      found_o = o;
      ot = cur;
    }
    // Bound the backwards walk (spec uses a secondary index; we cap it).
    if (dt.next_o_id - o > 64) break;
  }
  if (found_o != 0) {
    OrderLineTuple ol{};
    for (uint32_t line = 1; line <= ot.ol_cnt; ++line) {
      st = table(kOrderLine)
               ->Read(txn.get(), OrderLineKey(w, d, found_o, line), &ol);
      if (!st.ok() && !st.IsNotFound()) return FailTxn(db_, txn.get(), st);
    }
  }
  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// DELIVERY: for each district, deliver the oldest undelivered order:
// mark its NEW-ORDER row delivered, set the carrier, stamp order lines,
// and credit the customer.
// ---------------------------------------------------------------------------

Status TpccWorkload::Delivery(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t carrier = 1 + static_cast<uint32_t>(rng.NextUint64(10));

  auto txn = db_->Begin();
  for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    // Oldest pending order in this district.
    uint32_t o_id = 0;
    Status scan_st = table(kNewOrder)
        ->Scan(txn.get(), OrderKey(w, d, 0), OrderKey(w, d, 0x0FFFFFFF),
               [&](uint64_t key, const void*) {
                 // Rows are deleted on delivery, so the first row in key
                 // order is the oldest pending order.
                 o_id = static_cast<uint32_t>(key & 0x0FFFFFFF);
                 return false;
               });
    if (!scan_st.ok()) return FailTxn(db_, txn.get(), scan_st);
    if (o_id == 0) continue;  // nothing pending in this district

    // The specification deletes the NEW-ORDER row once delivered.
    Status st = table(kNewOrder)->Delete(txn.get(), OrderKey(w, d, o_id));
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    OrderTuple ot{};
    st = table(kOrder)->Read(txn.get(), OrderKey(w, d, o_id), &ot);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    ot.carrier_id = carrier;
    st = table(kOrder)->Update(txn.get(), OrderKey(w, d, o_id), &ot);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    double total = 0.0;
    for (uint32_t line = 1; line <= ot.ol_cnt; ++line) {
      OrderLineTuple ol{};
      st = table(kOrderLine)
               ->Read(txn.get(), OrderLineKey(w, d, o_id, line), &ol);
      if (st.IsNotFound()) continue;
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
      ol.delivery_d = rng.Next();
      total += ol.amount;
      st = table(kOrderLine)
               ->Update(txn.get(), OrderLineKey(w, d, o_id, line), &ol);
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
    }

    CustomerTuple ct{};
    st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, ot.c_id), &ct);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    ct.balance += total;
    ct.delivery_cnt++;
    st = table(kCustomer)->Update(txn.get(), CustomerKey(w, d, ot.c_id), &ct);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
  }
  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// STOCK-LEVEL: count stock entries below a threshold among the last 20
// orders' lines of one district (read-only).
// ---------------------------------------------------------------------------

Status TpccWorkload::StockLevel(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t threshold = 10 + static_cast<uint32_t>(rng.NextUint64(11));

  auto txn = db_->Begin();
  DistrictTuple dt{};
  Status st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  const uint32_t last = dt.next_o_id > 0 ? dt.next_o_id - 1 : 0;
  const uint32_t first = last > 20 ? last - 20 + 1 : 1;
  uint32_t low_stock = 0;
  for (uint32_t o = first; o <= last; ++o) {
    OrderTuple ot{};
    st = table(kOrder)->Read(txn.get(), OrderKey(w, d, o), &ot);
    if (st.IsNotFound()) continue;
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    for (uint32_t line = 1; line <= ot.ol_cnt; ++line) {
      OrderLineTuple ol{};
      st = table(kOrderLine)
               ->Read(txn.get(), OrderLineKey(w, d, o, line), &ol);
      if (st.IsNotFound()) continue;
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
      StockTuple stock{};
      st = table(kStock)->Read(txn.get(), StockKey(w, ol.i_id), &stock);
      if (st.IsNotFound()) continue;
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
      if (stock.quantity < threshold) ++low_stock;
    }
  }
  (void)low_stock;
  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// Interleaved machines
// ---------------------------------------------------------------------------

Status TpccNewOrderMachine::Finish(const Status& st) {
  txn_->fetch_ctx = nullptr;
  if (st.ok()) {
    const Status cst = w_->db_->Commit(txn_.get());
    txn_.reset();
    return cst;
  }
  (void)w_->db_->Abort(txn_.get());
  txn_.reset();
  return st.IsAborted() ? st : Status::Aborted(st.ToString());
}

void TpccNewOrderMachine::Cancel() {
  if (txn_ == nullptr) return;
  txn_->fetch_ctx = nullptr;
  (void)w_->db_->Abort(txn_.get());
  txn_.reset();
}

Status TpccNewOrderMachine::Step(Xoshiro256& rng, FetchContext* ctx) {
  SPITFIRE_DCHECK(ctx == nullptr || !ctx->pending());
  const TpccConfig& cfg = w_->config_;
  if (txn_ == nullptr) {
    wid_ = w_->RandomWarehouse(rng);
    did_ = 1 + static_cast<uint32_t>(
                   rng.NextUint64(cfg.districts_per_warehouse));
    cid_ = 1 + static_cast<uint32_t>(
                   rng.NextUint64(cfg.customers_per_district));
    ol_cnt_ = 5 + static_cast<uint32_t>(rng.NextUint64(11));
    for (uint32_t i = 0; i < ol_cnt_; ++i) {
      item_ids_[i] = 1 + static_cast<uint32_t>(rng.NextUint64(cfg.num_items));
      qtys_[i] = 1 + static_cast<uint32_t>(rng.NextUint64(10));
    }
    entry_d_ = rng.Next();
    o_id_ = 0;
    line_ = 1;
    phase_ = Phase::kReadWarehouse;
    txn_ = w_->db_->Begin();
  }
  txn_->fetch_ctx = ctx;
  for (;;) {
    switch (phase_) {
      case Phase::kReadWarehouse: {
        TpccWorkload::WarehouseTuple wt{};
        const Status st = w_->table(TpccWorkload::kWarehouse)
                              ->Read(txn_.get(),
                                     TpccWorkload::WarehouseKey(wid_), &wt);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kReadDistrict;
        break;
      }
      case Phase::kReadDistrict: {
        // Read + one write. A park inside Update happens before the write
        // applied, so the re-run re-reads next_o_id and recomputes o_id_ —
        // no re-roll.
        TpccWorkload::DistrictTuple dt{};
        const uint64_t dkey = TpccWorkload::DistrictKey(wid_, did_);
        Table* districts = w_->table(TpccWorkload::kDistrict);
        Status st = districts->Read(txn_.get(), dkey, &dt);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        o_id_ = dt.next_o_id;
        dt.next_o_id++;
        st = districts->Update(txn_.get(), dkey, &dt);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kReadCustomer;
        break;
      }
      case Phase::kReadCustomer: {
        TpccWorkload::CustomerTuple ct{};
        const Status st =
            w_->table(TpccWorkload::kCustomer)
                ->Read(txn_.get(),
                       TpccWorkload::CustomerKey(wid_, did_, cid_), &ct);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kLineStock;
        break;
      }
      case Phase::kLineStock: {
        const uint32_t i_id = item_ids_[line_ - 1];
        const uint32_t qty = qtys_[line_ - 1];
        TpccWorkload::ItemTuple item{};
        Status st = w_->table(TpccWorkload::kItem)
                        ->Read(txn_.get(), TpccWorkload::ItemKey(i_id), &item);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        TpccWorkload::StockTuple stock{};
        const uint64_t skey = TpccWorkload::StockKey(wid_, i_id);
        Table* stocks = w_->table(TpccWorkload::kStock);
        st = stocks->Read(txn_.get(), skey, &stock);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        stock.quantity = stock.quantity >= qty + 10
                             ? stock.quantity - qty
                             : stock.quantity + 91 - qty;
        stock.ytd += qty;
        stock.order_cnt++;
        st = stocks->Update(txn_.get(), skey, &stock);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        // Stage the order line for the next phase while the item and
        // stock reads are at hand.
        ol_ = TpccWorkload::OrderLineTuple{};
        ol_.i_id = i_id;
        ol_.supply_w_id = wid_;
        ol_.quantity = qty;
        ol_.amount = qty * item.price;
        std::memcpy(ol_.dist_info, stock.dist[did_ - 1],
                    sizeof(ol_.dist_info));
        phase_ = Phase::kLineInsert;
        break;
      }
      case Phase::kLineInsert: {
        const Status st =
            w_->table(TpccWorkload::kOrderLine)
                ->Insert(txn_.get(),
                         TpccWorkload::OrderLineKey(wid_, did_, o_id_, line_),
                         &ol_);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        ++line_;
        phase_ = line_ <= ol_cnt_ ? Phase::kLineStock : Phase::kInsertOrder;
        break;
      }
      case Phase::kInsertOrder: {
        TpccWorkload::OrderTuple ot{};
        ot.c_id = cid_;
        ot.carrier_id = 0;
        ot.ol_cnt = ol_cnt_;
        ot.all_local = 1;
        ot.entry_d = entry_d_;
        const Status st =
            w_->table(TpccWorkload::kOrder)
                ->Insert(txn_.get(), TpccWorkload::OrderKey(wid_, did_, o_id_),
                         &ot);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kInsertNewOrder;
        break;
      }
      case Phase::kInsertNewOrder: {
        TpccWorkload::NewOrderTuple no{};
        const Status st =
            w_->table(TpccWorkload::kNewOrder)
                ->Insert(txn_.get(), TpccWorkload::OrderKey(wid_, did_, o_id_),
                         &no);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kCommit;
        break;
      }
      case Phase::kCommit:
        return Finish(Status::OK());
    }
  }
}

Status TpccPaymentMachine::Finish(const Status& st) {
  txn_->fetch_ctx = nullptr;
  if (st.ok()) {
    const Status cst = w_->db_->Commit(txn_.get());
    txn_.reset();
    return cst;
  }
  (void)w_->db_->Abort(txn_.get());
  txn_.reset();
  return st.IsAborted() ? st : Status::Aborted(st.ToString());
}

void TpccPaymentMachine::Cancel() {
  if (txn_ == nullptr) return;
  txn_->fetch_ctx = nullptr;
  (void)w_->db_->Abort(txn_.get());
  txn_.reset();
}

Status TpccPaymentMachine::Step(Xoshiro256& rng, FetchContext* ctx) {
  SPITFIRE_DCHECK(ctx == nullptr || !ctx->pending());
  const TpccConfig& cfg = w_->config_;
  if (txn_ == nullptr) {
    wid_ = w_->RandomWarehouse(rng);
    did_ = 1 + static_cast<uint32_t>(
                   rng.NextUint64(cfg.districts_per_warehouse));
    cid_ = 1 + static_cast<uint32_t>(
                   rng.NextUint64(cfg.customers_per_district));
    amount_ = 1.0 + static_cast<double>(rng.NextUint64(499'900)) / 100.0;
    ht_ = TpccWorkload::HistoryTuple{};
    ht_.c_id = cid_;
    ht_.c_d_id = did_;
    ht_.c_w_id = wid_;
    ht_.d_id = did_;
    ht_.w_id = wid_;
    ht_.amount = amount_;
    FillString(rng, ht_.data, sizeof(ht_.data));
    hkey_ = w_->history_seq_.fetch_add(1, std::memory_order_relaxed) |
            (static_cast<uint64_t>(wid_) << 40);
    phase_ = Phase::kWarehouse;
    txn_ = w_->db_->Begin();
  }
  txn_->fetch_ctx = ctx;
  for (;;) {
    switch (phase_) {
      case Phase::kWarehouse: {
        TpccWorkload::WarehouseTuple wt{};
        const uint64_t wkey = TpccWorkload::WarehouseKey(wid_);
        Table* warehouses = w_->table(TpccWorkload::kWarehouse);
        Status st = warehouses->Read(txn_.get(), wkey, &wt);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        wt.ytd += amount_;
        st = warehouses->Update(txn_.get(), wkey, &wt);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kDistrict;
        break;
      }
      case Phase::kDistrict: {
        TpccWorkload::DistrictTuple dt{};
        const uint64_t dkey = TpccWorkload::DistrictKey(wid_, did_);
        Table* districts = w_->table(TpccWorkload::kDistrict);
        Status st = districts->Read(txn_.get(), dkey, &dt);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        dt.ytd += amount_;
        st = districts->Update(txn_.get(), dkey, &dt);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kCustomer;
        break;
      }
      case Phase::kCustomer: {
        TpccWorkload::CustomerTuple ct{};
        const uint64_t ckey = TpccWorkload::CustomerKey(wid_, did_, cid_);
        Table* customers = w_->table(TpccWorkload::kCustomer);
        Status st = customers->Read(txn_.get(), ckey, &ct);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        ct.balance -= amount_;
        ct.ytd_payment += amount_;
        ct.payment_cnt++;
        st = customers->Update(txn_.get(), ckey, &ct);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kHistory;
        break;
      }
      case Phase::kHistory: {
        const Status st = w_->table(TpccWorkload::kHistory)
                              ->Insert(txn_.get(), hkey_, &ht_);
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kCommit;
        break;
      }
      case Phase::kCommit:
        return Finish(Status::OK());
    }
  }
}

Status TpccTxnMachine::Step(Xoshiro256& rng, FetchContext* ctx) {
  if (new_order_.in_flight()) return new_order_.Step(rng, ctx);
  if (payment_.in_flight()) return payment_.Step(rng, ctx);
  // Idle: pick the next type with NEW-ORDER / PAYMENT renormalized from
  // the standard mix percentages.
  const TpccConfig& cfg = w_->config();
  const uint32_t total = cfg.pct_new_order + cfg.pct_payment;
  const bool pick_new_order =
      total == 0 || rng.NextUint64(total) < cfg.pct_new_order;
  return pick_new_order ? new_order_.Step(rng, ctx)
                        : payment_.Step(rng, ctx);
}

void TpccTxnMachine::Cancel() {
  new_order_.Cancel();
  payment_.Cancel();
}

}  // namespace spitfire
