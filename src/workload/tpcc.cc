#include "workload/tpcc.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace spitfire {

namespace {
void FillString(Xoshiro256& rng, char* dst, size_t n) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  for (size_t i = 0; i < n; ++i) {
    dst[i] = kAlpha[rng.NextUint64(sizeof(kAlpha) - 1)];
  }
}

// Aborts the transaction and maps every failure to Aborted so drivers can
// count conflicts uniformly.
Status FailTxn(Database* db, Transaction* txn, const Status& st) {
  (void)db->Abort(txn);
  return st.IsAborted() ? st : Status::Aborted(st.ToString());
}
}  // namespace

TpccWorkload::TpccWorkload(Database* db, const TpccConfig& config)
    : db_(db), config_(config) {}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

Status TpccWorkload::Load() {
  struct Spec {
    TableId id;
    size_t size;
  };
  const Spec specs[] = {
      {kWarehouse, sizeof(WarehouseTuple)},
      {kDistrict, sizeof(DistrictTuple)},
      {kCustomer, sizeof(CustomerTuple)},
      {kHistory, sizeof(HistoryTuple)},
      {kNewOrder, sizeof(NewOrderTuple)},
      {kOrder, sizeof(OrderTuple)},
      {kOrderLine, sizeof(OrderLineTuple)},
      {kItem, sizeof(ItemTuple)},
      {kStock, sizeof(StockTuple)},
  };
  for (const Spec& s : specs) {
    SPITFIRE_RETURN_NOT_OK(db_->CreateTable(s.id, s.size).status());
  }

  Xoshiro256 rng(0x79CC);

  // Items (shared across warehouses).
  {
    auto txn = db_->Begin();
    for (uint32_t i = 1; i <= config_.num_items; ++i) {
      ItemTuple item{};
      item.im_id = static_cast<uint32_t>(rng.NextUint64(10'000)) + 1;
      item.price = 1.0 + static_cast<double>(rng.NextUint64(9'900)) / 100.0;
      FillString(rng, item.name, sizeof(item.name));
      FillString(rng, item.data, sizeof(item.data));
      SPITFIRE_RETURN_NOT_OK(
          table(kItem)->Insert(txn.get(), ItemKey(i), &item));
      if (i % 1024 == 0) {
        SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
        txn = db_->Begin();
      }
    }
    SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
  }

  for (uint32_t w = 1; w <= config_.num_warehouses; ++w) {
    auto txn = db_->Begin();
    WarehouseTuple wt{};
    wt.ytd = 300'000.0;
    wt.tax = static_cast<double>(rng.NextUint64(2'000)) / 10'000.0;
    FillString(rng, wt.name, sizeof(wt.name));
    FillString(rng, wt.city, sizeof(wt.city));
    SPITFIRE_RETURN_NOT_OK(
        table(kWarehouse)->Insert(txn.get(), WarehouseKey(w), &wt));

    for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      DistrictTuple dt{};
      dt.ytd = 30'000.0;
      dt.tax = static_cast<double>(rng.NextUint64(2'000)) / 10'000.0;
      dt.next_o_id = 1;
      FillString(rng, dt.name, sizeof(dt.name));
      SPITFIRE_RETURN_NOT_OK(
          table(kDistrict)->Insert(txn.get(), DistrictKey(w, d), &dt));

      for (uint32_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerTuple ct{};
        ct.balance = -10.0;
        ct.ytd_payment = 10.0;
        ct.discount = static_cast<double>(rng.NextUint64(5'000)) / 10'000.0;
        ct.credit_lim = 50'000.0;
        FillString(rng, ct.first, sizeof(ct.first));
        FillString(rng, ct.last, sizeof(ct.last));
        ct.credit[0] = rng.Bernoulli(0.1) ? 'B' : 'G';
        ct.credit[1] = 'C';
        FillString(rng, ct.data, 64);  // partial, like a short history
        SPITFIRE_RETURN_NOT_OK(table(kCustomer)->Insert(
            txn.get(), CustomerKey(w, d, c), &ct));
      }
      // Commit per district to bound transaction size.
      SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
      txn = db_->Begin();
    }

    for (uint32_t i = 1; i <= config_.num_items; ++i) {
      StockTuple st{};
      st.quantity = 10 + static_cast<uint32_t>(rng.NextUint64(91));
      FillString(rng, st.data, sizeof(st.data));
      SPITFIRE_RETURN_NOT_OK(
          table(kStock)->Insert(txn.get(), StockKey(w, i), &st));
      if (i % 1024 == 0) {
        SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
        txn = db_->Begin();
      }
    }
    SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Mix
// ---------------------------------------------------------------------------

Status TpccWorkload::RunTransaction(Xoshiro256& rng) {
  const uint32_t pick = static_cast<uint32_t>(rng.NextUint64(100));
  uint32_t acc = config_.pct_new_order;
  if (pick < acc) return NewOrder(rng);
  acc += config_.pct_payment;
  if (pick < acc) return Payment(rng);
  acc += config_.pct_order_status;
  if (pick < acc) return OrderStatus(rng);
  acc += config_.pct_delivery;
  if (pick < acc) return Delivery(rng);
  return StockLevel(rng);
}

// ---------------------------------------------------------------------------
// NEW-ORDER: place an order of 5-15 lines; updates district.next_o_id and
// stock quantities, inserts ORDER / NEW-ORDER / ORDER-LINE rows.
// ---------------------------------------------------------------------------

Status TpccWorkload::NewOrder(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t c =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.customers_per_district));
  const uint32_t ol_cnt = 5 + static_cast<uint32_t>(rng.NextUint64(11));

  auto txn = db_->Begin();

  WarehouseTuple wt{};
  Status st = table(kWarehouse)->Read(txn.get(), WarehouseKey(w), &wt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  DistrictTuple dt{};
  st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  const uint32_t o_id = dt.next_o_id;
  dt.next_o_id++;
  st = table(kDistrict)->Update(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  CustomerTuple ct{};
  st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  double total = 0.0;
  for (uint32_t line = 1; line <= ol_cnt; ++line) {
    const uint32_t i_id =
        1 + static_cast<uint32_t>(rng.NextUint64(config_.num_items));
    ItemTuple item{};
    st = table(kItem)->Read(txn.get(), ItemKey(i_id), &item);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    StockTuple stock{};
    st = table(kStock)->Read(txn.get(), StockKey(w, i_id), &stock);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    const uint32_t qty = 1 + static_cast<uint32_t>(rng.NextUint64(10));
    stock.quantity = stock.quantity >= qty + 10 ? stock.quantity - qty
                                                : stock.quantity + 91 - qty;
    stock.ytd += qty;
    stock.order_cnt++;
    st = table(kStock)->Update(txn.get(), StockKey(w, i_id), &stock);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    OrderLineTuple ol{};
    ol.i_id = i_id;
    ol.supply_w_id = w;
    ol.quantity = qty;
    ol.amount = qty * item.price;
    std::memcpy(ol.dist_info, stock.dist[d - 1], sizeof(ol.dist_info));
    st = table(kOrderLine)
             ->Insert(txn.get(), OrderLineKey(w, d, o_id, line), &ol);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    total += ol.amount;
  }
  (void)total;

  OrderTuple ot{};
  ot.c_id = c;
  ot.carrier_id = 0;
  ot.ol_cnt = ol_cnt;
  ot.all_local = 1;
  ot.entry_d = rng.Next();
  st = table(kOrder)->Insert(txn.get(), OrderKey(w, d, o_id), &ot);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  NewOrderTuple no{};
  st = table(kNewOrder)->Insert(txn.get(), OrderKey(w, d, o_id), &no);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// PAYMENT: updates warehouse/district YTD and the customer balance,
// inserts a HISTORY row.
// ---------------------------------------------------------------------------

Status TpccWorkload::Payment(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t c =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.customers_per_district));
  const double amount =
      1.0 + static_cast<double>(rng.NextUint64(499'900)) / 100.0;

  auto txn = db_->Begin();

  WarehouseTuple wt{};
  Status st = table(kWarehouse)->Read(txn.get(), WarehouseKey(w), &wt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  wt.ytd += amount;
  st = table(kWarehouse)->Update(txn.get(), WarehouseKey(w), &wt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  DistrictTuple dt{};
  st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  dt.ytd += amount;
  st = table(kDistrict)->Update(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  CustomerTuple ct{};
  st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);
  ct.balance -= amount;
  ct.ytd_payment += amount;
  ct.payment_cnt++;
  st = table(kCustomer)->Update(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  HistoryTuple ht{};
  ht.c_id = c;
  ht.c_d_id = d;
  ht.c_w_id = w;
  ht.d_id = d;
  ht.w_id = w;
  ht.amount = amount;
  FillString(rng, ht.data, sizeof(ht.data));
  const uint64_t hkey = history_seq_.fetch_add(1, std::memory_order_relaxed) |
                        (static_cast<uint64_t>(w) << 40);
  st = table(kHistory)->Insert(txn.get(), hkey, &ht);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// ORDER-STATUS: reads a customer's most recent order and its lines.
// ---------------------------------------------------------------------------

Status TpccWorkload::OrderStatus(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t c =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.customers_per_district));

  auto txn = db_->Begin();

  CustomerTuple ct{};
  Status st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, c), &ct);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  // Find the customer's latest order by scanning the district's order
  // range backwards (keys are ordered by o_id).
  DistrictTuple dt{};
  st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  uint32_t found_o = 0;
  OrderTuple ot{};
  for (uint32_t o = dt.next_o_id; o > 0 && found_o == 0; --o) {
    OrderTuple cur{};
    st = table(kOrder)->Read(txn.get(), OrderKey(w, d, o), &cur);
    if (st.IsNotFound()) continue;
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    if (cur.c_id == c) {
      found_o = o;
      ot = cur;
    }
    // Bound the backwards walk (spec uses a secondary index; we cap it).
    if (dt.next_o_id - o > 64) break;
  }
  if (found_o != 0) {
    OrderLineTuple ol{};
    for (uint32_t line = 1; line <= ot.ol_cnt; ++line) {
      st = table(kOrderLine)
               ->Read(txn.get(), OrderLineKey(w, d, found_o, line), &ol);
      if (!st.ok() && !st.IsNotFound()) return FailTxn(db_, txn.get(), st);
    }
  }
  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// DELIVERY: for each district, deliver the oldest undelivered order:
// mark its NEW-ORDER row delivered, set the carrier, stamp order lines,
// and credit the customer.
// ---------------------------------------------------------------------------

Status TpccWorkload::Delivery(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t carrier = 1 + static_cast<uint32_t>(rng.NextUint64(10));

  auto txn = db_->Begin();
  for (uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
    // Oldest pending order in this district.
    uint32_t o_id = 0;
    Status scan_st = table(kNewOrder)
        ->Scan(txn.get(), OrderKey(w, d, 0), OrderKey(w, d, 0x0FFFFFFF),
               [&](uint64_t key, const void*) {
                 // Rows are deleted on delivery, so the first row in key
                 // order is the oldest pending order.
                 o_id = static_cast<uint32_t>(key & 0x0FFFFFFF);
                 return false;
               });
    if (!scan_st.ok()) return FailTxn(db_, txn.get(), scan_st);
    if (o_id == 0) continue;  // nothing pending in this district

    // The specification deletes the NEW-ORDER row once delivered.
    Status st = table(kNewOrder)->Delete(txn.get(), OrderKey(w, d, o_id));
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    OrderTuple ot{};
    st = table(kOrder)->Read(txn.get(), OrderKey(w, d, o_id), &ot);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    ot.carrier_id = carrier;
    st = table(kOrder)->Update(txn.get(), OrderKey(w, d, o_id), &ot);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);

    double total = 0.0;
    for (uint32_t line = 1; line <= ot.ol_cnt; ++line) {
      OrderLineTuple ol{};
      st = table(kOrderLine)
               ->Read(txn.get(), OrderLineKey(w, d, o_id, line), &ol);
      if (st.IsNotFound()) continue;
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
      ol.delivery_d = rng.Next();
      total += ol.amount;
      st = table(kOrderLine)
               ->Update(txn.get(), OrderLineKey(w, d, o_id, line), &ol);
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
    }

    CustomerTuple ct{};
    st = table(kCustomer)->Read(txn.get(), CustomerKey(w, d, ot.c_id), &ct);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    ct.balance += total;
    ct.delivery_cnt++;
    st = table(kCustomer)->Update(txn.get(), CustomerKey(w, d, ot.c_id), &ct);
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
  }
  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// STOCK-LEVEL: count stock entries below a threshold among the last 20
// orders' lines of one district (read-only).
// ---------------------------------------------------------------------------

Status TpccWorkload::StockLevel(Xoshiro256& rng) {
  const uint32_t w = RandomWarehouse(rng);
  const uint32_t d =
      1 + static_cast<uint32_t>(rng.NextUint64(config_.districts_per_warehouse));
  const uint32_t threshold = 10 + static_cast<uint32_t>(rng.NextUint64(11));

  auto txn = db_->Begin();
  DistrictTuple dt{};
  Status st = table(kDistrict)->Read(txn.get(), DistrictKey(w, d), &dt);
  if (!st.ok()) return FailTxn(db_, txn.get(), st);

  const uint32_t last = dt.next_o_id > 0 ? dt.next_o_id - 1 : 0;
  const uint32_t first = last > 20 ? last - 20 + 1 : 1;
  uint32_t low_stock = 0;
  for (uint32_t o = first; o <= last; ++o) {
    OrderTuple ot{};
    st = table(kOrder)->Read(txn.get(), OrderKey(w, d, o), &ot);
    if (st.IsNotFound()) continue;
    if (!st.ok()) return FailTxn(db_, txn.get(), st);
    for (uint32_t line = 1; line <= ot.ol_cnt; ++line) {
      OrderLineTuple ol{};
      st = table(kOrderLine)
               ->Read(txn.get(), OrderLineKey(w, d, o, line), &ol);
      if (st.IsNotFound()) continue;
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
      StockTuple stock{};
      st = table(kStock)->Read(txn.get(), StockKey(w, ol.i_id), &stock);
      if (st.IsNotFound()) continue;
      if (!st.ok()) return FailTxn(db_, txn.get(), st);
      if (stock.quantity < threshold) ++low_stock;
    }
  }
  (void)low_stock;
  return db_->Commit(txn.get());
}

}  // namespace spitfire
