#include "workload/driver.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.h"

namespace spitfire {

std::string DriverResult::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%.0f txn/s (committed=%llu aborted=%llu over %.2fs)",
                Throughput(), static_cast<unsigned long long>(committed),
                static_cast<unsigned long long>(aborted), seconds);
  return buf;
}

DriverResult WorkloadDriver::Run(int num_threads, double seconds,
                                 const TxnFn& txn_fn, double warmup_seconds) {
  struct WorkerStats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    Histogram latency;
  };
  std::vector<WorkerStats> stats(static_cast<size_t>(num_threads));
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));

  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0x5EED0000ULL + static_cast<uint64_t>(t) * 7919);
      WorkerStats& my = stats[static_cast<size_t>(t)];
      while (phase.load(std::memory_order_acquire) == 0) {
        (void)txn_fn(rng);
      }
      while (phase.load(std::memory_order_acquire) == 1) {
        Timer txn_timer;
        const Status st = txn_fn(rng);
        my.latency.Add(txn_timer.ElapsedNanos());
        if (st.ok()) {
          ++my.committed;
        } else if (st.IsAborted() || st.IsBusy()) {
          ++my.aborted;
        } else {
          std::fprintf(stderr, "driver: txn failed: %s\n",
                       st.ToString().c_str());
          ++my.aborted;
        }
      }
    });
  }

  if (warmup_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(warmup_seconds));
  }
  Timer run_timer;
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  phase.store(2, std::memory_order_release);
  const double elapsed = run_timer.ElapsedSeconds();
  for (auto& w : workers) w.join();

  DriverResult result;
  result.seconds = elapsed;
  for (const auto& s : stats) {
    result.committed += s.committed;
    result.aborted += s.aborted;
    result.latency_ns.Merge(s.latency);
  }
  return result;
}

}  // namespace spitfire
