#include "workload/driver.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/timer.h"

namespace spitfire {

std::string DriverResult::ToString() const {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "%.0f txn/s (committed=%llu aborted=%llu over %.2fs, "
      "p50=%.1fus p99=%.1fus p999=%.1fus)",
      Throughput(), static_cast<unsigned long long>(committed),
      static_cast<unsigned long long>(aborted), seconds,
      static_cast<double>(latency_ns.Percentile(50)) * 1e-3,
      static_cast<double>(latency_ns.Percentile(99)) * 1e-3,
      static_cast<double>(latency_ns.Percentile(99.9)) * 1e-3);
  return buf;
}

DriverResult WorkloadDriver::Run(int num_threads, double seconds,
                                 const TxnFn& txn_fn, double warmup_seconds,
                                 double slice_seconds) {
  struct WorkerStats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    Histogram latency;
  };
  std::vector<WorkerStats> stats(static_cast<size_t>(num_threads));
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  // Optional throughput-over-time bins (committed per slice of the
  // measurement window); workers flush locally-batched counts on slice
  // change, as in RunPhased.
  const bool sliced = slice_seconds > 0;
  const uint64_t slice_ns =
      sliced ? static_cast<uint64_t>(slice_seconds * 1e9) : 1;
  std::vector<std::atomic<uint64_t>> bins(
      sliced ? static_cast<size_t>(seconds / slice_seconds + 0.5) + 1 : 0);
  std::atomic<uint64_t> measure_start_ns{0};
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));

  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0x5EED0000ULL + static_cast<uint64_t>(t) * 7919);
      WorkerStats& my = stats[static_cast<size_t>(t)];
      while (phase.load(std::memory_order_acquire) == 0) {
        (void)txn_fn(rng);
      }
      size_t cur_slice = 0;
      uint64_t pending = 0;
      const auto flush = [&] {
        if (pending == 0 || bins.empty()) return;
        bins[std::min(cur_slice, bins.size() - 1)].fetch_add(
            pending, std::memory_order_relaxed);
        pending = 0;
      };
      while (phase.load(std::memory_order_acquire) == 1) {
        Timer txn_timer;
        const Status st = txn_fn(rng);
        my.latency.Add(txn_timer.ElapsedNanos());
        if (st.ok()) {
          ++my.committed;
          if (sliced) {
            const uint64_t start =
                measure_start_ns.load(std::memory_order_relaxed);
            const uint64_t now = NowNanos();
            const size_t slice =
                now > start ? static_cast<size_t>((now - start) / slice_ns)
                            : 0;
            if (slice != cur_slice) {
              flush();
              cur_slice = slice;
            }
            ++pending;
          }
        } else if (st.IsAborted() || st.IsBusy()) {
          ++my.aborted;
        } else {
          std::fprintf(stderr, "driver: txn failed: %s\n",
                       st.ToString().c_str());
          ++my.aborted;
        }
      }
      flush();
    });
  }

  if (warmup_seconds > 0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(warmup_seconds));
  }
  Timer run_timer;
  measure_start_ns.store(NowNanos(), std::memory_order_relaxed);
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  phase.store(2, std::memory_order_release);
  const double elapsed = run_timer.ElapsedSeconds();
  for (auto& w : workers) w.join();

  DriverResult result;
  result.seconds = elapsed;
  for (const auto& s : stats) {
    result.committed += s.committed;
    result.aborted += s.aborted;
    result.latency_ns.Merge(s.latency);
  }
  result.slice_ops_per_sec.reserve(bins.size());
  for (const auto& b : bins) {
    result.slice_ops_per_sec.push_back(
        static_cast<double>(b.load(std::memory_order_relaxed)) /
        slice_seconds);
  }
  return result;
}

std::vector<WorkloadDriver::PhaseResult> WorkloadDriver::RunPhased(
    int num_threads, const std::vector<PhaseSpec>& phases,
    double slice_seconds) {
  const size_t num_phases = phases.size();
  std::vector<PhaseResult> results(num_phases);
  if (num_phases == 0 || num_threads <= 0) return results;
  slice_seconds = std::max(1e-3, slice_seconds);
  const uint64_t slice_ns = static_cast<uint64_t>(slice_seconds * 1e9);

  // Shared throughput-over-time bins, one slab per phase. Workers
  // accumulate locally and flush on slice/phase change, so the atomics
  // see one RMW per worker per slice, not per transaction.
  std::vector<std::vector<std::atomic<uint64_t>>> bins(num_phases);
  for (size_t p = 0; p < num_phases; ++p) {
    const size_t n = static_cast<size_t>(
                         phases[p].seconds / slice_seconds + 0.5) +
                     1;
    bins[p] = std::vector<std::atomic<uint64_t>>(std::max<size_t>(1, n));
  }
  // Start timestamp of each phase; entry p+1 is written before phase_idx
  // advances to p+1 (release), so workers entering the phase see it.
  std::vector<std::atomic<uint64_t>> phase_start_ns(num_phases);
  phase_start_ns[0].store(NowNanos(), std::memory_order_relaxed);
  std::atomic<size_t> phase_idx{0};

  struct WorkerStats {
    std::vector<uint64_t> committed, aborted;
  };
  std::vector<WorkerStats> stats(static_cast<size_t>(num_threads));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));

  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0xFA5E0000ULL + static_cast<uint64_t>(t) * 7919);
      WorkerStats& my = stats[static_cast<size_t>(t)];
      my.committed.assign(num_phases, 0);
      my.aborted.assign(num_phases, 0);
      size_t cur_phase = SIZE_MAX;
      size_t cur_slice = 0;
      uint64_t pending = 0;
      const auto flush = [&] {
        if (pending == 0 || cur_phase >= num_phases) return;
        auto& slab = bins[cur_phase];
        bins[cur_phase][std::min(cur_slice, slab.size() - 1)].fetch_add(
            pending, std::memory_order_relaxed);
        pending = 0;
      };
      for (;;) {
        const size_t p = phase_idx.load(std::memory_order_acquire);
        if (p >= num_phases) break;
        const Status st = phases[p].fn(rng);
        const uint64_t now = NowNanos();
        const uint64_t start =
            phase_start_ns[p].load(std::memory_order_relaxed);
        const size_t slice =
            now > start ? static_cast<size_t>((now - start) / slice_ns) : 0;
        if (p != cur_phase || slice != cur_slice) {
          flush();
          cur_phase = p;
          cur_slice = slice;
        }
        if (st.ok()) {
          ++my.committed[p];
          ++pending;
        } else {
          ++my.aborted[p];
        }
      }
      flush();
    });
  }

  for (size_t p = 0; p < num_phases; ++p) {
    Timer phase_timer;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(phases[p].seconds));
    results[p].seconds = phase_timer.ElapsedSeconds();
    if (p + 1 < num_phases) {
      phase_start_ns[p + 1].store(NowNanos(), std::memory_order_relaxed);
    }
    phase_idx.store(p + 1, std::memory_order_release);
  }
  for (auto& w : workers) w.join();

  for (size_t p = 0; p < num_phases; ++p) {
    results[p].name = phases[p].name;
    for (const auto& s : stats) {
      results[p].committed += s.committed[p];
      results[p].aborted += s.aborted[p];
    }
    results[p].slice_ops_per_sec.reserve(bins[p].size());
    for (const auto& b : bins[p]) {
      results[p].slice_ops_per_sec.push_back(
          static_cast<double>(b.load(std::memory_order_relaxed)) /
          slice_seconds);
    }
  }
  return results;
}

DriverResult WorkloadDriver::RunAsyncPageOps(BufferManager* bm,
                                             int num_threads, double seconds,
                                             int ring_depth,
                                             const PageOpFn& op_fn,
                                             double warmup_seconds) {
  // A Busy completion means transient pool/install contention (or miss
  // admission rejecting an over-committed ring); a slot resubmits its op
  // this many times before counting it aborted. Retries are paced by
  // completion arrival — an instantly-rejected resubmission does not count
  // as progress, so the worker falls through to PumpIo below instead of
  // spinning on resubmits — which makes a generous budget cheap.
  constexpr int kOpMaxRetries = 32;

  struct Slot {
    FetchTicket ticket;
    PageOp op;
    uint64_t start_ns = 0;
    int retries = 0;
    bool busy = false;
  };
  struct WorkerStats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    Histogram latency;
  };

  const int depth = std::max(1, ring_depth);
  std::vector<WorkerStats> stats(static_cast<size_t>(num_threads));
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));

  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0xA51D0000ULL + static_cast<uint64_t>(t) * 7919);
      WorkerStats& my = stats[static_cast<size_t>(t)];
      std::vector<Slot> ring(static_cast<size_t>(depth));
      // Mark this worker async-aware up front: simulated device waits on
      // this thread (e.g. a stolen prefetch execution) sleep instead of
      // spinning, letting the ring's other completions overlap.
      (void)bm->PumpIo(/*may_sleep=*/true);

      for (;;) {
        const int ph = phase.load(std::memory_order_acquire);
        bool progressed = false;
        bool any_busy = false;
        int harvested = 0;
        // Once one submission this pass is rejected outright (miss
        // admission: the ring overcommits the pool), every further miss
        // this pass would be rejected too — stop submitting and let the
        // pass fall through to PumpIo. Without this, each completion wakes
        // every worker to re-try its whole ring, and the rejected churn
        // monopolizes the CPU that completions need.
        bool saturated = false;

        for (Slot& s : ring) {
          // Harvest.
          if (s.busy && s.ticket.ready.load(std::memory_order_acquire)) {
            if (s.ticket.status.ok()) {
              s.ticket.guard.Release();
              if (ph == 1) {
                ++my.committed;
                my.latency.Add(NowNanos() - s.start_ns);
              }
              s.busy = false;
              progressed = true;
              ++harvested;
            } else if (s.ticket.status.IsBusy()) {
              if (s.retries >= kOpMaxRetries) {
                if (ph == 1) ++my.aborted;
                s.busy = false;
                progressed = true;
                ++harvested;
              } else if (!saturated) {
                ++s.retries;
                s.ticket.Reset();
                // An instantly-Busy resubmission is NOT progress: counting
                // it would keep the pass "productive" forever and starve
                // the completion pump — the classic 1-core livelock.
                if (bm->SubmitFetch(s.op.pid, s.op.intent, &s.ticket) !=
                        FetchSubmit::kCompleted ||
                    s.ticket.status.ok()) {
                  progressed = true;
                } else {
                  saturated = true;
                }
              }
              // Saturated: slot stays parked (ready, Busy) and is retried
              // on a later pass; retries only count actual submissions.
            } else {
              if (ph == 1) ++my.aborted;
              s.busy = false;
              progressed = true;
              ++harvested;
            }
          }
          // Refill.
          if (!s.busy && ph < 2 && !saturated) {
            s.op = op_fn(rng);
            s.retries = 0;
            s.start_ns = NowNanos();
            s.ticket.Reset();
            if (bm->SubmitFetch(s.op.pid, s.op.intent, &s.ticket) !=
                    FetchSubmit::kCompleted ||
                s.ticket.status.ok()) {
              progressed = true;
            } else {
              saturated = true;
            }
            s.busy = true;
          }
          any_busy |= s.busy;
        }

        if (ph >= 2 && !any_busy) break;  // drained
        if (harvested == 0) {
          // Nothing in the ring completed this pass, so the worker reaps
          // completions itself (submit-and-reap, io_uring style) rather
          // than relying on the background completion thread — on a small
          // core count, N submitters spinning on instant hits would starve
          // it. Sleep only if the pass also submitted nothing: the next
          // event that can change the ring's state is a completion.
          (void)bm->PumpIo(/*may_sleep=*/!progressed);
        }
      }
    });
  }

  if (warmup_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(warmup_seconds));
  }
  Timer run_timer;
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  phase.store(2, std::memory_order_release);
  const double elapsed = run_timer.ElapsedSeconds();
  for (auto& w : workers) w.join();

  DriverResult result;
  result.seconds = elapsed;
  for (const auto& s : stats) {
    result.committed += s.committed;
    result.aborted += s.aborted;
    result.latency_ns.Merge(s.latency);
  }
  return result;
}

DriverResult WorkloadDriver::RunInterleaved(BufferManager* bm,
                                            int num_threads, double seconds,
                                            int ring_depth,
                                            const TxnMachineFactory& factory,
                                            double warmup_seconds,
                                            double slice_seconds) {
  // Slots hold the FetchContext the buffer manager's completer writes
  // into, so they must have stable addresses for the whole run.
  struct Slot {
    FetchContext ctx;
    std::unique_ptr<TxnMachine> machine;
    uint64_t start_ns = 0;
  };
  struct WorkerStats {
    uint64_t committed = 0;
    uint64_t aborted = 0;
    Histogram latency;
  };

  const int depth = std::max(1, ring_depth);
  const bool sliced = slice_seconds > 0;
  const uint64_t slice_ns =
      sliced ? static_cast<uint64_t>(slice_seconds * 1e9) : 1;
  std::vector<std::atomic<uint64_t>> bins(
      sliced ? static_cast<size_t>(seconds / slice_seconds + 0.5) + 1 : 0);
  std::atomic<uint64_t> measure_start_ns{0};
  std::vector<WorkerStats> stats(static_cast<size_t>(num_threads));
  std::atomic<int> phase{0};  // 0 = warmup, 1 = measure, 2 = stop
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(num_threads));

  for (int t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0x17E40000ULL + static_cast<uint64_t>(t) * 7919);
      WorkerStats& my = stats[static_cast<size_t>(t)];
      std::vector<std::unique_ptr<Slot>> ring;
      ring.reserve(static_cast<size_t>(depth));
      for (int i = 0; i < depth; ++i) {
        ring.push_back(std::make_unique<Slot>());
        ring.back()->machine = factory();
      }
      // Mark this worker async-aware up front so simulated device waits
      // on this thread sleep instead of spinning (see RunAsyncPageOps).
      (void)bm->PumpIo(/*may_sleep=*/true);

      size_t cur_slice = 0;
      uint64_t pending = 0;
      const auto flush = [&] {
        if (pending == 0 || bins.empty()) return;
        bins[std::min(cur_slice, bins.size() - 1)].fetch_add(
            pending, std::memory_order_relaxed);
        pending = 0;
      };

      for (;;) {
        const int ph = phase.load(std::memory_order_acquire);
        bool progressed = false;  // any real forward motion this pass
        bool any_active = false;  // some machine still parked or in flight
        int resumed = 0;          // parked machines resumed this pass
        int finished = 0;         // transactions completed this pass

        for (auto& sp : ring) {
          Slot& s = *sp;
          if (s.ctx.pending()) {
            if (!s.ctx.ready()) {
              any_active = true;
              continue;  // still waiting on the device
            }
            // Harvesting a real completion is progress; harvesting an
            // instantly-rejected (Busy) park is not — counting it would
            // spin the pass loop against a saturated admission gate and
            // starve the completion pump (the RunAsyncPageOps livelock).
            const bool was_busy = s.ctx.parked_busy();
            (void)s.ctx.Harvest();
            if (!was_busy) {
              progressed = true;
              ++resumed;
            }
          } else if (!s.machine->in_flight()) {
            if (ph >= 2) continue;  // draining: no new transactions
            s.start_ns = NowNanos();
          }
          const Status st = s.machine->Step(rng, &s.ctx);
          if (st.IsWouldBlock()) {
            any_active = true;
            continue;
          }
          progressed = true;
          ++finished;
          if (ph == 1) {
            my.latency.Add(NowNanos() - s.start_ns);
            if (st.ok()) {
              ++my.committed;
              if (sliced) {
                const uint64_t start =
                    measure_start_ns.load(std::memory_order_relaxed);
                const uint64_t now = NowNanos();
                const size_t slice =
                    now > start
                        ? static_cast<size_t>((now - start) / slice_ns)
                        : 0;
                if (slice != cur_slice) {
                  flush();
                  cur_slice = slice;
                }
                ++pending;
              }
            } else {
              ++my.aborted;
            }
          }
        }

        if (ph >= 2 && !any_active) break;  // drained
        if (resumed == 0 && finished == 0) {
          // Nothing moved: reap completions ourselves (submit-and-reap);
          // sleep only if the pass also made no other progress, since the
          // next state change can then only be a completion firing.
          (void)bm->PumpIo(/*may_sleep=*/!progressed);
        }
      }
      flush();
    });
  }

  if (warmup_seconds > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(warmup_seconds));
  }
  Timer run_timer;
  measure_start_ns.store(NowNanos(), std::memory_order_relaxed);
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  phase.store(2, std::memory_order_release);
  const double elapsed = run_timer.ElapsedSeconds();
  for (auto& w : workers) w.join();

  DriverResult result;
  result.seconds = elapsed;
  for (const auto& s : stats) {
    result.committed += s.committed;
    result.aborted += s.aborted;
    result.latency_ns.Merge(s.latency);
  }
  result.slice_ops_per_sec.reserve(bins.size());
  for (const auto& b : bins) {
    result.slice_ops_per_sec.push_back(
        static_cast<double>(b.load(std::memory_order_relaxed)) /
        slice_seconds);
  }
  return result;
}

}  // namespace spitfire
