#ifndef SPITFIRE_WORKLOAD_YCSB_H_
#define SPITFIRE_WORKLOAD_YCSB_H_

#include <string>

#include "common/random.h"
#include "db/database.h"

namespace spitfire {

// YCSB (Cooper et al. [6]) as configured in Section 6.1: one table of
// tuples with a 4 B key and ten 100 B string columns (~1 KB per tuple),
// keys drawn from a scrambled zipfian distribution, and two transaction
// types (point read, point update). The three mixtures are:
//   YCSB-RO  100% reads
//   YCSB-BA   50% reads, 50% updates
//   YCSB-WH   10% reads, 90% updates
struct YcsbConfig {
  uint64_t num_tuples = 100'000;
  double zipf_theta = 0.3;
  double read_ratio = 1.0;
  uint32_t table_id = 1;

  static YcsbConfig ReadOnly(uint64_t n = 100'000) {
    return {n, 0.3, 1.0, 1};
  }
  static YcsbConfig Balanced(uint64_t n = 100'000) { return {n, 0.3, 0.5, 1}; }
  static YcsbConfig WriteHeavy(uint64_t n = 100'000) {
    return {n, 0.3, 0.1, 1};
  }
};

class YcsbWorkload {
 public:
  static constexpr size_t kColumns = 10;
  static constexpr size_t kColumnSize = 100;
  static constexpr size_t kTupleSize = kColumns * kColumnSize;

  YcsbWorkload(Database* db, const YcsbConfig& config);

  // Creates the table and bulk-loads num_tuples records.
  Status Load();

  // Executes one YCSB transaction with this thread's RNG. Returns OK on
  // commit, Aborted on an MVTO conflict (the transaction is rolled back).
  Status RunTransaction(Xoshiro256& rng);

  // Touches every tuple once (used to warm the buffer pool).
  Status WarmUp();

  const YcsbConfig& config() const { return config_; }
  Table* table() { return table_; }

 private:
  uint64_t NextKey(Xoshiro256& rng) { return zipf_.Next(rng); }
  static void FillTuple(Xoshiro256& rng, std::byte* out);

  Database* db_;
  YcsbConfig config_;
  Table* table_ = nullptr;
  ScrambledZipfianGenerator zipf_;
};

}  // namespace spitfire

#endif  // SPITFIRE_WORKLOAD_YCSB_H_
