#ifndef SPITFIRE_WORKLOAD_YCSB_H_
#define SPITFIRE_WORKLOAD_YCSB_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "db/database.h"
#include "workload/txn_machine.h"

namespace spitfire {

// YCSB (Cooper et al. [6]) as configured in Section 6.1: one table of
// tuples with a 4 B key and ten 100 B string columns (~1 KB per tuple),
// keys drawn from a scrambled zipfian distribution, and two transaction
// types (point read, point update). The three mixtures are:
//   YCSB-RO  100% reads
//   YCSB-BA   50% reads, 50% updates
//   YCSB-WH   10% reads, 90% updates
struct YcsbConfig {
  uint64_t num_tuples = 100'000;
  double zipf_theta = 0.3;
  double read_ratio = 1.0;
  uint32_t table_id = 1;
  // Fraction of transactions that run a short range scan instead of a
  // point op (YCSB-E flavor); the remainder splits read/update by
  // read_ratio. Defaults preserve the original two-op mixes.
  double scan_ratio = 0.0;
  uint64_t scan_length = 100;

  static YcsbConfig ReadOnly(uint64_t n = 100'000) {
    return {n, 0.3, 1.0, 1};
  }
  static YcsbConfig Balanced(uint64_t n = 100'000) { return {n, 0.3, 0.5, 1}; }
  static YcsbConfig WriteHeavy(uint64_t n = 100'000) {
    return {n, 0.3, 0.1, 1};
  }
};

class YcsbWorkload {
 public:
  static constexpr size_t kColumns = 10;
  static constexpr size_t kColumnSize = 100;
  static constexpr size_t kTupleSize = kColumns * kColumnSize;

  YcsbWorkload(Database* db, const YcsbConfig& config);

  // Creates the table and bulk-loads num_tuples records.
  Status Load();

  // Executes one YCSB transaction with this thread's RNG. Returns OK on
  // commit, Aborted on an MVTO conflict (the transaction is rolled back).
  Status RunTransaction(Xoshiro256& rng);

  // Touches every tuple once (used to warm the buffer pool).
  Status WarmUp();

  const YcsbConfig& config() const { return config_; }
  Table* table() { return table_; }
  Database* db() { return db_; }

  // Draws a key from the workload's zipfian (shared with the interleaved
  // machine below so both executors sample the same distribution).
  uint64_t SampleKey(Xoshiro256& rng) { return zipf_.Next(rng); }

 private:
  uint64_t NextKey(Xoshiro256& rng) { return zipf_.Next(rng); }
  static void FillTuple(Xoshiro256& rng, std::byte* out);

  Database* db_;
  YcsbConfig config_;
  Table* table_ = nullptr;
  ScrambledZipfianGenerator zipf_;
};

// One YCSB transaction as a parked continuation (see TxnMachine): phases
// kRead → [kUpdate] → kCommit, or kScan → kCommit for the scan flavor.
// All random decisions (key, op kind, new column value) are drawn when the
// transaction begins, so a phase re-run after a parked miss replays the
// identical operation. Running every machine with ring depth 1 on a
// blocking driver is behaviorally the K=1 degenerate case of
// YcsbWorkload::RunTransaction.
class YcsbTxnMachine : public TxnMachine {
 public:
  explicit YcsbTxnMachine(YcsbWorkload* workload);

  Status Step(Xoshiro256& rng, FetchContext* ctx) override;
  void Cancel() override;
  bool in_flight() const override { return txn_ != nullptr; }

 private:
  enum class Phase : uint8_t { kRead, kUpdate, kScan, kCommit };

  Status Finish(const Status& st);

  YcsbWorkload* w_;
  std::unique_ptr<Transaction> txn_;
  Phase phase_ = Phase::kRead;
  uint64_t key_ = 0;
  bool is_read_ = true;
  uint64_t update_value_ = 0;
  std::vector<std::byte> tuple_;
};

}  // namespace spitfire

#endif  // SPITFIRE_WORKLOAD_YCSB_H_
