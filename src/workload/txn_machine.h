#ifndef SPITFIRE_WORKLOAD_TXN_MACHINE_H_
#define SPITFIRE_WORKLOAD_TXN_MACHINE_H_

#include <functional>
#include <memory>

#include "buffer/buffer_manager.h"
#include "common/random.h"
#include "common/status.h"

namespace spitfire {

// A transaction procedure refactored into a resumable state machine, the
// unit the interleaved executor schedules (ISSUE: interleaved transaction
// execution). One worker thread drives a ring of K machines: instead of
// blocking on a buffer miss, the running machine parks the miss on its
// FetchContext, remembers which step to restart, and returns WouldBlock so
// the worker can advance a sibling while the fetch is in flight.
//
// Contract:
//  - Step() drives the current transaction as far as it can go. It begins
//    a fresh transaction if none is in flight (drawing all random
//    decisions up front, so a parked step re-runs deterministically) and
//    returns:
//      OK          — the transaction committed; the machine is idle again.
//      Aborted     — the transaction aborted and was rolled back; idle.
//      WouldBlock  — a buffer miss parked on `ctx`; the machine stays
//                    in flight. The caller must wait for ctx->ready(),
//                    Harvest() it, and call Step() again — with the SAME
//                    machine and context — to resume.
//    `ctx` must not be pending on entry (the caller harvests completions;
//    the machine only submits through it).
//  - Exactly-once: a machine phase performs reads followed by at most one
//    write, the write last, and advances only after the write succeeds.
//    Since table/index operations surface WouldBlock only before their
//    side effects, re-running a phase after a park never double-applies
//    (no next_o_id re-roll, no double stock decrement).
//  - Cancel() aborts any in-flight transaction and resets the machine.
//    The caller must drain the context first (FetchContext::CancelSync)
//    so no parked fetch still targets it.
class TxnMachine {
 public:
  virtual ~TxnMachine() = default;
  virtual Status Step(Xoshiro256& rng, FetchContext* ctx) = 0;
  virtual void Cancel() = 0;
  virtual bool in_flight() const = 0;
};

// Creates one machine per ring slot; called once per slot per worker.
using TxnMachineFactory = std::function<std::unique_ptr<TxnMachine>()>;

}  // namespace spitfire

#endif  // SPITFIRE_WORKLOAD_TXN_MACHINE_H_
