#include "workload/ycsb.h"

#include <cstring>

namespace spitfire {

YcsbWorkload::YcsbWorkload(Database* db, const YcsbConfig& config)
    : db_(db),
      config_(config),
      zipf_(config.num_tuples, config.zipf_theta) {}

void YcsbWorkload::FillTuple(Xoshiro256& rng, std::byte* out) {
  // Ten columns of random printable data.
  for (size_t c = 0; c < kColumns; ++c) {
    std::byte* col = out + c * kColumnSize;
    for (size_t i = 0; i < kColumnSize; i += 8) {
      const uint64_t v = rng.Next();
      std::memcpy(col + i, &v, std::min<size_t>(8, kColumnSize - i));
    }
  }
}

Status YcsbWorkload::Load() {
  auto t_r = db_->CreateTable(config_.table_id, kTupleSize);
  SPITFIRE_RETURN_NOT_OK(t_r.status());
  table_ = t_r.value();

  Xoshiro256 rng(0xBADC0DE);
  std::vector<std::byte> tuple(kTupleSize);
  constexpr uint64_t kBatch = 1024;
  for (uint64_t k = 0; k < config_.num_tuples;) {
    auto txn = db_->Begin();
    const uint64_t end = std::min(config_.num_tuples, k + kBatch);
    for (; k < end; ++k) {
      FillTuple(rng, tuple.data());
      const Status st = table_->Insert(txn.get(), k, tuple.data());
      if (!st.ok()) {
        (void)db_->Abort(txn.get());
        return st;
      }
    }
    SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
  }
  return Status::OK();
}

Status YcsbWorkload::WarmUp() {
  std::vector<std::byte> tuple(kTupleSize);
  auto txn = db_->Begin();
  for (uint64_t k = 0; k < config_.num_tuples; ++k) {
    const Status st = table_->Read(txn.get(), k, tuple.data());
    if (!st.ok() && !st.IsNotFound()) {
      (void)db_->Abort(txn.get());
      return st;
    }
  }
  return db_->Commit(txn.get());
}

Status YcsbWorkload::RunTransaction(Xoshiro256& rng) {
  SPITFIRE_CHECK(table_ != nullptr);
  const uint64_t key = NextKey(rng);
  const bool is_read = rng.Bernoulli(config_.read_ratio);
  auto txn = db_->Begin();
  std::vector<std::byte> tuple(kTupleSize);
  Status st;
  if (is_read) {
    st = table_->Read(txn.get(), key, tuple.data());
  } else {
    st = table_->Read(txn.get(), key, tuple.data());
    if (st.ok()) {
      // Modify one column, as in the paper's update transaction.
      const uint64_t v = rng.Next();
      std::memcpy(tuple.data() + (key % kColumns) * kColumnSize, &v,
                  sizeof(v));
      st = table_->Update(txn.get(), key, tuple.data());
    }
  }
  if (!st.ok()) {
    (void)db_->Abort(txn.get());
    return st.IsAborted() ? st : Status::Aborted(st.message());
  }
  return db_->Commit(txn.get());
}

}  // namespace spitfire
