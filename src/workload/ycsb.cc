#include "workload/ycsb.h"

#include <cstring>

namespace spitfire {

YcsbWorkload::YcsbWorkload(Database* db, const YcsbConfig& config)
    : db_(db),
      config_(config),
      zipf_(config.num_tuples, config.zipf_theta) {}

void YcsbWorkload::FillTuple(Xoshiro256& rng, std::byte* out) {
  // Ten columns of random printable data.
  for (size_t c = 0; c < kColumns; ++c) {
    std::byte* col = out + c * kColumnSize;
    for (size_t i = 0; i < kColumnSize; i += 8) {
      const uint64_t v = rng.Next();
      std::memcpy(col + i, &v, std::min<size_t>(8, kColumnSize - i));
    }
  }
}

Status YcsbWorkload::Load() {
  auto t_r = db_->CreateTable(config_.table_id, kTupleSize);
  SPITFIRE_RETURN_NOT_OK(t_r.status());
  table_ = t_r.value();

  Xoshiro256 rng(0xBADC0DE);
  std::vector<std::byte> tuple(kTupleSize);
  constexpr uint64_t kBatch = 1024;
  for (uint64_t k = 0; k < config_.num_tuples;) {
    auto txn = db_->Begin();
    const uint64_t end = std::min(config_.num_tuples, k + kBatch);
    for (; k < end; ++k) {
      FillTuple(rng, tuple.data());
      const Status st = table_->Insert(txn.get(), k, tuple.data());
      if (!st.ok()) {
        (void)db_->Abort(txn.get());
        return st;
      }
    }
    SPITFIRE_RETURN_NOT_OK(db_->Commit(txn.get()));
  }
  return Status::OK();
}

Status YcsbWorkload::WarmUp() {
  std::vector<std::byte> tuple(kTupleSize);
  auto txn = db_->Begin();
  for (uint64_t k = 0; k < config_.num_tuples; ++k) {
    const Status st = table_->Read(txn.get(), k, tuple.data());
    if (!st.ok() && !st.IsNotFound()) {
      (void)db_->Abort(txn.get());
      return st;
    }
  }
  return db_->Commit(txn.get());
}

Status YcsbWorkload::RunTransaction(Xoshiro256& rng) {
  SPITFIRE_CHECK(table_ != nullptr);
  const uint64_t key = NextKey(rng);
  const bool is_scan =
      config_.scan_ratio > 0 && rng.Bernoulli(config_.scan_ratio);
  const bool is_read = rng.Bernoulli(config_.read_ratio);
  auto txn = db_->Begin();
  std::vector<std::byte> tuple(kTupleSize);
  Status st;
  if (is_scan) {
    // Short range scan starting at the zipfian key (YCSB-E flavor);
    // aggregate the first word of each row so the reads are not dead.
    uint64_t checksum = 0;
    st = table_->Scan(txn.get(), key, key + config_.scan_length - 1,
                      [&](uint64_t, const void* t) {
                        uint64_t v;
                        std::memcpy(&v, t, sizeof(v));
                        checksum += v;
                        return true;
                      });
    (void)checksum;
  } else if (is_read) {
    st = table_->Read(txn.get(), key, tuple.data());
  } else {
    st = table_->Read(txn.get(), key, tuple.data());
    if (st.ok()) {
      // Modify one column, as in the paper's update transaction.
      const uint64_t v = rng.Next();
      std::memcpy(tuple.data() + (key % kColumns) * kColumnSize, &v,
                  sizeof(v));
      st = table_->Update(txn.get(), key, tuple.data());
    }
  }
  if (!st.ok()) {
    (void)db_->Abort(txn.get());
    return st.IsAborted() ? st : Status::Aborted(st.message());
  }
  return db_->Commit(txn.get());
}

// ---------------------------------------------------------------------------
// Interleaved machine
// ---------------------------------------------------------------------------

YcsbTxnMachine::YcsbTxnMachine(YcsbWorkload* workload)
    : w_(workload), tuple_(YcsbWorkload::kTupleSize) {}

Status YcsbTxnMachine::Finish(const Status& st) {
  // Commit/abort processing is always blocking: the pages it touches were
  // just written by this transaction and are almost surely resident.
  txn_->fetch_ctx = nullptr;
  if (st.ok()) {
    const Status cst = w_->db()->Commit(txn_.get());
    txn_.reset();
    return cst;
  }
  (void)w_->db()->Abort(txn_.get());
  txn_.reset();
  return st.IsAborted() ? st : Status::Aborted(st.message());
}

void YcsbTxnMachine::Cancel() {
  if (txn_ == nullptr) return;
  txn_->fetch_ctx = nullptr;
  (void)w_->db()->Abort(txn_.get());
  txn_.reset();
}

Status YcsbTxnMachine::Step(Xoshiro256& rng, FetchContext* ctx) {
  SPITFIRE_DCHECK(ctx == nullptr || !ctx->pending());
  const YcsbConfig& cfg = w_->config();
  if (txn_ == nullptr) {
    // Draw every decision up front: a phase re-run after a park replays
    // the identical operation.
    key_ = w_->SampleKey(rng);
    is_read_ = rng.Bernoulli(cfg.read_ratio);
    update_value_ = rng.Next();
    phase_ = cfg.scan_ratio > 0 && rng.Bernoulli(cfg.scan_ratio)
                 ? Phase::kScan
                 : Phase::kRead;
    txn_ = w_->db()->Begin();
  }
  txn_->fetch_ctx = ctx;
  Table* table = w_->table();
  for (;;) {
    switch (phase_) {
      case Phase::kRead: {
        const Status st = table->Read(txn_.get(), key_, tuple_.data());
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        if (is_read_) {
          phase_ = Phase::kCommit;
          break;
        }
        std::memcpy(
            tuple_.data() +
                (key_ % YcsbWorkload::kColumns) * YcsbWorkload::kColumnSize,
            &update_value_, sizeof(update_value_));
        phase_ = Phase::kUpdate;
        break;
      }
      case Phase::kUpdate: {
        const Status st = table->Update(txn_.get(), key_, tuple_.data());
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        phase_ = Phase::kCommit;
        break;
      }
      case Phase::kScan: {
        // The aggregate is recomputed from scratch on every attempt, so a
        // parked scan that re-observes earlier rows stays exactly-once at
        // the transaction level.
        uint64_t checksum = 0;
        const Status st =
            table->Scan(txn_.get(), key_, key_ + cfg.scan_length - 1,
                        [&](uint64_t, const void* t) {
                          uint64_t v;
                          std::memcpy(&v, t, sizeof(v));
                          checksum += v;
                          return true;
                        });
        if (st.IsWouldBlock()) return st;
        if (!st.ok()) return Finish(st);
        (void)checksum;
        phase_ = Phase::kCommit;
        break;
      }
      case Phase::kCommit:
        return Finish(Status::OK());
    }
  }
}

}  // namespace spitfire
