#ifndef SPITFIRE_BUFFER_CLOCK_REPLACER_H_
#define SPITFIRE_BUFFER_CLOCK_REPLACER_H_

#include <atomic>
#include <string>

#include "buffer/replacer.h"
#include "common/constants.h"
#include "container/concurrent_bitmap.h"

namespace spitfire {

// Concurrent CLOCK page replacement (Section 3 / [34]), with reference
// bits in a lock-free bitmap as in NB-GCLOCK [40]. Page hits set the
// frame's reference bit without any latch. Eviction sweeps the clock hand:
// frames with a set bit get a second chance (bit cleared); frames with a
// clear bit are offered to the caller's try_evict callback, which attempts
// the actual (latched) eviction and may refuse (pinned / latched / racing).
class ClockReplacer final : public Replacer {
 public:
  explicit ClockReplacer(size_t num_frames)
      : num_frames_(num_frames), ref_bits_(num_frames ? num_frames : 1) {}
  SPITFIRE_DISALLOW_COPY_AND_MOVE(ClockReplacer);

  using Replacer::PickVictim;

  void RecordAccess(frame_id_t f) override { ref_bits_.Set(f); }
  // CLOCK makes no first-touch distinction: an install counts as a hit.
  void RecordInstall(frame_id_t f) override { ref_bits_.Set(f); }

  // Sweeps until try_evict succeeds or `max_rounds` full revolutions pass.
  // Returns the evicted frame id or kInvalidFrameId.
  frame_id_t PickVictim(TryEvictRef try_evict, int max_rounds) override {
    if (num_frames_ == 0) return kInvalidFrameId;
    const size_t limit = num_frames_ * static_cast<size_t>(max_rounds);
    for (size_t step = 0; step < limit; ++step) {
      const size_t pos =
          hand_.fetch_add(1, std::memory_order_relaxed) % num_frames_;
      const frame_id_t f = static_cast<frame_id_t>(pos);
      if (ref_bits_.TestAndClear(f)) continue;  // second chance
      if (try_evict(f)) return f;
    }
    return kInvalidFrameId;
  }

  size_t num_frames() const override { return num_frames_; }
  size_t ReferencedCount() const override { return ref_bits_.CountSet(); }
  ReplacerKind kind() const override { return ReplacerKind::kClock; }
  std::string DebugString() const override;

 private:
  const size_t num_frames_;
  ConcurrentBitmap ref_bits_;
  std::atomic<size_t> hand_{0};
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_CLOCK_REPLACER_H_
