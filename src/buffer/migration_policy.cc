#include "buffer/migration_policy.h"

// MigrationPolicy is header-only; this file anchors the translation unit.
