#ifndef SPITFIRE_BUFFER_PAGE_DESCRIPTOR_H_
#define SPITFIRE_BUFFER_PAGE_DESCRIPTOR_H_

#include <atomic>

#include "common/constants.h"
#include "common/macros.h"
#include "hymem/cacheline_page.h"
#include "sync/optimistic_latch.h"
#include "sync/spin_latch.h"

namespace spitfire {

// Representation of a page's DRAM copy.
//   kNone              — not DRAM resident
//   kFull              — a whole 16 KB frame
//   kCacheLineGrained  — a full frame, but only some loading units are
//                        resident (HyMem Figure 2a)
//   kMini              — a mini page holding at most sixteen units
//                        (HyMem Figure 2b)
enum class DramMode : uint8_t {
  kNone = 0,
  kFull = 1,
  kCacheLineGrained = 2,
  kMini = 3,
};

// Residency state of a page on one buffered tier. `pins` uses atomics so
// unpinning never takes a latch; all other transitions happen under the
// tier latch in the owning SharedPageDescriptor.
struct TierState {
  std::atomic<frame_id_t> frame{kInvalidFrameId};
  std::atomic<uint32_t> pins{0};
  std::atomic<bool> dirty{false};

  bool Resident() const {
    return frame.load(std::memory_order_acquire) != kInvalidFrameId;
  }
};

// The shared page descriptor of Figure 4: one per logical page, stored in
// the DRAM-resident mapping table. It carries one latch per storage tier —
// a migration from tier X to tier Y takes only the X and Y latches, so
// e.g. an NVM→SSD write-back never blocks operations on the DRAM copy
// (Section 5.2, "Thread-Safe Page Migration").
struct SharedPageDescriptor {
  explicit SharedPageDescriptor(page_id_t id) : pid(id) {}
  SPITFIRE_DISALLOW_COPY_AND_MOVE(SharedPageDescriptor);

  const page_id_t pid;

  // Tier latches (latch_dram / latch_nvm / latch_ssd in Figure 4).
  // Lock order: DRAM before NVM before SSD.
  SpinLatch dram_latch;
  SpinLatch nvm_latch;
  SpinLatch ssd_latch;

  // Version latch for optimistic lock coupling by indexes built on top of
  // the buffer manager. Stable across migrations because the descriptor
  // never moves.
  OptimisticLatch version_latch;

  TierState dram;
  TierState nvm;

  // --- DRAM representation details, guarded by dram_latch ---
  std::atomic<DramMode> dram_mode{DramMode::kNone};
  // Mini-page slot id when dram_mode == kMini (frame is then unused).
  uint32_t mini_id = 0;
  // Resident/dirty unit masks when dram_mode == kCacheLineGrained.
  CacheLineState cl;

  bool DramResident() const {
    return dram_mode.load(std::memory_order_acquire) != DramMode::kNone;
  }
  bool NvmResident() const { return nvm.Resident(); }
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_PAGE_DESCRIPTOR_H_
