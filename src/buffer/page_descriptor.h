#ifndef SPITFIRE_BUFFER_PAGE_DESCRIPTOR_H_
#define SPITFIRE_BUFFER_PAGE_DESCRIPTOR_H_

#include <atomic>

#include "common/constants.h"
#include "common/macros.h"
#include "hymem/cacheline_page.h"
#include "sync/optimistic_latch.h"
#include "sync/spin_latch.h"

namespace spitfire {

// Representation of a page's copy on a buffered tier.
//   kNone              — not resident on this tier
//   kFull              — a whole 16 KB frame
//   kCacheLineGrained  — a full frame, but only some loading units are
//                        resident (HyMem Figure 2a; DRAM only)
//   kMini              — a mini page holding at most sixteen units
//                        (HyMem Figure 2b; DRAM only)
// NVM copies only use kNone / kFull.
enum class DramMode : uint8_t {
  kNone = 0,
  kFull = 1,
  kCacheLineGrained = 2,
  kMini = 3,
};

// Residency state of a page on one buffered tier, built around one packed
// 64-bit atomic state word so that the buffer-hit path is latch-free:
//
//      63                    18 17    16 15           0
//     [ epoch                  | mode   | pin count    ]
//
// * `pins`  — reference count of outstanding PageGuards on this copy.
// * `mode`  — the DramMode of the copy; kNone means not resident.
// * `epoch` — bumped every time the copy is retired (evicted / migrated
//             away). Because a pin is a CAS on the WHOLE word, a pin taken
//             against a stale sample fails if the frame was retired (and
//             possibly reinstalled) in between: the epoch differs. This is
//             what makes TryPin safe without the tier latch (no ABA).
//
// Concurrency protocol (see DESIGN.md, "Concurrency protocol"):
// * TryPin is a lone CAS: it succeeds only if the copy is resident and the
//   word (epoch included) is unchanged since it was sampled. Success uses
//   memory_order_acquire — the pin CAS is the load that licenses reading
//   `frame` and the page bytes, so it must pair with the release in
//   Publish() that made them visible.
// * Unpin is fetch_sub(release): it publishes the holder's page writes to
//   whoever observes the count at zero next.
// * TryRetire is only called by the slow path (under the tier latch). It
//   atomically checks pins == 0 and unpublishes the copy (mode := kNone,
//   epoch++). The CAS uses acquire (pairs with the unpinners' releases, so
//   the retiring thread sees all guard-holder writes before writing the
//   page back) and fails if a concurrent TryPin sneaked in — pin-takers
//   and the evictor race on the same word, so neither can miss the other.
// * Publish / mode changes happen only under the tier latch.
//
// All remaining per-tier fields (`frame`, `dirty`) are written on the slow
// path before the word publishes the copy, and read by fast-path holders
// only while they hold a pin.
struct TierState {
  static constexpr uint64_t kPinsMask = 0xFFFFull;
  static constexpr int kModeShift = 16;
  static constexpr uint64_t kModeMask = 0x3ull << kModeShift;
  static constexpr int kEpochShift = 18;

  static DramMode ModeOf(uint64_t w) {
    return static_cast<DramMode>((w >> kModeShift) & 0x3);
  }
  static uint32_t PinsOf(uint64_t w) {
    return static_cast<uint32_t>(w & kPinsMask);
  }
  static uint64_t Pack(DramMode m, uint32_t pins, uint64_t epoch) {
    return (epoch << kEpochShift) |
           (static_cast<uint64_t>(m) << kModeShift) | pins;
  }

  std::atomic<uint64_t> word{0};
  std::atomic<frame_id_t> frame{kInvalidFrameId};
  std::atomic<bool> dirty{false};

  // Latch-free pin. Returns the mode pinned, or kNone if the copy is not
  // resident (the caller must take the slow path).
  DramMode TryPin() {
    uint64_t w = word.load(std::memory_order_relaxed);
    for (;;) {
      const DramMode m = ModeOf(w);
      if (m == DramMode::kNone) return DramMode::kNone;
      if (SPITFIRE_UNLIKELY(PinsOf(w) == kPinsMask)) {
        // Pin count saturated; wait for an unpin.
        __builtin_ia32_pause();
        w = word.load(std::memory_order_relaxed);
        continue;
      }
      if (word.compare_exchange_weak(w, w + 1, std::memory_order_acquire,
                                     std::memory_order_relaxed)) {
        return m;
      }
    }
  }

  void Unpin() {
    const uint64_t prev = word.fetch_sub(1, std::memory_order_release);
    SPITFIRE_DCHECK(PinsOf(prev) > 0);
    (void)prev;
  }

  // Atomically unpublishes the copy iff it is resident and unpinned:
  // mode := kNone, pins stays 0, epoch++. Returns false if a pin exists
  // (or raced in) or the copy is already gone. Caller holds the tier
  // latch; on success it exclusively owns the frame contents until it
  // frees the frame or calls Publish again.
  bool TryRetire() {
    uint64_t w = word.load(std::memory_order_acquire);
    for (;;) {
      if (PinsOf(w) != 0 || ModeOf(w) == DramMode::kNone) return false;
      const uint64_t nw = Pack(DramMode::kNone, 0, (w >> kEpochShift) + 1);
      if (word.compare_exchange_weak(w, nw, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return true;
      }
    }
  }

  // Publishes a resident copy with `initial_pins` pins already granted to
  // the caller. Caller holds the tier latch and mode is currently kNone,
  // so no other thread can write the word: a plain release store races
  // only with failed TryPin CASes.
  void Publish(DramMode m, uint32_t initial_pins) {
    const uint64_t w = word.load(std::memory_order_relaxed);
    SPITFIRE_DCHECK(ModeOf(w) == DramMode::kNone && PinsOf(w) == 0);
    word.store(Pack(m, initial_pins, w >> kEpochShift),
               std::memory_order_release);
  }

  // Switches the mode of a resident copy (kMini → kFull promotion) while
  // preserving concurrent pin traffic. Caller holds the tier latch.
  void SwitchMode(DramMode to) {
    uint64_t w = word.load(std::memory_order_relaxed);
    for (;;) {
      SPITFIRE_DCHECK(ModeOf(w) != DramMode::kNone);
      const uint64_t nw = (w & ~kModeMask)
                          | (static_cast<uint64_t>(to) << kModeShift);
      if (word.compare_exchange_weak(w, nw, std::memory_order_release,
                                     std::memory_order_relaxed)) {
        return;
      }
    }
  }

  DramMode Mode() const {
    return ModeOf(word.load(std::memory_order_acquire));
  }
  uint32_t Pins() const { return PinsOf(word.load(std::memory_order_acquire)); }
  bool Resident() const { return Mode() != DramMode::kNone; }
};

// SSD-fetch state of a page (guarded by SharedPageDescriptor::io_latch).
// kIdle — no fetch in flight; a miss may become the submission leader.
// kIoInflight — a leader has submitted the device read; later misses
// enqueue a FetchTicket on `io_waiters` instead of duplicating the I/O,
// and the completion installs the page, pins it for every waiter, and
// fires their continuations.
enum class IoState : uint8_t { kIdle = 0, kIoInflight = 1 };

// Continuation of one asynchronous fetch (declared in buffer_manager.h).
struct FetchTicket;

// The shared page descriptor of Figure 4: one per logical page, stored in
// the DRAM-resident mapping table. It carries one latch per storage tier —
// a migration from tier X to tier Y takes only the X and Y latches, so
// e.g. an NVM→SSD write-back never blocks operations on the DRAM copy
// (Section 5.2, "Thread-Safe Page Migration"). Buffer hits never take a
// latch at all: they pin through the tier's packed state word (above).
struct SharedPageDescriptor {
  explicit SharedPageDescriptor(page_id_t id) : pid(id) {}
  SPITFIRE_DISALLOW_COPY_AND_MOVE(SharedPageDescriptor);

  const page_id_t pid;

  // Tier latches (latch_dram / latch_nvm / latch_ssd in Figure 4).
  // Lock order: DRAM before NVM before SSD.
  SpinLatch dram_latch;
  SpinLatch nvm_latch;
  SpinLatch ssd_latch;

  // Version latch for optimistic lock coupling by indexes built on top of
  // the buffer manager. Stable across migrations because the descriptor
  // never moves.
  OptimisticLatch version_latch;

  TierState dram;
  TierState nvm;

  // --- DRAM representation details, guarded by dram_latch ---
  // Mini-page slot id when the DRAM mode is kMini (frame is then unused).
  // Atomic only so the pin fast path may read it sloppily for replacer
  // accounting; authoritative updates happen under dram_latch.
  std::atomic<uint32_t> mini_id{0};
  // Resident/dirty unit masks when the DRAM mode is kCacheLineGrained.
  CacheLineState cl;

  // --- Asynchronous miss path, guarded by io_latch ---
  // io_latch orders strictly AFTER the tier latches: the completion takes
  // it inside dram_latch+nvm_latch (to detach waiters with no gap between
  // install and wake-up); submission takes it alone and never acquires a
  // tier latch while holding it.
  SpinLatch io_latch;
  IoState io_state = IoState::kIdle;
  // Intrusive singly-linked list of continuations waiting on the in-flight
  // fetch (LIFO; order is irrelevant — every waiter gets its own pin).
  FetchTicket* io_waiters = nullptr;

  bool DramResident() const { return dram.Resident(); }
  bool NvmResident() const { return nvm.Resident(); }
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_PAGE_DESCRIPTOR_H_
