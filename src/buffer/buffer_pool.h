#ifndef SPITFIRE_BUFFER_BUFFER_POOL_H_
#define SPITFIRE_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <memory>
#include <vector>

#include "buffer/clock_replacer.h"
#include "buffer/page_descriptor.h"
#include "common/constants.h"
#include "container/mpmc_queue.h"
#include "storage/device.h"

namespace spitfire {

// A buffer pool of fixed 16 KB frames carved out of one device (the DRAM
// pool out of a DramDevice, the NVM pool out of an NvmDevice). Tracks the
// free-frame list, the CLOCK reference bits, and the frame → descriptor
// back-links that eviction follows.
//
// NVM pools additionally maintain a *persistent frame table* at the start
// of the device: one page id per frame, updated and persisted whenever a
// frame's owner changes. Recovery scans this table to rebuild the mapping
// table after a crash (Section 5.2, "Recovery").
class BufferPool {
 public:
  BufferPool(Tier tier, Device* device, size_t num_frames,
             bool persistent_frame_table);
  SPITFIRE_DISALLOW_COPY_AND_MOVE(BufferPool);

  Tier tier() const { return tier_; }
  size_t num_frames() const { return num_frames_; }
  Device* device() { return device_; }

  std::byte* FramePtr(frame_id_t f) {
    return device_->DirectPointer(FrameOffset(f));
  }
  uint64_t FrameOffset(frame_id_t f) const {
    return frames_base_ + static_cast<uint64_t>(f) * kPageSize;
  }

  // Pops a frame from the free list. Returns false if none are free (the
  // caller must evict).
  bool TryAllocateFrame(frame_id_t* f) {
    if (!free_list_.TryPop(f)) return false;
    const bool was_free = in_free_list_[*f].exchange(false);
    SPITFIRE_CHECK(was_free);
    free_count_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  void FreeFrame(frame_id_t f) {
    SetOwner(f, nullptr, kInvalidPageId);
    const bool was_free = in_free_list_[f].exchange(true);
    SPITFIRE_CHECK(!was_free && "double free of buffer frame");
    // TryPush can fail transiently while a lapped consumer is mid-pop;
    // the pool never holds more frames than capacity, so spin.
    while (!free_list_.TryPush(f)) {
      __builtin_ia32_pause();
    }
    free_count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Approximate number of free frames; the background writer compares it
  // against its low watermark.
  size_t FreeCount() const {
    return free_count_.load(std::memory_order_relaxed);
  }

  // Registers/clears the descriptor owning a frame. For NVM pools this
  // also persists the frame-table entry.
  void SetOwner(frame_id_t f, SharedPageDescriptor* desc, page_id_t pid);
  SharedPageDescriptor* Owner(frame_id_t f) const {
    return owners_[f].load(std::memory_order_acquire);
  }

  ClockReplacer& replacer() { return replacer_; }

  // Space the frame region occupies on the device, including the frame
  // table if present.
  static uint64_t RequiredCapacity(size_t num_frames,
                                   bool persistent_frame_table);

  // Reads the persistent frame table entry (NVM pools only); used by
  // recovery. Returns kInvalidPageId for free frames.
  page_id_t PersistedOwner(frame_id_t f) const;

 private:
  uint64_t FrameTableEntryOffset(frame_id_t f) const {
    return static_cast<uint64_t>(f) * sizeof(page_id_t);
  }

  const Tier tier_;
  Device* const device_;
  const size_t num_frames_;
  const bool persistent_frame_table_;
  uint64_t frames_base_ = 0;

  MpmcQueue<frame_id_t> free_list_;
  std::atomic<size_t> free_count_{0};
  ClockReplacer replacer_;
  std::vector<std::atomic<SharedPageDescriptor*>> owners_;
  // Guards against frame double-free bugs (one flag per frame).
  std::vector<std::atomic<bool>> in_free_list_;
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_BUFFER_POOL_H_
