#ifndef SPITFIRE_BUFFER_BUFFER_POOL_H_
#define SPITFIRE_BUFFER_BUFFER_POOL_H_

#include <atomic>
#include <memory>
#include <vector>

#include "buffer/clock_replacer.h"
#include "buffer/page_descriptor.h"
#include "buffer/replacer.h"
#include "common/constants.h"
#include "container/mpmc_queue.h"
#include "storage/device.h"

namespace spitfire {

// A buffer pool of fixed 16 KB frames carved out of one device (the DRAM
// pool out of a DramDevice, the NVM pool out of an NvmDevice). Tracks the
// free-frame list, the CLOCK reference bits, and the frame → descriptor
// back-links that eviction follows.
//
// NVM pools additionally maintain a *persistent frame table* at the start
// of the device: one page id per frame, updated and persisted whenever a
// frame's owner changes. Recovery scans this table to rebuild the mapping
// table after a crash (Section 5.2, "Recovery").
struct BufferPoolConfig {
  Tier tier = Tier::kDram;
  Device* device = nullptr;
  size_t num_frames = 0;
  bool persistent_frame_table = false;
  // Replacement policy for this tier (Replacer::Create).
  ReplacerKind replacer = ReplacerKind::kClock;
  // Sharing one device between several pools (the sharded buffer manager
  // slices each tier device across its shards): `total_frames` is the
  // frame count of the WHOLE device — it fixes the frame-table size and
  // the data-region base so the on-device layout is independent of how
  // many pools share it — and `frame_base` is this pool's first frame
  // within that region. 0 total_frames → num_frames (sole owner).
  size_t total_frames = 0;
  size_t frame_base = 0;
};

class BufferPool {
 public:
  explicit BufferPool(const BufferPoolConfig& config);
  BufferPool(Tier tier, Device* device, size_t num_frames,
             bool persistent_frame_table);
  SPITFIRE_DISALLOW_COPY_AND_MOVE(BufferPool);

  Tier tier() const { return tier_; }
  size_t num_frames() const { return num_frames_; }
  Device* device() { return device_; }

  std::byte* FramePtr(frame_id_t f) {
    return device_->DirectPointer(FrameOffset(f));
  }
  uint64_t FrameOffset(frame_id_t f) const {
    return frames_base_ +
           static_cast<uint64_t>(frame_base_ + f) * kPageSize;
  }

  // Pops a frame from the free list. Returns false if none are free (the
  // caller must evict).
  bool TryAllocateFrame(frame_id_t* f) {
    if (!free_list_.TryPop(f)) return false;
    const bool was_free = in_free_list_[*f].exchange(false);
    SPITFIRE_CHECK(was_free);
    free_count_.fetch_sub(1, std::memory_order_relaxed);
    return true;
  }
  void FreeFrame(frame_id_t f) {
    SetOwner(f, nullptr, kInvalidPageId);
    const bool was_free = in_free_list_[f].exchange(true);
    SPITFIRE_CHECK(!was_free && "double free of buffer frame");
    // TryPush can fail transiently while a lapped consumer is mid-pop;
    // the pool never holds more frames than capacity, so spin.
    while (!free_list_.TryPush(f)) {
      __builtin_ia32_pause();
    }
    free_count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Approximate number of free frames; the background writer compares it
  // against its low watermark.
  size_t FreeCount() const {
    return free_count_.load(std::memory_order_relaxed);
  }

  // Registers/clears the descriptor owning a frame. For NVM pools this
  // also persists the frame-table entry.
  void SetOwner(frame_id_t f, SharedPageDescriptor* desc, page_id_t pid);
  SharedPageDescriptor* Owner(frame_id_t f) const {
    return owners_[f].load(std::memory_order_acquire);
  }

  Replacer& replacer() { return *replacer_; }

  // Replacer forwarders with a monomorphic fast path for the default
  // CLOCK policy. Virtual dispatch here costs more than it looks: the
  // pre-interface code inlined the whole sweep loop (and the try_evict
  // callback) into the eviction sites, and on the read-ahead install
  // pipeline that inlining is worth several percent end to end. A pool
  // running CLOCK calls the final class directly (everything in
  // clock_replacer.h inlines again); any other policy pays the virtual
  // call as before.
  void ReplacerRecordAccess(frame_id_t f) {
    if (clock_ != nullptr) {
      clock_->RecordAccess(f);
    } else {
      replacer_->RecordAccess(f);
    }
  }
  void ReplacerRecordInstall(frame_id_t f) {
    if (clock_ != nullptr) {
      clock_->RecordInstall(f);
    } else {
      replacer_->RecordInstall(f);
    }
  }
  template <typename TryEvict>
  frame_id_t ReplacerPickVictim(TryEvict&& try_evict, int max_rounds = 3) {
    if (clock_ != nullptr) {
      return clock_->ClockReplacer::PickVictim(
          TryEvictRef(try_evict), max_rounds);
    }
    return replacer_->PickVictim(TryEvictRef(try_evict), max_rounds);
  }

  // Space the frame region occupies on the device, including the frame
  // table if present.
  static uint64_t RequiredCapacity(size_t num_frames,
                                   bool persistent_frame_table);

  // Reads the persistent frame table entry (NVM pools only); used by
  // recovery. Returns kInvalidPageId for free frames.
  page_id_t PersistedOwner(frame_id_t f) const;

 private:
  uint64_t FrameTableEntryOffset(frame_id_t f) const {
    return static_cast<uint64_t>(frame_base_ + f) * sizeof(page_id_t);
  }

  const Tier tier_;
  Device* const device_;
  const size_t num_frames_;
  // Device-wide frame count and this pool's first frame within it (see
  // BufferPoolConfig); total_frames_ == num_frames_, frame_base_ == 0 for
  // a pool that owns its whole device.
  const size_t total_frames_;
  const size_t frame_base_;
  const bool persistent_frame_table_;
  uint64_t frames_base_ = 0;

  MpmcQueue<frame_id_t> free_list_;
  std::atomic<size_t> free_count_{0};
  std::unique_ptr<Replacer> replacer_;
  // Non-null iff replacer_ is a ClockReplacer (set once at construction);
  // enables the devirtualized fast path above.
  ClockReplacer* clock_ = nullptr;
  std::vector<std::atomic<SharedPageDescriptor*>> owners_;
  // Guards against frame double-free bugs (one flag per frame).
  std::vector<std::atomic<bool>> in_free_list_;
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_BUFFER_POOL_H_
