#include "buffer/buffer_shard.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/timer.h"
#include "hymem/mini_page.h"
#include "storage/dram_device.h"

namespace spitfire {

namespace {
constexpr int kFetchMaxAttempts = 8192;
// How long a promotion waits to retire the NVM copy (drain optimistic
// pins, Section 5.2) before giving up and serving the access from NVM.
constexpr int kPinDrainSpins = 4096;

// Async miss path budgets. A submission spins kSubmitHitAttempts on
// transient pin races before reporting Busy; a queued ticket survives
// kTicketMaxAttempts completion-time re-dispatches (this also bounds the
// recursion depth when the simulated device completes reads inline); the
// blocking FetchPage shim resubmits a Busy ticket kFetchBusyRounds times
// under exponential backoff between kBackoffMinNanos and kBackoffMaxNanos.
constexpr int kSubmitHitAttempts = 256;
constexpr int kTicketMaxAttempts = 48;
constexpr int kFetchBusyRounds = 64;
constexpr uint64_t kBackoffMinNanos = 1'000;
constexpr uint64_t kBackoffMaxNanos = 512'000;
// Below this a backoff spins (sleeping costs more than it yields);
// above it the thread sleeps so evictors and completions get the core.
constexpr uint64_t kBackoffSpinCapNanos = 8'192;
}  // namespace

// ---------------------------------------------------------------------------
// PageGuard
// ---------------------------------------------------------------------------

Status PageGuard::ReadAt(size_t offset, size_t size, void* dst) {
  SPITFIRE_DCHECK(valid());
  return bm_->GuardRead(desc_, tier_, offset, size, dst);
}

Status PageGuard::WriteAt(size_t offset, size_t size, const void* src) {
  SPITFIRE_DCHECK(valid());
  return bm_->GuardWrite(desc_, tier_, offset, size, src);
}

std::byte* PageGuard::RawData(bool for_write) {
  SPITFIRE_DCHECK(valid());
  return bm_->GuardRawData(desc_, tier_, for_write);
}

void PageGuard::MarkDirty() {
  SPITFIRE_DCHECK(valid());
  if (tier_ == Tier::kDram) {
    desc_->dram.dirty.store(true, std::memory_order_release);
  } else {
    desc_->nvm.dirty.store(true, std::memory_order_release);
  }
}

void PageGuard::Release() {
  if (desc_ != nullptr) {
    bm_->Unpin(desc_, tier_);
    desc_ = nullptr;
    bm_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

BufferShard::BufferShard(const BufferManagerOptions& options,
                         const BufferShardContext& ctx)
    : options_(options),
      shard_index_(ctx.shard_index),
      num_shards_(ctx.num_shards),
      ssd_(ctx.ssd),
      nvm_(ctx.nvm),
      dram_backing_(ctx.dram_backing),
      next_page_id_(ctx.next_page_id),
      io_(ctx.io) {
  SPITFIRE_CHECK(ssd_ != nullptr);
  SPITFIRE_CHECK(next_page_id_ != nullptr);
  SPITFIRE_CHECK(options_.replacer_sample_rate >= 1);
  SetPolicy(options_.policy);

  if (options_.nvm_frames > 0) {
    SPITFIRE_CHECK(nvm_ != nullptr);
    nvm_pool_ = std::make_unique<BufferPool>(
        BufferPoolConfig{Tier::kNvm, nvm_, options_.nvm_frames,
                         /*persistent_frame_table=*/true,
                         options_.nvm_replacer,
                         ctx.nvm_total_frames, ctx.nvm_frame_base});
    if (options_.nvm_admission == NvmAdmissionMode::kAdmissionQueue) {
      size_t cap = options_.admission_queue_capacity;
      if (cap == 0) cap = std::max<size_t>(1, options_.nvm_frames / 2);
      admission_queue_ = std::make_unique<AdmissionQueue>(cap);
    }
  }

  if (options_.dram_frames > 0) {
    SPITFIRE_CHECK(dram_backing_ != nullptr);
    dram_pool_ = std::make_unique<BufferPool>(
        BufferPoolConfig{Tier::kDram, dram_backing_, options_.dram_frames,
                         /*persistent_frame_table=*/false,
                         options_.dram_replacer,
                         ctx.dram_total_frames, ctx.dram_frame_base});

    if (options_.enable_mini_pages && nvm_pool_ != nullptr) {
      size_t host = options_.mini_host_frames;
      if (host == 0) host = std::max<size_t>(1, options_.dram_frames / 8);
      host = std::min(host, options_.dram_frames);
      mini_.per_frame = MiniPageView::PerFrame(options_.load_granularity);
      for (size_t i = 0; i < host; ++i) {
        frame_id_t f;
        if (!dram_pool_->TryAllocateFrame(&f)) break;
        mini_.host_frames.push_back(f);
      }
      mini_.capacity = mini_.host_frames.size() * mini_.per_frame;
      if (mini_.capacity > 0) {
        mini_.free_list = std::make_unique<MpmcQueue<uint32_t>>(mini_.capacity);
        mini_.replacer =
            Replacer::Create(ReplacerKind::kClock, mini_.capacity);
        mini_.owners = std::vector<std::atomic<SharedPageDescriptor*>>(
            mini_.capacity);
        for (uint32_t m = 0; m < mini_.capacity; ++m) {
          mini_.owners[m].store(nullptr, std::memory_order_relaxed);
          SPITFIRE_CHECK(mini_.free_list->TryPush(m));
        }
      }
    }
  }
  SPITFIRE_CHECK(dram_pool_ != nullptr || nvm_pool_ != nullptr);
  SPITFIRE_CHECK(!options_.enable_io_scheduler || io_ != nullptr);

  // Per-shard admission control: each shard bounds its own in-flight
  // misses so one shard's miss storm cannot starve the others' install
  // capacity. Two ceilings apply: half the shard's own frame budget
  // (misses beyond that would thrash the pools on install), and this
  // shard's slice of the device's total queue slots with 2x
  // oversubscription (misses beyond the device depth only sit in the
  // scheduler's software queues adding latency, not throughput; the 2x
  // headroom keeps the hardware queues refillable the moment slots free).
  {
    const uint32_t frame_cap = std::max<uint32_t>(
        8,
        static_cast<uint32_t>(options_.dram_frames + options_.nvm_frames) / 2);
    const uint32_t device_slots = ssd_->profile().queues.TotalDepth();
    const uint32_t qd_cap = std::max<uint32_t>(
        8, 2 * device_slots / std::max<uint32_t>(1, num_shards_));
    miss_admission_cap_ = std::min(frame_cap, qd_cap);
  }

  if (options_.enable_background_writer) {
    size_t wm = options_.bg_writer_low_watermark;
    if (wm == 0) {
      size_t smallest = SIZE_MAX;
      if (dram_pool_ != nullptr) smallest = dram_pool_->num_frames();
      if (nvm_pool_ != nullptr) {
        smallest = std::min(smallest, nvm_pool_->num_frames());
      }
      wm = std::max<size_t>(1, smallest / 8);
    }
    bg_writer_ = std::make_unique<BackgroundWriter>(
        this, wm, options_.bg_writer_interval_us);
  }
}

void BufferShard::PrepareShutdown() {
  // Stop the writer before the pools it sweeps are torn down. The flag
  // makes completions fired during the subsequent I/O-scheduler drain fail
  // their tickets with Busy instead of installing pages and handing out
  // guards that would outlive the descriptors they pin. The scheduler
  // itself is shared across shards and shut down by the owning
  // BufferManager after every shard has run this.
  shutting_down_.store(true, std::memory_order_release);
  if (bg_writer_ != nullptr) bg_writer_->Stop();
}

BufferShard::~BufferShard() { PrepareShutdown(); }

SharedPageDescriptor* BufferShard::GetOrCreateDescriptor(page_id_t pid) {
  return mapping_table_.GetOrCreate(pid, [this, pid]() {
    auto d = std::make_unique<SharedPageDescriptor>(pid);
    SharedPageDescriptor* raw = d.get();
    std::lock_guard<std::mutex> g(desc_mu_);
    descriptors_.push_back(std::move(d));
    return raw;
  });
}

// ---------------------------------------------------------------------------
// Pinning (the latch-free hit path)
// ---------------------------------------------------------------------------

bool BufferShard::ShouldSampleAccess() {
  const uint32_t k = options_.replacer_sample_rate;
  if (k <= 1) return true;
  thread_local uint32_t tick = 0;
  return (++tick % k) == 0;
}

bool BufferShard::TryPinDram(SharedPageDescriptor* d) {
  const DramMode m = d->dram.TryPin();
  if (m == DramMode::kNone) return false;
  // Sampled CLOCK accounting: the reference bitmap is shared, so touching
  // it on every hit restores the very contention the latch-free pin
  // removed. Misses are recorded exactly at install time.
  if (ShouldSampleAccess()) {
    stats_.Add(BufferCounter::kReplacerSampled);
    if (m == DramMode::kMini) {
      // `mini_id` may be stale if a concurrent overflow promoted the page
      // to a full frame; a stray reference bit on a freed slot is benign.
      mini_.replacer->RecordAccess(d->mini_id.load(std::memory_order_relaxed));
    } else {
      dram_pool_->ReplacerRecordAccess(
          d->dram.frame.load(std::memory_order_relaxed));
    }
  }
  // No counter on the suppressed branch: an extra per-hit atomic here costs
  // ~10% of pure hit throughput. Snapshot() derives suppressed counts as
  // hits - sampled.
  return true;
}

bool BufferShard::TryPinNvm(SharedPageDescriptor* d) {
  if (d->nvm.TryPin() == DramMode::kNone) return false;
  if (ShouldSampleAccess()) {
    stats_.Add(BufferCounter::kReplacerSampled);
    nvm_pool_->ReplacerRecordAccess(
        d->nvm.frame.load(std::memory_order_relaxed));
  }
  return true;
}

void BufferShard::Unpin(SharedPageDescriptor* d, Tier tier) {
  if (tier == Tier::kDram) {
    d->dram.Unpin();
  } else {
    d->nvm.Unpin();
  }
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

int BufferShard::TryHitOnce(SharedPageDescriptor* d, AccessIntent intent,
                              const MigrationPolicy& pol, Tier* tier) {
  // 1. DRAM hit: one CAS on the packed state word, no latch.
  if (TryPinDram(d)) {
    stats_.Add(BufferCounter::kDramHits);
    *tier = Tier::kDram;
    return 1;
  }

  // 2. NVM hit: possibly migrate up (Dr / Dw), else serve in place.
  if (d->NvmResident()) {
    const bool promote =
        dram_pool_ != nullptr &&
        (intent == AccessIntent::kRead ? pol.MigrateNvmToDramOnRead()
                                       : pol.UseDramOnWrite());
    if (promote) {
      const Status st = PromoteToDram(d);
      if (st.ok()) return -1;  // retry: should pin DRAM now
      // Busy: fall through and serve from NVM.
    }
    if (TryPinNvm(d)) {
      if (d->DramResident()) {
        // A promotion slipped in between the DRAM miss above and this
        // pin. Once a DRAM copy exists it is authoritative — every
        // other thread pins it first and writes land there — so serving
        // (or writing) the NVM copy now would act on stale bytes.
        // Promotion cannot exclude us either: it only drains NVM pins
        // that exist while it runs. Drop the pin and retry; the pin CAS
        // (acquire) pairs with the promoter's release publishes, so
        // this residency re-read is reliable.
        Unpin(d, Tier::kNvm);
        return -1;
      }
      stats_.Add(BufferCounter::kNvmHits);
      *tier = Tier::kNvm;
      return 1;
    }
    return -1;  // raced with an NVM eviction
  }
  return 0;
}

Result<PageGuard> BufferShard::FetchPage(page_id_t pid,
                                           AccessIntent intent) {
  if (pid >= next_page_id_->load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("fetch of unallocated page");
  }
  SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
  if (io_ == nullptr) return FetchPageSync(d, intent);

  // Blocking shim over the submission/completion split: submit a ticket,
  // drive completions until it fires, retry transient failures with a
  // bounded exponential backoff (the old code retried with a bare pause,
  // which under pool exhaustion just hammered the evictors it was
  // waiting on).
  FetchTicket t;
  uint64_t backoff_ns = kBackoffMinNanos;
  for (int round = 0; round < kFetchBusyRounds; ++round) {
    const FetchSubmit s = SubmitFetch(pid, intent, &t);
    if (s == FetchSubmit::kQueuedLeader) {
      // Blocking fidelity: the leader pays its miss latency on this core,
      // pumping completions (its own included) while it waits.
      while (!t.ready.load(std::memory_order_acquire)) {
        if (!io_->PumpCompletions(/*may_sleep=*/false)) {
          __builtin_ia32_pause();
        }
      }
    } else if (s == FetchSubmit::kQueuedJoined) {
      // A joiner's latency is covered by the leader's spin (or by the
      // async ring); don't burn the core next to it. Sleep on the
      // scheduler's completion broadcast — epoch-checked, so a completion
      // firing between the ready check and the wait returns immediately —
      // and steal queued prefetch work on each wake, exactly as the old
      // flight join did through the shard condvar.
      while (!t.ready.load(std::memory_order_acquire)) {
        const uint64_t epoch = io_->completion_epoch();
        if (t.ready.load(std::memory_order_acquire)) break;
        if (io_->TryRunPendingTask()) continue;
        if (t.ready.load(std::memory_order_acquire)) break;
        io_->WaitForCompletion(epoch, 100'000);
      }
    }
    if (t.status.ok()) return std::move(t.guard);
    if (!t.status.IsBusy()) return t.status;
    if (backoff_ns <= kBackoffSpinCapNanos) {
      SpinWaitNanos(backoff_ns);
    } else {
      std::this_thread::sleep_for(std::chrono::nanoseconds(backoff_ns));
    }
    backoff_ns = std::min(backoff_ns * 2, kBackoffMaxNanos);
    t.Reset();
  }
  return Status::Busy("FetchPage exceeded retry budget");
}

Result<PageGuard> BufferShard::FetchPageSync(SharedPageDescriptor* d,
                                               AccessIntent intent) {
  const MigrationPolicy pol = policy();
  for (int attempt = 0; attempt < kFetchMaxAttempts; ++attempt) {
    Tier tier;
    const int h = TryHitOnce(d, intent, pol, &tier);
    if (h > 0) return PageGuard(this, d, tier);
    if (h == 0) {
      // Miss: fetch from SSD under the latches.
      Result<PageGuard> r = InstallFromSsd(d, intent);
      if (r.ok()) return r;
      if (!r.status().IsBusy()) return r;
    }
    __builtin_ia32_pause();
  }
  return Status::Busy("FetchPage exceeded retry budget");
}

BufferShard::FrameCensus BufferShard::DebugDramCensus() const {
  FrameCensus c;
  if (dram_pool_ == nullptr) return c;
  for (frame_id_t f = 0; f < dram_pool_->num_frames(); ++f) {
    SharedPageDescriptor* d = dram_pool_->Owner(f);
    if (d == nullptr) {
      ++c.free;
      continue;
    }
    if (d->dram.frame.load(std::memory_order_relaxed) != f ||
        !d->dram.Resident()) {
      ++c.detached;
      continue;
    }
    const uint32_t pins = d->dram.Pins();
    c.total_pins += pins;
    if (pins > 0) {
      ++c.pinned;
    } else {
      ++c.evictable;
    }
  }
  return c;
}

// ---------------------------------------------------------------------------
// Asynchronous miss path: submission half
// ---------------------------------------------------------------------------

void BufferShard::FinishTicket(FetchTicket* t, Status st) {
  t->status = std::move(st);
  t->ready.store(true, std::memory_order_release);
}

bool BufferShard::PumpIo(bool may_sleep) {
  return io_ != nullptr && io_->PumpCompletions(may_sleep);
}

FetchSubmit BufferShard::SubmitFetch(page_id_t pid, AccessIntent intent,
                                       FetchTicket* t) {
  t->pid = pid;
  t->intent = intent;
  // Write-intent share of the fetch stream; the online tuner reads this
  // (with the hit/migration counters) as its workload-mix signature.
  if (intent == AccessIntent::kWrite) {
    stats_.Add(BufferCounter::kWriteFetches);
  }
  if (pid >= next_page_id_->load(std::memory_order_relaxed)) {
    FinishTicket(t, Status::InvalidArgument("fetch of unallocated page"));
    return FetchSubmit::kCompleted;
  }
  SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
  if (io_ == nullptr) {
    // No async engine: serve through the legacy synchronous path.
    Result<PageGuard> r = FetchPageSync(d, intent);
    if (r.ok()) {
      t->guard = r.MoveValue();
      FinishTicket(t, Status::OK());
    } else {
      FinishTicket(t, r.status());
    }
    return FetchSubmit::kCompleted;
  }

  // Read-ahead keepalive: two relaxed loads on the hot path; matches only
  // inside the live range of the active prefetch chain.
  if (pid >= ra_live_lo_.load(std::memory_order_relaxed) &&
      pid < ra_next_pid_.load(std::memory_order_relaxed)) {
    ra_consumed_.store(true, std::memory_order_relaxed);
  }
  return SubmitFetchOnDescriptor(d, intent, t);
}

FetchSubmit BufferShard::SubmitFetchOnDescriptor(SharedPageDescriptor* d,
                                                   AccessIntent intent,
                                                   FetchTicket* t) {
  const MigrationPolicy pol = policy();
  for (int attempt = 0; attempt < kSubmitHitAttempts; ++attempt) {
    Tier tier;
    const int h = TryHitOnce(d, intent, pol, &tier);
    if (h > 0) {
      // Capture before firing: the owner may destroy the ticket the
      // moment ready reads true. A re-dispatched ticket (attempts > 0)
      // may have a sleeping owner, so wake the completion waiters.
      const bool redispatched = t->attempts > 0;
      t->guard = PageGuard(this, d, tier);
      FinishTicket(t, Status::OK());
      if (redispatched) io_->SignalCompletions();
      return FetchSubmit::kCompleted;
    }
    if (h < 0) {
      __builtin_ia32_pause();
      continue;
    }

    // Clean miss: join the in-flight fetch or become its leader. io_latch
    // is taken alone here — never a tier latch inside it — so it can nest
    // inside the tier latches on the completion side.
    d->io_latch.Lock();
    if (d->io_state == IoState::kIoInflight) {
      t->next = d->io_waiters;
      d->io_waiters = t;
      d->io_latch.Unlock();
      // Misses that piggyback on an in-flight read are dedup wins exactly
      // like scheduler-level flight joiners; count them with the same
      // stat so "N threads, one device read" stays observable.
      io_->stats().reads_deduped.fetch_add(1, std::memory_order_relaxed);
      stats_.Add(BufferCounter::kMissJoins);
      return FetchSubmit::kQueuedJoined;
    }
    if (d->DramResident() || d->NvmResident()) {
      // Residency appeared between the pin probe and the latch; loop and
      // pin it.
      d->io_latch.Unlock();
      continue;
    }
    // Admission control: refuse to lead a new miss once half the pool's
    // worth of pages is already in flight — the install would find no
    // frame and the re-dispatch re-reads would crowd the device queues.
    // Fail fast with Busy so the submitter backs off or works elsewhere.
    if (inflight_misses_.fetch_add(1, std::memory_order_acq_rel) >=
        miss_admission_cap_) {
      inflight_misses_.fetch_sub(1, std::memory_order_acq_rel);
      d->io_latch.Unlock();
      const bool redispatched = t->attempts > 0;
      FinishTicket(t, Status::Busy("miss admission: buffer saturated"));
      if (redispatched) io_->SignalCompletions();
      return FetchSubmit::kCompleted;
    }
    d->io_state = IoState::kIoInflight;
    t->next = nullptr;
    d->io_waiters = t;
    d->io_latch.Unlock();
    stats_.Add(BufferCounter::kMissSubmits);
    LeadMiss(d);
    return FetchSubmit::kQueuedLeader;
  }
  {
    const bool redispatched = t->attempts > 0;
    FinishTicket(t, Status::Busy("fetch submission starved by races"));
    if (redispatched) io_->SignalCompletions();
  }
  return FetchSubmit::kCompleted;
}

void BufferShard::LeadMiss(SharedPageDescriptor* d) {
  // Kick read-ahead before submitting: the window claim registers this
  // page's read flight, so the submission below joins the coalesced
  // window read instead of leading a separate single-page device op.
  MaybeScheduleReadAhead(d->pid);
  if (d->DramResident() || d->NvmResident()) {
    // The window ran inline and installed the page. Resolve the in-flight
    // state without touching the device; waiters re-dispatch and hit.
    CompleteMiss(d, Status::Busy("page appeared during read-ahead"),
                 /*data=*/nullptr, /*seq=*/0);
    return;
  }
  io_->SubmitRead(
      SsdOffset(d->pid),
      [this, d](const Status& st, const std::byte* data, uint64_t seq) {
        CompleteMiss(d, st, data, seq);
      });
}

// ---------------------------------------------------------------------------
// Asynchronous miss path: completion half
// ---------------------------------------------------------------------------

void BufferShard::CompleteMiss(SharedPageDescriptor* d, Status st,
                                 const std::byte* data, uint64_t seq) {
  // One completion per leader: releases the admission slot taken when the
  // descriptor entered kIoInflight (re-dispatched waiters that lead a new
  // miss take a fresh slot).
  inflight_misses_.fetch_sub(1, std::memory_order_acq_rel);
  if (shutting_down_.load(std::memory_order_acquire)) {
    // Tear-down drain: the scheduler fires leftover flights early. Fail
    // every waiter without installing — tickets stay guard-free, so they
    // can safely outlive the buffer manager.
    d->io_latch.Lock();
    FetchTicket* w = d->io_waiters;
    d->io_waiters = nullptr;
    d->io_state = IoState::kIdle;
    d->io_latch.Unlock();
    while (w != nullptr) {
      FetchTicket* next = w->next;
      w->next = nullptr;
      FinishTicket(w, Status::Busy("buffer manager shutting down"));
      w = next;
    }
    return;
  }
  FetchTicket* waiters = nullptr;
  Tier tier = Tier::kDram;
  bool installed = false;
  PageGuard first;
  {
    SpinLatchGuard gd(d->dram_latch);
    SpinLatchGuard gn(d->nvm_latch);
    if (st.ok()) {
      if (d->DramResident() || d->NvmResident()) {
        st = Status::Busy("page appeared while installing");
      } else if (io_->WriteSeq(SsdOffset(d->pid)) != seq) {
        // A write-back landed while the read was in flight; the
        // re-dispatch below is served from the scheduler's staged image.
        st = Status::Busy("page written during miss read");
      } else {
        Result<PageGuard> r = InstallPinned(d, AccessIntent::kRead, data);
        if (r.ok()) {
          first = r.MoveValue();
          tier = first.tier();
          installed = true;
        } else {
          st = r.status();
        }
      }
    }

    // Detach the waiter list and clear the in-flight mark. io_latch nests
    // inside the tier latches only here (submitters take it alone), so
    // install → detach → pin is one atomic step with respect to evictors:
    // nothing can retire the fresh copy before every waiter holds a pin.
    d->io_latch.Lock();
    waiters = d->io_waiters;
    d->io_waiters = nullptr;
    d->io_state = IoState::kIdle;
    d->io_latch.Unlock();

    if (installed) {
      bool first_pin_used = false;
      for (FetchTicket* t = waiters; t != nullptr; t = t->next) {
        if (!first_pin_used) {
          t->guard = std::move(first);  // the install's own pin
          first_pin_used = true;
        } else {
          // Cannot fail: the copy was published above and both tier
          // latches are held, so no evictor can retire it.
          const DramMode m =
              tier == Tier::kDram ? d->dram.TryPin() : d->nvm.TryPin();
          SPITFIRE_DCHECK(m != DramMode::kNone);
          (void)m;
          t->guard = PageGuard(this, d, tier);
          // Each completed waiter is one fetch served from SSD —
          // TotalFetches counts exactly one counter per success.
          stats_.Add(BufferCounter::kSsdFetches);
        }
        t->status = Status::OK();
      }
      // With no waiters (all were re-dispatched away earlier) `first`
      // drops its pin on scope exit and the page simply stays resident.
    }
  }  // tier latches released

  if (installed) {
    // Fire outside the latches. Read `next` before the release store:
    // the owner may destroy (or Reset and relink) the ticket the moment
    // it observes ready == true.
    bool woke_joiner = false;
    for (FetchTicket* t = waiters; t != nullptr;) {
      FetchTicket* next = t->next;
      t->next = nullptr;
      t->ready.store(true, std::memory_order_release);
      woke_joiner = true;
      t = next;
    }
    // When this completion ran inside a scheduler callback the scheduler
    // broadcasts right after it; signal here too so tickets completed on
    // the direct path (LeadMiss's resident short-circuit, re-dispatch)
    // also wake their sleeping owners promptly.
    if (woke_joiner) io_->SignalCompletions();
    return;
  }

  // Failure. Hard errors complete every waiter; Busy re-dispatches them
  // (the page may have appeared, be staged in the scheduler, or need a
  // fresh read) under a per-ticket attempt budget that also bounds the
  // recursion when the simulated device completes re-reads inline.
  // Resubmission runs outside all latches for the same reason.
  bool finished_any = false;
  for (FetchTicket* t = waiters; t != nullptr;) {
    FetchTicket* next = t->next;
    t->next = nullptr;
    if (!st.IsBusy()) {
      FinishTicket(t, st);
      finished_any = true;
    } else if (++t->attempts >= kTicketMaxAttempts) {
      FinishTicket(t, Status::Busy("fetch re-dispatch budget exhausted"));
      finished_any = true;
    } else {
      (void)SubmitFetchOnDescriptor(d, t->intent, t);
    }
    t = next;
  }
  if (finished_any) io_->SignalCompletions();
}

Result<PageGuard> BufferShard::NewPageWithId(page_id_t pid,
                                             uint32_t page_type) {
  SPITFIRE_DCHECK(ShardOfPage(pid, num_shards_) == shard_index_);
  if (SsdOffset(pid) + kPageSize > ssd_->capacity()) {
    return Status::OutOfMemory("SSD device full");
  }
  SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
  SpinLatchGuard gd(d->dram_latch);
  SpinLatchGuard gn(d->nvm_latch);
  if (dram_pool_ != nullptr) {
    const frame_id_t f = AcquireDramFrame();
    if (f != kInvalidFrameId) {
      PageView(dram_pool_->FramePtr(f)).Format(pid, page_type);
      dram_pool_->SetOwner(f, d, pid);
      d->dram.frame.store(f, std::memory_order_relaxed);
      d->dram.dirty.store(true, std::memory_order_relaxed);
      d->dram.Publish(DramMode::kFull, /*initial_pins=*/1);
      dram_pool_->ReplacerRecordInstall(f);
      return PageGuard(this, d, Tier::kDram);
    }
  }
  if (nvm_pool_ != nullptr) {
    const frame_id_t f = AcquireNvmFrame();
    if (f != kInvalidFrameId) {
      PageView(nvm_pool_->FramePtr(f)).Format(pid, page_type);
      nvm_->OnDirectWrite(nvm_pool_->FrameOffset(f), kPageSize,
                          /*sequential=*/true);
      nvm_pool_->SetOwner(f, d, pid);
      d->nvm.frame.store(f, std::memory_order_relaxed);
      d->nvm.dirty.store(true, std::memory_order_relaxed);
      d->nvm.Publish(DramMode::kFull, /*initial_pins=*/1);
      nvm_pool_->ReplacerRecordInstall(f);
      return PageGuard(this, d, Tier::kNvm);
    }
  }
  return Status::OutOfMemory("no frame available for new page");
}

namespace {
// Per-thread scratch page for miss reads: the device read happens before
// any descriptor latch is taken, so the destination cannot be the frame.
std::byte* MissScratch() {
  thread_local std::unique_ptr<std::byte[]> buf;
  if (buf == nullptr) buf = std::make_unique<std::byte[]>(kPageSize);
  return buf.get();
}
}  // namespace

Result<PageGuard> BufferShard::InstallFromSsd(SharedPageDescriptor* d,
                                                AccessIntent intent) {
  // Only reached with the I/O scheduler disabled (FetchPageSync); misses
  // otherwise go through SubmitFetch → LeadMiss → CompleteMiss.
  SPITFIRE_DCHECK(io_ == nullptr);
  // Legacy synchronous path: device read under the descriptor latches.
  SpinLatchGuard gd(d->dram_latch);
  SpinLatchGuard gn(d->nvm_latch);
  if (d->DramResident() || d->NvmResident()) {
    return Status::Busy("page appeared while installing");
  }
  std::byte* scratch = MissScratch();
  SPITFIRE_RETURN_NOT_OK(ssd_->Read(SsdOffset(d->pid), scratch, kPageSize));
  return InstallPinned(d, intent, scratch);
}

Result<PageGuard> BufferShard::InstallPinned(SharedPageDescriptor* d,
                                               AccessIntent intent,
                                               const std::byte* src) {
  (void)intent;  // the landing tier depends only on Nr today
  const MigrationPolicy pol = policy();
  const bool have_dram = dram_pool_ != nullptr;
  const bool have_nvm = nvm_pool_ != nullptr;

  // Where does the page land? Bypassing NVM on the read path happens with
  // probability 1 - Nr (Section 3.3); without a DRAM tier everything goes
  // to NVM and vice versa.
  bool to_nvm;
  if (!have_dram) {
    to_nvm = true;
  } else if (!have_nvm) {
    to_nvm = false;
  } else {
    to_nvm = pol.InstallSsdToNvmOnRead();
  }

  if (to_nvm) {
    const frame_id_t f = AcquireNvmFrame();
    if (f == kInvalidFrameId) {
      if (!have_dram) return Status::Busy("NVM pool exhausted; retry");
      to_nvm = false;  // fall back to DRAM
    } else {
      std::memcpy(nvm_pool_->FramePtr(f), src, kPageSize);
      nvm_->OnDirectWrite(nvm_pool_->FrameOffset(f), kPageSize,
                          /*sequential=*/true);
      nvm_pool_->SetOwner(f, d, d->pid);
      d->nvm.frame.store(f, std::memory_order_relaxed);
      d->nvm.dirty.store(false, std::memory_order_relaxed);
      d->nvm.Publish(DramMode::kFull, /*initial_pins=*/1);
      nvm_pool_->ReplacerRecordInstall(f);
      stats_.Add(BufferCounter::kSsdFetches);
      stats_.Add(BufferCounter::kNvmInstalls);
      return PageGuard(this, d, Tier::kNvm);
    }
  }

  frame_id_t f = AcquireDramFrame();
  if (f == kInvalidFrameId) {
    // Transient exhaustion (every frame pinned or latched). If NVM has
    // room, land the page there instead; otherwise let the caller retry.
    if (have_nvm) {
      const frame_id_t nf = AcquireNvmFrame();
      if (nf != kInvalidFrameId) {
        std::memcpy(nvm_pool_->FramePtr(nf), src, kPageSize);
        nvm_->OnDirectWrite(nvm_pool_->FrameOffset(nf), kPageSize,
                            /*sequential=*/true);
        nvm_pool_->SetOwner(nf, d, d->pid);
        d->nvm.frame.store(nf, std::memory_order_relaxed);
        d->nvm.dirty.store(false, std::memory_order_relaxed);
        d->nvm.Publish(DramMode::kFull, /*initial_pins=*/1);
        nvm_pool_->ReplacerRecordInstall(nf);
        stats_.Add(BufferCounter::kSsdFetches);
        stats_.Add(BufferCounter::kNvmInstalls);
        return PageGuard(this, d, Tier::kNvm);
      }
    }
    return Status::Busy("DRAM pool exhausted; retry");
  }
  std::memcpy(dram_pool_->FramePtr(f), src, kPageSize);
  dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f), kPageSize,
                               /*sequential=*/true);
  dram_pool_->SetOwner(f, d, d->pid);
  d->dram.frame.store(f, std::memory_order_relaxed);
  d->dram.dirty.store(false, std::memory_order_relaxed);
  d->dram.Publish(DramMode::kFull, /*initial_pins=*/1);
  dram_pool_->ReplacerRecordInstall(f);
  stats_.Add(BufferCounter::kSsdFetches);
  return PageGuard(this, d, Tier::kDram);
}

// ---------------------------------------------------------------------------
// Read-ahead
// ---------------------------------------------------------------------------

void BufferShard::MaybeScheduleReadAhead(page_id_t pid) {
  if (io_ == nullptr || options_.io_scheduler.read_ahead_pages == 0) return;
  const page_id_t prev = last_miss_pid_.exchange(pid);
  bool trigger = false;
  if (pid == ra_next_pid_.load(std::memory_order_relaxed)) {
    // The scan consumed the previous window and ran off its end: chain the
    // next window without rebuilding a two-miss run.
    trigger = true;
  } else if (prev != kInvalidPageId && pid == prev + 1) {
    trigger = seq_miss_run_.fetch_add(1) + 1 >= 2;
  } else {
    seq_miss_run_.store(1, std::memory_order_relaxed);
  }
  if (!trigger) return;
  if (read_ahead_inflight_.exchange(true)) return;  // a window is in flight
  // The window INCLUDES the missing page: the triggering miss then joins
  // the window's read flight (or finds the page already installed), so
  // the whole window is one coalesced device op with no separate
  // front-page read. Steal the queued execution right away: this thread
  // is about to wait on the window's boundary page anyway, and on the
  // synchronous simulated device an inline read beats racing the worker
  // for the core.
  if (ClaimAndQueueWindow(pid)) io_->TryRunPendingTask();
}

bool BufferShard::ClaimAndQueueWindow(page_id_t start) {
  // Precondition: this thread owns read_ahead_inflight_; ownership passes
  // to the queued execution on success and is released here on failure.
  const page_id_t horizon = next_page_id_->load(std::memory_order_relaxed);
  // Skip pages that are already resident (e.g. whole windows surviving
  // from the scan's previous pass over the database). Claiming them is
  // not just wasted transfer: the front HITS straight through a resident
  // window, so no miss ever joins its flights, nobody steals its queued
  // execution, and the chain stalls holding the one-window gate while
  // the front runs ahead on single-page reads. At a miss-triggered call
  // the first page just missed, so this loop exits immediately; it only
  // walks (bounded) when the stall it prevents would otherwise begin.
  size_t trim_budget = 4 * options_.io_scheduler.read_ahead_pages;
  while (start < horizon && OwnsPage(start)) {
    SharedPageDescriptor* d = GetOrCreateDescriptor(start);
    if (!d->DramResident() && !d->NvmResident()) break;
    ++start;
    if (--trim_budget == 0) break;
  }
  size_t n = start < horizon && trim_budget > 0 && OwnsPage(start)
                 ? std::min<size_t>(options_.io_scheduler.read_ahead_pages,
                                    horizon - start)
                 : 0;
  // Clamp the window to this shard's contiguous run of pages: routing is
  // block-granular (kShardBlockBits), so a window crossing the block edge
  // would install foreign pages into this shard's slice and duplicate a
  // copy the owning shard knows nothing about. The front's next miss past
  // the edge triggers the owning shard's own run detector.
  size_t owned_run = 0;
  while (owned_run < n && OwnsPage(start + owned_run)) ++owned_run;
  n = owned_run;
  if (n == 0) {
    read_ahead_inflight_.store(false);
    return false;
  }
  // A miss exactly at the window's end chains the next window without
  // rebuilding a two-miss run (see MaybeScheduleReadAhead); any access
  // inside [previous window, claim frontier) marks the chain as consumed
  // (see FetchPage). The lower bound trails by one window because the
  // front may still be consuming the window behind the one claimed here
  // when the next life-or-death decision is made.
  if (start >= options_.io_scheduler.read_ahead_pages) {
    ra_live_lo_.store(start - options_.io_scheduler.read_ahead_pages,
                      std::memory_order_relaxed);
  } else {
    ra_live_lo_.store(0, std::memory_order_relaxed);
  }
  ra_next_pid_.store(start + n, std::memory_order_relaxed);

  // Claim the window's read flights NOW — from this point every miss on
  // a window page joins a flight instead of leading its own single-page
  // device read — with no residency pre-scan: a claimed page that turns
  // out to be resident costs only its share of the coalesced transfer
  // and is dropped by InstallPrefetched's residency and write-sequence
  // checks. Only the device work is deferred.
  std::shared_ptr<void> claim = io_->ClaimPrefetch(SsdOffset(start), n);
  if (claim == nullptr) {
    read_ahead_inflight_.store(false);
    return false;
  }
  const bool queued = io_->Submit([this, claim, start, n] {
    PrefetchExecute(claim, start, n);
  });
  if (!queued) {
    // Shutting down: the claim must still complete or joiners hang.
    PrefetchExecute(claim, start, n);
  }
  return true;
}

void BufferShard::PrefetchExecute(std::shared_ptr<void> claim,
                                    page_id_t start, size_t count) {
  std::vector<std::byte> buf(count * kPageSize);
  std::vector<uint64_t> seqs(count, 0);
  std::vector<char> covered(count, 0);
  // Reinterpret: ExecutePrefetch wants bool*; vector<bool> is packed, so
  // use a char vector and cast.
  // Install each page from the executor's ready callback — after the
  // device read, but before the page's flight completes — so at every
  // instant a window page is either resident or has a joinable flight;
  // there is no gap for a concurrent miss to duplicate the read.
  (void)io_->ExecutePrefetch(
      claim, buf.data(), seqs.data(), reinterpret_cast<bool*>(covered.data()),
      [&](size_t i) {
        InstallPrefetched(start + i, buf.data() + i * kPageSize, seqs[i]);
      },
      /*joined=*/nullptr,
      // Chain decision — deliberately BEFORE the executor completes the
      // window's flights. Threads that found their page freshly installed
      // are already running ahead, and on one core their device busy-waits
      // can starve the completion pass for milliseconds; deciding here
      // keeps the next window queued before the front reaches it.
      //
      // Joiners (or a hit inside the live range) mean a scan front is
      // consuming this window: claim the NEXT window in this quiet
      // moment — the front is at the pages just installed, so the claim
      // cannot race a miss storm — and leave its execution queued; the
      // first thread to miss on the new window's boundary page joins the
      // pre-existing flight and steals the queued read (see
      // IoScheduler::ReadPage). The chain must also verify the front is
      // actually AT this window (last miss within one window of it):
      // if execution was delayed, the front has run past on single reads
      // and chaining would start a stale chase — claims forever behind
      // the front, each wasting a full window read whose installs evict
      // the frames the front just filled. No signal = nobody follows:
      // release the gate and let the run detector start a fresh chain.
      [&](size_t early) {
        const bool cons =
            ra_consumed_.exchange(false, std::memory_order_relaxed);
        const page_id_t lm = last_miss_pid_.load(std::memory_order_relaxed);
        const page_id_t next = start + count;
        const size_t ra = options_.io_scheduler.read_ahead_pages;
        const bool near =
            lm != kInvalidPageId && lm + ra >= start && lm < next + ra;
        if ((early > 0 || cons) && near) {
          (void)ClaimAndQueueWindow(next);
        } else {
          read_ahead_inflight_.store(false);
        }
      });
}

void BufferShard::InstallPrefetched(page_id_t pid, const std::byte* src,
                                      uint64_t seq) {
  SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
  // Never contend with foreground work: TryLock only on the target, and at
  // most one (try-lock-based) eviction round per pool when no frame is
  // free — without it read-ahead would go dead the moment the pool warms
  // up, which is exactly when a scan needs it.
  if (!d->dram_latch.TryLock()) return;
  if (!d->nvm_latch.TryLock()) {
    d->dram_latch.Unlock();
    return;
  }
  [&] {
    if (d->DramResident() || d->NvmResident()) return;
    if (io_->WriteSeq(SsdOffset(pid)) != seq) return;

    const MigrationPolicy pol = policy();
    const bool have_dram = dram_pool_ != nullptr;
    const bool have_nvm = nvm_pool_ != nullptr;
    const bool to_nvm = have_nvm && (!have_dram || pol.InstallSsdToNvmOnRead());
    if (to_nvm) {
      frame_id_t f;
      if (!nvm_pool_->TryAllocateFrame(&f)) {
        (void)EvictOneNvmFrame();
        if (!nvm_pool_->TryAllocateFrame(&f)) return;
      }
      std::memcpy(nvm_pool_->FramePtr(f), src, kPageSize);
      nvm_->OnDirectWrite(nvm_pool_->FrameOffset(f), kPageSize,
                          /*sequential=*/true);
      nvm_pool_->SetOwner(f, d, pid);
      d->nvm.frame.store(f, std::memory_order_relaxed);
      d->nvm.dirty.store(false, std::memory_order_relaxed);
      d->nvm.Publish(DramMode::kFull, /*initial_pins=*/0);
      nvm_pool_->ReplacerRecordInstall(f);
    } else {
      if (dram_pool_ == nullptr) return;
      frame_id_t f;
      if (!dram_pool_->TryAllocateFrame(&f)) {
        (void)EvictOneDramFrame();
        if (!dram_pool_->TryAllocateFrame(&f)) return;
      }
      std::memcpy(dram_pool_->FramePtr(f), src, kPageSize);
      dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f), kPageSize,
                                   /*sequential=*/true);
      dram_pool_->SetOwner(f, d, pid);
      d->dram.frame.store(f, std::memory_order_relaxed);
      d->dram.dirty.store(false, std::memory_order_relaxed);
      d->dram.Publish(DramMode::kFull, /*initial_pins=*/0);
      dram_pool_->ReplacerRecordInstall(f);
    }
    stats_.Add(BufferCounter::kReadAheadInstalls);
  }();
  d->nvm_latch.Unlock();
  d->dram_latch.Unlock();
}

// ---------------------------------------------------------------------------
// Promotion (NVM → DRAM, data flow path 7)
// ---------------------------------------------------------------------------

Status BufferShard::PromoteToDram(SharedPageDescriptor* d) {
  SPITFIRE_DCHECK(dram_pool_ != nullptr);
  SpinLatchGuard gd(d->dram_latch);
  if (d->DramResident()) return Status::OK();
  SpinLatchGuard gn(d->nvm_latch);
  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  if (!d->NvmResident() || nf == kInvalidFrameId) {
    return Status::Busy("NVM copy gone");
  }

  // Take the NVM copy private: retiring the state word drains in-flight
  // optimistic pins and blocks new ones, so the DRAM copy includes every
  // modification made in place on NVM (Section 5.2). Fetchers that miss
  // during the copy block on the latches we hold, then retry. Every exit
  // below must re-publish the NVM copy.
  int spins = 0;
  while (!d->nvm.TryRetire()) {
    if (++spins > kPinDrainSpins) {
      return Status::Busy("NVM readers did not drain");
    }
    __builtin_ia32_pause();
  }

  const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);

  // HyMem-style admissions: mini page first, then cache-line-grained.
  if (options_.enable_mini_pages && mini_.capacity > 0) {
    const uint32_t m = AcquireMiniSlot();
    if (m != UINT32_MAX) {
      MiniPageView mp(MiniPtr(m));
      mp.Format(d->pid, options_.load_granularity);
      d->mini_id.store(m, std::memory_order_relaxed);
      mini_.owners[m].store(d, std::memory_order_release);
      d->dram.dirty.store(false, std::memory_order_relaxed);
      d->dram.Publish(DramMode::kMini, 0);
      d->nvm.Publish(DramMode::kFull, 0);
      mini_.replacer->RecordInstall(m);
      stats_.Add(BufferCounter::kMiniPageAdmits);
      stats_.Add(BufferCounter::kPromotions);
      return Status::OK();
    }
  }

  const frame_id_t f = AcquireDramFrame();
  if (f == kInvalidFrameId) {
    d->nvm.Publish(DramMode::kFull, 0);
    return Status::Busy("no DRAM frame");
  }

  if (options_.enable_fine_grained_loading) {
    // No bytes move yet: units are loaded on demand from the NVM copy.
    d->cl.Reset(options_.load_granularity);
    dram_pool_->SetOwner(f, d, d->pid);
    d->dram.frame.store(f, std::memory_order_relaxed);
    d->dram.dirty.store(false, std::memory_order_relaxed);
    d->dram.Publish(DramMode::kCacheLineGrained, 0);
  } else {
    const Status st = nvm_->Read(nvm_off, dram_pool_->FramePtr(f), kPageSize);
    if (!st.ok()) {
      dram_pool_->FreeFrame(f);
      d->nvm.Publish(DramMode::kFull, 0);
      return st;
    }
    dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f), kPageSize,
                                 /*sequential=*/true);
    dram_pool_->SetOwner(f, d, d->pid);
    d->dram.frame.store(f, std::memory_order_relaxed);
    d->dram.dirty.store(false, std::memory_order_relaxed);
    d->dram.Publish(DramMode::kFull, 0);
  }
  d->nvm.Publish(DramMode::kFull, 0);
  dram_pool_->ReplacerRecordInstall(f);
  stats_.Add(BufferCounter::kPromotions);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Frame acquisition & eviction
// ---------------------------------------------------------------------------

frame_id_t BufferShard::AcquireDramFrame() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    frame_id_t f;
    if (dram_pool_->TryAllocateFrame(&f)) return f;
    if (attempt == 0 && bg_writer_ != nullptr) bg_writer_->Nudge();
    dram_pool_->ReplacerPickVictim(
        [this](frame_id_t v) { return TryEvictDramFrame(v); });
  }
  return kInvalidFrameId;
}

frame_id_t BufferShard::AcquireNvmFrame() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    frame_id_t f;
    if (nvm_pool_->TryAllocateFrame(&f)) return f;
    if (attempt == 0 && bg_writer_ != nullptr) bg_writer_->Nudge();
    nvm_pool_->ReplacerPickVictim(
        [this](frame_id_t v) { return TryEvictNvmFrame(v); });
  }
  return kInvalidFrameId;
}

frame_id_t BufferShard::EvictOneDramFrame() {
  return dram_pool_->ReplacerPickVictim(
      [this](frame_id_t v) { return TryEvictDramFrame(v); },
      /*max_rounds=*/1);
}

frame_id_t BufferShard::EvictOneNvmFrame() {
  return nvm_pool_->ReplacerPickVictim(
      [this](frame_id_t v) { return TryEvictNvmFrame(v); },
      /*max_rounds=*/1);
}

bool BufferShard::DecideNvmAdmission(page_id_t pid) {
  if (admission_queue_ != nullptr) return admission_queue_->ShouldAdmit(pid);
  return policy().AdmitToNvmOnDramEviction();
}

void BufferShard::WriteBackUnitsToNvm(SharedPageDescriptor* d) {
  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  SPITFIRE_DCHECK(nf != kInvalidFrameId);
  const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
  const frame_id_t df = d->dram.frame.load(std::memory_order_relaxed);
  std::byte* dram_ptr = dram_pool_->FramePtr(df);
  const uint32_t usize = d->cl.unit_size;
  const size_t units = d->cl.UnitsPerPage();
  bool any = false;
  for (size_t u = 0; u < units; ++u) {
    if (!d->cl.dirty.Test(u)) continue;
    (void)nvm_->Write(nvm_off + u * usize, dram_ptr + u * usize, usize);
    any = true;
  }
  if (any) d->nvm.dirty.store(true, std::memory_order_relaxed);
}

// Eviction protocol: retire the state word FIRST (fails if any pin exists
// or races in), which makes the evictor the exclusive owner of the frame
// contents; only then write back / free. A failure after the retire must
// re-publish the copy before unlocking.
//
// Retire ORDER matters. When the DRAM copy is dirty, any NVM copy is stale
// until the write-back completes. If the DRAM word were retired first, a
// reader whose optimistic DRAM pin lands in the retire window falls
// through to TryPinNvm and reads pre-write-back bytes — a lost update from
// the reader's point of view. So dirty paths retire the NVM word BEFORE
// the DRAM word; with both retired (and both latches held, which blocks
// InstallFromSsd), readers can only spin in FetchPage until the write-back
// finishes and the copies are republished.
bool BufferShard::TryEvictDramFrame(frame_id_t f) {
  SharedPageDescriptor* d = dram_pool_->Owner(f);
  if (d == nullptr) return false;
  if (!d->dram_latch.TryLock()) return false;

  const DramMode mode = d->dram.Mode();
  const bool owns = (mode == DramMode::kFull ||
                     mode == DramMode::kCacheLineGrained) &&
                    d->dram.frame.load(std::memory_order_relaxed) == f &&
                    dram_pool_->Owner(f) == d;
  if (!owns) {
    d->dram_latch.Unlock();
    return false;
  }

  // Dirty hint, read before the retires to pick the retire order. The hint
  // can miss a writer that set dirty but has not yet unpinned; the
  // authoritative re-read after the DRAM retire catches that case.
  const bool dirty_hint = d->dram.dirty.load(std::memory_order_relaxed) ||
                          (mode == DramMode::kCacheLineGrained &&
                           d->cl.dirty.Any());

  bool nvm_locked = false;
  bool nvm_retired = false;
  const bool want_nvm =
      nvm_pool_ != nullptr && (dirty_hint || admission_queue_ != nullptr);
  if (want_nvm) {
    if (!d->nvm_latch.TryLock()) {
      d->dram_latch.Unlock();
      return false;
    }
    nvm_locked = true;
    if (dirty_hint && d->nvm.Resident()) {
      if (!d->nvm.TryRetire()) {
        d->nvm_latch.Unlock();
        d->dram_latch.Unlock();
        return false;
      }
      nvm_retired = true;
    }
  }
  const auto abort_evict = [&](bool republish_dram) {
    if (republish_dram) d->dram.Publish(mode, 0);
    if (nvm_retired) d->nvm.Publish(DramMode::kFull, 0);
    if (nvm_locked) d->nvm_latch.Unlock();
    d->dram_latch.Unlock();
  };

  if (!d->dram.TryRetire()) {  // pinned or raced
    abort_evict(false);
    return false;
  }

  // Authoritative dirty read: the successful retire synchronized with every
  // unpin, so any writer's dirty store is visible now.
  const bool dirty = d->dram.dirty.load(std::memory_order_relaxed) ||
                     (mode == DramMode::kCacheLineGrained &&
                      d->cl.dirty.Any());
  if (dirty && !dirty_hint) {
    // Raced with a writer after the hint was read; the NVM word was not
    // retired first, so the write-back cannot proceed safely this round.
    abort_evict(true);
    return false;
  }

  if (!dirty) {
    // HyMem's admission queue considers EVERY page evicted from DRAM, not
    // just dirty ones (Section 1): a clean page admitted on its second
    // consideration is copied into NVM so future reads skip the SSD. The
    // probabilistic (Spitfire) mode discards clean pages (Section 3.3).
    if (admission_queue_ != nullptr && nvm_locked && !nvm_retired &&
        mode == DramMode::kFull && !d->NvmResident() &&
        admission_queue_->ShouldAdmit(d->pid)) {
      const frame_id_t nf = AcquireNvmFrame();
      if (nf != kInvalidFrameId) {
        (void)nvm_->Write(nvm_pool_->FrameOffset(nf),
                          dram_pool_->FramePtr(f), kPageSize);
        nvm_pool_->SetOwner(nf, d, d->pid);
        d->nvm.frame.store(nf, std::memory_order_relaxed);
        d->nvm.dirty.store(false, std::memory_order_relaxed);
        d->nvm.Publish(DramMode::kFull, 0);
        nvm_pool_->ReplacerRecordInstall(nf);
        stats_.Add(BufferCounter::kDemotionsToNvm);
      }
    }
    if (nvm_retired) d->nvm.Publish(DramMode::kFull, 0);
    d->dram.frame.store(kInvalidFrameId, std::memory_order_relaxed);
    dram_pool_->FreeFrame(f);
    if (nvm_locked) d->nvm_latch.Unlock();
    d->dram_latch.Unlock();
    stats_.Add(BufferCounter::kDramEvictions);
    return true;
  }

  if (mode == DramMode::kCacheLineGrained) {
    // Dirty units flow back into the NVM copy (always present for CLG and
    // already retired above, since CLG dirt is latch-protected and thus
    // always visible in the hint).
    SPITFIRE_DCHECK(nvm_retired);
    WriteBackUnitsToNvm(d);
    d->nvm.Publish(DramMode::kFull, 0);
    d->dram.frame.store(kInvalidFrameId, std::memory_order_relaxed);
    d->dram.dirty.store(false, std::memory_order_relaxed);
    dram_pool_->FreeFrame(f);
    d->nvm_latch.Unlock();
    d->dram_latch.Unlock();
    stats_.Add(BufferCounter::kDramEvictions);
    stats_.Add(BufferCounter::kDemotionsToNvm);
    return true;
  }

  // Full dirty page: update the NVM copy in place, admit into NVM
  // (probability Nw / HyMem admission queue), or bypass NVM down to SSD
  // (Section 3.4).
  std::byte* dram_ptr = dram_pool_->FramePtr(f);
  bool wrote = false;
  if (nvm_retired) {
    const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
    SPITFIRE_DCHECK(nf != kInvalidFrameId);
    (void)nvm_->Write(nvm_pool_->FrameOffset(nf), dram_ptr, kPageSize);
    d->nvm.dirty.store(true, std::memory_order_relaxed);
    d->nvm.Publish(DramMode::kFull, 0);
    nvm_retired = false;
    stats_.Add(BufferCounter::kDemotionsToNvm);
    wrote = true;
  } else if (nvm_pool_ != nullptr && DecideNvmAdmission(d->pid)) {
    const frame_id_t newf = AcquireNvmFrame();
    if (newf != kInvalidFrameId) {
      (void)nvm_->Write(nvm_pool_->FrameOffset(newf), dram_ptr, kPageSize);
      nvm_pool_->SetOwner(newf, d, d->pid);
      d->nvm.frame.store(newf, std::memory_order_relaxed);
      d->nvm.dirty.store(true, std::memory_order_relaxed);
      d->nvm.Publish(DramMode::kFull, 0);
      nvm_pool_->ReplacerRecordInstall(newf);
      stats_.Add(BufferCounter::kDemotionsToNvm);
      wrote = true;
    }
  }
  if (!wrote) {
    if (!d->ssd_latch.TryLock()) {
      abort_evict(true);
      return false;
    }
    const Status st = WriteToSsd(d->pid, dram_ptr);
    d->ssd_latch.Unlock();
    if (!st.ok()) {
      abort_evict(true);
      return false;
    }
    stats_.Add(BufferCounter::kDemotionsToSsd);
  }
  d->dram.frame.store(kInvalidFrameId, std::memory_order_relaxed);
  d->dram.dirty.store(false, std::memory_order_relaxed);
  dram_pool_->FreeFrame(f);
  if (nvm_locked) d->nvm_latch.Unlock();
  d->dram_latch.Unlock();
  stats_.Add(BufferCounter::kDramEvictions);
  return true;
}

bool BufferShard::TryEvictNvmFrame(frame_id_t f) {
  SharedPageDescriptor* d = nvm_pool_->Owner(f);
  if (d == nullptr) return false;
  if (!d->nvm_latch.TryLock()) return false;
  if (d->nvm.frame.load(std::memory_order_relaxed) != f ||
      nvm_pool_->Owner(f) != d) {
    d->nvm_latch.Unlock();
    return false;
  }
  // A cache-line-grained or mini DRAM copy loads its units from this NVM
  // frame; it pins the NVM copy implicitly. (The DRAM mode cannot become
  // kCacheLineGrained/kMini while we hold the nvm latch — promotion takes
  // it.)
  const DramMode dmode = d->dram.Mode();
  if (dmode == DramMode::kCacheLineGrained || dmode == DramMode::kMini) {
    d->nvm_latch.Unlock();
    return false;
  }
  if (!d->nvm.TryRetire()) {  // pinned or raced
    d->nvm_latch.Unlock();
    return false;
  }
  if (d->nvm.dirty.load(std::memory_order_relaxed)) {
    if (!d->ssd_latch.TryLock()) {
      d->nvm.Publish(DramMode::kFull, 0);
      d->nvm_latch.Unlock();
      return false;
    }
    std::byte* ptr = nvm_pool_->FramePtr(f);
    nvm_->OnDirectRead(nvm_pool_->FrameOffset(f), kPageSize,
                       /*sequential=*/true);
    const Status st = WriteToSsd(d->pid, ptr);
    d->ssd_latch.Unlock();
    if (!st.ok()) {
      d->nvm.Publish(DramMode::kFull, 0);
      d->nvm_latch.Unlock();
      return false;
    }
    d->nvm.dirty.store(false, std::memory_order_relaxed);
  }
  d->nvm.frame.store(kInvalidFrameId, std::memory_order_relaxed);
  nvm_pool_->FreeFrame(f);
  d->nvm_latch.Unlock();
  stats_.Add(BufferCounter::kNvmEvictions);
  return true;
}

// ---------------------------------------------------------------------------
// Mini pages
// ---------------------------------------------------------------------------

std::byte* BufferShard::MiniPtr(uint32_t mini_id) {
  const size_t host = mini_id / mini_.per_frame;
  const size_t slot = mini_id % mini_.per_frame;
  return dram_pool_->FramePtr(mini_.host_frames[host]) +
         slot * MiniPageView::BytesRequired(options_.load_granularity);
}

uint32_t BufferShard::AcquireMiniSlot() {
  for (int attempt = 0; attempt < 16; ++attempt) {
    uint32_t m;
    if (mini_.free_list->TryPop(&m)) return m;
    mini_.replacer->PickVictim(
        [this](frame_id_t v) { return TryEvictMini(v); });
  }
  return UINT32_MAX;
}

bool BufferShard::TryEvictMini(uint32_t mini_id) {
  SharedPageDescriptor* d =
      mini_.owners[mini_id].load(std::memory_order_acquire);
  if (d == nullptr) return false;
  if (!d->dram_latch.TryLock()) return false;
  if (d->dram.Mode() != DramMode::kMini ||
      d->mini_id.load(std::memory_order_relaxed) != mini_id) {
    d->dram_latch.Unlock();
    return false;
  }
  // Mini-page dirt is written under the dram latch, so this read is
  // authoritative. Dirty units make the NVM copy stale: retire the NVM
  // word BEFORE the DRAM word (see TryEvictDramFrame) so no reader can
  // fall through to the stale NVM bytes mid-write-back.
  MiniPageView mp(MiniPtr(mini_id));
  const bool dirty = mp.AnyDirty();
  if (dirty) {
    if (!d->nvm_latch.TryLock()) {
      d->dram_latch.Unlock();
      return false;
    }
    if (!d->nvm.TryRetire()) {
      d->nvm_latch.Unlock();
      d->dram_latch.Unlock();
      return false;
    }
  }
  if (!d->dram.TryRetire()) {  // pinned or raced
    if (dirty) {
      d->nvm.Publish(DramMode::kFull, 0);
      d->nvm_latch.Unlock();
    }
    d->dram_latch.Unlock();
    return false;
  }
  if (dirty) {
    const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
    SPITFIRE_DCHECK(nf != kInvalidFrameId);
    const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
    const uint32_t usize = mp.meta()->unit_size;
    for (size_t s = 0; s < mp.count(); ++s) {
      if (!mp.IsDirty(s)) continue;
      const uint16_t unit = mp.meta()->slots[s];
      (void)nvm_->Write(nvm_off + static_cast<uint64_t>(unit) * usize,
                        mp.UnitPtr(s), usize);
    }
    d->nvm.dirty.store(true, std::memory_order_relaxed);
    d->nvm.Publish(DramMode::kFull, 0);
    d->nvm_latch.Unlock();
  }
  mini_.owners[mini_id].store(nullptr, std::memory_order_release);
  while (!mini_.free_list->TryPush(mini_id)) __builtin_ia32_pause();
  d->dram_latch.Unlock();
  stats_.Add(BufferCounter::kDramEvictions);
  return true;
}

Status BufferShard::PromoteMiniToFull(SharedPageDescriptor* d) {
  // dram latch held; mode == kMini; the caller (and possibly other guard
  // holders) keep pins on the DRAM copy throughout — SwitchMode preserves
  // them.
  const uint32_t mini_id = d->mini_id.load(std::memory_order_relaxed);
  MiniPageView mp(MiniPtr(mini_id));
  const frame_id_t f = AcquireDramFrame();
  if (f == kInvalidFrameId) return Status::OutOfMemory("no frame for overflow");

  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  SPITFIRE_DCHECK(nf != kInvalidFrameId);
  std::byte* dst = dram_pool_->FramePtr(f);
  const Status read_st = nvm_->Read(nvm_pool_->FrameOffset(nf), dst, kPageSize);
  if (!read_st.ok()) {
    dram_pool_->FreeFrame(f);
    return read_st;
  }
  // Overlay units dirtied while in the mini page: they are newer than the
  // NVM copy.
  const uint32_t usize = mp.meta()->unit_size;
  bool any_dirty = false;
  for (size_t s = 0; s < mp.count(); ++s) {
    if (!mp.IsDirty(s)) continue;
    const uint16_t unit = mp.meta()->slots[s];
    std::memcpy(dst + static_cast<size_t>(unit) * usize, mp.UnitPtr(s), usize);
    any_dirty = true;
  }
  dram_pool_->SetOwner(f, d, d->pid);
  d->dram.frame.store(f, std::memory_order_relaxed);
  if (any_dirty) d->dram.dirty.store(true, std::memory_order_relaxed);
  d->dram.SwitchMode(DramMode::kFull);
  dram_pool_->ReplacerRecordInstall(f);
  mini_.owners[mini_id].store(nullptr, std::memory_order_release);
  while (!mini_.free_list->TryPush(mini_id)) __builtin_ia32_pause();
  stats_.Add(BufferCounter::kMiniPagePromotions);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Guard data plane
// ---------------------------------------------------------------------------

void BufferShard::EnsureUnitsResident(SharedPageDescriptor* d, size_t offset,
                                        size_t size) {
  const uint32_t usize = d->cl.unit_size;
  const size_t first = offset / usize;
  const size_t last = (offset + (size ? size : 1) - 1) / usize;
  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  SPITFIRE_DCHECK(nf != kInvalidFrameId);
  const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
  std::byte* dram_ptr =
      dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
  for (size_t u = first; u <= last; ++u) {
    if (d->cl.resident.Test(u)) continue;
    (void)nvm_->ReadFineGrained(nvm_off + u * usize, dram_ptr + u * usize,
                                usize);
    d->cl.resident.Set(u);
    stats_.Add(BufferCounter::kFineGrainedLoads);
  }
}

Status BufferShard::GuardRead(SharedPageDescriptor* d, Tier tier,
                                size_t offset, size_t size, void* dst) {
  if (offset + size > kPageSize) {
    return Status::InvalidArgument("page access out of range");
  }
  if (tier == Tier::kNvm) {
    const frame_id_t f = d->nvm.frame.load(std::memory_order_acquire);
    SPITFIRE_DCHECK(f != kInvalidFrameId);
    std::memcpy(dst, nvm_pool_->FramePtr(f) + offset, size);
    nvm_->OnDirectRead(nvm_pool_->FrameOffset(f) + offset, size);
    return Status::OK();
  }

  // Fast path for fully materialized DRAM pages.
  if (d->dram.Mode() == DramMode::kFull) {
    const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
    std::memcpy(dst, dram_pool_->FramePtr(f) + offset, size);
    dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + offset, size);
    return Status::OK();
  }

  SpinLatchGuard g(d->dram_latch);
  const DramMode mode = d->dram.Mode();
  switch (mode) {
    case DramMode::kFull: {
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dst, dram_pool_->FramePtr(f) + offset, size);
      dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + offset, size);
      return Status::OK();
    }
    case DramMode::kCacheLineGrained: {
      EnsureUnitsResident(d, offset, size);
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dst, dram_pool_->FramePtr(f) + offset, size);
      dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + offset, size);
      return Status::OK();
    }
    case DramMode::kMini: {
      MiniPageView mp(MiniPtr(d->mini_id.load(std::memory_order_relaxed)));
      const uint32_t usize = mp.meta()->unit_size;
      const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
      const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
      size_t pos = offset;
      const size_t end = offset + size;
      auto* out = static_cast<std::byte*>(dst);
      while (pos < end) {
        const uint16_t unit = static_cast<uint16_t>(pos / usize);
        int slot = mp.FindSlot(unit);
        if (slot < 0) {
          slot = mp.Insert(unit);
          if (slot < 0) {
            // Overflow: transparently promote to a full page and finish
            // the read there.
            SPITFIRE_RETURN_NOT_OK(PromoteMiniToFull(d));
            const frame_id_t f =
                d->dram.frame.load(std::memory_order_relaxed);
            std::memcpy(out, dram_pool_->FramePtr(f) + pos, end - pos);
            dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + pos,
                                        end - pos);
            return Status::OK();
          }
          (void)nvm_->ReadFineGrained(
              nvm_off + static_cast<uint64_t>(unit) * usize, mp.UnitPtr(slot),
              usize);
          stats_.Add(BufferCounter::kFineGrainedLoads);
        }
        const size_t unit_begin = static_cast<size_t>(unit) * usize;
        const size_t in_off = pos - unit_begin;
        const size_t n = std::min(end - pos, usize - in_off);
        std::memcpy(out, mp.UnitPtr(slot) + in_off, n);
        out += n;
        pos += n;
      }
      return Status::OK();
    }
    case DramMode::kNone:
      break;
  }
  SPITFIRE_CHECK(false && "GuardRead on non-resident page");
  return Status::Corruption("unreachable");
}

Status BufferShard::GuardWrite(SharedPageDescriptor* d, Tier tier,
                                 size_t offset, size_t size, const void* src) {
  if (offset + size > kPageSize) {
    return Status::InvalidArgument("page access out of range");
  }
  if (tier == Tier::kNvm) {
    const frame_id_t f = d->nvm.frame.load(std::memory_order_acquire);
    SPITFIRE_DCHECK(f != kInvalidFrameId);
    std::memcpy(nvm_pool_->FramePtr(f) + offset, src, size);
    nvm_->OnDirectWrite(nvm_pool_->FrameOffset(f) + offset, size);
    d->nvm.dirty.store(true, std::memory_order_release);
    return Status::OK();
  }

  if (d->dram.Mode() == DramMode::kFull) {
    const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
    std::memcpy(dram_pool_->FramePtr(f) + offset, src, size);
    dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + offset, size);
    d->dram.dirty.store(true, std::memory_order_release);
    return Status::OK();
  }

  SpinLatchGuard g(d->dram_latch);
  const DramMode mode = d->dram.Mode();
  switch (mode) {
    case DramMode::kFull: {
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dram_pool_->FramePtr(f) + offset, src, size);
      dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + offset, size);
      d->dram.dirty.store(true, std::memory_order_release);
      return Status::OK();
    }
    case DramMode::kCacheLineGrained: {
      // Writes that do not cover whole units require the surrounding bytes
      // to be resident first.
      EnsureUnitsResident(d, offset, size);
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dram_pool_->FramePtr(f) + offset, src, size);
      dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + offset, size);
      const uint32_t usize = d->cl.unit_size;
      for (size_t u = offset / usize; u <= (offset + size - 1) / usize; ++u) {
        d->cl.dirty.Set(u);
      }
      d->dram.dirty.store(true, std::memory_order_release);
      return Status::OK();
    }
    case DramMode::kMini: {
      MiniPageView mp(MiniPtr(d->mini_id.load(std::memory_order_relaxed)));
      const uint32_t usize = mp.meta()->unit_size;
      const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
      const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
      size_t pos = offset;
      const size_t end = offset + size;
      const auto* in = static_cast<const std::byte*>(src);
      while (pos < end) {
        const uint16_t unit = static_cast<uint16_t>(pos / usize);
        int slot = mp.FindSlot(unit);
        if (slot < 0) {
          slot = mp.Insert(unit);
          if (slot < 0) {
            SPITFIRE_RETURN_NOT_OK(PromoteMiniToFull(d));
            const frame_id_t f =
                d->dram.frame.load(std::memory_order_relaxed);
            std::memcpy(dram_pool_->FramePtr(f) + pos, in, end - pos);
            dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + pos,
                                         end - pos);
            d->dram.dirty.store(true, std::memory_order_release);
            return Status::OK();
          }
          (void)nvm_->ReadFineGrained(
              nvm_off + static_cast<uint64_t>(unit) * usize, mp.UnitPtr(slot),
              usize);
          stats_.Add(BufferCounter::kFineGrainedLoads);
        }
        const size_t unit_begin = static_cast<size_t>(unit) * usize;
        const size_t in_off = pos - unit_begin;
        const size_t n = std::min(end - pos, usize - in_off);
        std::memcpy(mp.UnitPtr(slot) + in_off, in, n);
        mp.MarkDirty(static_cast<size_t>(slot));
        in += n;
        pos += n;
      }
      d->dram.dirty.store(true, std::memory_order_release);
      return Status::OK();
    }
    case DramMode::kNone:
      break;
  }
  SPITFIRE_CHECK(false && "GuardWrite on non-resident page");
  return Status::Corruption("unreachable");
}

std::byte* BufferShard::GuardRawData(SharedPageDescriptor* d, Tier tier,
                                       bool for_write) {
  if (tier == Tier::kNvm) {
    const frame_id_t f = d->nvm.frame.load(std::memory_order_acquire);
    SPITFIRE_DCHECK(f != kInvalidFrameId);
    if (for_write) d->nvm.dirty.store(true, std::memory_order_release);
    nvm_->OnDirectRead(nvm_pool_->FrameOffset(f), 256);
    return nvm_pool_->FramePtr(f);
  }
  if (d->dram.Mode() == DramMode::kFull) {
    if (for_write) d->dram.dirty.store(true, std::memory_order_release);
    return dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
  }
  // Materialize cache-line-grained / mini representations into a full
  // frame so callers can treat the page as one contiguous 16 KB buffer.
  SpinLatchGuard g(d->dram_latch);
  DramMode mode = d->dram.Mode();
  if (mode == DramMode::kMini) {
    if (!PromoteMiniToFull(d).ok()) return nullptr;
    mode = DramMode::kFull;
  } else if (mode == DramMode::kCacheLineGrained) {
    EnsureUnitsResident(d, 0, kPageSize);
    if (d->cl.dirty.Any()) d->dram.dirty.store(true, std::memory_order_relaxed);
    d->dram.SwitchMode(DramMode::kFull);
    mode = DramMode::kFull;
  }
  if (mode != DramMode::kFull) return nullptr;
  if (for_write) d->dram.dirty.store(true, std::memory_order_release);
  return dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Flushing, recovery, introspection
// ---------------------------------------------------------------------------

Status BufferShard::WriteToSsd(page_id_t pid, const std::byte* data) {
  // Every page image headed to SSD passes through here — the one place a
  // whole-page checksum can be stamped so recovery can detect torn or
  // short page writes. Stamp a private copy: the source frame may be
  // concurrently repinned the moment the write is staged.
  thread_local std::unique_ptr<std::byte[]> stamp_buf;
  if (stamp_buf == nullptr) stamp_buf = std::make_unique<std::byte[]>(kPageSize);
  std::memcpy(stamp_buf.get(), data, kPageSize);
  StampPageChecksum(stamp_buf.get());
  // Asynchronous staged write: the scheduler copies the image, so the
  // buffer may be reused the moment this returns.
  if (io_ != nullptr) return io_->WritePage(SsdOffset(pid), stamp_buf.get());
  return ssd_->Write(SsdOffset(pid), stamp_buf.get(), kPageSize);
}

Status BufferShard::DrainIo() {
  return io_ != nullptr ? io_->Drain() : Status::OK();
}

Status BufferShard::FlushPage(page_id_t pid) {
  const Status st = FlushPageImpl(pid);
  const Status drained = DrainIo();
  SPITFIRE_RETURN_NOT_OK(st);
  return drained;
}

Status BufferShard::FlushPageImpl(page_id_t pid, size_t* skipped) {
  SharedPageDescriptor* d = nullptr;
  if (!mapping_table_.Find(pid, &d)) return Status::OK();  // never buffered
  SpinLatchGuard gd(d->dram_latch);
  SpinLatchGuard gn(d->nvm_latch);
  SpinLatchGuard gs(d->ssd_latch);

  // Guard holders may be mutating page contents; flushing a pinned page
  // could persist a torn image. Each copy is retired for the duration of
  // its copy-out, so optimistic pins cannot land mid-flush; copies that
  // cannot be retired (pinned) are skipped — the WAL keeps them
  // recoverable and a later flush round catches them.
  const DramMode dmode = d->dram.Mode();
  if (dmode != DramMode::kNone) {
    // Dirty DRAM state makes any NVM copy stale, so the NVM word must be
    // retired BEFORE the DRAM word: a reader that loses its optimistic
    // DRAM pin mid-flush would otherwise fall through to TryPinNvm and
    // read pre-flush bytes (see TryEvictDramFrame). The dirty reads here
    // are latch-authoritative for CLG/mini (their dirt is written under
    // the dram latch); for kFull a just-unpinned writer's store may be
    // missed, which only postpones that page to a later round.
    bool mini_dirty = false;
    if (dmode == DramMode::kMini) {
      MiniPageView mp(MiniPtr(d->mini_id.load(std::memory_order_relaxed)));
      mini_dirty = mp.AnyDirty();
    }
    const bool clg_dirty =
        dmode == DramMode::kCacheLineGrained && d->cl.dirty.Any();
    const bool full_dirty = dmode == DramMode::kFull &&
                            d->dram.dirty.load(std::memory_order_relaxed);
    const bool nvm_resident = d->NvmResident();
    const bool need_nvm =
        nvm_resident && (mini_dirty || clg_dirty || full_dirty);
    if (need_nvm && !d->nvm.TryRetire()) {
      if (skipped != nullptr) ++*skipped;
      return Status::OK();  // NVM copy actively referenced; later round
    }
    if (!d->dram.TryRetire()) {  // actively referenced
      if (need_nvm) d->nvm.Publish(DramMode::kFull, 0);
      if (skipped != nullptr && (mini_dirty || clg_dirty || full_dirty)) {
        ++*skipped;
      }
      return Status::OK();
    }
    Status st = Status::OK();
    if (clg_dirty) {
      WriteBackUnitsToNvm(d);
      d->cl.dirty.Reset();
      d->dram.dirty.store(false, std::memory_order_relaxed);
    } else if (mini_dirty) {
      MiniPageView mp(MiniPtr(d->mini_id.load(std::memory_order_relaxed)));
      const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
      const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
      const uint32_t usize = mp.meta()->unit_size;
      for (size_t s = 0; s < mp.count(); ++s) {
        if (!mp.IsDirty(s)) continue;
        const uint16_t unit = mp.meta()->slots[s];
        (void)nvm_->Write(nvm_off + static_cast<uint64_t>(unit) * usize,
                          mp.UnitPtr(s), usize);
      }
      mp.meta()->dirty_mask = 0;
      d->nvm.dirty.store(true, std::memory_order_relaxed);
      d->dram.dirty.store(false, std::memory_order_relaxed);
    } else if (full_dirty) {
      // After the SSD write the NVM copy (if any) is overwritten with the
      // freshest data so later direct NVM reads never observe stale bytes.
      std::byte* ptr =
          dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
      st = WriteToSsd(pid, ptr);
      if (st.ok()) {
        if (nvm_resident) {
          const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
          (void)nvm_->Write(nvm_pool_->FrameOffset(nf), ptr, kPageSize);
          d->nvm.dirty.store(false, std::memory_order_relaxed);
        }
        d->dram.dirty.store(false, std::memory_order_relaxed);
      }
    }
    if (need_nvm) d->nvm.Publish(DramMode::kFull, 0);
    d->dram.Publish(dmode, 0);
    SPITFIRE_RETURN_NOT_OK(st);
  }

  if (d->NvmResident() && d->nvm.dirty.load(std::memory_order_relaxed)) {
    if (!d->nvm.TryRetire()) {
      if (skipped != nullptr) ++*skipped;
      return Status::OK();  // actively referenced
    }
    const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
    std::byte* ptr = nvm_pool_->FramePtr(nf);
    nvm_->OnDirectRead(nvm_pool_->FrameOffset(nf), kPageSize,
                       /*sequential=*/true);
    const Status st = WriteToSsd(pid, ptr);
    if (st.ok()) d->nvm.dirty.store(false, std::memory_order_relaxed);
    d->nvm.Publish(DramMode::kFull, 0);
    SPITFIRE_RETURN_NOT_OK(st);
  }
  return Status::OK();
}

Status BufferShard::FlushAll(bool include_nvm, size_t* skipped) {
  Status result = Status::OK();
  if (include_nvm) {
    // Collect first: FlushPage re-enters the mapping table, so it must not
    // run under ForEach's shard latch.
    std::vector<page_id_t> pids;
    mapping_table_.ForEach(
        [&](const page_id_t& pid, SharedPageDescriptor*&) {
          pids.push_back(pid);
        });
    for (page_id_t pid : pids) {
      Status st = FlushPageImpl(pid, skipped);
      // Drain per page rather than once per sweep: the I/O scheduler would
      // otherwise coalesce the whole batch into a handful of device ops,
      // and this path feeds checkpoints whose write accounting (and fault
      // injection points) assume one write per flushed page.
      const Status drained = DrainIo();
      if (st.ok()) st = drained;
      if (!st.ok()) result = st;
    }
    return result;
  }
  mapping_table_.ForEach([&](const page_id_t& pid, SharedPageDescriptor*& d) {
    {
      // Background checkpointing (Section 5.2): only dirty DRAM pages are
      // pushed down; NVM-resident modifications are already persistent.
      SpinLatchGuard gd(d->dram_latch);
      const DramMode mode = d->dram.Mode();
      if (mode == DramMode::kFull &&
          d->dram.dirty.load(std::memory_order_relaxed)) {
        SpinLatchGuard gn(d->nvm_latch);
        SpinLatchGuard gs(d->ssd_latch);
        // NVM-before-DRAM retire order: the dirty DRAM copy makes the NVM
        // copy stale, see FlushPage / TryEvictDramFrame.
        const bool nvm_resident = d->NvmResident();
        if (nvm_resident && !d->nvm.TryRetire()) {
          if (skipped != nullptr) ++*skipped;
          return;
        }
        if (!d->dram.TryRetire()) {  // actively referenced
          if (nvm_resident) d->nvm.Publish(DramMode::kFull, 0);
          if (skipped != nullptr) ++*skipped;
          return;
        }
        std::byte* ptr = dram_pool_->FramePtr(
            d->dram.frame.load(std::memory_order_relaxed));
        const Status st = WriteToSsd(pid, ptr);
        if (st.ok()) {
          if (nvm_resident) {
            const frame_id_t nf =
                d->nvm.frame.load(std::memory_order_relaxed);
            (void)nvm_->Write(nvm_pool_->FrameOffset(nf), ptr, kPageSize);
            d->nvm.dirty.store(false, std::memory_order_relaxed);
          }
          d->dram.dirty.store(false, std::memory_order_relaxed);
        } else {
          result = st;
        }
        if (nvm_resident) d->nvm.Publish(DramMode::kFull, 0);
        d->dram.Publish(mode, 0);
      } else if (mode == DramMode::kCacheLineGrained && d->cl.dirty.Any()) {
        SpinLatchGuard gn(d->nvm_latch);
        // NVM-before-DRAM retire order, as above.
        if (!d->nvm.TryRetire()) {
          if (skipped != nullptr) ++*skipped;
          return;
        }
        if (!d->dram.TryRetire()) {  // actively referenced
          d->nvm.Publish(DramMode::kFull, 0);
          if (skipped != nullptr) ++*skipped;
          return;
        }
        WriteBackUnitsToNvm(d);
        d->cl.dirty.Reset();
        d->dram.dirty.store(false, std::memory_order_relaxed);
        d->nvm.Publish(DramMode::kFull, 0);
        d->dram.Publish(mode, 0);
      }
    }
  });
  // One drain for the whole sweep: the staged writes coalesce while the
  // sweep runs, and any async error surfaces here.
  const Status drained = DrainIo();
  if (result.ok()) result = drained;
  return result;
}

Status BufferShard::RecoverNvmResidentPages() {
  if (nvm_pool_ == nullptr) {
    return Status::InvalidArgument("no NVM pool to recover");
  }
  // Drain the free list; re-add frames that the persistent frame table
  // marks as free, claim the rest.
  std::vector<frame_id_t> all;
  frame_id_t f;
  while (nvm_pool_->TryAllocateFrame(&f)) all.push_back(f);
  size_t recovered = 0;
  for (frame_id_t frame : all) {
    const page_id_t pid = nvm_pool_->PersistedOwner(frame);
    bool valid = pid != kInvalidPageId;
    if (valid) {
      PageView view(nvm_pool_->FramePtr(frame));
      valid = view.header()->IsValid() && view.header()->page_id == pid;
    }
    if (!valid) {
      nvm_pool_->FreeFrame(frame);
      continue;
    }
    if (!OwnsPage(pid)) {
      // The persistent frame table was written under a different shard
      // count: this frame's page routes to another shard's slice. Bail
      // without freeing the frame (FreeFrame would zero the persisted
      // entry and destroy the only copy); the caller must re-open the
      // device with the num_shards it was populated under.
      return Status::InvalidArgument(
          "persisted NVM page routes to a different shard; recover with "
          "the original num_shards");
    }
    SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
    d->nvm.frame.store(frame, std::memory_order_relaxed);
    // NVM copies may be newer than their SSD counterparts; treat them as
    // dirty so they flow down before being dropped.
    d->nvm.dirty.store(true, std::memory_order_relaxed);
    d->nvm.Publish(DramMode::kFull, 0);
    nvm_pool_->SetOwner(frame, d, pid);
    page_id_t expect = next_page_id_->load(std::memory_order_relaxed);
    while (pid + 1 > expect &&
           !next_page_id_->compare_exchange_weak(expect, pid + 1)) {
    }
    ++recovered;
  }
  (void)recovered;
  return Status::OK();
}

void BufferShard::InclusivityCounts(size_t* both, size_t* either) const {
  auto* self = const_cast<BufferShard*>(this);
  self->mapping_table_.ForEach(
      [&](const page_id_t&, SharedPageDescriptor*& d) {
        const bool in_dram = d->DramResident();
        const bool in_nvm = d->NvmResident();
        if (in_dram && in_nvm) ++*both;
        if (in_dram || in_nvm) ++*either;
      });
}

double BufferShard::InclusivityRatio() const {
  size_t both = 0;
  size_t either = 0;
  InclusivityCounts(&both, &either);
  return either == 0 ? 0.0
                     : static_cast<double>(both) / static_cast<double>(either);
}

size_t BufferShard::DramResidentPages() const {
  size_t n = 0;
  auto* self = const_cast<BufferShard*>(this);
  self->mapping_table_.ForEach(
      [&](const page_id_t&, SharedPageDescriptor*& d) {
        if (d->DramResident()) ++n;
      });
  return n;
}

bool BufferShard::IsDramResident(page_id_t pid) const {
  SharedPageDescriptor* d = nullptr;
  auto* self = const_cast<BufferShard*>(this);
  if (!self->mapping_table_.Find(pid, &d)) return false;
  return d->DramResident();
}

bool BufferShard::IsNvmResident(page_id_t pid) const {
  SharedPageDescriptor* d = nullptr;
  auto* self = const_cast<BufferShard*>(this);
  if (!self->mapping_table_.Find(pid, &d)) return false;
  return d->NvmResident();
}

size_t BufferShard::NvmResidentPages() const {
  size_t n = 0;
  auto* self = const_cast<BufferShard*>(this);
  self->mapping_table_.ForEach(
      [&](const page_id_t&, SharedPageDescriptor*& d) {
        if (d->NvmResident()) ++n;
      });
  return n;
}

}  // namespace spitfire
