#ifndef SPITFIRE_BUFFER_STATS_H_
#define SPITFIRE_BUFFER_STATS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/macros.h"

namespace spitfire {

// Buffer manager counters.
enum class BufferCounter : uint8_t {
  kDramHits = 0,
  kNvmHits,             // served directly from NVM
  kSsdFetches,          // page misses that went to SSD
  kPromotions,          // NVM → DRAM migrations
  kDemotionsToNvm,      // DRAM → NVM on eviction
  kDemotionsToSsd,      // DRAM → SSD (NVM bypassed)
  kNvmInstalls,         // SSD → NVM on read (Nr path)
  kNvmEvictions,        // NVM → SSD / dropped
  kDramEvictions,
  kFineGrainedLoads,    // cache-line units loaded
  kMiniPageAdmits,
  kMiniPagePromotions,  // mini → full overflow
  kReadAheadInstalls,   // pages prefetched by the I/O scheduler
  kMissSubmits,         // misses that led (submitted) a device read
  kMissJoins,           // misses that joined an already in-flight read
  kReplacerSampled,     // hits forwarded to Replacer::RecordAccess
  kWriteFetches,        // fetches submitted with write intent
  kNumCounters,
};

// Point-in-time aggregation of BufferStats; plain integers, safe to copy
// and diff. Field names match the historical counter names.
struct BufferStatsSnapshot {
  uint64_t dram_hits = 0;
  uint64_t nvm_hits = 0;
  uint64_t ssd_fetches = 0;
  uint64_t promotions = 0;
  uint64_t demotions_to_nvm = 0;
  uint64_t demotions_to_ssd = 0;
  uint64_t nvm_installs = 0;
  uint64_t nvm_evictions = 0;
  uint64_t dram_evictions = 0;
  uint64_t fine_grained_loads = 0;
  uint64_t mini_page_admits = 0;
  uint64_t mini_page_promotions = 0;
  uint64_t read_ahead_installs = 0;
  uint64_t miss_submits = 0;
  uint64_t miss_joins = 0;
  uint64_t replacer_sampled = 0;
  // Derived, not counted: hits the 1-in-N sampler dropped. Counting these
  // per hit would put an atomic RMW back on the latch-free hit path.
  uint64_t replacer_suppressed = 0;
  uint64_t write_fetches = 0;

  // Every successful FetchPage increments exactly one of these three.
  uint64_t TotalFetches() const { return dram_hits + nvm_hits + ssd_fetches; }

  // Field-wise sum; the sharded buffer manager merges its per-shard
  // snapshots through this.
  void Accumulate(const BufferStatsSnapshot& o) {
    dram_hits += o.dram_hits;
    nvm_hits += o.nvm_hits;
    ssd_fetches += o.ssd_fetches;
    promotions += o.promotions;
    demotions_to_nvm += o.demotions_to_nvm;
    demotions_to_ssd += o.demotions_to_ssd;
    nvm_installs += o.nvm_installs;
    nvm_evictions += o.nvm_evictions;
    dram_evictions += o.dram_evictions;
    fine_grained_loads += o.fine_grained_loads;
    mini_page_admits += o.mini_page_admits;
    mini_page_promotions += o.mini_page_promotions;
    read_ahead_installs += o.read_ahead_installs;
    miss_submits += o.miss_submits;
    miss_joins += o.miss_joins;
    replacer_sampled += o.replacer_sampled;
    replacer_suppressed += o.replacer_suppressed;
    write_fetches += o.write_fetches;
  }

  std::string ToString() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "dram_hits=%llu nvm_hits=%llu ssd_fetches=%llu promotions=%llu "
        "dem_nvm=%llu dem_ssd=%llu nvm_installs=%llu nvm_evict=%llu "
        "dram_evict=%llu fg_loads=%llu mini_admits=%llu mini_promos=%llu "
        "ra_installs=%llu miss_submits=%llu miss_joins=%llu "
        "repl_sampled=%llu repl_suppressed=%llu write_fetches=%llu",
        (unsigned long long)dram_hits, (unsigned long long)nvm_hits,
        (unsigned long long)ssd_fetches, (unsigned long long)promotions,
        (unsigned long long)demotions_to_nvm,
        (unsigned long long)demotions_to_ssd,
        (unsigned long long)nvm_installs, (unsigned long long)nvm_evictions,
        (unsigned long long)dram_evictions,
        (unsigned long long)fine_grained_loads,
        (unsigned long long)mini_page_admits,
        (unsigned long long)mini_page_promotions,
        (unsigned long long)read_ahead_installs,
        (unsigned long long)miss_submits, (unsigned long long)miss_joins,
        (unsigned long long)replacer_sampled,
        (unsigned long long)replacer_suppressed,
        (unsigned long long)write_fetches);
    return buf;
  }
};

// Sharded buffer manager counters. The hit path increments one counter per
// fetch, so a single shared cacheline of atomics becomes a coherence
// hotspot at high thread counts; instead each thread hashes to one of
// kShards cacheline-padded slabs and Snapshot() sums them for reporting.
// All increments are relaxed — counters are for reporting only.
class BufferStats {
 public:
  static constexpr size_t kShards = 16;

  void Add(BufferCounter c, uint64_t n = 1) {
    shards_[ShardIndex()].counters[static_cast<size_t>(c)].fetch_add(
        n, std::memory_order_relaxed);
  }

  BufferStatsSnapshot Snapshot() const {
    uint64_t sums[static_cast<size_t>(BufferCounter::kNumCounters)] = {};
    for (const Shard& s : shards_) {
      for (size_t i = 0; i < static_cast<size_t>(BufferCounter::kNumCounters);
           ++i) {
        sums[i] += s.counters[i].load(std::memory_order_relaxed);
      }
    }
    BufferStatsSnapshot snap;
    snap.dram_hits = sums[static_cast<size_t>(BufferCounter::kDramHits)];
    snap.nvm_hits = sums[static_cast<size_t>(BufferCounter::kNvmHits)];
    snap.ssd_fetches = sums[static_cast<size_t>(BufferCounter::kSsdFetches)];
    snap.promotions = sums[static_cast<size_t>(BufferCounter::kPromotions)];
    snap.demotions_to_nvm =
        sums[static_cast<size_t>(BufferCounter::kDemotionsToNvm)];
    snap.demotions_to_ssd =
        sums[static_cast<size_t>(BufferCounter::kDemotionsToSsd)];
    snap.nvm_installs = sums[static_cast<size_t>(BufferCounter::kNvmInstalls)];
    snap.nvm_evictions =
        sums[static_cast<size_t>(BufferCounter::kNvmEvictions)];
    snap.dram_evictions =
        sums[static_cast<size_t>(BufferCounter::kDramEvictions)];
    snap.fine_grained_loads =
        sums[static_cast<size_t>(BufferCounter::kFineGrainedLoads)];
    snap.mini_page_admits =
        sums[static_cast<size_t>(BufferCounter::kMiniPageAdmits)];
    snap.mini_page_promotions =
        sums[static_cast<size_t>(BufferCounter::kMiniPagePromotions)];
    snap.read_ahead_installs =
        sums[static_cast<size_t>(BufferCounter::kReadAheadInstalls)];
    snap.miss_submits = sums[static_cast<size_t>(BufferCounter::kMissSubmits)];
    snap.miss_joins = sums[static_cast<size_t>(BufferCounter::kMissJoins)];
    snap.replacer_sampled =
        sums[static_cast<size_t>(BufferCounter::kReplacerSampled)];
    // Every DRAM/NVM hit either forwards to the replacer or is suppressed;
    // derive the suppressed count instead of paying for it on the hit path.
    const uint64_t hits = snap.dram_hits + snap.nvm_hits;
    snap.replacer_suppressed =
        hits > snap.replacer_sampled ? hits - snap.replacer_sampled : 0;
    snap.write_fetches =
        sums[static_cast<size_t>(BufferCounter::kWriteFetches)];
    return snap;
  }

  void Reset() {
    for (Shard& s : shards_) {
      for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
    }
  }

  std::string ToString() const { return Snapshot().ToString(); }

 private:
  struct alignas(kCacheLineSize) Shard {
    std::atomic<uint64_t> counters[static_cast<size_t>(
        BufferCounter::kNumCounters)] = {};
  };

  // Threads are striped over shards round-robin at first use; on machines
  // with ≤ kShards active workers every thread gets a private slab.
  static size_t ShardIndex() {
    static std::atomic<size_t> next{0};
    thread_local size_t idx =
        next.fetch_add(1, std::memory_order_relaxed) % kShards;
    return idx;
  }

  Shard shards_[kShards];
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_STATS_H_
