#ifndef SPITFIRE_BUFFER_STATS_H_
#define SPITFIRE_BUFFER_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace spitfire {

// Buffer manager counters. All relaxed atomics; read for reporting only.
struct BufferStats {
  std::atomic<uint64_t> dram_hits{0};
  std::atomic<uint64_t> nvm_hits{0};       // served directly from NVM
  std::atomic<uint64_t> ssd_fetches{0};    // page misses that went to SSD
  std::atomic<uint64_t> promotions{0};     // NVM → DRAM migrations
  std::atomic<uint64_t> demotions_to_nvm{0};  // DRAM → NVM on eviction
  std::atomic<uint64_t> demotions_to_ssd{0};  // DRAM → SSD (NVM bypassed)
  std::atomic<uint64_t> nvm_installs{0};   // SSD → NVM on read (Nr path)
  std::atomic<uint64_t> nvm_evictions{0};  // NVM → SSD / dropped
  std::atomic<uint64_t> dram_evictions{0};
  std::atomic<uint64_t> fine_grained_loads{0};  // cache-line units loaded
  std::atomic<uint64_t> mini_page_admits{0};
  std::atomic<uint64_t> mini_page_promotions{0};  // mini → full overflow

  void Reset() {
    dram_hits = 0;
    nvm_hits = 0;
    ssd_fetches = 0;
    promotions = 0;
    demotions_to_nvm = 0;
    demotions_to_ssd = 0;
    nvm_installs = 0;
    nvm_evictions = 0;
    dram_evictions = 0;
    fine_grained_loads = 0;
    mini_page_admits = 0;
    mini_page_promotions = 0;
  }

  std::string ToString() const {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "dram_hits=%llu nvm_hits=%llu ssd_fetches=%llu promotions=%llu "
        "dem_nvm=%llu dem_ssd=%llu nvm_installs=%llu nvm_evict=%llu "
        "dram_evict=%llu fg_loads=%llu mini_admits=%llu mini_promos=%llu",
        (unsigned long long)dram_hits.load(),
        (unsigned long long)nvm_hits.load(),
        (unsigned long long)ssd_fetches.load(),
        (unsigned long long)promotions.load(),
        (unsigned long long)demotions_to_nvm.load(),
        (unsigned long long)demotions_to_ssd.load(),
        (unsigned long long)nvm_installs.load(),
        (unsigned long long)nvm_evictions.load(),
        (unsigned long long)dram_evictions.load(),
        (unsigned long long)fine_grained_loads.load(),
        (unsigned long long)mini_page_admits.load(),
        (unsigned long long)mini_page_promotions.load());
    return buf;
  }
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_STATS_H_
