#ifndef SPITFIRE_BUFFER_BACKGROUND_WRITER_H_
#define SPITFIRE_BUFFER_BACKGROUND_WRITER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/macros.h"

namespace spitfire {

class BufferShard;

// Background writeback / eviction thread (one per BufferShard).
//
// Foreground frame acquisition (AcquireDramFrame / AcquireNvmFrame) only
// pays for eviction — including a synchronous SSD write when the victim is
// dirty — if the pool's free list is empty. The background writer keeps
// that from happening: whenever a pool's free count drops below its low
// watermark it evicts batches of CLOCK victims (writing dirty ones back)
// until the free count reaches the high watermark, so foreground misses
// almost always find a clean, free frame waiting.
//
// The writer wakes on a timer and whenever a foreground thread fails to
// pop a free frame (Nudge). It reuses the buffer manager's ordinary
// TryEvict* slow paths, so all latching/retire rules are unchanged.
class BackgroundWriter {
 public:
  // `low_watermark` is in frames; the high watermark is 2× low, clamped to
  // the pool size. `interval_us` bounds how stale the watermark check can
  // get when nobody nudges.
  BackgroundWriter(BufferShard* bm, size_t low_watermark,
                   uint64_t interval_us);
  ~BackgroundWriter();
  SPITFIRE_DISALLOW_COPY_AND_MOVE(BackgroundWriter);

  // Wakes the writer immediately (called on free-list misses).
  void Nudge();

  // Stops and joins the thread. Safe to call multiple times; called by the
  // destructor and by ~BufferShard before the pools are torn down.
  void Stop();

  uint64_t pages_written_back() const {
    return pages_written_back_.load(std::memory_order_relaxed);
  }

 private:
  void Run();
  // Evicts until `pool`'s free count reaches the high watermark; returns
  // the number of frames reclaimed this round.
  size_t ReplenishPool(bool dram);

  BufferShard* const bm_;
  const size_t low_watermark_;
  const uint64_t interval_us_;
  std::atomic<uint64_t> pages_written_back_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool nudged_ = false;
  std::thread thread_;
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_BACKGROUND_WRITER_H_
