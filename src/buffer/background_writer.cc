#include "buffer/background_writer.h"

#include <algorithm>
#include <chrono>

#include "buffer/buffer_shard.h"

namespace spitfire {

BackgroundWriter::BackgroundWriter(BufferShard* bm, size_t low_watermark,
                                   uint64_t interval_us)
    : bm_(bm), low_watermark_(low_watermark), interval_us_(interval_us) {
  thread_ = std::thread([this] { Run(); });
}

BackgroundWriter::~BackgroundWriter() { Stop(); }

void BackgroundWriter::Nudge() {
  {
    std::lock_guard<std::mutex> l(mu_);
    nudged_ = true;
  }
  cv_.notify_one();
}

void BackgroundWriter::Stop() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void BackgroundWriter::Run() {
  std::unique_lock<std::mutex> l(mu_);
  while (!stop_) {
    cv_.wait_for(l, std::chrono::microseconds(interval_us_),
                 [this] { return stop_ || nudged_; });
    if (stop_) break;
    nudged_ = false;
    l.unlock();
    if (bm_->dram_pool() != nullptr) ReplenishPool(/*dram=*/true);
    if (bm_->nvm_pool() != nullptr) ReplenishPool(/*dram=*/false);
    l.lock();
  }
}

size_t BackgroundWriter::ReplenishPool(bool dram) {
  BufferPool* pool = dram ? bm_->dram_pool() : bm_->nvm_pool();
  if (pool->FreeCount() >= low_watermark_) return 0;
  const size_t high =
      std::min(pool->num_frames(), std::max<size_t>(1, low_watermark_) * 2);
  size_t reclaimed = 0;
  // Victim choice is delegated to the pool's Replacer (EvictOne*Frame →
  // PickVictim with a 1-round probe budget), never a raw clock hand: under
  // the scan-resistant policy a scan-heavy phase refills the free list
  // from the probationary FIFO (the scan's own first-touch pages) and the
  // cooling stage, so the writer cannot strip the protected segment.
  // Bound the sweep so a pool where everything is pinned cannot spin the
  // writer forever; the next timer tick or nudge retries.
  const size_t max_attempts = high * 4 + 16;
  for (size_t i = 0; i < max_attempts && pool->FreeCount() < high; ++i) {
    const frame_id_t victim =
        dram ? bm_->EvictOneDramFrame() : bm_->EvictOneNvmFrame();
    if (victim == kInvalidFrameId) break;  // nothing evictable right now
    ++reclaimed;
  }
  pages_written_back_.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

}  // namespace spitfire
