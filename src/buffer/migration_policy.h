#ifndef SPITFIRE_BUFFER_MIGRATION_POLICY_H_
#define SPITFIRE_BUFFER_MIGRATION_POLICY_H_

#include <cstdio>
#include <string>

#include "common/random.h"

namespace spitfire {

// How pages evicted from DRAM are considered for NVM admission.
enum class NvmAdmissionMode {
  // Spitfire: admit with probability Nw.
  kProbabilistic,
  // HyMem: admit on the second consideration via the admission queue.
  kAdmissionQueue,
};

// The paper's four-probability data migration policy P = <Dr, Dw, Nr, Nw>
// (Section 3.5):
//   dr — probability of migrating NVM→DRAM while serving a read,
//   dw — probability of using DRAM for a write (else write NVM in place),
//   nr — probability of installing SSD→NVM while serving a read
//        (else the page goes SSD→DRAM, bypassing NVM),
//   nw — probability of admitting a DRAM-evicted page into NVM
//        (else it goes straight down to SSD).
struct MigrationPolicy {
  double dr = 1.0;
  double dw = 1.0;
  double nr = 1.0;
  double nw = 1.0;

  // Decision helpers; each consults the calling thread's PRNG.
  bool MigrateNvmToDramOnRead() const { return ThreadLocalRng().Bernoulli(dr); }
  bool UseDramOnWrite() const { return ThreadLocalRng().Bernoulli(dw); }
  bool InstallSsdToNvmOnRead() const { return ThreadLocalRng().Bernoulli(nr); }
  bool AdmitToNvmOnDramEviction() const {
    return ThreadLocalRng().Bernoulli(nw);
  }

  // Table 3 presets.
  static MigrationPolicy Eager() { return {1.0, 1.0, 1.0, 1.0}; }
  static MigrationPolicy Lazy() { return {0.01, 0.01, 0.2, 1.0}; }
  // HyMem's probabilities; Nw is handled by the admission queue, so the nw
  // field is unused in kAdmissionQueue mode. Nr = 0: HyMem never installs
  // SSD pages into NVM on the read path.
  static MigrationPolicy Hymem() { return {1.0, 1.0, 0.0, 1.0}; }

  std::string ToString() const;
};

inline std::string MigrationPolicy::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "<Dr=%.3g, Dw=%.3g, Nr=%.3g, Nw=%.3g>", dr,
                dw, nr, nw);
  return buf;
}

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_MIGRATION_POLICY_H_
