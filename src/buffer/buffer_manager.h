#ifndef SPITFIRE_BUFFER_BUFFER_MANAGER_H_
#define SPITFIRE_BUFFER_BUFFER_MANAGER_H_

#include <memory>
#include <vector>

#include "buffer/buffer_shard.h"

namespace spitfire {

// Merged view over the per-shard BufferStats instances. Snapshot() sums
// the shards field-wise, so every existing `bm.stats().Snapshot()` call
// site keeps working against the sharded engine; Reset() clears all
// shards.
class BufferStatsAggregate {
 public:
  BufferStatsAggregate() = default;
  explicit BufferStatsAggregate(std::vector<BufferStats*> parts)
      : parts_(std::move(parts)) {}

  BufferStatsSnapshot Snapshot() const {
    BufferStatsSnapshot sum;
    for (BufferStats* s : parts_) sum.Accumulate(s->Snapshot());
    return sum;
  }

  void Reset() {
    for (BufferStats* s : parts_) s->Reset();
  }

  std::string ToString() const { return Snapshot().ToString(); }

 private:
  std::vector<BufferStats*> parts_;
};

// The Spitfire three-tier buffer manager: N self-contained BufferShards
// routed by page-id hash (ShardOfPage), LeanStore-style. Each shard owns
// its slice of the mapping table, its DRAM/NVM pools (frames, free list,
// replacer), its miss-admission counter, and its background writer, so
// the only state every core still shares is genuinely global: the SSD
// I/O scheduler (device queues are a physical resource), the page-id
// allocator, and — outside this class — the WAL and MVTO timestamps.
//
// The facade carves each tier device into per-shard frame-region slices
// whose on-device layout (data region, NVM persistent frame table) is
// computed from the TOTAL frame count, so the device image is identical
// for every num_shards; with num_shards == 1 the whole engine reproduces
// the pre-sharding behavior bit-for-bit.
class BufferManager {
 public:
  explicit BufferManager(const BufferManagerOptions& options);
  ~BufferManager();
  SPITFIRE_DISALLOW_COPY_AND_MOVE(BufferManager);

  // --- data plane (routed to the owning shard) ---

  // Pins the page on some tier and returns a guard for it. Thread-safe.
  // A thread must not fetch a page it already holds a guard on.
  Result<PageGuard> FetchPage(page_id_t pid, AccessIntent intent) {
    return ShardFor(pid)->FetchPage(pid, intent);
  }

  // Submission half of the asynchronous miss path (see BufferShard).
  FetchSubmit SubmitFetch(page_id_t pid, AccessIntent intent,
                          FetchTicket* t) {
    return ShardFor(pid)->SubmitFetch(pid, intent, t);
  }

  // Runs due I/O completions on the calling thread (shared scheduler).
  bool PumpIo(bool may_sleep) {
    return io_ != nullptr && io_->PumpCompletions(may_sleep);
  }

  // Allocates a fresh page id from the global counter and materializes a
  // zeroed, dirty page in the owning shard's top available buffer.
  Result<PageGuard> NewPage(uint32_t page_type = 0) {
    const page_id_t pid =
        next_page_id_.fetch_add(1, std::memory_order_relaxed);
    return ShardFor(pid)->NewPageWithId(pid, page_type);
  }

  // Writes the freshest copy of `pid` down to SSD and marks copies clean.
  Status FlushPage(page_id_t pid) { return ShardFor(pid)->FlushPage(pid); }

  // Flushes every dirty page (all shards) to SSD. When `include_nvm` is
  // false, dirty NVM-resident pages are left in place (they are
  // persistent — the paper's recovery-overhead advantage). `*skipped`
  // (optional) sums the dirty pages every shard had to leave behind
  // because they were actively referenced; a nonzero count means the
  // sweep was incomplete and must not advance the durable redo horizon.
  Status FlushAll(bool include_nvm = false, size_t* skipped = nullptr);

  // Blocks until every asynchronously staged SSD write has reached the
  // device; returns (and clears) the first async write error.
  Status DrainIo() { return io_ != nullptr ? io_->Drain() : Status::OK(); }

  // Rebuilds every shard's mapping slice from the NVM device's persistent
  // frame table after a restart (Section 5.2, Recovery). Requires the
  // same num_shards the device was populated under (each shard validates
  // that recovered pages route back to it) and an externally supplied
  // options.nvm device.
  Status RecoverNvmResidentPages();

  // --- policy & introspection ---

  // All shards run the same policy; reads report shard 0's copy.
  MigrationPolicy policy() const { return shards_[0]->policy(); }
  // Broadcasts the live migration policy to every shard (used by the
  // adaptive tuner, §4). Lock-free; shards apply it mid-run.
  void SetPolicy(const MigrationPolicy& p) {
    for (auto& s : shards_) s->SetPolicy(p);
  }

  // Merged per-shard counters; Snapshot() sums across shards.
  BufferStatsAggregate& stats() { return stats_; }

  // Shard 0's writer (each shard runs its own); diagnostic accessor.
  BackgroundWriter* background_writer() {
    return shards_[0]->background_writer();
  }
  IoScheduler* io_scheduler() { return io_.get(); }

  // Engine-wide miss admission: sums of the per-shard in-flight counters
  // and caps. Each shard bounds itself at the lesser of half its frame
  // budget and its slice of the SSD's queue slots with 2x oversubscription
  // — min(max(8, shard_frames/2), max(8, 2*device_depth/num_shards)).
  uint32_t inflight_misses() const {
    uint32_t n = 0;
    for (const auto& s : shards_) n += s->inflight_misses();
    return n;
  }
  uint32_t miss_admission_cap() const {
    uint32_t n = 0;
    for (const auto& s : shards_) n += s->miss_admission_cap();
    return n;
  }

  using FrameCensus = BufferShard::FrameCensus;
  // Racy debug census of all shards' DRAM pools combined.
  FrameCensus DebugDramCensus() const;

  // Fraction of buffered pages resident in both DRAM and NVM, merged
  // across shards (Section 3.3).
  double InclusivityRatio() const;
  size_t DramResidentPages() const;
  size_t NvmResidentPages() const;
  bool IsDramResident(page_id_t pid) const {
    return ShardFor(pid)->IsDramResident(pid);
  }
  bool IsNvmResident(page_id_t pid) const {
    return ShardFor(pid)->IsNvmResident(pid);
  }

  page_id_t next_page_id() const {
    return next_page_id_.load(std::memory_order_relaxed);
  }
  void SetNextPageId(page_id_t pid) { next_page_id_.store(pid); }

  // Reconfigures the sequential read-ahead window on every shard (0
  // disables). Not thread-safe against concurrent fetches.
  void SetReadAheadPages(size_t n) {
    for (auto& s : shards_) s->SetReadAheadPages(n);
  }

  Device* ssd() { return ssd_; }
  NvmDevice* nvm_device() { return nvm_; }
  Device* dram_device() { return dram_backing_; }
  // Shard 0's pools: tier presence is uniform across shards, so these
  // stay valid for "does the tier exist" checks and replacer
  // introspection on the default shard.
  BufferPool* dram_pool() { return shards_[0]->dram_pool(); }
  BufferPool* nvm_pool() { return shards_[0]->nvm_pool(); }
  const BufferManagerOptions& options() const { return options_; }

  size_t num_shards() const { return shards_.size(); }
  BufferShard* shard(size_t i) { return shards_[i].get(); }
  uint32_t ShardIndexOf(page_id_t pid) const {
    return ShardOfPage(pid, static_cast<uint32_t>(shards_.size()));
  }

 private:
  BufferShard* ShardFor(page_id_t pid) const {
    return shards_[ShardOfPage(pid,
                               static_cast<uint32_t>(shards_.size()))]
        .get();
  }

  BufferManagerOptions options_;

  Device* ssd_ = nullptr;
  NvmDevice* nvm_ = nullptr;
  Device* dram_backing_ = nullptr;
  std::unique_ptr<NvmDevice> owned_nvm_;
  std::unique_ptr<Device> owned_dram_;

  std::unique_ptr<IoScheduler> io_;
  std::atomic<page_id_t> next_page_id_{0};

  std::vector<std::unique_ptr<BufferShard>> shards_;
  BufferStatsAggregate stats_;
};

// One transaction's (or any other resumable computation's) handle onto the
// asynchronous miss path. A FetchContext owns a single FetchTicket and
// enforces the continuation discipline the access paths rely on:
//
//  - Fetch() submits through SubmitFetch. Hits and inline completions
//    return the pinned guard directly. A queued miss parks the ticket on
//    the page's descriptor and returns WouldBlock — the caller must unwind
//    (without further Fetch() calls on this context) back to its scheduler
//    and re-run the whole step after ready() turns true. Re-running from
//    the top is the resume protocol: OLC B+Tree traversals and MVTO chain
//    walks restart cheaply, and by then the parked page is resident.
//  - An admission-rejected miss (instant Busy) also parks, with the ticket
//    already ready: the scheduler sees ready() immediately and the retry is
//    paced by scheduler passes instead of a spin loop.
//  - Harvest() consumes the completion: it drops the completion's pin (the
//    resumed step re-fetches the page, which is now a hit) and returns the
//    completion status.
//
// The context must stay alive and unmoved while pending() — the completer
// writes into the embedded ticket.
class FetchContext {
 public:
  FetchContext() = default;
  ~FetchContext() { SPITFIRE_DCHECK(!pending_); }
  SPITFIRE_DISALLOW_COPY_AND_MOVE(FetchContext);

  Result<PageGuard> Fetch(BufferManager* bm, page_id_t pid,
                          AccessIntent intent) {
    SPITFIRE_CHECK(!pending_);
    ticket_.Reset();
    (void)bm->SubmitFetch(pid, intent, &ticket_);
    if (ticket_.ready.load(std::memory_order_acquire)) {
      if (ticket_.status.ok()) return std::move(ticket_.guard);
      if (!ticket_.status.IsBusy()) return ticket_.status;
      // Saturation (miss admission) completes inline with Busy: park as an
      // already-ready continuation so the retry is scheduler-paced.
    }
    pending_ = true;
    return Status::WouldBlock("fetch parked");
  }

  bool pending() const { return pending_; }
  // Whether the parked fetch has fired (always true when not pending).
  bool ready() const {
    return !pending_ || ticket_.ready.load(std::memory_order_acquire);
  }
  // True while parked on a completion that was rejected outright (instant
  // Busy): no device work is in flight, so harvesting it is not progress.
  bool parked_busy() const {
    return pending_ && ticket_.ready.load(std::memory_order_acquire) &&
           ticket_.status.IsBusy();
  }

  // Consumes a fired completion; requires ready(). Releases the
  // completion's pin and returns its status (informational — the resumed
  // step retries regardless).
  Status Harvest() {
    SPITFIRE_CHECK(pending_ &&
                   ticket_.ready.load(std::memory_order_acquire));
    pending_ = false;
    const Status st = ticket_.status;
    ticket_.guard.Release();
    return st;
  }

  // Abort/teardown path: block (pumping completions) until the in-flight
  // ticket fires, then drop it. After this the context is reusable and no
  // pin is held. Safe to call when not pending.
  void CancelSync(BufferManager* bm) {
    if (!pending_) return;
    while (!ticket_.ready.load(std::memory_order_acquire)) {
      (void)bm->PumpIo(/*may_sleep=*/true);
    }
    (void)Harvest();
  }

 private:
  FetchTicket ticket_;
  bool pending_ = false;
};

// Fetch helper for access paths that accept an optional continuation:
// with a context, misses park and surface WouldBlock; without one, the
// blocking FetchPage shim is used (the K=1 degenerate case).
inline Result<PageGuard> FetchPageVia(BufferManager* bm, FetchContext* ctx,
                                      page_id_t pid, AccessIntent intent) {
  if (ctx == nullptr) return bm->FetchPage(pid, intent);
  return ctx->Fetch(bm, pid, intent);
}

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_BUFFER_MANAGER_H_
