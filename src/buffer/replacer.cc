#include "buffer/replacer.h"

#include "buffer/clock_replacer.h"
#include "buffer/twoq_replacer.h"
#include "common/macros.h"

namespace spitfire {

const char* ReplacerKindName(ReplacerKind kind) {
  switch (kind) {
    case ReplacerKind::kClock:
      return "clock";
    case ReplacerKind::kTwoQ:
      return "2q";
  }
  return "unknown";
}

std::unique_ptr<Replacer> Replacer::Create(ReplacerKind kind,
                                           size_t num_frames) {
  switch (kind) {
    case ReplacerKind::kClock:
      return std::make_unique<ClockReplacer>(num_frames);
    case ReplacerKind::kTwoQ:
      return std::make_unique<TwoQReplacer>(num_frames);
  }
  SPITFIRE_CHECK(false && "unknown ReplacerKind");
  return nullptr;
}

}  // namespace spitfire
