#include "buffer/clock_replacer.h"

#include <cstdio>

namespace spitfire {

std::string ClockReplacer::DebugString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "clock: frames=%zu referenced=%zu",
                num_frames_, ReferencedCount());
  return buf;
}

}  // namespace spitfire
