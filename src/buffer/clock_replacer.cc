#include "buffer/clock_replacer.h"

// ClockReplacer is header-only (the victim callback is a template); this
// file anchors the translation unit.
