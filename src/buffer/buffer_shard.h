#ifndef SPITFIRE_BUFFER_BUFFER_SHARD_H_
#define SPITFIRE_BUFFER_BUFFER_SHARD_H_

#include <memory>
#include <mutex>
#include <vector>

#include "buffer/background_writer.h"
#include "buffer/buffer_pool.h"
#include "buffer/migration_policy.h"
#include "buffer/page.h"
#include "buffer/page_descriptor.h"
#include "buffer/stats.h"
#include "common/status.h"
#include "container/admission_queue.h"
#include "container/concurrent_hash_table.h"
#include "storage/device.h"
#include "storage/io_scheduler.h"
#include "storage/nvm_device.h"

namespace spitfire {

class BufferShard;

// Whether a page is being fetched to be read or modified. The intent picks
// which migration probability applies: Dr for reads, Dw for writes
// (Sections 3.1, 3.2).
enum class AccessIntent { kRead, kWrite };

// Configuration of a (possibly degenerate) three-tier buffer manager.
// Setting dram_frames or nvm_frames to zero removes that tier, yielding
// the paper's NVM-SSD and DRAM-SSD hierarchies.
struct BufferManagerOptions {
  size_t dram_frames = 0;
  size_t nvm_frames = 0;

  MigrationPolicy policy = MigrationPolicy::Eager();

  // HyMem-style NVM admission (Section 6.5) instead of the probabilistic
  // Nw decision.
  NvmAdmissionMode nvm_admission = NvmAdmissionMode::kProbabilistic;
  // 0 → half the NVM buffer's page count, the size the paper found to
  // work well.
  size_t admission_queue_capacity = 0;

  // HyMem optimizations (Figure 12 ablation knobs).
  bool enable_fine_grained_loading = false;
  uint32_t load_granularity = 256;  // bytes; Figure 11 sweeps 64..512
  bool enable_mini_pages = false;
  // DRAM frames reserved to host mini pages; 0 → dram_frames / 8.
  size_t mini_host_frames = 0;

  // CLOCK reference-bit sampling on the hit path: a buffer hit records an
  // access with probability 1/k (k = replacer_sample_rate) instead of
  // touching the shared reference bitmap on every fetch. Installs,
  // promotions, and new pages always record. 1 records every hit.
  uint32_t replacer_sample_rate = 8;

  // Per-tier replacement policy (Replacer::Create). kClock is the PR 1
  // behavior; kTwoQ adds scan resistance (probation FIFO + protected
  // CLOCK + cooling stage). The mini-page region always runs CLOCK — its
  // slots are sub-page and short-lived.
  ReplacerKind dram_replacer = ReplacerKind::kClock;
  ReplacerKind nvm_replacer = ReplacerKind::kClock;

  // Background writeback: a dedicated thread keeps each pool's free list
  // above a low watermark by proactively evicting (and writing back dirty)
  // CLOCK victims, so foreground misses rarely pay an inline SSD write.
  bool enable_background_writer = false;
  size_t bg_writer_low_watermark = 0;  // frames; 0 → smallest pool / 8
  uint64_t bg_writer_interval_us = 200;

  // Async SSD I/O: route all SSD-tier traffic through an IoScheduler
  // (single-flight miss dedup, write coalescing, read-ahead). Disabling
  // falls back to synchronous per-page device calls under latches.
  bool enable_io_scheduler = true;
  IoSchedulerOptions io_scheduler;

  // Devices. `ssd` is required and owned by the caller (it holds the
  // database itself). `nvm` may be supplied by the caller so that its
  // contents survive buffer manager teardown (recovery tests); when null
  // and nvm_frames > 0 an internal NvmDevice is created. `dram_backing`
  // lets experiments substitute a MemoryModeDevice for plain DRAM.
  Device* ssd = nullptr;
  NvmDevice* nvm = nullptr;
  Device* dram_backing = nullptr;

  // Number of independent buffer-manager shards pages are hash-routed
  // over (LeanStore-style partitioning). Each shard owns its slice of the
  // mapping table, its DRAM/NVM pools (frames, free list, replacer), its
  // miss-admission counter, and its background writer; the I/O scheduler,
  // WAL, and MVTO timestamps stay global. 1 reproduces the unsharded
  // engine bit-for-bit (same device layout, same policy decisions).
  // 0 → min(8, hardware_concurrency), clamped so every present tier keeps
  // at least 64 frames per shard. Explicit values are honored as given.
  size_t num_shards = 0;
};

// Pages are routed to shards in blocks of 2^kShardBlockBits consecutive
// page ids so sequential scans stay inside one shard long enough for its
// read-ahead run detector to work; the block index is mixed (finalizer of
// MurmurHash3) so block placement is uniform.
inline constexpr uint32_t kShardBlockBits = 5;

inline uint32_t ShardOfPage(page_id_t pid, uint32_t num_shards) {
  if (num_shards <= 1) return 0;
  uint64_t x = static_cast<uint64_t>(pid) >> kShardBlockBits;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return static_cast<uint32_t>(x % num_shards);
}

// Everything a shard shares with (and borrows from) its owning
// BufferManager: the tier devices with this shard's frame-region slice,
// the global I/O scheduler, and the global page-id allocator. The
// *_total_frames / *_frame_base pair fixes the on-device frame layout
// (data region and NVM persistent frame table) to the ALL-shards frame
// count, so the device image is identical for any num_shards and a
// database written with one shard count can at least be detected (and
// rejected) when reopened with another.
struct BufferShardContext {
  uint32_t shard_index = 0;
  uint32_t num_shards = 1;
  size_t dram_frame_base = 0;
  size_t dram_total_frames = 0;
  size_t nvm_frame_base = 0;
  size_t nvm_total_frames = 0;
  Device* ssd = nullptr;
  NvmDevice* nvm = nullptr;        // null when the NVM tier is absent
  Device* dram_backing = nullptr;  // null when the DRAM tier is absent
  IoScheduler* io = nullptr;       // shared; null → synchronous device calls
  std::atomic<page_id_t>* next_page_id = nullptr;  // global allocator
};

// RAII pin on one tier's copy of a page. Obtained from
// BufferManager::FetchPage / NewPage; releases the pin on destruction.
//
// Data access goes through ReadAt/WriteAt, which handle all DRAM
// representations (full frame, cache-line-grained, mini page) and direct
// NVM access, including on-demand unit loading and device cost accounting.
// Like any buffer manager, page *contents* are not serialized between
// guard holders: concurrent accesses to overlapping byte ranges of one
// page must be coordinated by the caller (the table layer uses MVTO
// version locks; the B+Tree uses its optimistic version latch).
// RawData() exposes the full 16 KB frame and is only valid for guards
// whose page is fully materialized (it loads all units of a cache-line-
// grained page on first use; unsupported for mini pages).
class PageGuard {
 public:
  PageGuard() = default;
  ~PageGuard() { Release(); }

  PageGuard(PageGuard&& o) noexcept { *this = std::move(o); }
  PageGuard& operator=(PageGuard&& o) noexcept {
    Release();
    bm_ = o.bm_;
    desc_ = o.desc_;
    tier_ = o.tier_;
    o.bm_ = nullptr;
    o.desc_ = nullptr;
    return *this;
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  bool valid() const { return desc_ != nullptr; }
  page_id_t pid() const { return desc_->pid; }
  // The tier this guard pinned (kDram or kNvm).
  Tier tier() const { return tier_; }
  SharedPageDescriptor* descriptor() const { return desc_; }

  // Copies `size` bytes at page offset `offset` into `dst`.
  Status ReadAt(size_t offset, size_t size, void* dst);
  // Writes `size` bytes at page offset `offset` and marks the page dirty.
  Status WriteAt(size_t offset, size_t size, const void* src);

  // Full-frame pointer (see class comment). `for_write` marks the page
  // dirty. Returns nullptr for mini-page guards.
  std::byte* RawData(bool for_write = false);

  void MarkDirty();

  // Releases the pin early.
  void Release();

 private:
  friend class BufferShard;
  PageGuard(BufferShard* bm, SharedPageDescriptor* desc, Tier tier)
      : bm_(bm), desc_(desc), tier_(tier) {}

  BufferShard* bm_ = nullptr;
  SharedPageDescriptor* desc_ = nullptr;
  Tier tier_ = Tier::kDram;
};

// One asynchronous fetch continuation. The caller owns the ticket (stack
// or slot storage both work) and submits it with BufferManager::SubmitFetch;
// the miss completion installs the page, pins it, fills in `guard`/`status`
// and flips `ready` last (release). The completer never touches the ticket
// after that store, so the owner may poll `ready` and destroy or Reset()
// the ticket as soon as it reads true (acquire).
struct FetchTicket {
  page_id_t pid = kInvalidPageId;
  AccessIntent intent = AccessIntent::kRead;

  // Outputs; valid once ready == true. On status.ok(), guard holds the pin.
  Status status;
  PageGuard guard;
  std::atomic<bool> ready{false};

  // Internals: re-dispatch budget and the io_waiters list link (both owned
  // by the buffer manager while the ticket is in flight).
  int attempts = 0;
  FetchTicket* next = nullptr;

  void Reset() {
    status = Status::OK();
    guard.Release();
    attempts = 0;
    next = nullptr;
    ready.store(false, std::memory_order_relaxed);
  }
};

// How SubmitFetch disposed of a ticket.
enum class FetchSubmit : uint8_t {
  kCompleted,     // ready already true: hit, inline completion, or error
  kQueuedLeader,  // the ticket's miss leads a newly submitted device read
  kQueuedJoined,  // the ticket joined a read another fetch already leads
};

// One shard of the Spitfire multi-threaded three-tier buffer manager
// (Section 5) — a complete engine for the slice of the page-id space that
// hashes to it (ShardOfPage).
//
// A unified DRAM-resident mapping table maps page ids to shared page
// descriptors holding per-tier latches and residency state (Figure 4).
// FetchPage serves pages from DRAM when possible, from NVM directly (the
// CPU can operate on NVM in place), or from SSD, and migrates pages
// between tiers according to the probabilistic policy <Dr, Dw, Nr, Nw>
// (Section 3). CLOCK replacement reclaims space in both buffers.
//
// The shard owns its mapping-table slice, DRAM/NVM pools (frames, free
// list, replacer), miss-admission counter, and background writer; it
// borrows the shared SSD scheduler, tier devices, and page-id allocator
// from the BufferManager facade via BufferShardContext. With
// num_shards == 1 this IS the pre-sharding engine, unchanged.
class BufferShard {
 public:
  BufferShard(const BufferManagerOptions& options,
              const BufferShardContext& ctx);
  ~BufferShard();
  SPITFIRE_DISALLOW_COPY_AND_MOVE(BufferShard);

  // Stops the background writer and marks the shard shutting down, so
  // completions fired during the (facade-driven) I/O drain fail their
  // tickets instead of installing. Idempotent; also run by the destructor.
  void PrepareShutdown();

  uint32_t shard_index() const { return shard_index_; }
  bool OwnsPage(page_id_t pid) const {
    return ShardOfPage(pid, num_shards_) == shard_index_;
  }

  // Pins the page on some tier and returns a guard for it. Thread-safe.
  // A thread must not fetch a page it already holds a guard on.
  // With the I/O scheduler enabled this is a blocking shim over the
  // submission/completion split below: it submits a ticket, pumps I/O
  // completions until the ticket fires, and retries transient Busy
  // completions under a bounded exponential backoff.
  Result<PageGuard> FetchPage(page_id_t pid, AccessIntent intent);

  // Submission half of the asynchronous miss path. Hits complete the
  // ticket inline (kCompleted, ready == true on return). A miss either
  // joins the page's in-flight read (kQueuedJoined) or marks the
  // descriptor kIoInflight and submits the device read (kQueuedLeader);
  // either way the ticket fires when the completion installs the page —
  // possibly inside this call when the simulated device completes
  // immediately. The caller keeps the ticket alive and unmoved until
  // `ready` reads true, and drives progress by calling PumpIo (or any
  // other FetchPage/SubmitFetch activity) between polls.
  FetchSubmit SubmitFetch(page_id_t pid, AccessIntent intent, FetchTicket* t);

  // Runs due I/O completions on the calling thread. With may_sleep, waits
  // briefly (marking this thread async-aware: simulated device waits then
  // sleep instead of spinning). Returns whether any work was done. No-op
  // without the I/O scheduler.
  bool PumpIo(bool may_sleep);

  // Materializes a zeroed, dirty page for `pid` (already allocated by the
  // facade's global page-id counter and routed here) in the top available
  // buffer, bypassing the SSD read.
  Result<PageGuard> NewPageWithId(page_id_t pid, uint32_t page_type = 0);

  // Writes the freshest copy of `pid` down to SSD and marks copies clean.
  Status FlushPage(page_id_t pid);

  // Flushes every dirty page to SSD. When `include_nvm` is false, dirty
  // NVM-resident pages are left in place (they are persistent — the
  // paper's recovery-overhead advantage of app-direct mode). Pages whose
  // copies are actively referenced are skipped (a later round catches
  // them); `*skipped` (optional) counts them so callers like the
  // checkpointer know whether the sweep was complete — an incomplete
  // sweep must not advance the durable redo horizon.
  Status FlushAll(bool include_nvm = false, size_t* skipped = nullptr);

  // Blocks until every asynchronously staged SSD write has reached the
  // device; returns (and clears) the first async write error. No-op when
  // the I/O scheduler is disabled.
  Status DrainIo();

  // Rebuilds the mapping table from the NVM device's persistent frame
  // table after a restart (Section 5.2, Recovery). The NvmDevice must have
  // been supplied externally via options.nvm.
  Status RecoverNvmResidentPages();

  // --- policy & introspection ---
  MigrationPolicy policy() const {
    return {dr_.load(std::memory_order_relaxed),
            dw_.load(std::memory_order_relaxed),
            nr_.load(std::memory_order_relaxed),
            nw_.load(std::memory_order_relaxed)};
  }
  // Swaps the live migration policy (used by the adaptive tuner, §4).
  // Lock-free so the tuner can adjust it mid-run.
  void SetPolicy(const MigrationPolicy& p) {
    dr_.store(p.dr, std::memory_order_relaxed);
    dw_.store(p.dw, std::memory_order_relaxed);
    nr_.store(p.nr, std::memory_order_relaxed);
    nw_.store(p.nw, std::memory_order_relaxed);
  }

  BufferStats& stats() { return stats_; }
  BackgroundWriter* background_writer() { return bg_writer_.get(); }
  IoScheduler* io_scheduler() { return io_; }

  // Misses currently between submission and completion, and the admission
  // cap that bounds them (misses beyond the cap fail fast with Busy).
  uint32_t inflight_misses() const {
    return inflight_misses_.load(std::memory_order_relaxed);
  }
  uint32_t miss_admission_cap() const { return miss_admission_cap_; }

  // Racy debug census of the DRAM pool: how many frames are on the free
  // list, owned with zero pins (evictable), owned with pins, or owned by
  // a descriptor that no longer maps back to the frame (transient during
  // install/evict). Diagnostic only — takes no latches.
  struct FrameCensus {
    uint32_t free = 0, evictable = 0, pinned = 0, detached = 0;
    uint64_t total_pins = 0;
  };
  FrameCensus DebugDramCensus() const;

  // Fraction of buffered pages resident in both DRAM and NVM (Section 3.3).
  double InclusivityRatio() const;
  // Raw both/either counts behind the ratio, so the facade can merge
  // shards without averaging ratios.
  void InclusivityCounts(size_t* both, size_t* either) const;
  size_t DramResidentPages() const;
  size_t NvmResidentPages() const;
  // Whether `pid` currently has a full DRAM frame (racy; tests/bench —
  // the scan-resistance property test checks hot-set retention with it).
  bool IsDramResident(page_id_t pid) const;
  // Whether `pid` currently has an NVM frame (racy; recovery uses it to
  // decide which tier sourced a page image).
  bool IsNvmResident(page_id_t pid) const;

  // Reconfigures the sequential read-ahead window (0 disables). Not
  // thread-safe against concurrent fetches; meant for tests and setup
  // code that needs deterministic miss behavior.
  void SetReadAheadPages(size_t n) {
    options_.io_scheduler.read_ahead_pages = n;
  }

  Device* ssd() { return ssd_; }
  NvmDevice* nvm_device() { return nvm_; }
  Device* dram_device() { return dram_backing_; }
  BufferPool* dram_pool() { return dram_pool_.get(); }
  BufferPool* nvm_pool() { return nvm_pool_.get(); }
  const BufferManagerOptions& options() const { return options_; }

 private:
  friend class PageGuard;
  friend class BackgroundWriter;

  // --- mini page hosting ---
  struct MiniRegion {
    size_t per_frame = 0;
    size_t capacity = 0;
    std::vector<frame_id_t> host_frames;
    std::unique_ptr<MpmcQueue<uint32_t>> free_list;
    std::unique_ptr<Replacer> replacer;
    std::vector<std::atomic<SharedPageDescriptor*>> owners;
  };

  SharedPageDescriptor* GetOrCreateDescriptor(page_id_t pid);

  // Latch-free pin helpers: return true with a pin taken if resident (one
  // CAS on the tier's packed state word; see TierState).
  bool TryPinDram(SharedPageDescriptor* d);
  bool TryPinNvm(SharedPageDescriptor* d);
  void Unpin(SharedPageDescriptor* d, Tier tier);

  // 1-in-k sampling decision for hit-path replacer accounting.
  bool ShouldSampleAccess();

  // NVM → DRAM migration (path 7). Returns OK when the DRAM copy exists,
  // Busy when the caller should serve the access from NVM instead.
  Status PromoteToDram(SharedPageDescriptor* d);

  // One pass over the buffered tiers: returns 1 with a pin taken (*tier
  // set), 0 on a clean miss (no copy on any buffered tier), and -1 on a
  // transient race the caller should simply retry (promotion or eviction
  // in progress).
  int TryHitOnce(SharedPageDescriptor* d, AccessIntent intent,
                 const MigrationPolicy& pol, Tier* tier);

  // Legacy fully synchronous fetch (I/O scheduler disabled): the old
  // pin-or-install retry loop with the device read under the latches.
  Result<PageGuard> FetchPageSync(SharedPageDescriptor* d,
                                  AccessIntent intent);

  // Async miss-path internals. SubmitFetchOnDescriptor is SubmitFetch
  // minus pid validation; LeadMiss kicks read-ahead and submits the
  // device read for a descriptor this thread just marked kIoInflight;
  // CompleteMiss is the continuation every miss read resolves through:
  // it installs the bytes, pins the new copy for every queued waiter and
  // fires their tickets — or re-dispatches them on transient failure.
  FetchSubmit SubmitFetchOnDescriptor(SharedPageDescriptor* d,
                                      AccessIntent intent, FetchTicket* t);
  void LeadMiss(SharedPageDescriptor* d);
  void CompleteMiss(SharedPageDescriptor* d, Status st, const std::byte* data,
                    uint64_t seq);
  static void FinishTicket(FetchTicket* t, Status st);

  // SSD miss path with the I/O scheduler disabled: installs into NVM
  // (path 1, probability Nr) or directly into DRAM (path 8), then pins
  // and returns a guard. The device read runs under the latches.
  Result<PageGuard> InstallFromSsd(SharedPageDescriptor* d,
                                   AccessIntent intent);

  // Installs the page image in `src` (already read from SSD) into a frame
  // and returns a pinned guard. Caller holds both descriptor latches and
  // has verified the page is not resident on any tier.
  Result<PageGuard> InstallPinned(SharedPageDescriptor* d, AccessIntent intent,
                                  const std::byte* src);

  // Sequential-miss detection: after a miss on `pid`, schedule a prefetch
  // window starting at it if the miss run looks sequential.
  void MaybeScheduleReadAhead(page_id_t pid);
  // Claims one prefetch window's read flights and queues its execution;
  // requires ownership of read_ahead_inflight_, which passes to the
  // queued execution (released on failure; returns whether a window was
  // claimed).
  bool ClaimAndQueueWindow(page_id_t start);
  // Worker-side read-ahead: run the device reads for a claimed window
  // and install the pages that arrive cleanly.
  void PrefetchExecute(std::shared_ptr<void> claim, page_id_t start,
                       size_t count);
  // Installs one prefetched page image, preferring a free frame and
  // falling back to at most one try-lock eviction round; silently drops
  // the page on any contention or residency change.
  void InstallPrefetched(page_id_t pid, const std::byte* src, uint64_t seq);

  // Frame acquisition with eviction. Return kInvalidFrameId on failure.
  frame_id_t AcquireDramFrame();
  frame_id_t AcquireNvmFrame();
  bool TryEvictDramFrame(frame_id_t f);
  bool TryEvictNvmFrame(frame_id_t f);

  // One CLOCK sweep evicting a single frame; used by the background
  // writer to replenish the free lists. Returns kInvalidFrameId if no
  // frame was evictable this sweep.
  frame_id_t EvictOneDramFrame();
  frame_id_t EvictOneNvmFrame();

  // Mini pages.
  uint32_t AcquireMiniSlot();
  bool TryEvictMini(uint32_t mini_id);
  std::byte* MiniPtr(uint32_t mini_id);
  // Promotes a mini page to a full frame after overflow. Caller holds the
  // descriptor's dram latch; mode is kMini on entry, kFull on success.
  Status PromoteMiniToFull(SharedPageDescriptor* d);

  // Writes the DRAM copy's dirty content back into the page's NVM frame.
  // Caller holds the dram latch (and the nvm latch for full pages).
  void WriteBackUnitsToNvm(SharedPageDescriptor* d);

  // Decides whether a dirty page evicted from DRAM is admitted into NVM
  // (probability Nw, or HyMem's admission queue).
  bool DecideNvmAdmission(page_id_t pid);

  uint64_t SsdOffset(page_id_t pid) const {
    return static_cast<uint64_t>(pid) * kPageSize;
  }

  Status WriteToSsd(page_id_t pid, const std::byte* data);

  // FlushPage body without the I/O drain (FlushAll batches the drain).
  // `*skipped` (optional) is incremented when a dirty copy could not be
  // flushed because it was actively referenced.
  Status FlushPageImpl(page_id_t pid, size_t* skipped = nullptr);

  // Loads the units covering [offset, offset+size) of a cache-line-grained
  // page from its NVM copy. Caller holds the dram latch.
  void EnsureUnitsResident(SharedPageDescriptor* d, size_t offset,
                           size_t size);

  // Data plane used by PageGuard.
  Status GuardRead(SharedPageDescriptor* d, Tier tier, size_t offset,
                   size_t size, void* dst);
  Status GuardWrite(SharedPageDescriptor* d, Tier tier, size_t offset,
                    size_t size, const void* src);
  std::byte* GuardRawData(SharedPageDescriptor* d, Tier tier, bool for_write);

  BufferManagerOptions options_;
  std::atomic<double> dr_{1.0}, dw_{1.0}, nr_{1.0}, nw_{1.0};

  // Routing identity within the owning BufferManager.
  uint32_t shard_index_ = 0;
  uint32_t num_shards_ = 1;

  // Shared infrastructure borrowed from the facade (BufferShardContext).
  Device* ssd_ = nullptr;
  NvmDevice* nvm_ = nullptr;
  Device* dram_backing_ = nullptr;

  std::unique_ptr<BufferPool> dram_pool_;
  std::unique_ptr<BufferPool> nvm_pool_;
  std::unique_ptr<AdmissionQueue> admission_queue_;
  MiniRegion mini_;

  ConcurrentHashTable<page_id_t, SharedPageDescriptor*> mapping_table_;
  std::mutex desc_mu_;
  std::vector<std::unique_ptr<SharedPageDescriptor>> descriptors_;

  // Global page-id allocator, owned by the facade (shared by all shards).
  std::atomic<page_id_t>* next_page_id_ = nullptr;
  BufferStats stats_;
  std::unique_ptr<BackgroundWriter> bg_writer_;
  // Shared SSD scheduler, owned by the facade; null when disabled.
  IoScheduler* io_ = nullptr;

  // Sequential-miss run detection for read-ahead. `ra_next_pid_` is the
  // page just past the last prefetched window: a miss landing exactly
  // there means the scan consumed the whole window, so the next one is
  // chained immediately instead of waiting for the run counter to rebuild
  // (trailing joiner misses inside the window scramble the counter).
  std::atomic<page_id_t> last_miss_pid_{kInvalidPageId};
  std::atomic<uint32_t> seq_miss_run_{0};
  std::atomic<page_id_t> ra_next_pid_{kInvalidPageId};
  // Set by the destructor before draining the scheduler: completions
  // fired during tear-down fail their tickets instead of installing.
  std::atomic<bool> shutting_down_{false};
  // Miss admission control: distinct pages in kIoInflight right now and
  // the cap (half the pool). Async rings can submit far more concurrent
  // misses than there are frames; past the cap a would-be leader fails
  // fast with Busy instead of queueing a device read whose install is
  // doomed to find no free frame (and whose re-dispatch re-reads would
  // crowd the device queues into livelock).
  std::atomic<uint32_t> inflight_misses_{0};
  uint32_t miss_admission_cap_ = 0;
  // Live range [ra_live_lo_, ra_next_pid_) of the chain's recent windows
  // and the consumed flag an access inside it sets: a HIT there proves a
  // scan front is following the chain even when prefetch runs far enough
  // ahead that the front never misses (and so never joins a flight).
  // Without it a perfectly-overlapped chain would look abandoned and die
  // every other window.
  std::atomic<page_id_t> ra_live_lo_{kInvalidPageId};
  std::atomic<bool> ra_consumed_{false};
  std::atomic<bool> read_ahead_inflight_{false};
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_BUFFER_SHARD_H_
