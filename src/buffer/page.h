#ifndef SPITFIRE_BUFFER_PAGE_H_
#define SPITFIRE_BUFFER_PAGE_H_

#include <cstdint>
#include <cstring>

#include "common/checksum.h"
#include "common/constants.h"
#include "common/macros.h"

namespace spitfire {

// On-page header occupying the first cache line of every 16 KB page. The
// page id and LSN in the header are what the recovery path reads back when
// it scans the (persistent) NVM buffer to rebuild the mapping table.
struct PageHeader {
  static constexpr uint32_t kMagic = 0x5F17F14E;  // "SPITFIRE"

  uint32_t magic = kMagic;
  uint32_t page_type = 0;  // interpreted by upper layers (heap, btree, meta)
  page_id_t page_id = kInvalidPageId;
  lsn_t page_lsn = 0;
  // checksum over the full page image, stamped on every SSD write
  // (BufferShard::WriteToSsd); 0 = unstamped. Recovery refuses to trust
  // an SSD page whose stored checksum does not match — the signature of a
  // torn or short page write.
  uint64_t checksum = 0;
  uint64_t reserved[4] = {};

  bool IsValid() const { return magic == kMagic; }
};
static_assert(sizeof(PageHeader) == 64, "header must fit one cache line");

inline constexpr size_t kPageHeaderSize = sizeof(PageHeader);
inline constexpr size_t kPagePayloadSize = kPageSize - kPageHeaderSize;

// Computes the whole-page checksum with the checksum field itself zeroed.
// `frame` must point at a full kPageSize image.
inline uint64_t ComputePageChecksum(const std::byte* frame) {
  PageHeader hdr;
  std::memcpy(&hdr, frame, sizeof(hdr));
  hdr.checksum = 0;
  uint64_t h = Checksum64(&hdr, sizeof(hdr));
  // Chain the payload into the header hash (order-sensitive mix).
  h ^= Checksum64(frame + kPageHeaderSize, kPageSize - kPageHeaderSize);
  return h == 0 ? 1 : h;
}

// Stamps the checksum into a page image about to be written to SSD.
inline void StampPageChecksum(std::byte* frame) {
  const uint64_t sum = ComputePageChecksum(frame);
  std::memcpy(frame + offsetof(PageHeader, checksum), &sum, sizeof(sum));
}

// True when the stored checksum matches the image (or when the page was
// never stamped — pre-checksum images are trusted as before).
inline bool VerifyPageChecksum(const std::byte* frame) {
  uint64_t stored;
  std::memcpy(&stored, frame + offsetof(PageHeader, checksum),
              sizeof(stored));
  if (stored == 0) return true;
  return stored == ComputePageChecksum(frame);
}

// Typed view over a raw 16 KB frame.
class PageView {
 public:
  explicit PageView(std::byte* frame) : frame_(frame) {}

  PageHeader* header() { return reinterpret_cast<PageHeader*>(frame_); }
  const PageHeader* header() const {
    return reinterpret_cast<const PageHeader*>(frame_);
  }
  std::byte* payload() { return frame_ + kPageHeaderSize; }
  const std::byte* payload() const { return frame_ + kPageHeaderSize; }
  std::byte* raw() { return frame_; }

  void Format(page_id_t pid, uint32_t page_type) {
    std::memset(frame_, 0, kPageSize);
    PageHeader h;
    h.page_id = pid;
    h.page_type = page_type;
    std::memcpy(frame_, &h, sizeof(h));
  }

 private:
  std::byte* frame_;
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_PAGE_H_
