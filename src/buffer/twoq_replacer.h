#ifndef SPITFIRE_BUFFER_TWOQ_REPLACER_H_
#define SPITFIRE_BUFFER_TWOQ_REPLACER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "buffer/replacer.h"
#include "common/constants.h"
#include "container/concurrent_bitmap.h"
#include "sync/spin_latch.h"

namespace spitfire {

// Scan-resistant 2Q/cooling replacement (2Q [Johnson & Shasha, VLDB '94]
// crossed with LeanStore's cooling stage — SNIPPETS.md Snippet 3).
//
// Every frame is in one of four segments:
//
//   untracked --install--> probation --2nd sampled access--> protected
//                              |                                 |
//                              | FIFO eviction        clock sweep, ref
//                              v                      bit clear: demote
//                           evicted <--grace expires-- cooling
//                                                         ^  |
//                                                         +--+ any access
//                                                          reheats
//
//  - Probation (2Q's A1): first-touch frames in a FIFO. A table scan
//    streams through here and evicts only its own pages; it cannot displace
//    the protected segment. A frame is promoted only when a second sampled
//    access lands while its reference bit is already set — at the default
//    sample rate of 8 that is roughly 16 raw hits, so at most 1/rate of
//    scan pages ever reach protected by accident.
//  - Protected (2Q's Am): a CLOCK over re-referenced frames. The sweep
//    gives ref-set frames a second chance and demotes ref-clear frames to
//    cooling instead of evicting them outright.
//  - Cooling: a FIFO grace stage sized ~10% of the pool (LeanStore's
//    cooling stage; in a pointer-swizzling design this is where candidates
//    are unswizzled). Any access during the grace period reheats the frame
//    back to protected; frames that reach the head cold are evicted.
//
// Eviction order: probation FIFO first, then cooling overflow while the
// protected sweep refills it, then a full cooling drain. The policy only
// nominates victims — the caller's try_evict performs the actual latched
// eviction and may refuse.
//
// Concurrency: segment tags and reference bits are relaxed atomics (they
// are heuristics; eviction correctness comes from try_evict's latches).
// The two FIFOs are spin-latched deques with a per-frame in-queue flag so
// a frame has at most one entry per queue; entries are validated against
// the segment tag when popped, so stale entries (promoted, reheated, or
// reinstalled frames) are dropped lazily. The sweep adopts any frame whose
// segment says probation/cooling but whose queue flag is clear, so no
// frame can be stranded untracked by a pop/install race.
class TwoQReplacer final : public Replacer {
 public:
  struct Options {
    // Fraction of the pool the cooling stage targets (minimum 1 frame).
    double cooling_fraction = 0.10;
  };

  explicit TwoQReplacer(size_t num_frames) : TwoQReplacer(num_frames, {}) {}
  TwoQReplacer(size_t num_frames, Options options);
  SPITFIRE_DISALLOW_COPY_AND_MOVE(TwoQReplacer);

  using Replacer::PickVictim;

  void RecordAccess(frame_id_t f) override;
  void RecordInstall(frame_id_t f) override;
  frame_id_t PickVictim(TryEvictRef try_evict, int max_rounds) override;

  size_t num_frames() const override { return num_frames_; }
  size_t ReferencedCount() const override { return ref_bits_.CountSet(); }
  ReplacerKind kind() const override { return ReplacerKind::kTwoQ; }
  std::string DebugString() const override;

  // Segment census (linear scans; tests/bench only).
  size_t ProbationCount() const { return CountSeg(kProbation); }
  size_t ProtectedCount() const { return CountSeg(kProtected); }
  size_t CoolingCount() const { return CountSeg(kCooling); }

  uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  uint64_t reheats() const {
    return reheats_.load(std::memory_order_relaxed);
  }
  uint64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  uint64_t probation_evictions() const {
    return evict_probation_.load(std::memory_order_relaxed);
  }
  uint64_t cooling_evictions() const {
    return evict_cooling_.load(std::memory_order_relaxed);
  }

 private:
  enum Seg : uint8_t {
    kUntracked = 0,
    kProbation = 1,
    kProtected = 2,
    kCooling = 3,
  };

  struct Fifo {
    SpinLatch latch;
    std::deque<frame_id_t> q;
    std::atomic<size_t> size{0};
  };

  // Pops the head; returns kInvalidFrameId when empty. Clears the frame's
  // in-queue flag inside the latch.
  frame_id_t Pop(Fifo* fifo, std::vector<std::atomic<bool>>* flags);
  // Enqueues f unless its flag says it already has an entry.
  void Push(Fifo* fifo, std::vector<std::atomic<bool>>* flags, frame_id_t f);

  // One probation-FIFO eviction attempt pass. Returns victim or invalid.
  frame_id_t EvictFromProbation(TryEvictRef try_evict);
  // One cooling-head handling step: drop stale entries, reheat ref-set
  // frames, offer cold frames to try_evict. Returns victim or invalid.
  frame_id_t EvictFromCooling(TryEvictRef try_evict);

  size_t CountSeg(uint8_t s) const;

  const size_t num_frames_;
  const size_t cooling_target_;
  ConcurrentBitmap ref_bits_;
  std::vector<std::atomic<uint8_t>> seg_;
  std::vector<std::atomic<bool>> in_prob_q_;
  std::vector<std::atomic<bool>> in_cool_q_;
  Fifo probation_;
  Fifo cooling_;
  std::atomic<size_t> hand_{0};

  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> reheats_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> evict_probation_{0};
  std::atomic<uint64_t> evict_cooling_{0};
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_TWOQ_REPLACER_H_
