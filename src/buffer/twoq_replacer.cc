#include "buffer/twoq_replacer.h"

#include <algorithm>
#include <cstdio>

namespace spitfire {

TwoQReplacer::TwoQReplacer(size_t num_frames, Options options)
    : num_frames_(num_frames),
      cooling_target_(std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(num_frames) *
                                 options.cooling_fraction))),
      ref_bits_(num_frames ? num_frames : 1),
      seg_(num_frames ? num_frames : 1),
      in_prob_q_(num_frames ? num_frames : 1),
      in_cool_q_(num_frames ? num_frames : 1) {
  for (auto& s : seg_) s.store(kUntracked, std::memory_order_relaxed);
  for (auto& f : in_prob_q_) f.store(false, std::memory_order_relaxed);
  for (auto& f : in_cool_q_) f.store(false, std::memory_order_relaxed);
}

frame_id_t TwoQReplacer::Pop(Fifo* fifo,
                             std::vector<std::atomic<bool>>* flags) {
  SpinLatchGuard guard(fifo->latch);
  if (fifo->q.empty()) return kInvalidFrameId;
  const frame_id_t f = fifo->q.front();
  fifo->q.pop_front();
  fifo->size.store(fifo->q.size(), std::memory_order_relaxed);
  // Clear the flag inside the latch so a concurrent Push for the same
  // frame either sees the flag set (entry still queued) or enqueues after
  // we are done — never both and never neither.
  (*flags)[f].store(false, std::memory_order_relaxed);
  return f;
}

void TwoQReplacer::Push(Fifo* fifo, std::vector<std::atomic<bool>>* flags,
                        frame_id_t f) {
  SpinLatchGuard guard(fifo->latch);
  if ((*flags)[f].exchange(true, std::memory_order_relaxed)) return;
  fifo->q.push_back(f);
  fifo->size.store(fifo->q.size(), std::memory_order_relaxed);
}

void TwoQReplacer::RecordInstall(frame_id_t f) {
  if (f >= num_frames_) return;
  ref_bits_.Clear(f);
  seg_[f].store(kProbation, std::memory_order_relaxed);
  Push(&probation_, &in_prob_q_, f);
}

void TwoQReplacer::RecordAccess(frame_id_t f) {
  if (f >= num_frames_) return;
  const bool was_set = ref_bits_.TestAndSet(f);
  uint8_t s = seg_[f].load(std::memory_order_relaxed);
  if (s == kCooling) {
    // Any access during the grace period reheats the frame. The stale
    // cooling-queue entry is dropped when popped (segment mismatch).
    if (seg_[f].compare_exchange_strong(s, kProtected,
                                        std::memory_order_relaxed)) {
      reheats_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (s == kProbation && was_set) {
    // Second sampled access: the frame earned the protected segment. The
    // stale probation entry is dropped when popped.
    if (seg_[f].compare_exchange_strong(s, kProtected,
                                        std::memory_order_relaxed)) {
      promotions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

frame_id_t TwoQReplacer::EvictFromProbation(TryEvictRef try_evict) {
  // Bounded by the queue length at entry: each entry is handled at most
  // once per call (stale entries are dropped, refused victims requeued).
  size_t budget = probation_.size.load(std::memory_order_relaxed);
  while (budget-- > 0) {
    const frame_id_t f = Pop(&probation_, &in_prob_q_);
    if (f == kInvalidFrameId) return kInvalidFrameId;
    if (seg_[f].load(std::memory_order_relaxed) != kProbation) {
      continue;  // promoted or reinstalled since it was queued
    }
    if (try_evict(f)) {
      // Deliberately no segment write here: the frame is already free and
      // may be reinstalled by another thread before we run again;
      // RecordInstall owns the reset.
      evict_probation_.fetch_add(1, std::memory_order_relaxed);
      return f;
    }
    Push(&probation_, &in_prob_q_, f);  // pinned/racing: back of the line
  }
  return kInvalidFrameId;
}

frame_id_t TwoQReplacer::EvictFromCooling(TryEvictRef try_evict) {
  const frame_id_t f = Pop(&cooling_, &in_cool_q_);
  if (f == kInvalidFrameId) return kInvalidFrameId;
  uint8_t s = seg_[f].load(std::memory_order_relaxed);
  if (s != kCooling) return kInvalidFrameId;  // reheated or reinstalled
  if (ref_bits_.TestAndClear(f)) {
    // Accessed since demotion but RecordAccess lost the CAS or the access
    // predates the demotion sweep: treat it as a reheat.
    if (seg_[f].compare_exchange_strong(s, kProtected,
                                        std::memory_order_relaxed)) {
      reheats_.fetch_add(1, std::memory_order_relaxed);
    }
    return kInvalidFrameId;
  }
  if (try_evict(f)) {
    evict_cooling_.fetch_add(1, std::memory_order_relaxed);
    return f;
  }
  Push(&cooling_, &in_cool_q_, f);
  return kInvalidFrameId;
}

frame_id_t TwoQReplacer::PickVictim(TryEvictRef try_evict, int max_rounds) {
  if (num_frames_ == 0) return kInvalidFrameId;

  // 1. Probation FIFO: scans evict their own first-touch pages first.
  frame_id_t victim = EvictFromProbation(try_evict);
  if (victim != kInvalidFrameId) return victim;

  // 2. Protected clock sweep. Ref-set frames get a second chance,
  //    ref-clear frames demote to cooling; whenever cooling runs over its
  //    target the head is drained (reheat-or-evict).
  const size_t limit = num_frames_ * static_cast<size_t>(max_rounds);
  for (size_t step = 0; step < limit; ++step) {
    if (cooling_.size.load(std::memory_order_relaxed) > cooling_target_) {
      victim = EvictFromCooling(try_evict);
      if (victim != kInvalidFrameId) return victim;
    }
    const size_t pos =
        hand_.fetch_add(1, std::memory_order_relaxed) % num_frames_;
    const frame_id_t f = static_cast<frame_id_t>(pos);
    uint8_t s = seg_[f].load(std::memory_order_relaxed);
    switch (s) {
      case kProtected:
        if (ref_bits_.TestAndClear(f)) break;  // second chance
        if (seg_[f].compare_exchange_strong(s, kCooling,
                                            std::memory_order_relaxed)) {
          demotions_.fetch_add(1, std::memory_order_relaxed);
          Push(&cooling_, &in_cool_q_, f);
        }
        break;
      case kProbation:
        // Self-heal: a pop/install race can leave a probation frame with
        // no queue entry; adopt it so it cannot be stranded.
        if (!in_prob_q_[f].load(std::memory_order_relaxed)) {
          Push(&probation_, &in_prob_q_, f);
        }
        break;
      case kCooling:
        if (!in_cool_q_[f].load(std::memory_order_relaxed)) {
          Push(&cooling_, &in_cool_q_, f);
        }
        break;
      default:
        break;  // untracked (free)
    }
  }

  // 3. Out of sweep budget: drain cooling below target, then retry
  //    probation once (the sweep may have adopted strays).
  size_t drain = cooling_.size.load(std::memory_order_relaxed);
  while (drain-- > 0) {
    victim = EvictFromCooling(try_evict);
    if (victim != kInvalidFrameId) return victim;
  }
  return EvictFromProbation(try_evict);
}

size_t TwoQReplacer::CountSeg(uint8_t s) const {
  size_t n = 0;
  for (size_t i = 0; i < num_frames_; ++i) {
    if (seg_[i].load(std::memory_order_relaxed) == s) ++n;
  }
  return n;
}

std::string TwoQReplacer::DebugString() const {
  char buf[192];
  std::snprintf(
      buf, sizeof(buf),
      "2q: frames=%zu prob=%zu prot=%zu cool=%zu (target %zu) "
      "promote=%llu reheat=%llu demote=%llu evict[prob=%llu cool=%llu]",
      num_frames_, ProbationCount(), ProtectedCount(), CoolingCount(),
      cooling_target_,
      static_cast<unsigned long long>(promotions()),
      static_cast<unsigned long long>(reheats()),
      static_cast<unsigned long long>(demotions()),
      static_cast<unsigned long long>(probation_evictions()),
      static_cast<unsigned long long>(cooling_evictions()));
  return buf;
}

}  // namespace spitfire
