#include "buffer/buffer_manager.h"

#include <algorithm>
#include <thread>

#include "storage/dram_device.h"

namespace spitfire {

namespace {

// 0 → min(8, hardware_concurrency), clamped so every present tier keeps
// at least 64 frames per shard — tiny configurations (unit tests, the
// paper's frame-count sweeps) degenerate to one shard instead of
// splitting a 16-frame pool eight ways. Explicit values are honored.
size_t ResolveNumShards(const BufferManagerOptions& o) {
  size_t n = o.num_shards;
  if (n == 0) {
    const size_t hw = std::max(1u, std::thread::hardware_concurrency());
    n = std::min<size_t>(8, hw);
    if (o.dram_frames > 0) {
      n = std::min(n, std::max<size_t>(1, o.dram_frames / 64));
    }
    if (o.nvm_frames > 0) {
      n = std::min(n, std::max<size_t>(1, o.nvm_frames / 64));
    }
  }
  SPITFIRE_CHECK(n >= 1);
  // Every shard of a present tier needs at least one frame.
  SPITFIRE_CHECK(o.dram_frames == 0 || o.dram_frames >= n);
  SPITFIRE_CHECK(o.nvm_frames == 0 || o.nvm_frames >= n);
  return n;
}

// Frame budgets split with remainder distribution: shard i of n gets
// total/n frames plus one of the first total%n leftovers.
size_t SliceSize(size_t total, size_t i, size_t n) {
  return total / n + (i < total % n ? 1 : 0);
}
size_t SliceBase(size_t total, size_t i, size_t n) {
  return i * (total / n) + std::min(i, total % n);
}

// Splits an explicitly configured capacity (admission queue, mini hosts,
// writer watermark) across shards without rounding any shard to zero;
// zero stays zero so each shard applies its own "default from my frame
// count" rule.
size_t SplitExplicit(size_t total, size_t i, size_t n) {
  if (total == 0) return 0;
  return std::max<size_t>(1, SliceSize(total, i, n));
}

}  // namespace

BufferManager::BufferManager(const BufferManagerOptions& options)
    : options_(options) {
  SPITFIRE_CHECK(options_.ssd != nullptr);
  ssd_ = options_.ssd;
  const size_t n = ResolveNumShards(options_);

  // Shared tier devices, sized for the WHOLE frame region. Shards slice
  // them via BufferPoolConfig::frame_base, so the on-device layout (and
  // a caller-supplied device's required capacity) is independent of n.
  if (options_.nvm_frames > 0) {
    if (options_.nvm != nullptr) {
      nvm_ = options_.nvm;
    } else {
      owned_nvm_ = std::make_unique<NvmDevice>(BufferPool::RequiredCapacity(
          options_.nvm_frames, /*persistent_frame_table=*/true));
      nvm_ = owned_nvm_.get();
    }
  }
  if (options_.dram_frames > 0) {
    if (options_.dram_backing != nullptr) {
      dram_backing_ = options_.dram_backing;
    } else {
      owned_dram_ = std::make_unique<DramDevice>(BufferPool::RequiredCapacity(
          options_.dram_frames, /*persistent_frame_table=*/false));
      dram_backing_ = owned_dram_.get();
    }
  }
  if (options_.enable_io_scheduler) {
    io_ = std::make_unique<IoScheduler>(ssd_, options_.io_scheduler);
  }

  std::vector<BufferStats*> stat_parts;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    BufferManagerOptions so = options_;
    so.num_shards = n;
    so.dram_frames = SliceSize(options_.dram_frames, i, n);
    so.nvm_frames = SliceSize(options_.nvm_frames, i, n);
    so.admission_queue_capacity =
        SplitExplicit(options_.admission_queue_capacity, i, n);
    so.mini_host_frames = SplitExplicit(options_.mini_host_frames, i, n);
    so.bg_writer_low_watermark =
        SplitExplicit(options_.bg_writer_low_watermark, i, n);

    BufferShardContext ctx;
    ctx.shard_index = static_cast<uint32_t>(i);
    ctx.num_shards = static_cast<uint32_t>(n);
    ctx.dram_frame_base = SliceBase(options_.dram_frames, i, n);
    ctx.dram_total_frames = options_.dram_frames;
    ctx.nvm_frame_base = SliceBase(options_.nvm_frames, i, n);
    ctx.nvm_total_frames = options_.nvm_frames;
    ctx.ssd = ssd_;
    ctx.nvm = nvm_;
    ctx.dram_backing = dram_backing_;
    ctx.io = io_.get();
    ctx.next_page_id = &next_page_id_;

    shards_.push_back(std::make_unique<BufferShard>(so, ctx));
    stat_parts.push_back(&shards_.back()->stats());
  }
  stats_ = BufferStatsAggregate(std::move(stat_parts));
}

BufferManager::~BufferManager() {
  // Quiesce every shard first (stop writers, flip shutting_down_ so
  // completions fired during the drain fail their tickets), then shut the
  // shared scheduler down once; shards are destroyed after the workers
  // that could touch their pools have been joined.
  for (auto& s : shards_) s->PrepareShutdown();
  if (io_ != nullptr) io_->Shutdown();
}

Status BufferManager::FlushAll(bool include_nvm, size_t* skipped) {
  Status result = Status::OK();
  for (auto& s : shards_) {
    const Status st = s->FlushAll(include_nvm, skipped);
    if (result.ok()) result = st;
  }
  return result;
}

Status BufferManager::RecoverNvmResidentPages() {
  for (auto& s : shards_) {
    SPITFIRE_RETURN_NOT_OK(s->RecoverNvmResidentPages());
  }
  return Status::OK();
}

BufferManager::FrameCensus BufferManager::DebugDramCensus() const {
  FrameCensus c;
  for (const auto& s : shards_) {
    const FrameCensus sc = s->DebugDramCensus();
    c.free += sc.free;
    c.evictable += sc.evictable;
    c.pinned += sc.pinned;
    c.detached += sc.detached;
    c.total_pins += sc.total_pins;
  }
  return c;
}

double BufferManager::InclusivityRatio() const {
  size_t both = 0;
  size_t either = 0;
  for (const auto& s : shards_) s->InclusivityCounts(&both, &either);
  return either == 0 ? 0.0
                     : static_cast<double>(both) / static_cast<double>(either);
}

size_t BufferManager::DramResidentPages() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->DramResidentPages();
  return n;
}

size_t BufferManager::NvmResidentPages() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s->NvmResidentPages();
  return n;
}

}  // namespace spitfire
