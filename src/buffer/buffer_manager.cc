#include "buffer/buffer_manager.h"

#include <algorithm>
#include <cstring>

#include "hymem/mini_page.h"
#include "storage/dram_device.h"

namespace spitfire {

namespace {
constexpr int kFetchMaxAttempts = 8192;
// How long a promotion waits for NVM readers to drain (Section 5.2) before
// giving up and serving the access from NVM instead.
constexpr int kPinDrainSpins = 4096;
}  // namespace

// ---------------------------------------------------------------------------
// PageGuard
// ---------------------------------------------------------------------------

Status PageGuard::ReadAt(size_t offset, size_t size, void* dst) {
  SPITFIRE_DCHECK(valid());
  return bm_->GuardRead(desc_, tier_, offset, size, dst);
}

Status PageGuard::WriteAt(size_t offset, size_t size, const void* src) {
  SPITFIRE_DCHECK(valid());
  return bm_->GuardWrite(desc_, tier_, offset, size, src);
}

std::byte* PageGuard::RawData(bool for_write) {
  SPITFIRE_DCHECK(valid());
  return bm_->GuardRawData(desc_, tier_, for_write);
}

void PageGuard::MarkDirty() {
  SPITFIRE_DCHECK(valid());
  if (tier_ == Tier::kDram) {
    desc_->dram.dirty.store(true, std::memory_order_release);
  } else {
    desc_->nvm.dirty.store(true, std::memory_order_release);
  }
}

void PageGuard::Release() {
  if (desc_ != nullptr) {
    bm_->Unpin(desc_, tier_);
    desc_ = nullptr;
    bm_ = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

BufferManager::BufferManager(const BufferManagerOptions& options)
    : options_(options) {
  SPITFIRE_CHECK(options_.ssd != nullptr);
  ssd_ = options_.ssd;
  SetPolicy(options_.policy);

  if (options_.nvm_frames > 0) {
    if (options_.nvm != nullptr) {
      nvm_ = options_.nvm;
    } else {
      owned_nvm_ = std::make_unique<NvmDevice>(BufferPool::RequiredCapacity(
          options_.nvm_frames, /*persistent_frame_table=*/true));
      nvm_ = owned_nvm_.get();
    }
    nvm_pool_ = std::make_unique<BufferPool>(Tier::kNvm, nvm_,
                                             options_.nvm_frames,
                                             /*persistent_frame_table=*/true);
    if (options_.nvm_admission == NvmAdmissionMode::kAdmissionQueue) {
      size_t cap = options_.admission_queue_capacity;
      if (cap == 0) cap = std::max<size_t>(1, options_.nvm_frames / 2);
      admission_queue_ = std::make_unique<AdmissionQueue>(cap);
    }
  }

  if (options_.dram_frames > 0) {
    if (options_.dram_backing != nullptr) {
      dram_backing_ = options_.dram_backing;
    } else {
      owned_dram_ = std::make_unique<DramDevice>(BufferPool::RequiredCapacity(
          options_.dram_frames, /*persistent_frame_table=*/false));
      dram_backing_ = owned_dram_.get();
    }
    dram_pool_ = std::make_unique<BufferPool>(
        Tier::kDram, dram_backing_, options_.dram_frames,
        /*persistent_frame_table=*/false);

    if (options_.enable_mini_pages && nvm_pool_ != nullptr) {
      size_t host = options_.mini_host_frames;
      if (host == 0) host = std::max<size_t>(1, options_.dram_frames / 8);
      host = std::min(host, options_.dram_frames);
      mini_.per_frame = MiniPageView::PerFrame(options_.load_granularity);
      for (size_t i = 0; i < host; ++i) {
        frame_id_t f;
        if (!dram_pool_->TryAllocateFrame(&f)) break;
        mini_.host_frames.push_back(f);
      }
      mini_.capacity = mini_.host_frames.size() * mini_.per_frame;
      if (mini_.capacity > 0) {
        mini_.free_list = std::make_unique<MpmcQueue<uint32_t>>(mini_.capacity);
        mini_.replacer = std::make_unique<ClockReplacer>(mini_.capacity);
        mini_.owners = std::vector<std::atomic<SharedPageDescriptor*>>(
            mini_.capacity);
        for (uint32_t m = 0; m < mini_.capacity; ++m) {
          mini_.owners[m].store(nullptr, std::memory_order_relaxed);
          SPITFIRE_CHECK(mini_.free_list->TryPush(m));
        }
      }
    }
  }
  SPITFIRE_CHECK(dram_pool_ != nullptr || nvm_pool_ != nullptr);
}

BufferManager::~BufferManager() = default;

SharedPageDescriptor* BufferManager::GetOrCreateDescriptor(page_id_t pid) {
  return mapping_table_.GetOrCreate(pid, [this, pid]() {
    auto d = std::make_unique<SharedPageDescriptor>(pid);
    SharedPageDescriptor* raw = d.get();
    std::lock_guard<std::mutex> g(desc_mu_);
    descriptors_.push_back(std::move(d));
    return raw;
  });
}

// ---------------------------------------------------------------------------
// Pinning
// ---------------------------------------------------------------------------

bool BufferManager::TryPinDram(SharedPageDescriptor* d) {
  SpinLatchGuard g(d->dram_latch);
  const DramMode mode = d->dram_mode.load(std::memory_order_relaxed);
  if (mode == DramMode::kNone) return false;
  d->dram.pins.fetch_add(1, std::memory_order_acquire);
  if (mode == DramMode::kMini) {
    mini_.replacer->RecordAccess(d->mini_id);
  } else {
    dram_pool_->replacer().RecordAccess(
        d->dram.frame.load(std::memory_order_relaxed));
  }
  return true;
}

bool BufferManager::TryPinNvm(SharedPageDescriptor* d) {
  SpinLatchGuard g(d->nvm_latch);
  const frame_id_t f = d->nvm.frame.load(std::memory_order_relaxed);
  if (f == kInvalidFrameId) return false;
  d->nvm.pins.fetch_add(1, std::memory_order_acquire);
  nvm_pool_->replacer().RecordAccess(f);
  return true;
}

void BufferManager::Unpin(SharedPageDescriptor* d, Tier tier) {
  TierState& ts = tier == Tier::kDram ? d->dram : d->nvm;
  const uint32_t prev = ts.pins.fetch_sub(1, std::memory_order_release);
  SPITFIRE_DCHECK(prev > 0);
  (void)prev;
}

// ---------------------------------------------------------------------------
// Fetch
// ---------------------------------------------------------------------------

Result<PageGuard> BufferManager::FetchPage(page_id_t pid,
                                           AccessIntent intent) {
  if (pid >= next_page_id_.load(std::memory_order_relaxed)) {
    return Status::InvalidArgument("fetch of unallocated page");
  }
  SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
  const MigrationPolicy pol = policy();

  for (int attempt = 0; attempt < kFetchMaxAttempts; ++attempt) {
    // 1. DRAM hit.
    if (TryPinDram(d)) {
      stats_.dram_hits.fetch_add(1, std::memory_order_relaxed);
      return PageGuard(this, d, Tier::kDram);
    }

    // 2. NVM hit: possibly migrate up (Dr / Dw), else serve in place.
    if (d->NvmResident()) {
      const bool promote =
          dram_pool_ != nullptr &&
          (intent == AccessIntent::kRead ? pol.MigrateNvmToDramOnRead()
                                         : pol.UseDramOnWrite());
      if (promote) {
        const Status st = PromoteToDram(d);
        if (st.ok()) continue;  // retry: should pin DRAM now
        // Busy: fall through and serve from NVM.
      }
      if (TryPinNvm(d)) {
        stats_.nvm_hits.fetch_add(1, std::memory_order_relaxed);
        return PageGuard(this, d, Tier::kNvm);
      }
      continue;  // raced with an NVM eviction
    }

    // 3. Miss: fetch from SSD.
    Result<PageGuard> r = InstallFromSsd(d, intent);
    if (r.ok()) return r;
    if (!r.status().IsBusy()) return r;
    __builtin_ia32_pause();
  }
  return Status::Busy("FetchPage exceeded retry budget");
}

Result<PageGuard> BufferManager::NewPage(uint32_t page_type) {
  const page_id_t pid = next_page_id_.fetch_add(1, std::memory_order_relaxed);
  if (SsdOffset(pid) + kPageSize > ssd_->capacity()) {
    return Status::OutOfMemory("SSD device full");
  }
  SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
  SpinLatchGuard gd(d->dram_latch);
  SpinLatchGuard gn(d->nvm_latch);
  if (dram_pool_ != nullptr) {
    const frame_id_t f = AcquireDramFrame();
    if (f != kInvalidFrameId) {
      PageView(dram_pool_->FramePtr(f)).Format(pid, page_type);
      dram_pool_->SetOwner(f, d, pid);
      d->dram.frame.store(f, std::memory_order_relaxed);
      d->dram.dirty.store(true, std::memory_order_relaxed);
      d->dram_mode.store(DramMode::kFull, std::memory_order_release);
      d->dram.pins.fetch_add(1, std::memory_order_relaxed);
      dram_pool_->replacer().RecordAccess(f);
      return PageGuard(this, d, Tier::kDram);
    }
  }
  if (nvm_pool_ != nullptr) {
    const frame_id_t f = AcquireNvmFrame();
    if (f != kInvalidFrameId) {
      PageView(nvm_pool_->FramePtr(f)).Format(pid, page_type);
      nvm_->OnDirectWrite(nvm_pool_->FrameOffset(f), kPageSize,
                          /*sequential=*/true);
      nvm_pool_->SetOwner(f, d, pid);
      d->nvm.frame.store(f, std::memory_order_relaxed);
      d->nvm.dirty.store(true, std::memory_order_relaxed);
      d->nvm.pins.fetch_add(1, std::memory_order_relaxed);
      nvm_pool_->replacer().RecordAccess(f);
      return PageGuard(this, d, Tier::kNvm);
    }
  }
  return Status::OutOfMemory("no frame available for new page");
}

Result<PageGuard> BufferManager::InstallFromSsd(SharedPageDescriptor* d,
                                                AccessIntent intent) {
  SpinLatchGuard gd(d->dram_latch);
  SpinLatchGuard gn(d->nvm_latch);
  if (d->DramResident() || d->NvmResident()) {
    return Status::Busy("page appeared while installing");
  }
  const MigrationPolicy pol = policy();
  const bool have_dram = dram_pool_ != nullptr;
  const bool have_nvm = nvm_pool_ != nullptr;

  // Where does the page land? Bypassing NVM on the read path happens with
  // probability 1 - Nr (Section 3.3); without a DRAM tier everything goes
  // to NVM and vice versa.
  bool to_nvm;
  if (!have_dram) {
    to_nvm = true;
  } else if (!have_nvm) {
    to_nvm = false;
  } else {
    to_nvm = pol.InstallSsdToNvmOnRead();
  }

  if (to_nvm) {
    const frame_id_t f = AcquireNvmFrame();
    if (f == kInvalidFrameId) {
      if (!have_dram) return Status::Busy("NVM pool exhausted; retry");
      to_nvm = false;  // fall back to DRAM
    } else {
      std::byte* ptr = nvm_pool_->FramePtr(f);
      const Status st = ssd_->Read(SsdOffset(d->pid), ptr, kPageSize);
      if (!st.ok()) {
        nvm_pool_->FreeFrame(f);
        return st;
      }
      nvm_->OnDirectWrite(nvm_pool_->FrameOffset(f), kPageSize,
                          /*sequential=*/true);
      nvm_pool_->SetOwner(f, d, d->pid);
      d->nvm.frame.store(f, std::memory_order_relaxed);
      d->nvm.dirty.store(false, std::memory_order_relaxed);
      d->nvm.pins.fetch_add(1, std::memory_order_relaxed);
      nvm_pool_->replacer().RecordAccess(f);
      stats_.ssd_fetches.fetch_add(1, std::memory_order_relaxed);
      stats_.nvm_installs.fetch_add(1, std::memory_order_relaxed);
      return PageGuard(this, d, Tier::kNvm);
    }
  }

  frame_id_t f = AcquireDramFrame();
  if (f == kInvalidFrameId) {
    // Transient exhaustion (every frame pinned or latched). If NVM has
    // room, land the page there instead; otherwise let the caller retry.
    if (have_nvm) {
      const frame_id_t nf = AcquireNvmFrame();
      if (nf != kInvalidFrameId) {
        std::byte* nptr = nvm_pool_->FramePtr(nf);
        const Status st = ssd_->Read(SsdOffset(d->pid), nptr, kPageSize);
        if (!st.ok()) {
          nvm_pool_->FreeFrame(nf);
          return st;
        }
        nvm_->OnDirectWrite(nvm_pool_->FrameOffset(nf), kPageSize,
                            /*sequential=*/true);
        nvm_pool_->SetOwner(nf, d, d->pid);
        d->nvm.frame.store(nf, std::memory_order_relaxed);
        d->nvm.dirty.store(false, std::memory_order_relaxed);
        d->nvm.pins.fetch_add(1, std::memory_order_relaxed);
        nvm_pool_->replacer().RecordAccess(nf);
        stats_.ssd_fetches.fetch_add(1, std::memory_order_relaxed);
        stats_.nvm_installs.fetch_add(1, std::memory_order_relaxed);
        return PageGuard(this, d, Tier::kNvm);
      }
    }
    return Status::Busy("DRAM pool exhausted; retry");
  }
  std::byte* ptr = dram_pool_->FramePtr(f);
  const Status st = ssd_->Read(SsdOffset(d->pid), ptr, kPageSize);
  if (!st.ok()) {
    dram_pool_->FreeFrame(f);
    return st;
  }
  dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f), kPageSize,
                               /*sequential=*/true);
  dram_pool_->SetOwner(f, d, d->pid);
  d->dram.frame.store(f, std::memory_order_relaxed);
  d->dram.dirty.store(false, std::memory_order_relaxed);
  d->dram_mode.store(DramMode::kFull, std::memory_order_release);
  d->dram.pins.fetch_add(1, std::memory_order_relaxed);
  dram_pool_->replacer().RecordAccess(f);
  stats_.ssd_fetches.fetch_add(1, std::memory_order_relaxed);
  return PageGuard(this, d, Tier::kDram);
}

// ---------------------------------------------------------------------------
// Promotion (NVM → DRAM, data flow path 7)
// ---------------------------------------------------------------------------

Status BufferManager::PromoteToDram(SharedPageDescriptor* d) {
  SPITFIRE_DCHECK(dram_pool_ != nullptr);
  SpinLatchGuard gd(d->dram_latch);
  if (d->DramResident()) return Status::OK();
  SpinLatchGuard gn(d->nvm_latch);
  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  if (nf == kInvalidFrameId) return Status::Busy("NVM copy gone");

  // Wait for in-flight NVM references to drain so the DRAM copy includes
  // every modification made in place on NVM (Section 5.2).
  int spins = 0;
  while (d->nvm.pins.load(std::memory_order_acquire) > 0) {
    if (++spins > kPinDrainSpins) {
      return Status::Busy("NVM readers did not drain");
    }
    __builtin_ia32_pause();
  }

  const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);

  // HyMem-style admissions: mini page first, then cache-line-grained.
  if (options_.enable_mini_pages && mini_.capacity > 0) {
    const uint32_t m = AcquireMiniSlot();
    if (m != UINT32_MAX) {
      MiniPageView mp(MiniPtr(m));
      mp.Format(d->pid, options_.load_granularity);
      d->mini_id = m;
      mini_.owners[m].store(d, std::memory_order_release);
      d->dram.dirty.store(false, std::memory_order_relaxed);
      d->dram_mode.store(DramMode::kMini, std::memory_order_release);
      mini_.replacer->RecordAccess(m);
      stats_.mini_page_admits.fetch_add(1, std::memory_order_relaxed);
      stats_.promotions.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }

  const frame_id_t f = AcquireDramFrame();
  if (f == kInvalidFrameId) return Status::Busy("no DRAM frame");

  if (options_.enable_fine_grained_loading) {
    // No bytes move yet: units are loaded on demand from the NVM copy.
    d->cl.Reset(options_.load_granularity);
    dram_pool_->SetOwner(f, d, d->pid);
    d->dram.frame.store(f, std::memory_order_relaxed);
    d->dram.dirty.store(false, std::memory_order_relaxed);
    d->dram_mode.store(DramMode::kCacheLineGrained, std::memory_order_release);
  } else {
    const Status st = nvm_->Read(nvm_off, dram_pool_->FramePtr(f), kPageSize);
    if (!st.ok()) {
      dram_pool_->FreeFrame(f);
      return st;
    }
    dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f), kPageSize,
                                 /*sequential=*/true);
    dram_pool_->SetOwner(f, d, d->pid);
    d->dram.frame.store(f, std::memory_order_relaxed);
    d->dram.dirty.store(false, std::memory_order_relaxed);
    d->dram_mode.store(DramMode::kFull, std::memory_order_release);
  }
  dram_pool_->replacer().RecordAccess(f);
  stats_.promotions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Frame acquisition & eviction
// ---------------------------------------------------------------------------

frame_id_t BufferManager::AcquireDramFrame() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    frame_id_t f;
    if (dram_pool_->TryAllocateFrame(&f)) return f;
    dram_pool_->replacer().PickVictim(
        [this](frame_id_t v) { return TryEvictDramFrame(v); });
  }
  return kInvalidFrameId;
}

frame_id_t BufferManager::AcquireNvmFrame() {
  for (int attempt = 0; attempt < 64; ++attempt) {
    frame_id_t f;
    if (nvm_pool_->TryAllocateFrame(&f)) return f;
    nvm_pool_->replacer().PickVictim(
        [this](frame_id_t v) { return TryEvictNvmFrame(v); });
  }
  return kInvalidFrameId;
}

bool BufferManager::DecideNvmAdmission(page_id_t pid) {
  if (admission_queue_ != nullptr) return admission_queue_->ShouldAdmit(pid);
  return policy().AdmitToNvmOnDramEviction();
}

void BufferManager::WriteBackUnitsToNvm(SharedPageDescriptor* d) {
  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  SPITFIRE_DCHECK(nf != kInvalidFrameId);
  const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
  const frame_id_t df = d->dram.frame.load(std::memory_order_relaxed);
  std::byte* dram_ptr = dram_pool_->FramePtr(df);
  const uint32_t usize = d->cl.unit_size;
  const size_t units = d->cl.UnitsPerPage();
  bool any = false;
  for (size_t u = 0; u < units; ++u) {
    if (!d->cl.dirty.Test(u)) continue;
    (void)nvm_->Write(nvm_off + u * usize, dram_ptr + u * usize, usize);
    any = true;
  }
  if (any) d->nvm.dirty.store(true, std::memory_order_relaxed);
}

bool BufferManager::TryEvictDramFrame(frame_id_t f) {
  SharedPageDescriptor* d = dram_pool_->Owner(f);
  if (d == nullptr) return false;
  if (!d->dram_latch.TryLock()) return false;

  const DramMode mode = d->dram_mode.load(std::memory_order_relaxed);
  const bool owns = (mode == DramMode::kFull ||
                     mode == DramMode::kCacheLineGrained) &&
                    d->dram.frame.load(std::memory_order_relaxed) == f &&
                    dram_pool_->Owner(f) == d;
  if (!owns || d->dram.pins.load(std::memory_order_acquire) != 0) {
    d->dram_latch.Unlock();
    return false;
  }

  const bool dirty = d->dram.dirty.load(std::memory_order_relaxed) ||
                     (mode == DramMode::kCacheLineGrained &&
                      d->cl.dirty.Any());

  if (!dirty) {
    // HyMem's admission queue considers EVERY page evicted from DRAM, not
    // just dirty ones (Section 1): a clean page admitted on its second
    // consideration is copied into NVM so future reads skip the SSD. The
    // probabilistic (Spitfire) mode discards clean pages (Section 3.3).
    if (admission_queue_ != nullptr && nvm_pool_ != nullptr &&
        mode == DramMode::kFull && !d->NvmResident() &&
        d->nvm_latch.TryLock()) {
      if (!d->NvmResident() && admission_queue_->ShouldAdmit(d->pid)) {
        const frame_id_t nf = AcquireNvmFrame();
        if (nf != kInvalidFrameId) {
          (void)nvm_->Write(nvm_pool_->FrameOffset(nf),
                            dram_pool_->FramePtr(f), kPageSize);
          nvm_pool_->SetOwner(nf, d, d->pid);
          d->nvm.frame.store(nf, std::memory_order_relaxed);
          d->nvm.dirty.store(false, std::memory_order_relaxed);
          nvm_pool_->replacer().RecordAccess(nf);
          stats_.demotions_to_nvm.fetch_add(1, std::memory_order_relaxed);
        }
      }
      d->nvm_latch.Unlock();
    }
    d->dram_mode.store(DramMode::kNone, std::memory_order_release);
    d->dram.frame.store(kInvalidFrameId, std::memory_order_relaxed);
    dram_pool_->FreeFrame(f);
    d->dram_latch.Unlock();
    stats_.dram_evictions.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  if (mode == DramMode::kCacheLineGrained) {
    // Dirty units flow back into the (still-present) NVM copy.
    if (!d->nvm_latch.TryLock()) {
      d->dram_latch.Unlock();
      return false;
    }
    WriteBackUnitsToNvm(d);
    d->dram_mode.store(DramMode::kNone, std::memory_order_release);
    d->dram.frame.store(kInvalidFrameId, std::memory_order_relaxed);
    d->dram.dirty.store(false, std::memory_order_relaxed);
    dram_pool_->FreeFrame(f);
    d->nvm_latch.Unlock();
    d->dram_latch.Unlock();
    stats_.dram_evictions.fetch_add(1, std::memory_order_relaxed);
    stats_.demotions_to_nvm.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Full dirty page: update the NVM copy in place, admit into NVM
  // (probability Nw / HyMem admission queue), or bypass NVM down to SSD
  // (Section 3.4).
  if (!d->nvm_latch.TryLock()) {
    d->dram_latch.Unlock();
    return false;
  }
  std::byte* dram_ptr = dram_pool_->FramePtr(f);
  bool wrote = false;
  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  if (nf != kInvalidFrameId) {
    (void)nvm_->Write(nvm_pool_->FrameOffset(nf), dram_ptr, kPageSize);
    d->nvm.dirty.store(true, std::memory_order_relaxed);
    stats_.demotions_to_nvm.fetch_add(1, std::memory_order_relaxed);
    wrote = true;
  } else if (nvm_pool_ != nullptr && DecideNvmAdmission(d->pid)) {
    const frame_id_t newf = AcquireNvmFrame();
    if (newf != kInvalidFrameId) {
      (void)nvm_->Write(nvm_pool_->FrameOffset(newf), dram_ptr, kPageSize);
      nvm_pool_->SetOwner(newf, d, d->pid);
      d->nvm.frame.store(newf, std::memory_order_relaxed);
      d->nvm.dirty.store(true, std::memory_order_relaxed);
      nvm_pool_->replacer().RecordAccess(newf);
      stats_.demotions_to_nvm.fetch_add(1, std::memory_order_relaxed);
      wrote = true;
    }
  }
  if (!wrote) {
    if (!d->ssd_latch.TryLock()) {
      d->nvm_latch.Unlock();
      d->dram_latch.Unlock();
      return false;
    }
    const Status st = WriteToSsd(d->pid, dram_ptr);
    d->ssd_latch.Unlock();
    if (!st.ok()) {
      d->nvm_latch.Unlock();
      d->dram_latch.Unlock();
      return false;
    }
    stats_.demotions_to_ssd.fetch_add(1, std::memory_order_relaxed);
  }
  d->dram_mode.store(DramMode::kNone, std::memory_order_release);
  d->dram.frame.store(kInvalidFrameId, std::memory_order_relaxed);
  d->dram.dirty.store(false, std::memory_order_relaxed);
  dram_pool_->FreeFrame(f);
  d->nvm_latch.Unlock();
  d->dram_latch.Unlock();
  stats_.dram_evictions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool BufferManager::TryEvictNvmFrame(frame_id_t f) {
  SharedPageDescriptor* d = nvm_pool_->Owner(f);
  if (d == nullptr) return false;
  if (!d->nvm_latch.TryLock()) return false;
  if (d->nvm.frame.load(std::memory_order_relaxed) != f ||
      d->nvm.pins.load(std::memory_order_acquire) != 0) {
    d->nvm_latch.Unlock();
    return false;
  }
  // A cache-line-grained or mini DRAM copy loads its units from this NVM
  // frame; it pins the NVM copy implicitly.
  const DramMode mode = d->dram_mode.load(std::memory_order_acquire);
  if (mode == DramMode::kCacheLineGrained || mode == DramMode::kMini) {
    d->nvm_latch.Unlock();
    return false;
  }
  if (d->nvm.dirty.load(std::memory_order_relaxed)) {
    if (!d->ssd_latch.TryLock()) {
      d->nvm_latch.Unlock();
      return false;
    }
    std::byte* ptr = nvm_pool_->FramePtr(f);
    nvm_->OnDirectRead(nvm_pool_->FrameOffset(f), kPageSize,
                       /*sequential=*/true);
    const Status st = WriteToSsd(d->pid, ptr);
    d->ssd_latch.Unlock();
    if (!st.ok()) {
      d->nvm_latch.Unlock();
      return false;
    }
    d->nvm.dirty.store(false, std::memory_order_relaxed);
  }
  d->nvm.frame.store(kInvalidFrameId, std::memory_order_relaxed);
  nvm_pool_->FreeFrame(f);
  d->nvm_latch.Unlock();
  stats_.nvm_evictions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

// ---------------------------------------------------------------------------
// Mini pages
// ---------------------------------------------------------------------------

std::byte* BufferManager::MiniPtr(uint32_t mini_id) {
  const size_t host = mini_id / mini_.per_frame;
  const size_t slot = mini_id % mini_.per_frame;
  return dram_pool_->FramePtr(mini_.host_frames[host]) +
         slot * MiniPageView::BytesRequired(options_.load_granularity);
}

uint32_t BufferManager::AcquireMiniSlot() {
  for (int attempt = 0; attempt < 16; ++attempt) {
    uint32_t m;
    if (mini_.free_list->TryPop(&m)) return m;
    mini_.replacer->PickVictim(
        [this](frame_id_t v) { return TryEvictMini(v); });
  }
  return UINT32_MAX;
}

bool BufferManager::TryEvictMini(uint32_t mini_id) {
  SharedPageDescriptor* d =
      mini_.owners[mini_id].load(std::memory_order_acquire);
  if (d == nullptr) return false;
  if (!d->dram_latch.TryLock()) return false;
  if (d->dram_mode.load(std::memory_order_relaxed) != DramMode::kMini ||
      d->mini_id != mini_id ||
      d->dram.pins.load(std::memory_order_acquire) != 0) {
    d->dram_latch.Unlock();
    return false;
  }
  MiniPageView mp(MiniPtr(mini_id));
  if (mp.AnyDirty()) {
    if (!d->nvm_latch.TryLock()) {
      d->dram_latch.Unlock();
      return false;
    }
    const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
    SPITFIRE_DCHECK(nf != kInvalidFrameId);
    const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
    const uint32_t usize = mp.meta()->unit_size;
    for (size_t s = 0; s < mp.count(); ++s) {
      if (!mp.IsDirty(s)) continue;
      const uint16_t unit = mp.meta()->slots[s];
      (void)nvm_->Write(nvm_off + static_cast<uint64_t>(unit) * usize,
                        mp.UnitPtr(s), usize);
    }
    d->nvm.dirty.store(true, std::memory_order_relaxed);
    d->nvm_latch.Unlock();
  }
  d->dram_mode.store(DramMode::kNone, std::memory_order_release);
  mini_.owners[mini_id].store(nullptr, std::memory_order_release);
  while (!mini_.free_list->TryPush(mini_id)) __builtin_ia32_pause();
  d->dram_latch.Unlock();
  stats_.dram_evictions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

Status BufferManager::PromoteMiniToFull(SharedPageDescriptor* d) {
  // dram latch held; mode == kMini.
  const uint32_t mini_id = d->mini_id;
  MiniPageView mp(MiniPtr(mini_id));
  const frame_id_t f = AcquireDramFrame();
  if (f == kInvalidFrameId) return Status::OutOfMemory("no frame for overflow");

  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  SPITFIRE_DCHECK(nf != kInvalidFrameId);
  std::byte* dst = dram_pool_->FramePtr(f);
  SPITFIRE_RETURN_NOT_OK(
      nvm_->Read(nvm_pool_->FrameOffset(nf), dst, kPageSize));
  // Overlay units dirtied while in the mini page: they are newer than the
  // NVM copy.
  const uint32_t usize = mp.meta()->unit_size;
  bool any_dirty = false;
  for (size_t s = 0; s < mp.count(); ++s) {
    if (!mp.IsDirty(s)) continue;
    const uint16_t unit = mp.meta()->slots[s];
    std::memcpy(dst + static_cast<size_t>(unit) * usize, mp.UnitPtr(s), usize);
    any_dirty = true;
  }
  dram_pool_->SetOwner(f, d, d->pid);
  d->dram.frame.store(f, std::memory_order_relaxed);
  if (any_dirty) d->dram.dirty.store(true, std::memory_order_relaxed);
  d->dram_mode.store(DramMode::kFull, std::memory_order_release);
  dram_pool_->replacer().RecordAccess(f);
  mini_.owners[mini_id].store(nullptr, std::memory_order_release);
  while (!mini_.free_list->TryPush(mini_id)) __builtin_ia32_pause();
  stats_.mini_page_promotions.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Guard data plane
// ---------------------------------------------------------------------------

void BufferManager::EnsureUnitsResident(SharedPageDescriptor* d, size_t offset,
                                        size_t size) {
  const uint32_t usize = d->cl.unit_size;
  const size_t first = offset / usize;
  const size_t last = (offset + (size ? size : 1) - 1) / usize;
  const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
  SPITFIRE_DCHECK(nf != kInvalidFrameId);
  const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
  std::byte* dram_ptr =
      dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
  for (size_t u = first; u <= last; ++u) {
    if (d->cl.resident.Test(u)) continue;
    (void)nvm_->ReadFineGrained(nvm_off + u * usize, dram_ptr + u * usize,
                                usize);
    d->cl.resident.Set(u);
    stats_.fine_grained_loads.fetch_add(1, std::memory_order_relaxed);
  }
}

Status BufferManager::GuardRead(SharedPageDescriptor* d, Tier tier,
                                size_t offset, size_t size, void* dst) {
  if (offset + size > kPageSize) {
    return Status::InvalidArgument("page access out of range");
  }
  if (tier == Tier::kNvm) {
    const frame_id_t f = d->nvm.frame.load(std::memory_order_acquire);
    SPITFIRE_DCHECK(f != kInvalidFrameId);
    std::memcpy(dst, nvm_pool_->FramePtr(f) + offset, size);
    nvm_->OnDirectRead(nvm_pool_->FrameOffset(f) + offset, size);
    return Status::OK();
  }

  // Fast path for fully materialized DRAM pages.
  if (d->dram_mode.load(std::memory_order_acquire) == DramMode::kFull) {
    const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
    std::memcpy(dst, dram_pool_->FramePtr(f) + offset, size);
    dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + offset, size);
    return Status::OK();
  }

  SpinLatchGuard g(d->dram_latch);
  const DramMode mode = d->dram_mode.load(std::memory_order_relaxed);
  switch (mode) {
    case DramMode::kFull: {
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dst, dram_pool_->FramePtr(f) + offset, size);
      dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + offset, size);
      return Status::OK();
    }
    case DramMode::kCacheLineGrained: {
      EnsureUnitsResident(d, offset, size);
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dst, dram_pool_->FramePtr(f) + offset, size);
      dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + offset, size);
      return Status::OK();
    }
    case DramMode::kMini: {
      MiniPageView mp(MiniPtr(d->mini_id));
      const uint32_t usize = mp.meta()->unit_size;
      const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
      const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
      size_t pos = offset;
      const size_t end = offset + size;
      auto* out = static_cast<std::byte*>(dst);
      while (pos < end) {
        const uint16_t unit = static_cast<uint16_t>(pos / usize);
        int slot = mp.FindSlot(unit);
        if (slot < 0) {
          slot = mp.Insert(unit);
          if (slot < 0) {
            // Overflow: transparently promote to a full page and finish
            // the read there.
            SPITFIRE_RETURN_NOT_OK(PromoteMiniToFull(d));
            const frame_id_t f =
                d->dram.frame.load(std::memory_order_relaxed);
            std::memcpy(out, dram_pool_->FramePtr(f) + pos, end - pos);
            dram_backing_->OnDirectRead(dram_pool_->FrameOffset(f) + pos,
                                        end - pos);
            return Status::OK();
          }
          (void)nvm_->ReadFineGrained(
              nvm_off + static_cast<uint64_t>(unit) * usize, mp.UnitPtr(slot),
              usize);
          stats_.fine_grained_loads.fetch_add(1, std::memory_order_relaxed);
        }
        const size_t unit_begin = static_cast<size_t>(unit) * usize;
        const size_t in_off = pos - unit_begin;
        const size_t n = std::min(end - pos, usize - in_off);
        std::memcpy(out, mp.UnitPtr(slot) + in_off, n);
        out += n;
        pos += n;
      }
      return Status::OK();
    }
    case DramMode::kNone:
      break;
  }
  SPITFIRE_CHECK(false && "GuardRead on non-resident page");
  return Status::Corruption("unreachable");
}

Status BufferManager::GuardWrite(SharedPageDescriptor* d, Tier tier,
                                 size_t offset, size_t size, const void* src) {
  if (offset + size > kPageSize) {
    return Status::InvalidArgument("page access out of range");
  }
  if (tier == Tier::kNvm) {
    const frame_id_t f = d->nvm.frame.load(std::memory_order_acquire);
    SPITFIRE_DCHECK(f != kInvalidFrameId);
    std::memcpy(nvm_pool_->FramePtr(f) + offset, src, size);
    nvm_->OnDirectWrite(nvm_pool_->FrameOffset(f) + offset, size);
    d->nvm.dirty.store(true, std::memory_order_release);
    return Status::OK();
  }

  if (d->dram_mode.load(std::memory_order_acquire) == DramMode::kFull) {
    const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
    std::memcpy(dram_pool_->FramePtr(f) + offset, src, size);
    dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + offset, size);
    d->dram.dirty.store(true, std::memory_order_release);
    return Status::OK();
  }

  SpinLatchGuard g(d->dram_latch);
  const DramMode mode = d->dram_mode.load(std::memory_order_relaxed);
  switch (mode) {
    case DramMode::kFull: {
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dram_pool_->FramePtr(f) + offset, src, size);
      dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + offset, size);
      d->dram.dirty.store(true, std::memory_order_release);
      return Status::OK();
    }
    case DramMode::kCacheLineGrained: {
      // Writes that do not cover whole units require the surrounding bytes
      // to be resident first.
      EnsureUnitsResident(d, offset, size);
      const frame_id_t f = d->dram.frame.load(std::memory_order_relaxed);
      std::memcpy(dram_pool_->FramePtr(f) + offset, src, size);
      dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + offset, size);
      const uint32_t usize = d->cl.unit_size;
      for (size_t u = offset / usize; u <= (offset + size - 1) / usize; ++u) {
        d->cl.dirty.Set(u);
      }
      d->dram.dirty.store(true, std::memory_order_release);
      return Status::OK();
    }
    case DramMode::kMini: {
      MiniPageView mp(MiniPtr(d->mini_id));
      const uint32_t usize = mp.meta()->unit_size;
      const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
      const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
      size_t pos = offset;
      const size_t end = offset + size;
      const auto* in = static_cast<const std::byte*>(src);
      while (pos < end) {
        const uint16_t unit = static_cast<uint16_t>(pos / usize);
        int slot = mp.FindSlot(unit);
        if (slot < 0) {
          slot = mp.Insert(unit);
          if (slot < 0) {
            SPITFIRE_RETURN_NOT_OK(PromoteMiniToFull(d));
            const frame_id_t f =
                d->dram.frame.load(std::memory_order_relaxed);
            std::memcpy(dram_pool_->FramePtr(f) + pos, in, end - pos);
            dram_backing_->OnDirectWrite(dram_pool_->FrameOffset(f) + pos,
                                         end - pos);
            d->dram.dirty.store(true, std::memory_order_release);
            return Status::OK();
          }
          (void)nvm_->ReadFineGrained(
              nvm_off + static_cast<uint64_t>(unit) * usize, mp.UnitPtr(slot),
              usize);
          stats_.fine_grained_loads.fetch_add(1, std::memory_order_relaxed);
        }
        const size_t unit_begin = static_cast<size_t>(unit) * usize;
        const size_t in_off = pos - unit_begin;
        const size_t n = std::min(end - pos, usize - in_off);
        std::memcpy(mp.UnitPtr(slot) + in_off, in, n);
        mp.MarkDirty(static_cast<size_t>(slot));
        in += n;
        pos += n;
      }
      d->dram.dirty.store(true, std::memory_order_release);
      return Status::OK();
    }
    case DramMode::kNone:
      break;
  }
  SPITFIRE_CHECK(false && "GuardWrite on non-resident page");
  return Status::Corruption("unreachable");
}

std::byte* BufferManager::GuardRawData(SharedPageDescriptor* d, Tier tier,
                                       bool for_write) {
  if (tier == Tier::kNvm) {
    const frame_id_t f = d->nvm.frame.load(std::memory_order_acquire);
    SPITFIRE_DCHECK(f != kInvalidFrameId);
    if (for_write) d->nvm.dirty.store(true, std::memory_order_release);
    nvm_->OnDirectRead(nvm_pool_->FrameOffset(f), 256);
    return nvm_pool_->FramePtr(f);
  }
  if (d->dram_mode.load(std::memory_order_acquire) == DramMode::kFull) {
    if (for_write) d->dram.dirty.store(true, std::memory_order_release);
    return dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
  }
  // Materialize cache-line-grained / mini representations into a full
  // frame so callers can treat the page as one contiguous 16 KB buffer.
  SpinLatchGuard g(d->dram_latch);
  DramMode mode = d->dram_mode.load(std::memory_order_relaxed);
  if (mode == DramMode::kMini) {
    if (!PromoteMiniToFull(d).ok()) return nullptr;
    mode = DramMode::kFull;
  } else if (mode == DramMode::kCacheLineGrained) {
    EnsureUnitsResident(d, 0, kPageSize);
    if (d->cl.dirty.Any()) d->dram.dirty.store(true, std::memory_order_relaxed);
    d->dram_mode.store(DramMode::kFull, std::memory_order_release);
    mode = DramMode::kFull;
  }
  if (mode != DramMode::kFull) return nullptr;
  if (for_write) d->dram.dirty.store(true, std::memory_order_release);
  return dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
}

// ---------------------------------------------------------------------------
// Flushing, recovery, introspection
// ---------------------------------------------------------------------------

Status BufferManager::WriteToSsd(page_id_t pid, const std::byte* data) {
  return ssd_->Write(SsdOffset(pid), data, kPageSize);
}

Status BufferManager::FlushPage(page_id_t pid) {
  SharedPageDescriptor* d = nullptr;
  if (!mapping_table_.Find(pid, &d)) return Status::OK();  // never buffered
  SpinLatchGuard gd(d->dram_latch);
  SpinLatchGuard gn(d->nvm_latch);
  SpinLatchGuard gs(d->ssd_latch);

  // Guard holders may be mutating page contents; flushing a pinned page
  // could persist a torn image. Skip it — the WAL keeps it recoverable and
  // a later flush round will catch it. (Pins are taken under the tier
  // latches we hold, so this check cannot race with a new pin.)
  if (d->dram.pins.load(std::memory_order_acquire) != 0 ||
      d->nvm.pins.load(std::memory_order_acquire) != 0) {
    return Status::OK();
  }

  const DramMode mode = d->dram_mode.load(std::memory_order_relaxed);
  if (mode == DramMode::kCacheLineGrained && d->cl.dirty.Any()) {
    WriteBackUnitsToNvm(d);
    d->cl.dirty.Reset();
    d->dram.dirty.store(false, std::memory_order_relaxed);
  } else if (mode == DramMode::kMini) {
    MiniPageView mp(MiniPtr(d->mini_id));
    if (mp.AnyDirty()) {
      const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
      const uint64_t nvm_off = nvm_pool_->FrameOffset(nf);
      const uint32_t usize = mp.meta()->unit_size;
      for (size_t s = 0; s < mp.count(); ++s) {
        if (!mp.IsDirty(s)) continue;
        const uint16_t unit = mp.meta()->slots[s];
        (void)nvm_->Write(nvm_off + static_cast<uint64_t>(unit) * usize,
                          mp.UnitPtr(s), usize);
      }
      mp.meta()->dirty_mask = 0;
      d->nvm.dirty.store(true, std::memory_order_relaxed);
      d->dram.dirty.store(false, std::memory_order_relaxed);
    }
  } else if (mode == DramMode::kFull &&
             d->dram.dirty.load(std::memory_order_relaxed)) {
    std::byte* ptr =
        dram_pool_->FramePtr(d->dram.frame.load(std::memory_order_relaxed));
    SPITFIRE_RETURN_NOT_OK(WriteToSsd(pid, ptr));
    // Keep any NVM copy coherent with the freshest data so later direct
    // NVM reads never observe stale bytes.
    const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
    if (nf != kInvalidFrameId) {
      (void)nvm_->Write(nvm_pool_->FrameOffset(nf), ptr, kPageSize);
      d->nvm.dirty.store(false, std::memory_order_relaxed);
    }
    d->dram.dirty.store(false, std::memory_order_relaxed);
  }

  if (d->nvm.dirty.load(std::memory_order_relaxed)) {
    const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
    if (nf != kInvalidFrameId) {
      std::byte* ptr = nvm_pool_->FramePtr(nf);
      nvm_->OnDirectRead(nvm_pool_->FrameOffset(nf), kPageSize,
                         /*sequential=*/true);
      SPITFIRE_RETURN_NOT_OK(WriteToSsd(pid, ptr));
      d->nvm.dirty.store(false, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

Status BufferManager::FlushAll(bool include_nvm) {
  Status result = Status::OK();
  if (include_nvm) {
    // Collect first: FlushPage re-enters the mapping table, so it must not
    // run under ForEach's shard latch.
    std::vector<page_id_t> pids;
    mapping_table_.ForEach(
        [&](const page_id_t& pid, SharedPageDescriptor*&) {
          pids.push_back(pid);
        });
    for (page_id_t pid : pids) {
      const Status st = FlushPage(pid);
      if (!st.ok()) result = st;
    }
    return result;
  }
  mapping_table_.ForEach([&](const page_id_t& pid, SharedPageDescriptor*& d) {
    {
      // Background checkpointing (Section 5.2): only dirty DRAM pages are
      // pushed down; NVM-resident modifications are already persistent.
      SpinLatchGuard gd(d->dram_latch);
      if (d->dram.pins.load(std::memory_order_acquire) != 0) {
        return;  // actively referenced; the next round gets it
      }
      const DramMode mode = d->dram_mode.load(std::memory_order_relaxed);
      if (mode == DramMode::kFull &&
          d->dram.dirty.load(std::memory_order_relaxed)) {
        SpinLatchGuard gn(d->nvm_latch);
        SpinLatchGuard gs(d->ssd_latch);
        std::byte* ptr = dram_pool_->FramePtr(
            d->dram.frame.load(std::memory_order_relaxed));
        const Status st = WriteToSsd(pid, ptr);
        if (!st.ok()) {
          result = st;
          return;
        }
        const frame_id_t nf = d->nvm.frame.load(std::memory_order_relaxed);
        if (nf != kInvalidFrameId) {
          (void)nvm_->Write(nvm_pool_->FrameOffset(nf), ptr, kPageSize);
          d->nvm.dirty.store(false, std::memory_order_relaxed);
        }
        d->dram.dirty.store(false, std::memory_order_relaxed);
      } else if (mode == DramMode::kCacheLineGrained && d->cl.dirty.Any()) {
        SpinLatchGuard gn(d->nvm_latch);
        WriteBackUnitsToNvm(d);
        d->cl.dirty.Reset();
        d->dram.dirty.store(false, std::memory_order_relaxed);
      }
    }
  });
  return result;
}

Status BufferManager::RecoverNvmResidentPages() {
  if (nvm_pool_ == nullptr) {
    return Status::InvalidArgument("no NVM pool to recover");
  }
  // Drain the free list; re-add frames that the persistent frame table
  // marks as free, claim the rest.
  std::vector<frame_id_t> all;
  frame_id_t f;
  while (nvm_pool_->TryAllocateFrame(&f)) all.push_back(f);
  size_t recovered = 0;
  for (frame_id_t frame : all) {
    const page_id_t pid = nvm_pool_->PersistedOwner(frame);
    bool valid = pid != kInvalidPageId;
    if (valid) {
      PageView view(nvm_pool_->FramePtr(frame));
      valid = view.header()->IsValid() && view.header()->page_id == pid;
    }
    if (!valid) {
      nvm_pool_->FreeFrame(frame);
      continue;
    }
    SharedPageDescriptor* d = GetOrCreateDescriptor(pid);
    d->nvm.frame.store(frame, std::memory_order_relaxed);
    // NVM copies may be newer than their SSD counterparts; treat them as
    // dirty so they flow down before being dropped.
    d->nvm.dirty.store(true, std::memory_order_relaxed);
    nvm_pool_->SetOwner(frame, d, pid);
    page_id_t expect = next_page_id_.load(std::memory_order_relaxed);
    while (pid + 1 > expect &&
           !next_page_id_.compare_exchange_weak(expect, pid + 1)) {
    }
    ++recovered;
  }
  (void)recovered;
  return Status::OK();
}

double BufferManager::InclusivityRatio() const {
  size_t both = 0;
  size_t either = 0;
  auto* self = const_cast<BufferManager*>(this);
  self->mapping_table_.ForEach(
      [&](const page_id_t&, SharedPageDescriptor*& d) {
        const bool in_dram = d->DramResident();
        const bool in_nvm = d->NvmResident();
        if (in_dram && in_nvm) ++both;
        if (in_dram || in_nvm) ++either;
      });
  return either == 0 ? 0.0
                     : static_cast<double>(both) / static_cast<double>(either);
}

size_t BufferManager::DramResidentPages() const {
  size_t n = 0;
  auto* self = const_cast<BufferManager*>(this);
  self->mapping_table_.ForEach(
      [&](const page_id_t&, SharedPageDescriptor*& d) {
        if (d->DramResident()) ++n;
      });
  return n;
}

size_t BufferManager::NvmResidentPages() const {
  size_t n = 0;
  auto* self = const_cast<BufferManager*>(this);
  self->mapping_table_.ForEach(
      [&](const page_id_t&, SharedPageDescriptor*& d) {
        if (d->NvmResident()) ++n;
      });
  return n;
}

}  // namespace spitfire
