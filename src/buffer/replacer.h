#ifndef SPITFIRE_BUFFER_REPLACER_H_
#define SPITFIRE_BUFFER_REPLACER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>

#include "common/constants.h"

namespace spitfire {

// Which replacement policy a BufferPool runs. Selectable per tier via
// BufferPoolConfig / BufferManagerOptions.
enum class ReplacerKind : uint8_t {
  kClock = 0,  // plain CLOCK (NB-GCLOCK ref bits) — PR 1 behavior
  kTwoQ = 1,   // scan-resistant 2Q/cooling hybrid (probation FIFO +
               // protected CLOCK + cooling grace stage)
};

const char* ReplacerKindName(ReplacerKind kind);

// Non-owning view of a `bool(frame_id_t)` callable. Eviction callbacks are
// stack lambdas that capture the calling context; a function_ref avoids the
// std::function allocation on every PickVictim call while still letting the
// policy live behind a virtual interface.
class TryEvictRef {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, TryEvictRef>>>
  TryEvictRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, frame_id_t frame) -> bool {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(frame);
        }) {}

  bool operator()(frame_id_t f) const { return call_(obj_, f); }

 private:
  void* obj_;
  bool (*call_)(void*, frame_id_t);
};

// Abstract page-replacement policy over a pool's frames. Implementations
// must be safe under full concurrency: RecordAccess/RecordInstall run on
// the latch-free hit/install paths from many threads, PickVictim runs from
// foreground evictors and the background writer simultaneously.
//
// Protocol:
//  - RecordInstall(f): a page was installed into frame f (first touch).
//    Called while the caller still owns the frame, before other threads can
//    hit it.
//  - RecordAccess(f): a pinned hit on frame f. The hot path samples these
//    (BufferManagerOptions::replacer_sample_rate), so policies see roughly
//    one call per `rate` raw hits.
//  - PickVictim(try_evict, max_rounds): find a frame the policy is willing
//    to give up and offer it to try_evict, which performs the actual
//    latched eviction and may refuse (pinned / racing). Returns the evicted
//    frame or kInvalidFrameId after a bounded search (max_rounds scales the
//    step budget; the background writer passes 1 for a cheap probe).
class Replacer {
 public:
  virtual ~Replacer() = default;

  virtual void RecordAccess(frame_id_t f) = 0;
  virtual void RecordInstall(frame_id_t f) = 0;
  virtual frame_id_t PickVictim(TryEvictRef try_evict, int max_rounds) = 0;

  frame_id_t PickVictim(TryEvictRef try_evict) {
    return PickVictim(try_evict, /*max_rounds=*/3);
  }

  virtual size_t num_frames() const = 0;
  // Frames whose reference bit is currently set (stats/tests only).
  virtual size_t ReferencedCount() const = 0;
  virtual ReplacerKind kind() const = 0;
  // One-line occupancy/counter summary for bench output and debugging.
  virtual std::string DebugString() const = 0;

  static std::unique_ptr<Replacer> Create(ReplacerKind kind,
                                          size_t num_frames);
};

}  // namespace spitfire

#endif  // SPITFIRE_BUFFER_REPLACER_H_
