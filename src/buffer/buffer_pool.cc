#include "buffer/buffer_pool.h"

#include <cstring>

namespace spitfire {

uint64_t BufferPool::RequiredCapacity(size_t num_frames,
                                      bool persistent_frame_table) {
  uint64_t table = 0;
  if (persistent_frame_table) {
    table = (num_frames * sizeof(page_id_t) + kPageSize - 1) / kPageSize *
            kPageSize;
  }
  return table + static_cast<uint64_t>(num_frames) * kPageSize;
}

BufferPool::BufferPool(Tier tier, Device* device, size_t num_frames,
                       bool persistent_frame_table)
    : BufferPool(BufferPoolConfig{tier, device, num_frames,
                                  persistent_frame_table,
                                  ReplacerKind::kClock}) {}

BufferPool::BufferPool(const BufferPoolConfig& config)
    : tier_(config.tier),
      device_(config.device),
      num_frames_(config.num_frames),
      total_frames_(config.total_frames ? config.total_frames
                                        : config.num_frames),
      frame_base_(config.frame_base),
      persistent_frame_table_(config.persistent_frame_table),
      free_list_(config.num_frames ? config.num_frames : 1),
      replacer_(Replacer::Create(config.replacer, config.num_frames)),
      owners_(config.num_frames ? config.num_frames : 1),
      in_free_list_(config.num_frames ? config.num_frames : 1) {
  if (replacer_->kind() == ReplacerKind::kClock) {
    clock_ = static_cast<ClockReplacer*>(replacer_.get());
  }
  const bool persistent_frame_table = persistent_frame_table_;
  SPITFIRE_CHECK(frame_base_ + num_frames_ <= total_frames_);
  SPITFIRE_CHECK(device_ != nullptr);
  // The device must hold the whole shared frame region, not just this
  // pool's slice: layout is computed from total_frames_.
  SPITFIRE_CHECK(device_->capacity() >=
                 RequiredCapacity(total_frames_, persistent_frame_table));
  if (persistent_frame_table_) {
    frames_base_ = (total_frames_ * sizeof(page_id_t) + kPageSize - 1) /
                   kPageSize * kPageSize;
  }
  for (size_t f = 0; f < num_frames_; ++f) {
    owners_[f].store(nullptr, std::memory_order_relaxed);
    in_free_list_[f].store(true, std::memory_order_relaxed);
    SPITFIRE_CHECK(free_list_.TryPush(static_cast<frame_id_t>(f)));
  }
  free_count_.store(num_frames_, std::memory_order_relaxed);
}

void BufferPool::SetOwner(frame_id_t f, SharedPageDescriptor* desc,
                          page_id_t pid) {
  SPITFIRE_DCHECK(f < num_frames_);
  owners_[f].store(desc, std::memory_order_release);
  if (persistent_frame_table_) {
    std::byte* entry = device_->DirectPointer(FrameTableEntryOffset(f));
    SPITFIRE_CHECK(entry != nullptr);
    // Encode pid+1 so that a zero-initialized (fresh) device reads as
    // "free" for every frame.
    const page_id_t encoded = pid == kInvalidPageId ? 0 : pid + 1;
    std::memcpy(entry, &encoded, sizeof(encoded));
    // Frame table entries are tiny; persist models clwb+sfence.
    (void)device_->Persist(FrameTableEntryOffset(f), sizeof(encoded));
  }
}

page_id_t BufferPool::PersistedOwner(frame_id_t f) const {
  if (!persistent_frame_table_) return kInvalidPageId;
  const std::byte* entry =
      const_cast<Device*>(device_)->DirectPointer(FrameTableEntryOffset(f));
  if (entry == nullptr) return kInvalidPageId;
  page_id_t encoded;
  std::memcpy(&encoded, entry, sizeof(encoded));
  return encoded == 0 ? kInvalidPageId : encoded - 1;
}

}  // namespace spitfire
