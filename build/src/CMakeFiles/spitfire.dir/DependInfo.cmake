
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adaptive/annealing_tuner.cc" "src/CMakeFiles/spitfire.dir/adaptive/annealing_tuner.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/adaptive/annealing_tuner.cc.o.d"
  "/root/repo/src/adaptive/grid_search.cc" "src/CMakeFiles/spitfire.dir/adaptive/grid_search.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/adaptive/grid_search.cc.o.d"
  "/root/repo/src/buffer/buffer_manager.cc" "src/CMakeFiles/spitfire.dir/buffer/buffer_manager.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/buffer/buffer_manager.cc.o.d"
  "/root/repo/src/buffer/buffer_pool.cc" "src/CMakeFiles/spitfire.dir/buffer/buffer_pool.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/buffer/buffer_pool.cc.o.d"
  "/root/repo/src/buffer/clock_replacer.cc" "src/CMakeFiles/spitfire.dir/buffer/clock_replacer.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/buffer/clock_replacer.cc.o.d"
  "/root/repo/src/buffer/migration_policy.cc" "src/CMakeFiles/spitfire.dir/buffer/migration_policy.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/buffer/migration_policy.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/spitfire.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/spitfire.dir/common/random.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/spitfire.dir/common/status.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/common/status.cc.o.d"
  "/root/repo/src/common/timer.cc" "src/CMakeFiles/spitfire.dir/common/timer.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/common/timer.cc.o.d"
  "/root/repo/src/container/admission_queue.cc" "src/CMakeFiles/spitfire.dir/container/admission_queue.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/container/admission_queue.cc.o.d"
  "/root/repo/src/container/concurrent_bitmap.cc" "src/CMakeFiles/spitfire.dir/container/concurrent_bitmap.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/container/concurrent_bitmap.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/spitfire.dir/db/database.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/db/database.cc.o.d"
  "/root/repo/src/db/table.cc" "src/CMakeFiles/spitfire.dir/db/table.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/db/table.cc.o.d"
  "/root/repo/src/hymem/cacheline_page.cc" "src/CMakeFiles/spitfire.dir/hymem/cacheline_page.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/hymem/cacheline_page.cc.o.d"
  "/root/repo/src/hymem/mini_page.cc" "src/CMakeFiles/spitfire.dir/hymem/mini_page.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/hymem/mini_page.cc.o.d"
  "/root/repo/src/index/btree.cc" "src/CMakeFiles/spitfire.dir/index/btree.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/index/btree.cc.o.d"
  "/root/repo/src/storage/dram_device.cc" "src/CMakeFiles/spitfire.dir/storage/dram_device.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/storage/dram_device.cc.o.d"
  "/root/repo/src/storage/memory_mode_device.cc" "src/CMakeFiles/spitfire.dir/storage/memory_mode_device.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/storage/memory_mode_device.cc.o.d"
  "/root/repo/src/storage/nvm_device.cc" "src/CMakeFiles/spitfire.dir/storage/nvm_device.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/storage/nvm_device.cc.o.d"
  "/root/repo/src/storage/perf_model.cc" "src/CMakeFiles/spitfire.dir/storage/perf_model.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/storage/perf_model.cc.o.d"
  "/root/repo/src/storage/ssd_device.cc" "src/CMakeFiles/spitfire.dir/storage/ssd_device.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/storage/ssd_device.cc.o.d"
  "/root/repo/src/txn/mvto_manager.cc" "src/CMakeFiles/spitfire.dir/txn/mvto_manager.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/txn/mvto_manager.cc.o.d"
  "/root/repo/src/txn/transaction.cc" "src/CMakeFiles/spitfire.dir/txn/transaction.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/txn/transaction.cc.o.d"
  "/root/repo/src/wal/checkpointer.cc" "src/CMakeFiles/spitfire.dir/wal/checkpointer.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/wal/checkpointer.cc.o.d"
  "/root/repo/src/wal/log_manager.cc" "src/CMakeFiles/spitfire.dir/wal/log_manager.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/wal/log_manager.cc.o.d"
  "/root/repo/src/wal/log_record.cc" "src/CMakeFiles/spitfire.dir/wal/log_record.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/wal/log_record.cc.o.d"
  "/root/repo/src/wal/nvm_log_buffer.cc" "src/CMakeFiles/spitfire.dir/wal/nvm_log_buffer.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/wal/nvm_log_buffer.cc.o.d"
  "/root/repo/src/workload/driver.cc" "src/CMakeFiles/spitfire.dir/workload/driver.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/workload/driver.cc.o.d"
  "/root/repo/src/workload/tpcc.cc" "src/CMakeFiles/spitfire.dir/workload/tpcc.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/workload/tpcc.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/CMakeFiles/spitfire.dir/workload/ycsb.cc.o" "gcc" "src/CMakeFiles/spitfire.dir/workload/ycsb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
