# Empty compiler generated dependencies file for spitfire.
# This may be replaced when dependencies are built.
