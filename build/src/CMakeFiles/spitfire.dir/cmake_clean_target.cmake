file(REMOVE_RECURSE
  "libspitfire.a"
)
