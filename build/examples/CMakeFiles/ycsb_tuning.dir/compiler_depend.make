# Empty compiler generated dependencies file for ycsb_tuning.
# This may be replaced when dependencies are built.
