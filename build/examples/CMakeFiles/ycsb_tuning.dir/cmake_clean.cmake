file(REMOVE_RECURSE
  "CMakeFiles/ycsb_tuning.dir/ycsb_tuning.cpp.o"
  "CMakeFiles/ycsb_tuning.dir/ycsb_tuning.cpp.o.d"
  "ycsb_tuning"
  "ycsb_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
