# Empty compiler generated dependencies file for fig7_bypass_nvm.
# This may be replaced when dependencies are built.
