file(REMOVE_RECURSE
  "CMakeFiles/fig7_bypass_nvm.dir/fig7_bypass_nvm.cc.o"
  "CMakeFiles/fig7_bypass_nvm.dir/fig7_bypass_nvm.cc.o.d"
  "fig7_bypass_nvm"
  "fig7_bypass_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_bypass_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
