# Empty compiler generated dependencies file for fig6_bypass_dram.
# This may be replaced when dependencies are built.
