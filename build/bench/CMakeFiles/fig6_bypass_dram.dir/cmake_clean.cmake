file(REMOVE_RECURSE
  "CMakeFiles/fig6_bypass_dram.dir/fig6_bypass_dram.cc.o"
  "CMakeFiles/fig6_bypass_dram.dir/fig6_bypass_dram.cc.o.d"
  "fig6_bypass_dram"
  "fig6_bypass_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_bypass_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
