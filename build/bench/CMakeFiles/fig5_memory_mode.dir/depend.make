# Empty dependencies file for fig5_memory_mode.
# This may be replaced when dependencies are built.
