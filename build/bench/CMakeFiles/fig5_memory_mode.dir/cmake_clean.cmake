file(REMOVE_RECURSE
  "CMakeFiles/fig5_memory_mode.dir/fig5_memory_mode.cc.o"
  "CMakeFiles/fig5_memory_mode.dir/fig5_memory_mode.cc.o.d"
  "fig5_memory_mode"
  "fig5_memory_mode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_memory_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
