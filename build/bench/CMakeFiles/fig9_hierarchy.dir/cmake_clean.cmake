file(REMOVE_RECURSE
  "CMakeFiles/fig9_hierarchy.dir/fig9_hierarchy.cc.o"
  "CMakeFiles/fig9_hierarchy.dir/fig9_hierarchy.cc.o.d"
  "fig9_hierarchy"
  "fig9_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
