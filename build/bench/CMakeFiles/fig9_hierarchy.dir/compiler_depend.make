# Empty compiler generated dependencies file for fig9_hierarchy.
# This may be replaced when dependencies are built.
