file(REMOVE_RECURSE
  "CMakeFiles/fig8_nvm_writes.dir/fig8_nvm_writes.cc.o"
  "CMakeFiles/fig8_nvm_writes.dir/fig8_nvm_writes.cc.o.d"
  "fig8_nvm_writes"
  "fig8_nvm_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_nvm_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
