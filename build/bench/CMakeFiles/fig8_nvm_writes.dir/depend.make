# Empty dependencies file for fig8_nvm_writes.
# This may be replaced when dependencies are built.
