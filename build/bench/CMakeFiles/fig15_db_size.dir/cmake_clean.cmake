file(REMOVE_RECURSE
  "CMakeFiles/fig15_db_size.dir/fig15_db_size.cc.o"
  "CMakeFiles/fig15_db_size.dir/fig15_db_size.cc.o.d"
  "fig15_db_size"
  "fig15_db_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_db_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
