# Empty compiler generated dependencies file for fig15_db_size.
# This may be replaced when dependencies are built.
