file(REMOVE_RECURSE
  "CMakeFiles/fig13_lifetime.dir/fig13_lifetime.cc.o"
  "CMakeFiles/fig13_lifetime.dir/fig13_lifetime.cc.o.d"
  "fig13_lifetime"
  "fig13_lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
