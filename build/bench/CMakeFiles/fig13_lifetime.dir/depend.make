# Empty dependencies file for fig13_lifetime.
# This may be replaced when dependencies are built.
