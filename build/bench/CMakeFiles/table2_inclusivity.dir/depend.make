# Empty dependencies file for table2_inclusivity.
# This may be replaced when dependencies are built.
