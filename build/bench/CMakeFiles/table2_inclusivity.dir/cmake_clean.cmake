file(REMOVE_RECURSE
  "CMakeFiles/table2_inclusivity.dir/table2_inclusivity.cc.o"
  "CMakeFiles/table2_inclusivity.dir/table2_inclusivity.cc.o.d"
  "table2_inclusivity"
  "table2_inclusivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_inclusivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
