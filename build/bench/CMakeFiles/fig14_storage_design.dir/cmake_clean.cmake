file(REMOVE_RECURSE
  "CMakeFiles/fig14_storage_design.dir/fig14_storage_design.cc.o"
  "CMakeFiles/fig14_storage_design.dir/fig14_storage_design.cc.o.d"
  "fig14_storage_design"
  "fig14_storage_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_storage_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
