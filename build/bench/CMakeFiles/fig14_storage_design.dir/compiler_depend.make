# Empty compiler generated dependencies file for fig14_storage_design.
# This may be replaced when dependencies are built.
