# Empty compiler generated dependencies file for sec65_admission_queue.
# This may be replaced when dependencies are built.
