file(REMOVE_RECURSE
  "CMakeFiles/sec65_admission_queue.dir/sec65_admission_queue.cc.o"
  "CMakeFiles/sec65_admission_queue.dir/sec65_admission_queue.cc.o.d"
  "sec65_admission_queue"
  "sec65_admission_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec65_admission_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
