# Empty compiler generated dependencies file for fig11_granularity.
# This may be replaced when dependencies are built.
