file(REMOVE_RECURSE
  "CMakeFiles/hymem_test.dir/hymem_test.cc.o"
  "CMakeFiles/hymem_test.dir/hymem_test.cc.o.d"
  "hymem_test"
  "hymem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hymem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
