# Empty compiler generated dependencies file for hymem_test.
# This may be replaced when dependencies are built.
