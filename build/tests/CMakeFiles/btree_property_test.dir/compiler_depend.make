# Empty compiler generated dependencies file for btree_property_test.
# This may be replaced when dependencies are built.
