# Empty dependencies file for buffer_internals_test.
# This may be replaced when dependencies are built.
