file(REMOVE_RECURSE
  "CMakeFiles/buffer_internals_test.dir/buffer_internals_test.cc.o"
  "CMakeFiles/buffer_internals_test.dir/buffer_internals_test.cc.o.d"
  "buffer_internals_test"
  "buffer_internals_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
