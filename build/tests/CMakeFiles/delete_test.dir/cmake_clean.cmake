file(REMOVE_RECURSE
  "CMakeFiles/delete_test.dir/delete_test.cc.o"
  "CMakeFiles/delete_test.dir/delete_test.cc.o.d"
  "delete_test"
  "delete_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
