// Table-level MVTO tests: version chains, visibility, conflict rules,
// garbage collection, and slot recycling — exercised directly against the
// versioned heap (db/table.h).
#include <gtest/gtest.h>

#include <thread>

#include "db/database.h"
#include "storage/perf_model.h"

namespace spitfire {
namespace {

struct Item {
  uint64_t value;
  uint64_t pad[3];
};

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    DatabaseOptions opts;
    opts.dram_frames = 64;
    opts.nvm_frames = 64;
    opts.policy = MigrationPolicy::Lazy();
    opts.enable_wal = false;
    db_ = Database::Create(opts).MoveValue();
    table_ = db_->CreateTable(1, sizeof(Item)).value();
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  void InsertCommitted(uint64_t key, uint64_t value) {
    auto txn = db_->Begin();
    Item it{value, {}};
    ASSERT_TRUE(table_->Insert(txn.get(), key, &it).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  void UpdateCommitted(uint64_t key, uint64_t value) {
    auto txn = db_->Begin();
    Item it{value, {}};
    ASSERT_TRUE(table_->Update(txn.get(), key, &it).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  uint64_t ReadCommitted(uint64_t key) {
    auto txn = db_->Begin();
    Item it{};
    EXPECT_TRUE(table_->Read(txn.get(), key, &it).ok());
    EXPECT_TRUE(db_->Commit(txn.get()).ok());
    return it.value;
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(TableTest, InsertThenReadLatest) {
  InsertCommitted(1, 100);
  EXPECT_EQ(ReadCommitted(1), 100u);
  UpdateCommitted(1, 200);
  EXPECT_EQ(ReadCommitted(1), 200u);
}

TEST_F(TableTest, ReadMissingKeyIsNotFound) {
  auto txn = db_->Begin();
  Item it{};
  EXPECT_TRUE(table_->Read(txn.get(), 777, &it).IsNotFound());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(TableTest, DuplicateInsertRejected) {
  InsertCommitted(5, 1);
  auto txn = db_->Begin();
  Item it{2, {}};
  EXPECT_EQ(table_->Insert(txn.get(), 5, &it).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
}

TEST_F(TableTest, UpdateOfMissingKeyIsNotFound) {
  auto txn = db_->Begin();
  Item it{1, {}};
  EXPECT_TRUE(table_->Update(txn.get(), 42, &it).IsNotFound());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
}

TEST_F(TableTest, VersionChainServesHistoricalReads) {
  InsertCommitted(1, 10);
  // Three snapshots interleaved with updates.
  auto t1 = db_->Begin();
  UpdateCommitted(1, 20);
  auto t2 = db_->Begin();
  UpdateCommitted(1, 30);
  auto t3 = db_->Begin();

  Item it{};
  ASSERT_TRUE(table_->Read(t1.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 10u);
  ASSERT_TRUE(table_->Read(t2.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 20u);
  ASSERT_TRUE(table_->Read(t3.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 30u);
  ASSERT_TRUE(db_->Commit(t1.get()).ok());
  ASSERT_TRUE(db_->Commit(t2.get()).ok());
  ASSERT_TRUE(db_->Commit(t3.get()).ok());
}

TEST_F(TableTest, WriteWriteConflictSecondWriterAborts) {
  InsertCommitted(1, 10);
  auto a = db_->Begin();
  auto b = db_->Begin();
  Item it{11, {}};
  ASSERT_TRUE(table_->Update(a.get(), 1, &it).ok());
  it.value = 12;
  EXPECT_TRUE(table_->Update(b.get(), 1, &it).IsAborted());
  ASSERT_TRUE(db_->Abort(b.get()).ok());
  ASSERT_TRUE(db_->Commit(a.get()).ok());
  EXPECT_EQ(ReadCommitted(1), 11u);
}

TEST_F(TableTest, OlderWriterAbortsAfterYoungerRead) {
  InsertCommitted(1, 10);
  auto old_writer = db_->Begin();
  auto young = db_->Begin();
  Item it{};
  ASSERT_TRUE(table_->Read(young.get(), 1, &it).ok());
  ASSERT_TRUE(db_->Commit(young.get()).ok());
  it.value = 99;
  EXPECT_TRUE(table_->Update(old_writer.get(), 1, &it).IsAborted());
  ASSERT_TRUE(db_->Abort(old_writer.get()).ok());
}

TEST_F(TableTest, OlderWriterSucceedsWhenNoYoungerRead) {
  InsertCommitted(1, 10);
  auto w = db_->Begin();
  Item it{55, {}};
  EXPECT_TRUE(table_->Update(w.get(), 1, &it).ok());
  ASSERT_TRUE(db_->Commit(w.get()).ok());
  EXPECT_EQ(ReadCommitted(1), 55u);
}

TEST_F(TableTest, SelfUpdateTwiceInOneTxn) {
  InsertCommitted(1, 10);
  auto txn = db_->Begin();
  Item it{20, {}};
  ASSERT_TRUE(table_->Update(txn.get(), 1, &it).ok());
  it.value = 30;
  ASSERT_TRUE(table_->Update(txn.get(), 1, &it).ok());
  ASSERT_TRUE(table_->Read(txn.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 30u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  EXPECT_EQ(ReadCommitted(1), 30u);
}

TEST_F(TableTest, InsertThenUpdateInSameTxn) {
  auto txn = db_->Begin();
  Item it{1, {}};
  ASSERT_TRUE(table_->Insert(txn.get(), 9, &it).ok());
  // Updating own uncommitted insert: the head is ours.
  it.value = 2;
  ASSERT_TRUE(table_->Update(txn.get(), 9, &it).ok());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
  EXPECT_EQ(ReadCommitted(9), 2u);
}

TEST_F(TableTest, AbortedUpdateRestoresOldHeadForWriters) {
  InsertCommitted(1, 10);
  {
    auto txn = db_->Begin();
    Item it{99, {}};
    ASSERT_TRUE(table_->Update(txn.get(), 1, &it).ok());
    ASSERT_TRUE(db_->Abort(txn.get()).ok());
  }
  // The key remains updatable afterwards (the write lock was released).
  UpdateCommitted(1, 11);
  EXPECT_EQ(ReadCommitted(1), 11u);
}

TEST_F(TableTest, GcReclaimsSlotsAcrossManyUpdates) {
  InsertCommitted(1, 0);
  for (uint64_t i = 1; i <= 5000; ++i) UpdateCommitted(1, i);
  EXPECT_EQ(ReadCommitted(1), 5000u);
  // 5000 versions of a 32 B tuple without GC would need ~25 pages; GC
  // keeps the heap at a handful.
  EXPECT_LT(table_->allocated_pages(), 5u);
}

TEST_F(TableTest, GcRespectsActiveSnapshots) {
  InsertCommitted(1, 10);
  auto pinned = db_->Begin();  // holds the watermark
  for (uint64_t i = 0; i < 50; ++i) UpdateCommitted(1, 100 + i);
  // The old version must still be readable by the pinned snapshot.
  Item it{};
  ASSERT_TRUE(table_->Read(pinned.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 10u);
  ASSERT_TRUE(db_->Commit(pinned.get()).ok());
}

TEST_F(TableTest, ScanRangeAndVisibility) {
  for (uint64_t k = 10; k < 20; ++k) InsertCommitted(k, k * 2);
  auto txn = db_->Begin();
  uint64_t sum = 0;
  ASSERT_TRUE(table_->Scan(txn.get(), 12, 15,
                           [&](uint64_t, const void* t) {
                             sum += static_cast<const Item*>(t)->value;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(sum, (12 + 13 + 14 + 15) * 2u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(TableTest, ScanStopsWhenCallbackReturnsFalse) {
  for (uint64_t k = 0; k < 10; ++k) InsertCommitted(k, k);
  auto txn = db_->Begin();
  int seen = 0;
  ASSERT_TRUE(table_->Scan(txn.get(), 0, 9,
                           [&](uint64_t, const void*) {
                             return ++seen < 3;
                           })
                  .ok());
  EXPECT_EQ(seen, 3);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(TableTest, ConcurrentUpdatersSingleKeySerialize) {
  InsertCommitted(1, 0);
  std::atomic<int> commits{0};
  std::vector<std::thread> ths;
  for (int t = 0; t < 4; ++t) {
    ths.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        auto txn = db_->Begin();
        Item it{};
        if (!table_->Read(txn.get(), 1, &it).ok()) {
          (void)db_->Abort(txn.get());
          continue;
        }
        it.value += 1;
        if (!table_->Update(txn.get(), 1, &it).ok()) {
          (void)db_->Abort(txn.get());
          continue;
        }
        if (db_->Commit(txn.get()).ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& th : ths) th.join();
  // Counter must equal the number of committed increments (no lost
  // updates) — the serializability core of MVTO.
  EXPECT_EQ(ReadCommitted(1), static_cast<uint64_t>(commits.load()));
  EXPECT_GT(commits.load(), 0);
}

TEST_F(TableTest, LargeTupleSpanningManyCacheLines) {
  DatabaseOptions opts;
  opts.dram_frames = 32;
  opts.nvm_frames = 32;
  opts.enable_wal = false;
  auto db = Database::Create(opts).MoveValue();
  // 4 KB tuples: 3 per page.
  Table* t = db->CreateTable(2, 4096).value();
  std::vector<std::byte> tuple(4096);
  for (uint64_t k = 0; k < 50; ++k) {
    auto txn = db->Begin();
    std::fill(tuple.begin(), tuple.end(), std::byte{static_cast<uint8_t>(k)});
    ASSERT_TRUE(t->Insert(txn.get(), k, tuple.data()).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  auto txn = db->Begin();
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(t->Read(txn.get(), k, tuple.data()).ok());
    EXPECT_EQ(tuple[4095], std::byte{static_cast<uint8_t>(k)});
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

}  // namespace
}  // namespace spitfire
