// Unit tests for the buffer manager's internal building blocks: page
// layout, buffer pool + persistent frame table, CLOCK replacement, and the
// migration-policy decision distribution.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "buffer/buffer_pool.h"
#include "buffer/clock_replacer.h"
#include "buffer/migration_policy.h"
#include "buffer/page.h"
#include "storage/dram_device.h"
#include "storage/nvm_device.h"
#include "storage/perf_model.h"

namespace spitfire {
namespace {

class BufferInternalsTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }
};

TEST_F(BufferInternalsTest, PageHeaderLayout) {
  EXPECT_EQ(sizeof(PageHeader), kCacheLineSize);
  EXPECT_EQ(kPagePayloadSize, kPageSize - 64);
  std::vector<std::byte> frame(kPageSize);
  PageView view(frame.data());
  view.Format(123, 0xAB);
  EXPECT_TRUE(view.header()->IsValid());
  EXPECT_EQ(view.header()->page_id, 123u);
  EXPECT_EQ(view.header()->page_type, 0xABu);
  EXPECT_EQ(view.payload(), frame.data() + 64);
}

TEST_F(BufferInternalsTest, PageHeaderRejectsGarbage) {
  std::vector<std::byte> frame(kPageSize, std::byte{0});
  PageView view(frame.data());
  EXPECT_FALSE(view.header()->IsValid());
}

TEST_F(BufferInternalsTest, BufferPoolFrameGeometry) {
  DramDevice dev(BufferPool::RequiredCapacity(16, false));
  BufferPool pool(Tier::kDram, &dev, 16, /*persistent_frame_table=*/false);
  EXPECT_EQ(pool.num_frames(), 16u);
  // Frames are contiguous, page-sized, and inside the device.
  EXPECT_EQ(pool.FrameOffset(1) - pool.FrameOffset(0), kPageSize);
  EXPECT_NE(pool.FramePtr(15), nullptr);
}

TEST_F(BufferInternalsTest, BufferPoolAllocateFreeCycle) {
  DramDevice dev(BufferPool::RequiredCapacity(4, false));
  BufferPool pool(Tier::kDram, &dev, 4, false);
  std::set<frame_id_t> got;
  frame_id_t f;
  while (pool.TryAllocateFrame(&f)) got.insert(f);
  EXPECT_EQ(got.size(), 4u);
  EXPECT_FALSE(pool.TryAllocateFrame(&f));
  for (frame_id_t fr : got) pool.FreeFrame(fr);
  got.clear();
  while (pool.TryAllocateFrame(&f)) got.insert(f);
  EXPECT_EQ(got.size(), 4u);
}

TEST_F(BufferInternalsTest, NvmPoolPersistentFrameTable) {
  NvmDevice dev(BufferPool::RequiredCapacity(8, true));
  SharedPageDescriptor desc(42);
  {
    BufferPool pool(Tier::kNvm, &dev, 8, /*persistent_frame_table=*/true);
    frame_id_t f;
    ASSERT_TRUE(pool.TryAllocateFrame(&f));
    pool.SetOwner(f, &desc, 42);
    EXPECT_EQ(pool.PersistedOwner(f), 42u);
    // A new pool over the SAME device sees the persisted entry.
    BufferPool pool2(Tier::kNvm, &dev, 8, true);
    EXPECT_EQ(pool2.PersistedOwner(f), 42u);
  }
}

TEST_F(BufferInternalsTest, FrameTableDistinguishesPageZeroFromFree) {
  NvmDevice dev(BufferPool::RequiredCapacity(4, true));
  BufferPool pool(Tier::kNvm, &dev, 4, true);
  frame_id_t f;
  ASSERT_TRUE(pool.TryAllocateFrame(&f));
  // Fresh entries read as free, not as page 0.
  EXPECT_EQ(pool.PersistedOwner(f), kInvalidPageId);
  SharedPageDescriptor desc(0);
  pool.SetOwner(f, &desc, 0);
  EXPECT_EQ(pool.PersistedOwner(f), 0u);
  pool.SetOwner(f, nullptr, kInvalidPageId);
  EXPECT_EQ(pool.PersistedOwner(f), kInvalidPageId);
}

TEST_F(BufferInternalsTest, ClockGivesSecondChance) {
  ClockReplacer clock(4);
  clock.RecordAccess(0);
  clock.RecordAccess(1);
  clock.RecordAccess(2);
  clock.RecordAccess(3);
  // All referenced: the first sweep clears bits, the second finds victims.
  std::vector<frame_id_t> victims;
  const frame_id_t v = clock.PickVictim([&](frame_id_t f) {
    victims.push_back(f);
    return true;
  });
  EXPECT_NE(v, kInvalidFrameId);
  EXPECT_EQ(victims.size(), 1u);
}

TEST_F(BufferInternalsTest, ClockSkipsRefusedVictims) {
  ClockReplacer clock(4);
  int offered = 0;
  const frame_id_t v = clock.PickVictim([&](frame_id_t f) {
    ++offered;
    return f == 2;  // refuse everything except frame 2
  });
  EXPECT_EQ(v, 2u);
  EXPECT_GE(offered, 3);
}

TEST_F(BufferInternalsTest, ClockGivesUpWhenNothingEvictable) {
  ClockReplacer clock(4);
  const frame_id_t v =
      clock.PickVictim([](frame_id_t) { return false; }, /*max_rounds=*/2);
  EXPECT_EQ(v, kInvalidFrameId);
}

TEST_F(BufferInternalsTest, ClockAccessProtectsHotFrames) {
  ClockReplacer clock(8);
  // Frame 3 is hot: re-referenced after every sweep step.
  std::vector<int> evictions(8, 0);
  for (int round = 0; round < 64; ++round) {
    clock.RecordAccess(3);
    clock.PickVictim([&](frame_id_t f) {
      if (f == 3) return false;  // pinned, say
      evictions[f]++;
      return true;
    });
  }
  EXPECT_EQ(evictions[3], 0);
  int total = 0;
  for (int e : evictions) total += e;
  EXPECT_EQ(total, 64);
}

TEST_F(BufferInternalsTest, PolicyDecisionFrequencies) {
  MigrationPolicy p{0.25, 0.5, 0.0, 1.0};
  int dr = 0, dw = 0, nr = 0, nw = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    dr += p.MigrateNvmToDramOnRead();
    dw += p.UseDramOnWrite();
    nr += p.InstallSsdToNvmOnRead();
    nw += p.AdmitToNvmOnDramEviction();
  }
  EXPECT_NEAR(static_cast<double>(dr) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(dw) / n, 0.5, 0.02);
  EXPECT_EQ(nr, 0);
  EXPECT_EQ(nw, n);
}

TEST_F(BufferInternalsTest, PolicyPresetsMatchTable3) {
  const MigrationPolicy hymem = MigrationPolicy::Hymem();
  EXPECT_DOUBLE_EQ(hymem.dr, 1.0);
  EXPECT_DOUBLE_EQ(hymem.dw, 1.0);
  EXPECT_DOUBLE_EQ(hymem.nr, 0.0);
  const MigrationPolicy lazy = MigrationPolicy::Lazy();
  EXPECT_DOUBLE_EQ(lazy.dr, 0.01);
  EXPECT_DOUBLE_EQ(lazy.dw, 0.01);
  EXPECT_DOUBLE_EQ(lazy.nr, 0.2);
  EXPECT_DOUBLE_EQ(lazy.nw, 1.0);
  EXPECT_NE(MigrationPolicy::Eager().ToString().find("Dr=1"),
            std::string::npos);
}

TEST_F(BufferInternalsTest, ConcurrentPoolAllocFree) {
  DramDevice dev(BufferPool::RequiredCapacity(64, false));
  BufferPool pool(Tier::kDram, &dev, 64, false);
  std::atomic<int> failures{0};
  std::vector<std::thread> ths;
  for (int t = 0; t < 4; ++t) {
    ths.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        frame_id_t f;
        if (pool.TryAllocateFrame(&f)) {
          pool.FreeFrame(f);
        }
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(failures.load(), 0);
  // All 64 frames must be recoverable afterwards.
  int count = 0;
  frame_id_t f;
  while (pool.TryAllocateFrame(&f)) ++count;
  EXPECT_EQ(count, 64);
}

}  // namespace
}  // namespace spitfire
