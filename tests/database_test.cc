#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "db/database.h"
#include "storage/perf_model.h"

namespace spitfire {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  static DatabaseOptions SmallOptions() {
    DatabaseOptions opts;
    opts.dram_frames = 64;
    opts.nvm_frames = 128;
    opts.policy = MigrationPolicy::Lazy();
    opts.ssd_capacity = 256ull * 1024 * 1024;
    opts.enable_wal = true;
    return opts;
  }

  struct Row {
    uint64_t a;
    uint64_t b;
    char text[48];
  };

  static Row MakeRow(uint64_t k) {
    Row r{};
    r.a = k;
    r.b = k * k;
    std::snprintf(r.text, sizeof(r.text), "row-%llu",
                  static_cast<unsigned long long>(k));
    return r;
  }
};

TEST_F(DatabaseTest, InsertReadCommit) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  auto t_r = db->CreateTable(1, sizeof(Row));
  ASSERT_TRUE(t_r.ok());
  Table* t = t_r.value();

  auto txn = db->Begin();
  Row row = MakeRow(5);
  ASSERT_TRUE(t->Insert(txn.get(), 5, &row).ok());
  ASSERT_TRUE(db->Commit(txn.get()).ok());

  auto txn2 = db->Begin();
  Row out{};
  ASSERT_TRUE(t->Read(txn2.get(), 5, &out).ok());
  EXPECT_EQ(out.a, 5u);
  EXPECT_EQ(out.b, 25u);
  EXPECT_STREQ(out.text, "row-5");
  ASSERT_TRUE(db->Commit(txn2.get()).ok());
}

TEST_F(DatabaseTest, ReadOwnUncommittedWrites) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  auto txn = db->Begin();
  Row row = MakeRow(9);
  ASSERT_TRUE(t->Insert(txn.get(), 9, &row).ok());
  Row out{};
  ASSERT_TRUE(t->Read(txn.get(), 9, &out).ok());
  EXPECT_EQ(out.b, 81u);
  row.b = 100;
  ASSERT_TRUE(t->Update(txn.get(), 9, &row).ok());
  ASSERT_TRUE(t->Read(txn.get(), 9, &out).ok());
  EXPECT_EQ(out.b, 100u);
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(DatabaseTest, UncommittedInvisibleToOlderReader) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  // Reader begins first: the writer's eventual commit timestamp exceeds
  // the reader's, so the insert is safely invisible.
  auto reader = db->Begin();
  auto writer = db->Begin();
  Row row = MakeRow(3);
  ASSERT_TRUE(t->Insert(writer.get(), 3, &row).ok());

  Row out{};
  EXPECT_TRUE(t->Read(reader.get(), 3, &out).IsNotFound());
  ASSERT_TRUE(db->Commit(reader.get()).ok());
  ASSERT_TRUE(db->Commit(writer.get()).ok());
}

TEST_F(DatabaseTest, YoungerReaderAbortsOnInFlightOlderWrite) {
  // No-wait MVTO: a reader younger than an in-flight writer cannot safely
  // read around the uncommitted version — it aborts instead.
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  auto writer = db->Begin();
  Row row = MakeRow(3);
  ASSERT_TRUE(t->Insert(writer.get(), 3, &row).ok());

  auto reader = db->Begin();  // younger than writer
  Row out{};
  EXPECT_TRUE(t->Read(reader.get(), 3, &out).IsAborted());
  ASSERT_TRUE(db->Abort(reader.get()).ok());
  ASSERT_TRUE(db->Commit(writer.get()).ok());
}

TEST_F(DatabaseTest, SnapshotReadsOldVersion) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  {
    auto txn = db->Begin();
    Row row = MakeRow(1);
    ASSERT_TRUE(t->Insert(txn.get(), 1, &row).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  // Reader starts BEFORE the update commits: MVTO pins it to the old
  // version.
  auto old_reader = db->Begin();
  {
    auto upd = db->Begin();
    Row row = MakeRow(1);
    row.b = 777;
    ASSERT_TRUE(t->Update(upd.get(), 1, &row).ok());
    ASSERT_TRUE(db->Commit(upd.get()).ok());
  }
  Row out{};
  ASSERT_TRUE(t->Read(old_reader.get(), 1, &out).ok());
  EXPECT_EQ(out.b, 1u);  // original value
  ASSERT_TRUE(db->Commit(old_reader.get()).ok());

  auto new_reader = db->Begin();
  ASSERT_TRUE(t->Read(new_reader.get(), 1, &out).ok());
  EXPECT_EQ(out.b, 777u);
  ASSERT_TRUE(db->Commit(new_reader.get()).ok());
}

TEST_F(DatabaseTest, WriteWriteConflictAborts) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  {
    auto txn = db->Begin();
    Row row = MakeRow(1);
    ASSERT_TRUE(t->Insert(txn.get(), 1, &row).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  auto t1 = db->Begin();
  auto t2 = db->Begin();
  Row row = MakeRow(1);
  row.b = 10;
  ASSERT_TRUE(t->Update(t1.get(), 1, &row).ok());
  row.b = 20;
  EXPECT_TRUE(t->Update(t2.get(), 1, &row).IsAborted());
  ASSERT_TRUE(db->Abort(t2.get()).ok());
  ASSERT_TRUE(db->Commit(t1.get()).ok());

  auto check = db->Begin();
  Row out{};
  ASSERT_TRUE(t->Read(check.get(), 1, &out).ok());
  EXPECT_EQ(out.b, 10u);
  ASSERT_TRUE(db->Commit(check.get()).ok());
}

TEST_F(DatabaseTest, ReadTsBlocksOlderWriter) {
  // MVTO: if a younger transaction read the head version, an older
  // transaction must not overwrite it.
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  {
    auto txn = db->Begin();
    Row row = MakeRow(1);
    ASSERT_TRUE(t->Insert(txn.get(), 1, &row).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  auto old_writer = db->Begin();   // ts = T
  auto young_reader = db->Begin(); // ts = T+1
  Row out{};
  ASSERT_TRUE(t->Read(young_reader.get(), 1, &out).ok());
  ASSERT_TRUE(db->Commit(young_reader.get()).ok());
  Row row = MakeRow(1);
  EXPECT_TRUE(t->Update(old_writer.get(), 1, &row).IsAborted());
  ASSERT_TRUE(db->Abort(old_writer.get()).ok());
}

TEST_F(DatabaseTest, AbortRollsBackInsertAndUpdate) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  {
    auto txn = db->Begin();
    Row row = MakeRow(1);
    ASSERT_TRUE(t->Insert(txn.get(), 1, &row).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  {
    auto txn = db->Begin();
    Row row = MakeRow(2);
    ASSERT_TRUE(t->Insert(txn.get(), 2, &row).ok());
    row = MakeRow(1);
    row.b = 999;
    ASSERT_TRUE(t->Update(txn.get(), 1, &row).ok());
    ASSERT_TRUE(db->Abort(txn.get()).ok());
  }
  auto check = db->Begin();
  Row out{};
  EXPECT_TRUE(t->Read(check.get(), 2, &out).IsNotFound());
  ASSERT_TRUE(t->Read(check.get(), 1, &out).ok());
  EXPECT_EQ(out.b, 1u);
  ASSERT_TRUE(db->Commit(check.get()).ok());
  // The key is reusable after the rollback.
  auto retry = db->Begin();
  Row row = MakeRow(2);
  EXPECT_TRUE(t->Insert(retry.get(), 2, &row).ok());
  ASSERT_TRUE(db->Commit(retry.get()).ok());
}

TEST_F(DatabaseTest, ScanSeesOnlyCommitted) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  {
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 50; ++k) {
      Row row = MakeRow(k);
      ASSERT_TRUE(t->Insert(txn.get(), k, &row).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  // Reader begins before the pending insert, so the in-flight version is
  // safely invisible (no-wait MVTO only aborts younger readers).
  auto reader = db->Begin();
  auto pending = db->Begin();
  Row extra = MakeRow(100);
  ASSERT_TRUE(t->Insert(pending.get(), 100, &extra).ok());

  uint64_t count = 0;
  ASSERT_TRUE(t->Scan(reader.get(), 0, 1000,
                      [&](uint64_t, const void*) {
                        ++count;
                        return true;
                      })
                  .ok());
  EXPECT_EQ(count, 50u);
  ASSERT_TRUE(db->Commit(reader.get()).ok());
  ASSERT_TRUE(db->Commit(pending.get()).ok());
}

TEST_F(DatabaseTest, VersionChainsGetTruncated) {
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  {
    auto txn = db->Begin();
    Row row = MakeRow(1);
    ASSERT_TRUE(t->Insert(txn.get(), 1, &row).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  // Many updates of one key: without GC the heap would need one page per
  // ~15 versions; with GC it stays bounded.
  for (int i = 0; i < 2000; ++i) {
    auto txn = db->Begin();
    Row row = MakeRow(1);
    row.b = static_cast<uint64_t>(i);
    ASSERT_TRUE(t->Update(txn.get(), 1, &row).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  EXPECT_LT(t->allocated_pages(), 20u);
}

TEST_F(DatabaseTest, CrashRecoveryPreservesCommittedData) {
  DatabaseOptions opts = SmallOptions();
  DatabaseEnv env;
  {
    auto db = Database::Create(opts).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Row)).value();
    for (uint64_t k = 0; k < 200; ++k) {
      auto txn = db->Begin();
      Row row = MakeRow(k);
      ASSERT_TRUE(t->Insert(txn.get(), k, &row).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    // Update some keys.
    for (uint64_t k = 0; k < 200; k += 4) {
      auto txn = db->Begin();
      Row row = MakeRow(k);
      row.b = k + 1'000'000;
      ASSERT_TRUE(t->Update(txn.get(), k, &row).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    // Leave one transaction uncommitted at the crash.
    auto loser = db->Begin();
    Row row = MakeRow(7);
    row.b = 666;
    ASSERT_TRUE(t->Update(loser.get(), 7, &row).ok());
    env = Database::Crash(std::move(db));
  }
  {
    auto db_r = Database::Recover(opts, std::move(env));
    ASSERT_TRUE(db_r.ok()) << db_r.status().ToString();
    auto db = db_r.MoveValue();
    Table* t = db->GetTable(1);
    ASSERT_NE(t, nullptr);
    auto txn = db->Begin();
    Row out{};
    for (uint64_t k = 0; k < 200; ++k) {
      ASSERT_TRUE(t->Read(txn.get(), k, &out).ok()) << "key " << k;
      const uint64_t expect = (k % 4 == 0) ? k + 1'000'000 : k * k;
      EXPECT_EQ(out.b, expect) << "key " << k;
    }
    // The loser's update must not survive.
    ASSERT_TRUE(t->Read(txn.get(), 7, &out).ok());
    EXPECT_NE(out.b, 666u);
    ASSERT_TRUE(db->Commit(txn.get()).ok());

    // And the database remains writable after recovery.
    auto txn2 = db->Begin();
    Row row = MakeRow(500);
    ASSERT_TRUE(t->Insert(txn2.get(), 500, &row).ok());
    ASSERT_TRUE(db->Commit(txn2.get()).ok());
  }
}

TEST_F(DatabaseTest, RecoveryWithoutNvmTier) {
  DatabaseOptions opts = SmallOptions();
  opts.nvm_frames = 0;  // DRAM-SSD: commits force log drain to SSD
  DatabaseEnv env;
  {
    auto db = Database::Create(opts).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Row)).value();
    for (uint64_t k = 0; k < 50; ++k) {
      auto txn = db->Begin();
      Row row = MakeRow(k);
      ASSERT_TRUE(t->Insert(txn.get(), k, &row).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    env = Database::Crash(std::move(db));
  }
  {
    auto db_r = Database::Recover(opts, std::move(env));
    ASSERT_TRUE(db_r.ok()) << db_r.status().ToString();
    auto db = db_r.MoveValue();
    Table* t = db->GetTable(1);
    auto txn = db->Begin();
    Row out{};
    for (uint64_t k = 0; k < 50; ++k) {
      ASSERT_TRUE(t->Read(txn.get(), k, &out).ok()) << k;
      EXPECT_EQ(out.b, k * k);
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
}

TEST_F(DatabaseTest, ConcurrentTransfersConserveTotal) {
  // Classic bank-transfer invariant under MVTO.
  auto db = Database::Create(SmallOptions()).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Row)).value();
  constexpr uint64_t kAccounts = 32;
  constexpr uint64_t kInitial = 1000;
  {
    auto txn = db->Begin();
    for (uint64_t k = 0; k < kAccounts; ++k) {
      Row row{};
      row.a = k;
      row.b = kInitial;
      ASSERT_TRUE(t->Insert(txn.get(), k, &row).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  std::vector<std::thread> ths;
  std::atomic<int> commits{0};
  for (int th = 0; th < 4; ++th) {
    ths.emplace_back([&, th] {
      Xoshiro256 rng(th + 100);
      for (int i = 0; i < 500; ++i) {
        const uint64_t from = rng.NextUint64(kAccounts);
        uint64_t to = rng.NextUint64(kAccounts);
        if (to == from) to = (to + 1) % kAccounts;
        auto txn = db->Begin();
        Row a{}, b{};
        if (!t->Read(txn.get(), from, &a).ok() ||
            !t->Read(txn.get(), to, &b).ok() || a.b < 10) {
          (void)db->Abort(txn.get());
          continue;
        }
        a.b -= 10;
        b.b += 10;
        if (!t->Update(txn.get(), from, &a).ok() ||
            !t->Update(txn.get(), to, &b).ok()) {
          (void)db->Abort(txn.get());
          continue;
        }
        if (db->Commit(txn.get()).ok()) commits.fetch_add(1);
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_GT(commits.load(), 0);
  auto txn = db->Begin();
  uint64_t total = 0;
  Row out{};
  for (uint64_t k = 0; k < kAccounts; ++k) {
    ASSERT_TRUE(t->Read(txn.get(), k, &out).ok());
    total += out.b;
  }
  EXPECT_EQ(total, kAccounts * kInitial);
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(DatabaseTest, CheckpointReducesRecoveryLog) {
  DatabaseOptions opts = SmallOptions();
  DatabaseEnv env;
  {
    auto db = Database::Create(opts).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Row)).value();
    for (uint64_t k = 0; k < 100; ++k) {
      auto txn = db->Begin();
      Row row = MakeRow(k);
      ASSERT_TRUE(t->Insert(txn.get(), k, &row).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    ASSERT_TRUE(db->Checkpoint().ok());
    env = Database::Crash(std::move(db));
  }
  auto db = Database::Recover(opts, std::move(env)).MoveValue();
  Table* t = db->GetTable(1);
  auto txn = db->Begin();
  Row out{};
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(t->Read(txn.get(), k, &out).ok());
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

}  // namespace
}  // namespace spitfire
