// Counter-based integration tests of the paper's qualitative claims. These
// run with the latency simulation disabled and assert on deterministic
// traffic counters (promotions, SSD ops, NVM media bytes, inclusivity), so
// they verify the *mechanisms* behind each headline result without timing
// noise.
#include <gtest/gtest.h>

#include "buffer/buffer_manager.h"
#include "storage/memory_mode_device.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

constexpr size_t kTuple = 1024;

class PaperClaimsTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  struct Traffic {
    uint64_t promotions;
    uint64_t ssd_ops;
    uint64_t nvm_media_written;
    uint64_t nvm_bytes_read;
    double inclusivity;
  };

  // Runs a fixed zipfian read/update trace against a 8+32-frame hierarchy
  // over 128 pages and returns the traffic counters.
  static Traffic RunTrace(const MigrationPolicy& policy, double write_ratio,
                          bool fine_grained = false,
                          size_t dram_frames = 8, size_t nvm_frames = 32) {
    SsdDevice ssd(64ull << 20);
    BufferManagerOptions opt;
    opt.dram_frames = dram_frames;
    opt.nvm_frames = nvm_frames;
    opt.policy = policy;
    opt.enable_fine_grained_loading = fine_grained;
    opt.ssd = &ssd;
    BufferManager bm(opt);
    constexpr int kPages = 128;
    for (int i = 0; i < kPages; ++i) {
      auto r = bm.NewPage();
      EXPECT_TRUE(r.ok());
    }
    EXPECT_TRUE(bm.FlushAll(true).ok());
    bm.stats().Reset();
    bm.nvm_device()->stats().Reset();
    ssd.stats().Reset();

    Xoshiro256 rng(12345);
    ZipfianGenerator zipf(kPages, 0.6);
    std::vector<std::byte> buf(kTuple);
    for (int i = 0; i < 30000; ++i) {
      const page_id_t pid = zipf.Next(rng);
      const bool write = rng.Bernoulli(write_ratio);
      auto r = bm.FetchPage(pid, write ? AccessIntent::kWrite
                                       : AccessIntent::kRead);
      if (!r.ok()) continue;
      const size_t off = kPageHeaderSize + rng.NextUint64(14) * kTuple;
      if (write) {
        (void)r.value().WriteAt(off, kTuple, buf.data());
      } else {
        (void)r.value().ReadAt(off, kTuple, buf.data());
      }
    }
    Traffic t;
    t.promotions = bm.stats().Snapshot().promotions;
    t.ssd_ops = ssd.stats().num_reads.load() + ssd.stats().num_writes.load();
    t.nvm_media_written =
        bm.nvm_device()->stats().media_bytes_written.load();
    t.nvm_bytes_read = bm.nvm_device()->stats().bytes_read.load();
    t.inclusivity = bm.InclusivityRatio();
    return t;
  }
};

// Section 3.1: lazy Dr drastically reduces upward NVM→DRAM migration.
TEST_F(PaperClaimsTest, LazyDramPolicyReducesPromotions) {
  const Traffic eager = RunTrace(MigrationPolicy{1, 1, 1, 1}, 0.0);
  const Traffic lazy = RunTrace(MigrationPolicy{0.01, 0.01, 1, 1}, 0.0);
  EXPECT_LT(lazy.promotions * 5, eager.promotions);
}

// Section 3.3 / Table 2: lazy policies lower the inclusivity ratio,
// buffering more distinct pages.
TEST_F(PaperClaimsTest, LazyPoliciesLowerInclusivity) {
  const Traffic eager = RunTrace(MigrationPolicy{1, 1, 1, 1}, 0.2);
  const Traffic lazy = RunTrace(MigrationPolicy{0.01, 0.01, 0.2, 1}, 0.2);
  EXPECT_LT(lazy.inclusivity, eager.inclusivity);
}

// Section 3.3 / Figure 8: bypassing NVM on the read path slashes NVM write
// volume on a read-only workload.
TEST_F(PaperClaimsTest, NvmBypassReducesNvmWritesOnReadOnly) {
  const Traffic eager = RunTrace(MigrationPolicy{1, 1, 1, 1}, 0.0);
  const Traffic lazy = RunTrace(MigrationPolicy{1, 1, 0.01, 0.01}, 0.0);
  EXPECT_GT(eager.nvm_media_written, 4 * lazy.nvm_media_written);
}

// Figure 8's second half: on write-heavy mixes the gap shrinks (dirty
// evictions dominate the write volume under both policies).
TEST_F(PaperClaimsTest, NvmWriteGapShrinksOnWriteHeavy) {
  const Traffic eager_ro = RunTrace(MigrationPolicy{1, 1, 1, 1}, 0.0);
  const Traffic lazy_ro = RunTrace(MigrationPolicy{1, 1, 0.1, 0.1}, 0.0);
  const Traffic eager_wh = RunTrace(MigrationPolicy{1, 1, 1, 1}, 0.9);
  const Traffic lazy_wh = RunTrace(MigrationPolicy{1, 1, 0.1, 0.1}, 0.9);
  const double ro_ratio = static_cast<double>(eager_ro.nvm_media_written) /
                          static_cast<double>(lazy_ro.nvm_media_written + 1);
  const double wh_ratio = static_cast<double>(eager_wh.nvm_media_written) /
                          static_cast<double>(lazy_wh.nvm_media_written + 1);
  EXPECT_GT(ro_ratio, wh_ratio);
}

// Section 6.2: a larger (NVM-sized) buffer eliminates SSD traffic that a
// smaller (DRAM-sized) buffer cannot.
TEST_F(PaperClaimsTest, LargerBufferReducesSsdOperations) {
  const Traffic small = RunTrace(MigrationPolicy::Eager(), 0.2,
                                 /*fine_grained=*/false,
                                 /*dram_frames=*/16, /*nvm_frames=*/16);
  const Traffic large = RunTrace(MigrationPolicy::Eager(), 0.2, false,
                                 /*dram_frames=*/16, /*nvm_frames=*/160);
  EXPECT_LT(large.ssd_ops * 2, small.ssd_ops);
}

// Section 2.1 / Figure 11's premise: fine-grained loading moves fewer
// bytes out of NVM than whole-page promotion when accesses are sparse.
TEST_F(PaperClaimsTest, FineGrainedLoadingReducesNvmReadBytes) {
  const Traffic full = RunTrace(MigrationPolicy::Eager(), 0.0, false);
  const Traffic fine = RunTrace(MigrationPolicy::Eager(), 0.0, true);
  EXPECT_LT(fine.nvm_bytes_read, full.nvm_bytes_read);
}

// Section 2.2 / Figure 5's mechanism: a larger memory-mode DRAM cache
// yields a higher L4 hit rate on the same trace.
TEST_F(PaperClaimsTest, MemoryModeHitRateGrowsWithCache) {
  auto run = [](uint64_t cache_bytes) {
    MemoryModeDevice dev(8ull << 20, cache_bytes);
    Xoshiro256 rng(9);
    ZipfianGenerator zipf(8ull << 20 >> 8, 0.5);  // 256 B blocks
    char buf[256];
    for (int i = 0; i < 50000; ++i) {
      (void)dev.Read(zipf.Next(rng) << 8, buf, 256);
    }
    return dev.HitRate();
  };
  const double small = run(64 << 10);
  const double large = run(4 << 20);
  EXPECT_GT(large, small + 0.1);
}

// Section 5.2's premise: NVM-resident dirty pages need no flushing — after
// a checkpoint-style FlushAll(false), dirty NVM pages remain dirty (they
// are persistent), while dirty full DRAM pages are written down.
TEST_F(PaperClaimsTest, CheckpointSkipsNvmResidentDirtyPages) {
  SsdDevice ssd(64ull << 20);
  BufferManagerOptions opt;
  opt.dram_frames = 0;  // NVM-SSD hierarchy: all dirty pages live on NVM
  opt.nvm_frames = 32;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = &ssd;
  BufferManager bm(opt);
  for (int i = 0; i < 16; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    r.value().MarkDirty();
  }
  const uint64_t ssd_writes_before = ssd.stats().num_writes.load();
  ASSERT_TRUE(bm.FlushAll(/*include_nvm=*/false).ok());
  // Background checkpointing leaves persistent NVM pages in place.
  EXPECT_EQ(ssd.stats().num_writes.load(), ssd_writes_before);
  ASSERT_TRUE(bm.FlushAll(/*include_nvm=*/true).ok());
  EXPECT_GT(ssd.stats().num_writes.load(), ssd_writes_before);
}

}  // namespace
}  // namespace spitfire
