#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "container/admission_queue.h"
#include "container/concurrent_bitmap.h"
#include "container/concurrent_hash_table.h"
#include "container/mpmc_queue.h"

namespace spitfire {
namespace {

TEST(ConcurrentHashTableTest, InsertFindErase) {
  ConcurrentHashTable<uint64_t, int> t;
  EXPECT_TRUE(t.Insert(1, 10));
  EXPECT_FALSE(t.Insert(1, 20));  // duplicate
  int v = 0;
  EXPECT_TRUE(t.Find(1, &v));
  EXPECT_EQ(v, 10);
  EXPECT_TRUE(t.Erase(1));
  EXPECT_FALSE(t.Find(1, &v));
  EXPECT_FALSE(t.Erase(1));
}

TEST(ConcurrentHashTableTest, GetOrCreateRunsFactoryOnce) {
  ConcurrentHashTable<uint64_t, int> t;
  int calls = 0;
  EXPECT_EQ(t.GetOrCreate(5, [&] { return ++calls; }), 1);
  EXPECT_EQ(t.GetOrCreate(5, [&] { return ++calls; }), 1);
  EXPECT_EQ(calls, 1);
}

TEST(ConcurrentHashTableTest, SizeAndForEach) {
  ConcurrentHashTable<uint64_t, int> t;
  for (uint64_t i = 0; i < 100; ++i) t.Insert(i, static_cast<int>(i));
  EXPECT_EQ(t.Size(), 100u);
  int sum = 0;
  t.ForEach([&](const uint64_t&, int& v) { sum += v; });
  EXPECT_EQ(sum, 4950);
  t.Clear();
  EXPECT_EQ(t.Size(), 0u);
}

TEST(ConcurrentHashTableTest, ConcurrentInsertsAreAllVisible) {
  ConcurrentHashTable<uint64_t, uint64_t> t;
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> ths;
  for (int i = 0; i < kThreads; ++i) {
    ths.emplace_back([&t, i] {
      for (uint64_t k = 0; k < kPerThread; ++k) {
        t.Insert(static_cast<uint64_t>(i) * kPerThread + k, k);
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(t.Size(), kThreads * kPerThread);
}

TEST(ConcurrentHashTableTest, ConcurrentGetOrCreateSingleWinner) {
  ConcurrentHashTable<uint64_t, int> t;
  std::atomic<int> counter{0};
  std::vector<std::thread> ths;
  for (int i = 0; i < 4; ++i) {
    ths.emplace_back([&] {
      for (int r = 0; r < 1000; ++r) {
        (void)t.GetOrCreate(42, [&] { return counter.fetch_add(1) + 100; });
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ConcurrentBitmapTest, SetTestClear) {
  ConcurrentBitmap bm(200);
  EXPECT_FALSE(bm.Test(63));
  bm.Set(63);
  bm.Set(64);
  bm.Set(199);
  EXPECT_TRUE(bm.Test(63));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_TRUE(bm.Test(199));
  EXPECT_EQ(bm.CountSet(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
}

TEST(ConcurrentBitmapTest, TestAndClearReturnsPrevious) {
  ConcurrentBitmap bm(10);
  bm.Set(3);
  EXPECT_TRUE(bm.TestAndClear(3));
  EXPECT_FALSE(bm.TestAndClear(3));
  EXPECT_FALSE(bm.Test(3));
}

TEST(ConcurrentBitmapTest, ConcurrentSetsAllLand) {
  ConcurrentBitmap bm(64 * 64);
  std::vector<std::thread> ths;
  for (int t = 0; t < 4; ++t) {
    ths.emplace_back([&bm, t] {
      for (size_t i = static_cast<size_t>(t); i < bm.size(); i += 4) bm.Set(i);
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(bm.CountSet(), bm.size());
}

TEST(AdmissionQueueTest, SecondConsiderationAdmits) {
  AdmissionQueue q(16);
  EXPECT_FALSE(q.ShouldAdmit(7));  // first touch: enqueued, bypass NVM
  EXPECT_TRUE(q.ShouldAdmit(7));   // second touch: admitted
  EXPECT_FALSE(q.ShouldAdmit(7));  // queue entry consumed; starts over
}

TEST(AdmissionQueueTest, CapacityBoundEvictsOldest) {
  AdmissionQueue q(2);
  EXPECT_FALSE(q.ShouldAdmit(1));
  EXPECT_FALSE(q.ShouldAdmit(2));
  EXPECT_FALSE(q.ShouldAdmit(3));  // evicts 1
  EXPECT_FALSE(q.ShouldAdmit(1));  // 1 no longer remembered
  EXPECT_TRUE(q.ShouldAdmit(3));   // 3 still remembered
}

TEST(AdmissionQueueTest, RemoveForgetsPage) {
  AdmissionQueue q(8);
  EXPECT_FALSE(q.ShouldAdmit(9));
  q.Remove(9);
  EXPECT_FALSE(q.ShouldAdmit(9));  // must be re-considered from scratch
}

TEST(AdmissionQueueTest, SizeTracksMembers) {
  AdmissionQueue q(8);
  q.ShouldAdmit(1);
  q.ShouldAdmit(2);
  EXPECT_EQ(q.size(), 2u);
  q.ShouldAdmit(1);  // admitted → removed
  EXPECT_EQ(q.size(), 1u);
}

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // full
  int v;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(q.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(&v));  // empty
}

TEST(MpmcQueueTest, CapacityRoundsUpToPow2) {
  MpmcQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(MpmcQueueTest, ConcurrentProducersConsumers) {
  MpmcQueue<uint64_t> q(1024);
  constexpr uint64_t kItems = 20000;
  std::atomic<uint64_t> produced{0}, consumed_sum{0}, consumed{0};
  std::vector<std::thread> ths;
  for (int p = 0; p < 2; ++p) {
    ths.emplace_back([&] {
      for (;;) {
        const uint64_t v = produced.fetch_add(1);
        if (v >= kItems) break;
        while (!q.TryPush(v + 1)) std::this_thread::yield();
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    ths.emplace_back([&] {
      uint64_t v;
      while (consumed.load() < kItems) {
        if (q.TryPop(&v)) {
          consumed_sum.fetch_add(v);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(consumed.load(), kItems);
  EXPECT_EQ(consumed_sum.load(), kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace spitfire
