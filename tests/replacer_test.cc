#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "buffer/clock_replacer.h"
#include "buffer/replacer.h"
#include "buffer/twoq_replacer.h"
#include "common/random.h"

namespace spitfire {
namespace {

// TryEvictRef is a function_ref over callables (not function pointers);
// these live for the whole test run, so binding them is safe.
const auto AcceptAll = [](frame_id_t) { return true; };
const auto RefuseAll = [](frame_id_t) { return false; };

TEST(ReplacerFactoryTest, CreatesRequestedKind) {
  auto clock = Replacer::Create(ReplacerKind::kClock, 16);
  ASSERT_NE(clock, nullptr);
  EXPECT_EQ(clock->kind(), ReplacerKind::kClock);
  EXPECT_EQ(clock->num_frames(), 16u);

  auto twoq = Replacer::Create(ReplacerKind::kTwoQ, 16);
  ASSERT_NE(twoq, nullptr);
  EXPECT_EQ(twoq->kind(), ReplacerKind::kTwoQ);
  EXPECT_EQ(twoq->num_frames(), 16u);

  EXPECT_STREQ(ReplacerKindName(ReplacerKind::kClock), "clock");
  EXPECT_STREQ(ReplacerKindName(ReplacerKind::kTwoQ), "2q");
}

TEST(ReplacerFactoryTest, EmptyPoolNeverYieldsVictim) {
  for (ReplacerKind k : {ReplacerKind::kClock, ReplacerKind::kTwoQ}) {
    auto r = Replacer::Create(k, 0);
    EXPECT_EQ(r->PickVictim(AcceptAll), kInvalidFrameId);
  }
}

TEST(ReplacerInterfaceTest, RefusedVictimsReturnInvalid) {
  // try_evict refusing everything (all frames pinned) must terminate with
  // kInvalidFrameId, for both policies, through the base interface.
  for (ReplacerKind k : {ReplacerKind::kClock, ReplacerKind::kTwoQ}) {
    auto r = Replacer::Create(k, 8);
    for (frame_id_t f = 0; f < 8; ++f) r->RecordInstall(f);
    EXPECT_EQ(r->PickVictim(RefuseAll), kInvalidFrameId)
        << ReplacerKindName(k);
  }
}

TEST(ClockReplacerTest, AccessedFrameSurvivesEviction) {
  ClockReplacer clock(8);
  for (frame_id_t f = 0; f < 8; ++f) clock.RecordInstall(f);
  // Frame 3 is re-referenced before every pick; second chance must keep it
  // resident while the other 7 frames are evicted around it.
  for (int i = 0; i < 7; ++i) {
    clock.RecordAccess(3);
    const frame_id_t v = clock.PickVictim(AcceptAll);
    ASSERT_NE(v, kInvalidFrameId);
    EXPECT_NE(v, 3u) << "victim " << v << " on pick " << i;
  }
}

TEST(TwoQReplacerTest, ProbationEvictsInFifoOrder) {
  TwoQReplacer twoq(8);
  for (frame_id_t f = 0; f < 8; ++f) twoq.RecordInstall(f);
  // First-touch frames are a FIFO: victims come out in install order.
  for (frame_id_t expect = 0; expect < 4; ++expect) {
    EXPECT_EQ(twoq.PickVictim(AcceptAll), expect);
  }
  EXPECT_EQ(twoq.probation_evictions(), 4u);
}

TEST(TwoQReplacerTest, SecondAccessPromotesToProtected) {
  TwoQReplacer twoq(4);
  for (frame_id_t f = 0; f < 4; ++f) twoq.RecordInstall(f);
  EXPECT_EQ(twoq.ProbationCount(), 4u);
  // One access only sets the reference bit; the second promotes.
  twoq.RecordAccess(2);
  EXPECT_EQ(twoq.ProtectedCount(), 0u);
  twoq.RecordAccess(2);
  EXPECT_EQ(twoq.ProtectedCount(), 1u);
  EXPECT_EQ(twoq.promotions(), 1u);
  // The promoted frame outlives every probation frame.
  EXPECT_EQ(twoq.PickVictim(AcceptAll), 0u);
  EXPECT_EQ(twoq.PickVictim(AcceptAll), 1u);
  EXPECT_EQ(twoq.PickVictim(AcceptAll), 3u);
}

TEST(TwoQReplacerTest, ScanCannotDisplaceProtectedSegment) {
  // The scan-resistance property at the policy level: with half the pool
  // protected, an arbitrarily long stream of first-touch installs only ever
  // recycles its own probation frames.
  TwoQReplacer twoq(16);
  for (frame_id_t f = 0; f < 8; ++f) {
    twoq.RecordInstall(f);
    twoq.RecordAccess(f);
    twoq.RecordAccess(f);  // promote
  }
  EXPECT_EQ(twoq.ProtectedCount(), 8u);
  for (frame_id_t f = 8; f < 16; ++f) twoq.RecordInstall(f);

  for (int i = 0; i < 1000; ++i) {
    const frame_id_t v = twoq.PickVictim(AcceptAll);
    ASSERT_NE(v, kInvalidFrameId);
    EXPECT_GE(v, 8u) << "scan evicted protected frame " << v;
    twoq.RecordInstall(v);  // the next scan page reuses the frame
  }
  EXPECT_EQ(twoq.ProtectedCount(), 8u);
  EXPECT_EQ(twoq.cooling_evictions(), 0u);
}

TEST(TwoQReplacerTest, AllProtectedPoolStillYieldsVictimsViaCooling) {
  // When nothing is in probation the sweep must demote cold protected
  // frames through the cooling stage and evict from there.
  TwoQReplacer twoq(8);
  for (frame_id_t f = 0; f < 8; ++f) {
    twoq.RecordInstall(f);
    twoq.RecordAccess(f);
    twoq.RecordAccess(f);
  }
  EXPECT_EQ(twoq.ProtectedCount(), 8u);
  const frame_id_t v = twoq.PickVictim(AcceptAll);
  EXPECT_NE(v, kInvalidFrameId);
  EXPECT_GT(twoq.demotions(), 0u);
  EXPECT_EQ(twoq.cooling_evictions(), 1u);
  EXPECT_EQ(twoq.probation_evictions(), 0u);
}

TEST(TwoQReplacerTest, AccessDuringCoolingGraceReheats) {
  TwoQReplacer twoq(8);
  for (frame_id_t f = 0; f < 8; ++f) {
    twoq.RecordInstall(f);
    twoq.RecordAccess(f);
    twoq.RecordAccess(f);
  }
  // A refuse-all pick cannot evict, but its sweep demotes the (now cold)
  // protected frames into cooling.
  EXPECT_EQ(twoq.PickVictim(RefuseAll), kInvalidFrameId);
  ASSERT_GT(twoq.CoolingCount(), 0u);
  // Touching every frame during the grace period reheats the cooled ones
  // back to protected; none may be lost.
  for (frame_id_t f = 0; f < 8; ++f) twoq.RecordAccess(f);
  EXPECT_EQ(twoq.CoolingCount(), 0u);
  EXPECT_EQ(twoq.ProtectedCount(), 8u);
  EXPECT_GT(twoq.reheats(), 0u);
}

TEST(TwoQReplacerTest, ReinstallAfterEvictionRestartsInProbation) {
  TwoQReplacer twoq(4);
  twoq.RecordInstall(0);
  EXPECT_EQ(twoq.PickVictim(AcceptAll), 0u);
  // The freed frame is reused for a new page: it must start over in
  // probation (RecordInstall owns the segment reset).
  twoq.RecordInstall(0);
  EXPECT_EQ(twoq.ProbationCount(), 1u);
  EXPECT_EQ(twoq.PickVictim(AcceptAll), 0u);
}

TEST(TwoQReplacerTest, ReferencedCountTracksRefBits) {
  TwoQReplacer twoq(8);
  for (frame_id_t f = 0; f < 8; ++f) twoq.RecordInstall(f);
  EXPECT_EQ(twoq.ReferencedCount(), 0u);  // installs start cold
  twoq.RecordAccess(1);
  twoq.RecordAccess(5);
  EXPECT_EQ(twoq.ReferencedCount(), 2u);
}

// Concurrency smoke for both policies through the base interface: threads
// hammer install/access/evict on overlapping frames. Run under tsan/asan;
// the invariant checked here is only "terminates, victims in range, and
// every evicted frame was reinstallable".
TEST(ReplacerInterfaceTest, ConcurrentInstallAccessEvictSmoke) {
  constexpr size_t kFrames = 64;
  constexpr int kThreads = 4;
  constexpr int kIters = 20'000;
  for (ReplacerKind k : {ReplacerKind::kClock, ReplacerKind::kTwoQ}) {
    auto r = Replacer::Create(k, kFrames);
    for (frame_id_t f = 0; f < kFrames; ++f) r->RecordInstall(f);
    std::atomic<uint64_t> evictions{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256 rng(0xBEEF + static_cast<uint64_t>(t));
        for (int i = 0; i < kIters; ++i) {
          const frame_id_t f =
              static_cast<frame_id_t>(rng.NextUint64(kFrames));
          switch (rng.NextUint64(4)) {
            case 0: {
              // Evict-then-reinstall, as the miss path does.
              const frame_id_t v = r->PickVictim(
                  [](frame_id_t vf) { return vf % 3 != 0; });
              if (v != kInvalidFrameId) {
                EXPECT_LT(v, kFrames);
                evictions.fetch_add(1, std::memory_order_relaxed);
                r->RecordInstall(v);
              }
              break;
            }
            default:
              r->RecordAccess(f);
              break;
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_GT(evictions.load(), 0u) << ReplacerKindName(k);
    ASSERT_FALSE(r->DebugString().empty());
  }
}

}  // namespace
}  // namespace spitfire
