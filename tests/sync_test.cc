#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/optimistic_latch.h"
#include "sync/rw_latch.h"
#include "sync/spin_latch.h"

namespace spitfire {
namespace {

TEST(SpinLatchTest, LockUnlock) {
  SpinLatch l;
  EXPECT_FALSE(l.IsLocked());
  l.Lock();
  EXPECT_TRUE(l.IsLocked());
  EXPECT_FALSE(l.TryLock());
  l.Unlock();
  EXPECT_TRUE(l.TryLock());
  l.Unlock();
}

TEST(SpinLatchTest, GuardReleases) {
  SpinLatch l;
  {
    SpinLatchGuard g(l);
    EXPECT_TRUE(l.IsLocked());
  }
  EXPECT_FALSE(l.IsLocked());
}

TEST(SpinLatchTest, MutualExclusionCounter) {
  SpinLatch l;
  int counter = 0;
  std::vector<std::thread> ths;
  for (int t = 0; t < 4; ++t) {
    ths.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        SpinLatchGuard g(l);
        ++counter;
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(counter, 40000);
}

TEST(RwLatchTest, MultipleReaders) {
  RwLatch l;
  l.LockShared();
  EXPECT_TRUE(l.TryLockShared());
  EXPECT_FALSE(l.TryLockExclusive());
  l.UnlockShared();
  l.UnlockShared();
  EXPECT_TRUE(l.TryLockExclusive());
  l.UnlockExclusive();
}

TEST(RwLatchTest, WriterExcludesReaders) {
  RwLatch l;
  l.LockExclusive();
  EXPECT_FALSE(l.TryLockShared());
  EXPECT_FALSE(l.TryLockExclusive());
  l.UnlockExclusive();
}

TEST(RwLatchTest, ConcurrentReadersWritersConsistent) {
  RwLatch l;
  int64_t value = 0;
  std::atomic<bool> stop{false};
  std::atomic<int> anomalies{0};
  std::vector<std::thread> ths;
  for (int w = 0; w < 2; ++w) {
    ths.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        ExclusiveLatchGuard g(l);
        // Temporarily break the invariant inside the critical section.
        value += 1;
        value += 1;
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    ths.emplace_back([&] {
      while (!stop.load()) {
        SharedLatchGuard g(l);
        if (value % 2 != 0) anomalies.fetch_add(1);
      }
    });
  }
  ths[0].join();
  ths[1].join();
  stop.store(true);
  ths[2].join();
  ths[3].join();
  EXPECT_EQ(value, 20000);
  EXPECT_EQ(anomalies.load(), 0);
}

TEST(OptimisticLatchTest, ReadValidatesWhenNoWriter) {
  OptimisticLatch l;
  const uint64_t v = l.ReadLockOrRestart();
  ASSERT_NE(v, OptimisticLatch::kRetry);
  EXPECT_TRUE(l.Validate(v));
}

TEST(OptimisticLatchTest, WriteBumpsVersion) {
  OptimisticLatch l;
  const uint64_t v = l.ReadLockOrRestart();
  l.WriteLock();
  l.WriteUnlock();
  EXPECT_FALSE(l.Validate(v));
}

TEST(OptimisticLatchTest, ReadSeesLockedWriter) {
  OptimisticLatch l;
  l.WriteLock();
  EXPECT_EQ(l.ReadLockOrRestart(), OptimisticLatch::kRetry);
  EXPECT_TRUE(l.IsWriteLocked());
  l.WriteUnlock();
  EXPECT_NE(l.ReadLockOrRestart(), OptimisticLatch::kRetry);
}

TEST(OptimisticLatchTest, UpgradeFailsAfterIntervening) {
  OptimisticLatch l;
  const uint64_t v = l.ReadLockOrRestart();
  l.WriteLock();
  l.WriteUnlock();
  EXPECT_FALSE(l.UpgradeToWriteLock(v));
}

TEST(OptimisticLatchTest, UpgradeSucceedsWhenUnchanged) {
  OptimisticLatch l;
  const uint64_t v = l.ReadLockOrRestart();
  ASSERT_TRUE(l.UpgradeToWriteLock(v));
  EXPECT_TRUE(l.IsWriteLocked());
  l.WriteUnlock();
}

TEST(OptimisticLatchTest, UnlockNoBumpKeepsVersion) {
  OptimisticLatch l;
  const uint64_t v = l.ReadLockOrRestart();
  l.WriteLock();
  l.WriteUnlockNoBump();
  EXPECT_TRUE(l.Validate(v));
}

TEST(OptimisticLatchTest, OptimisticReadersDetectConcurrentWrites) {
  OptimisticLatch l;
  // Relaxed atomics instead of plain uint64_t: real OLC readers race on
  // plain memory and discard invalidated values, but in this focused test
  // the racy bytes themselves are not the point — version validation is.
  // Relaxed ops keep the interleavings while staying TSan-clean.
  std::atomic<uint64_t> data[2] = {{0}, {0}};
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread writer([&] {
    for (uint64_t i = 1; i <= 20000; ++i) {
      l.WriteLock();
      data[0].store(i, std::memory_order_relaxed);
      data[1].store(i, std::memory_order_relaxed);
      l.WriteUnlock();
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      const uint64_t v = l.ReadLockOrRestart();
      if (v == OptimisticLatch::kRetry) continue;
      const uint64_t a = data[0].load(std::memory_order_relaxed);
      const uint64_t b = data[1].load(std::memory_order_relaxed);
      if (l.Validate(v) && a != b) torn.fetch_add(1);
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0);
}

}  // namespace
}  // namespace spitfire
