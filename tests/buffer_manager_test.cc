#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

constexpr uint64_t kSsdCapacity = 64ull * 1024 * 1024;  // 4096 pages

class BufferManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    ssd_ = std::make_unique<SsdDevice>(kSsdCapacity);
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  std::unique_ptr<BufferManager> Make(size_t dram, size_t nvm,
                                      MigrationPolicy pol) {
    BufferManagerOptions opt;
    opt.dram_frames = dram;
    opt.nvm_frames = nvm;
    opt.policy = pol;
    opt.ssd = ssd_.get();
    return std::make_unique<BufferManager>(opt);
  }

  // Creates `n` pages, each stamped with a recognizable pattern.
  std::vector<page_id_t> CreatePages(BufferManager& bm, int n) {
    std::vector<page_id_t> pids;
    for (int i = 0; i < n; ++i) {
      auto r = bm.NewPage();
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      PageGuard g = r.MoveValue();
      const uint64_t stamp = Stamp(g.pid());
      EXPECT_TRUE(g.WriteAt(kPageHeaderSize, sizeof(stamp), &stamp).ok());
      pids.push_back(g.pid());
    }
    return pids;
  }

  static uint64_t Stamp(page_id_t pid) { return 0xC0FFEE0000ull + pid; }

  static void ExpectStamp(PageGuard& g) {
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
    EXPECT_EQ(v, Stamp(g.pid()));
  }

  std::unique_ptr<SsdDevice> ssd_;
};

TEST_F(BufferManagerTest, NewPageAndReadBack) {
  auto bm = Make(8, 8, MigrationPolicy::Eager());
  auto pids = CreatePages(*bm, 4);
  for (page_id_t pid : pids) {
    auto r = bm->FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    ExpectStamp(g);
  }
}

TEST_F(BufferManagerTest, FetchUnallocatedPageFails) {
  auto bm = Make(4, 4, MigrationPolicy::Eager());
  auto r = bm->FetchPage(123, AccessIntent::kRead);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BufferManagerTest, DataSurvivesEvictionThroughAllTiers) {
  // 4 DRAM + 4 NVM frames, 64 pages: heavy eviction traffic.
  auto bm = Make(4, 4, MigrationPolicy::Eager());
  auto pids = CreatePages(*bm, 64);
  for (int round = 0; round < 3; ++round) {
    for (page_id_t pid : pids) {
      auto r = bm->FetchPage(pid, AccessIntent::kRead);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      PageGuard g = r.MoveValue();
      ExpectStamp(g);
    }
  }
}

TEST_F(BufferManagerTest, WritesSurviveEviction) {
  auto bm = Make(4, 4, MigrationPolicy::Eager());
  auto pids = CreatePages(*bm, 32);
  // Overwrite each page with a new value, then thrash, then verify.
  for (page_id_t pid : pids) {
    auto r = bm->FetchPage(pid, AccessIntent::kWrite);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = pid * 31 + 7;
    ASSERT_TRUE(g.WriteAt(1024, sizeof(v), &v).ok());
  }
  for (page_id_t pid : pids) {
    auto r = bm->FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(1024, sizeof(v), &v).ok());
    EXPECT_EQ(v, pid * 31 + 7);
    ExpectStamp(g);
  }
}

TEST_F(BufferManagerTest, DramSsdHierarchyWorks) {
  auto bm = Make(4, 0, MigrationPolicy::Eager());
  auto pids = CreatePages(*bm, 32);
  for (page_id_t pid : pids) {
    auto r = bm->FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    EXPECT_EQ(g.tier(), Tier::kDram);
    ExpectStamp(g);
  }
}

TEST_F(BufferManagerTest, NvmSsdHierarchyWorks) {
  auto bm = Make(0, 4, MigrationPolicy::Eager());
  auto pids = CreatePages(*bm, 32);
  for (page_id_t pid : pids) {
    auto r = bm->FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    EXPECT_EQ(g.tier(), Tier::kNvm);
    ExpectStamp(g);
  }
}

TEST_F(BufferManagerTest, LazyPolicyServesFromNvmWithoutPromotion) {
  // Dr = 0: never promote. Pages installed via Nr = 1 land on NVM and stay.
  auto bm = Make(8, 8, MigrationPolicy{0.0, 0.0, 1.0, 1.0});
  auto pids = CreatePages(*bm, 4);
  (void)bm->FlushAll(true);
  // Evict all DRAM copies by thrashing with other pages is fiddly; instead
  // fetch enough new pages through a tiny manager below. Here we simply
  // verify NVM-direct service: fetch pages not DRAM-resident.
  auto bm2 = Make(8, 8, MigrationPolicy{0.0, 0.0, 1.0, 1.0});
  BufferManagerOptions o;  // silence unused warnings
  (void)o;
  auto pids2 = CreatePages(*bm2, 8);
  // New pages start in DRAM; push them out through NVM by fetching many.
  for (page_id_t pid : pids2) {
    (void)bm2->FlushPage(pid);
  }
  const uint64_t promos_before = bm2->stats().Snapshot().promotions;
  for (int round = 0; round < 5; ++round) {
    for (page_id_t pid : pids2) {
      auto r = bm2->FetchPage(pid, AccessIntent::kRead);
      ASSERT_TRUE(r.ok());
    }
  }
  EXPECT_EQ(bm2->stats().Snapshot().promotions, promos_before);
}

TEST_F(BufferManagerTest, EagerPolicyPromotesNvmPagesToDram) {
  auto bm = Make(8, 8, MigrationPolicy::Eager());
  // This test pins down which ACCESS causes the SSD->NVM->DRAM walk, so
  // sequential read-ahead (which would pre-install pages 1..3 during the
  // fetch of page 0 and make their first fetch look like a second access)
  // must stay out of the picture.
  bm->SetReadAheadPages(0);
  // Force pages onto NVM: no DRAM tier usage first — create via a
  // NVM-only manager sharing the SSD, then reopen with both tiers.
  {
    auto nvm_only = Make(0, 8, MigrationPolicy::Eager());
    auto pids = CreatePages(*nvm_only, 4);
    ASSERT_TRUE(nvm_only->FlushAll(true).ok());
  }
  bm->SetNextPageId(4);
  // First fetch: SSD -> NVM (Nr=1), serve from NVM.
  for (page_id_t pid = 0; pid < 4; ++pid) {
    auto r = bm->FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().tier(), Tier::kNvm);
  }
  // Second fetch: Dr=1 promotes to DRAM.
  for (page_id_t pid = 0; pid < 4; ++pid) {
    auto r = bm->FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    EXPECT_EQ(g.tier(), Tier::kDram);
    ExpectStamp(g);
  }
  EXPECT_GE(bm->stats().Snapshot().promotions, 4u);
}

TEST_F(BufferManagerTest, InclusivityRatioReflectsDuplication) {
  auto bm = Make(8, 8, MigrationPolicy::Eager());
  {
    auto nvm_only = Make(0, 8, MigrationPolicy::Eager());
    CreatePages(*nvm_only, 4);
    ASSERT_TRUE(nvm_only->FlushAll(true).ok());
  }
  bm->SetNextPageId(4);
  // Fetch twice so all 4 pages live on both tiers.
  for (int round = 0; round < 2; ++round) {
    for (page_id_t pid = 0; pid < 4; ++pid) {
      ASSERT_TRUE(bm->FetchPage(pid, AccessIntent::kRead).ok());
    }
  }
  EXPECT_DOUBLE_EQ(bm->InclusivityRatio(), 1.0);
  EXPECT_EQ(bm->DramResidentPages(), 4u);
  EXPECT_EQ(bm->NvmResidentPages(), 4u);
}

TEST_F(BufferManagerTest, FlushAllWritesDirtyPagesToSsd) {
  auto bm = Make(8, 8, MigrationPolicy::Eager());
  auto pids = CreatePages(*bm, 4);
  const uint64_t writes_before = ssd_->stats().num_writes.load();
  ASSERT_TRUE(bm->FlushAll(true).ok());
  EXPECT_GE(ssd_->stats().num_writes.load() - writes_before, 4u);
  // Verify SSD contents directly.
  for (page_id_t pid : pids) {
    std::vector<std::byte> page(kPageSize);
    ASSERT_TRUE(ssd_->Read(pid * kPageSize, page.data(), kPageSize).ok());
    uint64_t v;
    std::memcpy(&v, page.data() + kPageHeaderSize, sizeof(v));
    EXPECT_EQ(v, Stamp(pid));
  }
}

TEST_F(BufferManagerTest, PinnedPagesAreNotEvicted) {
  auto bm = Make(2, 2, MigrationPolicy::Eager());
  auto r0 = bm->NewPage();
  ASSERT_TRUE(r0.ok());
  PageGuard pinned = r0.MoveValue();
  const uint64_t v = 0xDEAD;
  ASSERT_TRUE(pinned.WriteAt(256, sizeof(v), &v).ok());
  // Thrash with other pages; the pinned page must keep its frame valid.
  for (int i = 0; i < 20; ++i) {
    auto r = bm->NewPage();
    ASSERT_TRUE(r.ok());
  }
  uint64_t out = 0;
  ASSERT_TRUE(pinned.ReadAt(256, sizeof(out), &out).ok());
  EXPECT_EQ(out, 0xDEADu);
}

TEST_F(BufferManagerTest, GuardRejectsOutOfRangeAccess) {
  auto bm = Make(4, 4, MigrationPolicy::Eager());
  auto r = bm->NewPage();
  ASSERT_TRUE(r.ok());
  PageGuard g = r.MoveValue();
  char buf[32];
  EXPECT_FALSE(g.ReadAt(kPageSize - 8, 32, buf).ok());
  EXPECT_FALSE(g.WriteAt(kPageSize, 1, buf).ok());
}

TEST_F(BufferManagerTest, RawDataVisibleThroughReadAt) {
  auto bm = Make(4, 4, MigrationPolicy::Eager());
  auto r = bm->NewPage();
  ASSERT_TRUE(r.ok());
  PageGuard g = r.MoveValue();
  std::byte* raw = g.RawData(/*for_write=*/true);
  ASSERT_NE(raw, nullptr);
  raw[2000] = std::byte{0x7F};
  char c = 0;
  ASSERT_TRUE(g.ReadAt(2000, 1, &c).ok());
  EXPECT_EQ(c, 0x7F);
}

TEST_F(BufferManagerTest, PolicySwapTakesEffect) {
  auto bm = Make(4, 4, MigrationPolicy::Eager());
  MigrationPolicy lazy = MigrationPolicy::Lazy();
  bm->SetPolicy(lazy);
  const MigrationPolicy got = bm->policy();
  EXPECT_DOUBLE_EQ(got.dr, 0.01);
  EXPECT_DOUBLE_EQ(got.nr, 0.2);
}

TEST_F(BufferManagerTest, NvmWriteVolumeLowerWithLazyNvmPolicy) {
  // Eager (N=1) installs every SSD fetch into NVM; lazy (N=0.0) never.
  auto run = [&](MigrationPolicy pol) -> uint64_t {
    auto ssd = std::make_unique<SsdDevice>(kSsdCapacity);
    BufferManagerOptions opt;
    opt.dram_frames = 8;
    opt.nvm_frames = 16;
    opt.policy = pol;
    opt.ssd = ssd.get();
    BufferManager bm(opt);
    std::vector<page_id_t> pids;
    for (int i = 0; i < 64; ++i) {
      auto r = bm.NewPage();
      pids.push_back(r.value().pid());
    }
    (void)bm.FlushAll(true);
    for (int round = 0; round < 3; ++round) {
      for (page_id_t pid : pids) {
        (void)bm.FetchPage(pid, AccessIntent::kRead);
      }
    }
    return bm.nvm_device()->stats().media_bytes_written.load();
  };
  const uint64_t eager = run(MigrationPolicy{1.0, 1.0, 1.0, 1.0});
  const uint64_t lazy = run(MigrationPolicy{1.0, 1.0, 0.0, 0.0});
  EXPECT_GT(eager, lazy);
}

TEST_F(BufferManagerTest, HymemAdmissionQueueGatesNvm) {
  BufferManagerOptions opt;
  opt.dram_frames = 4;
  opt.nvm_frames = 8;
  opt.policy = MigrationPolicy::Hymem();
  opt.nvm_admission = NvmAdmissionMode::kAdmissionQueue;
  // Large enough to remember all 32 pages between their evictions (the
  // default of nvm_frames/2 would thrash at this tiny scale).
  opt.admission_queue_capacity = 64;
  opt.ssd = ssd_.get();
  BufferManager bm(opt);
  std::vector<page_id_t> pids;
  for (int i = 0; i < 32; ++i) pids.push_back(bm.NewPage().value().pid());
  // Dirty pages cycle through DRAM; only second-time evictions land on NVM.
  for (int round = 0; round < 4; ++round) {
    for (page_id_t pid : pids) {
      auto r = bm.FetchPage(pid, AccessIntent::kWrite);
      ASSERT_TRUE(r.ok());
      PageGuard g = r.MoveValue();
      const uint64_t v = pid ^ round;
      ASSERT_TRUE(g.WriteAt(512, sizeof(v), &v).ok());
    }
  }
  EXPECT_GT(bm.stats().Snapshot().demotions_to_nvm, 0u);
  EXPECT_GT(bm.stats().Snapshot().demotions_to_ssd, 0u);
}

TEST_F(BufferManagerTest, ConcurrentFetchesKeepDataIntact) {
  auto bm = Make(8, 16, MigrationPolicy::Lazy());
  auto pids = CreatePages(*bm, 128);
  std::atomic<int> errors{0};
  std::vector<std::thread> ths;
  for (int t = 0; t < 4; ++t) {
    ths.emplace_back([&, t] {
      Xoshiro256 rng(1000 + t);
      for (int i = 0; i < 2000; ++i) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        auto r = bm->FetchPage(pid, AccessIntent::kRead);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        PageGuard g = r.MoveValue();
        uint64_t v = 0;
        if (!g.ReadAt(kPageHeaderSize, sizeof(v), &v).ok() ||
            v != Stamp(pid)) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(BufferManagerTest, ConcurrentWritersToDistinctPages) {
  auto bm = Make(8, 16, MigrationPolicy::Lazy());
  auto pids = CreatePages(*bm, 64);
  std::vector<std::thread> ths;
  std::atomic<int> errors{0};
  for (int t = 0; t < 4; ++t) {
    ths.emplace_back([&, t] {
      // Each thread owns a disjoint slice of pages.
      for (int i = t; i < 64; i += 4) {
        for (int round = 0; round < 50; ++round) {
          auto r = bm->FetchPage(pids[i], AccessIntent::kWrite);
          if (!r.ok()) {
            errors.fetch_add(1);
            continue;
          }
          PageGuard g = r.MoveValue();
          uint64_t v = static_cast<uint64_t>(round);
          if (!g.WriteAt(2048, sizeof(v), &v).ok()) errors.fetch_add(1);
          uint64_t check = ~0ull;
          if (!g.ReadAt(2048, sizeof(check), &check).ok() || check != v) {
            errors.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(BufferManagerTest, RecoverNvmResidentPagesRebuildsMapping) {
  auto nvm = std::make_unique<NvmDevice>(
      BufferPool::RequiredCapacity(8, /*persistent_frame_table=*/true));
  page_id_t created = 0;
  {
    BufferManagerOptions opt;
    opt.dram_frames = 0;
    opt.nvm_frames = 8;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd_.get();
    opt.nvm = nvm.get();
    BufferManager bm(opt);
    for (int i = 0; i < 6; ++i) {
      auto r = bm.NewPage();
      ASSERT_TRUE(r.ok());
      PageGuard g = r.MoveValue();
      const uint64_t stamp = Stamp(g.pid());
      ASSERT_TRUE(g.WriteAt(kPageHeaderSize, sizeof(stamp), &stamp).ok());
      created = g.pid() + 1;
    }
    // "Crash": no flush, just drop the buffer manager. NVM retains data.
  }
  {
    BufferManagerOptions opt;
    opt.dram_frames = 0;
    opt.nvm_frames = 8;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd_.get();
    opt.nvm = nvm.get();
    BufferManager bm(opt);
    ASSERT_TRUE(bm.RecoverNvmResidentPages().ok());
    EXPECT_EQ(bm.next_page_id(), created);
    for (page_id_t pid = 0; pid < created; ++pid) {
      auto r = bm.FetchPage(pid, AccessIntent::kRead);
      ASSERT_TRUE(r.ok());
      PageGuard g = r.MoveValue();
      uint64_t v = 0;
      ASSERT_TRUE(g.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
      EXPECT_EQ(v, Stamp(pid));
    }
  }
}

// --- Parameterized sweep: every policy corner × both hierarchies must
// preserve data under eviction pressure. ---
struct PolicyCase {
  double dr, dw, nr, nw;
};

class PolicySweepTest : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicySweepTest, DataIntegrityUnderThrashing) {
  LatencySimulator::SetScale(0.0);
  const PolicyCase pc = GetParam();
  SsdDevice ssd(kSsdCapacity);
  BufferManagerOptions opt;
  opt.dram_frames = 4;
  opt.nvm_frames = 6;
  opt.policy = MigrationPolicy{pc.dr, pc.dw, pc.nr, pc.nw};
  opt.ssd = &ssd;
  BufferManager bm(opt);
  std::vector<page_id_t> pids;
  for (int i = 0; i < 48; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = g.pid() * 3 + 1;
    ASSERT_TRUE(g.WriteAt(128, sizeof(v), &v).ok());
    pids.push_back(g.pid());
  }
  Xoshiro256 rng(42);
  for (int i = 0; i < 2000; ++i) {
    const page_id_t pid = pids[rng.NextUint64(pids.size())];
    const bool write = rng.Bernoulli(0.3);
    auto r = bm.FetchPage(pid,
                          write ? AccessIntent::kWrite : AccessIntent::kRead);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    PageGuard g = r.MoveValue();
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(128, sizeof(v), &v).ok());
    ASSERT_EQ(v, pid * 3 + 1) << "corruption on page " << pid;
    if (write) {
      ASSERT_TRUE(g.WriteAt(128, sizeof(v), &v).ok());  // idempotent write
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    PolicyLattice, PolicySweepTest,
    ::testing::Values(PolicyCase{1, 1, 1, 1}, PolicyCase{0, 0, 1, 1},
                      PolicyCase{0.01, 0.01, 0.2, 1}, PolicyCase{1, 1, 0, 0},
                      PolicyCase{0.1, 0.1, 0.1, 0.1}, PolicyCase{0, 0, 0, 0},
                      PolicyCase{0.5, 0.5, 0.5, 0.5},
                      PolicyCase{1, 0, 0, 1}, PolicyCase{0, 1, 1, 0}));

}  // namespace
}  // namespace spitfire
