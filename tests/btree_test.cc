#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "index/btree.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    ssd_ = std::make_unique<SsdDevice>(512ull * 1024 * 1024);
    BufferManagerOptions opt;
    opt.dram_frames = 256;
    opt.nvm_frames = 256;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd_.get();
    bm_ = std::make_unique<BufferManager>(opt);
    auto r = BTree::Create(bm_.get());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    tree_.reset(r.value());
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  std::unique_ptr<SsdDevice> ssd_;
  std::unique_ptr<BufferManager> bm_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, InsertAndLookup) {
  ASSERT_TRUE(tree_->Insert(42, 4200).ok());
  uint64_t v = 0;
  ASSERT_TRUE(tree_->Lookup(42, &v).ok());
  EXPECT_EQ(v, 4200u);
}

TEST_F(BTreeTest, LookupMissingReturnsNotFound) {
  uint64_t v;
  EXPECT_TRUE(tree_->Lookup(7, &v).IsNotFound());
}

TEST_F(BTreeTest, DuplicateInsertRejected) {
  ASSERT_TRUE(tree_->Insert(1, 10).ok());
  EXPECT_FALSE(tree_->Insert(1, 20).ok());
  uint64_t v;
  ASSERT_TRUE(tree_->Lookup(1, &v).ok());
  EXPECT_EQ(v, 10u);
}

TEST_F(BTreeTest, UpsertOverwrites) {
  ASSERT_TRUE(tree_->Upsert(1, 10).ok());
  ASSERT_TRUE(tree_->Upsert(1, 20).ok());
  uint64_t v;
  ASSERT_TRUE(tree_->Lookup(1, &v).ok());
  EXPECT_EQ(v, 20u);
}

TEST_F(BTreeTest, RemoveDeletesKey) {
  ASSERT_TRUE(tree_->Insert(5, 50).ok());
  ASSERT_TRUE(tree_->Remove(5).ok());
  uint64_t v;
  EXPECT_TRUE(tree_->Lookup(5, &v).IsNotFound());
  EXPECT_TRUE(tree_->Remove(5).IsNotFound());
}

TEST_F(BTreeTest, ManyKeysSequential) {
  constexpr uint64_t kN = 20000;  // forces multiple leaf and inner splits
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree_->Insert(k, k * 2).ok()) << k;
  }
  EXPECT_GE(tree_->height(), 2u);
  for (uint64_t k = 0; k < kN; ++k) {
    uint64_t v = 0;
    ASSERT_TRUE(tree_->Lookup(k, &v).ok()) << k;
    ASSERT_EQ(v, k * 2);
  }
  auto count = tree_->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), kN);
}

TEST_F(BTreeTest, ManyKeysRandomOrder) {
  constexpr uint64_t kN = 20000;
  std::vector<uint64_t> keys(kN);
  for (uint64_t i = 0; i < kN; ++i) keys[i] = i * 7 + 1;
  Xoshiro256 rng(9);
  for (uint64_t i = kN - 1; i > 0; --i) {
    std::swap(keys[i], keys[rng.NextUint64(i + 1)]);
  }
  for (uint64_t k : keys) ASSERT_TRUE(tree_->Insert(k, k + 1).ok());
  for (uint64_t k : keys) {
    uint64_t v = 0;
    ASSERT_TRUE(tree_->Lookup(k, &v).ok());
    ASSERT_EQ(v, k + 1);
  }
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree_->Insert(k * 3, k).ok());
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(tree_->Scan(300, 600, [&](uint64_t k, uint64_t) {
    seen.push_back(k);
    return true;
  }).ok());
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.front(), 300u);
  EXPECT_EQ(seen.back(), 600u);
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  EXPECT_EQ(seen.size(), 101u);
}

TEST_F(BTreeTest, ScanEarlyTermination) {
  for (uint64_t k = 0; k < 100; ++k) ASSERT_TRUE(tree_->Insert(k, k).ok());
  int visits = 0;
  ASSERT_TRUE(tree_->Scan(0, 99, [&](uint64_t, uint64_t) {
    return ++visits < 10;
  }).ok());
  EXPECT_EQ(visits, 10);
}

TEST_F(BTreeTest, ScanAcrossDeletedKeys) {
  for (uint64_t k = 0; k < 3000; ++k) ASSERT_TRUE(tree_->Insert(k, k).ok());
  for (uint64_t k = 0; k < 3000; k += 2) ASSERT_TRUE(tree_->Remove(k).ok());
  uint64_t count = 0;
  ASSERT_TRUE(tree_->Scan(0, UINT64_MAX, [&](uint64_t k, uint64_t) {
    EXPECT_EQ(k % 2, 1u);
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 1500u);
}

TEST_F(BTreeTest, SurvivesBufferEvictionWithTinyPools) {
  // A tree larger than the buffer: nodes constantly migrate across tiers.
  SsdDevice ssd(512ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 8;
  opt.policy = MigrationPolicy::Lazy();
  opt.ssd = &ssd;
  BufferManager bm(opt);
  auto r = BTree::Create(&bm);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<BTree> tree(r.value());
  constexpr uint64_t kN = 30000;
  for (uint64_t k = 0; k < kN; ++k) {
    ASSERT_TRUE(tree->Insert(k, k ^ 0xF00D).ok()) << k;
  }
  for (uint64_t k = 0; k < kN; k += 17) {
    uint64_t v = 0;
    ASSERT_TRUE(tree->Lookup(k, &v).ok()) << k;
    ASSERT_EQ(v, k ^ 0xF00D);
  }
}

TEST_F(BTreeTest, OpenExistingTree) {
  ASSERT_TRUE(tree_->Insert(77, 770).ok());
  auto r = BTree::Open(bm_.get(), tree_->meta_pid());
  ASSERT_TRUE(r.ok());
  std::unique_ptr<BTree> reopened(r.value());
  uint64_t v = 0;
  ASSERT_TRUE(reopened->Lookup(77, &v).ok());
  EXPECT_EQ(v, 770u);
}

TEST_F(BTreeTest, OpenRejectsNonTreePage) {
  auto pg = bm_->NewPage();
  ASSERT_TRUE(pg.ok());
  auto r = BTree::Open(bm_.get(), pg.value().pid());
  EXPECT_FALSE(r.ok());
}

TEST_F(BTreeTest, ConcurrentInsertsDisjointRanges) {
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 8000;
  std::vector<std::thread> ths;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    ths.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t k = static_cast<uint64_t>(t) * kPerThread + i;
        if (!tree_->Insert(k, k).ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto count = tree_->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), kThreads * kPerThread);
  for (uint64_t k = 0; k < kThreads * kPerThread; k += 101) {
    uint64_t v = 0;
    ASSERT_TRUE(tree_->Lookup(k, &v).ok());
    ASSERT_EQ(v, k);
  }
}

TEST_F(BTreeTest, ConcurrentReadersDuringInserts) {
  for (uint64_t k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree_->Insert(k * 2, k).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> reader_errors{0};
  std::thread writer([&] {
    for (uint64_t k = 0; k < 5000; ++k) {
      if (!tree_->Insert(k * 2 + 1, k).ok()) reader_errors.fetch_add(1);
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&] {
      Xoshiro256 rng(55);
      while (!stop.load()) {
        const uint64_t k = rng.NextUint64(5000) * 2;
        uint64_t v = 0;
        const Status st = tree_->Lookup(k, &v);
        if (!st.ok() || v != k / 2) reader_errors.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(reader_errors.load(), 0);
}

TEST_F(BTreeTest, MixedConcurrentUpserts) {
  // All threads hammer the same small key set with upserts; the tree must
  // stay structurally intact.
  std::vector<std::thread> ths;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    ths.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      for (int i = 0; i < 5000; ++i) {
        const uint64_t k = rng.NextUint64(512);
        if (!tree_->Upsert(k, static_cast<uint64_t>(t)).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& th : ths) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto count = tree_->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_LE(count.value(), 512u);
}

}  // namespace
}  // namespace spitfire
