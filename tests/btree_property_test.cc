// Property-based testing of the B+Tree: long random operation sequences
// (insert / upsert / remove / lookup / scan) checked against a std::map
// reference model, across several buffer configurations.
#include <gtest/gtest.h>

#include <map>

#include "index/btree.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

struct BTreeConfig {
  size_t dram_frames;
  size_t nvm_frames;
  MigrationPolicy policy;
  uint64_t key_space;
  uint64_t seed;
};

class BTreeModelTest : public ::testing::TestWithParam<BTreeConfig> {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }
};

TEST_P(BTreeModelTest, MatchesReferenceModel) {
  const BTreeConfig cfg = GetParam();
  SsdDevice ssd(1ull << 30);
  BufferManagerOptions opt;
  opt.dram_frames = cfg.dram_frames;
  opt.nvm_frames = cfg.nvm_frames;
  opt.policy = cfg.policy;
  opt.ssd = &ssd;
  BufferManager bm(opt);
  auto tree_r = BTree::Create(&bm);
  ASSERT_TRUE(tree_r.ok());
  std::unique_ptr<BTree> tree(tree_r.value());

  std::map<uint64_t, uint64_t> model;
  Xoshiro256 rng(cfg.seed);
  constexpr int kOps = 30000;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t key = rng.NextUint64(cfg.key_space);
    const int op = static_cast<int>(rng.NextUint64(100));
    if (op < 35) {  // insert
      const uint64_t value = rng.Next();
      const Status st = tree->Insert(key, value);
      if (model.count(key)) {
        ASSERT_FALSE(st.ok()) << "dup insert accepted for " << key;
      } else {
        ASSERT_TRUE(st.ok()) << st.ToString();
        model[key] = value;
      }
    } else if (op < 55) {  // upsert
      const uint64_t value = rng.Next();
      ASSERT_TRUE(tree->Upsert(key, value).ok());
      model[key] = value;
    } else if (op < 70) {  // remove
      const Status st = tree->Remove(key);
      if (model.count(key)) {
        ASSERT_TRUE(st.ok());
        model.erase(key);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else if (op < 95) {  // lookup
      uint64_t v = 0;
      const Status st = tree->Lookup(key, &v);
      auto it = model.find(key);
      if (it != model.end()) {
        ASSERT_TRUE(st.ok());
        ASSERT_EQ(v, it->second);
      } else {
        ASSERT_TRUE(st.IsNotFound());
      }
    } else {  // range scan of a random window
      const uint64_t lo = key;
      const uint64_t hi = key + rng.NextUint64(cfg.key_space / 4 + 1);
      std::vector<std::pair<uint64_t, uint64_t>> got;
      ASSERT_TRUE(tree->Scan(lo, hi, [&](uint64_t k, uint64_t v) {
        got.emplace_back(k, v);
        return true;
      }).ok());
      auto it = model.lower_bound(lo);
      size_t idx = 0;
      for (; it != model.end() && it->first <= hi; ++it, ++idx) {
        ASSERT_LT(idx, got.size()) << "scan missed " << it->first;
        ASSERT_EQ(got[idx].first, it->first);
        ASSERT_EQ(got[idx].second, it->second);
      }
      ASSERT_EQ(idx, got.size()) << "scan returned extra entries";
    }
  }
  // Final full comparison.
  auto count = tree->Count();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), model.size());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BTreeModelTest,
    ::testing::Values(
        // Big buffers: pure logic test.
        BTreeConfig{512, 512, MigrationPolicy::Eager(), 4000, 1},
        // Tiny buffers: every op migrates pages across tiers.
        BTreeConfig{8, 8, MigrationPolicy::Eager(), 4000, 2},
        BTreeConfig{8, 8, MigrationPolicy::Lazy(), 4000, 3},
        // Dense small key space: heavy overwrite/remove churn.
        BTreeConfig{64, 64, MigrationPolicy::Lazy(), 300, 4},
        // Wide key space: deep tree with many leaves.
        BTreeConfig{128, 128, MigrationPolicy::Lazy(), 2'000'000, 5},
        // Two-tier hierarchies.
        BTreeConfig{64, 0, MigrationPolicy::Eager(), 4000, 6},
        BTreeConfig{0, 64, MigrationPolicy::Eager(), 4000, 7}));

}  // namespace
}  // namespace spitfire
