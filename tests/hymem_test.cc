#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "buffer/buffer_manager.h"
#include "hymem/cacheline_page.h"
#include "hymem/mini_page.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

TEST(UnitBitmapTest, SetClearTest) {
  UnitBitmap256 bm;
  EXPECT_FALSE(bm.Any());
  bm.Set(0);
  bm.Set(255);
  bm.Set(64);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(255));
  EXPECT_TRUE(bm.Test(64));
  EXPECT_FALSE(bm.Test(1));
  EXPECT_EQ(bm.CountSet(), 3u);
  bm.Clear(64);
  EXPECT_FALSE(bm.Test(64));
  EXPECT_TRUE(bm.TestRange(255, 255));
  EXPECT_FALSE(bm.TestRange(0, 1));
}

TEST(UnitBitmapTest, ResetClearsAll) {
  UnitBitmap256 bm;
  for (size_t i = 0; i < 256; i += 3) bm.Set(i);
  bm.Reset();
  EXPECT_FALSE(bm.Any());
  EXPECT_EQ(bm.CountSet(), 0u);
}

TEST(CacheLineStateTest, UnitGeometry) {
  CacheLineState cl;
  cl.Reset(256);
  EXPECT_EQ(cl.UnitsPerPage(), kPageSize / 256);
  EXPECT_EQ(cl.UnitFor(0), 0u);
  EXPECT_EQ(cl.UnitFor(255), 0u);
  EXPECT_EQ(cl.UnitFor(256), 1u);
  cl.Reset(64);
  EXPECT_EQ(cl.UnitsPerPage(), 256u);
}

TEST(MiniPageTest, LayoutSizes) {
  // One cache-line header plus sixteen units (Figure 2b).
  EXPECT_EQ(MiniPageView::BytesRequired(64), 64u + 16 * 64);
  EXPECT_EQ(MiniPageView::BytesRequired(256), 64u + 16 * 256);
  EXPECT_GE(MiniPageView::PerFrame(64), 15u);
  EXPECT_GE(MiniPageView::PerFrame(256), 3u);
}

TEST(MiniPageTest, InsertFindAndOverflow) {
  std::vector<std::byte> mem(MiniPageView::BytesRequired(256));
  MiniPageView mp(mem.data());
  mp.Format(42, 256);
  EXPECT_EQ(mp.meta()->page_id, 42u);
  EXPECT_EQ(mp.count(), 0u);
  EXPECT_EQ(mp.FindSlot(5), -1);

  for (uint16_t u = 0; u < kMiniPageSlots; ++u) {
    const int slot = mp.Insert(u * 3);
    ASSERT_EQ(slot, static_cast<int>(u));
    std::memset(mp.UnitPtr(static_cast<size_t>(slot)), u, 256);
  }
  EXPECT_TRUE(mp.IsFull());
  EXPECT_EQ(mp.Insert(99), -1);  // overflow → promotion required

  // Lookup maps logical unit to slot, like the slots array in Figure 2b.
  const int slot = mp.FindSlot(9);  // unit 3*3
  ASSERT_GE(slot, 0);
  EXPECT_EQ(static_cast<unsigned char>(*mp.UnitPtr(static_cast<size_t>(slot))),
            3u);
}

TEST(MiniPageTest, DirtyTracking) {
  std::vector<std::byte> mem(MiniPageView::BytesRequired(64));
  MiniPageView mp(mem.data());
  mp.Format(1, 64);
  const int s0 = mp.Insert(10);
  const int s1 = mp.Insert(20);
  EXPECT_FALSE(mp.AnyDirty());
  mp.MarkDirty(static_cast<size_t>(s1));
  EXPECT_TRUE(mp.AnyDirty());
  EXPECT_FALSE(mp.IsDirty(static_cast<size_t>(s0)));
  EXPECT_TRUE(mp.IsDirty(static_cast<size_t>(s1)));
}

// --- integration: fine-grained loading & mini pages through the BM ---

class HymemIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    ssd_ = std::make_unique<SsdDevice>(64ull * 1024 * 1024);
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  std::unique_ptr<BufferManager> Make(bool fine_grained, bool mini,
                                      uint32_t granularity = 256) {
    BufferManagerOptions opt;
    opt.dram_frames = 8;
    opt.nvm_frames = 16;
    opt.policy = MigrationPolicy::Eager();
    opt.enable_fine_grained_loading = fine_grained;
    opt.enable_mini_pages = mini;
    opt.load_granularity = granularity;
    opt.mini_host_frames = 2;
    opt.ssd = ssd_.get();
    return std::make_unique<BufferManager>(opt);
  }

  // Creates pages via an NVM-only manager so they start NVM-resident in a
  // freshly-opened three-tier manager.
  void SeedPages(int n) {
    BufferManagerOptions opt;
    opt.dram_frames = 0;
    opt.nvm_frames = 32;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd_.get();
    BufferManager bm(opt);
    for (int i = 0; i < n; ++i) {
      auto r = bm.NewPage();
      ASSERT_TRUE(r.ok());
      PageGuard g = r.MoveValue();
      for (size_t off = kPageHeaderSize; off + 8 <= kPageSize; off += 512) {
        const uint64_t v = g.pid() * 100000 + off;
        ASSERT_TRUE(g.WriteAt(off, sizeof(v), &v).ok());
      }
    }
    ASSERT_TRUE(bm.FlushAll(true).ok());
  }

  std::unique_ptr<SsdDevice> ssd_;
};

TEST_F(HymemIntegrationTest, FineGrainedLoadsOnlyTouchedUnits) {
  SeedPages(4);
  auto bm = Make(/*fine_grained=*/true, /*mini=*/false);
  bm->SetNextPageId(4);
  // First fetch installs on NVM (Nr=1); second promotes as a
  // cache-line-grained page with zero resident units.
  for (int round = 0; round < 2; ++round) {
    for (page_id_t pid = 0; pid < 4; ++pid) {
      ASSERT_TRUE(bm->FetchPage(pid, AccessIntent::kRead).ok());
    }
  }
  const uint64_t loads_before = bm->stats().Snapshot().fine_grained_loads;
  auto r = bm->FetchPage(0, AccessIntent::kRead);
  ASSERT_TRUE(r.ok());
  PageGuard g = r.MoveValue();
  ASSERT_EQ(g.tier(), Tier::kDram);
  uint64_t v = 0;
  ASSERT_TRUE(g.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
  EXPECT_EQ(v, 0u * 100000 + kPageHeaderSize);
  const uint64_t loads = bm->stats().Snapshot().fine_grained_loads - loads_before;
  // One 256 B unit covers the 8-byte read (plus at most one more for
  // alignment) — far fewer than the 64 units of a full page.
  EXPECT_GE(loads, 1u);
  EXPECT_LE(loads, 2u);
}

TEST_F(HymemIntegrationTest, FineGrainedWritebackPreservesData) {
  SeedPages(8);
  auto bm = Make(true, false);
  bm->SetNextPageId(8);
  // Promote page 0, dirty one unit, then thrash it out of DRAM.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(bm->FetchPage(0, AccessIntent::kWrite).ok());
  }
  {
    auto r = bm->FetchPage(0, AccessIntent::kWrite);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    if (g.tier() == Tier::kDram) {
      const uint64_t v = 0xFEEDFACE;
      ASSERT_TRUE(g.WriteAt(4096, sizeof(v), &v).ok());
    } else {
      const uint64_t v = 0xFEEDFACE;
      ASSERT_TRUE(g.WriteAt(4096, sizeof(v), &v).ok());
    }
  }
  // Evict by touching other pages heavily.
  for (int round = 0; round < 4; ++round) {
    for (page_id_t pid = 1; pid < 8; ++pid) {
      (void)bm->FetchPage(pid, AccessIntent::kWrite);
    }
  }
  auto r = bm->FetchPage(0, AccessIntent::kRead);
  ASSERT_TRUE(r.ok());
  PageGuard g = r.MoveValue();
  uint64_t v = 0;
  ASSERT_TRUE(g.ReadAt(4096, sizeof(v), &v).ok());
  EXPECT_EQ(v, 0xFEEDFACEu);
}

TEST_F(HymemIntegrationTest, MiniPagePromotionOnOverflow) {
  SeedPages(4);
  auto bm = Make(/*fine_grained=*/true, /*mini=*/true);
  bm->SetNextPageId(4);
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(bm->FetchPage(0, AccessIntent::kRead).ok());
  }
  EXPECT_GT(bm->stats().Snapshot().mini_page_admits, 0u);
  // Touch more than sixteen distinct 256 B units → transparent promotion.
  auto r = bm->FetchPage(0, AccessIntent::kRead);
  ASSERT_TRUE(r.ok());
  PageGuard g = r.MoveValue();
  uint64_t v = 0;
  for (size_t off = kPageHeaderSize; off + 8 <= kPageSize; off += 512) {
    ASSERT_TRUE(g.ReadAt(off, sizeof(v), &v).ok());
    ASSERT_EQ(v, 0u * 100000 + off) << off;
  }
  EXPECT_GT(bm->stats().Snapshot().mini_page_promotions, 0u);
}

TEST_F(HymemIntegrationTest, MiniPageDirtyUnitsSurviveEviction) {
  SeedPages(8);
  auto bm = Make(true, true);
  bm->SetNextPageId(8);
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(bm->FetchPage(0, AccessIntent::kWrite).ok());
  }
  {
    auto r = bm->FetchPage(0, AccessIntent::kWrite);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = 0xABCD1234;
    ASSERT_TRUE(g.WriteAt(8192, sizeof(v), &v).ok());
  }
  for (int round = 0; round < 6; ++round) {
    for (page_id_t pid = 1; pid < 8; ++pid) {
      (void)bm->FetchPage(pid, AccessIntent::kWrite);
    }
  }
  auto r = bm->FetchPage(0, AccessIntent::kRead);
  ASSERT_TRUE(r.ok());
  PageGuard g = r.MoveValue();
  uint64_t v = 0;
  ASSERT_TRUE(g.ReadAt(8192, sizeof(v), &v).ok());
  EXPECT_EQ(v, 0xABCD1234u);
}

// Loading granularity sweep (the Figure 11 knob): all granularities must
// preserve data; smaller granularities issue more unit loads.
class GranularityTest : public HymemIntegrationTest,
                        public ::testing::WithParamInterface<uint32_t> {};

TEST_P(GranularityTest, DataIntactAcrossGranularities) {
  const uint32_t gran = GetParam();
  SeedPages(4);
  auto bm = Make(true, false, gran);
  bm->SetNextPageId(4);
  for (int round = 0; round < 3; ++round) {
    for (page_id_t pid = 0; pid < 4; ++pid) {
      auto r = bm->FetchPage(pid, AccessIntent::kRead);
      ASSERT_TRUE(r.ok());
      PageGuard g = r.MoveValue();
      for (size_t off = kPageHeaderSize; off + 8 <= kPageSize; off += 2048) {
        uint64_t v = 0;
        ASSERT_TRUE(g.ReadAt(off, sizeof(v), &v).ok());
        ASSERT_EQ(v, pid * 100000 + off);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(LoadingUnits, GranularityTest,
                         ::testing::Values(64u, 128u, 256u, 512u));

}  // namespace
}  // namespace spitfire
