#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>

#include "storage/perf_model.h"
#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace spitfire {
namespace {

// All tests run a DRAM-only pool far smaller than the working set, so
// buffer misses — and therefore parked continuations — are the common
// case rather than a corner.
constexpr size_t kPoolFrames = 64;
constexpr size_t kTupleBytes = 1000;  // ~15 slots per 16 KB page

class InterleavedTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  static DatabaseOptions Opts() {
    DatabaseOptions opts;
    opts.dram_frames = kPoolFrames;
    opts.nvm_frames = 0;
    opts.num_shards = 1;
    opts.policy = MigrationPolicy::Lazy();
    opts.ssd_capacity = 512ull * 1024 * 1024;
    opts.enable_wal = false;
    return opts;
  }
};

// A transaction machine with an externally observable effect: read a
// counter tuple, write back counter+1, commit. Phases follow the
// interleaving contract — reads first, exactly one write, and the write
// buffer is recomputed from the read snapshot on every attempt, so a
// phase re-run after a parked miss can never double-increment.
class IncrementMachine : public TxnMachine {
 public:
  IncrementMachine(Database* db, Table* table) : db_(db), table_(table) {}

  void SetKey(uint64_t key) { next_key_ = key; }

  Status Step(Xoshiro256& /*rng*/, FetchContext* ctx) override {
    if (txn_ == nullptr) {
      txn_ = db_->Begin();
      phase_ = Phase::kRead;
      key_ = next_key_;
    }
    txn_->fetch_ctx = ctx;
    for (;;) {
      switch (phase_) {
        case Phase::kRead: {
          const Status st = table_->Read(txn_.get(), key_, buf_);
          if (st.IsWouldBlock()) return st;
          if (!st.ok()) return Finish(st);
          phase_ = Phase::kWrite;
          break;
        }
        case Phase::kWrite: {
          // Recompute, don't accumulate: a parked attempt already wrote
          // nothing, and the next attempt starts from buf_ again.
          std::byte wbuf[kTupleBytes];
          std::memcpy(wbuf, buf_, sizeof(wbuf));
          uint64_t v = 0;
          std::memcpy(&v, buf_, sizeof(v));
          ++v;
          std::memcpy(wbuf, &v, sizeof(v));
          const Status st = table_->Update(txn_.get(), key_, wbuf);
          if (st.IsWouldBlock()) return st;
          if (!st.ok()) return Finish(st);
          phase_ = Phase::kCommit;
          break;
        }
        case Phase::kCommit:
          return Finish(Status::OK());
      }
    }
  }

  void Cancel() override {
    if (txn_ == nullptr) return;
    txn_->fetch_ctx = nullptr;
    (void)db_->Abort(txn_.get());
    txn_.reset();
  }

  bool in_flight() const override { return txn_ != nullptr; }

 private:
  enum class Phase : uint8_t { kRead, kWrite, kCommit };

  Status Finish(const Status& st) {
    txn_->fetch_ctx = nullptr;
    Status out = st;
    if (st.ok()) {
      out = db_->Commit(txn_.get());
    } else {
      (void)db_->Abort(txn_.get());
      if (!out.IsAborted()) out = Status::Aborted(out.ToString());
    }
    txn_.reset();
    return out;
  }

  Database* db_;
  Table* table_;
  std::unique_ptr<Transaction> txn_;
  Phase phase_ = Phase::kRead;
  uint64_t key_ = 0;
  uint64_t next_key_ = 0;
  std::byte buf_[kTupleBytes];
};

// Shared fixture state for the counter table. Each transaction under test
// gets its OWN heap page (keys strided one per page, each touched only
// when its transaction runs): a page accessed once sits in the 2Q
// replacer's probationary FIFO, where a churn sweep evicts it
// deterministically — repeatedly-touched pages would get promoted into
// the protected segment and (by design) survive scans, which would make
// re-eviction between park and resume a coin flip. Keys [kChurnLo,
// kChurnHi) are eviction fodder spanning more heap pages than the pool
// has frames.
constexpr uint32_t kCounterTable = 7;
constexpr uint64_t kSlotsPerPage = 15;  // 1000 B tuples in 16 KB pages
constexpr uint64_t kIncTxns = 24;
constexpr uint64_t kIncKeySpan = kIncTxns * kSlotsPerPage;
constexpr uint64_t kChurnLo = 1000;
constexpr uint64_t kChurnHi = 3000;

// The counter key for transaction i: first slot of its own heap page.
constexpr uint64_t IncKey(uint64_t i) { return i * kSlotsPerPage; }

class CounterTableTest : public InterleavedTest {
 protected:
  void SetUp() override {
    InterleavedTest::SetUp();
    // At scale 0 the simulated device completes reads inline at submit
    // time and nothing ever parks; keep a sliver of latency so misses
    // genuinely queue and the continuation machinery is exercised.
    LatencySimulator::SetScale(0.25);
    db_ = Database::Create(Opts()).MoveValue();
    table_ = db_->CreateTable(kCounterTable, kTupleBytes).MoveValue();
    std::byte zero[kTupleBytes] = {};
    auto load = [&](uint64_t lo, uint64_t hi) {
      for (uint64_t k = lo; k < hi; k += 100) {
        auto txn = db_->Begin();
        for (uint64_t i = k; i < std::min(hi, k + 100); ++i) {
          ASSERT_TRUE(table_->Insert(txn.get(), i, zero).ok()) << i;
        }
        ASSERT_TRUE(db_->Commit(txn.get()).ok());
      }
    };
    load(0, kIncKeySpan);
    load(kChurnLo, kChurnHi);
    ASSERT_EQ(table_->slots_per_page(), kSlotsPerPage);
    // Writes staged in the I/O scheduler serve later reads inline (no
    // device trip, no park); drain so cold reads genuinely queue.
    ASSERT_TRUE(db_->buffer_manager()->DrainIo().ok());
    // Sequential read-ahead would prefetch the NEXT transaction's counter
    // page while servicing this one's miss, silently turning later parks
    // into hits; these tests need each miss to stand on its own.
    db_->buffer_manager()->SetReadAheadPages(0);
  }

  // Cycles more one-touch pages through the pool than the probationary
  // FIFO holds. A freshly (re)installed page a parked transaction waits
  // on is probationary — exactly what this sweep evicts; hot pages in
  // the protected segment rightly survive (scan resistance), which is
  // why the counter pages must never become hot (see above).
  void ChurnPool() {
    const uint64_t step = table_->slots_per_page();
    auto txn = db_->Begin();
    std::byte buf[kTupleBytes];
    for (uint64_t k = kChurnLo; k < kChurnHi; k += step) {
      ASSERT_TRUE(table_->Read(txn.get(), k, buf).ok()) << k;
    }
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
    // Evictions staged writes for the dirtied pages; drain them so the
    // evicted pages' next reads go to the device instead of the staging
    // table.
    ASSERT_TRUE(db_->buffer_manager()->DrainIo().ok());
  }

  uint64_t CounterValue(uint64_t key) {
    auto txn = db_->Begin();
    std::byte buf[kTupleBytes];
    EXPECT_TRUE(table_->Read(txn.get(), key, buf).ok()) << key;
    EXPECT_TRUE(db_->Commit(txn.get()).ok());
    uint64_t v = 0;
    std::memcpy(&v, buf, sizeof(v));
    return v;
  }

  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(CounterTableTest, ExactlyOnceWhenWaitedOnPageIsReEvicted) {
  BufferManager* bm = db_->buffer_manager();
  IncrementMachine m(db_.get(), table_);
  FetchContext ctx;
  Xoshiro256 rng(11);

  int parks = 0;
  int re_evicted_resumes = 0;  // txns that parked again after a churn
  for (uint64_t i = 0; i < kIncTxns; ++i) {
    m.SetKey(IncKey(i));
    // Evict this transaction's counter page (and anything a predecessor
    // dragged in) so the first step deterministically parks.
    ChurnPool();
    bool churned = false;
    int parks_this_txn = 0;
    for (;;) {
      const Status st = m.Step(rng, &ctx);
      if (st.ok()) break;
      ASSERT_TRUE(st.IsWouldBlock()) << st.ToString();
      ++parks;
      ++parks_this_txn;
      ASSERT_TRUE(ctx.pending());
      while (!ctx.ready()) (void)bm->PumpIo(/*may_sleep=*/true);
      (void)ctx.Harvest();
      if (!churned) {
        // The adversarial schedule: the page the transaction waited for
        // just landed (and its completion pin was dropped) — evict it
        // again before the transaction gets to resume.
        ChurnPool();
        churned = true;
      } else if (parks_this_txn >= 2) {
        re_evicted_resumes = std::max(re_evicted_resumes, parks_this_txn);
      }
    }
    ASSERT_FALSE(m.in_flight());
  }
  // The schedule must actually have exercised parking, and at least one
  // resume must have found its page re-evicted (parked a second time).
  EXPECT_GT(parks, 0);
  EXPECT_GE(re_evicted_resumes, 2);

  // Exactly-once: every committed increment is visible exactly once, no
  // matter how many times its transaction parked and restarted.
  for (uint64_t i = 0; i < kIncTxns; ++i) {
    EXPECT_EQ(CounterValue(IncKey(i)), 1u) << "key " << IncKey(i);
  }
}

TEST_F(CounterTableTest, AbortingParkedTxnReleasesTicketWithoutLeak) {
  BufferManager* bm = db_->buffer_manager();
  IncrementMachine m(db_.get(), table_);
  FetchContext ctx;
  Xoshiro256 rng(13);

  auto PinnedFrames = [&]() -> uint32_t {
    return bm->DebugDramCensus().pinned;
  };
  // Quiesce, then baseline. The background writer may hold a transient
  // pin at any instant, so waiting-for-stable beats a one-shot census.
  auto WaitPinned = [&](uint32_t want) {
    for (int i = 0; i < 10000 && PinnedFrames() != want; ++i) {
      (void)bm->PumpIo(/*may_sleep=*/true);
    }
    return PinnedFrames();
  };
  const uint32_t baseline = WaitPinned(0);

  // Park a transaction mid-traversal on a cold page.
  bool parked = false;
  uint64_t parked_key = 0;
  for (uint64_t i = 0; i < kIncTxns && !parked; ++i) {
    ChurnPool();
    m.SetKey(IncKey(i));
    const Status st = m.Step(rng, &ctx);
    if (st.IsWouldBlock()) {
      parked = true;
      parked_key = IncKey(i);
      break;
    }
    // A step that never parked ran to commit; try the next key. (Its
    // increment is on a key the final check below does not reuse.)
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(parked) << "no step parked; pool too large for the test?";
  ASSERT_TRUE(ctx.pending());
  ASSERT_TRUE(m.in_flight());

  // Abort path: drain the in-flight ticket, then cancel the transaction.
  ctx.CancelSync(bm);
  m.Cancel();
  EXPECT_FALSE(ctx.pending());
  EXPECT_FALSE(m.in_flight());

  // No pinned frame may outlive the cancelled continuation.
  EXPECT_EQ(WaitPinned(baseline), baseline);

  // The aborted attempt left no effect behind...
  EXPECT_EQ(CounterValue(parked_key), 0u);

  // ...and the context and machine are reusable after the abort: rerun
  // the same key to completion and see exactly one increment.
  m.SetKey(parked_key);
  for (;;) {
    const Status st = m.Step(rng, &ctx);
    if (st.ok()) break;
    ASSERT_TRUE(st.IsWouldBlock()) << st.ToString();
    while (!ctx.ready()) (void)bm->PumpIo(/*may_sleep=*/true);
    (void)ctx.Harvest();
  }
  EXPECT_EQ(CounterValue(parked_key), 1u);
}

TEST_F(InterleavedTest, RunInterleavedYcsbCommitsUnderSpill) {
  auto db = Database::Create(Opts()).MoveValue();
  YcsbConfig cfg = YcsbConfig::Balanced(4000);  // ~270 pages vs 64 frames
  YcsbWorkload ycsb(db.get(), cfg);
  ASSERT_TRUE(ycsb.Load().ok());

  DriverResult res = WorkloadDriver::RunInterleaved(
      db->buffer_manager(), 2, 0.4, /*ring_depth=*/8,
      [&] { return std::make_unique<YcsbTxnMachine>(&ycsb); });
  EXPECT_GT(res.committed, 50u);
  EXPECT_LT(res.AbortRate(), 0.5);
  EXPECT_EQ(res.latency_ns.count(), res.committed + res.aborted);
}

TEST_F(InterleavedTest, RunInterleavedRingDepthOneStillCorrect) {
  auto db = Database::Create(Opts()).MoveValue();
  YcsbWorkload ycsb(db.get(), YcsbConfig::Balanced(2000));
  ASSERT_TRUE(ycsb.Load().ok());

  DriverResult res = WorkloadDriver::RunInterleaved(
      db->buffer_manager(), 1, 0.3, /*ring_depth=*/1,
      [&] { return std::make_unique<YcsbTxnMachine>(&ycsb); });
  EXPECT_GT(res.committed, 20u);
}

TEST_F(InterleavedTest, RunInterleavedTpccKeepsMoneyConsistent) {
  auto db = Database::Create(Opts()).MoveValue();
  TpccConfig cfg;
  cfg.num_warehouses = 1;
  cfg.customers_per_district = 30;
  cfg.num_items = 200;
  TpccWorkload tpcc(db.get(), cfg);
  ASSERT_TRUE(tpcc.Load().ok());

  DriverResult res = WorkloadDriver::RunInterleaved(
      db->buffer_manager(), 2, 0.4, /*ring_depth=*/4,
      [&] { return std::make_unique<TpccTxnMachine>(&tpcc); });
  EXPECT_GT(res.committed, 10u);

  // PAYMENT adds its amount to both the warehouse and the district YTD in
  // one transaction; both start at 300,000 per warehouse. A phase that
  // double-applied after a parked resume would break this equality.
  auto txn = db->Begin();
  TpccWorkload::WarehouseTuple wt{};
  ASSERT_TRUE(db->GetTable(TpccWorkload::kWarehouse)
                  ->Read(txn.get(), TpccWorkload::WarehouseKey(1), &wt)
                  .ok());
  double district_ytd = 0;
  for (uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
    TpccWorkload::DistrictTuple dt{};
    ASSERT_TRUE(db->GetTable(TpccWorkload::kDistrict)
                    ->Read(txn.get(), TpccWorkload::DistrictKey(1, d), &dt)
                    .ok());
    district_ytd += dt.ytd;
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
  EXPECT_NEAR(wt.ytd, district_ytd, 1e-6);
}

}  // namespace
}  // namespace spitfire
