#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "buffer/page.h"
#include "common/random.h"
#include "storage/io_scheduler.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

constexpr uint64_t kSsdCapacity = 64ull * 1024 * 1024;

class IoSchedulerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    ssd_ = std::make_unique<SsdDevice>(kSsdCapacity);
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  // Writes `n` formatted, stamped pages directly onto the SSD device, so
  // a fresh BufferManager sees them as cold.
  void SeedColdPages(int n) {
    std::vector<std::byte> buf(kPageSize);
    for (int i = 0; i < n; ++i) {
      PageView(buf.data()).Format(i, /*page_type=*/0);
      const uint64_t stamp = Stamp(i);
      std::memcpy(buf.data() + kPageHeaderSize, &stamp, sizeof(stamp));
      ASSERT_TRUE(ssd_->Write(i * kPageSize, buf.data(), kPageSize).ok());
    }
    ssd_->stats().Reset();
  }

  static uint64_t Stamp(page_id_t pid) { return 0xC0FFEE0000ull + pid; }

  // Full-page uniform stamp used by the torn-read checks.
  static void FillStamp(std::byte* page, uint64_t stamp) {
    for (size_t i = 0; i < kPageSize; i += sizeof(stamp)) {
      std::memcpy(page + i, &stamp, sizeof(stamp));
    }
  }
  static bool IsUniform(const std::byte* page) {
    uint64_t first = 0;
    std::memcpy(&first, page, sizeof(first));
    for (size_t i = sizeof(first); i < kPageSize; i += sizeof(first)) {
      uint64_t v = 0;
      std::memcpy(&v, page + i, sizeof(v));
      if (v != first) return false;
    }
    return true;
  }

  std::unique_ptr<SsdDevice> ssd_;
};

// The satellite miss-storm test: M threads fetch the same cold page at a
// large simulated device latency, so every thread arrives while the read
// is in flight. Single-flight dedup must issue exactly ONE device read,
// and every reader must observe the same (correct) bytes.
TEST_F(IoSchedulerTest, MissStormIssuesOneDeviceRead) {
  SeedColdPages(4);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 8;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = ssd_.get();
  BufferManager bm(opt);
  bm.SetNextPageId(4);

  // ~24 ms per simulated SSD read: long enough that all threads pile onto
  // the flight even on a single-core machine.
  LatencySimulator::SetScale(2000.0);

  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> ths;
  for (int t = 0; t < kThreads; ++t) {
    ths.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      auto r = bm.FetchPage(2, AccessIntent::kRead);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      PageGuard g = r.MoveValue();
      uint64_t v = 0;
      ASSERT_TRUE(g.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
      EXPECT_EQ(v, Stamp(2));
      ok.fetch_add(1);
    });
  }
  for (auto& th : ths) th.join();
  LatencySimulator::SetScale(0.0);

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(ssd_->stats().num_reads.load(), 1u);
  EXPECT_GE(bm.io_scheduler()->stats().reads_deduped.load(), 1u);
}

TEST_F(IoSchedulerTest, ReadOfStagedWriteSeesNewBytesBeforeDeviceWrite) {
  IoSchedulerOptions opts;
  opts.coalesce_window_us = 1000 * 1000;  // park staged writes
  IoScheduler io(ssd_.get(), opts);

  std::vector<std::byte> page(kPageSize);
  FillStamp(page.data(), 0xAB);
  ASSERT_TRUE(io.WritePage(0, page.data()).ok());
  EXPECT_NE(io.WriteSeq(0), 0u);

  // The device has not been written yet; the read must come from the
  // staged image, with the matching sequence.
  std::vector<std::byte> got(kPageSize);
  uint64_t seq = 0;
  ASSERT_TRUE(io.ReadPage(0, got.data(), &seq).ok());
  EXPECT_EQ(ssd_->stats().num_writes.load(), 0u);
  EXPECT_EQ(ssd_->stats().num_reads.load(), 0u);
  EXPECT_EQ(seq, io.WriteSeq(0));
  EXPECT_EQ(std::memcmp(got.data(), page.data(), kPageSize), 0);
  EXPECT_GE(io.stats().reads_from_staged.load(), 1u);

  ASSERT_TRUE(io.Drain().ok());
  EXPECT_EQ(ssd_->stats().num_writes.load(), 1u);
  std::vector<std::byte> on_disk(kPageSize);
  ASSERT_TRUE(ssd_->Read(0, on_disk.data(), kPageSize).ok());
  EXPECT_EQ(std::memcmp(on_disk.data(), page.data(), kPageSize), 0);
}

TEST_F(IoSchedulerTest, AdjacentWritesCoalesceIntoOneDeviceOp) {
  IoSchedulerOptions opts;
  opts.max_coalesce_pages = 8;
  opts.coalesce_window_us = 1000 * 1000;  // wait for the full batch
  IoScheduler io(ssd_.get(), opts);

  std::vector<std::byte> page(kPageSize);
  for (uint64_t i = 0; i < 8; ++i) {
    FillStamp(page.data(), 0x1000 + i);
    ASSERT_TRUE(io.WritePage(i * kPageSize, page.data()).ok());
  }
  ASSERT_TRUE(io.Drain().ok());

  EXPECT_EQ(io.stats().write_ops.load(), 1u);
  EXPECT_EQ(io.stats().writes_coalesced.load(), 7u);
  EXPECT_EQ(ssd_->stats().num_writes.load(), 1u);
  for (uint64_t i = 0; i < 8; ++i) {
    std::vector<std::byte> got(kPageSize);
    ASSERT_TRUE(ssd_->Read(i * kPageSize, got.data(), kPageSize).ok());
    uint64_t v = 0;
    std::memcpy(&v, got.data(), sizeof(v));
    EXPECT_EQ(v, 0x1000 + i);
    EXPECT_TRUE(IsUniform(got.data()));
  }
}

TEST_F(IoSchedulerTest, LastWriterWinsWhileQueued) {
  IoSchedulerOptions opts;
  opts.coalesce_window_us = 1000 * 1000;
  IoScheduler io(ssd_.get(), opts);

  std::vector<std::byte> page(kPageSize);
  FillStamp(page.data(), 0xAAAA);
  ASSERT_TRUE(io.WritePage(0, page.data()).ok());
  const uint64_t seq1 = io.WriteSeq(0);
  FillStamp(page.data(), 0xBBBB);
  ASSERT_TRUE(io.WritePage(0, page.data()).ok());
  EXPECT_GT(io.WriteSeq(0), seq1);  // superseded reads must re-validate

  ASSERT_TRUE(io.Drain().ok());
  EXPECT_EQ(ssd_->stats().num_writes.load(), 1u);  // one op, newest image
  std::vector<std::byte> got(kPageSize);
  ASSERT_TRUE(ssd_->Read(0, got.data(), kPageSize).ok());
  uint64_t v = 0;
  std::memcpy(&v, got.data(), sizeof(v));
  EXPECT_EQ(v, 0xBBBBu);
}

// Concurrent readers, writers, and a drainer on a small offset set. Every
// page image is a full-page uniform stamp, so any torn read (mixed bytes
// from two writes) is detected immediately. Exercised under TSan via the
// `sync` label.
TEST_F(IoSchedulerTest, ConcurrentReadWriteStressNoTornPages) {
  IoSchedulerOptions opts;
  opts.num_workers = 2;
  opts.coalesce_window_us = 10;
  IoScheduler io(ssd_.get(), opts);

  constexpr int kOffsets = 4;
  constexpr int kWriters = 3;
  constexpr int kIters = 300;
  std::atomic<bool> stop{false};

  std::vector<std::thread> ths;
  for (int t = 0; t < kWriters; ++t) {
    ths.emplace_back([&, t] {
      std::vector<std::byte> page(kPageSize);
      for (int i = 0; i < kIters; ++i) {
        const uint64_t stamp =
            (static_cast<uint64_t>(t + 1) << 32) | (i + 1);
        FillStamp(page.data(), stamp);
        ASSERT_TRUE(
            io.WritePage((i % kOffsets) * kPageSize, page.data()).ok());
      }
    });
  }
  ths.emplace_back([&] {  // reader
    std::vector<std::byte> page(kPageSize);
    uint64_t seq;
    int i = 0;
    while (!stop.load()) {
      ASSERT_TRUE(
          io.ReadPage((i++ % kOffsets) * kPageSize, page.data(), &seq).ok());
      ASSERT_TRUE(IsUniform(page.data()));
    }
  });
  ths.emplace_back([&] {  // drainer
    while (!stop.load()) {
      ASSERT_TRUE(io.Drain().ok());
      std::this_thread::yield();
    }
  });
  for (int t = 0; t < kWriters; ++t) ths[t].join();
  stop.store(true);
  for (size_t t = kWriters; t < ths.size(); ++t) ths[t].join();

  ASSERT_TRUE(io.Drain().ok());
  for (int i = 0; i < kOffsets; ++i) {
    std::vector<std::byte> got(kPageSize);
    ASSERT_TRUE(ssd_->Read(i * kPageSize, got.data(), kPageSize).ok());
    EXPECT_TRUE(IsUniform(got.data()));
  }
}

TEST_F(IoSchedulerTest, SequentialMissesTriggerReadAhead) {
  SeedColdPages(16);
  BufferManagerOptions opt;
  opt.dram_frames = 32;
  opt.nvm_frames = 0;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = ssd_.get();
  opt.io_scheduler.read_ahead_pages = 4;
  BufferManager bm(opt);
  bm.SetNextPageId(16);

  // Two sequential misses arm the prefetcher for pages 2..5.
  for (page_id_t pid = 0; pid < 2; ++pid) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (bm.stats().Snapshot().read_ahead_installs == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  ASSERT_GE(bm.stats().Snapshot().read_ahead_installs, 1u);

  // The prefetched page is served without another device read.
  const uint64_t reads_before = ssd_->stats().num_reads.load();
  auto r = bm.FetchPage(2, AccessIntent::kRead);
  ASSERT_TRUE(r.ok());
  PageGuard g = r.MoveValue();
  uint64_t v = 0;
  ASSERT_TRUE(g.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
  EXPECT_EQ(v, Stamp(2));
  EXPECT_EQ(ssd_->stats().num_reads.load(), reads_before);
}

// --- Asynchronous miss path: descriptor state machine ----------------------

// A submitted miss leaves the worker in control (kQueuedLeader), and the
// continuation fires exactly once: one miss submit, one device read, one
// ready transition, bytes correct.
TEST_F(IoSchedulerTest, AsyncSubmitFiresContinuationExactlyOnce) {
  SeedColdPages(4);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 0;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = ssd_.get();
  BufferManager bm(opt);
  bm.SetNextPageId(4);

  // ~12 ms per read: the submission returns long before completion.
  LatencySimulator::SetScale(1000.0);
  FetchTicket t;
  const FetchSubmit s = bm.SubmitFetch(2, AccessIntent::kRead, &t);
  ASSERT_EQ(s, FetchSubmit::kQueuedLeader);
  EXPECT_FALSE(t.ready.load(std::memory_order_acquire));

  while (!t.ready.load(std::memory_order_acquire)) {
    bm.PumpIo(/*may_sleep=*/false);
  }
  LatencySimulator::SetScale(0.0);

  ASSERT_TRUE(t.status.ok()) << t.status.ToString();
  uint64_t v = 0;
  ASSERT_TRUE(t.guard.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
  EXPECT_EQ(v, Stamp(2));
  EXPECT_EQ(ssd_->stats().num_reads.load(), 1u);
  const auto snap = bm.stats().Snapshot();
  EXPECT_EQ(snap.miss_submits, 1u);
  EXPECT_EQ(snap.miss_joins, 0u);

  // Pumping again must not re-fire anything into the (completed) ticket.
  t.guard.Release();
  bm.PumpIo(/*may_sleep=*/false);
  EXPECT_EQ(bm.stats().Snapshot().miss_submits, 1u);
}

// N concurrent submitters on one cold page: exactly one leads, the rest
// join the in-flight read or hit the installed copy — one device read,
// every ticket completed with the same bytes.
TEST_F(IoSchedulerTest, ConcurrentSubmitsJoinSingleFlight) {
  SeedColdPages(4);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 8;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = ssd_.get();
  BufferManager bm(opt);
  bm.SetNextPageId(4);

  LatencySimulator::SetScale(2000.0);
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::atomic<int> ok{0};
  std::vector<std::thread> ths;
  for (int i = 0; i < kThreads; ++i) {
    ths.emplace_back([&] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      FetchTicket t;
      (void)bm.SubmitFetch(2, AccessIntent::kRead, &t);
      while (!t.ready.load(std::memory_order_acquire)) {
        bm.PumpIo(/*may_sleep=*/false);
      }
      ASSERT_TRUE(t.status.ok()) << t.status.ToString();
      uint64_t v = 0;
      ASSERT_TRUE(t.guard.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
      EXPECT_EQ(v, Stamp(2));
      ok.fetch_add(1);
    });
  }
  for (auto& th : ths) th.join();
  LatencySimulator::SetScale(0.0);

  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(ssd_->stats().num_reads.load(), 1u);
  const auto snap = bm.stats().Snapshot();
  EXPECT_EQ(snap.miss_submits, 1u);
  // Everyone who did not lead either joined the flight or hit the
  // installed copy; accounting must cover all eight fetches exactly once.
  EXPECT_EQ(snap.dram_hits + snap.nvm_hits + snap.ssd_fetches,
            static_cast<uint64_t>(kThreads));
}

// Destroying the buffer manager with submitted-but-unharvested tickets:
// the scheduler's shutdown drain fires the leftover completions early and
// the tear-down path must resolve every ticket (Busy, no guard) instead
// of installing into freed pools — tickets safely outlive the manager.
TEST_F(IoSchedulerTest, ShutdownResolvesInflightTickets) {
  SeedColdPages(16);
  std::vector<FetchTicket> tickets(6);
  {
    BufferManagerOptions opt;
    opt.dram_frames = 16;
    opt.nvm_frames = 0;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd_.get();
    BufferManager bm(opt);
    bm.SetNextPageId(16);

    // ~24 ms per read, and strided pids so read-ahead stays unarmed: the
    // destructor runs long before any flight's deadline.
    LatencySimulator::SetScale(2000.0);
    for (size_t i = 0; i < tickets.size(); ++i) {
      (void)bm.SubmitFetch(static_cast<page_id_t>(i * 2), AccessIntent::kRead,
                           &tickets[i]);
    }
    // bm destructs here with the reads still in (simulated) flight.
  }
  LatencySimulator::SetScale(0.0);
  for (auto& t : tickets) {
    EXPECT_TRUE(t.ready.load(std::memory_order_acquire));
    // Installing during tear-down would hand out guards that dangle once
    // the pools are freed; the contract fails the ticket instead.
    EXPECT_TRUE(t.status.IsBusy()) << t.status.ToString();
    EXPECT_FALSE(t.guard.valid());
  }
}

// A read-ahead window install racing synchronous waiters on the same
// pages: scanners chase a sequential front (arming prefetch) while a
// second thread fetches pages inside the upcoming window. Every fetch
// must return the page's own bytes regardless of who installed it.
TEST_F(IoSchedulerTest, ReadAheadInstallRacesSynchronousWaiter) {
  constexpr int kPages = 64;
  SeedColdPages(kPages);
  BufferManagerOptions opt;
  opt.dram_frames = 96;
  opt.nvm_frames = 0;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = ssd_.get();
  opt.io_scheduler.read_ahead_pages = 8;
  BufferManager bm(opt);
  bm.SetNextPageId(kPages);

  LatencySimulator::SetScale(50.0);
  std::atomic<int> front{0};
  std::atomic<int> errors{0};
  std::thread scanner([&] {
    for (int pid = 0; pid < kPages; ++pid) {
      auto r = bm.FetchPage(pid, AccessIntent::kRead);
      if (!r.ok()) {
        errors.fetch_add(1);
        continue;
      }
      uint64_t v = 0;
      if (!r.value().ReadAt(kPageHeaderSize, sizeof(v), &v).ok() ||
          v != Stamp(pid)) {
        errors.fetch_add(1);
      }
      front.store(pid, std::memory_order_release);
    }
  });
  std::thread chaser([&] {
    Xoshiro256 rng(42);
    while (front.load(std::memory_order_acquire) < kPages - 1) {
      // Aim just ahead of the scan front — where read-ahead installs land.
      const int base = front.load(std::memory_order_acquire);
      const page_id_t pid = static_cast<page_id_t>(
          std::min<int>(base + 1 + static_cast<int>(rng.NextUint64(8)),
                        kPages - 1));
      auto r = bm.FetchPage(pid, AccessIntent::kRead);
      if (!r.ok()) continue;  // Busy under churn is legal; wrong bytes are not
      uint64_t v = 0;
      if (!r.value().ReadAt(kPageHeaderSize, sizeof(v), &v).ok() ||
          v != Stamp(pid)) {
        errors.fetch_add(1);
      }
    }
  });
  scanner.join();
  chaser.join();
  LatencySimulator::SetScale(0.0);
  EXPECT_EQ(errors.load(), 0);
}

// The scheduler-off configuration is the seed behavior; everything must
// still work (and the scheduler accessor reports null).
TEST_F(IoSchedulerTest, DisabledSchedulerFallsBackToSyncIo) {
  SeedColdPages(8);
  BufferManagerOptions opt;
  opt.dram_frames = 4;
  opt.nvm_frames = 4;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = ssd_.get();
  opt.enable_io_scheduler = false;
  BufferManager bm(opt);
  bm.SetNextPageId(8);
  EXPECT_EQ(bm.io_scheduler(), nullptr);

  for (page_id_t pid = 0; pid < 8; ++pid) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    PageGuard g = r.MoveValue();
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(kPageHeaderSize, sizeof(v), &v).ok());
    EXPECT_EQ(v, Stamp(pid));
  }
  ASSERT_TRUE(bm.FlushAll(true).ok());
}

}  // namespace
}  // namespace spitfire
