// Stress tests: high-contention combinations of fetch, promotion,
// eviction, policy churn, and flushing on tiny pools — the configurations
// where latching bugs surface.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }
};

TEST_F(StressTest, FetchEvictPromoteWithPolicyChurn) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 24;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = &ssd;
  BufferManager bm(opt);

  constexpr int kPages = 256;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = g.pid();
    ASSERT_TRUE(g.WriteAt(64, sizeof(v), &v).ok());
    pids.push_back(g.pid());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t * 31 + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        const bool write = rng.Bernoulli(0.4);
        auto r = bm.FetchPage(
            pid, write ? AccessIntent::kWrite : AccessIntent::kRead);
        if (!r.ok()) {
          fprintf(stderr, "fetch error: %s\n", r.status().ToString().c_str());
          errors.fetch_add(1);
          continue;
        }
        PageGuard g = r.MoveValue();
        // The stamp at offset 64 is immutable after setup; writes land in
        // a per-thread slot (the buffer manager does not serialize page
        // contents between guard holders — upper layers do).
        uint64_t v = 0;
        if (!g.ReadAt(64, sizeof(v), &v).ok() || v != pid) {
          fprintf(stderr, "data error pid=%llu got=%llu\n",
                  (unsigned long long)pid, (unsigned long long)v);
          errors.fetch_add(1);
        }
        if (write &&
            !g.WriteAt(128 + static_cast<size_t>(t) * 8, sizeof(v), &v)
                 .ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Policy churner: swaps the live policy constantly, like the tuner.
  std::thread churner([&] {
    Xoshiro256 rng(999);
    const double lattice[] = {0.0, 0.01, 0.1, 0.5, 1.0};
    while (!stop.load(std::memory_order_relaxed)) {
      MigrationPolicy p{lattice[rng.NextUint64(5)], lattice[rng.NextUint64(5)],
                        lattice[rng.NextUint64(5)],
                        lattice[rng.NextUint64(5)]};
      bm.SetPolicy(p);
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(8));
  stop.store(true);
  for (auto& w : workers) w.join();
  churner.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(StressTest, ConcurrentFlushDuringTraffic) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 16;
  opt.policy = MigrationPolicy::Lazy();
  opt.ssd = &ssd;
  BufferManager bm(opt);

  constexpr int kPages = 128;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = g.pid() * 7;
    ASSERT_TRUE(g.WriteAt(128, sizeof(v), &v).ok());
    pids.push_back(g.pid());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t + 77);
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        auto r = bm.FetchPage(pid, AccessIntent::kWrite);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        PageGuard g = r.MoveValue();
        const uint64_t v = pid * 7;
        // Per-thread write slots; see the comment in the test above.
        if (!g.WriteAt(256 + static_cast<size_t>(t) * 8, sizeof(v), &v).ok()) {
          errors.fetch_add(1);
        }
        uint64_t check = 0;
        if (!g.ReadAt(128, sizeof(check), &check).ok() || check != v) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Background flusher, like the checkpointer thread.
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)bm.FlushAll(/*include_nvm=*/false);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::this_thread::sleep_for(std::chrono::seconds(6));
  stop.store(true);
  for (auto& w : workers) w.join();
  flusher.join();
  EXPECT_EQ(errors.load(), 0);

  for (page_id_t pid : pids) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(128, sizeof(v), &v).ok());
    ASSERT_EQ(v, pid * 7);
  }
}

TEST_F(StressTest, FineGrainedAndMiniUnderConcurrency) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 12;
  opt.nvm_frames = 32;
  opt.policy = MigrationPolicy::Eager();
  opt.enable_fine_grained_loading = true;
  opt.enable_mini_pages = true;
  opt.mini_host_frames = 4;
  opt.ssd = &ssd;
  BufferManager bm(opt);

  constexpr int kPages = 128;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    for (size_t off = 256; off + 8 <= kPageSize; off += 1024) {
      const uint64_t v = g.pid() * 1000 + off;
      ASSERT_TRUE(g.WriteAt(off, sizeof(v), &v).ok());
    }
    pids.push_back(g.pid());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t * 13 + 5);
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        auto r = bm.FetchPage(pid, AccessIntent::kRead);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        PageGuard g = r.MoveValue();
        const size_t off = 256 + rng.NextUint64(15) * 1024;
        uint64_t v = 0;
        if (!g.ReadAt(off, sizeof(v), &v).ok() || v != pid * 1000 + off) {
          errors.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(6));
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);
}

}  // namespace
}  // namespace spitfire
