// Stress tests: high-contention combinations of fetch, promotion,
// eviction, policy churn, and flushing on tiny pools — the configurations
// where latching bugs surface.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }
};

TEST_F(StressTest, FetchEvictPromoteWithPolicyChurn) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 24;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = &ssd;
  BufferManager bm(opt);

  constexpr int kPages = 256;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = g.pid();
    ASSERT_TRUE(g.WriteAt(64, sizeof(v), &v).ok());
    pids.push_back(g.pid());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t * 31 + 1);
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        const bool write = rng.Bernoulli(0.4);
        auto r = bm.FetchPage(
            pid, write ? AccessIntent::kWrite : AccessIntent::kRead);
        if (!r.ok()) {
          fprintf(stderr, "fetch error: %s\n", r.status().ToString().c_str());
          errors.fetch_add(1);
          continue;
        }
        PageGuard g = r.MoveValue();
        // The stamp at offset 64 is immutable after setup; writes land in
        // a per-thread slot (the buffer manager does not serialize page
        // contents between guard holders — upper layers do).
        uint64_t v = 0;
        if (!g.ReadAt(64, sizeof(v), &v).ok() || v != pid) {
          fprintf(stderr, "data error pid=%llu got=%llu\n",
                  (unsigned long long)pid, (unsigned long long)v);
          errors.fetch_add(1);
        }
        if (write &&
            !g.WriteAt(128 + static_cast<size_t>(t) * 8, sizeof(v), &v)
                 .ok()) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Policy churner: swaps the live policy constantly, like the tuner.
  std::thread churner([&] {
    Xoshiro256 rng(999);
    const double lattice[] = {0.0, 0.01, 0.1, 0.5, 1.0};
    while (!stop.load(std::memory_order_relaxed)) {
      MigrationPolicy p{lattice[rng.NextUint64(5)], lattice[rng.NextUint64(5)],
                        lattice[rng.NextUint64(5)],
                        lattice[rng.NextUint64(5)]};
      bm.SetPolicy(p);
      std::this_thread::yield();
    }
  });

  std::this_thread::sleep_for(std::chrono::seconds(8));
  stop.store(true);
  for (auto& w : workers) w.join();
  churner.join();
  EXPECT_EQ(errors.load(), 0);
}

TEST_F(StressTest, ConcurrentFlushDuringTraffic) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 16;
  opt.policy = MigrationPolicy::Lazy();
  opt.ssd = &ssd;
  BufferManager bm(opt);

  constexpr int kPages = 128;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = g.pid() * 7;
    ASSERT_TRUE(g.WriteAt(128, sizeof(v), &v).ok());
    pids.push_back(g.pid());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t + 77);
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        auto r = bm.FetchPage(pid, AccessIntent::kWrite);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        PageGuard g = r.MoveValue();
        const uint64_t v = pid * 7;
        // Per-thread write slots; see the comment in the test above.
        if (!g.WriteAt(256 + static_cast<size_t>(t) * 8, sizeof(v), &v).ok()) {
          errors.fetch_add(1);
        }
        uint64_t check = 0;
        if (!g.ReadAt(128, sizeof(check), &check).ok() || check != v) {
          errors.fetch_add(1);
        }
      }
    });
  }
  // Background flusher, like the checkpointer thread.
  std::thread flusher([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)bm.FlushAll(/*include_nvm=*/false);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::this_thread::sleep_for(std::chrono::seconds(6));
  stop.store(true);
  for (auto& w : workers) w.join();
  flusher.join();
  EXPECT_EQ(errors.load(), 0);

  for (page_id_t pid : pids) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(128, sizeof(v), &v).ok());
    ASSERT_EQ(v, pid * 7);
  }
}

TEST_F(StressTest, FineGrainedAndMiniUnderConcurrency) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 12;
  opt.nvm_frames = 32;
  opt.policy = MigrationPolicy::Eager();
  opt.enable_fine_grained_loading = true;
  opt.enable_mini_pages = true;
  opt.mini_host_frames = 4;
  opt.ssd = &ssd;
  BufferManager bm(opt);

  constexpr int kPages = 128;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    for (size_t off = 256; off + 8 <= kPageSize; off += 1024) {
      const uint64_t v = g.pid() * 1000 + off;
      ASSERT_TRUE(g.WriteAt(off, sizeof(v), &v).ok());
    }
    pids.push_back(g.pid());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t * 13 + 5);
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        auto r = bm.FetchPage(pid, AccessIntent::kRead);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        PageGuard g = r.MoveValue();
        const size_t off = 256 + rng.NextUint64(15) * 1024;
        uint64_t v = 0;
        if (!g.ReadAt(off, sizeof(v), &v).ok() || v != pid * 1000 + off) {
          errors.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(6));
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);
}

// Hammers the latch-free pin path against eviction pressure (foreground
// CLOCK sweeps plus the background writer) and checks the accounting
// invariants the optimistic protocol must preserve: every successful fetch
// increments exactly one hit/miss counter (so the sharded stats snapshot
// equals a per-thread ground truth), and no pin is ever leaked or dropped
// (every state word drains to zero pins once the workers stop).
TEST_F(StressTest, ConcurrentPinEvictAccounting) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 16;
  opt.nvm_frames = 32;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = &ssd;
  opt.enable_background_writer = true;
  opt.bg_writer_low_watermark = 4;
  BufferManager bm(opt);
  ASSERT_NE(bm.background_writer(), nullptr);

  constexpr int kPages = 256;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = g.pid() ^ 0x5157ull;
    ASSERT_TRUE(g.WriteAt(64, sizeof(v), &v).ok());
    pids.push_back(g.pid());
  }
  bm.stats().Reset();

  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<uint64_t> ground_truth_fetches{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t * 101 + 7);
      uint64_t my_fetches = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        const bool write = rng.Bernoulli(0.25);
        auto r = bm.FetchPage(
            pid, write ? AccessIntent::kWrite : AccessIntent::kRead);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        ++my_fetches;
        PageGuard g = r.MoveValue();
        uint64_t v = 0;
        if (!g.ReadAt(64, sizeof(v), &v).ok() || v != (pid ^ 0x5157ull)) {
          errors.fetch_add(1);
        }
        if (write &&
            !g.WriteAt(512 + static_cast<size_t>(t) * 8, sizeof(v), &v)
                 .ok()) {
          errors.fetch_add(1);
        }
      }
      ground_truth_fetches.fetch_add(my_fetches);
    });
  }
  std::this_thread::sleep_for(std::chrono::seconds(6));
  stop.store(true);
  for (auto& w : workers) w.join();
  EXPECT_EQ(errors.load(), 0);

  // Exactly one of {dram_hits, nvm_hits, ssd_fetches} per successful fetch.
  const BufferStatsSnapshot snap = bm.stats().Snapshot();
  EXPECT_EQ(snap.TotalFetches(), ground_truth_fetches.load());
  EXPECT_GT(snap.dram_evictions + snap.nvm_evictions, 0u);
  EXPECT_GT(bm.background_writer()->pages_written_back(), 0u);

  // No leaked or lost pins: with all guards released, every tier state
  // word must have drained to zero, and every page must still be readable
  // with its original contents (no double-freed frames).
  for (page_id_t pid : pids) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    SharedPageDescriptor* d = g.descriptor();
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(64, sizeof(v), &v).ok());
    EXPECT_EQ(v, pid ^ 0x5157ull);
    g.Release();
    EXPECT_EQ(d->dram.Pins(), 0u);
    EXPECT_EQ(d->nvm.Pins(), 0u);
  }
}

// Asynchronous submit/complete racing blocking fetches and eviction on a
// pool far smaller than the working set: ring workers keep several misses
// in flight per thread while blocking writers churn frames, so installs,
// joins, re-dispatches, and evictions collide on the same descriptors.
// Accounting must stay exact and every byte must come back correct.
TEST_F(StressTest, AsyncSubmitCompleteEvictRace) {
  SsdDevice ssd(128ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 8;
  opt.nvm_frames = 8;
  opt.policy = MigrationPolicy::Eager();
  opt.ssd = &ssd;
  BufferManager bm(opt);
  ASSERT_NE(bm.io_scheduler(), nullptr);

  constexpr int kPages = 128;
  std::vector<page_id_t> pids;
  for (int i = 0; i < kPages; ++i) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    const uint64_t v = g.pid() ^ 0xA51Cull;
    ASSERT_TRUE(g.WriteAt(64, sizeof(v), &v).ok());
    pids.push_back(g.pid());
  }
  bm.stats().Reset();

  // Small but nonzero device latency so misses genuinely overlap.
  LatencySimulator::SetScale(10.0);

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  std::atomic<uint64_t> ground_truth_fetches{0};
  std::vector<std::thread> workers;

  // Two ring workers: up to 4 async fetches in flight each.
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      constexpr int kRing = 4;
      Xoshiro256 rng(t * 733 + 11);
      FetchTicket ring[kRing];
      page_id_t in_flight[kRing];
      bool busy[kRing] = {false, false, false, false};
      uint64_t my_fetches = 0;
      auto harvest = [&](int i) {
        if (!busy[i] || !ring[i].ready.load(std::memory_order_acquire)) {
          return false;
        }
        if (ring[i].status.ok()) {
          ++my_fetches;
          uint64_t v = 0;
          if (!ring[i].guard.ReadAt(64, sizeof(v), &v).ok() ||
              v != (in_flight[i] ^ 0xA51Cull)) {
            errors.fetch_add(1);
          }
          ring[i].guard.Release();
        } else if (!ring[i].status.IsBusy()) {
          errors.fetch_add(1);  // Busy under churn is legal, errors are not
        }
        busy[i] = false;
        return true;
      };
      while (!stop.load(std::memory_order_relaxed)) {
        bool progressed = false;
        for (int i = 0; i < kRing; ++i) {
          progressed |= harvest(i);
          if (!busy[i]) {
            in_flight[i] = pids[rng.NextUint64(pids.size())];
            ring[i].Reset();
            (void)bm.SubmitFetch(in_flight[i], AccessIntent::kRead, &ring[i]);
            busy[i] = true;
            progressed = true;
          }
        }
        if (!progressed) bm.PumpIo(/*may_sleep=*/true);
      }
      // Drain the ring before the ticket storage goes out of scope.
      for (bool any = true; any;) {
        any = false;
        for (int i = 0; i < kRing; ++i) {
          harvest(i);
          any |= busy[i];
        }
        if (any) bm.PumpIo(/*may_sleep=*/false);
      }
      ground_truth_fetches.fetch_add(my_fetches);
    });
  }
  // Two blocking writers: dirty pages and force evict/write-back traffic.
  for (int t = 0; t < 2; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(t * 577 + 3);
      uint64_t my_fetches = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const page_id_t pid = pids[rng.NextUint64(pids.size())];
        auto r = bm.FetchPage(pid, AccessIntent::kWrite);
        if (!r.ok()) {
          if (!r.status().IsBusy()) errors.fetch_add(1);
          continue;
        }
        ++my_fetches;
        PageGuard g = r.MoveValue();
        uint64_t v = 0;
        if (!g.ReadAt(64, sizeof(v), &v).ok() || v != (pid ^ 0xA51Cull)) {
          errors.fetch_add(1);
        }
        if (!g.WriteAt(512 + static_cast<size_t>(t) * 8, sizeof(v), &v)
                 .ok()) {
          errors.fetch_add(1);
        }
      }
      ground_truth_fetches.fetch_add(my_fetches);
    });
  }

  std::this_thread::sleep_for(std::chrono::seconds(6));
  stop.store(true);
  for (auto& w : workers) w.join();
  LatencySimulator::SetScale(0.0);
  EXPECT_EQ(errors.load(), 0);

  // Exactly one of {dram_hits, nvm_hits, ssd_fetches} per completed fetch,
  // across hits, leaders, joiners, and re-dispatched tickets alike.
  const BufferStatsSnapshot snap = bm.stats().Snapshot();
  EXPECT_EQ(snap.TotalFetches(), ground_truth_fetches.load());
  EXPECT_GT(snap.miss_submits, 0u);

  // All pins drained, all bytes intact.
  for (page_id_t pid : pids) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok());
    PageGuard g = r.MoveValue();
    SharedPageDescriptor* d = g.descriptor();
    uint64_t v = 0;
    ASSERT_TRUE(g.ReadAt(64, sizeof(v), &v).ok());
    EXPECT_EQ(v, pid ^ 0xA51Cull);
    g.Release();
    EXPECT_EQ(d->dram.Pins(), 0u);
    EXPECT_EQ(d->nvm.Pins(), 0u);
  }
}

}  // namespace
}  // namespace spitfire
