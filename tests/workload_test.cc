#include <gtest/gtest.h>

#include "storage/perf_model.h"
#include "workload/driver.h"
#include "workload/tpcc.h"
#include "workload/ycsb.h"

namespace spitfire {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  static DatabaseOptions Opts() {
    DatabaseOptions opts;
    opts.dram_frames = 128;
    opts.nvm_frames = 256;
    opts.policy = MigrationPolicy::Lazy();
    opts.ssd_capacity = 512ull * 1024 * 1024;
    opts.enable_wal = true;
    return opts;
  }
};

TEST_F(WorkloadTest, YcsbLoadAndReadBack) {
  auto db = Database::Create(Opts()).MoveValue();
  YcsbConfig cfg = YcsbConfig::ReadOnly(2000);
  YcsbWorkload ycsb(db.get(), cfg);
  ASSERT_TRUE(ycsb.Load().ok());

  auto txn = db->Begin();
  std::vector<std::byte> tuple(YcsbWorkload::kTupleSize);
  for (uint64_t k = 0; k < cfg.num_tuples; k += 97) {
    ASSERT_TRUE(ycsb.table()->Read(txn.get(), k, tuple.data()).ok()) << k;
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(WorkloadTest, YcsbTransactionsCommit) {
  auto db = Database::Create(Opts()).MoveValue();
  YcsbWorkload ycsb(db.get(), YcsbConfig::Balanced(1000));
  ASSERT_TRUE(ycsb.Load().ok());
  Xoshiro256 rng(1);
  int commits = 0;
  for (int i = 0; i < 500; ++i) {
    if (ycsb.RunTransaction(rng).ok()) ++commits;
  }
  // Single-threaded: only rare self-conflicts possible.
  EXPECT_GT(commits, 450);
}

TEST_F(WorkloadTest, YcsbMixesRespectReadRatio) {
  EXPECT_DOUBLE_EQ(YcsbConfig::ReadOnly().read_ratio, 1.0);
  EXPECT_DOUBLE_EQ(YcsbConfig::Balanced().read_ratio, 0.5);
  EXPECT_DOUBLE_EQ(YcsbConfig::WriteHeavy().read_ratio, 0.1);
}

TEST_F(WorkloadTest, DriverRunsMultiThreaded) {
  auto db = Database::Create(Opts()).MoveValue();
  YcsbWorkload ycsb(db.get(), YcsbConfig::Balanced(1000));
  ASSERT_TRUE(ycsb.Load().ok());
  DriverResult res = WorkloadDriver::Run(
      2, 0.5, [&](Xoshiro256& rng) { return ycsb.RunTransaction(rng); });
  EXPECT_GT(res.committed, 100u);
  EXPECT_GT(res.Throughput(), 0.0);
  EXPECT_LT(res.AbortRate(), 0.5);
}

class TpccTest : public WorkloadTest {
 protected:
  void SetUp() override {
    WorkloadTest::SetUp();
    db_ = Database::Create(Opts()).MoveValue();
    TpccConfig cfg;
    cfg.num_warehouses = 1;
    cfg.customers_per_district = 30;
    cfg.num_items = 200;
    tpcc_ = std::make_unique<TpccWorkload>(db_.get(), cfg);
    ASSERT_TRUE(tpcc_->Load().ok());
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<TpccWorkload> tpcc_;
};

TEST_F(TpccTest, LoadPopulatesAllTables) {
  auto txn = db_->Begin();
  TpccWorkload::WarehouseTuple wt{};
  ASSERT_TRUE(db_->GetTable(TpccWorkload::kWarehouse)
                  ->Read(txn.get(), TpccWorkload::WarehouseKey(1), &wt)
                  .ok());
  EXPECT_DOUBLE_EQ(wt.ytd, 300000.0);
  TpccWorkload::DistrictTuple dt{};
  ASSERT_TRUE(db_->GetTable(TpccWorkload::kDistrict)
                  ->Read(txn.get(), TpccWorkload::DistrictKey(1, 10), &dt)
                  .ok());
  EXPECT_EQ(dt.next_o_id, 1u);
  TpccWorkload::ItemTuple it{};
  ASSERT_TRUE(db_->GetTable(TpccWorkload::kItem)
                  ->Read(txn.get(), TpccWorkload::ItemKey(200), &it)
                  .ok());
  EXPECT_GT(it.price, 0.0);
  TpccWorkload::StockTuple st{};
  ASSERT_TRUE(db_->GetTable(TpccWorkload::kStock)
                  ->Read(txn.get(), TpccWorkload::StockKey(1, 1), &st)
                  .ok());
  EXPECT_GE(st.quantity, 10u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(TpccTest, NewOrderAdvancesDistrictCounter) {
  Xoshiro256 rng(3);
  int ok_count = 0;
  for (int i = 0; i < 20; ++i) {
    if (tpcc_->NewOrder(rng).ok()) ++ok_count;
  }
  EXPECT_GT(ok_count, 15);
  auto txn = db_->Begin();
  uint32_t total_orders = 0;
  for (uint32_t d = 1; d <= 10; ++d) {
    TpccWorkload::DistrictTuple dt{};
    ASSERT_TRUE(db_->GetTable(TpccWorkload::kDistrict)
                    ->Read(txn.get(), TpccWorkload::DistrictKey(1, d), &dt)
                    .ok());
    total_orders += dt.next_o_id - 1;
  }
  EXPECT_EQ(total_orders, static_cast<uint32_t>(ok_count));
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(TpccTest, PaymentUpdatesBalances) {
  Xoshiro256 rng(4);
  int ok_count = 0;
  for (int i = 0; i < 20; ++i) {
    if (tpcc_->Payment(rng).ok()) ++ok_count;
  }
  EXPECT_GT(ok_count, 15);
  auto txn = db_->Begin();
  TpccWorkload::WarehouseTuple wt{};
  ASSERT_TRUE(db_->GetTable(TpccWorkload::kWarehouse)
                  ->Read(txn.get(), TpccWorkload::WarehouseKey(1), &wt)
                  .ok());
  EXPECT_GT(wt.ytd, 300000.0);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(TpccTest, OrderStatusAndStockLevelAreReadOnly) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(tpcc_->NewOrder(rng).ok());
  EXPECT_TRUE(tpcc_->OrderStatus(rng).ok());
  EXPECT_TRUE(tpcc_->StockLevel(rng).ok());
}

TEST_F(TpccTest, DeliveryDeletesNewOrderRows) {
  Xoshiro256 rng(6);
  int placed = 0;
  for (int i = 0; i < 12; ++i) placed += tpcc_->NewOrder(rng).ok();
  ASSERT_GT(placed, 0);
  auto CountPending = [&]() {
    auto txn = db_->Begin();
    uint32_t pending = 0;
    for (uint32_t d = 1; d <= 10; ++d) {
      EXPECT_TRUE(db_->GetTable(TpccWorkload::kNewOrder)
                      ->Scan(txn.get(), TpccWorkload::OrderKey(1, d, 0),
                             TpccWorkload::OrderKey(1, d, 0x0FFFFFFF),
                             [&](uint64_t, const void*) {
                               ++pending;
                               return true;
                             })
                      .ok());
    }
    EXPECT_TRUE(db_->Commit(txn.get()).ok());
    return pending;
  };
  const uint32_t before = CountPending();
  EXPECT_EQ(before, static_cast<uint32_t>(placed));
  ASSERT_TRUE(tpcc_->Delivery(rng).ok());
  // Delivery removes the oldest pending NEW-ORDER row per district.
  EXPECT_LT(CountPending(), before);
}

TEST_F(TpccTest, MixedWorkloadRuns) {
  Xoshiro256 rng(7);
  int commits = 0;
  for (int i = 0; i < 100; ++i) {
    if (tpcc_->RunTransaction(rng).ok()) ++commits;
  }
  EXPECT_GT(commits, 80);
}

TEST_F(TpccTest, MultiThreadedMixKeepsMoneyConsistent) {
  DriverResult res = WorkloadDriver::Run(
      2, 0.5, [&](Xoshiro256& rng) { return tpcc_->RunTransaction(rng); });
  EXPECT_GT(res.committed, 10u);
  // District YTDs must sum to at least the warehouse base (payments add).
  auto txn = db_->Begin();
  TpccWorkload::WarehouseTuple wt{};
  ASSERT_TRUE(db_->GetTable(TpccWorkload::kWarehouse)
                  ->Read(txn.get(), TpccWorkload::WarehouseKey(1), &wt)
                  .ok());
  EXPECT_GE(wt.ytd, 300000.0);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

}  // namespace
}  // namespace spitfire
