#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "common/timer.h"

#include "storage/dram_device.h"
#include "storage/memory_mode_device.h"
#include "storage/nvm_device.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }
};

TEST_F(StorageTest, DeviceProfilesMatchTable1) {
  const DeviceProfile dram = DeviceProfile::Dram();
  const DeviceProfile nvm = DeviceProfile::OptaneNvm();
  const DeviceProfile ssd = DeviceProfile::OptaneSsd();

  // Latency ordering: DRAM < NVM < SSD (Table 1).
  EXPECT_LT(dram.rand_read_latency_ns, nvm.rand_read_latency_ns);
  EXPECT_LT(nvm.rand_read_latency_ns, ssd.rand_read_latency_ns);

  // Media granularities: 64 B, 256 B, 16 KB.
  EXPECT_EQ(dram.media_granularity, 64u);
  EXPECT_EQ(nvm.media_granularity, 256u);
  EXPECT_EQ(ssd.media_granularity, 16u * 1024);

  // Persistence and addressability.
  EXPECT_FALSE(dram.persistent);
  EXPECT_TRUE(nvm.persistent);
  EXPECT_TRUE(ssd.persistent);
  EXPECT_TRUE(nvm.byte_addressable);
  EXPECT_FALSE(ssd.byte_addressable);

  // Price ordering: DRAM > NVM > SSD.
  EXPECT_GT(dram.price_per_gb, nvm.price_per_gb);
  EXPECT_GT(nvm.price_per_gb, ssd.price_per_gb);
}

TEST_F(StorageTest, MediaBytesRoundsUpToGranularity) {
  const DeviceProfile nvm = DeviceProfile::OptaneNvm();
  EXPECT_EQ(nvm.MediaBytes(1), 256u);
  EXPECT_EQ(nvm.MediaBytes(256), 256u);
  EXPECT_EQ(nvm.MediaBytes(257), 512u);
  const DeviceProfile ssd = DeviceProfile::OptaneSsd();
  EXPECT_EQ(ssd.MediaBytes(100), 16u * 1024);
}

TEST_F(StorageTest, ReadLatencyIncludesTransferTime) {
  const DeviceProfile ssd = DeviceProfile::OptaneSsd();
  const uint64_t small = ssd.ReadLatencyNanos(16 * 1024, false);
  const uint64_t large = ssd.ReadLatencyNanos(1024 * 1024, false);
  EXPECT_GT(large, small);
  // 16 KB at 2.4 GB/s is ~6.8 us on top of 12 us idle latency.
  EXPECT_NEAR(static_cast<double>(small), 12000 + 16384 / 2.4, 200);
}

TEST_F(StorageTest, DramDeviceRoundTrips) {
  DramDevice dev(1 << 20);
  char src[128], dst[128];
  std::memset(src, 0xAB, sizeof(src));
  ASSERT_TRUE(dev.Write(4096, src, sizeof(src)).ok());
  ASSERT_TRUE(dev.Read(4096, dst, sizeof(dst)).ok());
  EXPECT_EQ(std::memcmp(src, dst, sizeof(src)), 0);
  EXPECT_EQ(dev.stats().num_writes.load(), 1u);
  EXPECT_EQ(dev.stats().num_reads.load(), 1u);
}

TEST_F(StorageTest, DeviceRejectsOutOfRange) {
  DramDevice dev(4096);
  char buf[64];
  EXPECT_FALSE(dev.Read(4095, buf, 64).ok());
  EXPECT_FALSE(dev.Write(5000, buf, 1).ok());
}

TEST_F(StorageTest, NvmDeviceDirectPointerIsStable) {
  NvmDevice dev(1 << 20);
  std::byte* p = dev.DirectPointer(100);
  p[0] = std::byte{0x5A};
  char c;
  ASSERT_TRUE(dev.Read(100, &c, 1).ok());
  EXPECT_EQ(c, 0x5A);
}

TEST_F(StorageTest, NvmWriteVolumeIsMediaAmplified) {
  NvmDevice dev(1 << 20);
  char buf[64] = {};
  ASSERT_TRUE(dev.Write(0, buf, 64).ok());
  // A 64 B write touches a full 256 B media block.
  EXPECT_EQ(dev.stats().media_bytes_written.load(), 256u);
  EXPECT_EQ(dev.stats().bytes_written.load(), 64u);
}

TEST_F(StorageTest, NvmFileBackedPersistsAcrossInstances) {
  const std::string path = "/tmp/spitfire_nvm_test.bin";
  std::filesystem::remove(path);
  {
    NvmDevice dev(path, 1 << 16);
    char buf[8] = "hello";
    ASSERT_TRUE(dev.Write(128, buf, 8).ok());
    ASSERT_TRUE(dev.Persist(128, 8).ok());
  }
  {
    NvmDevice dev(path, 1 << 16);
    char buf[8] = {};
    ASSERT_TRUE(dev.Read(128, buf, 8).ok());
    EXPECT_STREQ(buf, "hello");
  }
  std::filesystem::remove(path);
}

TEST_F(StorageTest, SsdMemoryBackedRoundTrips) {
  SsdDevice dev(1 << 20);
  std::vector<char> page(16384, 'x');
  ASSERT_TRUE(dev.Write(16384, page.data(), page.size()).ok());
  std::vector<char> out(16384);
  ASSERT_TRUE(dev.Read(16384, out.data(), out.size()).ok());
  EXPECT_EQ(page, out);
}

TEST_F(StorageTest, SsdFileBackedRoundTrips) {
  const std::string path = "/tmp/spitfire_ssd_test.bin";
  std::filesystem::remove(path);
  {
    SsdDevice dev(path, 1 << 20);
    std::vector<char> page(16384, 'y');
    ASSERT_TRUE(dev.Write(0, page.data(), page.size()).ok());
    ASSERT_TRUE(dev.Persist(0, page.size()).ok());
  }
  {
    SsdDevice dev(path, 1 << 20);
    std::vector<char> out(16384);
    ASSERT_TRUE(dev.Read(0, out.data(), out.size()).ok());
    EXPECT_EQ(out[100], 'y');
  }
  std::filesystem::remove(path);
}

TEST_F(StorageTest, SsdHasNoDirectPointer) {
  SsdDevice dev(1 << 20);
  EXPECT_EQ(dev.DirectPointer(0), nullptr);
}

TEST_F(StorageTest, MemoryModeTracksHitsAndMisses) {
  MemoryModeDevice dev(/*nvm_capacity=*/1 << 20,
                       /*dram_cache_capacity=*/1 << 16);
  char buf[256] = {};
  // First touch of a block: miss. Second: hit.
  ASSERT_TRUE(dev.Write(0, buf, 256).ok());
  const uint64_t m1 = dev.cache_misses();
  ASSERT_TRUE(dev.Read(0, buf, 256).ok());
  EXPECT_EQ(dev.cache_misses(), m1);
  EXPECT_GT(dev.cache_hits(), 0u);
}

TEST_F(StorageTest, MemoryModeConflictMissesOnAliasedBlocks) {
  // Cache of 4 sets (1 KB / 256 B); blocks 0 and 4 alias.
  MemoryModeDevice dev(1 << 20, 1024);
  char buf[256] = {};
  ASSERT_TRUE(dev.Read(0, buf, 256).ok());         // miss
  ASSERT_TRUE(dev.Read(4 * 256, buf, 256).ok());   // conflict miss
  ASSERT_TRUE(dev.Read(0, buf, 256).ok());         // miss again (evicted)
  EXPECT_EQ(dev.cache_misses(), 3u);
  EXPECT_EQ(dev.cache_hits(), 0u);
}

TEST_F(StorageTest, MemoryModeRejectsPersist) {
  MemoryModeDevice dev(1 << 20, 1 << 16);
  EXPECT_EQ(dev.Persist(0, 64).code(), StatusCode::kNotSupported);
}

TEST_F(StorageTest, LatencyScaleZeroDisablesDelays) {
  LatencySimulator::SetScale(0.0);
  EXPECT_EQ(LatencySimulator::scale(), 0.0);
  Timer t;
  LatencySimulator::Delay(10'000'000);
  EXPECT_LT(t.ElapsedNanos(), 1'000'000u);
}

TEST_F(StorageTest, LatencyScaleAppliesMultiplier) {
  LatencySimulator::SetScale(1.0);
  Timer t;
  LatencySimulator::Delay(2'000'000);  // 2 ms
  EXPECT_GE(t.ElapsedNanos(), 1'500'000u);
  LatencySimulator::SetScale(0.0);
}

TEST_F(StorageTest, FineGrainedReadChargesPerMediaBlock) {
  NvmDevice dev(1 << 20);
  char buf[1024];
  // 1 KB spans four 256 B media blocks: four random requests.
  ASSERT_TRUE(dev.ReadFineGrained(0, buf, 1024).ok());
  EXPECT_EQ(dev.stats().num_reads.load(), 4u);
  dev.stats().Reset();
  // 64 B still costs one whole-block request (I/O amplification).
  ASSERT_TRUE(dev.ReadFineGrained(0, buf, 64).ok());
  EXPECT_EQ(dev.stats().num_reads.load(), 1u);
  EXPECT_EQ(dev.stats().bytes_read.load(), 64u);
}

TEST_F(StorageTest, FineGrainedReadReturnsCorrectData) {
  NvmDevice dev(1 << 20);
  std::vector<char> src(1024);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<char>(i * 7);
  ASSERT_TRUE(dev.Write(512, src.data(), src.size()).ok());
  std::vector<char> dst(1024);
  ASSERT_TRUE(dev.ReadFineGrained(512, dst.data(), dst.size()).ok());
  EXPECT_EQ(src, dst);
}

TEST_F(StorageTest, SaturatingQueuesStretchTransfers) {
  DeviceProfile p = DeviceProfile::OptaneNvm();
  EXPECT_GT(p.queues.saturating_queues, 1.0);
  DeviceProfile aggregate = p;
  aggregate.queues.saturating_queues = 1.0;
  // A page-sized transfer takes ~saturating_queues times longer at low
  // queue depth; the idle-latency component is unchanged.
  EXPECT_GT(p.ReadLatencyNanos(16384, false),
            aggregate.ReadLatencyNanos(16384, false));
  EXPECT_EQ(p.rand_read_latency_ns, aggregate.rand_read_latency_ns);
}

// The multi-queue simulator: at depth 1 requests serialize (deadline spacing
// >= per-request latency); at depth d on one queue, transfers pipeline so d
// requests complete within roughly one transfer window each plus a single
// shared idle latency, i.e. total span is far below d * sync latency.
TEST_F(StorageTest, DeviceQueueSimPipelinesAtDepth) {
  LatencySimulator::SetScale(1.0);  // deadlines, not delays: cheap at scale 1
  DeviceProfile p = DeviceProfile::OptaneSsd();
  const uint64_t sync_ns = p.ReadLatencyNanos(16384, false);

  // Single queue, depth 1: strictly serialized.
  DeviceProfile qd1 = p;
  qd1.queues = QueueModel{1, 1, 1.0};
  DeviceQueueSim sim1(qd1);
  const uint64_t t0 = NowNanos();
  uint64_t last = 0;
  for (int i = 0; i < 8; ++i) {
    last = sim1.Submit(16384, false, false);
  }
  EXPECT_GE(last - t0, 8 * sync_ns * 9 / 10);

  // Single queue, depth 16: idle latency overlaps, only transfers serialize.
  DeviceProfile qd16 = p;
  qd16.queues = QueueModel{1, 16, 1.0};
  DeviceQueueSim sim16(qd16);
  const uint64_t t1 = NowNanos();
  uint64_t last16 = 0;
  for (int i = 0; i < 8; ++i) {
    last16 = sim16.Submit(16384, false, false);
  }
  // 8 transfers of ~6.8us plus one 12us idle latency ~= 66us, versus
  // 8 * 18.8us ~= 150us serialized.
  EXPECT_LT(last16 - t1, 8 * sync_ns * 6 / 10);

  // Two queues double throughput over one at the same depth.
  DeviceProfile q2 = p;
  q2.queues = QueueModel{2, 16, 1.0};
  DeviceQueueSim sim2(q2);
  const uint64_t t2 = NowNanos();
  uint64_t last2 = 0;
  for (int i = 0; i < 8; ++i) {
    last2 = sim2.Submit(16384, false, false);
  }
  EXPECT_LT(last2 - t2, last16 - t1);
}

TEST_F(StorageTest, DeviceQueueSimScaleZeroCompletesNow) {
  LatencySimulator::SetScale(0.0);
  DeviceQueueSim sim(DeviceProfile::OptaneSsd());
  const uint64_t before = NowNanos();
  const uint64_t done = sim.Submit(16384, false, false);
  LatencySimulator::SetScale(1.0);
  EXPECT_LE(done, NowNanos());
  EXPECT_GE(done, before);
}

TEST_F(StorageTest, PriceScalesWithCapacity) {
  DramDevice dev(1'000'000'000);  // 1 GB
  EXPECT_NEAR(dev.PriceDollars(), 10.0, 1e-6);
}

}  // namespace
}  // namespace spitfire
