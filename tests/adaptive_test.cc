#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "adaptive/annealing_tuner.h"
#include "adaptive/grid_search.h"

namespace spitfire {
namespace {

// A synthetic performance model: throughput peaks at the lazy policy, as
// the paper measures for capacity-constrained hierarchies.
double SyntheticThroughput(const MigrationPolicy& p) {
  auto closeness = [](double v, double target) {
    return 1.0 / (1.0 + 20.0 * std::abs(v - target));
  };
  return 100'000.0 * (0.2 + 0.8 * (closeness(p.dr, 0.01) * closeness(p.dw, 0.01) *
                                   closeness(p.nr, 0.2) * closeness(p.nw, 1.0)));
}

TEST(AnnealingTunerTest, StartsAtInitialPolicy) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  EXPECT_DOUBLE_EQ(tuner.current().dr, 1.0);
  EXPECT_EQ(tuner.epochs(), 0u);
}

TEST(AnnealingTunerTest, NeighborsStayOnLattice) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  for (int i = 0; i < 200; ++i) {
    const MigrationPolicy p = tuner.OnEpochComplete(1000.0);
    for (double v : {p.dr, p.dw, p.nr, p.nw}) {
      bool on_lattice = false;
      for (double l : opts.lattice) {
        if (v == l) on_lattice = true;
      }
      EXPECT_TRUE(on_lattice) << v;
    }
  }
}

TEST(AnnealingTunerTest, TemperatureCools) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  const double t0 = tuner.temperature();
  for (int i = 0; i < 50; ++i) tuner.OnEpochComplete(1000.0);
  EXPECT_LT(tuner.temperature(), t0);
}

TEST(AnnealingTunerTest, TracksBestObservedPolicy) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  for (int i = 0; i < 100; ++i) {
    tuner.OnEpochComplete(SyntheticThroughput(tuner.current()));
  }
  EXPECT_GE(tuner.best_throughput(),
            SyntheticThroughput(MigrationPolicy::Eager()));
}

TEST(AnnealingTunerTest, ConvergesNearOptimumOnSyntheticModel) {
  // The paper's claim (Section 6.4): starting from the eager policy, the
  // tuner converges to a near-optimal (lazy) policy without manual tuning.
  AnnealingOptions opts;
  opts.initial_temperature = 10.0;
  opts.cooling_rate = 0.85;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  for (int epoch = 0; epoch < 120; ++epoch) {
    tuner.OnEpochComplete(SyntheticThroughput(tuner.current()));
  }
  const double best = tuner.best_throughput();
  const double optimal = SyntheticThroughput(MigrationPolicy{0.01, 0.01, 0.1, 1.0});
  EXPECT_GT(best, 0.6 * optimal);
  // And far better than the eager starting point.
  EXPECT_GT(best, 1.5 * SyntheticThroughput(MigrationPolicy::Eager()));
}

TEST(AnnealingTunerTest, AfterConvergenceSticksToBest) {
  AnnealingOptions opts;
  opts.initial_temperature = 1.0;
  opts.min_temperature = 0.9;  // converge immediately
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  tuner.OnEpochComplete(100.0);
  ASSERT_TRUE(tuner.converged());
  const MigrationPolicy p1 = tuner.OnEpochComplete(100.0);
  const MigrationPolicy p2 = tuner.OnEpochComplete(100.0);
  EXPECT_DOUBLE_EQ(p1.dr, p2.dr);
  EXPECT_DOUBLE_EQ(p1.nr, p2.nr);
}

TEST(GridSearchTest, CostUsesTable1Prices) {
  StorageConfig c;
  c.dram_bytes = 4ull << 30;   // 4 GB * $10
  c.nvm_bytes = 80ull << 30;   // 80 GB * $4.5
  c.ssd_bytes = 200ull << 30;  // 200 GB * $2.8
  const double gib = static_cast<double>(1ull << 30) / 1e9;
  EXPECT_NEAR(c.CostDollars(), (4 * 10 + 80 * 4.5 + 200 * 2.8) * gib, 1.0);
}

TEST(GridSearchTest, PerfPerPriceSelection) {
  std::vector<GridPoint> grid;
  StorageConfig small{1ull << 30, 0, 10ull << 30};
  StorageConfig big{32ull << 30, 160ull << 30, 10ull << 30};
  grid.push_back({small, 50'000});   // cheap, decent
  grid.push_back({big, 100'000});    // fast, expensive
  const GridPoint* best_pp = GridSearch::BestPerfPerPrice(grid);
  ASSERT_NE(best_pp, nullptr);
  EXPECT_EQ(best_pp->config.dram_bytes, small.dram_bytes);
  const GridPoint* best_t = GridSearch::BestThroughput(grid);
  ASSERT_NE(best_t, nullptr);
  EXPECT_EQ(best_t->config.dram_bytes, big.dram_bytes);
}

TEST(GridSearchTest, BudgetFiltersCandidates) {
  std::vector<GridPoint> grid;
  StorageConfig cheap{0, 0, 10ull << 30};
  StorageConfig pricey{64ull << 30, 0, 10ull << 30};
  grid.push_back({cheap, 10'000});
  grid.push_back({pricey, 200'000});
  const GridPoint* within = GridSearch::BestWithinBudget(grid, 100.0);
  ASSERT_NE(within, nullptr);
  EXPECT_EQ(within->config.dram_bytes, 0u);
  EXPECT_EQ(GridSearch::BestWithinBudget(grid, 0.0), nullptr);
}

}  // namespace
}  // namespace spitfire
