#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "adaptive/annealing_tuner.h"
#include "adaptive/grid_search.h"
#include "adaptive/online_tuner.h"
#include "buffer/stats.h"

namespace spitfire {
namespace {

// A synthetic performance model: throughput peaks at the lazy policy, as
// the paper measures for capacity-constrained hierarchies.
double SyntheticThroughput(const MigrationPolicy& p) {
  auto closeness = [](double v, double target) {
    return 1.0 / (1.0 + 20.0 * std::abs(v - target));
  };
  return 100'000.0 * (0.2 + 0.8 * (closeness(p.dr, 0.01) * closeness(p.dw, 0.01) *
                                   closeness(p.nr, 0.2) * closeness(p.nw, 1.0)));
}

TEST(AnnealingTunerTest, StartsAtInitialPolicy) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  EXPECT_DOUBLE_EQ(tuner.current().dr, 1.0);
  EXPECT_EQ(tuner.epochs(), 0u);
}

TEST(AnnealingTunerTest, NeighborsStayOnLattice) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  for (int i = 0; i < 200; ++i) {
    const MigrationPolicy p = tuner.OnEpochComplete(1000.0);
    for (double v : {p.dr, p.dw, p.nr, p.nw}) {
      bool on_lattice = false;
      for (double l : opts.lattice) {
        if (v == l) on_lattice = true;
      }
      EXPECT_TRUE(on_lattice) << v;
    }
  }
}

TEST(AnnealingTunerTest, TemperatureCools) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  const double t0 = tuner.temperature();
  for (int i = 0; i < 50; ++i) tuner.OnEpochComplete(1000.0);
  EXPECT_LT(tuner.temperature(), t0);
}

TEST(AnnealingTunerTest, TracksBestObservedPolicy) {
  AnnealingOptions opts;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  for (int i = 0; i < 100; ++i) {
    tuner.OnEpochComplete(SyntheticThroughput(tuner.current()));
  }
  EXPECT_GE(tuner.best_throughput(),
            SyntheticThroughput(MigrationPolicy::Eager()));
}

TEST(AnnealingTunerTest, ConvergesNearOptimumOnSyntheticModel) {
  // The paper's claim (Section 6.4): starting from the eager policy, the
  // tuner converges to a near-optimal (lazy) policy without manual tuning.
  AnnealingOptions opts;
  opts.initial_temperature = 10.0;
  opts.cooling_rate = 0.85;
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  for (int epoch = 0; epoch < 120; ++epoch) {
    tuner.OnEpochComplete(SyntheticThroughput(tuner.current()));
  }
  const double best = tuner.best_throughput();
  const double optimal = SyntheticThroughput(MigrationPolicy{0.01, 0.01, 0.1, 1.0});
  EXPECT_GT(best, 0.6 * optimal);
  // And far better than the eager starting point.
  EXPECT_GT(best, 1.5 * SyntheticThroughput(MigrationPolicy::Eager()));
}

TEST(AnnealingTunerTest, AfterConvergenceSticksToBest) {
  AnnealingOptions opts;
  opts.initial_temperature = 1.0;
  opts.min_temperature = 0.9;  // converge immediately
  AnnealingTuner tuner(opts, MigrationPolicy::Eager());
  tuner.OnEpochComplete(100.0);
  ASSERT_TRUE(tuner.converged());
  const MigrationPolicy p1 = tuner.OnEpochComplete(100.0);
  const MigrationPolicy p2 = tuner.OnEpochComplete(100.0);
  EXPECT_DOUBLE_EQ(p1.dr, p2.dr);
  EXPECT_DOUBLE_EQ(p1.nr, p2.nr);
}

TEST(GridSearchTest, CostUsesTable1Prices) {
  StorageConfig c;
  c.dram_bytes = 4ull << 30;   // 4 GB * $10
  c.nvm_bytes = 80ull << 30;   // 80 GB * $4.5
  c.ssd_bytes = 200ull << 30;  // 200 GB * $2.8
  const double gib = static_cast<double>(1ull << 30) / 1e9;
  EXPECT_NEAR(c.CostDollars(), (4 * 10 + 80 * 4.5 + 200 * 2.8) * gib, 1.0);
}

TEST(GridSearchTest, PerfPerPriceSelection) {
  std::vector<GridPoint> grid;
  StorageConfig small{1ull << 30, 0, 10ull << 30};
  StorageConfig big{32ull << 30, 160ull << 30, 10ull << 30};
  grid.push_back({small, 50'000});   // cheap, decent
  grid.push_back({big, 100'000});    // fast, expensive
  const GridPoint* best_pp = GridSearch::BestPerfPerPrice(grid);
  ASSERT_NE(best_pp, nullptr);
  EXPECT_EQ(best_pp->config.dram_bytes, small.dram_bytes);
  const GridPoint* best_t = GridSearch::BestThroughput(grid);
  ASSERT_NE(best_t, nullptr);
  EXPECT_EQ(best_t->config.dram_bytes, big.dram_bytes);
}

// ---------------------------------------------------------------------------
// OnlineTuner: driven deterministically through Step() with synthetic
// windows. A Mix describes the workload signature as fractions of the
// window's fetches; throughput follows the same peaked policy model above,
// so the annealing search has a real optimum to find.
// ---------------------------------------------------------------------------

struct Mix {
  double dram_hits, nvm_hits, ssd_fetches;        // must sum to ~1
  double promotions, demotions, nvm_installs, write_fetches;
};
constexpr Mix kPointMix{0.90, 0.05, 0.05, 0.02, 0.02, 0.03, 0.05};
constexpr Mix kWriteMix{0.55, 0.15, 0.30, 0.02, 0.25, 0.20, 0.85};

class TunerHarness {
 public:
  explicit TunerHarness(const OnlineTunerOptions& opts)
      : tuner_([] { return BufferStatsSnapshot{}; },
               [this](const MigrationPolicy& p) { applied_ = p; },
               MigrationPolicy::Eager(), opts),
        window_seconds_(opts.window_seconds) {}

  // One tuning window of `mix` traffic under the currently applied policy.
  // `fetch_scale` < 1 models a partially idle window.
  void Window(const Mix& mix, double fetch_scale = 1.0) {
    const double fetches = std::max(
        1.0, SyntheticThroughput(applied_) * window_seconds_ * fetch_scale);
    const auto n = [&](double frac) {
      return static_cast<uint64_t>(fetches * frac);
    };
    cum_.dram_hits += n(mix.dram_hits);
    cum_.nvm_hits += n(mix.nvm_hits);
    cum_.ssd_fetches += n(mix.ssd_fetches);
    cum_.promotions += n(mix.promotions);
    cum_.demotions_to_nvm += n(mix.demotions);
    cum_.nvm_installs += n(mix.nvm_installs);
    cum_.write_fetches += n(mix.write_fetches);
    tuner_.Step(cum_, window_seconds_);
  }

  void Windows(int count, const Mix& mix, double fetch_scale = 1.0) {
    for (int i = 0; i < count; ++i) Window(mix, fetch_scale);
  }

  // A latency-bound scan window: almost no fetches (one op in flight per
  // multi-hundred-µs device read), but heavy sampled hit traffic through
  // the replacer. The activity gate must count this as a live window.
  void ScanWindow(uint64_t sampled) {
    cum_.dram_hits += 2;  // far below min_window_fetches on its own
    cum_.replacer_sampled += sampled;
    cum_.read_ahead_installs += sampled / 8;
    tuner_.Step(cum_, window_seconds_);
  }

  OnlineTuner& tuner() { return tuner_; }
  const MigrationPolicy& applied() const { return applied_; }

 private:
  MigrationPolicy applied_;  // written by tuner_'s ctor; declare first
  BufferStatsSnapshot cum_;
  OnlineTuner tuner_;
  double window_seconds_;
};

// The default schedule (t0=2.0, alpha=0.8, floor 0.01) needs ~24 measured
// windows per convergence; allow slack.
constexpr int kConvergenceBudget = 40;

TEST(OnlineTunerTest, ConvergesWithinBoundedWindows) {
  TunerHarness h((OnlineTunerOptions()));
  int w = 0;
  while (!h.tuner().converged() && w < kConvergenceBudget) {
    h.Window(kPointMix);
    ++w;
  }
  EXPECT_TRUE(h.tuner().converged()) << "still annealing after " << w;
  EXPECT_EQ(h.tuner().reconvergences(), 0u);
  // The held policy is the search's best: no worse than the eager start.
  EXPECT_GE(SyntheticThroughput(h.applied()),
            SyntheticThroughput(MigrationPolicy::Eager()));
}

TEST(OnlineTunerTest, StableMixHoldsWithoutOscillation) {
  TunerHarness h((OnlineTunerOptions()));
  h.Windows(kConvergenceBudget, kPointMix);
  ASSERT_TRUE(h.tuner().converged());
  const MigrationPolicy held = h.tuner().policy();
  // 100 more identical windows: the policy must not move at all.
  for (int i = 0; i < 100; ++i) {
    h.Window(kPointMix);
    EXPECT_TRUE(h.tuner().converged());
    EXPECT_DOUBLE_EQ(h.tuner().policy().dr, held.dr);
    EXPECT_DOUBLE_EQ(h.tuner().policy().nw, held.nw);
  }
  EXPECT_EQ(h.tuner().reconvergences(), 0u);
}

TEST(OnlineTunerTest, MixShiftTriggersExactlyOneReconvergence) {
  OnlineTunerOptions opts;
  TunerHarness h(opts);
  h.Windows(kConvergenceBudget, kPointMix);
  ASSERT_TRUE(h.tuner().converged());

  // Shift the workload. Drift must fire only after `drift_windows`
  // consecutive drifted windows (hysteresis)...
  h.Windows(opts.drift_windows - 1, kWriteMix);
  EXPECT_EQ(h.tuner().reconvergences(), 0u);
  h.Window(kWriteMix);
  EXPECT_EQ(h.tuner().reconvergences(), 1u);
  EXPECT_FALSE(h.tuner().converged());

  // ...and the tuner must re-converge on the new mix within the budget,
  // then hold: no further reconvergences while the mix stays put.
  h.Windows(kConvergenceBudget, kWriteMix);
  EXPECT_TRUE(h.tuner().converged());
  h.Windows(100, kWriteMix);
  EXPECT_EQ(h.tuner().reconvergences(), 1u) << "tuner oscillated";
}

TEST(OnlineTunerTest, SingleOddWindowDoesNotThrash) {
  OnlineTunerOptions opts;
  ASSERT_GE(opts.drift_windows, 2);
  TunerHarness h(opts);
  h.Windows(kConvergenceBudget, kPointMix);
  ASSERT_TRUE(h.tuner().converged());
  // Isolated anomalies (shorter than drift_windows) interleaved with
  // normal traffic must never trigger a re-anneal.
  for (int i = 0; i < 10; ++i) {
    h.Window(kWriteMix);
    h.Windows(5, kPointMix);
  }
  EXPECT_EQ(h.tuner().reconvergences(), 0u);
  EXPECT_TRUE(h.tuner().converged());
}

TEST(OnlineTunerTest, IdleWindowsAreIgnored) {
  OnlineTunerOptions opts;
  TunerHarness h(opts);
  h.Windows(kConvergenceBudget, kPointMix);
  ASSERT_TRUE(h.tuner().converged());
  const uint64_t windows_before = h.tuner().windows();
  // Near-idle windows of a wildly different mix: below min_window_fetches
  // they must neither drift nor anneal (scale chosen so fetches < minimum).
  h.Windows(20, kWriteMix, /*fetch_scale=*/0.04);
  EXPECT_EQ(h.tuner().reconvergences(), 0u);
  EXPECT_TRUE(h.tuner().converged());
  EXPECT_EQ(h.tuner().windows(), windows_before + 20);  // still counted
}

TEST(OnlineTunerTest, ScanWindowsCountAsActivity) {
  // A pure scan phase is fetch-starved but replacer-busy. Gating on
  // fetches alone made the tuner sit idle through such phases; the
  // activity gate must keep annealing on sampled accesses alone.
  OnlineTunerOptions opts;
  TunerHarness h(opts);
  int w = 0;
  while (!h.tuner().converged() && w < kConvergenceBudget) {
    h.ScanWindow(4096);  // 2 fetches + 4096 sampled per window
    ++w;
  }
  EXPECT_TRUE(h.tuner().converged())
      << "tuner ignored scan-phase windows; still annealing after " << w;
  EXPECT_EQ(h.tuner().windows(), static_cast<uint64_t>(w));
}

TEST(OnlineTunerTest, SubThresholdScanWindowsStillIgnored) {
  // The gate widened to replacer-visible activity, but a genuinely idle
  // window (total activity below the minimum) must still be skipped.
  OnlineTunerOptions opts;
  TunerHarness h(opts);
  h.Windows(kConvergenceBudget, kPointMix);
  ASSERT_TRUE(h.tuner().converged());
  for (int i = 0; i < 20; ++i) h.ScanWindow(32);  // 2 + 32 + 4 < 256
  EXPECT_EQ(h.tuner().reconvergences(), 0u);
  EXPECT_TRUE(h.tuner().converged());
}

TEST(GridSearchTest, BudgetFiltersCandidates) {
  std::vector<GridPoint> grid;
  StorageConfig cheap{0, 0, 10ull << 30};
  StorageConfig pricey{64ull << 30, 0, 10ull << 30};
  grid.push_back({cheap, 10'000});
  grid.push_back({pricey, 200'000});
  const GridPoint* within = GridSearch::BestWithinBudget(grid, 100.0);
  ASSERT_NE(within, nullptr);
  EXPECT_EQ(within->config.dram_bytes, 0u);
  EXPECT_EQ(GridSearch::BestWithinBudget(grid, 0.0), nullptr);
}

}  // namespace
}  // namespace spitfire
