// Sharded buffer manager: routing stability, cross-shard data-plane
// correctness, cross-shard transaction atomicity under concurrent load,
// per-shard NVM recovery, and the lock-free MVTO active-transaction
// registry the sharded engine leans on.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "buffer/buffer_manager.h"
#include "db/database.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"
#include "txn/mvto_manager.h"

namespace spitfire {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }
};

// --- routing ---------------------------------------------------------------

TEST_F(ShardTest, RoutingIsDeterministicAndBlockGranular) {
  for (page_id_t pid = 0; pid < 10'000; ++pid) {
    const uint32_t s = ShardOfPage(pid, 8);
    EXPECT_EQ(s, ShardOfPage(pid, 8));  // stable across calls
    EXPECT_LT(s, 8u);
    // All pages of one 32-page block land on the same shard, so
    // sequential scans stay shard-local long enough for read-ahead.
    const page_id_t block_first = pid & ~((page_id_t{1} << kShardBlockBits) - 1);
    EXPECT_EQ(s, ShardOfPage(block_first, 8));
  }
  // One shard always routes everything to itself.
  for (page_id_t pid = 0; pid < 1'000; ++pid) {
    EXPECT_EQ(ShardOfPage(pid, 1), 0u);
  }
}

TEST_F(ShardTest, RoutingCoversAllShardsRoughlyUniformly) {
  constexpr uint32_t kShards = 8;
  constexpr page_id_t kPages = 64 * 1024;  // 2048 blocks
  std::vector<uint64_t> count(kShards, 0);
  for (page_id_t pid = 0; pid < kPages; ++pid) {
    ++count[ShardOfPage(pid, kShards)];
  }
  const uint64_t expect = kPages / kShards;
  for (uint32_t s = 0; s < kShards; ++s) {
    // Within 25% of perfectly uniform over 2048 blocks.
    EXPECT_GT(count[s], expect * 3 / 4) << "shard " << s;
    EXPECT_LT(count[s], expect * 5 / 4) << "shard " << s;
  }
}

// --- cross-shard data plane ------------------------------------------------

TEST_F(ShardTest, CrossShardWritesReadBackCorrectly) {
  SsdDevice ssd(64ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 512;
  opt.num_shards = 4;
  opt.ssd = &ssd;
  BufferManager bm(opt);
  ASSERT_EQ(bm.num_shards(), 4u);

  constexpr page_id_t kPages = 256;
  std::set<uint32_t> shards_touched;
  for (page_id_t pid = 0; pid < kPages; ++pid) {
    auto r = bm.NewPage();
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r.value().pid(), pid);
    const uint64_t marker = pid * 0x9E3779B97F4A7C15ull + 1;
    ASSERT_TRUE(r.value().WriteAt(64, sizeof(marker), &marker).ok());
    shards_touched.insert(bm.ShardIndexOf(pid));
  }
  // 8 blocks over 4 shards: every shard should own at least one.
  EXPECT_EQ(shards_touched.size(), 4u);

  // Push everything to SSD, then fetch back through the routed path.
  ASSERT_TRUE(bm.FlushAll(/*include_nvm=*/true).ok());
  for (page_id_t pid = 0; pid < kPages; ++pid) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok()) << pid;
    uint64_t marker = 0;
    ASSERT_TRUE(r.value().ReadAt(64, sizeof(marker), &marker).ok());
    EXPECT_EQ(marker, pid * 0x9E3779B97F4A7C15ull + 1) << pid;
  }

  // Merged stats see the whole engine: every fetch above counted.
  const BufferStatsSnapshot snap = bm.stats().Snapshot();
  EXPECT_GE(snap.TotalFetches(), kPages);
}

TEST_F(ShardTest, SingleShardMatchesLegacyLayout) {
  // num_shards = 1 must reproduce the unsharded engine: every page routes
  // to shard 0 and the full frame budget lands there.
  SsdDevice ssd(16ull * 1024 * 1024);
  BufferManagerOptions opt;
  opt.dram_frames = 64;
  opt.nvm_frames = 96;
  opt.num_shards = 1;
  opt.ssd = &ssd;
  BufferManager bm(opt);
  ASSERT_EQ(bm.num_shards(), 1u);
  EXPECT_EQ(bm.dram_pool()->num_frames(), 64u);
  EXPECT_EQ(bm.nvm_pool()->num_frames(), 96u);
  EXPECT_EQ(bm.miss_admission_cap(), std::max(8u, (64u + 96u) / 2));
}

// --- cross-shard transactions ----------------------------------------------

struct Account {
  uint64_t balance;
  char pad[1008];  // ~16 rows per 16 KB page so the table spans many pages
};

TEST_F(ShardTest, CrossShardTxnAtomicityUnderLoad) {
  DatabaseOptions opts;
  opts.dram_frames = 1024;
  opts.num_shards = 4;
  opts.policy = MigrationPolicy::Eager();
  auto db = Database::Create(opts).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Account)).value();

  // Bulk-load enough accounts that the heap spans several routing blocks
  // (>= 3 shards), so one transfer txn below crosses shards.
  constexpr uint64_t kAccounts = 3'000;
  constexpr uint64_t kInitialBalance = 1'000;
  {
    auto txn = db->Begin();
    for (uint64_t k = 0; k < kAccounts; ++k) {
      Account a{};
      a.balance = kInitialBalance;
      ASSERT_TRUE(t->Insert(txn.get(), k, &a).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  // Verify the table heap really spans >= 3 shards.
  BufferManager* bm = db->buffer_manager();
  std::set<uint32_t> heap_shards;
  for (page_id_t pid = 0; pid < bm->next_page_id(); ++pid) {
    heap_shards.insert(bm->ShardIndexOf(pid));
  }
  ASSERT_GE(heap_shards.size(), 3u);

  // Transfer txns move balance between accounts ~kAccounts/2 apart (far
  // pages → different shards); half the txns abort on purpose. Concurrent
  // auditors snapshot-sum every account; any torn (partially applied)
  // transfer or leaked abort breaks the invariant total.
  constexpr int kWriters = 3;
  constexpr int kTransfersPerWriter = 150;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> audits{0};
  std::atomic<uint64_t> audit_failures{0};

  std::thread auditor([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      auto txn = db->Begin();
      uint64_t total = 0;
      bool complete = true;
      for (uint64_t k = 0; k < kAccounts && complete; ++k) {
        Account a{};
        const Status st = t->Read(txn.get(), k, &a);
        if (!st.ok()) {
          complete = false;  // snapshot conflict; retry with a fresh txn
          break;
        }
        total += a.balance;
      }
      if (complete) {
        audits.fetch_add(1);
        if (total != kAccounts * kInitialBalance) audit_failures.fetch_add(1);
      }
      (void)db->Abort(txn.get());
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      uint64_t rng = 0xC0FFEE + w * 7919;
      for (int i = 0; i < kTransfersPerWriter; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const uint64_t from = rng % kAccounts;
        const uint64_t to = (from + kAccounts / 2) % kAccounts;
        const bool abort = (rng >> 32) & 1;
        auto txn = db->Begin();
        Account fa{}, ta{};
        if (!t->Read(txn.get(), from, &fa).ok() ||
            !t->Read(txn.get(), to, &ta).ok() || fa.balance == 0) {
          (void)db->Abort(txn.get());
          continue;
        }
        fa.balance -= 1;
        ta.balance += 1;
        if (!t->Update(txn.get(), from, &fa).ok() ||
            !t->Update(txn.get(), to, &ta).ok()) {
          (void)db->Abort(txn.get());
          continue;
        }
        if (abort) {
          ASSERT_TRUE(db->Abort(txn.get()).ok());
        } else if (!db->Commit(txn.get()).ok()) {
          // Commit-time conflict: already rolled back by the engine.
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  auditor.join();

  EXPECT_GT(audits.load(), 0u);
  EXPECT_EQ(audit_failures.load(), 0u);

  // Final ground truth after all writers are done.
  auto txn = db->Begin();
  uint64_t total = 0;
  for (uint64_t k = 0; k < kAccounts; ++k) {
    Account a{};
    ASSERT_TRUE(t->Read(txn.get(), k, &a).ok());
    total += a.balance;
  }
  EXPECT_EQ(total, kAccounts * kInitialBalance);
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

// --- recovery --------------------------------------------------------------

TEST_F(ShardTest, RecoveryRepopulatesEveryShard) {
  constexpr size_t kNvmFrames = 256;
  constexpr size_t kShards = 4;
  constexpr page_id_t kPages = 192;  // 6 blocks: every shard owns >= 1
  SsdDevice ssd(64ull * 1024 * 1024);
  NvmDevice nvm(BufferPool::RequiredCapacity(kNvmFrames,
                                             /*persistent_frame_table=*/true));

  BufferManagerOptions opt;
  opt.dram_frames = 0;  // NVM-SSD hierarchy: new pages live in NVM
  opt.nvm_frames = kNvmFrames;
  opt.num_shards = kShards;
  opt.ssd = &ssd;
  opt.nvm = &nvm;

  {
    BufferManager bm(opt);
    for (page_id_t pid = 0; pid < kPages; ++pid) {
      auto r = bm.NewPage();
      ASSERT_TRUE(r.ok());
      const uint64_t marker = ~pid;
      ASSERT_TRUE(r.value().WriteAt(128, sizeof(marker), &marker).ok());
    }
    // Crash: no flush. The NVM frame tables (one slice per shard, one
    // shared on-device layout) are the only surviving metadata.
  }

  BufferManager bm(opt);
  ASSERT_EQ(bm.NvmResidentPages(), 0u);
  ASSERT_TRUE(bm.RecoverNvmResidentPages().ok());
  EXPECT_EQ(bm.NvmResidentPages(), kPages);
  EXPECT_GE(bm.next_page_id(), kPages);
  // Every shard's mapping slice was rebuilt.
  for (size_t s = 0; s < kShards; ++s) {
    EXPECT_GT(bm.shard(s)->NvmResidentPages(), 0u) << "shard " << s;
  }
  // And the contents survived.
  for (page_id_t pid = 0; pid < kPages; ++pid) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok()) << pid;
    uint64_t marker = 0;
    ASSERT_TRUE(r.value().ReadAt(128, sizeof(marker), &marker).ok());
    EXPECT_EQ(marker, ~pid) << pid;
  }
}

TEST_F(ShardTest, RecoveryRejectsMismatchedShardCount) {
  constexpr size_t kNvmFrames = 256;
  SsdDevice ssd(64ull * 1024 * 1024);
  NvmDevice nvm(BufferPool::RequiredCapacity(kNvmFrames,
                                             /*persistent_frame_table=*/true));
  BufferManagerOptions opt;
  opt.dram_frames = 0;
  opt.nvm_frames = kNvmFrames;
  opt.num_shards = 4;
  opt.ssd = &ssd;
  opt.nvm = &nvm;
  {
    BufferManager bm(opt);
    for (page_id_t pid = 0; pid < 192; ++pid) {
      ASSERT_TRUE(bm.NewPage().ok());
    }
  }
  // Reopening with a different shard count must be detected, not silently
  // mis-partitioned: some shard finds a page in its frame slice that
  // routes elsewhere.
  opt.num_shards = 2;
  BufferManager bm(opt);
  const Status st = bm.RecoverNvmResidentPages();
  EXPECT_FALSE(st.ok()) << st.ToString();
}

// --- lock-free MVTO registry ----------------------------------------------

TEST_F(ShardTest, MvtoSlotRegistryConcurrentBeginFinish) {
  TransactionManager tm;
  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 2'000;
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto txn = tm.Begin();
        // The GC watermark may never pass a live transaction.
        EXPECT_LE(tm.MinActiveTs(), txn->ts());
        tm.Finish(txn.get());
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(tm.active_count(), 0u);
  EXPECT_EQ(tm.LastAssignedTs(),
            static_cast<timestamp_t>(kThreads) * kTxnsPerThread);
  // With nothing active the watermark is the dispenser frontier.
  EXPECT_EQ(tm.MinActiveTs(), tm.LastAssignedTs() + 1);
}

TEST_F(ShardTest, MvtoFinishIsIdempotentAndSlotsRecycle) {
  TransactionManager tm;
  // Far more txns than slots: every slot must recycle cleanly.
  for (int i = 0; i < 3 * static_cast<int>(TransactionManager::kMaxActiveTxns);
       ++i) {
    auto txn = tm.Begin();
    tm.Finish(txn.get());
    tm.Finish(txn.get());  // double-finish must be harmless
  }
  EXPECT_EQ(tm.active_count(), 0u);
}

}  // namespace
}  // namespace spitfire
