// Recovery edge cases beyond the happy path in database_test: repeated
// crashes, crash during checkpoint-equivalent states, log drains around the
// crash point, workload-driven crash consistency, and restart counters.
#include <gtest/gtest.h>

#include "db/database.h"
#include "storage/perf_model.h"
#include "workload/ycsb.h"

namespace spitfire {
namespace {

struct Cell {
  uint64_t v;
  uint64_t gen;
};

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    opts_.dram_frames = 48;
    opts_.nvm_frames = 96;
    opts_.policy = MigrationPolicy::Lazy();
    opts_.enable_wal = true;
    opts_.log_staging_size = 1 << 20;
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  DatabaseOptions opts_;
};

TEST_F(RecoveryTest, RepeatedCrashRecoverCycles) {
  auto db = Database::Create(opts_).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Cell)).value();
  {
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 64; ++k) {
      Cell c{k, 0};
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  for (int cycle = 1; cycle <= 4; ++cycle) {
    // Mutate a slice of keys, then crash.
    for (uint64_t k = 0; k < 64; k += 2) {
      auto txn = db->Begin();
      Cell c{k * 10 + static_cast<uint64_t>(cycle),
             static_cast<uint64_t>(cycle)};
      ASSERT_TRUE(t->Update(txn.get(), k, &c).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    DatabaseEnv env = Database::Crash(std::move(db));
    auto db_r = Database::Recover(opts_, std::move(env));
    ASSERT_TRUE(db_r.ok()) << "cycle " << cycle << ": "
                           << db_r.status().ToString();
    db = db_r.MoveValue();
    t = db->GetTable(1);
    auto txn = db->Begin();
    Cell c{};
    for (uint64_t k = 0; k < 64; ++k) {
      ASSERT_TRUE(t->Read(txn.get(), k, &c).ok())
          << "cycle " << cycle << " key " << k;
      if (k % 2 == 0) {
        EXPECT_EQ(c.gen, static_cast<uint64_t>(cycle));
      } else {
        EXPECT_EQ(c.v, k);
      }
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
}

TEST_F(RecoveryTest, CrashImmediatelyAfterCreateIsRecoverable) {
  auto db = Database::Create(opts_).MoveValue();
  (void)db->CreateTable(1, sizeof(Cell)).value();
  DatabaseEnv env = Database::Crash(std::move(db));
  auto db_r = Database::Recover(opts_, std::move(env));
  ASSERT_TRUE(db_r.ok());
  EXPECT_NE(db_r.value()->GetTable(1), nullptr);
}

TEST_F(RecoveryTest, CrashAfterExplicitDrainRecovers) {
  DatabaseEnv env;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Cell)).value();
    for (uint64_t k = 0; k < 40; ++k) {
      auto txn = db->Begin();
      Cell c{k + 7, 1};
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
      if (k % 10 == 9) {
        ASSERT_TRUE(db->log_manager()->Drain().ok());
      }
    }
    env = Database::Crash(std::move(db));
  }
  auto db = Database::Recover(opts_, std::move(env)).MoveValue();
  Table* t = db->GetTable(1);
  auto txn = db->Begin();
  Cell c{};
  for (uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(t->Read(txn.get(), k, &c).ok()) << k;
    EXPECT_EQ(c.v, k + 7);
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(RecoveryTest, MultiTableRecovery) {
  DatabaseEnv env;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* a = db->CreateTable(1, sizeof(Cell)).value();
    Table* b = db->CreateTable(2, 256).value();
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 20; ++k) {
      Cell c{k, 1};
      ASSERT_TRUE(a->Insert(txn.get(), k, &c).ok());
      std::vector<std::byte> blob(256, std::byte{static_cast<uint8_t>(k)});
      ASSERT_TRUE(b->Insert(txn.get(), k, blob.data()).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
    env = Database::Crash(std::move(db));
  }
  auto db = Database::Recover(opts_, std::move(env)).MoveValue();
  Table* a = db->GetTable(1);
  Table* b = db->GetTable(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->tuple_size(), sizeof(Cell));
  EXPECT_EQ(b->tuple_size(), 256u);
  auto txn = db->Begin();
  Cell c{};
  std::vector<std::byte> blob(256);
  for (uint64_t k = 0; k < 20; ++k) {
    ASSERT_TRUE(a->Read(txn.get(), k, &c).ok());
    EXPECT_EQ(c.v, k);
    ASSERT_TRUE(b->Read(txn.get(), k, blob.data()).ok());
    EXPECT_EQ(blob[100], std::byte{static_cast<uint8_t>(k)});
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(RecoveryTest, CheckpointerThreadKeepsDatabaseConsistent) {
  DatabaseOptions opts = opts_;
  opts.checkpoint_interval_ms = 20;  // aggressive background flushing
  DatabaseEnv env;
  {
    auto db = Database::Create(opts).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Cell)).value();
    Xoshiro256 rng(5);
    {
      auto txn = db->Begin();
      for (uint64_t k = 0; k < 50; ++k) {
        Cell c{0, 0};
        ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
      }
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    for (int i = 0; i < 2000; ++i) {
      auto txn = db->Begin();
      const uint64_t k = rng.NextUint64(50);
      Cell c{static_cast<uint64_t>(i), 0};
      if (t->Update(txn.get(), k, &c).ok()) {
        ASSERT_TRUE(db->Commit(txn.get()).ok());
      } else {
        ASSERT_TRUE(db->Abort(txn.get()).ok());
      }
    }
    EXPECT_GT(db->checkpointer()->rounds(), 0u);
    env = Database::Crash(std::move(db));
  }
  auto db = Database::Recover(opts, std::move(env)).MoveValue();
  Table* t = db->GetTable(1);
  auto txn = db->Begin();
  Cell c{};
  for (uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(t->Read(txn.get(), k, &c).ok()) << k;
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(RecoveryTest, YcsbWorkloadSurvivesCrash) {
  DatabaseEnv env;
  constexpr uint64_t kTuples = 500;
  {
    auto db = Database::Create(opts_).MoveValue();
    YcsbWorkload ycsb(db.get(), YcsbConfig::Balanced(kTuples));
    ASSERT_TRUE(ycsb.Load().ok());
    Xoshiro256 rng(2);
    for (int i = 0; i < 500; ++i) (void)ycsb.RunTransaction(rng);
    env = Database::Crash(std::move(db));
  }
  auto db = Database::Recover(opts_, std::move(env)).MoveValue();
  Table* t = db->GetTable(1);
  ASSERT_NE(t, nullptr);
  auto txn = db->Begin();
  std::vector<std::byte> tuple(YcsbWorkload::kTupleSize);
  for (uint64_t k = 0; k < kTuples; ++k) {
    ASSERT_TRUE(t->Read(txn.get(), k, tuple.data()).ok()) << k;
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(RecoveryTest, ShardCountMismatchReturnsCleanError) {
  // Populate the persistent NVM frame table under one shard count, then
  // reopen under another: pages recovered from a shard's frame slice no
  // longer route back to it, which must surface as a clean error telling
  // the operator to reopen with the original shard count — not as silent
  // misrouting. ShardOfPage routes in 32-page blocks, so the heap must
  // span several blocks (pids past 64) before any page routes to shard 1;
  // a fat tuple gets there with few rows.
  struct Blob {
    uint64_t v;
    uint64_t pad[255];  // 2 KiB per tuple → a handful of tuples per page
  };
  DatabaseOptions opts = opts_;
  opts.num_shards = 1;
  opts.policy = MigrationPolicy::Eager();  // force pages through NVM
  DatabaseEnv env;
  {
    auto db = Database::Create(opts).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Blob)).value();
    // Enough rows that NVM admissions (DRAM evictions) spill past frame
    // 48 — the slice boundary of a two-shard reopen — with low-block page
    // ids still being admitted.
    for (uint64_t k = 0; k < 900; ++k) {
      auto txn = db->Begin();
      Blob c{};
      c.v = k;
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    env = Database::Crash(std::move(db));
  }
  DatabaseOptions wrong = opts;
  wrong.num_shards = 2;
  DatabaseEnv back;
  auto db_r = Database::Recover(wrong, std::move(env), &back);
  ASSERT_FALSE(db_r.ok());
  EXPECT_NE(db_r.status().ToString().find("shard"), std::string::npos)
      << db_r.status().ToString();
  // The devices came back out; recovery with the original count works.
  auto db = Database::Recover(opts, std::move(back)).MoveValue();
  auto txn = db->Begin();
  Blob c{};
  ASSERT_TRUE(db->GetTable(1)->Read(txn.get(), 5, &c).ok());
  EXPECT_EQ(c.v, 5u);
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

TEST_F(RecoveryTest, GarbageLogTailFailsCleanly) {
  // Within the durable length the drain protocol guarantees fully
  // persisted records (the header only advances after the data persist),
  // so garbage inside that region is real corruption and must fail the
  // recovery loudly instead of replaying nonsense.
  DatabaseEnv env;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Cell)).value();
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 16; ++k) {
      Cell c{k, 1};
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
    ASSERT_TRUE(db->log_manager()->Drain().ok());
    env = Database::Crash(std::move(db));
  }
  std::vector<std::byte> junk(64, std::byte{0xFF});
  ASSERT_TRUE(env.log_ssd
                  ->Write(LogManager::kLogDataOffset, junk.data(), junk.size())
                  .ok());
  auto db_r = Database::Recover(opts_, std::move(env));
  ASSERT_FALSE(db_r.ok());
  EXPECT_TRUE(db_r.status().IsCorruption()) << db_r.status().ToString();
}

TEST_F(RecoveryTest, DestroyedLogHeaderFailsCleanly) {
  // Both header slots invalid (version + checksum protect each): the log
  // device is unreadable and recovery must say so, not guess a length.
  DatabaseEnv env;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Cell)).value();
    auto txn = db->Begin();
    Cell c{1, 1};
    ASSERT_TRUE(t->Insert(txn.get(), 1, &c).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
    ASSERT_TRUE(db->log_manager()->Drain().ok());
    env = Database::Crash(std::move(db));
  }
  std::vector<std::byte> junk(512, std::byte{0x13});
  ASSERT_TRUE(env.log_ssd->Write(0, junk.data(), junk.size()).ok());
  auto db_r = Database::Recover(opts_, std::move(env));
  ASSERT_FALSE(db_r.ok());
  EXPECT_TRUE(db_r.status().IsCorruption()) << db_r.status().ToString();
}

TEST_F(RecoveryTest, TimestampsAdvancePastRecoveredState) {
  DatabaseEnv env;
  timestamp_t last_ts = 0;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Cell)).value();
    auto txn = db->Begin();
    Cell c{1, 1};
    ASSERT_TRUE(t->Insert(txn.get(), 1, &c).ok());
    ASSERT_TRUE(db->Commit(txn.get()).ok());
    last_ts = txn->ts();
    env = Database::Crash(std::move(db));
  }
  auto db = Database::Recover(opts_, std::move(env)).MoveValue();
  auto txn = db->Begin();
  EXPECT_GT(txn->ts(), last_ts);
  // And the recovered version must be visible to the new transaction.
  Cell c{};
  ASSERT_TRUE(db->GetTable(1)->Read(txn.get(), 1, &c).ok());
  ASSERT_TRUE(db->Commit(txn.get()).ok());
}

}  // namespace
}  // namespace spitfire
