#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

namespace spitfire {
namespace {

// End-to-end scan-resistance property (the workload behind
// bench/phase_change.cc, shrunk to test size): warm a hot set into DRAM,
// stream a full-table scan through the pool, and check how much of the hot
// set is still DRAM-resident afterwards. The hierarchy is DRAM-SSD — with
// an NVM middle tier the miss path installs scan pages into NVM and DRAM
// never churns, which would make every policy look scan-resistant.
class ScanResistanceTest : public ::testing::Test {
 protected:
  static constexpr size_t kDramFrames = 64;
  static constexpr int kDbPages = 512;
  static constexpr int kHotPages = 32;

  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    ssd_ = std::make_unique<SsdDevice>(64ull * 1024 * 1024);
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  std::unique_ptr<BufferManager> Make(ReplacerKind kind) {
    BufferManagerOptions opt;
    opt.dram_frames = kDramFrames;
    opt.nvm_frames = 0;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd_.get();
    opt.dram_replacer = kind;
    // Every access reaches the replacer: promotion needs exactly two
    // touches instead of two *sampled* touches, keeping the test fast and
    // deterministic.
    opt.replacer_sample_rate = 1;
    return std::make_unique<BufferManager>(opt);
  }

  // Hot pages are strided through the scan range so retention measures the
  // policy, not accidental locality at the scan's start.
  static page_id_t HotPid(const std::vector<page_id_t>& pids, int i) {
    return pids[static_cast<size_t>(i * (kDbPages / kHotPages))];
  }

  void Fetch(BufferManager& bm, page_id_t pid) {
    auto r = bm.FetchPage(pid, AccessIntent::kRead);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }

  // Warm the hot set (several rounds, so 2Q promotes past probation), then
  // scan every page once, then report hot residency before/after.
  void RunScenario(BufferManager& bm, const std::vector<page_id_t>& pids,
                   size_t* resident_before, size_t* resident_after) {
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < kHotPages; ++i) Fetch(bm, HotPid(pids, i));
    }
    *resident_before = HotResident(bm, pids);
    for (page_id_t pid : pids) Fetch(bm, pid);
    *resident_after = HotResident(bm, pids);
  }

  size_t HotResident(const BufferManager& bm,
                     const std::vector<page_id_t>& pids) {
    size_t n = 0;
    for (int i = 0; i < kHotPages; ++i) {
      if (bm.IsDramResident(HotPid(pids, i))) ++n;
    }
    return n;
  }

  std::vector<page_id_t> CreatePages(BufferManager& bm) {
    std::vector<page_id_t> pids;
    for (int i = 0; i < kDbPages; ++i) {
      auto r = bm.NewPage();
      EXPECT_TRUE(r.ok());
      pids.push_back(r.MoveValue().pid());
    }
    return pids;
  }

  std::unique_ptr<SsdDevice> ssd_;
};

TEST_F(ScanResistanceTest, TwoQRetainsHotSetAcrossScan) {
  auto bm = Make(ReplacerKind::kTwoQ);
  auto pids = CreatePages(*bm);
  size_t before = 0, after = 0;
  RunScenario(*bm, pids, &before, &after);
  ASSERT_GE(before, static_cast<size_t>(kHotPages) * 9 / 10)
      << "hot set failed to warm";
  // The property under test: >= 80% of the hot set survives a full scan.
  EXPECT_GE(after, static_cast<size_t>(kHotPages) * 8 / 10)
      << "2q retained only " << after << "/" << kHotPages;
}

TEST_F(ScanResistanceTest, ClockFlushesHotSetAcrossScan) {
  // The control: CLOCK has no scan defense, so the same scenario must
  // flush most of the hot set. (If this starts passing retention, the
  // scenario has stopped exercising eviction and the 2Q test above proves
  // nothing.)
  auto bm = Make(ReplacerKind::kClock);
  auto pids = CreatePages(*bm);
  size_t before = 0, after = 0;
  RunScenario(*bm, pids, &before, &after);
  ASSERT_GE(before, static_cast<size_t>(kHotPages) * 9 / 10);
  EXPECT_LE(after, static_cast<size_t>(kHotPages) / 2)
      << "clock unexpectedly retained " << after << "/" << kHotPages;
}

TEST_F(ScanResistanceTest, ScanPagesStillReadableWithTwoQ) {
  // Scan resistance must not come at the cost of correctness: every page
  // of the scan is fetched and pinned successfully even while the policy
  // refuses to evict the protected segment.
  auto bm = Make(ReplacerKind::kTwoQ);
  auto pids = CreatePages(*bm);
  size_t before = 0, after = 0;
  RunScenario(*bm, pids, &before, &after);
  for (int round = 0; round < 2; ++round) {
    for (page_id_t pid : pids) Fetch(*bm, pid);
  }
}

}  // namespace
}  // namespace spitfire
