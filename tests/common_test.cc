#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"
#include "common/timer.h"

namespace spitfire {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("page 7");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: page 7");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::OutOfMemory().code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(Status::IoError().code(), StatusCode::kIoError);
  EXPECT_EQ(Status::InvalidArgument().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Aborted().code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Busy().code(), StatusCode::kBusy);
  EXPECT_EQ(Status::Corruption().code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::NotSupported().code(), StatusCode::kNotSupported);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Busy("later"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsBusy());
}

TEST(ResultTest, MoveValueTransfersOwnership) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = r.MoveValue();
  EXPECT_EQ(v.size(), 3u);
}

TEST(XoshiroTest, DeterministicForSameSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(XoshiroTest, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(XoshiroTest, NextUint64InRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextUint64(17), 17u);
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(XoshiroTest, BernoulliExtremes) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(0.0));
  }
}

TEST(XoshiroTest, BernoulliApproximatesProbability) {
  Xoshiro256 rng(99);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.2);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.2, 0.01);
}

TEST(ZipfianTest, UniformWhenThetaZero) {
  ZipfianGenerator z(100, 0.0);
  Xoshiro256 rng(5);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 100000; ++i) counts[z.Next(rng)]++;
  // Every key should appear; roughly uniform.
  for (int c : counts) EXPECT_GT(c, 500);
}

TEST(ZipfianTest, SkewConcentratesOnSmallKeys) {
  ZipfianGenerator z(1000, 0.9);
  Xoshiro256 rng(5);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) head += (z.Next(rng) < 10);
  // With theta=0.9 the top-10 keys take a large share.
  EXPECT_GT(head, n / 4);
}

TEST(ZipfianTest, OutputAlwaysInRange) {
  ZipfianGenerator z(37, 0.5);
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(rng), 37u);
}

TEST(ScrambledZipfianTest, SpreadsHotKeys) {
  ScrambledZipfianGenerator z(1000, 0.9);
  Xoshiro256 rng(5);
  std::set<uint64_t> distinct;
  for (int i = 0; i < 1000; ++i) distinct.insert(z.Next(rng));
  // Hashing should spread the head across the key space.
  EXPECT_GT(distinct.size(), 100u);
  for (uint64_t v : distinct) EXPECT_LT(v, 1000u);
}

TEST(ThreadLocalRngTest, DistinctAcrossThreads) {
  uint64_t a = 0, b = 0;
  std::thread t1([&] { a = ThreadLocalRng().Next(); });
  std::thread t2([&] { b = ThreadLocalRng().Next(); });
  t1.join();
  t2.join();
  EXPECT_NE(a, b);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (uint64_t v : {10, 20, 30, 40, 50}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 50u);
  EXPECT_DOUBLE_EQ(h.Mean(), 30.0);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Add(5);
  b.Add(500);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 500u);
}

TEST(HistogramTest, PercentileMonotonic) {
  Histogram h;
  Xoshiro256 rng(3);
  for (int i = 0; i < 10000; ++i) h.Add(rng.NextUint64(1000000));
  EXPECT_LE(h.Percentile(50), h.Percentile(99));
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  SpinWaitNanos(1000000);  // 1 ms
  EXPECT_GE(t.ElapsedNanos(), 900000u);
}

}  // namespace
}  // namespace spitfire
