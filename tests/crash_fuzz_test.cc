// Crash-injection recovery fuzzing: run transactions against a live
// database while a FaultInjector counts durability operations (SSD page
// writes and persists, NVM stores and flush-backs) and kills the device
// stack at a randomized point — mid-group-commit, mid-checkpoint,
// mid-coalesced-write, mid-NVM-admission. The harness then simulates
// power loss (destroy the engine, roll NVM back to its durable shadow),
// recovers, and checks the durability contract against a transaction
// ledger kept outside the database:
//
//   - every transaction whose Commit() returned OK is fully present,
//   - no uncommitted or aborted effect is visible,
//   - a transaction whose Commit() returned an error (the device died
//     mid-commit) is indeterminate: all of its effects or none,
//   - heap/index invariants hold (Database::CheckIntegrity), and
//   - for the TPC-C-style payments, money is conserved: each warehouse's
//     ytd delta equals the sum of its districts' deltas, and both match
//     the committed payments plus a consistent subset of indeterminate
//     ones.
//
// Runs are driven by a per-iteration seed derived from a base seed
// (SPITFIRE_FUZZ_SEED) so a failure reproduces from the printed repro
// line. Iteration count: SPITFIRE_FUZZ_ITERS (default kept small enough
// for the regular test suite; CI's fuzz job raises it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "db/database.h"
#include "storage/fault_injector.h"
#include "storage/perf_model.h"
#include "workload/tpcc.h"

namespace spitfire {
namespace {

uint64_t EnvOr(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return def;
  return std::strtoull(v, nullptr, 10);
}

// One deterministic iteration's configuration, drawn from the seed.
struct FuzzConfig {
  uint64_t seed = 0;
  bool with_nvm = true;
  size_t dram_frames = 48;
  size_t nvm_frames = 96;
  size_t num_shards = 1;
  bool checkpoint_after_load = false;
  // Kill spec: either an op-count trip or a named kill point.
  uint64_t kill_after_ops = 0;
  std::string kill_point;
  uint64_t kill_point_hits = 1;
  // Extra crash-recover cycles after the first recovery.
  bool double_crash = false;
  // Install a second injector across Recover() itself.
  bool crash_during_recovery = false;
  uint64_t recovery_kill_after_ops = 0;

  std::string ToString() const {
    std::ostringstream os;
    os << "seed=" << seed << " nvm=" << with_nvm << " dram=" << dram_frames
       << " nvm_frames=" << nvm_frames << " shards=" << num_shards
       << " ckpt_after_load=" << checkpoint_after_load
       << " kill_after_ops=" << kill_after_ops;
    if (!kill_point.empty()) {
      os << " kill_point=" << kill_point << ":" << kill_point_hits;
    }
    os << " double_crash=" << double_crash
       << " crash_during_recovery=" << crash_during_recovery << ":"
       << recovery_kill_after_ops;
    return os.str();
  }
};

FuzzConfig DrawConfig(uint64_t base_seed, uint64_t iter) {
  std::mt19937_64 rng(base_seed * 0x9E3779B97F4A7C15ull + iter);
  FuzzConfig c;
  c.seed = rng();
  c.with_nvm = (iter % 3) != 2;  // two thirds with an NVM tier
  c.dram_frames = 32 + rng() % 64;
  c.nvm_frames = c.with_nvm ? 64 + rng() % 96 : 0;
  c.num_shards = 1 + rng() % 2;
  c.checkpoint_after_load = (rng() % 2) == 0;
  if (rng() % 5 == 0) {
    static const char* kPoints[] = {"wal.drain.file_written",
                                    "wal.drain.header_written"};
    c.kill_point = kPoints[rng() % 2];
    c.kill_point_hits = 1 + rng() % 3;
    // Belt and braces: if the point never fires, an op-count trip still
    // ends the run.
    c.kill_after_ops = 400 + rng() % 400;
  } else {
    c.kill_after_ops = 1 + rng() % 150;
  }
  c.double_crash = rng() % 3 == 0;
  c.crash_during_recovery = rng() % 6 == 0;
  c.recovery_kill_after_ops = 1 + rng() % 40;
  return c;
}

DatabaseOptions MakeOptions(const FuzzConfig& c) {
  DatabaseOptions o;
  o.dram_frames = c.dram_frames;
  o.nvm_frames = c.nvm_frames;
  o.num_shards = c.num_shards;
  o.policy = c.with_nvm ? MigrationPolicy::Lazy() : MigrationPolicy::Eager();
  o.enable_wal = true;
  o.log_staging_size = 1 << 20;
  return o;
}

// Crash (destroying the engine), roll NVM back to its durable shadow, and
// uninstall the injector. Returns the surviving devices.
DatabaseEnv CrashAndRestore(std::unique_ptr<Database> db) {
  DatabaseEnv env = Database::Crash(std::move(db));
  if (FaultInjector* fi = FaultInjector::Get()) {
    if (env.nvm != nullptr) fi->RestoreNvm();
    FaultInjector::Uninstall();
  }
  return env;
}

// Recover, tolerating injected crashes during recovery itself: every
// failed attempt simulates another power loss (restore NVM, drop the
// injector) and retries without faults. The final attempt must succeed.
Result<std::unique_ptr<Database>> RecoverWithRetries(
    const DatabaseOptions& opts, DatabaseEnv env, std::string* trace) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    DatabaseEnv back;
    auto db_r = Database::Recover(opts, std::move(env), &back);
    if (db_r.ok()) {
      if (FaultInjector::Get() != nullptr) FaultInjector::Uninstall();
      return db_r;
    }
    *trace += " recover_attempt_" + std::to_string(attempt) + "=" +
              db_r.status().ToString();
    if (FaultInjector* fi = FaultInjector::Get()) {
      if (back.nvm != nullptr) fi->RestoreNvm();
      FaultInjector::Uninstall();
    } else {
      // No injector: the failure is a real recovery bug, not an injected
      // crash. Surface it.
      return db_r.status();
    }
    env = std::move(back);
  }
  return Status::IoError("recovery did not converge after 3 attempts");
}

// ---------------------------------------------------------------------------
// YCSB-style fuzz: single table, per-worker key ownership, unique values.
// ---------------------------------------------------------------------------

struct YcsbTuple {
  uint64_t val;
  uint64_t pad[7];
};

struct YcsbWrite {
  uint64_t key;
  std::optional<uint64_t> val;  // nullopt = delete (tombstone)
};

struct YcsbLedger {
  // Durable truth: key -> value (absent = never inserted or deleted).
  std::map<uint64_t, std::optional<uint64_t>> committed;
  // One per worker at most: the last transaction if Commit() errored.
  std::vector<std::vector<YcsbWrite>> indeterminate;
};

constexpr uint32_t kYcsbWorkers = 3;
constexpr uint64_t kYcsbKeysPerWorker = 32;
constexpr uint64_t kYcsbKeys = kYcsbWorkers * kYcsbKeysPerWorker;

// Runs the interleaved workload until the injector trips (or the step
// budget runs out), maintaining the ledger. Transactions from different
// workers stay open concurrently — MVTO-level concurrency with a
// deterministic schedule, so a failing seed replays.
void RunYcsbWorkload(Database* db, Table* t, std::mt19937_64& rng,
                     YcsbLedger* ledger) {
  struct Worker {
    std::unique_ptr<Transaction> txn;
    std::vector<YcsbWrite> plan;   // staged effects (applied on commit)
    size_t next_op = 0;
    bool stopped = false;
  };
  std::vector<Worker> workers(kYcsbWorkers);
  ledger->indeterminate.resize(kYcsbWorkers);
  uint64_t next_val = 1'000'000;  // unique, distinct from load values

  for (int step = 0; step < 900; ++step) {
    if (FaultInjector::IsTripped()) break;
    if (step % 97 == 96) {
      (void)db->Checkpoint();  // mid-checkpoint crash coverage
      continue;
    }
    Worker& w = workers[step % kYcsbWorkers];
    if (w.stopped) continue;
    const uint64_t base = (step % kYcsbWorkers) * kYcsbKeysPerWorker;

    if (w.txn == nullptr) {
      w.txn = db->Begin();
      w.plan.clear();
      w.next_op = 0;
      // 1..3 writes to distinct owned keys; ~1 in 8 is a delete.
      const size_t nops = 1 + rng() % 3;
      std::vector<uint64_t> keys;
      while (keys.size() < nops) {
        const uint64_t k = base + rng() % kYcsbKeysPerWorker;
        if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
          keys.push_back(k);
        }
      }
      for (uint64_t k : keys) {
        const bool present = ledger->committed.count(k) != 0 &&
                             ledger->committed[k].has_value();
        if (present && rng() % 8 == 0) {
          w.plan.push_back({k, std::nullopt});
        } else {
          w.plan.push_back({k, next_val++});
        }
      }
      continue;
    }

    if (w.next_op < w.plan.size()) {
      const YcsbWrite& op = w.plan[w.next_op];
      const bool present = ledger->committed.count(op.key) != 0 &&
                           ledger->committed[op.key].has_value();
      Status st;
      if (!op.val.has_value()) {
        st = t->Delete(w.txn.get(), op.key);
      } else if (present) {
        YcsbTuple tup{*op.val, {}};
        st = t->Update(w.txn.get(), op.key, &tup);
      } else {
        YcsbTuple tup{*op.val, {}};
        st = t->Insert(w.txn.get(), op.key, &tup);
      }
      if (!st.ok()) {
        // Conflict or dying device: roll back cleanly; no ledger effect.
        (void)db->Abort(w.txn.get());
        w.txn.reset();
        continue;
      }
      // Occasionally read someone else's key (bumps read_ts, provoking
      // write conflicts).
      if (rng() % 4 == 0) {
        YcsbTuple tup;
        (void)t->Read(w.txn.get(), rng() % kYcsbKeys, &tup);
      }
      ++w.next_op;
      continue;
    }

    const Status st = db->Commit(w.txn.get());
    if (st.ok()) {
      for (const YcsbWrite& op : w.plan) ledger->committed[op.key] = op.val;
    } else {
      // Commit attempted but errored: the commit record may or may not be
      // durable. Either full effect or none is acceptable; the worker's
      // in-doubt transaction is its last (nothing overwrites it later).
      ledger->indeterminate[step % kYcsbWorkers] = w.plan;
      w.stopped = true;
    }
    w.txn.reset();
  }
  // In-flight transactions are dropped without abort: their uncommitted
  // versions and stale write locks are exactly what recovery must scrub.
  for (Worker& w : workers) w.txn.reset();
}

// Validates the recovered database against the ledger. Returns a
// diagnostic string on violation, empty on success.
std::string ValidateYcsb(Database* db, Table* t, const YcsbLedger& ledger) {
  std::string why;
  if (Status st = db->CheckIntegrity(&why); !st.ok()) {
    return "integrity: " + why;
  }
  auto txn = db->Begin();
  std::ostringstream err;
  // Per-indeterminate-transaction effect observations for the atomicity
  // check: 0 = old state seen, 1 = new state seen, -1 = indistinguishable.
  std::vector<std::vector<int>> effect(ledger.indeterminate.size());
  for (uint64_t k = 0; k < kYcsbKeys; ++k) {
    YcsbTuple tup{};
    const Status st = t->Read(txn.get(), k, &tup);
    std::optional<uint64_t> observed;
    if (st.ok()) {
      observed = tup.val;
    } else if (!st.IsNotFound()) {
      err << "key " << k << ": read error " << st.ToString();
      break;
    }
    auto it = ledger.committed.find(k);
    std::optional<uint64_t> expected;
    if (it != ledger.committed.end()) expected = it->second;
    bool ok = observed == expected;
    for (size_t wkr = 0; wkr < ledger.indeterminate.size(); ++wkr) {
      for (const YcsbWrite& op : ledger.indeterminate[wkr]) {
        if (op.key != k) continue;
        if (op.val == expected) {
          effect[wkr].push_back(-1);
        } else if (observed == op.val) {
          effect[wkr].push_back(1);
          ok = true;
        } else if (observed == expected) {
          effect[wkr].push_back(0);
        }
      }
    }
    if (!ok) {
      err << "key " << k << ": observed "
          << (observed ? std::to_string(*observed) : "absent")
          << " expected "
          << (expected ? std::to_string(*expected) : "absent");
      break;
    }
  }
  (void)db->Commit(txn.get());
  if (!err.str().empty()) return err.str();
  for (size_t wkr = 0; wkr < effect.size(); ++wkr) {
    bool some_new = false;
    bool some_old = false;
    for (int e : effect[wkr]) {
      some_new |= e == 1;
      some_old |= e == 0;
    }
    if (some_new && some_old) {
      return "indeterminate transaction of worker " + std::to_string(wkr) +
             " applied partially (atomicity violated)";
    }
  }
  return "";
}

void RunYcsbIteration(const FuzzConfig& c) {
  std::mt19937_64 rng(c.seed);
  DatabaseOptions opts = MakeOptions(c);
  std::string trace;

  auto db = Database::Create(opts).MoveValue();
  Table* t = db->CreateTable(1, sizeof(YcsbTuple)).value();
  YcsbLedger ledger;
  {
    auto txn = db->Begin();
    for (uint64_t k = 0; k < kYcsbKeys; ++k) {
      if (rng() % 4 == 0) continue;  // leave holes for inserts
      YcsbTuple tup{k + 1, {}};
      ASSERT_TRUE(t->Insert(txn.get(), k, &tup).ok());
      ledger.committed[k] = k + 1;
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  if (c.checkpoint_after_load) {
    ASSERT_TRUE(db->Checkpoint().ok());
  }

  FaultInjector::Options fopts;
  fopts.seed = c.seed ^ 0xF417;
  fopts.kill_after_ops = c.kill_after_ops;
  fopts.kill_point = c.kill_point;
  fopts.kill_point_hits = c.kill_point_hits;
  FaultInjector::Install(fopts);
  if (db->env().nvm != nullptr) {
    FaultInjector::Get()->AttachNvm(db->env().nvm.get());
  }

  RunYcsbWorkload(db.get(), t, rng, &ledger);
  const std::string repro = FaultInjector::Get()->ToString();
  DatabaseEnv env = CrashAndRestore(std::move(db));

  if (c.crash_during_recovery) {
    FaultInjector::Options ropts;
    ropts.seed = c.seed ^ 0x2ECC;
    ropts.kill_after_ops = c.recovery_kill_after_ops;
    FaultInjector::Install(ropts);
    if (env.nvm != nullptr) FaultInjector::Get()->AttachNvm(env.nvm.get());
  }
  auto db_r = RecoverWithRetries(opts, std::move(env), &trace);
  ASSERT_TRUE(db_r.ok()) << "recovery failed: " << db_r.status().ToString()
                         << "\n  config: " << c.ToString()
                         << "\n  injector: " << repro << trace;
  db = db_r.MoveValue();

  if (c.double_crash) {
    env = Database::Crash(std::move(db));
    db_r = RecoverWithRetries(opts, std::move(env), &trace);
    ASSERT_TRUE(db_r.ok()) << "re-recovery failed: "
                           << db_r.status().ToString()
                           << "\n  config: " << c.ToString() << trace;
    db = db_r.MoveValue();
  }

  t = db->GetTable(1);
  ASSERT_NE(t, nullptr) << c.ToString();
  const std::string violation = ValidateYcsb(db.get(), t, ledger);
  ASSERT_TRUE(violation.empty())
      << violation << "\n  config: " << c.ToString()
      << "\n  injector: " << repro << trace;
}

TEST(CrashFuzz, YcsbRandomKillPoints) {
  LatencySimulator::SetScale(0.0);
  const uint64_t iters = EnvOr("SPITFIRE_FUZZ_ITERS", 12);
  const uint64_t base_seed = EnvOr("SPITFIRE_FUZZ_SEED", 0xC0FFEE);
  for (uint64_t it = 0; it < iters; ++it) {
    const FuzzConfig c = DrawConfig(base_seed, it);
    SCOPED_TRACE("iter " + std::to_string(it) + " " + c.ToString());
    RunYcsbIteration(c);
    if (::testing::Test::HasFatalFailure()) break;
  }
  LatencySimulator::SetScale(1.0);
}

// ---------------------------------------------------------------------------
// TPC-C-style fuzz: payments over the TPC-C schema, money conservation.
// ---------------------------------------------------------------------------

struct Payment {
  uint32_t w = 0;
  uint32_t d = 0;
  uint64_t amount = 0;  // integer dollars — exact in a double
};

struct TpccLedger {
  std::map<uint64_t, double> base_w_ytd;  // by warehouse key
  std::map<uint64_t, double> base_d_ytd;  // by district key
  std::map<uint32_t, uint64_t> committed_w;          // w -> sum
  std::map<uint64_t, uint64_t> committed_d;          // district key -> sum
  std::vector<Payment> indeterminate;                // at most one/worker
};

constexpr uint32_t kTpccWorkers = 3;

void RunTpccWorkload(Database* db, const TpccConfig& cfg,
                     std::mt19937_64& rng, TpccLedger* ledger) {
  Table* wt = db->GetTable(TpccWorkload::kWarehouse);
  Table* dt = db->GetTable(TpccWorkload::kDistrict);
  struct Worker {
    std::unique_ptr<Transaction> txn;
    Payment pay;
    int phase = 0;  // 0 = update W, 1 = update D, 2 = commit
    bool stopped = false;
  };
  std::vector<Worker> workers(kTpccWorkers);

  for (int step = 0; step < 900; ++step) {
    if (FaultInjector::IsTripped()) break;
    if (step % 101 == 100) {
      (void)db->Checkpoint();
      continue;
    }
    Worker& w = workers[step % kTpccWorkers];
    if (w.stopped) continue;

    if (w.txn == nullptr) {
      w.txn = db->Begin();
      w.pay.w = 1 + static_cast<uint32_t>(rng() % cfg.num_warehouses);
      w.pay.d =
          1 + static_cast<uint32_t>(rng() % cfg.districts_per_warehouse);
      w.pay.amount = 1 + rng() % 5000;
      w.phase = 0;
      continue;
    }

    auto abort = [&] {
      (void)db->Abort(w.txn.get());
      w.txn.reset();
    };
    if (w.phase == 0) {
      TpccWorkload::WarehouseTuple tup;
      const uint64_t key = TpccWorkload::WarehouseKey(w.pay.w);
      if (!wt->Read(w.txn.get(), key, &tup).ok()) {
        abort();
        continue;
      }
      tup.ytd += static_cast<double>(w.pay.amount);
      if (!wt->Update(w.txn.get(), key, &tup).ok()) {
        abort();
        continue;
      }
      w.phase = 1;
    } else if (w.phase == 1) {
      TpccWorkload::DistrictTuple tup;
      const uint64_t key = TpccWorkload::DistrictKey(w.pay.w, w.pay.d);
      if (!dt->Read(w.txn.get(), key, &tup).ok()) {
        abort();
        continue;
      }
      tup.ytd += static_cast<double>(w.pay.amount);
      if (!dt->Update(w.txn.get(), key, &tup).ok()) {
        abort();
        continue;
      }
      w.phase = 2;
    } else {
      const Status st = db->Commit(w.txn.get());
      if (st.ok()) {
        ledger->committed_w[w.pay.w] += w.pay.amount;
        ledger->committed_d[TpccWorkload::DistrictKey(w.pay.w, w.pay.d)] +=
            w.pay.amount;
      } else {
        ledger->indeterminate.push_back(w.pay);
        w.stopped = true;
      }
      w.txn.reset();
    }
  }
  for (Worker& w : workers) w.txn.reset();
}

std::string ValidateTpcc(Database* db, const TpccConfig& cfg,
                         const TpccLedger& ledger) {
  std::string why;
  if (Status st = db->CheckIntegrity(&why); !st.ok()) {
    return "integrity: " + why;
  }
  Table* wt = db->GetTable(TpccWorkload::kWarehouse);
  Table* dt = db->GetTable(TpccWorkload::kDistrict);
  if (wt == nullptr || dt == nullptr) return "TPC-C tables missing";

  std::map<uint32_t, double> w_delta;
  std::map<uint64_t, double> d_delta;
  auto txn = db->Begin();
  for (uint32_t w = 1; w <= cfg.num_warehouses; ++w) {
    TpccWorkload::WarehouseTuple tup;
    const uint64_t key = TpccWorkload::WarehouseKey(w);
    if (!wt->Read(txn.get(), key, &tup).ok()) return "warehouse row lost";
    w_delta[w] = tup.ytd - ledger.base_w_ytd.at(key);
    for (uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
      TpccWorkload::DistrictTuple dtup;
      const uint64_t dkey = TpccWorkload::DistrictKey(w, d);
      if (!dt->Read(txn.get(), dkey, &dtup).ok()) return "district row lost";
      d_delta[dkey] = dtup.ytd - ledger.base_d_ytd.at(dkey);
    }
  }
  (void)db->Commit(txn.get());

  // Find an all-or-nothing assignment of the indeterminate payments that
  // explains every warehouse AND district delta simultaneously. The
  // per-transaction consistency (a payment lands in W iff it lands in D)
  // is exactly the money-conservation invariant.
  const size_t n = ledger.indeterminate.size();
  for (uint64_t mask = 0; mask < (1ull << n); ++mask) {
    std::map<uint32_t, double> want_w;
    std::map<uint64_t, double> want_d;
    for (const auto& [w, sum] : ledger.committed_w) {
      want_w[w] += static_cast<double>(sum);
    }
    for (const auto& [dkey, sum] : ledger.committed_d) {
      want_d[dkey] += static_cast<double>(sum);
    }
    for (size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1) {
        const Payment& p = ledger.indeterminate[i];
        want_w[p.w] += static_cast<double>(p.amount);
        want_d[TpccWorkload::DistrictKey(p.w, p.d)] +=
            static_cast<double>(p.amount);
      }
    }
    bool fits = true;
    for (const auto& [w, delta] : w_delta) fits &= delta == want_w[w];
    for (const auto& [dkey, delta] : d_delta) fits &= delta == want_d[dkey];
    if (fits) return "";
  }
  std::ostringstream err;
  err << "money not conserved: no all-or-nothing assignment of " << n
      << " indeterminate payment(s) explains the observed ytd deltas";
  for (const auto& [w, delta] : w_delta) {
    err << "\n  W" << w << " delta=" << delta
        << " committed=" << (ledger.committed_w.count(w)
                                 ? ledger.committed_w.at(w)
                                 : 0);
  }
  return err.str();
}

void RunTpccIteration(const FuzzConfig& c) {
  std::mt19937_64 rng(c.seed);
  DatabaseOptions opts = MakeOptions(c);
  // TPC-C's nine tables and load phase want a bit more buffer headroom.
  opts.dram_frames += 32;
  std::string trace;

  TpccConfig cfg;
  cfg.num_warehouses = 2;
  cfg.districts_per_warehouse = 3;
  cfg.customers_per_district = 12;
  cfg.num_items = 40;

  auto db = Database::Create(opts).MoveValue();
  TpccWorkload tpcc(db.get(), cfg);
  ASSERT_TRUE(tpcc.Load().ok());

  TpccLedger ledger;
  {
    Table* wt = db->GetTable(TpccWorkload::kWarehouse);
    Table* dt = db->GetTable(TpccWorkload::kDistrict);
    auto txn = db->Begin();
    for (uint32_t w = 1; w <= cfg.num_warehouses; ++w) {
      TpccWorkload::WarehouseTuple tup;
      const uint64_t key = TpccWorkload::WarehouseKey(w);
      ASSERT_TRUE(wt->Read(txn.get(), key, &tup).ok());
      ledger.base_w_ytd[key] = tup.ytd;
      for (uint32_t d = 1; d <= cfg.districts_per_warehouse; ++d) {
        TpccWorkload::DistrictTuple dtup;
        const uint64_t dkey = TpccWorkload::DistrictKey(w, d);
        ASSERT_TRUE(dt->Read(txn.get(), dkey, &dtup).ok());
        ledger.base_d_ytd[dkey] = dtup.ytd;
      }
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  if (c.checkpoint_after_load) {
    ASSERT_TRUE(db->Checkpoint().ok());
  }

  FaultInjector::Options fopts;
  fopts.seed = c.seed ^ 0xF417;
  fopts.kill_after_ops = c.kill_after_ops;
  fopts.kill_point = c.kill_point;
  fopts.kill_point_hits = c.kill_point_hits;
  FaultInjector::Install(fopts);
  if (db->env().nvm != nullptr) {
    FaultInjector::Get()->AttachNvm(db->env().nvm.get());
  }

  RunTpccWorkload(db.get(), cfg, rng, &ledger);
  const std::string repro = FaultInjector::Get()->ToString();
  DatabaseEnv env = CrashAndRestore(std::move(db));

  if (c.crash_during_recovery) {
    FaultInjector::Options ropts;
    ropts.seed = c.seed ^ 0x2ECC;
    ropts.kill_after_ops = c.recovery_kill_after_ops;
    FaultInjector::Install(ropts);
    if (env.nvm != nullptr) FaultInjector::Get()->AttachNvm(env.nvm.get());
  }
  auto db_r = RecoverWithRetries(opts, std::move(env), &trace);
  ASSERT_TRUE(db_r.ok()) << "recovery failed: " << db_r.status().ToString()
                         << "\n  config: " << c.ToString()
                         << "\n  injector: " << repro << trace;
  db = db_r.MoveValue();

  if (c.double_crash) {
    env = Database::Crash(std::move(db));
    db_r = RecoverWithRetries(opts, std::move(env), &trace);
    ASSERT_TRUE(db_r.ok()) << "re-recovery failed: "
                           << db_r.status().ToString()
                           << "\n  config: " << c.ToString() << trace;
    db = db_r.MoveValue();
  }

  const std::string violation = ValidateTpcc(db.get(), cfg, ledger);
  ASSERT_TRUE(violation.empty())
      << violation << "\n  config: " << c.ToString()
      << "\n  injector: " << repro << trace;
}

TEST(CrashFuzz, TpccPaymentMoneyConservation) {
  LatencySimulator::SetScale(0.0);
  const uint64_t iters = EnvOr("SPITFIRE_FUZZ_ITERS", 12);
  const uint64_t base_seed = EnvOr("SPITFIRE_FUZZ_SEED", 0xC0FFEE);
  for (uint64_t it = 0; it < iters; ++it) {
    const FuzzConfig c = DrawConfig(base_seed, it);
    SCOPED_TRACE("iter " + std::to_string(it) + " " + c.ToString());
    RunTpccIteration(c);
    if (::testing::Test::HasFatalFailure()) break;
  }
  LatencySimulator::SetScale(1.0);
}

// ---------------------------------------------------------------------------
// Pinned-seed regression tests for the specific latent bugs the fuzzer
// flushed out (each failed before its fix).
// ---------------------------------------------------------------------------

class CrashFuzzRegression : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    opts_.dram_frames = 48;
    opts_.nvm_frames = 96;
    opts_.policy = MigrationPolicy::Lazy();
    opts_.enable_wal = true;
    opts_.log_staging_size = 1 << 20;
  }
  void TearDown() override {
    if (FaultInjector::Get() != nullptr) FaultInjector::Uninstall();
    LatencySimulator::SetScale(1.0);
  }
  DatabaseOptions opts_;
};

struct Cell {
  uint64_t v;
  uint64_t pad[7];
};

// Bug 1 (WAL drain ordering): the drain used to consume the NVM staging
// buffer BEFORE the bytes were durable in the log file — a crash between
// the consume and the file write lost committed records. The protocol is
// now Peek -> file write -> persist -> header -> MarkDrained; killing the
// device right after the file write leaves the staged bytes in place for
// the next drain, and the commit must survive.
TEST_F(CrashFuzzRegression, DrainKilledAfterFileWriteLosesNothing) {
  auto db = Database::Create(opts_).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Cell)).value();
  {
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 16; ++k) {
      Cell c{k + 100, {}};
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  FaultInjector::Options fopts;
  fopts.kill_point = "wal.drain.file_written";
  FaultInjector::Install(fopts);
  FaultInjector::Get()->AttachNvm(db->env().nvm.get());
  ASSERT_FALSE(db->log_manager()->Drain().ok());  // killed mid-drain
  ASSERT_TRUE(FaultInjector::IsTripped());
  DatabaseEnv env = CrashAndRestore(std::move(db));

  auto db2 = Database::Recover(opts_, std::move(env)).MoveValue();
  Table* t2 = db2->GetTable(1);
  auto txn = db2->Begin();
  for (uint64_t k = 0; k < 16; ++k) {
    Cell c{};
    ASSERT_TRUE(t2->Read(txn.get(), k, &c).ok()) << k;
    EXPECT_EQ(c.v, k + 100);
  }
  ASSERT_TRUE(db2->Commit(txn.get()).ok());
}

// Same protocol, killed one step later: the log-file header (durable
// length) was updated but the staging consume never ran. Recovery must
// tolerate the overlap — the staged bytes re-drain over identical file
// content at identical offsets.
TEST_F(CrashFuzzRegression, DrainKilledAfterHeaderUpdateIsIdempotent) {
  auto db = Database::Create(opts_).MoveValue();
  Table* t = db->CreateTable(1, sizeof(Cell)).value();
  {
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 16; ++k) {
      Cell c{k + 200, {}};
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
  }
  FaultInjector::Options fopts;
  fopts.kill_point = "wal.drain.header_written";
  FaultInjector::Install(fopts);
  FaultInjector::Get()->AttachNvm(db->env().nvm.get());
  (void)db->log_manager()->Drain();
  ASSERT_TRUE(FaultInjector::IsTripped());
  DatabaseEnv env = CrashAndRestore(std::move(db));

  auto db2 = Database::Recover(opts_, std::move(env)).MoveValue();
  Table* t2 = db2->GetTable(1);
  auto txn = db2->Begin();
  for (uint64_t k = 0; k < 16; ++k) {
    Cell c{};
    ASSERT_TRUE(t2->Read(txn.get(), k, &c).ok()) << k;
    EXPECT_EQ(c.v, k + 200);
  }
  ASSERT_TRUE(db2->Commit(txn.get()).ok());
}

// Bug 2 (torn heap page trusted): recovery used to adopt any SSD page
// whose header magic looked right — a torn checkpoint write could smuggle
// a half-written page image into the heap. Pages are now checksummed at
// the SSD-write chokepoint; a mismatch quarantines the page and redo
// rebuilds its content from the (never-truncated) log.
TEST_F(CrashFuzzRegression, TornHeapPageIsQuarantinedAndRedone) {
  opts_.nvm_frames = 0;  // keep all pages SSD-backed
  opts_.policy = MigrationPolicy::Eager();
  DatabaseEnv env;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Cell)).value();
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 64; ++k) {
      Cell c{k + 300, {}};
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
    ASSERT_TRUE(db->Checkpoint().ok());
    env = Database::Crash(std::move(db));
  }
  // Tear a heap page after the fact: flip payload bytes of the first page
  // that carries table 1's heap type, leaving header and checksum intact.
  const page_id_t ssd_pages =
      static_cast<page_id_t>(env.db_ssd->capacity() / kPageSize);
  page_id_t victim = kInvalidPageId;
  for (page_id_t pid = 1; pid < ssd_pages && victim == kInvalidPageId;
       ++pid) {
    PageHeader hdr;
    ASSERT_TRUE(env.db_ssd->Read(pid * kPageSize, &hdr, sizeof(hdr)).ok());
    if (hdr.IsValid() && hdr.page_id == pid && IsHeapPageType(hdr.page_type)) {
      ASSERT_NE(hdr.checksum, 0u) << "flushed page was not stamped";
      victim = pid;
    }
  }
  ASSERT_NE(victim, kInvalidPageId);
  const uint64_t garbage = 0xDEADBEEFDEADBEEFull;
  ASSERT_TRUE(env.db_ssd
                  ->Write(victim * kPageSize + kPageSize / 2, &garbage,
                          sizeof(garbage))
                  .ok());

  auto db = Database::Recover(opts_, std::move(env)).MoveValue();
  EXPECT_EQ(db->recovery_stats().quarantined_pages, 1u);
  Table* t = db->GetTable(1);
  auto txn = db->Begin();
  for (uint64_t k = 0; k < 64; ++k) {
    Cell c{};
    ASSERT_TRUE(t->Read(txn.get(), k, &c).ok()) << k;
    EXPECT_EQ(c.v, k + 300);
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
  std::string why;
  EXPECT_TRUE(db->CheckIntegrity(&why).ok()) << why;
}

// Bug 3 (torn catalog trusted): the catalog was a single unversioned
// blob behind one magic word — a torn flush of page 0 could brick the
// database or resurrect garbage table entries. It is now two versioned,
// checksummed slots; tearing the newest slot falls back to the previous
// catalog version, and only destroying BOTH slots is unrecoverable (and
// reported cleanly).
TEST_F(CrashFuzzRegression, TornCatalogFallsBackToPreviousSlot) {
  // SSD-only: with an NVM tier the catalog would be NVM-resident and
  // recovery would never consult the torn SSD image.
  opts_.nvm_frames = 0;
  opts_.policy = MigrationPolicy::Eager();
  DatabaseEnv env;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* t1 = db->CreateTable(1, sizeof(Cell)).value();
    {
      auto txn = db->Begin();
      Cell c{7, {}};
      ASSERT_TRUE(t1->Insert(txn.get(), 1, &c).ok());
      ASSERT_TRUE(db->Commit(txn.get()).ok());
    }
    // Catalog versions so far: 1 (Create), 2 (CreateTable 1). Version 3
    // (CreateTable 2) lands in slot 1.
    (void)db->CreateTable(2, sizeof(Cell)).value();
    ASSERT_TRUE(db->Checkpoint().ok());
    env = Database::Crash(std::move(db));
  }
  // Tear the newest slot (slot 1 = parity of version 3).
  const uint64_t slot1_off = kPageHeaderSize + 2048;
  const uint64_t garbage = 0x5A5A5A5A5A5A5A5Aull;
  ASSERT_TRUE(env.db_ssd->Write(slot1_off + 4, &garbage, sizeof(garbage)).ok());

  auto db = Database::Recover(opts_, std::move(env)).MoveValue();
  // Fallback catalog: table 1 (and its committed data) present; table 2's
  // creation — whose durability the torn write interrupted — is gone.
  Table* t1 = db->GetTable(1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(db->GetTable(2), nullptr);
  auto txn = db->Begin();
  Cell c{};
  ASSERT_TRUE(t1->Read(txn.get(), 1, &c).ok());
  EXPECT_EQ(c.v, 7u);
  ASSERT_TRUE(db->Commit(txn.get()).ok());

  // Destroying both slots must fail cleanly, not crash.
  DatabaseEnv env2 = Database::Crash(std::move(db));
  std::vector<std::byte> junk(2 * 2048 + kPageHeaderSize,
                              std::byte{0x5A});
  ASSERT_TRUE(env2.db_ssd->Write(0, junk.data(), junk.size()).ok());
  auto db_r = Database::Recover(opts_, std::move(env2));
  ASSERT_FALSE(db_r.ok());
  EXPECT_TRUE(db_r.status().IsCorruption()) << db_r.status().ToString();
}

// Satellite 1: a crash during the post-recovery Checkpoint() (the tail of
// Database::RunRecovery) must leave the database re-recoverable —
// crash-recover-crash-recover converges.
TEST_F(CrashFuzzRegression, CrashDuringRecoveryCheckpointIsRecoverable) {
  DatabaseEnv env;
  {
    auto db = Database::Create(opts_).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Cell)).value();
    auto txn = db->Begin();
    for (uint64_t k = 0; k < 32; ++k) {
      Cell c{k + 400, {}};
      ASSERT_TRUE(t->Insert(txn.get(), k, &c).ok());
    }
    ASSERT_TRUE(db->Commit(txn.get()).ok());
    env = Database::Crash(std::move(db));
  }
  // First recovery attempt: kill the device at the final checkpoint.
  FaultInjector::Options fopts;
  fopts.kill_point = "recovery.before_checkpoint";
  FaultInjector::Install(fopts);
  FaultInjector::Get()->AttachNvm(env.nvm.get());
  DatabaseEnv back;
  auto db_r = Database::Recover(opts_, std::move(env), &back);
  ASSERT_FALSE(db_r.ok());
  ASSERT_TRUE(FaultInjector::IsTripped());
  FaultInjector::Get()->RestoreNvm();
  FaultInjector::Uninstall();

  // Second recovery, no faults: must succeed with all data.
  auto db = Database::Recover(opts_, std::move(back)).MoveValue();
  Table* t = db->GetTable(1);
  auto txn = db->Begin();
  for (uint64_t k = 0; k < 32; ++k) {
    Cell c{};
    ASSERT_TRUE(t->Read(txn.get(), k, &c).ok()) << k;
    EXPECT_EQ(c.v, k + 400);
  }
  ASSERT_TRUE(db->Commit(txn.get()).ok());
  std::string why;
  EXPECT_TRUE(db->CheckIntegrity(&why).ok()) << why;
}

}  // namespace
}  // namespace spitfire
