#include <gtest/gtest.h>

#include <thread>

#include "storage/nvm_device.h"
#include "storage/perf_model.h"
#include "wal/log_manager.h"
#include "wal/log_record.h"
#include "wal/nvm_log_buffer.h"

namespace spitfire {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override { LatencySimulator::SetScale(0.0); }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  static LogRecord MakeUpdate(txn_id_t txn, uint64_t key, char fill) {
    LogRecord r;
    r.type = LogRecordType::kUpdate;
    r.txn_id = txn;
    r.table_id = 3;
    r.key = key;
    r.before.assign(16, std::byte{static_cast<unsigned char>(fill)});
    r.after.assign(16, std::byte{static_cast<unsigned char>(fill + 1)});
    return r;
  }
};

TEST_F(WalTest, RecordRoundTrip) {
  LogRecord r = MakeUpdate(7, 99, 'a');
  std::vector<std::byte> buf;
  r.SerializeTo(&buf);
  EXPECT_EQ(buf.size(), r.SerializedSize());
  size_t consumed = 0;
  auto d = LogRecord::Deserialize(buf.data(), buf.size(), &consumed);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(d.value().txn_id, 7u);
  EXPECT_EQ(d.value().key, 99u);
  EXPECT_EQ(d.value().before, r.before);
  EXPECT_EQ(d.value().after, r.after);
}

TEST_F(WalTest, DeserializeRejectsTruncation) {
  LogRecord r = MakeUpdate(1, 2, 'x');
  std::vector<std::byte> buf;
  r.SerializeTo(&buf);
  size_t consumed;
  EXPECT_FALSE(LogRecord::Deserialize(buf.data(), 10, &consumed).ok());
  EXPECT_FALSE(
      LogRecord::Deserialize(buf.data(), buf.size() - 1, &consumed).ok());
}

TEST_F(WalTest, DeserializeRejectsGarbage) {
  std::vector<std::byte> junk(64, std::byte{0x5A});
  size_t consumed;
  EXPECT_FALSE(LogRecord::Deserialize(junk.data(), junk.size(), &consumed).ok());
}

TEST_F(WalTest, NvmLogBufferAppendAndDrain) {
  NvmDevice nvm(1 << 16);
  NvmLogBuffer buf(&nvm, 0, 1 << 16);
  ASSERT_TRUE(buf.Format(0).ok());
  const char data[] = "hello wal";
  auto lsn1 = buf.Append(reinterpret_cast<const std::byte*>(data), 9);
  ASSERT_TRUE(lsn1.ok());
  EXPECT_EQ(lsn1.value(), 0u);
  auto lsn2 = buf.Append(reinterpret_cast<const std::byte*>(data), 9);
  ASSERT_TRUE(lsn2.ok());
  EXPECT_EQ(lsn2.value(), 9u);
  EXPECT_EQ(buf.StagedBytes(), 18u);

  std::vector<std::byte> out;
  auto first = buf.Drain(&out);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 0u);
  EXPECT_EQ(out.size(), 18u);
  EXPECT_EQ(buf.StagedBytes(), 0u);
  EXPECT_EQ(buf.base_lsn(), 18u);
}

TEST_F(WalTest, NvmLogBufferRejectsOverflow) {
  NvmDevice nvm(256);
  NvmLogBuffer buf(&nvm, 0, 256);  // 192 usable
  ASSERT_TRUE(buf.Format(0).ok());
  std::vector<std::byte> big(300);
  EXPECT_TRUE(buf.Append(big.data(), big.size()).status().IsOutOfMemory());
}

TEST_F(WalTest, NvmLogBufferSurvivesReattach) {
  NvmDevice nvm(1 << 16);
  {
    NvmLogBuffer buf(&nvm, 0, 1 << 16);
    ASSERT_TRUE(buf.Format(5).ok());
    const char d[] = "persist me";
    ASSERT_TRUE(buf.Append(reinterpret_cast<const std::byte*>(d), 10).ok());
  }
  {
    NvmLogBuffer buf(&nvm, 0, 1 << 16);
    ASSERT_TRUE(buf.Attach().ok());
    EXPECT_EQ(buf.StagedBytes(), 10u);
    EXPECT_EQ(buf.base_lsn(), 5u);
  }
}

TEST_F(WalTest, LogManagerAppendDrainReadAll) {
  NvmDevice nvm(1 << 20);
  SsdDevice log_ssd(16 << 20);
  LogManager::Options opts;
  opts.nvm = &nvm;
  opts.nvm_size = 1 << 20;
  opts.log_ssd = &log_ssd;
  auto lm_r = LogManager::Create(opts);
  ASSERT_TRUE(lm_r.ok());
  auto lm = lm_r.MoveValue();

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(lm->Append(MakeUpdate(1, i, 'a')).ok());
  }
  ASSERT_TRUE(lm->Drain().ok());
  for (int i = 10; i < 15; ++i) {
    ASSERT_TRUE(lm->Append(MakeUpdate(2, i, 'b')).ok());
  }
  // 10 drained to the file, 5 staged on NVM; ReadAll sees all 15 in order.
  auto recs = lm->ReadAll();
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs.value().size(), 15u);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(recs.value()[i].key, static_cast<uint64_t>(i));
  }
}

TEST_F(WalTest, LogManagerAutoDrainsWhenStagingFull) {
  NvmDevice nvm(4096);
  SsdDevice log_ssd(16 << 20);
  LogManager::Options opts;
  opts.nvm = &nvm;
  opts.nvm_size = 4096;
  opts.log_ssd = &log_ssd;
  auto lm = LogManager::Create(opts).MoveValue();
  // Each record ~96 B; far more than the 4 KB staging can hold at once.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(lm->Append(MakeUpdate(1, i, 'c')).ok()) << i;
  }
  auto recs = lm->ReadAll();
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs.value().size(), 200u);
}

TEST_F(WalTest, LogManagerAttachRecoversStagedTail) {
  NvmDevice nvm(1 << 20);
  SsdDevice log_ssd(16 << 20);
  LogManager::Options opts;
  opts.nvm = &nvm;
  opts.nvm_size = 1 << 20;
  opts.log_ssd = &log_ssd;
  {
    auto lm = LogManager::Create(opts).MoveValue();
    ASSERT_TRUE(lm->Append(MakeUpdate(1, 100, 'd')).ok());
    ASSERT_TRUE(lm->Drain().ok());
    ASSERT_TRUE(lm->Append(MakeUpdate(2, 200, 'e')).ok());
    // "Crash": staged record 200 only exists in NVM.
  }
  {
    auto lm_r = LogManager::Attach(opts);
    ASSERT_TRUE(lm_r.ok()) << lm_r.status().ToString();
    auto recs = lm_r.value()->ReadAll();
    ASSERT_TRUE(recs.ok());
    ASSERT_EQ(recs.value().size(), 2u);
    EXPECT_EQ(recs.value()[0].key, 100u);
    EXPECT_EQ(recs.value()[1].key, 200u);
  }
}

TEST_F(WalTest, ConcurrentAppendsAllSurvive) {
  NvmDevice nvm(4 << 20);
  SsdDevice log_ssd(64 << 20);
  LogManager::Options opts;
  opts.nvm = &nvm;
  opts.nvm_size = 4 << 20;
  opts.log_ssd = &log_ssd;
  auto lm = LogManager::Create(opts).MoveValue();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> ths;
  for (int t = 0; t < kThreads; ++t) {
    ths.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(lm->Append(MakeUpdate(t + 1, i, 'z')).ok());
      }
    });
  }
  for (auto& th : ths) th.join();
  auto recs = lm->ReadAll();
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs.value().size(), kThreads * kPerThread);
  // Per-transaction record counts must be exact.
  int counts[kThreads + 1] = {};
  for (const auto& r : recs.value()) counts[r.txn_id]++;
  for (int t = 1; t <= kThreads; ++t) EXPECT_EQ(counts[t], kPerThread);
}

// Group commit: concurrent committers batch into shared groups, yet every
// commit record must survive a crash (the NVM staging buffer is
// persistent) and come back through Attach + ReadAll.
TEST_F(WalTest, GroupCommitDurableAcrossCrash) {
  NvmDevice nvm(4 << 20);
  SsdDevice log_ssd(64 << 20);
  LogManager::Options opts;
  opts.nvm = &nvm;
  opts.nvm_size = 4 << 20;
  opts.log_ssd = &log_ssd;
  opts.enable_group_commit = true;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  {
    auto lm = LogManager::Create(opts).MoveValue();
    std::vector<std::thread> ths;
    for (int t = 0; t < kThreads; ++t) {
      ths.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          LogRecord r;
          r.type = LogRecordType::kCommit;
          r.txn_id = static_cast<txn_id_t>(t * kPerThread + i + 1);
          auto lsn = lm->Append(r);
          ASSERT_TRUE(lsn.ok());
        }
      });
    }
    for (auto& th : ths) th.join();
    // "Crash": the LogManager is destroyed without Drain; the staged tail
    // exists only in the NVM buffer.
  }
  auto lm_r = LogManager::Attach(opts);
  ASSERT_TRUE(lm_r.ok()) << lm_r.status().ToString();
  auto recs = lm_r.value()->ReadAll();
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs.value().size(),
            static_cast<size_t>(kThreads) * kPerThread);
  // Every committed transaction is recovered exactly once.
  std::vector<int> seen(kThreads * kPerThread + 1, 0);
  for (const auto& r : recs.value()) {
    ASSERT_EQ(r.type, LogRecordType::kCommit);
    ASSERT_GE(r.txn_id, 1u);
    ASSERT_LE(r.txn_id, static_cast<txn_id_t>(kThreads * kPerThread));
    seen[r.txn_id]++;
  }
  for (int i = 1; i <= kThreads * kPerThread; ++i) EXPECT_EQ(seen[i], 1);
}

// With group commit off the same workload must behave identically — the
// per-record path is the fallback configuration.
TEST_F(WalTest, GroupCommitDisabledStillDurable) {
  NvmDevice nvm(1 << 20);
  SsdDevice log_ssd(64 << 20);
  LogManager::Options opts;
  opts.nvm = &nvm;
  opts.nvm_size = 1 << 20;
  opts.log_ssd = &log_ssd;
  opts.enable_group_commit = false;
  {
    auto lm = LogManager::Create(opts).MoveValue();
    std::vector<std::thread> ths;
    for (int t = 0; t < 4; ++t) {
      ths.emplace_back([&, t] {
        for (int i = 0; i < 100; ++i) {
          ASSERT_TRUE(lm->Append(MakeUpdate(t + 1, i, 'g')).ok());
        }
      });
    }
    for (auto& th : ths) th.join();
  }
  auto lm_r = LogManager::Attach(opts);
  ASSERT_TRUE(lm_r.ok());
  auto recs = lm_r.value()->ReadAll();
  ASSERT_TRUE(recs.ok());
  EXPECT_EQ(recs.value().size(), 400u);
}

TEST_F(WalTest, DrainRacesWithAppendsLosesNothing) {
  NvmDevice nvm(1 << 20);
  SsdDevice log_ssd(64 << 20);
  LogManager::Options opts;
  opts.nvm = &nvm;
  opts.nvm_size = 1 << 20;
  opts.log_ssd = &log_ssd;
  auto lm = LogManager::Create(opts).MoveValue();
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load()) {
      ASSERT_TRUE(lm->Drain().ok());
      std::this_thread::yield();
    }
  });
  constexpr int kThreads = 3;
  constexpr int kPerThread = 400;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(lm->Append(MakeUpdate(t + 1, i, 'q')).ok());
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true);
  drainer.join();
  auto recs = lm->ReadAll();
  ASSERT_TRUE(recs.ok());
  ASSERT_EQ(recs.value().size(), kThreads * kPerThread);
  // Per-transaction records must appear in append (key) order.
  int next_key[kThreads + 1] = {};
  for (const auto& r : recs.value()) {
    ASSERT_EQ(r.key, static_cast<uint64_t>(next_key[r.txn_id]));
    next_key[r.txn_id]++;
  }
}

}  // namespace
}  // namespace spitfire
