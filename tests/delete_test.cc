// Tests for Table::Delete: tombstone semantics under MVTO, snapshot
// behaviour, re-insertion over tombstones, abort rollback, and crash
// recovery of deletes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "db/database.h"
#include "storage/perf_model.h"

namespace spitfire {
namespace {

struct Item {
  uint64_t value;
  uint64_t pad;
};

class DeleteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LatencySimulator::SetScale(0.0);
    opts_.dram_frames = 64;
    opts_.nvm_frames = 64;
    opts_.enable_wal = true;
    db_ = Database::Create(opts_).MoveValue();
    table_ = db_->CreateTable(1, sizeof(Item)).value();
  }
  void TearDown() override { LatencySimulator::SetScale(1.0); }

  void InsertCommitted(uint64_t key, uint64_t value) {
    auto txn = db_->Begin();
    Item it{value, 0};
    ASSERT_TRUE(table_->Insert(txn.get(), key, &it).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }
  void DeleteCommitted(uint64_t key) {
    auto txn = db_->Begin();
    ASSERT_TRUE(table_->Delete(txn.get(), key).ok());
    ASSERT_TRUE(db_->Commit(txn.get()).ok());
  }

  DatabaseOptions opts_;
  std::unique_ptr<Database> db_;
  Table* table_ = nullptr;
};

TEST_F(DeleteTest, DeleteMakesKeyNotFound) {
  InsertCommitted(1, 10);
  DeleteCommitted(1);
  auto txn = db_->Begin();
  Item it{};
  EXPECT_TRUE(table_->Read(txn.get(), 1, &it).IsNotFound());
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(DeleteTest, DeleteOfMissingKeyIsNotFound) {
  auto txn = db_->Begin();
  EXPECT_TRUE(table_->Delete(txn.get(), 99).IsNotFound());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
}

TEST_F(DeleteTest, DoubleDeleteIsNotFound) {
  InsertCommitted(1, 10);
  DeleteCommitted(1);
  auto txn = db_->Begin();
  EXPECT_TRUE(table_->Delete(txn.get(), 1).IsNotFound());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
}

TEST_F(DeleteTest, OldSnapshotStillSeesDeletedRow) {
  InsertCommitted(1, 10);
  auto old_reader = db_->Begin();
  DeleteCommitted(1);
  Item it{};
  ASSERT_TRUE(table_->Read(old_reader.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 10u);
  ASSERT_TRUE(db_->Commit(old_reader.get()).ok());
}

TEST_F(DeleteTest, UpdateOfDeletedKeyIsNotFound) {
  InsertCommitted(1, 10);
  DeleteCommitted(1);
  auto txn = db_->Begin();
  Item it{20, 0};
  EXPECT_TRUE(table_->Update(txn.get(), 1, &it).IsNotFound());
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
}

TEST_F(DeleteTest, ReinsertAfterDelete) {
  InsertCommitted(1, 10);
  DeleteCommitted(1);
  InsertCommitted(1, 42);
  auto txn = db_->Begin();
  Item it{};
  ASSERT_TRUE(table_->Read(txn.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 42u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(DeleteTest, ReinsertWhileRowStillVisibleIsDuplicate) {
  InsertCommitted(1, 10);
  auto txn = db_->Begin();
  Item it{20, 0};
  EXPECT_EQ(table_->Insert(txn.get(), 1, &it).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(db_->Abort(txn.get()).ok());
}

TEST_F(DeleteTest, DeleteThenInsertInSameTxn) {
  InsertCommitted(1, 10);
  auto txn = db_->Begin();
  ASSERT_TRUE(table_->Delete(txn.get(), 1).ok());
  Item it{};
  EXPECT_TRUE(table_->Read(txn.get(), 1, &it).IsNotFound());
  // Re-insert within the same transaction resurrects the key (mutating the
  // txn's own tombstone version in place).
  Item fresh{30, 0};
  ASSERT_TRUE(table_->Insert(txn.get(), 1, &fresh).ok());
  ASSERT_TRUE(table_->Read(txn.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 30u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(DeleteTest, AbortedDeleteLeavesRowVisible) {
  InsertCommitted(1, 10);
  {
    auto txn = db_->Begin();
    ASSERT_TRUE(table_->Delete(txn.get(), 1).ok());
    ASSERT_TRUE(db_->Abort(txn.get()).ok());
  }
  auto txn = db_->Begin();
  Item it{};
  ASSERT_TRUE(table_->Read(txn.get(), 1, &it).ok());
  EXPECT_EQ(it.value, 10u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(DeleteTest, ScanSkipsDeletedKeys) {
  for (uint64_t k = 0; k < 20; ++k) InsertCommitted(k, k);
  for (uint64_t k = 0; k < 20; k += 2) DeleteCommitted(k);
  auto txn = db_->Begin();
  uint64_t count = 0;
  ASSERT_TRUE(table_->Scan(txn.get(), 0, 100,
                           [&](uint64_t k, const void*) {
                             EXPECT_EQ(k % 2, 1u);
                             ++count;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(count, 10u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(DeleteTest, YoungerReadBlocksOlderDelete) {
  InsertCommitted(1, 10);
  auto old_deleter = db_->Begin();
  auto young = db_->Begin();
  Item it{};
  ASSERT_TRUE(table_->Read(young.get(), 1, &it).ok());
  ASSERT_TRUE(db_->Commit(young.get()).ok());
  EXPECT_TRUE(table_->Delete(old_deleter.get(), 1).IsAborted());
  ASSERT_TRUE(db_->Abort(old_deleter.get()).ok());
}

TEST_F(DeleteTest, DeletesSurviveCrashRecovery) {
  for (uint64_t k = 0; k < 30; ++k) InsertCommitted(k, k + 100);
  for (uint64_t k = 0; k < 30; k += 3) DeleteCommitted(k);
  // Re-insert one deleted key with a new value.
  InsertCommitted(3, 999);

  DatabaseEnv env = Database::Crash(std::move(db_));
  auto db_r = Database::Recover(opts_, std::move(env));
  ASSERT_TRUE(db_r.ok()) << db_r.status().ToString();
  db_ = db_r.MoveValue();
  table_ = db_->GetTable(1);

  auto txn = db_->Begin();
  Item it{};
  for (uint64_t k = 0; k < 30; ++k) {
    const Status st = table_->Read(txn.get(), k, &it);
    if (k == 3) {
      ASSERT_TRUE(st.ok());
      EXPECT_EQ(it.value, 999u);
    } else if (k % 3 == 0) {
      EXPECT_TRUE(st.IsNotFound()) << "key " << k;
    } else {
      ASSERT_TRUE(st.ok()) << "key " << k;
      EXPECT_EQ(it.value, k + 100);
    }
  }
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

TEST_F(DeleteTest, ConcurrentInsertDeleteChurn) {
  // Threads insert/delete disjoint key ranges while readers scan; the
  // table must stay consistent and every committed state observable.
  std::atomic<int> errors{0};
  std::vector<std::thread> ths;
  for (int t = 0; t < 3; ++t) {
    ths.emplace_back([&, t] {
      const uint64_t base = 1000 + static_cast<uint64_t>(t) * 1000;
      // MVTO aborts (e.g. the scanner's read_ts blocking an older
      // writer) are expected under contention: retry them. Only
      // non-Aborted failures count as errors.
      auto commit_with_retry = [&](auto&& op) {
        for (int attempt = 0; attempt < 100; ++attempt) {
          auto txn = db_->Begin();
          const Status st = op(txn.get());
          if (st.ok()) {
            if (db_->Commit(txn.get()).ok()) return;
            errors.fetch_add(1);
            return;
          }
          (void)db_->Abort(txn.get());
          if (!st.IsAborted() && !st.IsBusy()) {
            errors.fetch_add(1);
            return;
          }
        }
        errors.fetch_add(1);  // could not commit in 100 attempts
      };
      for (int round = 0; round < 60; ++round) {
        for (uint64_t k = base; k < base + 10; ++k) {
          Item it{k, 0};
          commit_with_retry([&](Transaction* txn) {
            return table_->Insert(txn, k, &it);
          });
        }
        for (uint64_t k = base; k < base + 10; ++k) {
          commit_with_retry([&](Transaction* txn) {
            return table_->Delete(txn, k);
          });
        }
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread scanner([&] {
    while (!stop.load()) {
      auto txn = db_->Begin();
      uint64_t prev = 0;
      const Status st = table_->Scan(txn.get(), 1000, 4000,
                                     [&](uint64_t k, const void* tuple) {
                                       if (k < prev) errors.fetch_add(1);
                                       prev = k;
                                       const auto* it =
                                           static_cast<const Item*>(tuple);
                                       if (it->value != k) errors.fetch_add(1);
                                       return true;
                                     });
      if (!st.ok() && !st.IsAborted() && !st.IsBusy()) errors.fetch_add(1);
      (void)db_->Commit(txn.get());
    }
  });
  for (auto& th : ths) th.join();
  stop.store(true);
  scanner.join();
  EXPECT_EQ(errors.load(), 0);
  // Everything was deleted in the final round of each thread.
  auto txn = db_->Begin();
  uint64_t remaining = 0;
  ASSERT_TRUE(table_->Scan(txn.get(), 1000, 4000,
                           [&](uint64_t, const void*) {
                             ++remaining;
                             return true;
                           })
                  .ok());
  EXPECT_EQ(remaining, 0u);
  ASSERT_TRUE(db_->Commit(txn.get()).ok());
}

}  // namespace
}  // namespace spitfire
