// Unit tests for the transaction manager (timestamp authority, active-set
// watermark) and transaction bookkeeping.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "txn/mvto_manager.h"

namespace spitfire {
namespace {

TEST(TransactionManagerTest, TimestampsAreUniqueAndMonotonic) {
  TransactionManager tm;
  auto t1 = tm.Begin();
  auto t2 = tm.Begin();
  auto t3 = tm.Begin();
  EXPECT_LT(t1->ts(), t2->ts());
  EXPECT_LT(t2->ts(), t3->ts());
  EXPECT_EQ(t1->id(), t1->ts());  // MVTO: one timestamp per txn
  tm.Finish(t1.get());
  tm.Finish(t2.get());
  tm.Finish(t3.get());
}

TEST(TransactionManagerTest, MinActiveTsTracksOldest) {
  TransactionManager tm;
  auto t1 = tm.Begin();
  auto t2 = tm.Begin();
  EXPECT_EQ(tm.MinActiveTs(), t1->ts());
  tm.Finish(t1.get());
  EXPECT_EQ(tm.MinActiveTs(), t2->ts());
  tm.Finish(t2.get());
  // Empty active set: watermark advances to the dispenser frontier.
  EXPECT_GT(tm.MinActiveTs(), t2->ts());
}

TEST(TransactionManagerTest, ActiveCount) {
  TransactionManager tm;
  EXPECT_EQ(tm.active_count(), 0u);
  auto t1 = tm.Begin();
  auto t2 = tm.Begin();
  EXPECT_EQ(tm.active_count(), 2u);
  tm.Finish(t2.get());
  EXPECT_EQ(tm.active_count(), 1u);
  tm.Finish(t1.get());
  EXPECT_EQ(tm.active_count(), 0u);
}

TEST(TransactionManagerTest, FinishIsIdempotent) {
  TransactionManager tm;
  auto t1 = tm.Begin();
  tm.Finish(t1.get());
  tm.Finish(t1.get());  // second finish must not corrupt the active set
  EXPECT_EQ(tm.active_count(), 0u);
}

TEST(TransactionManagerTest, AdvanceToSkipsForward) {
  TransactionManager tm;
  tm.AdvanceTo(1000);
  auto t = tm.Begin();
  EXPECT_GE(t->ts(), 1000u);
  tm.Finish(t.get());
  // AdvanceTo never moves backwards.
  tm.AdvanceTo(5);
  auto t2 = tm.Begin();
  EXPECT_GT(t2->ts(), t->ts());
  tm.Finish(t2.get());
}

TEST(TransactionManagerTest, ConcurrentBeginsAreUnique) {
  TransactionManager tm;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::vector<std::vector<timestamp_t>> seen(kThreads);
  std::vector<std::thread> ths;
  for (int t = 0; t < kThreads; ++t) {
    ths.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto txn = tm.Begin();
        seen[static_cast<size_t>(t)].push_back(txn->ts());
        tm.Finish(txn.get());
      }
    });
  }
  for (auto& th : ths) th.join();
  std::set<timestamp_t> all;
  for (const auto& v : seen) all.insert(v.begin(), v.end());
  EXPECT_EQ(all.size(), static_cast<size_t>(kThreads) * kPerThread);
  EXPECT_EQ(tm.active_count(), 0u);
}

TEST(TransactionTest, StateTransitions) {
  Transaction txn(7, 7);
  EXPECT_EQ(txn.state(), TxnState::kActive);
  txn.set_state(TxnState::kCommitted);
  EXPECT_EQ(txn.state(), TxnState::kCommitted);
}

TEST(TransactionTest, RidPackingRoundTrips) {
  const rid_t rid = MakeRid(0xABCDEF, 0x1234);
  EXPECT_EQ(RidPage(rid), 0xABCDEFu);
  EXPECT_EQ(RidSlot(rid), 0x1234u);
  EXPECT_NE(rid, kInvalidRid);
}

TEST(TransactionTest, WriteSetAccumulates) {
  Transaction txn(1, 1);
  txn.write_set.push_back(Transaction::WriteOp{
      Transaction::WriteOp::Kind::kInsert, 1, 10, MakeRid(1, 0),
      kInvalidRid});
  txn.write_set.push_back(Transaction::WriteOp{
      Transaction::WriteOp::Kind::kDelete, 1, 10, MakeRid(2, 0),
      MakeRid(1, 0)});
  EXPECT_EQ(txn.write_set.size(), 2u);
  EXPECT_EQ(txn.write_set[1].old_rid, MakeRid(1, 0));
}

}  // namespace
}  // namespace spitfire
