// TPC-C on Spitfire: load a small warehouse configuration and run the
// standard five-transaction mix on the full engine (MVTO + B+Tree + WAL +
// three-tier buffer manager).
//
// Build & run:   ./build/examples/tpcc_demo

#include <cstdio>

#include "storage/perf_model.h"
#include "workload/driver.h"
#include "workload/tpcc.h"

using namespace spitfire;  // NOLINT — example brevity

int main() {
  LatencySimulator::SetScale(0.25);

  DatabaseOptions options;
  options.dram_frames = 256;   // 4 MB DRAM
  options.nvm_frames = 1024;   // 16 MB NVM
  options.policy = MigrationPolicy::Lazy();
  options.enable_wal = true;
  auto db = Database::Create(options).MoveValue();

  TpccConfig cfg;
  cfg.num_warehouses = 2;
  cfg.customers_per_district = 100;
  cfg.num_items = 1000;
  TpccWorkload tpcc(db.get(), cfg);
  std::printf("loading %u warehouses (%u items, %u customers/district)...\n",
              cfg.num_warehouses, cfg.num_items, cfg.customers_per_district);
  if (Status st = tpcc.Load(); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("running the standard mix (45/43/4/4/4) on 2 workers...\n");
  DriverResult res = WorkloadDriver::Run(
      2, 3.0, [&](Xoshiro256& rng) { return tpcc.RunTransaction(rng); },
      /*warmup_seconds=*/0.5);

  std::printf("result      : %s\n", res.ToString().c_str());
  std::printf("abort rate  : %.1f%%\n", res.AbortRate() * 100);
  std::printf("p50 latency : %.1f us\n",
              static_cast<double>(res.latency_ns.Percentile(50)) / 1000.0);
  std::printf("p99 latency : %.1f us\n",
              static_cast<double>(res.latency_ns.Percentile(99)) / 1000.0);
  std::printf("buffer stats: %s\n",
              db->buffer_manager()->stats().ToString().c_str());
  std::printf("NVM writes  : %.1f MB\n",
              static_cast<double>(db->buffer_manager()
                                      ->nvm_device()
                                      ->stats()
                                      .media_bytes_written.load()) /
                  1e6);
  return 0;
}
