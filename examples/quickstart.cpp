// Quickstart: stand up a three-tier Spitfire buffer manager, move pages
// through DRAM / NVM / SSD, and inspect the migration statistics.
//
// Build & run:   ./build/examples/quickstart

#include <cstdio>

#include "buffer/buffer_manager.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"

using namespace spitfire;  // NOLINT — example brevity

int main() {
  // Simulated devices follow the Table-1 latency model; scale 1.0 means
  // "realistic latencies", 0.0 disables delays entirely.
  LatencySimulator::SetScale(1.0);

  // The SSD holds the database itself (memory-backed simulation here; pass
  // a path for a file-backed one).
  SsdDevice ssd(256ull * 1024 * 1024);

  BufferManagerOptions options;
  options.dram_frames = 64;   // 1 MB of DRAM buffer
  options.nvm_frames = 256;   // 4 MB of NVM buffer
  options.policy = MigrationPolicy::Lazy();  // <Dr=.01, Dw=.01, Nr=.2, Nw=1>
  options.ssd = &ssd;
  BufferManager bm(options);

  std::printf("Spitfire quickstart — policy %s\n",
              bm.policy().ToString().c_str());

  // 1. Create pages. New pages materialize dirty in the DRAM buffer.
  constexpr int kPages = 512;  // 8 MB of data: bigger than both buffers
  for (int i = 0; i < kPages; ++i) {
    auto page = bm.NewPage();
    if (!page.ok()) {
      std::fprintf(stderr, "NewPage: %s\n", page.status().ToString().c_str());
      return 1;
    }
    const uint64_t stamp = 0xC0FFEE00 + static_cast<uint64_t>(i);
    (void)page.value().WriteAt(kPageHeaderSize, sizeof(stamp), &stamp);
  }

  // 2. Read everything back twice with a zipfian-ish sweep. Pages flow
  //    SSD → NVM → DRAM according to the lazy policy.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < kPages; ++i) {
      auto page = bm.FetchPage(static_cast<page_id_t>(i), AccessIntent::kRead);
      if (!page.ok()) continue;
      uint64_t stamp = 0;
      (void)page.value().ReadAt(kPageHeaderSize, sizeof(stamp), &stamp);
      if (stamp != 0xC0FFEE00 + static_cast<uint64_t>(i)) {
        std::fprintf(stderr, "data corruption on page %d!\n", i);
        return 1;
      }
    }
  }

  // 3. Inspect where data ended up and what moved.
  std::printf("DRAM-resident pages : %zu\n", bm.DramResidentPages());
  std::printf("NVM-resident pages  : %zu\n", bm.NvmResidentPages());
  std::printf("inclusivity ratio   : %.3f\n", bm.InclusivityRatio());
  std::printf("stats               : %s\n", bm.stats().ToString().c_str());
  std::printf("NVM write volume    : %.1f MB\n",
              static_cast<double>(
                  bm.nvm_device()->stats().media_bytes_written.load()) /
                  1e6);

  // 4. Swap the policy at runtime (what the adaptive tuner does).
  bm.SetPolicy(MigrationPolicy::Eager());
  std::printf("policy swapped to   : %s\n", bm.policy().ToString().c_str());

  // 5. Flush everything down for a clean shutdown.
  if (Status st = bm.FlushAll(/*include_nvm=*/true); !st.ok()) {
    std::fprintf(stderr, "FlushAll: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("flushed to SSD, done.\n");
  return 0;
}
