// Embedded transactional key-value store on the full Spitfire stack:
// three-tier buffer manager + MVTO transactions + B+Tree index + NVM-aware
// write-ahead log.
//
// Build & run:   ./build/examples/kv_store

#include <cstdio>
#include <cstring>

#include "db/database.h"
#include "storage/perf_model.h"

using namespace spitfire;  // NOLINT — example brevity

namespace {

struct UserProfile {
  char name[32];
  uint32_t visits;
  uint32_t score;
};

constexpr uint32_t kUsersTable = 1;

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  LatencySimulator::SetScale(1.0);

  DatabaseOptions options;
  options.dram_frames = 128;              // 2 MB DRAM
  options.nvm_frames = 512;               // 8 MB NVM
  options.policy = MigrationPolicy::Lazy();
  options.enable_wal = true;              // commits persist via the NVM log
  auto db_r = Database::Create(options);
  Check(db_r.status(), "Database::Create");
  auto db = db_r.MoveValue();

  auto table_r = db->CreateTable(kUsersTable, sizeof(UserProfile));
  Check(table_r.status(), "CreateTable");
  Table* users = table_r.value();

  // --- insert a batch of users in one transaction ---
  {
    auto txn = db->Begin();
    for (uint64_t id = 1; id <= 1000; ++id) {
      UserProfile u{};
      std::snprintf(u.name, sizeof(u.name), "user-%04llu",
                    static_cast<unsigned long long>(id));
      u.visits = 0;
      u.score = static_cast<uint32_t>(id % 100);
      Check(users->Insert(txn.get(), id, &u), "Insert");
    }
    Check(db->Commit(txn.get()), "Commit(load)");
  }
  std::printf("loaded 1000 users\n");

  // --- read-modify-write with MVTO conflict handling ---
  {
    auto txn = db->Begin();
    UserProfile u{};
    Check(users->Read(txn.get(), 42, &u), "Read(42)");
    u.visits++;
    Check(users->Update(txn.get(), 42, &u), "Update(42)");
    Check(db->Commit(txn.get()), "Commit(visit)");
    std::printf("user 42 = %s, visits now %u\n", u.name, u.visits);
  }

  // --- snapshot isolation in action: a long reader is unaffected by a
  //     later writer ---
  {
    auto reader = db->Begin();
    UserProfile before{};
    Check(users->Read(reader.get(), 7, &before), "Read(before)");

    auto writer = db->Begin();
    UserProfile w = before;
    w.score = 9999;
    Check(users->Update(writer.get(), 7, &w), "Update(7)");
    Check(db->Commit(writer.get()), "Commit(writer)");

    UserProfile again{};
    Check(users->Read(reader.get(), 7, &again), "Read(again)");
    std::printf("reader still sees score %u (writer committed %u)\n",
                again.score, w.score);
    Check(db->Commit(reader.get()), "Commit(reader)");
  }

  // --- range scan through the B+Tree ---
  {
    auto txn = db->Begin();
    uint32_t total_score = 0;
    uint64_t count = 0;
    Check(users->Scan(txn.get(), 100, 199,
                      [&](uint64_t, const void* tuple) {
                        const auto* u =
                            static_cast<const UserProfile*>(tuple);
                        total_score += u->score;
                        ++count;
                        return true;
                      }),
          "Scan");
    Check(db->Commit(txn.get()), "Commit(scan)");
    std::printf("scanned %llu users in [100,199], total score %u\n",
                static_cast<unsigned long long>(count), total_score);
  }

  // --- a rolled-back transaction leaves no trace ---
  {
    auto txn = db->Begin();
    UserProfile u{};
    std::strcpy(u.name, "oops");
    Check(users->Insert(txn.get(), 5000, &u), "Insert(5000)");
    Check(db->Abort(txn.get()), "Abort");
    auto check = db->Begin();
    UserProfile out{};
    if (!users->Read(check.get(), 5000, &out).IsNotFound()) {
      std::fprintf(stderr, "aborted insert is visible!\n");
      return 1;
    }
    Check(db->Commit(check.get()), "Commit(check)");
    std::printf("aborted insert correctly invisible\n");
  }

  Check(db->Checkpoint(), "Checkpoint");
  std::printf("buffer stats: %s\n",
              db->buffer_manager()->stats().ToString().c_str());
  std::printf("done.\n");
  return 0;
}
