// Adaptive data migration in action (Section 4 / Figure 10): run YCSB on
// the full engine while the simulated-annealing tuner adjusts the
// migration policy <Dr, Dw, Nr, Nw> live, starting from the eager policy.
//
// Build & run:   ./build/examples/ycsb_tuning

#include <cstdio>

#include "adaptive/annealing_tuner.h"
#include "storage/perf_model.h"
#include "workload/driver.h"
#include "workload/ycsb.h"

using namespace spitfire;  // NOLINT — example brevity

int main() {
  LatencySimulator::SetScale(0.25);  // quarter-scale latencies: faster demo

  DatabaseOptions options;
  options.dram_frames = 64;    // 1 MB DRAM — deliberately tight
  options.nvm_frames = 512;    // 8 MB NVM
  options.policy = MigrationPolicy::Eager();  // start eagerly, as in §6.4
  options.enable_wal = false;  // isolate buffer behaviour for the demo
  auto db = Database::Create(options).MoveValue();

  YcsbConfig cfg = YcsbConfig::Balanced(8'000);  // ~8 MB of tuples
  YcsbWorkload ycsb(db.get(), cfg);
  if (Status st = ycsb.Load(); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %llu tuples; tuning from %s\n",
              static_cast<unsigned long long>(cfg.num_tuples),
              db->buffer_manager()->policy().ToString().c_str());

  AnnealingOptions aopts;
  aopts.initial_temperature = 50.0;
  aopts.cooling_rate = 0.85;
  AnnealingTuner tuner(aopts, MigrationPolicy::Eager());

  constexpr int kEpochs = 30;
  constexpr double kEpochSeconds = 0.4;
  double first_epoch_tput = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    db->buffer_manager()->SetPolicy(tuner.current());
    DriverResult res = WorkloadDriver::Run(
        2, kEpochSeconds,
        [&](Xoshiro256& rng) { return ycsb.RunTransaction(rng); });
    if (epoch == 0) first_epoch_tput = res.Throughput();
    std::printf("epoch %2d  policy %-34s  %8.0f txn/s  (t=%.2f)\n", epoch,
                tuner.current().ToString().c_str(), res.Throughput(),
                tuner.temperature());
    tuner.OnEpochComplete(res.Throughput());
  }

  std::printf("\nbest policy found : %s\n", tuner.best().ToString().c_str());
  std::printf("best throughput   : %.0f txn/s (epoch 0 was %.0f)\n",
              tuner.best_throughput(), first_epoch_tput);
  std::printf("inclusivity ratio : %.3f\n",
              db->buffer_manager()->InclusivityRatio());
  return 0;
}
