// Crash-recovery demo (Section 5.2): run transactions, crash the engine
// without flushing, and recover from the surviving NVM + SSD devices. The
// NVM buffer's pages and the staged log records persist across the crash;
// recovery rebuilds the mapping table from the NVM frame table, appends
// the NVM log tail to the log file, and replays committed transactions.
//
// Build & run:   ./build/examples/crash_recovery

#include <cstdio>

#include "db/database.h"
#include "storage/perf_model.h"

using namespace spitfire;  // NOLINT — example brevity

namespace {

struct Account {
  uint64_t balance;
  uint64_t updates;
};

constexpr uint32_t kAccountsTable = 1;
constexpr uint64_t kNumAccounts = 500;

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  LatencySimulator::SetScale(1.0);

  DatabaseOptions options;
  options.dram_frames = 64;
  options.nvm_frames = 256;
  options.policy = MigrationPolicy::Lazy();
  options.enable_wal = true;

  DatabaseEnv env;
  uint64_t expected_total = 0;

  // Phase 1: load, update, then crash mid-flight.
  {
    auto db = Database::Create(options).MoveValue();
    Table* accounts = db->CreateTable(kAccountsTable, sizeof(Account)).value();

    auto load = db->Begin();
    for (uint64_t id = 0; id < kNumAccounts; ++id) {
      Account a{1000, 0};
      Check(accounts->Insert(load.get(), id, &a), "Insert");
    }
    Check(db->Commit(load.get()), "Commit(load)");
    expected_total = kNumAccounts * 1000;

    // Committed transfers: move 10 from account i to account i+1.
    for (uint64_t i = 0; i < 200; ++i) {
      auto txn = db->Begin();
      Account from{}, to{};
      Check(accounts->Read(txn.get(), i, &from), "Read(from)");
      Check(accounts->Read(txn.get(), i + 1, &to), "Read(to)");
      from.balance -= 10;
      from.updates++;
      to.balance += 10;
      to.updates++;
      Check(accounts->Update(txn.get(), i, &from), "Update(from)");
      Check(accounts->Update(txn.get(), i + 1, &to), "Update(to)");
      Check(db->Commit(txn.get()), "Commit(transfer)");
    }

    // One transaction is still in flight when the "power fails" — it must
    // NOT survive recovery.
    auto loser = db->Begin();
    Account a{};
    Check(accounts->Read(loser.get(), 0, &a), "Read(loser)");
    a.balance += 1'000'000;
    Check(accounts->Update(loser.get(), 0, &a), "Update(loser)");

    std::printf("crashing with 1 uncommitted transaction in flight...\n");
    env = Database::Crash(std::move(db));
  }

  // Phase 2: recover from the surviving devices.
  {
    auto db_r = Database::Recover(options, std::move(env));
    Check(db_r.status(), "Recover");
    auto db = db_r.MoveValue();
    Table* accounts = db->GetTable(kAccountsTable);

    auto txn = db->Begin();
    uint64_t total = 0;
    uint64_t updated_accounts = 0;
    for (uint64_t id = 0; id < kNumAccounts; ++id) {
      Account a{};
      Check(accounts->Read(txn.get(), id, &a), "Read(verify)");
      total += a.balance;
      if (a.updates > 0) ++updated_accounts;
    }
    Check(db->Commit(txn.get()), "Commit(verify)");

    std::printf("recovered: total balance %llu (expected %llu)\n",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(expected_total));
    std::printf("accounts touched by committed transfers: %llu\n",
                static_cast<unsigned long long>(updated_accounts));
    if (total != expected_total) {
      std::fprintf(stderr, "RECOVERY FAILED: money was created/destroyed\n");
      return 1;
    }
    std::printf("invariant holds — the uncommitted update was discarded, "
                "all 200 committed transfers survived.\n");

    // The recovered database remains fully operational.
    auto txn2 = db->Begin();
    Account fresh{42, 0};
    Check(accounts->Insert(txn2.get(), 9999, &fresh), "Insert(post)");
    Check(db->Commit(txn2.get()), "Commit(post)");
    std::printf("post-recovery insert committed. done.\n");
  }
  return 0;
}
