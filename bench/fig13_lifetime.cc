// Figure 13: Impact of Data Migration Policies on NVM Device Lifetime —
// NVM write volume of Spitfire-Lazy vs HyMem (both with fine-grained
// loading enabled) on the YCSB mixes.
//
// Expected shape: Spitfire-Lazy performs somewhat MORE writes to NVM
// (paper: 1.05–1.4x) — it trades NVM endurance for runtime performance by
// writing eagerly to NVM and bypassing DRAM; HyMem funnels more writes
// through DRAM.
#include <cstdio>

#include "bench_util.h"

using namespace spitfire;          // NOLINT
using namespace spitfire::bench;   // NOLINT

int main() {
  LatencySimulator::SetScale(EnvScale());
  PrintBanner("Figure 13", "Impact of Migration Policies on NVM Lifetime");
  const double kDramMb = 8, kNvmMb = 32, kDbMb = 20;
  const double seconds = EnvSeconds(0.5);
  const AccessPattern pats[] = {YcsbRo(kDbMb), YcsbBa(kDbMb), YcsbWh(kDbMb)};

  std::printf("\nNVM write volume (MB per 100k ops), fine-grained enabled\n");
  std::printf("%-10s %14s %14s %10s\n", "", "HyMem", "Spitfire-Lazy",
              "ratio");
  for (const AccessPattern& pat : pats) {
    double volumes[2] = {0, 0};
    for (int which = 0; which < 2; ++which) {
      HierarchySpec spec;
      spec.dram_mb = kDramMb;
      spec.nvm_mb = kNvmMb;
      spec.ssd_mb = kDbMb + 16;
      spec.fine_grained = true;
      spec.granularity = 256;
      if (which == 0) {
        spec.policy = MigrationPolicy::Hymem();
        spec.admission = NvmAdmissionMode::kAdmissionQueue;
        spec.admission_queue_capacity = FramesForMb(kNvmMb) / 2;
      } else {
        spec.policy = MigrationPolicy::Lazy();
      }
      Hierarchy h = MakeHierarchy(spec);
      Populate(*h.bm, pat.num_pages);
      AccessGenerator gen(pat);
      WarmUp(*h.bm, gen, pat.num_pages + 30000);
      Xoshiro256 rng(11);
      std::vector<std::byte> buf(kTupleBytes);
      const uint64_t kOps = static_cast<uint64_t>(100000 * seconds / 0.5);
      for (uint64_t i = 0; i < kOps; ++i) {
        const auto a = gen.Next(rng);
        auto r = h.bm->FetchPage(a.page, a.is_write ? AccessIntent::kWrite
                                                    : AccessIntent::kRead);
        if (!r.ok()) continue;
        if (a.is_write) {
          (void)r.value().WriteAt(a.offset, kTupleBytes, buf.data());
        } else {
          (void)r.value().ReadAt(a.offset, kTupleBytes, buf.data());
        }
      }
      volumes[which] =
          static_cast<double>(
              h.bm->nvm_device()->stats().media_bytes_written.load()) /
          1e6 * (100000.0 / static_cast<double>(kOps));
    }
    std::printf("%-10s %14.2f %14.2f %9.2fx\n", pat.name.c_str(), volumes[0],
                volumes[1], volumes[0] > 0 ? volumes[1] / volumes[0] : 0.0);
    std::fflush(stdout);
  }
  return 0;
}
