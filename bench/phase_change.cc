// Phase-change scenario: point-lookup phase → full-table-scan phase →
// point-lookup phase → write-burst phase → point-lookup phase.
//
// Two questions, two sections:
//
//  - "replacement": does a full scan crater the post-scan point-lookup
//    throughput? Runs the identical scenario once with CLOCK and once with
//    the scan-resistant 2Q/cooling policy and reports throughput over time
//    (slices), the post-scan recovery-window throughput, and how much of
//    the pre-scan hot set is still DRAM-resident after the scan. CLOCK
//    lets the scan flush the hot set (every post-scan hit refaults from
//    SSD); 2Q keeps the scan in the probationary FIFO and the hot set in
//    the protected segment.
//  - "tuner": with the OnlineTuner attached, do the migration
//    probabilities ⟨Dr,Dw,Nr,Nw⟩ re-converge after each workload
//    transition? Reports windows/reconvergences/convergence per phase.
//
// Output: JSON lines on stdout (banner on stderr), redirected into
// BENCH_phase_change.json by CI.

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "adaptive/online_tuner.h"
#include "bench_util.h"
#include "buffer/replacer.h"
#include "workload/driver.h"

namespace spitfire::bench {
namespace {

// Scaled-down scenario: 64 MB DB over an 8 MB DRAM / 16 MB NVM / SSD
// hierarchy; the hot set (6 MB) fits in DRAM with room to spare.
constexpr double kDbMb = 64;
constexpr double kDramMb = 8;
constexpr double kNvmMb = 16;
constexpr uint64_t kHotPages = 384;
constexpr double kUniformShare = 0.05;
constexpr int kThreads = 2;
constexpr double kSliceSeconds = 0.05;
// Post-scan recovery window: the first 200 ms of the post-scan phase.
constexpr size_t kRecoverySlices = 4;

// The default LatencySimulator scale underweights the DRAM↔SSD gap
// (~100x here vs ~1000x for real devices); the scan-resistance penalty is
// exactly that gap, so this bench defaults the sim scale up. Override
// with SPITFIRE_BENCH_SCALE.
constexpr double kDefaultScale = 20.0;

uint64_t DbPages() { return PagesForMb(kDbMb); }

// Hot pages are strided across the DB (not a contiguous prefix) so the
// sequential read-ahead cannot refault the whole hot set in a few chained
// window reads — recovery pays one random SSD read per hot page, as a
// real post-scan workload would.
page_id_t HotPid(uint64_t i) { return static_cast<page_id_t>(i * (DbPages() / kHotPages)); }

WorkloadDriver::TxnFn PointFn(BufferManager* bm, double write_ratio) {
  const uint64_t db_pages = DbPages();
  return [bm, write_ratio, db_pages](Xoshiro256& rng) -> Status {
    const page_id_t pid = rng.NextDouble() < kUniformShare
                              ? rng.NextUint64(db_pages)
                              : HotPid(rng.NextUint64(kHotPages));
    const bool is_write = rng.Bernoulli(write_ratio);
    auto r = bm->FetchPage(
        pid, is_write ? AccessIntent::kWrite : AccessIntent::kRead);
    if (!r.ok()) return r.status();
    std::byte buf[kTupleBytes] = {};
    const size_t off = TupleOffset(rng.NextUint64(kTuplesPerPage));
    if (is_write) return r.value().WriteAt(off, kTupleBytes, buf);
    return r.value().ReadAt(off, kTupleBytes, buf);
  };
}

WorkloadDriver::TxnFn ScanFn(BufferManager* bm,
                             std::shared_ptr<std::atomic<uint64_t>> cursor) {
  const uint64_t db_pages = DbPages();
  return [bm, cursor, db_pages](Xoshiro256&) -> Status {
    const page_id_t pid = static_cast<page_id_t>(
        cursor->fetch_add(1, std::memory_order_relaxed) % db_pages);
    auto r = bm->FetchPage(pid, AccessIntent::kRead);
    if (!r.ok()) return r.status();
    std::byte buf[kTupleBytes];
    return r.value().ReadAt(TupleOffset(0), kTupleBytes, buf);
  };
}

size_t HotResident(const BufferManager& bm) {
  size_t n = 0;
  for (uint64_t p = 0; p < kHotPages; ++p) {
    if (bm.IsDramResident(HotPid(p))) ++n;
  }
  return n;
}

std::string SlicesJson(const std::vector<double>& slices) {
  std::string s = "[";
  char tmp[32];
  for (size_t i = 0; i < slices.size(); ++i) {
    std::snprintf(tmp, sizeof(tmp), "%s%.0f", i ? ", " : "", slices[i]);
    s += tmp;
  }
  return s + "]";
}

double WindowTput(const std::vector<double>& slices, size_t n) {
  double sum = 0;
  n = std::min(n, slices.size());
  for (size_t i = 0; i < n; ++i) sum += slices[i];
  return n > 0 ? sum / static_cast<double>(n) : 0;
}

// `with_nvm` selects the hierarchy shape. The replacement section runs
// DRAM-SSD: with an NVM middle tier Spitfire's miss path installs scan
// pages into NVM and serves them from there, so the DRAM pool never sees
// the scan at all (the tier structure itself is scan-resistant) and the
// replacement policies are indistinguishable. The tuner section runs the
// full three-tier hierarchy, where ⟨Dr,Dw,Nr,Nw⟩ actually matters.
Hierarchy MakeScenarioHierarchy(ReplacerKind kind, bool with_nvm) {
  HierarchySpec spec;
  spec.dram_mb = kDramMb;
  spec.nvm_mb = with_nvm ? kNvmMb : 0;
  spec.ssd_mb = 256;
  spec.policy = MigrationPolicy::Eager();
  spec.dram_replacer = kind;
  spec.nvm_replacer = kind;
  // Faster probation→protected promotion (2 sampled = 8 raw accesses).
  spec.replacer_sample_rate = 4;
  Hierarchy h = MakeHierarchy(spec);
  Populate(*h.bm, DbPages());
  // Pre-warm the hot set at zero simulated latency so the point mix
  // starts from steady-state placement (hot pages promoted/protected),
  // then restore the configured scale for the measured phases.
  const double saved = LatencySimulator::scale();
  LatencySimulator::SetScale(0.0);
  Xoshiro256 rng(4242);
  auto warm = PointFn(h.bm.get(), /*write_ratio=*/0.05);
  for (int i = 0; i < 200'000; ++i) (void)warm(rng);
  h.bm->stats().Reset();
  LatencySimulator::SetScale(saved);
  return h;
}

struct PhaseRow {
  WorkloadDriver::PhaseResult result;
  uint64_t windows = 0, reconvergences = 0, last_converged = 0;
  bool converged = false;
};

// Runs the five-phase scenario; phases are separate RunPhased calls so
// hot-set residency (and tuner state) can be sampled at the boundaries.
struct ScenarioOut {
  std::vector<PhaseRow> rows;
  size_t hot_before_scan = 0, hot_after_scan = 0;
  uint64_t scan_pages = 0;
  std::string replacer_debug;
};

ScenarioOut RunScenario(ReplacerKind kind, double phase_secs,
                        bool with_tuner) {
  Hierarchy h = MakeScenarioHierarchy(kind, /*with_nvm=*/with_tuner);
  BufferManager* bm = h.bm.get();

  std::unique_ptr<OnlineTuner> tuner;
  if (with_tuner) {
    OnlineTunerOptions topt;
    topt.window_seconds = 0.05;
    topt.min_window_fetches = 512;
    // Online windows are short; a hotter-but-faster schedule than the
    // default converges in ~14 active windows (0.7 s of traffic).
    topt.annealing.initial_temperature = 1.5;
    topt.annealing.cooling_rate = 0.7;
    tuner = std::make_unique<OnlineTuner>(bm, topt);
    tuner->Start();
  }

  auto cursor = std::make_shared<std::atomic<uint64_t>>(0);
  const std::vector<WorkloadDriver::PhaseSpec> phases = {
      {"point_pre", phase_secs, PointFn(bm, 0.05)},
      {"scan", phase_secs, ScanFn(bm, cursor)},
      {"point_post", phase_secs, PointFn(bm, 0.05)},
      {"write_burst", phase_secs, PointFn(bm, 0.80)},
      {"point_final", phase_secs, PointFn(bm, 0.05)},
  };

  ScenarioOut out;
  for (const auto& phase : phases) {
    if (phase.name == "scan") out.hot_before_scan = HotResident(*bm);
    auto r = WorkloadDriver::RunPhased(kThreads, {phase}, kSliceSeconds);
    if (phase.name == "scan") {
      out.hot_after_scan = HotResident(*bm);
      out.scan_pages = cursor->load();
    }
    PhaseRow row;
    row.result = std::move(r[0]);
    if (tuner != nullptr) {
      row.windows = tuner->windows();
      row.reconvergences = tuner->reconvergences();
      row.last_converged = tuner->last_converged_window();
      row.converged = tuner->converged();
    }
    out.rows.push_back(std::move(row));
  }
  if (tuner != nullptr) tuner->Stop();
  out.replacer_debug = bm->dram_pool()->replacer().DebugString();
  return out;
}

void PrintPhaseLines(const char* section, const char* policy,
                     const ScenarioOut& out, bool with_tuner) {
  for (const auto& row : out.rows) {
    JsonLine line;
    line.Str("bench", "phase_change")
        .Str("section", section)
        .Str("policy", policy)
        .Str("phase", row.result.name)
        .Num("ops_per_sec", row.result.Throughput())
        .Num("committed", row.result.committed)
        .Num("aborted", row.result.aborted)
        .Raw("slice_ops_per_sec", SlicesJson(row.result.slice_ops_per_sec));
    if (row.result.name == "point_post") {
      line.Num("recovery_window_ops_per_sec",
               WindowTput(row.result.slice_ops_per_sec, kRecoverySlices));
    }
    if (row.result.name == "scan") {
      line.Num("hot_resident_before", static_cast<uint64_t>(out.hot_before_scan))
          .Num("hot_resident_after", static_cast<uint64_t>(out.hot_after_scan))
          .Num("hot_pages", kHotPages)
          .Num("scan_pages_fetched", out.scan_pages);
    }
    if (with_tuner) {
      line.Num("tuner_windows", row.windows)
          .Num("tuner_reconvergences", row.reconvergences)
          .Num("tuner_last_converged_window", row.last_converged)
          .Num("tuner_converged", static_cast<uint64_t>(row.converged ? 1 : 0));
    }
    line.Print();
  }
  JsonLine().Str("bench", "phase_change")
      .Str("section", section)
      .Str("policy", policy)
      .Str("dram_replacer_state", out.replacer_debug)
      .Print();
}

int Main() {
  std::fprintf(stderr,
               "phase_change: point -> scan -> point -> write-burst -> "
               "point (db=%.0fMB dram=%.0fMB nvm=%.0fMB, %d threads)\n",
               kDbMb, kDramMb, kNvmMb, kThreads);
  const double phase_secs = EnvSeconds(1.0);
  LatencySimulator::SetScale(EnvScale(kDefaultScale));

  JsonLine()
      .Str("bench", "phase_change")
      .Str("section", "config")
      .Num("db_mb", kDbMb)
      .Num("dram_mb", kDramMb)
      .Num("nvm_mb", kNvmMb)
      .Num("hot_pages", kHotPages)
      .Num("uniform_share", kUniformShare)
      .Num("threads", kThreads)
      .Num("phase_seconds", phase_secs)
      .Num("slice_seconds", kSliceSeconds)
      .Num("latency_scale", LatencySimulator::scale())
      .Print();

  // Section 1: CLOCK vs 2Q, fixed (eager) migration policy.
  ScenarioOut clock = RunScenario(ReplacerKind::kClock, phase_secs, false);
  PrintPhaseLines("replacement", "clock", clock, false);
  ScenarioOut twoq = RunScenario(ReplacerKind::kTwoQ, phase_secs, false);
  PrintPhaseLines("replacement", "2q", twoq, false);

  const auto recovery = [](const ScenarioOut& s) {
    for (const auto& row : s.rows) {
      if (row.result.name == "point_post") {
        return WindowTput(row.result.slice_ops_per_sec, kRecoverySlices);
      }
    }
    return 0.0;
  };
  const double rec_clock = recovery(clock);
  const double rec_2q = recovery(twoq);
  JsonLine()
      .Str("bench", "phase_change")
      .Str("section", "summary")
      .Num("post_scan_recovery_clock_ops_per_sec", rec_clock)
      .Num("post_scan_recovery_2q_ops_per_sec", rec_2q)
      .Num("post_scan_recovery_ratio_2q_over_clock",
           rec_clock > 0 ? rec_2q / rec_clock : 0)
      .Num("hot_retention_clock",
           clock.hot_before_scan > 0
               ? static_cast<double>(clock.hot_after_scan) /
                     static_cast<double>(clock.hot_before_scan)
               : 0)
      .Num("hot_retention_2q",
           twoq.hot_before_scan > 0
               ? static_cast<double>(twoq.hot_after_scan) /
                     static_cast<double>(twoq.hot_before_scan)
               : 0)
      .Print();

  // Section 2: the online tuner across the same transitions (2Q).
  ScenarioOut tuned = RunScenario(ReplacerKind::kTwoQ, phase_secs, true);
  PrintPhaseLines("tuner", "2q", tuned, true);
  return 0;
}

}  // namespace
}  // namespace spitfire::bench

int main() { return spitfire::bench::Main(); }
