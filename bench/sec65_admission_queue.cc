// Section 6.5 (Admission Queue Size): the HyMem paper does not state its
// admission queue capacity, so Spitfire's authors sweep it and find that
// half the NVM buffer's page count works well. This benchmark reproduces
// that sweep: throughput of the HyMem policy as the admission queue
// capacity varies from a token handful to several times the NVM buffer.
//
// Expected shape: tiny queues forget pages before their second eviction
// (nothing gets admitted into NVM → the NVM buffer idles); very large
// queues admit everything on the second touch (fine, plateaus); the knee
// sits around half the NVM buffer page count.
#include <cstdio>

#include "bench_util.h"

using namespace spitfire;          // NOLINT
using namespace spitfire::bench;   // NOLINT

int main() {
  LatencySimulator::SetScale(EnvScale());
  PrintBanner("Section 6.5", "HyMem Admission Queue Size");
  const double kDramMb = 8, kNvmMb = 32, kDbMb = 60;
  const double seconds = EnvSeconds(0.4);
  const size_t nvm_pages = FramesForMb(kNvmMb);

  const double fractions[] = {0.03125, 0.125, 0.5, 2.0, 8.0};
  std::printf("\nHyMem policy, YCSB-RO and YCSB-BA (ops/s)\n");
  std::printf("%-26s %12s %12s %14s\n", "queue capacity", "YCSB-RO",
              "YCSB-BA", "NVM resident");
  for (double frac : fractions) {
    const size_t cap = std::max<size_t>(1, static_cast<size_t>(
                                               nvm_pages * frac));
    std::printf("%6zu (%5.3gx NVM pages)", cap, frac);
    size_t resident = 0;
    for (int mix = 0; mix < 2; ++mix) {
      HierarchySpec spec;
      spec.dram_mb = kDramMb;
      spec.nvm_mb = kNvmMb;
      spec.ssd_mb = kDbMb + 16;
      spec.policy = MigrationPolicy::Hymem();
      spec.admission = NvmAdmissionMode::kAdmissionQueue;
      spec.admission_queue_capacity = cap;
      AccessPattern pat = mix == 0 ? YcsbRo(kDbMb) : YcsbBa(kDbMb);
      Hierarchy h = MakeHierarchy(spec);
      Populate(*h.bm, pat.num_pages);
      AccessGenerator gen(pat);
      WarmUp(*h.bm, gen, pat.num_pages + 300'000);
      const double ops = MeasureOps(*h.bm, gen, /*threads=*/1, seconds);
      std::printf(" %12.0f", ops);
      std::fflush(stdout);
      resident = h.bm->NvmResidentPages();
    }
    std::printf(" %10zu pages\n", resident);
  }
  return 0;
}
