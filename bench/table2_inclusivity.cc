// Table 2: Inclusivity Ratio of DRAM & NVM Buffers — the degree of page
// duplication across the two buffers as the DRAM migration probabilities
// (top half) and NVM migration probabilities (bottom half) vary in
// lockstep over {0, 0.01, 0.1, 1}.
//
// Hierarchy (scaled): 12.5 MB DRAM + 50 MB NVM over SSD (paper: GB).
// Expected shape: inclusivity 0 at probability 0, growing with eagerness;
// lazy policies keep duplication (and wasted capacity) low.
#include <cstdio>

#include "bench_util.h"

using namespace spitfire;          // NOLINT
using namespace spitfire::bench;   // NOLINT

int main() {
  LatencySimulator::SetScale(EnvScale());
  PrintBanner("Table 2", "Inclusivity Ratio of DRAM & NVM Buffers");
  const double kDramMb = 12.5, kNvmMb = 50, kDbMb = 100;
  const double seconds = EnvSeconds(0.3);
  const double probs[] = {0.0, 0.01, 0.1, 1.0};

  const AccessPattern pats[] = {YcsbRo(kDbMb), YcsbBa(kDbMb), YcsbWh(kDbMb),
                                TpccLike(kDbMb)};

  std::printf("\nMigration Probabilities %10s %10s %10s %10s\n", "0", "0.01",
              "0.1", "1");
  std::printf("Bypassing DRAM (D = Dr = Dw, with N = 1)\n");
  for (const AccessPattern& pat : pats) {
    std::printf("%-22s", pat.name.c_str());
    for (double d : probs) {
      HierarchySpec spec;
      spec.dram_mb = kDramMb;
      spec.nvm_mb = kNvmMb;
      spec.ssd_mb = kDbMb + 32;
      spec.policy = MigrationPolicy{d, d, 1.0, 1.0};
      RunResult r = RunPoint(spec, pat, /*threads=*/1, seconds);
      std::printf(" %10.3f", r.inclusivity);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("Bypassing NVM (N = Nr = Nw, with D = 1)\n");
  for (const AccessPattern& pat : pats) {
    std::printf("%-22s", pat.name.c_str());
    for (double n : probs) {
      HierarchySpec spec;
      spec.dram_mb = kDramMb;
      spec.nvm_mb = kNvmMb;
      spec.ssd_mb = kDbMb + 32;
      spec.policy = MigrationPolicy{1.0, 1.0, n, n};
      RunResult r = RunPoint(spec, pat, /*threads=*/1, seconds);
      std::printf(" %10.3f", r.inclusivity);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("\n(lower non-zero values are better — less duplication)\n");
  return 0;
}
