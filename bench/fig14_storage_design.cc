// Figure 14: Storage System Design — cost and performance/price of
// candidate DRAM×NVM grids over a fixed SSD, per workload, plus the grid
// search for the best configuration (Section 6.6).
//
// Scaled grid (paper GB → MB): DRAM ∈ {0, 4, 8, 32} MB, NVM ∈ {0, 40, 80,
// 160} MB, SSD 200 MB, 100 MB database, zipf 0.5, Spitfire-Lazy on
// three-tier points.
//
// Expected shape: read-heavy → small-DRAM + large-NVM three-tier wins on
// perf/price; write-heavy → the NVM-SSD hierarchy wins (no dirty-page
// flushing); adding DRAM beyond a few MB barely moves throughput but
// raises cost.
#include <cstdio>
#include <vector>

#include "adaptive/grid_search.h"
#include "bench_util.h"

using namespace spitfire;          // NOLINT
using namespace spitfire::bench;   // NOLINT

int main() {
  LatencySimulator::SetScale(EnvScale());
  PrintBanner("Figure 14", "Storage System Design (grid search)");
  const double kDbMb = 100, kSsdMb = 200;
  const double seconds = EnvSeconds(0.3);
  const double dram_grid[] = {0, 4, 8, 32};
  const double nvm_grid[] = {0, 40, 80, 160};

  // (a) cost grid
  std::printf("\n(a) Storage system cost ($, scaled MB capacities)\n");
  std::printf("%10s", "DRAM\\NVM");
  for (double n : nvm_grid) std::printf(" %9.0fMB", n);
  std::printf("\n");
  for (double d : dram_grid) {
    std::printf("%8.0fMB", d);
    for (double n : nvm_grid) {
      StorageConfig c{static_cast<uint64_t>(d * 1024 * 1024),
                      static_cast<uint64_t>(n * 1024 * 1024),
                      static_cast<uint64_t>(kSsdMb * 1024 * 1024)};
      std::printf(" %11.4f", c.CostDollars());
    }
    std::printf("\n");
  }

  const AccessPattern pats[] = {YcsbRo(kDbMb, 0.5), YcsbBa(kDbMb, 0.5),
                                YcsbWh(kDbMb, 0.5)};
  const char* figs[] = {"(b)", "(c)", "(d)"};
  int fig_i = 0;
  for (const AccessPattern& pat : pats) {
    std::printf("\n%s %s — throughput/cost (ops/s/$)\n", figs[fig_i++],
                pat.name.c_str());
    std::printf("%10s", "DRAM\\NVM");
    for (double n : nvm_grid) std::printf(" %9.0fMB", n);
    std::printf("\n");
    std::vector<GridPoint> grid;
    for (double d : dram_grid) {
      std::printf("%8.0fMB", d);
      for (double n : nvm_grid) {
        if (d == 0 && n == 0) {
          std::printf(" %11s", "-");
          continue;
        }
        HierarchySpec spec;
        spec.dram_mb = d;
        spec.nvm_mb = n;
        spec.ssd_mb = kSsdMb;
        spec.policy = (d > 0 && n > 0) ? MigrationPolicy::Lazy()
                                       : MigrationPolicy::Eager();
        RunResult r = RunPoint(spec, pat, /*threads=*/2, seconds);
        GridPoint p;
        p.config = StorageConfig{static_cast<uint64_t>(d * 1024 * 1024),
                                 static_cast<uint64_t>(n * 1024 * 1024),
                                 static_cast<uint64_t>(kSsdMb * 1024 * 1024)};
        p.throughput = r.ops_per_sec;
        grid.push_back(p);
        std::printf(" %11.0f", p.PerfPerPrice());
        std::fflush(stdout);
      }
      std::printf("\n");
    }
    const GridPoint* best_pp = GridSearch::BestPerfPerPrice(grid);
    const GridPoint* best_t = GridSearch::BestThroughput(grid);
    if (best_pp != nullptr) {
      std::printf("  best perf/price : %s (%.0f ops/s/$)\n",
                  best_pp->config.ToString().c_str(), best_pp->PerfPerPrice());
    }
    if (best_t != nullptr) {
      std::printf("  best throughput : %s (%.0f ops/s)\n",
                  best_t->config.ToString().c_str(), best_t->throughput);
    }
  }
  return 0;
}
