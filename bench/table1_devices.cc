// Table 1: Device Characteristics — prints the DRAM / NVM / SSD profiles
// the simulation substrate is calibrated to (latencies, bandwidths,
// granularity, persistence, price).
#include <cstdio>

#include "bench_util.h"

using namespace spitfire;  // NOLINT

int main() {
  bench::PrintBanner("Table 1", "Device Characteristics");
  const DeviceProfile profiles[] = {
      DeviceProfile::Dram(),
      DeviceProfile::OptaneNvm(),
      DeviceProfile::OptaneSsd(),
  };
  std::printf("%-28s %12s %12s %12s\n", "", "DRAM", "NVM", "SSD");
  auto row_u = [&](const char* name, auto getter, const char* unit) {
    std::printf("%-28s", name);
    for (const auto& p : profiles) {
      std::printf(" %9.1f %s", static_cast<double>(getter(p)), unit);
    }
    std::printf("\n");
  };
  std::printf("Latency\n");
  row_u("  Idle Seq Read Latency",
        [](const DeviceProfile& p) { return p.seq_read_latency_ns; }, "ns");
  row_u("  Idle Rand Read Latency",
        [](const DeviceProfile& p) { return p.rand_read_latency_ns; }, "ns");
  std::printf("Bandwidth\n");
  row_u("  Sequential Read",
        [](const DeviceProfile& p) { return p.seq_read_bw / 1e9; }, "GB/s");
  row_u("  Random Read",
        [](const DeviceProfile& p) { return p.rand_read_bw / 1e9; }, "GB/s");
  row_u("  Sequential Write",
        [](const DeviceProfile& p) { return p.seq_write_bw / 1e9; }, "GB/s");
  row_u("  Random Write",
        [](const DeviceProfile& p) { return p.rand_write_bw / 1e9; }, "GB/s");
  std::printf("Other Key Attributes\n");
  row_u("  Price ($/GB)",
        [](const DeviceProfile& p) { return p.price_per_gb; }, "$   ");
  row_u("  Media Granularity",
        [](const DeviceProfile& p) { return static_cast<double>(p.media_granularity); },
        "B   ");
  std::printf("%-28s", "  Byte-addressable");
  for (const auto& p : profiles) {
    std::printf(" %12s", p.byte_addressable ? "yes" : "no");
  }
  std::printf("\n%-28s", "  Persistent");
  for (const auto& p : profiles) {
    std::printf(" %12s", p.persistent ? "yes" : "no");
  }
  std::printf("\n\nEnd-to-end 16 KB page transfer (latency + bandwidth):\n");
  for (const auto& p : profiles) {
    std::printf("  %-24s read %8.2f us   write %8.2f us\n", p.name.c_str(),
                p.ReadLatencyNanos(kPageSize, false) / 1000.0,
                p.WriteLatencyNanos(kPageSize, false) / 1000.0);
  }
  return 0;
}
