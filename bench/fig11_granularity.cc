// Figure 11: Optimal Granularity for Loading Data on NVM — HyMem-style
// cache-line-grained loading at 64/128/256/512 B units on YCSB-RO with an
// eager migration policy.
//
// Expected shape: throughput peaks at 256 B — Optane's device-level media
// granularity. 64 B loads pay ~4x the per-request latency for the same
// bytes (I/O amplification: each 64 B request still touches a 256 B media
// block); 512 B over-fetches.
#include <cstdio>

#include "bench_util.h"

using namespace spitfire;          // NOLINT
using namespace spitfire::bench;   // NOLINT

int main() {
  LatencySimulator::SetScale(EnvScale());
  PrintBanner("Figure 11", "Optimal Granularity for Loading Data on NVM");
  const double kDramMb = 8, kNvmMb = 32, kDbMb = 20;
  const double seconds = EnvSeconds(0.6);
  const uint32_t grans[] = {64, 128, 256, 512};

  std::printf("\nYCSB-RO, eager policy, fine-grained loading (ops/s)\n");
  std::printf("%-14s %12s %14s\n", "unit (B)", "ops/s", "unit loads/op");
  for (uint32_t g : grans) {
    HierarchySpec spec;
    spec.dram_mb = kDramMb;
    spec.nvm_mb = kNvmMb;
    spec.ssd_mb = kDbMb + 16;
    spec.policy = MigrationPolicy::Eager();
    spec.fine_grained = true;
    spec.granularity = g;
    AccessPattern pat = YcsbRo(kDbMb, 0.3);

    Hierarchy h = MakeHierarchy(spec);
    Populate(*h.bm, pat.num_pages);
    AccessGenerator gen(pat);
    WarmUp(*h.bm, gen, pat.num_pages + 30000);
    const double ops = MeasureOps(*h.bm, gen, /*threads=*/1, seconds);
    const double loads =
        static_cast<double>(h.bm->stats().Snapshot().fine_grained_loads);
    const double per_op = ops > 0 ? loads / (ops * seconds) : 0;
    std::printf("%-14u %12.0f %14.2f\n", g, ops, per_op);
    std::fflush(stdout);
  }
  return 0;
}
