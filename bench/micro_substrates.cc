// Microbenchmarks of the substrates (google-benchmark): concurrent hash
// table, concurrent bitmap / CLOCK, latches, B+Tree, NVM log buffer, and
// raw buffer manager fetch paths. These are not paper figures; they guard
// against performance regressions in the building blocks.
#include <benchmark/benchmark.h>

#include "buffer/buffer_manager.h"
#include "container/concurrent_bitmap.h"
#include "container/concurrent_hash_table.h"
#include "container/mpmc_queue.h"
#include "index/btree.h"
#include "storage/perf_model.h"
#include "storage/ssd_device.h"
#include "sync/optimistic_latch.h"
#include "sync/spin_latch.h"
#include "wal/nvm_log_buffer.h"

namespace spitfire {
namespace {

void BM_HashTableInsert(benchmark::State& state) {
  ConcurrentHashTable<uint64_t, uint64_t> table;
  uint64_t k = state.thread_index() * 1'000'000'000ull;
  for (auto _ : state) {
    table.Insert(k++, k);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableInsert)->Threads(1)->Threads(2);

void BM_HashTableFind(benchmark::State& state) {
  static ConcurrentHashTable<uint64_t, uint64_t> table;
  if (state.thread_index() == 0) {
    for (uint64_t i = 0; i < 100'000; ++i) table.Insert(i, i);
  }
  Xoshiro256 rng(state.thread_index() + 1);
  uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Find(rng.NextUint64(100'000), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HashTableFind)->Threads(1)->Threads(2);

void BM_ConcurrentBitmapSet(benchmark::State& state) {
  static ConcurrentBitmap bm(1 << 20);
  Xoshiro256 rng(state.thread_index() + 1);
  for (auto _ : state) {
    bm.Set(rng.NextUint64(1 << 20));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ConcurrentBitmapSet)->Threads(1)->Threads(2);

void BM_SpinLatch(benchmark::State& state) {
  static SpinLatch latch;
  for (auto _ : state) {
    latch.Lock();
    benchmark::ClobberMemory();
    latch.Unlock();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpinLatch)->Threads(1)->Threads(2);

void BM_OptimisticRead(benchmark::State& state) {
  static OptimisticLatch latch;
  for (auto _ : state) {
    const uint64_t v = latch.ReadLockOrRestart();
    benchmark::DoNotOptimize(latch.Validate(v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimisticRead)->Threads(1)->Threads(2);

void BM_MpmcQueue(benchmark::State& state) {
  static MpmcQueue<uint64_t> q(4096);
  uint64_t v = 0;
  for (auto _ : state) {
    if (!q.TryPush(1)) q.TryPop(&v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueue)->Threads(1)->Threads(2);

void BM_BTreeLookup(benchmark::State& state) {
  LatencySimulator::SetScale(0.0);
  static SsdDevice* ssd = new SsdDevice(512ull << 20);
  static BufferManager* bm = [] {
    BufferManagerOptions opt;
    opt.dram_frames = 2048;
    opt.nvm_frames = 2048;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd;
    return new BufferManager(opt);
  }();
  static BTree* tree = [] {
    BTree* t = BTree::Create(bm).value();
    for (uint64_t k = 0; k < 200'000; ++k) {
      SPITFIRE_CHECK(t->Insert(k, k).ok());
    }
    return t;
  }();
  Xoshiro256 rng(state.thread_index() + 7);
  uint64_t v;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree->Lookup(rng.NextUint64(200'000), &v));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeLookup)->Threads(1)->Threads(2);

void BM_NvmLogAppend(benchmark::State& state) {
  LatencySimulator::SetScale(0.0);
  static NvmDevice* nvm = new NvmDevice(256ull << 20);
  static NvmLogBuffer* log = [] {
    auto* l = new NvmLogBuffer(nvm, 0, 256ull << 20);
    SPITFIRE_CHECK(l->Format(0).ok());
    return l;
  }();
  std::byte payload[128] = {};
  std::vector<std::byte> sink;
  for (auto _ : state) {
    auto r = log->Append(payload, sizeof(payload));
    if (!r.ok()) {
      (void)log->Drain(&sink);  // recycle the buffer
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_NvmLogAppend)->Threads(1)->Threads(2);

void BM_BufferFetchDramHit(benchmark::State& state) {
  LatencySimulator::SetScale(0.0);
  static SsdDevice* ssd = new SsdDevice(64ull << 20);
  static BufferManager* bm = [] {
    BufferManagerOptions opt;
    opt.dram_frames = 512;
    opt.nvm_frames = 512;
    opt.policy = MigrationPolicy::Eager();
    opt.ssd = ssd;
    auto* b = new BufferManager(opt);
    for (int i = 0; i < 256; ++i) SPITFIRE_CHECK(b->NewPage().ok());
    return b;
  }();
  Xoshiro256 rng(state.thread_index() + 3);
  for (auto _ : state) {
    auto r = bm->FetchPage(rng.NextUint64(256), AccessIntent::kRead);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferFetchDramHit)->Threads(1)->Threads(2);

}  // namespace
}  // namespace spitfire

BENCHMARK_MAIN();
