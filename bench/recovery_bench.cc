// Recovery-time benchmark: how long a crash-restart takes as a function
// of (a) the checkpoint interval that ran before the crash and (b) the
// dirty-page backlog accumulated since the last checkpoint.
//
// Both sweeps run the same shape: load a table, run update transactions,
// crash (Database::Crash keeps the simulated devices), then time
// Database::Recover. RecoveryStats from the recovered instance report how
// much of the log the durable redo horizon let recovery skip — the
// mechanism the checkpoint-interval sweep is measuring. The paper's
// Section 6.6 point (NVM-resident pages survive the crash, so a
// three-tier instance restarts warm) shows up as the with/without-NVM
// pair in the backlog sweep.
//
// Output: one JSON line per point (BENCH_recovery.json in CI).
// SPITFIRE_BENCH_SCALE scales transaction counts.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "db/database.h"
#include "db/table.h"

namespace spitfire::bench {
namespace {

struct Row {
  uint64_t v;
  uint64_t pad[31];  // 256 B tuple → 63 rows per 16 KB page
};

constexpr uint64_t kRows = 2048;  // ~33 heap pages

DatabaseOptions MakeOptions(bool with_nvm) {
  DatabaseOptions o;
  o.dram_frames = 64;
  o.nvm_frames = with_nvm ? 192 : 0;
  o.policy = with_nvm ? MigrationPolicy::Lazy() : MigrationPolicy::Eager();
  o.enable_wal = true;
  o.log_staging_size = 1ull << 20;
  return o;
}

struct Point {
  double recovery_ms = 0;
  uint64_t redo_applied = 0;
  uint64_t redo_skipped = 0;
  uint64_t log_records = 0;
};

// Loads kRows rows, runs `updates` single-row update transactions
// (spread over `touch_rows` distinct rows), checkpointing every
// `checkpoint_every` commits (0 = never), crashes, and times recovery.
Point RunPoint(bool with_nvm, uint64_t updates, uint64_t touch_rows,
               uint64_t checkpoint_every) {
  const DatabaseOptions opts = MakeOptions(with_nvm);
  DatabaseEnv env;
  {
    auto db = Database::Create(opts).MoveValue();
    Table* t = db->CreateTable(1, sizeof(Row)).value();
    {
      auto txn = db->Begin();
      for (uint64_t k = 0; k < kRows; ++k) {
        Row r{};
        r.v = k;
        SPITFIRE_CHECK(t->Insert(txn.get(), k, &r).ok());
      }
      SPITFIRE_CHECK(db->Commit(txn.get()).ok());
    }
    SPITFIRE_CHECK(db->Checkpoint().ok());
    Xoshiro256 rng(7);
    for (uint64_t i = 0; i < updates; ++i) {
      auto txn = db->Begin();
      const uint64_t k =
          rng.NextUint64(std::max<uint64_t>(1, touch_rows)) *
          (kRows / std::max<uint64_t>(1, touch_rows));
      Row r{};
      r.v = k + i;
      if (!t->Update(txn.get(), k % kRows, &r).ok()) {
        db->Abort(txn.get());
        continue;
      }
      if (!db->Commit(txn.get()).ok()) continue;
      if (checkpoint_every != 0 && (i + 1) % checkpoint_every == 0) {
        SPITFIRE_CHECK(db->Checkpoint().ok());
      }
    }
    env = Database::Crash(std::move(db));
  }
  Point p;
  Timer timer;
  auto r = Database::Recover(opts, std::move(env));
  p.recovery_ms = timer.ElapsedSeconds() * 1e3;
  SPITFIRE_CHECK(r.ok());
  const auto& st = r.value()->recovery_stats();
  p.redo_applied = st.redo_applied;
  p.redo_skipped = st.redo_skipped;
  p.log_records = st.log_records;
  return p;
}

void Emit(const char* sweep, bool with_nvm, uint64_t updates,
          uint64_t checkpoint_every, const Point& p) {
  JsonLine line;
  line.Str("bench", "recovery")
      .Str("sweep", sweep)
      .Str("hierarchy", with_nvm ? "dram-nvm-ssd" : "dram-ssd")
      .Num("updates", updates)
      .Num("checkpoint_every", checkpoint_every)
      .Num("recovery_ms", p.recovery_ms)
      .Num("log_records", p.log_records)
      .Num("redo_applied", p.redo_applied)
      .Num("redo_skipped", p.redo_skipped);
  line.Print();
}

void Main() {
  LatencySimulator::SetScale(0.0);  // time the work, not the device model
  const double scale = EnvScale();
  const auto n = [&](uint64_t v) {
    return std::max<uint64_t>(64, static_cast<uint64_t>(v * scale));
  };

  PrintBanner("recovery", "restart time vs checkpoint interval / backlog");

  // Sweep 1: fixed update stream, varying checkpoint interval. A tighter
  // interval advances the durable redo horizon more often, so recovery
  // replays a shorter log suffix. The intervals deliberately do not
  // divide the update count: the crash lands mid-interval and the redo
  // tail is what accumulated since the last checkpoint.
  const uint64_t kUpdates = n(4000);
  for (uint64_t every : {uint64_t{0}, n(3000), n(1500), n(700), n(300)}) {
    const Point p = RunPoint(/*with_nvm=*/true, kUpdates, kRows / 4, every);
    Emit("checkpoint_interval", true, kUpdates, every, p);
  }

  // Sweep 2: dirty-page backlog. One checkpoint after load, then an
  // uncheckpointed update burst over a growing fraction of the table;
  // everything since the checkpoint must be replayed. The dram-ssd pair
  // shows the recovery-overhead cost of losing all buffered state.
  for (uint64_t updates : {n(500), n(1000), n(2000), n(4000)}) {
    for (const bool with_nvm : {true, false}) {
      const Point p = RunPoint(with_nvm, updates, kRows / 2, 0);
      Emit("backlog", with_nvm, updates, 0, p);
    }
  }
}

}  // namespace
}  // namespace spitfire::bench

int main() { spitfire::bench::Main(); }
